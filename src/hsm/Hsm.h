//===- hsm/Hsm.h - Hierarchical Sequence Maps ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical Sequence Maps (Section VIII-A): `[e : r, s]` denotes the
/// sequence that repeats e (a sub-HSM or scalar) r times at stride s. An
/// HSM is stored flat as a scalar base plus a list of levels
/// (innermost-first), each with a symbolic repeat count and stride:
///
///     value(i_0, ..., i_{n-1}) = Base + sum_k i_k * Stride_k,
///     position = i_{n-1} * (r_0*...*r_{n-2}) + ... + i_1 * r_0 + i_0.
///
/// Operations implement Table I: addition of equal-length HSMs, scalar
/// multiplication, and the two restricted division and modulus rules (with
/// the level-splitting sequence-equality applied automatically when a rule
/// needs a factored repeat count). Equality rules:
///
///   * sequence-equality: `[e:r,s] : [r', r*s]  =  [e : r*r', s]`
///     (level merging) plus unit-level elimination — used by normalize()
///     and sequenceEquals();
///   * set-equality: level swapping `[[e:r,s]:r',s'] ~ [[e:r',s']:r,s]` and
///     interleaving `[[e:r,s*r']:r',s] ~ [e:r*r',s]` — used by
///     setEquals(), which is the surjectivity check of Section VIII-B.
///
/// All scalars are Polys compared modulo a FactEnv, so `np` and
/// `nrows*nrows` unify under the NAS-CG assume.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_HSM_HSM_H
#define CSDF_HSM_HSM_H

#include "hsm/Poly.h"

#include <optional>
#include <string>
#include <vector>

namespace csdf {

/// One repetition level of an HSM.
struct HsmLevel {
  Poly Repeat; ///< Number of copies (> 0).
  Poly Stride; ///< Offset between consecutive copies (>= 0).

  bool operator==(const HsmLevel &O) const {
    return Repeat == O.Repeat && Stride == O.Stride;
  }
};

/// A hierarchical sequence map. Levels run innermost-first.
class Hsm {
public:
  Hsm() = default;
  /// A length-1 HSM (a scalar).
  explicit Hsm(Poly Base) : Base(std::move(Base)) {}
  Hsm(Poly Base, std::vector<HsmLevel> Levels)
      : Base(std::move(Base)), Levels(std::move(Levels)) {}

  /// `[Base : Repeat, Stride]` with a scalar base.
  static Hsm leaf(Poly Base, Poly Repeat, Poly Stride) {
    return Hsm(std::move(Base), {{std::move(Repeat), std::move(Stride)}});
  }

  /// The contiguous range [Lo .. Lo+Count-1] as `[Lo : Count, 1]`.
  static Hsm range(Poly Lo, Poly Count) {
    return leaf(std::move(Lo), std::move(Count), Poly(1));
  }

  /// The constant sequence `[Value : Count, 0]`.
  static Hsm constant(Poly Value, Poly Count) {
    return leaf(std::move(Value), std::move(Count), Poly(0));
  }

  const Poly &base() const { return Base; }
  const std::vector<HsmLevel> &levels() const { return Levels; }
  bool isScalar() const { return Levels.empty(); }

  /// Total sequence length (product of repeats; 1 for scalars).
  Poly length() const;

  /// Wraps this HSM in an outer level: `[*this : Repeat, Stride]`.
  Hsm repeated(Poly Repeat, Poly Stride) const;

  /// Structural equality (no fact reasoning).
  bool operator==(const Hsm &O) const {
    return Base == O.Base && Levels == O.Levels;
  }

  std::string str() const;

  /// Value at flat position \p Index with every symbol bound by \p Env.
  /// Nullopt on unbound symbols or out-of-range index. Used by tests to
  /// cross-check symbolic rules against concrete enumeration.
  std::optional<std::int64_t>
  valueAt(std::uint64_t Index,
          const std::vector<std::pair<std::string, std::int64_t>> &Env) const;

  /// Enumerates the whole concrete sequence (requires concrete length).
  std::optional<std::vector<std::int64_t>> enumerate(
      const std::vector<std::pair<std::string, std::int64_t>> &Env) const;

private:
  Poly Base;
  std::vector<HsmLevel> Levels;
};

//===----------------------------------------------------------------------===//
// Table I operations (all modulo a FactEnv; nullopt = rule not applicable)
//===----------------------------------------------------------------------===//

/// Element-wise sum of two equal-length HSMs. Reshapes either side (level
/// splitting / constant expansion) as needed to align repeat structures.
std::optional<Hsm> hsmAdd(const Hsm &A, const Hsm &B, const FactEnv &Facts);

/// Multiplies every element by scalar \p Q.
Hsm hsmScale(const Hsm &A, const Poly &Q);

/// Element-wise integral division by monomial \p Q per the two Table I
/// rules (stride-divisible and block-within-window).
std::optional<Hsm> hsmDiv(const Hsm &A, const Poly &Q, const FactEnv &Facts);

/// Element-wise modulus by monomial \p Q per the Table I rule.
std::optional<Hsm> hsmMod(const Hsm &A, const Poly &Q, const FactEnv &Facts);

//===----------------------------------------------------------------------===//
// Equality rules
//===----------------------------------------------------------------------===//

/// Canonical form under sequence-equality: drops unit levels, merges level
/// pairs with Outer.Stride == Inner.Stride * Inner.Repeat, canonicalizes
/// scalars by facts.
Hsm hsmNormalize(const Hsm &A, const FactEnv &Facts);

/// True when A and B denote the same sequence (element order matters).
bool hsmSequenceEquals(const Hsm &A, const Hsm &B, const FactEnv &Facts);

/// True when A and B denote the same *set* of values (order-insensitive:
/// level swaps and interleavings allowed). This is the surjectivity test:
/// expr.image(sProcs) set-equals rProcs.
bool hsmSetEquals(const Hsm &A, const Hsm &B, const FactEnv &Facts);

} // namespace csdf

#endif // CSDF_HSM_HSM_H
