//===- hsm/HsmExpr.cpp -----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "hsm/HsmExpr.h"

#include "support/Casting.h"

using namespace csdf;

std::optional<Poly> csdf::polyOfExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Poly(cast<IntLitExpr>(E)->value());
  case Expr::Kind::VarRef:
    return Poly::var(cast<VarRefExpr>(E)->name());
  case Expr::Kind::Input:
    return std::nullopt;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Neg)
      return std::nullopt;
    auto Inner = polyOfExpr(U->operand());
    if (!Inner)
      return std::nullopt;
    return Inner->negated();
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = polyOfExpr(B->lhs());
    auto R = polyOfExpr(B->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOp::Add:
      return L->plus(*R);
    case BinaryOp::Sub:
      return L->minus(*R);
    case BinaryOp::Mul:
      return L->times(*R);
    default:
      return std::nullopt;
    }
  }
  }
  return std::nullopt;
}

bool csdf::addAssumeFact(FactEnv &Facts, const Expr *Cond) {
  const auto *B = dyn_cast<BinaryExpr>(Cond);
  if (!B)
    return false;
  // Conjunctions contribute both sides.
  if (B->op() == BinaryOp::And) {
    bool L = addAssumeFact(Facts, B->lhs());
    bool R = addAssumeFact(Facts, B->rhs());
    return L || R;
  }
  if (B->op() != BinaryOp::Eq)
    return false;
  auto L = polyOfExpr(B->lhs());
  auto R = polyOfExpr(B->rhs());
  if (!L || !R)
    return false;
  // Prefer rewriting a bare variable into the other side.
  if (const auto *V = dyn_cast<VarRefExpr>(B->lhs()))
    if (Facts.addRewrite(V->name(), *R))
      return true;
  if (const auto *V = dyn_cast<VarRefExpr>(B->rhs()))
    if (Facts.addRewrite(V->name(), *L))
      return true;
  return false;
}

std::optional<Hsm> csdf::hsmOfExpr(const Expr *E, const Hsm &IdValue,
                                   const FactEnv &Facts) {
  Poly Len = IdValue.length();
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Hsm::constant(Poly(cast<IntLitExpr>(E)->value()), Len);
  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    if (V->isProcessId())
      return IdValue;
    return Hsm::constant(Poly::var(V->name()), Len);
  }
  case Expr::Kind::Input:
    return std::nullopt;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Neg)
      return std::nullopt;
    auto Inner = hsmOfExpr(U->operand(), IdValue, Facts);
    if (!Inner)
      return std::nullopt;
    return hsmScale(*Inner, Poly(-1));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = hsmOfExpr(B->lhs(), IdValue, Facts);
    auto R = hsmOfExpr(B->rhs(), IdValue, Facts);
    if (!L || !R)
      return std::nullopt;

    // A constant sequence acts as a scalar for *, / and %.
    auto AsScalar = [](const Hsm &H) -> std::optional<Poly> {
      for (const HsmLevel &Level : H.levels())
        if (!Level.Stride.isZero())
          return std::nullopt;
      return H.base();
    };

    switch (B->op()) {
    case BinaryOp::Add:
      return hsmAdd(*L, *R, Facts);
    case BinaryOp::Sub:
      return hsmAdd(*L, hsmScale(*R, Poly(-1)), Facts);
    case BinaryOp::Mul: {
      if (auto Q = AsScalar(*R))
        return hsmScale(*L, *Q);
      if (auto Q = AsScalar(*L))
        return hsmScale(*R, *Q);
      return std::nullopt;
    }
    case BinaryOp::Div: {
      auto Q = AsScalar(*R);
      if (!Q)
        return std::nullopt;
      return hsmDiv(*L, *Q, Facts);
    }
    case BinaryOp::Mod: {
      auto Q = AsScalar(*R);
      if (!Q)
        return std::nullopt;
      return hsmMod(*L, *Q, Facts);
    }
    default:
      return std::nullopt;
    }
  }
  }
  return std::nullopt;
}

std::optional<Hsm> csdf::hsmImageOnRange(const Expr *PartnerExpr,
                                         const Poly &Lo, const Poly &Count,
                                         const FactEnv &Facts) {
  Hsm Domain = Hsm::range(Lo, Count);
  return hsmOfExpr(PartnerExpr, Domain, Facts);
}

bool csdf::hsmFullSetMatch(const Expr *SendExpr, const Poly &SenderLo,
                           const Poly &SenderCount, const Expr *RecvExpr,
                           const Poly &RecvLo, const Poly &RecvCount,
                           const FactEnv &Facts) {
  Hsm Senders = Hsm::range(SenderLo, SenderCount);
  Hsm Receivers = Hsm::range(RecvLo, RecvCount);

  // (i) Surjectivity: the send image covers exactly the receiver set.
  auto Image = hsmOfExpr(SendExpr, Senders, Facts);
  if (!Image)
    return false;
  if (!hsmSetEquals(*Image, Receivers, Facts))
    return false;

  // (ii) Identity: recvExpr applied to the image gives back the senders,
  // element for element.
  auto Composed = hsmOfExpr(RecvExpr, *Image, Facts);
  if (!Composed)
    return false;
  return hsmSequenceEquals(*Composed, Senders, Facts);
}
