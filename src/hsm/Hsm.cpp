//===- hsm/Hsm.cpp ---------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Division and modulus use one generalized form of the two Table I rules.
// For h = Base + sum_k i_k * S_k (i_k < R_k) and a monomial divisor q:
// split the levels into D = {k : q | S_k} and N = the rest, and Base into
// a q-divisible part BD plus remainder BN. If the N-part's maximal value
//
//     max = BN + sum_{k in N} (R_k - 1) * S_k
//
// provably satisfies max <= q - 1 (so the non-divisible part never crosses
// a q-window), then
//
//     h / q = BD/q + sum_D i_k * (S_k / q)          (N levels keep their
//                                                    repeats, stride 0)
//     h % q = BN   + sum_N i_k * S_k                (D levels zeroed)
//
// Levels whose stride does not divide q are first *split* using the
// sequence-equality [e : r1*r2, s] = [[e : r1, s] : r2, s*r1] with
// r1 = q / s, which manufactures a q-stride outer level — this is exactly
// how the paper rewrites [0 : np, 1] into [[0 : nrows, 1] : nrows, nrows]
// before taking % nrows.
//
// The max <= q - 1 comparison reduces to non-negativity of q - 1 - max,
// which is decided conservatively assuming every symbolic parameter is
// >= 1 (process counts and grid extents are at least 1).
//
//===----------------------------------------------------------------------===//

#include "hsm/Hsm.h"

#include "support/Budget.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

using namespace csdf;

Poly Hsm::length() const {
  Poly Len(1);
  for (const HsmLevel &L : Levels)
    Len = Len.times(L.Repeat);
  return Len;
}

Hsm Hsm::repeated(Poly Repeat, Poly Stride) const {
  Hsm R = *this;
  R.Levels.push_back({std::move(Repeat), std::move(Stride)});
  return R;
}

std::string Hsm::str() const {
  std::string S = Base.str();
  for (const HsmLevel &L : Levels)
    S = "[" + S + " : " + L.Repeat.str() + ", " + L.Stride.str() + "]";
  return S;
}

std::optional<std::int64_t> Hsm::valueAt(
    std::uint64_t Index,
    const std::vector<std::pair<std::string, std::int64_t>> &Env) const {
  auto Value = Base.eval(Env);
  if (!Value)
    return std::nullopt;
  std::uint64_t Rest = Index;
  for (const HsmLevel &L : Levels) {
    auto Repeat = L.Repeat.eval(Env);
    auto Stride = L.Stride.eval(Env);
    if (!Repeat || !Stride || *Repeat <= 0)
      return std::nullopt;
    std::uint64_t K = Rest % static_cast<std::uint64_t>(*Repeat);
    Rest /= static_cast<std::uint64_t>(*Repeat);
    *Value += static_cast<std::int64_t>(K) * *Stride;
  }
  if (Rest != 0)
    return std::nullopt; // Index out of range.
  return Value;
}

std::optional<std::vector<std::int64_t>> Hsm::enumerate(
    const std::vector<std::pair<std::string, std::int64_t>> &Env) const {
  auto Len = length().eval(Env);
  if (!Len || *Len < 0)
    return std::nullopt;
  std::vector<std::int64_t> Seq;
  Seq.reserve(static_cast<size_t>(*Len));
  for (std::int64_t I = 0; I < *Len; ++I) {
    auto V = valueAt(static_cast<std::uint64_t>(I), Env);
    if (!V)
      return std::nullopt;
    Seq.push_back(*V);
  }
  return Seq;
}

//===----------------------------------------------------------------------===//
// Addition
//===----------------------------------------------------------------------===//

std::optional<Hsm> csdf::hsmAdd(const Hsm &A, const Hsm &B,
                                const FactEnv &Facts) {
  // Work on canonical copies of the level lists, splitting levels on
  // either side until the repeat structures line up.
  std::vector<HsmLevel> LA = A.levels();
  std::vector<HsmLevel> LB = B.levels();
  for (HsmLevel &L : LA) {
    L.Repeat = Facts.canon(L.Repeat);
    L.Stride = Facts.canon(L.Stride);
  }
  for (HsmLevel &L : LB) {
    L.Repeat = Facts.canon(L.Repeat);
    L.Stride = Facts.canon(L.Stride);
  }

  std::vector<HsmLevel> Out;
  size_t IA = 0;
  size_t IB = 0;
  while (IA < LA.size() || IB < LB.size()) {
    if (IA >= LA.size() || IB >= LB.size())
      return std::nullopt; // Length mismatch.
    HsmLevel &La = LA[IA];
    HsmLevel &Lb = LB[IB];
    if (La.Repeat == Lb.Repeat) {
      Out.push_back({La.Repeat, Facts.canon(La.Stride.plus(Lb.Stride))});
      ++IA;
      ++IB;
      continue;
    }
    // Split the level with the larger repeat so the fronts match:
    // [e : r1*r2, s] = [[e : r1, s] : r2, s*r1].
    if (auto Q = Facts.divide(La.Repeat, Lb.Repeat)) {
      if (Q->constantValue() != 1) {
        HsmLevel Outer = {*Q, Facts.canon(La.Stride.times(Lb.Repeat))};
        La.Repeat = Lb.Repeat;
        LA.insert(LA.begin() + static_cast<long>(IA) + 1, Outer);
        continue;
      }
    }
    if (auto Q = Facts.divide(Lb.Repeat, La.Repeat)) {
      if (Q->constantValue() != 1) {
        HsmLevel Outer = {*Q, Facts.canon(Lb.Stride.times(La.Repeat))};
        Lb.Repeat = La.Repeat;
        LB.insert(LB.begin() + static_cast<long>(IB) + 1, Outer);
        continue;
      }
    }
    return std::nullopt;
  }
  return Hsm(Facts.canon(A.base().plus(B.base())), std::move(Out));
}

Hsm csdf::hsmScale(const Hsm &A, const Poly &Q) {
  std::vector<HsmLevel> Levels = A.levels();
  for (HsmLevel &L : Levels)
    L.Stride = L.Stride.times(Q);
  return Hsm(A.base().times(Q), std::move(Levels));
}

//===----------------------------------------------------------------------===//
// Division and modulus
//===----------------------------------------------------------------------===//

namespace {

/// Conservative non-negativity of \p P assuming every variable is >= 1:
/// negative terms must be constants, and the sum of positive coefficients
/// plus the constant part must be >= 0.
bool provablyNonNegative(const Poly &P) {
  std::int64_t LowerBound = 0;
  for (const Mono &T : P.terms()) {
    if (T.Coeff >= 0) {
      LowerBound += T.Coeff; // Minimum of c * vars with vars >= 1 is c.
      continue;
    }
    if (!T.isConstant())
      return false; // Negative symbolic term: unbounded below.
    LowerBound += T.Coeff;
  }
  return LowerBound >= 0;
}

/// Splits every level whose stride does not divide \p Q into
/// [{r1, s}, {r2, s*r1}] with s*r1 == Q, whenever the factors exist.
std::vector<HsmLevel> splitForDivisor(const std::vector<HsmLevel> &In,
                                      const Poly &Q, const FactEnv &Facts) {
  std::vector<HsmLevel> Out;
  for (const HsmLevel &L : In) {
    Poly S = Facts.canon(L.Stride);
    Poly R = Facts.canon(L.Repeat);
    if (S.isZero() || Facts.divisible(S, Q)) {
      Out.push_back({R, S});
      continue;
    }
    auto R1 = Facts.divide(Q, S);
    if (!R1) {
      Out.push_back({R, S});
      continue;
    }
    auto R2 = Facts.divide(R, *R1);
    if (!R2 || R1->constantValue() == 1 || R2->constantValue() == 1) {
      Out.push_back({R, S});
      continue;
    }
    Out.push_back({*R1, S});
    Out.push_back({*R2, Facts.canon(S.times(*R1))}); // Stride == Q.
  }
  return Out;
}

/// Shared core of hsmDiv / hsmMod; \p WantDiv selects the quotient.
std::optional<Hsm> divMod(const Hsm &A, const Poly &QIn, const FactEnv &Facts,
                          bool WantDiv) {
  Poly Q = Facts.canon(QIn);
  if (Q.isZero())
    return std::nullopt;
  if (auto QC = Q.constantValue(); QC && *QC == 1)
    return WantDiv ? A : Hsm(Poly(0), [&] {
      std::vector<HsmLevel> Ls = A.levels();
      for (HsmLevel &L : Ls)
        L.Stride = Poly(0);
      return Ls;
    }());
  if (!Q.isMono())
    return std::nullopt;

  std::vector<HsmLevel> Levels = splitForDivisor(A.levels(), Q, Facts);

  // Split the base into a divisible part and a constant remainder.
  Poly Base = Facts.canon(A.base());
  std::vector<Mono> DivTerms;
  std::int64_t Remainder = 0;
  for (const Mono &T : Base.terms()) {
    if (Poly(T).divisibleBy(Q.asMono())) {
      DivTerms.push_back(T);
      continue;
    }
    if (!T.isConstant())
      return std::nullopt;
    Remainder += T.Coeff;
  }
  if (Remainder < 0)
    return std::nullopt;
  if (auto QC = Q.constantValue()) {
    DivTerms.push_back(Mono((Remainder / *QC) * *QC));
    Remainder %= *QC;
  }
  Poly BD = Facts.canon(Poly(std::move(DivTerms)));
  Poly BN(Remainder);

  // Partition the levels and accumulate the non-divisible span.
  Poly Span = BN;
  for (const HsmLevel &L : Levels) {
    if (L.Stride.isZero() || Facts.divisible(L.Stride, Q))
      continue;
    Span = Span.plus(L.Repeat.minus(Poly(1)).times(L.Stride));
  }
  // Require Span <= Q - 1.
  if (!provablyNonNegative(Facts.canon(Q.minus(Poly(1)).minus(Span))))
    return std::nullopt;

  std::vector<HsmLevel> OutLevels;
  for (const HsmLevel &L : Levels) {
    bool Divisible = L.Stride.isZero() || Facts.divisible(L.Stride, Q);
    if (WantDiv) {
      if (Divisible)
        OutLevels.push_back(
            {L.Repeat, L.Stride.isZero()
                           ? Poly(0)
                           : *Facts.divide(L.Stride, Q)});
      else
        OutLevels.push_back({L.Repeat, Poly(0)});
    } else {
      OutLevels.push_back({L.Repeat, Divisible ? Poly(0) : L.Stride});
    }
  }
  Poly OutBase = WantDiv ? *Facts.divide(BD, Q) : BN;
  return Hsm(OutBase, std::move(OutLevels));
}

} // namespace

std::optional<Hsm> csdf::hsmDiv(const Hsm &A, const Poly &Q,
                                const FactEnv &Facts) {
  return divMod(A, Q, Facts, /*WantDiv=*/true);
}

std::optional<Hsm> csdf::hsmMod(const Hsm &A, const Poly &Q,
                                const FactEnv &Facts) {
  return divMod(A, Q, Facts, /*WantDiv=*/false);
}

//===----------------------------------------------------------------------===//
// Equality rules
//===----------------------------------------------------------------------===//

Hsm csdf::hsmNormalize(const Hsm &A, const FactEnv &Facts) {
  Poly Base = Facts.canon(A.base());
  std::vector<HsmLevel> Levels;
  for (const HsmLevel &L : A.levels()) {
    Poly R = Facts.canon(L.Repeat);
    Poly S = Facts.canon(L.Stride);
    if (R.constantValue() == 1)
      continue; // [e : 1, s] == e.
    Levels.push_back({std::move(R), std::move(S)});
  }
  // Merge adjacent levels: inner {r, s} then outer {r', s*r} fuse into
  // {r*r', s} (the sequence-equality rule).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I + 1 < Levels.size(); ++I) {
      const Poly &S = Levels[I].Stride;
      Poly Fused = Facts.canon(S.times(Levels[I].Repeat));
      if (Levels[I + 1].Stride == Fused && !S.isZero()) {
        Levels[I] = {Facts.canon(Levels[I].Repeat.times(Levels[I + 1].Repeat)),
                     S};
        Levels.erase(Levels.begin() + static_cast<long>(I) + 1);
        Changed = true;
        break;
      }
      // Two adjacent constant levels fuse too.
      if (S.isZero() && Levels[I + 1].Stride.isZero()) {
        Levels[I] = {Facts.canon(Levels[I].Repeat.times(Levels[I + 1].Repeat)),
                     Poly(0)};
        Levels.erase(Levels.begin() + static_cast<long>(I) + 1);
        Changed = true;
        break;
      }
    }
  }
  return Hsm(std::move(Base), std::move(Levels));
}

bool csdf::hsmSequenceEquals(const Hsm &A, const Hsm &B,
                             const FactEnv &Facts) {
  return hsmNormalize(A, Facts) == hsmNormalize(B, Facts);
}

namespace {

/// A multiset of levels keyed by (stride, repeat) strings — order is
/// irrelevant under set-equality because adjacent levels may always swap.
using LevelBag = std::multiset<std::pair<std::string, std::string>>;

LevelBag bagOf(const std::vector<HsmLevel> &Levels) {
  LevelBag Bag;
  for (const HsmLevel &L : Levels)
    Bag.insert({L.Stride.str(), L.Repeat.str()});
  return Bag;
}

/// Explores every way of fusing level pairs {r, s} + {r', s*r} -> {r*r', s}
/// and records all irreducible bags.
void reduceBags(std::vector<HsmLevel> Levels, const FactEnv &Facts,
                std::set<std::string> &Seen, std::vector<LevelBag> &Result) {
  // The prover's combinatorial search: every fusion path is one budget
  // step, so AnalysisBudget::MaxProverSteps bounds it.
  budgetProverStep();
  std::string Key;
  for (const auto &[S, R] : bagOf(Levels))
    Key += S + "|" + R + ";";
  if (!Seen.insert(Key).second)
    return;

  bool Reduced = false;
  for (size_t I = 0; I < Levels.size(); ++I) {
    for (size_t J = 0; J < Levels.size(); ++J) {
      if (I == J)
        continue;
      // Fuse J into I when Stride_J == Stride_I * Repeat_I.
      Poly Fused = Facts.canon(Levels[I].Stride.times(Levels[I].Repeat));
      if (Levels[I].Stride.isZero() || Levels[J].Stride != Fused)
        continue;
      std::vector<HsmLevel> Next = Levels;
      Next[I] = {Facts.canon(Levels[I].Repeat.times(Levels[J].Repeat)),
                 Levels[I].Stride};
      Next.erase(Next.begin() + static_cast<long>(J));
      reduceBags(std::move(Next), Facts, Seen, Result);
      Reduced = true;
    }
  }
  if (!Reduced)
    Result.push_back(bagOf(Levels));
}

/// Canonical irreducible bags for set-equality comparison: normalized
/// levels minus stride-0 levels (duplicates do not change a set).
std::vector<LevelBag> setCanonForms(const Hsm &A, const FactEnv &Facts) {
  Hsm N = hsmNormalize(A, Facts);
  std::vector<HsmLevel> Levels;
  for (const HsmLevel &L : N.levels())
    if (!L.Stride.isZero())
      Levels.push_back(L);
  std::set<std::string> Seen;
  std::vector<LevelBag> Result;
  reduceBags(std::move(Levels), Facts, Seen, Result);
  return Result;
}

} // namespace

bool csdf::hsmSetEquals(const Hsm &A, const Hsm &B, const FactEnv &Facts) {
  if (!Facts.equal(A.base(), B.base()))
    return false;
  std::vector<LevelBag> FormsA = setCanonForms(A, Facts);
  std::vector<LevelBag> FormsB = setCanonForms(B, Facts);
  for (const LevelBag &FA : FormsA)
    for (const LevelBag &FB : FormsB)
      if (FA == FB)
        return true;
  return false;
}
