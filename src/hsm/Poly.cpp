//===- hsm/Poly.cpp --------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "hsm/Poly.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace csdf;

Mono::Mono(std::int64_t Coeff, std::vector<std::string> TheVars)
    : Coeff(Coeff), Vars(std::move(TheVars)) {
  if (Coeff == 0)
    Vars.clear();
  std::sort(Vars.begin(), Vars.end());
}

Mono Mono::times(const Mono &O) const {
  Mono R;
  R.Coeff = Coeff * O.Coeff;
  if (R.Coeff == 0)
    return R;
  R.Vars = Vars;
  R.Vars.insert(R.Vars.end(), O.Vars.begin(), O.Vars.end());
  std::sort(R.Vars.begin(), R.Vars.end());
  return R;
}

std::optional<Mono> Mono::dividedBy(const Mono &O) const {
  assert(O.Coeff != 0 && "division by zero monomial");
  if (Coeff % O.Coeff != 0)
    return std::nullopt;
  Mono R;
  R.Coeff = Coeff / O.Coeff;
  // Vars and O.Vars are sorted; remove O.Vars from Vars with multiplicity.
  size_t I = 0;
  for (const std::string &V : Vars) {
    if (I < O.Vars.size() && O.Vars[I] == V) {
      ++I;
      continue;
    }
    R.Vars.push_back(V);
  }
  if (I != O.Vars.size())
    return std::nullopt; // Divisor has a variable we lack.
  if (R.Coeff == 0)
    R.Vars.clear();
  return R;
}

std::string Mono::str() const {
  if (Vars.empty())
    return std::to_string(Coeff);
  std::ostringstream OS;
  if (Coeff == -1)
    OS << "-";
  else if (Coeff != 1)
    OS << Coeff << "*";
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (I)
      OS << "*";
    OS << Vars[I];
  }
  return OS.str();
}

Poly::Poly(std::int64_t Const) {
  if (Const != 0)
    Terms.push_back(Mono(Const));
}

Poly::Poly(Mono M) {
  if (!M.isZero())
    Terms.push_back(std::move(M));
}

Poly::Poly(std::vector<Mono> TheTerms) : Terms(std::move(TheTerms)) {
  normalize();
}

void Poly::normalize() {
  std::sort(Terms.begin(), Terms.end(),
            [](const Mono &A, const Mono &B) { return A.Vars < B.Vars; });
  std::vector<Mono> Merged;
  for (const Mono &T : Terms) {
    if (!Merged.empty() && Merged.back().sameVars(T))
      Merged.back().Coeff += T.Coeff;
    else
      Merged.push_back(T);
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const Mono &M) { return M.isZero(); }),
               Merged.end());
  Terms = std::move(Merged);
}

Poly Poly::plus(const Poly &O) const {
  std::vector<Mono> All = Terms;
  All.insert(All.end(), O.Terms.begin(), O.Terms.end());
  return Poly(std::move(All));
}

Poly Poly::minus(const Poly &O) const { return plus(O.negated()); }

Poly Poly::negated() const {
  std::vector<Mono> All = Terms;
  for (Mono &M : All)
    M.Coeff = -M.Coeff;
  return Poly(std::move(All));
}

Poly Poly::times(const Poly &O) const {
  std::vector<Mono> All;
  for (const Mono &A : Terms)
    for (const Mono &B : O.Terms)
      All.push_back(A.times(B));
  return Poly(std::move(All));
}

std::optional<Poly> Poly::dividedBy(const Mono &Divisor) const {
  std::vector<Mono> All;
  for (const Mono &T : Terms) {
    auto Q = T.dividedBy(Divisor);
    if (!Q)
      return std::nullopt;
    All.push_back(*Q);
  }
  return Poly(std::move(All));
}

std::optional<std::int64_t> Poly::eval(
    const std::vector<std::pair<std::string, std::int64_t>> &Env) const {
  std::int64_t Sum = 0;
  for (const Mono &T : Terms) {
    std::int64_t V = T.Coeff;
    for (const std::string &Var : T.Vars) {
      bool Found = false;
      for (const auto &[Name, Value] : Env) {
        if (Name == Var) {
          V *= Value;
          Found = true;
          break;
        }
      }
      if (!Found)
        return std::nullopt;
    }
    Sum += V;
  }
  return Sum;
}

std::string Poly::str() const {
  if (Terms.empty())
    return "0";
  std::ostringstream OS;
  for (size_t I = 0; I < Terms.size(); ++I) {
    std::string S = Terms[I].str();
    if (I > 0 && !S.empty() && S[0] != '-')
      OS << "+";
    OS << S;
  }
  return OS.str();
}

bool FactEnv::addRewrite(const std::string &Var, const Poly &Replacement) {
  // Reject rules whose replacement (after existing rewrites) still mentions
  // Var — that would loop forever.
  Poly Canon = canon(Replacement);
  for (const Mono &T : Canon.terms())
    for (const std::string &V : T.Vars)
      if (V == Var)
        return false;
  // Re-canonicalize existing rules so rewrites stay triangular.
  Rewrites.emplace_back(Var, Canon);
  for (auto &[Lhs, Rhs] : Rewrites)
    Rhs = substitute(Rhs, Var, Canon);
  return true;
}

Poly FactEnv::substitute(const Poly &P, const std::string &Var,
                         const Poly &Replacement) {
  Poly Result;
  for (const Mono &T : P.terms()) {
    // Split T into Var^k * Rest.
    unsigned Power = 0;
    Mono Rest(T.Coeff);
    for (const std::string &V : T.Vars) {
      if (V == Var)
        ++Power;
      else
        Rest = Rest.times(Mono::var(V));
    }
    Poly Term = Poly(Rest);
    for (unsigned I = 0; I < Power; ++I)
      Term = Term.times(Replacement);
    Result = Result.plus(Term);
  }
  return Result;
}

Poly FactEnv::canon(const Poly &P) const {
  Poly Cur = P;
  // Rules are triangular (no rule's RHS mentions any rule's LHS), so one
  // pass per rule suffices.
  for (const auto &[Var, Replacement] : Rewrites)
    Cur = substitute(Cur, Var, Replacement);
  return Cur;
}

void FactEnv::intersectWith(const FactEnv &O) {
  std::vector<std::pair<std::string, Poly>> Kept;
  for (const auto &Rule : Rewrites)
    for (const auto &Other : O.Rewrites)
      if (Rule == Other) {
        Kept.push_back(Rule);
        break;
      }
  Rewrites = std::move(Kept);
}

std::optional<Poly> FactEnv::divide(const Poly &A, const Poly &D) const {
  Poly CA = canon(A);
  Poly CD = canon(D);
  if (!CD.isMono())
    return std::nullopt;
  return CA.dividedBy(CD.asMono());
}
