//===- hsm/HsmExpr.h - MPL expressions as HSMs ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts MPL communication expressions into HSMs and implements the
/// send/receive matching proofs of Section VIII-B:
///
///  * image: the HSM produced by applying an expression to a process set
///    (`id` becomes the set's range HSM; other variables become symbolic
///    grid parameters repeated across the set);
///  * surjectivity: image(sendExpr, senders) set-equals the receiver set;
///  * identity: recvExpr applied to image(sendExpr, senders)
///    sequence-equals the senders — the composition is the identity map.
///
/// FactEnvs are built from `assume` equalities (`np == ncols * nrows`).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_HSM_HSMEXPR_H
#define CSDF_HSM_HSMEXPR_H

#include "hsm/Hsm.h"
#include "lang/Ast.h"

#include <optional>

namespace csdf {

/// Converts \p E to a polynomial over program variables (+, -, * only).
std::optional<Poly> polyOfExpr(const Expr *E);

/// Registers the fact asserted by `assume Lhs == Rhs` as a rewrite rule in
/// \p Facts. Returns false for shapes the fact engine cannot use (which is
/// not an error; the fact is simply unavailable).
bool addAssumeFact(FactEnv &Facts, const Expr *Cond);

/// Evaluates \p E over a process set whose `id` values form \p IdValue.
/// Constants and free variables become constant sequences of the same
/// length. Returns nullopt when an operation falls outside the HSM algebra
/// (e.g. division with a non-monomial divisor).
std::optional<Hsm> hsmOfExpr(const Expr *E, const Hsm &IdValue,
                             const FactEnv &Facts);

/// The image of applying \p PartnerExpr on process set [Lo .. Lo+Count-1].
std::optional<Hsm> hsmImageOnRange(const Expr *PartnerExpr, const Poly &Lo,
                                   const Poly &Count, const FactEnv &Facts);

/// Section VIII-B matching for whole process sets: true when
///  (i) SendExpr surjectively maps the sender range onto the receiver
///      range (image set-equality), and
/// (ii) RecvExpr o SendExpr is the identity on the sender range
///      (sequence-equality of the composition with the senders).
bool hsmFullSetMatch(const Expr *SendExpr, const Poly &SenderLo,
                     const Poly &SenderCount, const Expr *RecvExpr,
                     const Poly &RecvLo, const Poly &RecvCount,
                     const FactEnv &Facts);

} // namespace csdf

#endif // CSDF_HSM_HSMEXPR_H
