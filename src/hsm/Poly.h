//===- hsm/Poly.h - Symbolic monomials and polynomials ------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar algebra underneath Hierarchical Sequence Maps: HSM bases,
/// strides and repeat counts are polynomials over symbolic grid parameters
/// (`np`, `nrows`, ...). A FactEnv carries the topology invariants injected
/// by `assume` statements (e.g. `np == nrows * ncols`) as directed rewrite
/// rules, so polynomial equality is decided modulo those facts — exactly
/// the inference the paper performs when it replaces `np` with
/// `nrows * nrows` during the NAS-CG derivation (Section VIII-A).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_HSM_POLY_H
#define CSDF_HSM_POLY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace csdf {

/// A monomial: Coeff * (product of variables, with multiplicity).
struct Mono {
  std::int64_t Coeff = 0;
  /// Sorted variable names (duplicates = powers).
  std::vector<std::string> Vars;

  Mono() = default;
  explicit Mono(std::int64_t Coeff) : Coeff(Coeff) {}
  Mono(std::int64_t Coeff, std::vector<std::string> Vars);

  static Mono var(const std::string &Name) { return Mono(1, {Name}); }

  bool isZero() const { return Coeff == 0; }
  bool isConstant() const { return Vars.empty(); }

  Mono times(const Mono &O) const;

  /// Exact division: nullopt unless O's coefficient and variables divide
  /// this monomial.
  std::optional<Mono> dividedBy(const Mono &O) const;

  /// Key identifying the variable part (for merging like terms).
  bool sameVars(const Mono &O) const { return Vars == O.Vars; }
  bool operator==(const Mono &O) const {
    return Coeff == O.Coeff && Vars == O.Vars;
  }
  bool operator<(const Mono &O) const {
    if (Vars != O.Vars)
      return Vars < O.Vars;
    return Coeff < O.Coeff;
  }

  std::string str() const;
};

/// A canonical sum of monomials (sorted by variable part, like terms
/// merged, zero terms dropped; the empty sum is 0).
class Poly {
public:
  Poly() = default;
  /*implicit*/ Poly(std::int64_t Const);
  /*implicit*/ Poly(Mono M);
  explicit Poly(std::vector<Mono> Terms);

  static Poly var(const std::string &Name) { return Poly(Mono::var(Name)); }

  bool isZero() const { return Terms.empty(); }
  bool isConstant() const {
    return Terms.empty() || (Terms.size() == 1 && Terms[0].isConstant());
  }
  std::optional<std::int64_t> constantValue() const {
    if (Terms.empty())
      return 0;
    if (Terms.size() == 1 && Terms[0].isConstant())
      return Terms[0].Coeff;
    return std::nullopt;
  }
  /// True when the polynomial is exactly one monomial (suitable as a
  /// divisor/modulus).
  bool isMono() const { return Terms.size() == 1; }
  const Mono &asMono() const { return Terms.front(); }

  const std::vector<Mono> &terms() const { return Terms; }

  Poly plus(const Poly &O) const;
  Poly minus(const Poly &O) const;
  Poly times(const Poly &O) const;
  Poly negated() const;

  /// Exact termwise division by a monomial; nullopt if any term fails.
  std::optional<Poly> dividedBy(const Mono &Divisor) const;

  /// True when every term is exactly divisible by \p Divisor.
  bool divisibleBy(const Mono &Divisor) const {
    return dividedBy(Divisor).has_value();
  }

  /// Evaluates with variable values from \p Env; nullopt on unbound vars.
  std::optional<std::int64_t>
  eval(const std::vector<std::pair<std::string, std::int64_t>> &Env) const;

  bool operator==(const Poly &O) const { return Terms == O.Terms; }
  bool operator!=(const Poly &O) const { return !(*this == O); }
  bool operator<(const Poly &O) const { return Terms < O.Terms; }

  std::string str() const;

private:
  void normalize();

  std::vector<Mono> Terms;
};

/// Directed rewrite rules derived from `assume` equalities. Rewrites
/// eliminate derived parameters (np, ncols) in favour of base ones so two
/// polynomials are equal iff their canonical forms coincide.
class FactEnv {
public:
  /// Adds the rewrite Var -> Replacement. Returns false (and ignores the
  /// rule) if it would create a rewrite cycle.
  bool addRewrite(const std::string &Var, const Poly &Replacement);

  /// Canonical form of \p P: all rewrites applied to fixpoint.
  Poly canon(const Poly &P) const;

  /// Equality modulo facts.
  bool equal(const Poly &A, const Poly &B) const {
    return canon(A) == canon(B);
  }

  /// Exact division modulo facts: canon(A) / canon(D) if D canonicalizes
  /// to a single monomial.
  std::optional<Poly> divide(const Poly &A, const Poly &D) const;

  /// True if canon(A) is termwise divisible by canon(D).
  bool divisible(const Poly &A, const Poly &D) const {
    return divide(A, D).has_value();
  }

  size_t numRewrites() const { return Rewrites.size(); }

  /// Keeps only rewrites present in \p O as well (used when joining
  /// dataflow states from different paths: only facts that hold on both
  /// paths survive).
  void intersectWith(const FactEnv &O);

  bool operator==(const FactEnv &O) const { return Rewrites == O.Rewrites; }

private:
  /// Substitutes Var -> Replacement in every term of P.
  static Poly substitute(const Poly &P, const std::string &Var,
                         const Poly &Replacement);

  std::vector<std::pair<std::string, Poly>> Rewrites;
};

} // namespace csdf

#endif // CSDF_HSM_POLY_H
