//===- procset/ProcSet.cpp -----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "procset/ProcSet.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace csdf;

SymBound::SymBound(std::vector<LinearExpr> TheForms)
    : Forms(std::move(TheForms)) {
  assert(!Forms.empty() && "a bound needs at least one form");
  std::sort(Forms.begin(), Forms.end());
  Forms.erase(std::unique(Forms.begin(), Forms.end()), Forms.end());
}

void SymBound::addForm(const LinearExpr &Form) {
  auto It = std::lower_bound(Forms.begin(), Forms.end(), Form);
  if (It != Forms.end() && *It == Form)
    return;
  Forms.insert(It, Form);
}

void SymBound::enrich(const ConstraintGraph &G) {
  std::vector<LinearExpr> Extra;
  for (const LinearExpr &F : Forms)
    for (const LinearExpr &Alias : G.equivalentForms(F))
      Extra.push_back(Alias);
  for (const LinearExpr &E : Extra)
    addForm(E);
}

SymBound SymBound::plus(std::int64_t Delta) const {
  SymBound R;
  for (const LinearExpr &F : Forms)
    R.addForm(F.plus(Delta));
  return R;
}

std::optional<SymBound> SymBound::intersectForms(const SymBound &O) const {
  std::vector<LinearExpr> Common;
  std::set_intersection(Forms.begin(), Forms.end(), O.Forms.begin(),
                        O.Forms.end(), std::back_inserter(Common));
  if (Common.empty())
    return std::nullopt;
  return SymBound(std::move(Common));
}

namespace {

/// Resolves every form of a bound once, so the A x B comparison loops
/// below run on interned slots instead of re-hashing names per pair.
std::vector<ConstraintGraph::ResolvedForm>
resolveForms(const std::vector<LinearExpr> &Forms, const ConstraintGraph &G,
             std::int64_t Delta) {
  std::vector<ConstraintGraph::ResolvedForm> R;
  R.reserve(Forms.size());
  for (const LinearExpr &F : Forms) {
    ConstraintGraph::ResolvedForm Form = G.resolve(F);
    Form.C += Delta;
    R.push_back(Form);
  }
  return R;
}

} // namespace

bool SymBound::provablyLE(const SymBound &O, const ConstraintGraph &G,
                          std::int64_t Slack) const {
  auto As = resolveForms(Forms, G, 0);
  auto Bs = resolveForms(O.Forms, G, Slack);
  for (const auto &A : As)
    for (const auto &B : Bs)
      if (G.provesLE(A, B))
        return true;
  return false;
}

bool SymBound::provablyEQ(const SymBound &O, const ConstraintGraph &G,
                          std::int64_t Offset) const {
  auto As = resolveForms(Forms, G, 0);
  auto Bs = resolveForms(O.Forms, G, Offset);
  for (const auto &A : As)
    for (const auto &B : Bs)
      if (G.provesLE(A, B) && G.provesLE(B, A))
        return true;
  return false;
}

std::string SymBound::str() const {
  if (Forms.size() == 1)
    return Forms.front().str();
  return "{" +
         joinMapped(Forms, ",",
                    [](const LinearExpr &F) { return F.str(); }) +
         "}";
}

bool ProcRange::provablyEmpty(const ConstraintGraph &G) const {
  return Ub.provablyLE(Lb, G, /*Slack=*/-1);
}

bool ProcRange::provablyNonEmpty(const ConstraintGraph &G) const {
  return Lb.provablyLE(Ub, G);
}

bool ProcRange::provablySingleton(const ConstraintGraph &G) const {
  return Lb.provablyEQ(Ub, G);
}

bool csdf::provablyEqual(const ProcRange &A, const ProcRange &B,
                         const ConstraintGraph &G) {
  return A.lb().provablyEQ(B.lb(), G) && A.ub().provablyEQ(B.ub(), G);
}

bool csdf::provablyAdjacent(const ProcRange &A, const ProcRange &B,
                            const ConstraintGraph &G) {
  return B.lb().provablyEQ(A.ub(), G, /*Offset=*/1);
}

bool csdf::provablyContains(const ProcRange &R, const ProcRange &M,
                            const ConstraintGraph &G) {
  return R.lb().provablyLE(M.lb(), G) && M.ub().provablyLE(R.ub(), G);
}

bool csdf::provablyDisjoint(const ProcRange &A, const ProcRange &B,
                            const ConstraintGraph &G) {
  return A.ub().provablyLE(B.lb(), G, /*Slack=*/-1) ||
         B.ub().provablyLE(A.lb(), G, /*Slack=*/-1);
}

std::optional<ProcRange> csdf::tryMerge(const ProcRange &A, const ProcRange &B,
                                        const ConstraintGraph &G) {
  if (provablyAdjacent(A, B, G))
    return ProcRange(A.lb(), B.ub());
  if (provablyAdjacent(B, A, G))
    return ProcRange(B.lb(), A.ub());
  if (provablyContains(A, B, G))
    return A;
  if (provablyContains(B, A, G))
    return B;
  return std::nullopt;
}

std::optional<RangeDifference> csdf::tryDifference(const ProcRange &R,
                                                   const ProcRange &M,
                                                   const ConstraintGraph &G) {
  if (!provablyContains(R, M, G))
    return std::nullopt;
  // Leftovers whose emptiness is not yet decidable are kept as possibly
  // empty sets — the paper deletes process sets "because some of them were
  // discovered to be empty", i.e. emptiness may be discovered later (for
  // instance on a loop's exit edge where i == np becomes known).
  RangeDifference Diff;
  ProcRange Before(R.lb(), M.lb().plus(-1));
  if (!Before.provablyEmpty(G))
    Diff.Before = Before;
  ProcRange After(M.ub().plus(1), R.ub());
  if (!After.provablyEmpty(G))
    Diff.After = After;
  return Diff;
}

std::optional<ProcRange> csdf::tryIntersect(const ProcRange &A,
                                            const ProcRange &B,
                                            const ConstraintGraph &G) {
  // Lower bound: the provably larger of the two.
  SymBound Lo;
  if (A.lb().provablyLE(B.lb(), G))
    Lo = B.lb();
  else if (B.lb().provablyLE(A.lb(), G))
    Lo = A.lb();
  else
    return std::nullopt;
  SymBound Hi;
  if (A.ub().provablyLE(B.ub(), G))
    Hi = A.ub();
  else if (B.ub().provablyLE(A.ub(), G))
    Hi = B.ub();
  else
    return std::nullopt;
  return ProcRange(Lo, Hi);
}

std::optional<ProcRange> csdf::widenRange(const ProcRange &OldR,
                                          const ConstraintGraph &OldG,
                                          const ProcRange &NewR,
                                          const ConstraintGraph &NewG) {
  ProcRange A = OldR;
  A.enrich(OldG);
  ProcRange B = NewR;
  B.enrich(NewG);
  auto Lb = A.lb().intersectForms(B.lb());
  auto Ub = A.ub().intersectForms(B.ub());
  if (!Lb || !Ub)
    return std::nullopt;
  return ProcRange(*Lb, *Ub);
}
