//===- procset/ProcSet.h - Symbolic process-set ranges -----------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-set representation of Section VII-B: a set of processes is a
/// range `[lb..ub]` whose bounds are *sets of expressions* the bound is
/// known to equal (e.g. the upper bound {1, i} when the state analysis has
/// proven i == 1). Range operations — emptiness, adjacency, difference,
/// merging, widening — are answered by querying a ConstraintGraph for
/// relations between bound forms.
///
/// Bounds reference variables in whatever namespace the client analysis
/// uses (e.g. `ps0::i`); this module is agnostic to the naming scheme.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PROCSET_PROCSET_H
#define CSDF_PROCSET_PROCSET_H

#include "numeric/ConstraintGraph.h"
#include "numeric/LinearExpr.h"

#include <optional>
#include <string>
#include <vector>

namespace csdf {

/// A symbolic bound: one or more `var + c` forms, all provably equal.
/// The form list is kept sorted and duplicate-free.
class SymBound {
public:
  SymBound() = default;
  explicit SymBound(LinearExpr Form) : Forms{std::move(Form)} {}
  explicit SymBound(std::vector<LinearExpr> TheForms);

  /// The representative form (first in sorted order).
  const LinearExpr &primary() const { return Forms.front(); }
  const std::vector<LinearExpr> &forms() const { return Forms; }

  /// Adds another known-equal form.
  void addForm(const LinearExpr &Form);

  /// Extends the form set with every alias \p G can prove for any current
  /// form.
  void enrich(const ConstraintGraph &G);

  /// Returns this bound shifted by \p Delta (all forms shifted).
  SymBound plus(std::int64_t Delta) const;

  /// Keeps only forms present in both bounds; nullopt if none survive.
  std::optional<SymBound> intersectForms(const SymBound &O) const;

  /// Renames the variable of every form.
  template <typename Fn> SymBound withRenamedVars(Fn Rename) const {
    SymBound R;
    for (const LinearExpr &F : Forms)
      R.addForm(F.withRenamedVar(Rename));
    return R;
  }

  /// True if `*this <= O + Slack` is provable via any form pair.
  bool provablyLE(const SymBound &O, const ConstraintGraph &G,
                  std::int64_t Slack = 0) const;

  /// True if `*this == O + Offset` is provable via any form pair.
  bool provablyEQ(const SymBound &O, const ConstraintGraph &G,
                  std::int64_t Offset = 0) const;

  std::string str() const;

  bool operator==(const SymBound &O) const { return Forms == O.Forms; }

private:
  std::vector<LinearExpr> Forms;
};

/// A (possibly symbolic) contiguous range of process ranks `[Lb..Ub]`.
class ProcRange {
public:
  ProcRange() = default;
  ProcRange(SymBound Lb, SymBound Ub) : Lb(std::move(Lb)), Ub(std::move(Ub)) {}
  ProcRange(LinearExpr Lb, LinearExpr Ub)
      : Lb(SymBound(std::move(Lb))), Ub(SymBound(std::move(Ub))) {}

  /// The full set [0 .. np-1].
  static ProcRange all() {
    return ProcRange(LinearExpr(0), LinearExpr("np", -1));
  }

  /// The singleton [E .. E].
  static ProcRange singleton(const LinearExpr &E) {
    return ProcRange(E, E);
  }

  const SymBound &lb() const { return Lb; }
  const SymBound &ub() const { return Ub; }
  SymBound &lb() { return Lb; }
  SymBound &ub() { return Ub; }

  /// True when `ub < lb` is provable — the range denotes no processes.
  bool provablyEmpty(const ConstraintGraph &G) const;

  /// True when `lb <= ub` is provable.
  bool provablyNonEmpty(const ConstraintGraph &G) const;

  /// True when `lb == ub` is provable.
  bool provablySingleton(const ConstraintGraph &G) const;

  /// The range shifted by \p Delta: [lb+d .. ub+d].
  ProcRange shifted(std::int64_t Delta) const {
    return ProcRange(Lb.plus(Delta), Ub.plus(Delta));
  }

  /// Adds aliases from \p G to both bounds.
  void enrich(const ConstraintGraph &G) {
    Lb.enrich(G);
    Ub.enrich(G);
  }

  template <typename Fn> ProcRange withRenamedVars(Fn Rename) const {
    return ProcRange(Lb.withRenamedVars(Rename), Ub.withRenamedVars(Rename));
  }

  std::string str() const { return "[" + Lb.str() + ".." + Ub.str() + "]"; }

  bool operator==(const ProcRange &O) const {
    return Lb == O.Lb && Ub == O.Ub;
  }

private:
  SymBound Lb;
  SymBound Ub;
};

//===----------------------------------------------------------------------===//
// Relational operations (all answered through a ConstraintGraph)
//===----------------------------------------------------------------------===//

/// True when A and B denote the same set (`A.lb == B.lb && A.ub == B.ub`).
bool provablyEqual(const ProcRange &A, const ProcRange &B,
                   const ConstraintGraph &G);

/// True when B starts exactly one past A (`B.lb == A.ub + 1`).
bool provablyAdjacent(const ProcRange &A, const ProcRange &B,
                      const ConstraintGraph &G);

/// True when M is provably contained in R.
bool provablyContains(const ProcRange &R, const ProcRange &M,
                      const ConstraintGraph &G);

/// True when A and B provably share no element (A.ub < B.lb or B.ub < A.lb).
bool provablyDisjoint(const ProcRange &A, const ProcRange &B,
                      const ConstraintGraph &G);

/// Merges adjacent or equal ranges: A ++ B when `B.lb == A.ub + 1` (or
/// symmetric, or one contains the other). Returns nullopt when no merge is
/// provable.
std::optional<ProcRange> tryMerge(const ProcRange &A, const ProcRange &B,
                                  const ConstraintGraph &G);

/// The two leftovers of removing subrange M from R (Section VII-B's
/// bound-aware difference): `[R.lb .. M.lb-1]` and `[M.ub+1 .. R.ub]`.
/// Provably empty leftovers are omitted; leftovers that can't be proven
/// empty or non-empty make the difference fail (nullopt) because the
/// analysis requires exact set splitting.
struct RangeDifference {
  std::optional<ProcRange> Before;
  std::optional<ProcRange> After;
};
std::optional<RangeDifference> tryDifference(const ProcRange &R,
                                             const ProcRange &M,
                                             const ConstraintGraph &G);

/// Intersection when the bounds are pairwise comparable; nullopt otherwise.
std::optional<ProcRange> tryIntersect(const ProcRange &A, const ProcRange &B,
                                      const ConstraintGraph &G);

/// The paper's widening for process sets: each bound keeps only the forms
/// common to the old (\p OldR under \p OldG) and new (\p NewR under \p NewG)
/// representations — "the common portions are retained". Returns nullopt
/// when a bound has no stable form.
std::optional<ProcRange> widenRange(const ProcRange &OldR,
                                    const ConstraintGraph &OldG,
                                    const ProcRange &NewR,
                                    const ConstraintGraph &NewG);

} // namespace csdf

#endif // CSDF_PROCSET_PROCSET_H
