//===- numeric/ConstraintGraph.h - Difference-constraint domain ----------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint-graph abstract domain of Section VII-A: a conjunction of
/// inequalities `v_i <= v_j + c` over named variables, exactly the
/// representation suggested by CLR ch. 25.5 and Shaham et al. that the
/// paper's prototype uses. A distinguished zero variable turns unary bounds
/// (`v <= c`, `v >= c`) into difference constraints.
///
/// Consistency is maintained by transitive closure: the O(n^3)
/// Floyd-Warshall `close()` and the O(n^2) single-edge repair
/// `closeAfterEdge()` — the two closure variants whose call counts and
/// average variable counts Section IX profiles (217 full / 78 incremental
/// calls, avg 52.3 / 66.3 vars). Both bump StatsRegistry counters so the
/// benchmark harness can reproduce that profile.
///
/// The representation implements the paper's Section IX optimization
/// directions end to end:
///
///   1. variables are interned to dense VarIds in a SymbolTable shared per
///      analysis run (strings only at the API boundary);
///   2. the bound matrix is held through a copy-on-write handle (CowDbm),
///      so the pCFG engine's pervasive state copies are O(1) until a copy
///      actually mutates — and closure done through one copy is visible
///      to all of them, because Closed/Feasible live in the shared block;
///   3. dense array storage (DenseDbmStorage) remains the default backend;
///   4. full-closure results are memoized in a per-analysis ClosureMemo
///      keyed by a matrix fingerprint, so `equals`/`implies` checks at
///      already-visited pCFG configurations skip the O(n^3) re-close.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_CONSTRAINTGRAPH_H
#define CSDF_NUMERIC_CONSTRAINTGRAPH_H

#include "numeric/DbmStorage.h"
#include "numeric/LinearExpr.h"
#include "numeric/SymbolTable.h"
#include "support/Stats.h"

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace csdf {

/// Memoizes full-closure results across the constraint graphs of one
/// analysis run. Keyed by a fingerprint of the pre-closure matrix and
/// verified against a full snapshot, so a hit is always exact. The stored
/// result is the closed DbmShared block itself: adopting it on a hit costs
/// one pointer assignment, and copy-on-write protects it from mutation.
///
/// Thread-safe: lookup/insert serialize on a mutex, so one memo can be
/// shared by the engine's parallel drain workers — and, in cross-session
/// mode, by every session of a `csdf batch` threads run. Memoized blocks
/// are always Closed, which under the engine's closed-shared-block
/// invariant makes them immutable: any handle that wants to mutate one
/// detaches a private clone first.
class ClosureMemo {
public:
  ClosureMemo() = default;

  /// \p CrossSession = true builds a memo that outlives any single
  /// analysis session (batch threads mode). Such a memo must not keep
  /// blocks charged to a session's stack-local AnalysisBudget — the budget
  /// dies with the session while the block lives on — so insert()
  /// releases the block's accounted bytes and unbinds its Accountant.
  explicit ClosureMemo(bool CrossSession) : CrossSession(CrossSession) {}

  /// Returns the memoized closed block for a matrix equal to \p Pre, or
  /// nullptr.
  std::shared_ptr<DbmShared> lookup(std::uint64_t Key, DbmBackend Backend,
                                    const std::vector<std::int64_t> &Pre)
      const;

  /// Records \p Closed as the closure of the matrix snapshotted in \p Pre.
  void insert(std::uint64_t Key, DbmBackend Backend,
              std::vector<std::int64_t> Pre,
              std::shared_ptr<DbmShared> Closed);

  std::size_t size() const;

  /// Visits every entry under the memo lock, in unspecified order. The
  /// snapshot serializer (numeric/MemoSnapshot.h) walks the memo through
  /// here; \p Fn must not call back into the memo. Visited blocks are
  /// Closed, hence immutable under the engine's closed-shared-block
  /// invariant, so reading them without copying is safe.
  void forEach(const std::function<void(std::uint64_t Key, DbmBackend Backend,
                                        const std::vector<std::int64_t> &Pre,
                                        const DbmShared &Closed)> &Fn) const;

private:
  struct Entry {
    DbmBackend Backend;
    std::vector<std::int64_t> Pre;
    std::shared_ptr<DbmShared> Closed;
  };
  mutable std::mutex M;
  bool CrossSession = false;
  std::unordered_multimap<std::uint64_t, Entry> Entries;
  /// Safety valve: the memo is cleared when it reaches this many entries
  /// (pCFG analyses revisit a bounded set of configurations, so this only
  /// triggers on degenerate workloads).
  static constexpr std::size_t MaxEntries = 4096;
};

using ClosureMemoPtr = std::shared_ptr<ClosureMemo>;

/// A conjunction of difference constraints over named variables.
///
/// The graph is *infeasible* (bottom) when the constraints are
/// contradictory; most queries on an infeasible graph are vacuously true.
class ConstraintGraph {
public:
  explicit ConstraintGraph(DbmBackend Backend = DbmBackend::Dense,
                           StatsRegistry *Stats = &StatsRegistry::global(),
                           SymbolTablePtr Syms = nullptr,
                           ClosureMemoPtr Memo = nullptr);

  ConstraintGraph(const ConstraintGraph &O);
  ConstraintGraph &operator=(const ConstraintGraph &O);
  ConstraintGraph(ConstraintGraph &&) = default;
  ConstraintGraph &operator=(ConstraintGraph &&) = default;

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  /// Returns the matrix slot of \p Name, creating the variable
  /// unconstrained if needed.
  unsigned ensureVar(const std::string &Name);

  /// Returns the matrix slot of \p Name if it exists.
  std::optional<unsigned> findVar(const std::string &Name) const;

  bool hasVar(const std::string &Name) const {
    return findVar(Name).has_value();
  }

  /// Number of variables, excluding the internal zero variable.
  unsigned numVars() const {
    return static_cast<unsigned>(Vars.size()) - 1;
  }

  /// All variable names (excluding the zero variable).
  std::vector<std::string> varNames() const;

  /// All variable ids (excluding the zero variable).
  std::vector<VarId> varIds() const {
    return std::vector<VarId>(Vars.begin() + 1, Vars.end());
  }

  /// The shared intern table this graph's VarIds index into.
  const SymbolTable &symbols() const { return *Syms; }
  const SymbolTablePtr &symbolsPtr() const { return Syms; }

  /// Removes \p Name after closing, so constraints implied through it
  /// survive.
  void removeVar(const std::string &Name);

  /// Renames every variable via \p Rename (must stay injective).
  void renameVars(const std::vector<std::pair<std::string, std::string>>
                      &Renames);

  //===--------------------------------------------------------------------===
  // Constraints and transfer
  //===--------------------------------------------------------------------===

  /// Adds `A <= B + C` for variables by name.
  void addLE(const std::string &A, const std::string &B, std::int64_t C);

  /// Adds `Lhs <= Rhs` for `var + c` forms (constants use the zero var).
  void addLE(const LinearExpr &Lhs, const LinearExpr &Rhs);

  /// Adds `Lhs == Rhs` (both directions).
  void addEQ(const LinearExpr &Lhs, const LinearExpr &Rhs);

  /// Adds `Var <= C` / `Var >= C`.
  void addUpperBound(const std::string &Var, std::int64_t C);
  void addLowerBound(const std::string &Var, std::int64_t C);

  /// Transfer for `X := E` where E is `var + c` or `c`. Handles X := X + c
  /// exactly (bound shifting); otherwise havocs X and equates.
  void assign(const std::string &X, const LinearExpr &E);

  /// Forgets everything known about \p X.
  void havoc(const std::string &X);

  //===--------------------------------------------------------------------===
  // Queries (all imply closure)
  //===--------------------------------------------------------------------===

  /// False when the constraints are contradictory.
  bool isFeasible() const;

  /// True if `Lhs <= Rhs` is implied. Vacuously true when infeasible.
  bool provesLE(const LinearExpr &Lhs, const LinearExpr &Rhs) const;

  /// True if `Lhs == Rhs` is implied.
  bool provesEQ(const LinearExpr &Lhs, const LinearExpr &Rhs) const;

  /// A `var + c` form resolved against this graph once, so repeated
  /// queries skip the string path. Valid only while the graph's variable
  /// set is unchanged (queries are fine; mutations invalidate it).
  struct ResolvedForm {
    /// Matrix slot (zero slot for constants); meaningful when Known.
    unsigned Slot = 0;
    /// Interned id of the variable (InvalidVarId for constants). Set even
    /// when the graph has no such variable, enabling the same-variable
    /// fast path.
    VarId Id = InvalidVarId;
    std::int64_t C = 0;
    bool IsConst = false;
    /// True when the variable (or constant) has a matrix slot.
    bool Known = false;
  };

  /// Resolves \p E for repeated VarId-level queries.
  ResolvedForm resolve(const LinearExpr &E) const;

  /// `provesLE` over pre-resolved forms; identical semantics to the
  /// LinearExpr overload.
  bool provesLE(const ResolvedForm &Lhs, const ResolvedForm &Rhs) const;

  /// Best provable C with `A <= B + C`, or nullopt if unconstrained /
  /// unknown vars. A and B may be variable names.
  std::optional<std::int64_t> bestBound(const std::string &A,
                                        const std::string &B) const;

  /// If `A == B + c` is implied for some unique c, returns c.
  std::optional<std::int64_t> offsetBetween(const std::string &A,
                                            const std::string &B) const;

  /// If \p Var is pinned to a single value, returns it.
  std::optional<std::int64_t> constValue(const std::string &Var) const;

  /// All `var + c` forms provably equal to \p E (including E itself),
  /// restricted to existing variables. Used to find alternative
  /// representations of process-set bounds during widening.
  std::vector<LinearExpr> equivalentForms(const LinearExpr &E) const;

  //===--------------------------------------------------------------------===
  // Lattice operations
  //===--------------------------------------------------------------------===

  /// In-place join (least upper bound: union of behaviours). Variables
  /// missing on either side end up unconstrained.
  void joinWith(const ConstraintGraph &O);

  /// In-place widening: keeps only constraints of *this that are stable in
  /// \p O; everything else is dropped to infinity.
  void widenWith(const ConstraintGraph &O);

  /// In-place meet (conjunction).
  void meetWith(const ConstraintGraph &O);

  /// True if *this implies every constraint of \p O (i.e. *this is more
  /// precise or equal). Infeasible implies everything.
  bool implies(const ConstraintGraph &O) const;

  /// Structural equality of the closed forms over the union of variables.
  bool equals(const ConstraintGraph &O) const;

  //===--------------------------------------------------------------------===
  // Maintenance
  //===--------------------------------------------------------------------===

  /// Forces full closure now (otherwise lazy on first query).
  void close() const;

  /// Releases this graph's DBM block from budget accounting: refunds the
  /// accounted bytes and unbinds the Accountant, exactly what
  /// ClosureMemo::insert does for cross-session blocks. Required before
  /// state containing this graph escapes the session that owns the
  /// (stack-local) AnalysisBudget — e.g. a captured replay trace.
  /// Idempotent; safe on blocks shared with live states (accounting is
  /// enforcement bookkeeping, never semantics).
  void detachAccounting() const;

  DbmBackend backend() const { return Backend; }

  /// True when this graph still shares its matrix with another copy (or a
  /// memo entry) — i.e. no mutation has detached it yet.
  bool sharesStorage() const { return !Cow.unique(); }

  /// Human-readable dump of all finite constraints.
  std::string str() const;

private:
  unsigned zeroSlot() const { return 0; }

  /// The matrix slot of \p Id in this graph, if present.
  std::optional<unsigned> slotOf(VarId Id) const;

  /// The matrix slot of \p Id, appending an unconstrained variable if
  /// needed.
  unsigned ensureSlot(VarId Id);

  /// Resolves the slot of \p O's variable \p Id in *this* graph, mapping
  /// through names when the two graphs use different symbol tables.
  std::optional<unsigned> slotForOther(const ConstraintGraph &O,
                                       VarId Id) const;

  /// Slot + offset encoding of a LinearExpr (constants -> zero slot).
  std::pair<unsigned, std::int64_t> encode(const LinearExpr &E);
  std::optional<std::pair<unsigned, std::int64_t>>
  encodeConst(const LinearExpr &E) const;

  void addEdge(unsigned I, unsigned J, std::int64_t C);

  /// Clones the shared block if needed before a mutation; bumps the
  /// cg.cow.detach counter when a real clone happened.
  DbmShared &mutableBlock();

  /// Floyd-Warshall closure; sets Feasible. O(n^3). Bumps the stats
  /// cells, then delegates to kernel::fullClose (numeric/ClosureKernel.h:
  /// the flat blocked/sparse kernel on dense storage, the reference loop
  /// otherwise).
  void fullClose(DbmShared &B) const;

  /// Repairs closure after tightening edge (I, J); requires the matrix was
  /// closed before. O(n^2). Delegates to kernel::closeAfterEdge.
  void closeAfterEdge(DbmShared &B, unsigned I, unsigned J) const;

  /// Cached StatsRegistry counter cells, resolved once per fresh graph so
  /// the hot paths (state copies, closures) bump an atomic directly
  /// instead of doing a string lookup under the registry mutex. Null cells
  /// (no registry) make bumps no-ops.
  struct CounterCells {
    std::atomic<std::int64_t> *CowCopies = nullptr;
    std::atomic<std::int64_t> *CowDetaches = nullptr;
    std::atomic<std::int64_t> *FullCalls = nullptr;
    std::atomic<std::int64_t> *FullVarsum = nullptr;
    std::atomic<std::int64_t> *IncrCalls = nullptr;
    std::atomic<std::int64_t> *IncrVarsum = nullptr;
    std::atomic<std::int64_t> *MemoHits = nullptr;
    std::atomic<std::int64_t> *MemoMisses = nullptr;
    /// Nanosecond cell for the cg.closure.seconds timer.
    std::atomic<std::int64_t> *ClosureNanos = nullptr;
  };

  static void bump(std::atomic<std::int64_t> *Cell, std::int64_t Delta = 1) {
    if (Cell)
      Cell->fetch_add(Delta, std::memory_order_relaxed);
  }

  DbmBackend Backend;
  StatsRegistry *Stats;
  CounterCells Cells;
  SymbolTablePtr Syms;
  ClosureMemoPtr Memo;
  /// Matrix slot -> interned id; Vars[0] is the zero variable.
  std::vector<VarId> Vars;
  mutable CowDbm Cow;
};

} // namespace csdf

#endif // CSDF_NUMERIC_CONSTRAINTGRAPH_H
