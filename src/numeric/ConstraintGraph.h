//===- numeric/ConstraintGraph.h - Difference-constraint domain ----------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint-graph abstract domain of Section VII-A: a conjunction of
/// inequalities `v_i <= v_j + c` over named variables, exactly the
/// representation suggested by CLR ch. 25.5 and Shaham et al. that the
/// paper's prototype uses. A distinguished zero variable turns unary bounds
/// (`v <= c`, `v >= c`) into difference constraints.
///
/// Consistency is maintained by transitive closure: the O(n^3)
/// Floyd-Warshall `close()` and the O(n^2) single-edge repair
/// `closeAfterEdge()` — the two closure variants whose call counts and
/// average variable counts Section IX profiles (217 full / 78 incremental
/// calls, avg 52.3 / 66.3 vars). Both bump StatsRegistry counters so the
/// benchmark harness can reproduce that profile.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_CONSTRAINTGRAPH_H
#define CSDF_NUMERIC_CONSTRAINTGRAPH_H

#include "numeric/DbmStorage.h"
#include "numeric/LinearExpr.h"
#include "support/Stats.h"

#include <optional>
#include <string>
#include <vector>

namespace csdf {

/// A conjunction of difference constraints over named variables.
///
/// The graph is *infeasible* (bottom) when the constraints are
/// contradictory; most queries on an infeasible graph are vacuously true.
class ConstraintGraph {
public:
  explicit ConstraintGraph(DbmBackend Backend = DbmBackend::Dense,
                           StatsRegistry *Stats = &StatsRegistry::global());

  ConstraintGraph(const ConstraintGraph &O);
  ConstraintGraph &operator=(const ConstraintGraph &O);
  ConstraintGraph(ConstraintGraph &&) = default;
  ConstraintGraph &operator=(ConstraintGraph &&) = default;

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  /// Returns the index of \p Name, creating the variable unconstrained if
  /// needed.
  unsigned ensureVar(const std::string &Name);

  /// Returns the index of \p Name if it exists.
  std::optional<unsigned> findVar(const std::string &Name) const;

  bool hasVar(const std::string &Name) const {
    return findVar(Name).has_value();
  }

  /// Number of variables, excluding the internal zero variable.
  unsigned numVars() const {
    return static_cast<unsigned>(Names.size()) - 1;
  }

  /// All variable names (excluding the zero variable).
  std::vector<std::string> varNames() const;

  /// Removes \p Name after closing, so constraints implied through it
  /// survive.
  void removeVar(const std::string &Name);

  /// Renames every variable via \p Rename (must stay injective).
  void renameVars(const std::vector<std::pair<std::string, std::string>>
                      &Renames);

  //===--------------------------------------------------------------------===
  // Constraints and transfer
  //===--------------------------------------------------------------------===

  /// Adds `A <= B + C` for variables by name.
  void addLE(const std::string &A, const std::string &B, std::int64_t C);

  /// Adds `Lhs <= Rhs` for `var + c` forms (constants use the zero var).
  void addLE(const LinearExpr &Lhs, const LinearExpr &Rhs);

  /// Adds `Lhs == Rhs` (both directions).
  void addEQ(const LinearExpr &Lhs, const LinearExpr &Rhs);

  /// Adds `Var <= C` / `Var >= C`.
  void addUpperBound(const std::string &Var, std::int64_t C);
  void addLowerBound(const std::string &Var, std::int64_t C);

  /// Transfer for `X := E` where E is `var + c` or `c`. Handles X := X + c
  /// exactly (bound shifting); otherwise havocs X and equates.
  void assign(const std::string &X, const LinearExpr &E);

  /// Forgets everything known about \p X.
  void havoc(const std::string &X);

  //===--------------------------------------------------------------------===
  // Queries (all imply closure)
  //===--------------------------------------------------------------------===

  /// False when the constraints are contradictory.
  bool isFeasible() const;

  /// True if `Lhs <= Rhs` is implied. Vacuously true when infeasible.
  bool provesLE(const LinearExpr &Lhs, const LinearExpr &Rhs) const;

  /// True if `Lhs == Rhs` is implied.
  bool provesEQ(const LinearExpr &Lhs, const LinearExpr &Rhs) const;

  /// Best provable C with `A <= B + C`, or nullopt if unconstrained /
  /// unknown vars. A and B may be variable names.
  std::optional<std::int64_t> bestBound(const std::string &A,
                                        const std::string &B) const;

  /// If `A == B + c` is implied for some unique c, returns c.
  std::optional<std::int64_t> offsetBetween(const std::string &A,
                                            const std::string &B) const;

  /// If \p Var is pinned to a single value, returns it.
  std::optional<std::int64_t> constValue(const std::string &Var) const;

  /// All `var + c` forms provably equal to \p E (including E itself),
  /// restricted to existing variables. Used to find alternative
  /// representations of process-set bounds during widening.
  std::vector<LinearExpr> equivalentForms(const LinearExpr &E) const;

  //===--------------------------------------------------------------------===
  // Lattice operations
  //===--------------------------------------------------------------------===

  /// In-place join (least upper bound: union of behaviours). Variables
  /// missing on either side end up unconstrained.
  void joinWith(const ConstraintGraph &O);

  /// In-place widening: keeps only constraints of *this that are stable in
  /// \p O; everything else is dropped to infinity.
  void widenWith(const ConstraintGraph &O);

  /// In-place meet (conjunction).
  void meetWith(const ConstraintGraph &O);

  /// True if *this implies every constraint of \p O (i.e. *this is more
  /// precise or equal). Infeasible implies everything.
  bool implies(const ConstraintGraph &O) const;

  /// Structural equality of the closed forms over the union of variables.
  bool equals(const ConstraintGraph &O) const;

  //===--------------------------------------------------------------------===
  // Maintenance
  //===--------------------------------------------------------------------===

  /// Forces full closure now (otherwise lazy on first query).
  void close() const;

  DbmBackend backend() const { return Backend; }

  /// Human-readable dump of all finite constraints.
  std::string str() const;

private:
  unsigned zeroIdx() const { return 0; }

  /// Index + offset encoding of a LinearExpr (constants -> zero var).
  std::pair<unsigned, std::int64_t> encode(const LinearExpr &E);
  std::optional<std::pair<unsigned, std::int64_t>>
  encodeConst(const LinearExpr &E) const;

  void addEdge(unsigned I, unsigned J, std::int64_t C);

  /// Floyd-Warshall closure; sets Feasible. O(n^3).
  void fullClose() const;

  /// Repairs closure after tightening edge (I, J); requires the matrix was
  /// closed before. O(n^2).
  void closeAfterEdge(unsigned I, unsigned J) const;

  DbmBackend Backend;
  StatsRegistry *Stats;
  std::vector<std::string> Names; // Names[0] is the zero variable.
  mutable std::unique_ptr<DbmStorage> Matrix;
  mutable bool Closed = true;
  mutable bool Feasible = true;
  /// Set when exactly one edge was tightened since the last closure, which
  /// enables the O(n^2) repair path.
  mutable std::optional<std::pair<unsigned, unsigned>> PendingEdge;
};

} // namespace csdf

#endif // CSDF_NUMERIC_CONSTRAINTGRAPH_H
