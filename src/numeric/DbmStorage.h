//===- numeric/DbmStorage.h - Bound-matrix storage backends -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage backends for the constraint graph's difference-bound matrix.
/// Section IX of the paper attributes most of the prototype's cost to
/// transitive closures over STL-container state and lists "arrays instead
/// of C++ STL containers" as optimization direction 3. Both variants are
/// implemented here so the ablation benchmark (E6) can measure the gap:
///
///   * DenseDbmStorage — flat contiguous rows (stride >= logical size, so
///     variable growth is an O(n) fill instead of an O(n^2) re-layout),
///     arena-pooled buffers, and a per-row occupancy bitmap; exposes a
///     raw row view that the non-virtual closure kernel
///     (numeric/ClosureKernel.h) vectorizes over;
///   * MapDbmStorage   — std::map keyed by (row, col), mirroring the
///     prototype's container-heavy state representation.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_DBMSTORAGE_H
#define CSDF_NUMERIC_DBMSTORAGE_H

#include "support/Arena.h"

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace csdf {

class AnalysisBudget;
class DenseDbmStorage;

/// The "no constraint" bound. Kept far from the int64 limits so saturated
/// additions cannot overflow.
inline constexpr std::int64_t DbmInfinity =
    std::numeric_limits<std::int64_t>::max() / 4;

/// Saturating addition treating DbmInfinity as absorbing.
inline std::int64_t dbmAdd(std::int64_t A, std::int64_t B) {
  if (A >= DbmInfinity || B >= DbmInfinity)
    return DbmInfinity;
  return A + B;
}

/// Abstract square matrix of bounds: entry (I, J) is the best known C with
/// v_I <= v_J + C; DbmInfinity means unconstrained.
class DbmStorage {
public:
  virtual ~DbmStorage() = default;

  virtual std::int64_t get(unsigned I, unsigned J) const = 0;
  virtual void set(unsigned I, unsigned J, std::int64_t Bound) = 0;
  /// Grows to \p N variables; new entries are unconstrained.
  virtual void resize(unsigned N) = 0;
  virtual unsigned size() const = 0;
  virtual std::unique_ptr<DbmStorage> clone() const = 0;

  /// Removes variable \p Victim, renumbering later variables down by one.
  virtual void removeVar(unsigned Victim) = 0;

  /// Approximate heap bytes held by this matrix, for the AnalysisBudget
  /// memory ceiling.
  virtual std::uint64_t byteSize() const = 0;

  /// The flat-kernel discriminator: non-null when this storage is a
  /// DenseDbmStorage, in which case the closure kernel bypasses virtual
  /// get/set entirely (one virtual call per closure instead of three per
  /// matrix element).
  virtual DenseDbmStorage *asDense() { return nullptr; }
  virtual const DenseDbmStorage *asDense() const { return nullptr; }
};

/// Flat row-major array backend (the paper's optimization direction 3).
///
/// v2 layout: row I starts at `rows() + I * rowStride()`, with
/// rowStride() == allocated capacity >= size(). Keeping the stride at
/// capacity means growing by one variable (the engine adds variables one
/// at a time while building cold graphs) only fills the new row/column
/// with DbmInfinity instead of re-laying-out the whole matrix; the buffer
/// itself is recycled through the support/Arena pool. A per-row occupancy
/// bitmap records which rows carry any finite off-diagonal bound — the
/// closure kernel skips unoccupied rows wholesale, which collapses the
/// O(n^3) cold closure on the common mostly-unconstrained graphs.
///
/// Bitmap contract (conservative, one-sided): a clear bit guarantees the
/// row has no finite off-diagonal entry; a set bit may be stale (set()
/// never clears — writing DbmInfinity over a bound leaves the bit set).
/// Closure preserves it without maintenance because min-plus updates only
/// ever write finite bounds into rows that already had one.
class DenseDbmStorage final : public DbmStorage {
public:
  std::int64_t get(unsigned I, unsigned J) const override {
    return Data[static_cast<std::size_t>(I) * Cap + J];
  }
  void set(unsigned I, unsigned J, std::int64_t Bound) override {
    Data[static_cast<std::size_t>(I) * Cap + J] = Bound;
    Occ[I] = static_cast<std::uint8_t>(
        Occ[I] | static_cast<std::uint8_t>(I != J && Bound < DbmInfinity));
  }
  void resize(unsigned NewN) override;
  unsigned size() const override { return N; }
  std::unique_ptr<DbmStorage> clone() const override {
    return std::make_unique<DenseDbmStorage>(*this);
  }
  void removeVar(unsigned Victim) override;
  std::uint64_t byteSize() const override {
    return Data.capacity() * sizeof(std::int64_t) + Occ.capacity();
  }

  DenseDbmStorage *asDense() override { return this; }
  const DenseDbmStorage *asDense() const override { return this; }

  //===--------------------------------------------------------------------===
  // Flat view for the closure kernel
  //===--------------------------------------------------------------------===

  /// First element of row 0; row I is at rows() + I * rowStride(). Only
  /// the leading size() entries of each row are meaningful.
  std::int64_t *rows() { return Data.data(); }
  const std::int64_t *rows() const { return Data.data(); }

  /// Distance in elements between consecutive rows (the allocation
  /// capacity, >= size()).
  unsigned rowStride() const { return Cap; }

  /// Per-row occupancy: rowOccupancy()[I] == 0 guarantees row I has no
  /// finite off-diagonal bound.
  const std::uint8_t *rowOccupancy() const { return Occ.data(); }

private:
  unsigned N = 0;   ///< Logical variable count.
  unsigned Cap = 0; ///< Row stride; Data holds Cap * Cap elements.
  std::vector<std::int64_t, PoolAllocator<std::int64_t>> Data;
  std::vector<std::uint8_t> Occ; ///< N entries.
};

/// std::map backend modelling the prototype's STL-heavy state (only finite
/// bounds are stored).
class MapDbmStorage final : public DbmStorage {
public:
  std::int64_t get(unsigned I, unsigned J) const override {
    auto It = Bounds.find({I, J});
    return It == Bounds.end() ? DbmInfinity : It->second;
  }
  void set(unsigned I, unsigned J, std::int64_t Bound) override {
    if (Bound >= DbmInfinity)
      Bounds.erase({I, J});
    else
      Bounds[{I, J}] = Bound;
  }
  void resize(unsigned NewN) override { N = NewN; }
  unsigned size() const override { return N; }
  std::unique_ptr<DbmStorage> clone() const override {
    return std::make_unique<MapDbmStorage>(*this);
  }
  void removeVar(unsigned Victim) override;
  std::uint64_t byteSize() const override {
    // Per-node estimate: key + value + rb-tree bookkeeping.
    return Bounds.size() * 64;
  }

private:
  unsigned N = 0;
  std::map<std::pair<unsigned, unsigned>, std::int64_t> Bounds;
};

/// Which backend a ConstraintGraph uses.
enum class DbmBackend {
  Dense,
  MapBased,
};

/// Creates an empty storage of the given backend.
std::unique_ptr<DbmStorage> makeDbmStorage(DbmBackend Backend);

//===----------------------------------------------------------------------===//
// Copy-on-write sharing
//===----------------------------------------------------------------------===//

/// The shared block behind a copy-on-write DBM handle: the matrix plus the
/// closure bookkeeping that describes it. Closed/Feasible/PendingEdge live
/// *inside* the block so that closing the matrix through one handle is
/// visible to every handle sharing it — closure canonicalizes the
/// represented constraint set without changing it, so sharing the result
/// is always sound (and is what makes the closure memo's blocks reusable).
struct DbmShared {
  std::unique_ptr<DbmStorage> M;
  bool Closed = true;
  bool Feasible = true;
  /// Set when exactly one edge was tightened since the last closure, which
  /// enables the O(n^2) repair path.
  std::optional<std::pair<unsigned, unsigned>> PendingEdge;
  /// False until the matrix has been closed once. Cold matrices (still
  /// being built, never queried) batch all tightenings into one full
  /// closure at the first query — which the ClosureMemo can serve when an
  /// identical graph was built before — while warm matrices repair each
  /// tightening eagerly with the O(n^2) path, the pCFG engine's
  /// steady-state pattern. Heuristic bookkeeping only — it never affects
  /// the represented constraint set.
  bool EverClosed = false;

  /// Bytes currently charged to Accountant for this block's matrix.
  std::uint64_t AccountedBytes = 0;
  /// The AnalysisBudget the bytes are charged to, bound lazily from the
  /// thread's current budget at the first reaccount(). Non-owning: the
  /// budget must outlive every block accounted against it.
  AnalysisBudget *Accountant = nullptr;

  DbmShared() = default;
  explicit DbmShared(std::unique_ptr<DbmStorage> Storage)
      : M(std::move(Storage)) {}
  ~DbmShared();

  DbmShared(const DbmShared &) = delete;
  DbmShared &operator=(const DbmShared &) = delete;

  /// Re-reads the matrix's byteSize() and charges the delta to the bound
  /// budget (binding to the thread's current budget first if unbound).
  /// Call after any allocation-changing mutation; a no-op when no budget
  /// is active.
  void reaccount();
};

/// Copy-on-write handle to a DbmShared block. Copying a handle is O(1);
/// the matrix is cloned only when a handle actually mutates while others
/// (or the closure memo) still reference the block. This is what turns the
/// pCFG engine's pervasive state copies (split, join, widen, match) from
/// O(n^2) deep copies into pointer bumps.
class CowDbm {
public:
  explicit CowDbm(DbmBackend Backend)
      : B(std::make_shared<DbmShared>(makeDbmStorage(Backend))) {}

  CowDbm(const CowDbm &) = default;
  CowDbm &operator=(const CowDbm &) = default;
  CowDbm(CowDbm &&) = default;
  CowDbm &operator=(CowDbm &&) = default;

  /// Read-only view of the shared block.
  const DbmShared &ro() const { return *B; }

  /// True when no other handle (or memo entry) shares the block.
  bool unique() const { return B.use_count() == 1; }

  /// Mutable access for state-changing operations: clones the block first
  /// when it is shared. Returns true when a clone (detach) happened.
  bool detach();

  /// Mutable block for detach-free writes. Only valid for operations that
  /// preserve the represented constraint set (transitive closure) — every
  /// sharing handle observes the write.
  DbmShared &rwShared() const { return *B; }

  /// Mutable block after detach().
  DbmShared &rw() {
    detach();
    return *B;
  }

  /// Points this handle at \p NewBlock (used to adopt memoized closures).
  void adopt(std::shared_ptr<DbmShared> NewBlock) const {
    B = std::move(NewBlock);
  }

  /// The underlying block, for sharing with a memo.
  const std::shared_ptr<DbmShared> &block() const { return B; }

private:
  mutable std::shared_ptr<DbmShared> B;
};

/// 64-bit FNV-1a fingerprint of \p M's contents (size + every bound), the
/// closure-memo key. Collisions are tolerated: memo hits verify the full
/// pre-closure image before adopting a result. Dense storages hash their
/// flat rows directly; the value is layout-independent (row-major logical
/// order), so it is unchanged from the virtual-dispatch implementation.
std::uint64_t dbmFingerprint(const DbmStorage &M);

/// Row-major snapshot of every bound in \p M, the collision-proof part of
/// a closure-memo key.
std::vector<std::int64_t> dbmSnapshot(const DbmStorage &M);

} // namespace csdf

#endif // CSDF_NUMERIC_DBMSTORAGE_H
