//===- numeric/DbmStorage.h - Bound-matrix storage backends -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage backends for the constraint graph's difference-bound matrix.
/// Section IX of the paper attributes most of the prototype's cost to
/// transitive closures over STL-container state and lists "arrays instead
/// of C++ STL containers" as optimization direction 3. Both variants are
/// implemented here so the ablation benchmark (E6) can measure the gap:
///
///   * DenseDbmStorage — flat contiguous array, cache friendly;
///   * MapDbmStorage   — std::map keyed by (row, col), mirroring the
///     prototype's container-heavy state representation.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_DBMSTORAGE_H
#define CSDF_NUMERIC_DBMSTORAGE_H

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

namespace csdf {

/// The "no constraint" bound. Kept far from the int64 limits so saturated
/// additions cannot overflow.
inline constexpr std::int64_t DbmInfinity =
    std::numeric_limits<std::int64_t>::max() / 4;

/// Saturating addition treating DbmInfinity as absorbing.
inline std::int64_t dbmAdd(std::int64_t A, std::int64_t B) {
  if (A >= DbmInfinity || B >= DbmInfinity)
    return DbmInfinity;
  return A + B;
}

/// Abstract square matrix of bounds: entry (I, J) is the best known C with
/// v_I <= v_J + C; DbmInfinity means unconstrained.
class DbmStorage {
public:
  virtual ~DbmStorage() = default;

  virtual std::int64_t get(unsigned I, unsigned J) const = 0;
  virtual void set(unsigned I, unsigned J, std::int64_t Bound) = 0;
  /// Grows to \p N variables; new entries are unconstrained.
  virtual void resize(unsigned N) = 0;
  virtual unsigned size() const = 0;
  virtual std::unique_ptr<DbmStorage> clone() const = 0;

  /// Removes variable \p Victim, renumbering later variables down by one.
  virtual void removeVar(unsigned Victim) = 0;
};

/// Flat row-major array backend (the paper's optimization direction 3).
class DenseDbmStorage final : public DbmStorage {
public:
  std::int64_t get(unsigned I, unsigned J) const override {
    return Data[I * N + J];
  }
  void set(unsigned I, unsigned J, std::int64_t Bound) override {
    Data[I * N + J] = Bound;
  }
  void resize(unsigned NewN) override;
  unsigned size() const override { return N; }
  std::unique_ptr<DbmStorage> clone() const override {
    return std::make_unique<DenseDbmStorage>(*this);
  }
  void removeVar(unsigned Victim) override;

private:
  unsigned N = 0;
  std::vector<std::int64_t> Data;
};

/// std::map backend modelling the prototype's STL-heavy state (only finite
/// bounds are stored).
class MapDbmStorage final : public DbmStorage {
public:
  std::int64_t get(unsigned I, unsigned J) const override {
    auto It = Bounds.find({I, J});
    return It == Bounds.end() ? DbmInfinity : It->second;
  }
  void set(unsigned I, unsigned J, std::int64_t Bound) override {
    if (Bound >= DbmInfinity)
      Bounds.erase({I, J});
    else
      Bounds[{I, J}] = Bound;
  }
  void resize(unsigned NewN) override { N = NewN; }
  unsigned size() const override { return N; }
  std::unique_ptr<DbmStorage> clone() const override {
    return std::make_unique<MapDbmStorage>(*this);
  }
  void removeVar(unsigned Victim) override;

private:
  unsigned N = 0;
  std::map<std::pair<unsigned, unsigned>, std::int64_t> Bounds;
};

/// Which backend a ConstraintGraph uses.
enum class DbmBackend {
  Dense,
  MapBased,
};

/// Creates an empty storage of the given backend.
std::unique_ptr<DbmStorage> makeDbmStorage(DbmBackend Backend);

} // namespace csdf

#endif // CSDF_NUMERIC_DBMSTORAGE_H
