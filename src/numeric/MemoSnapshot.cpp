//===- numeric/MemoSnapshot.cpp -------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/MemoSnapshot.h"

#include "support/Store.h"

#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

constexpr const char *SnapshotFileName = "closure-memo.snap";

/// The framed record's key: a fixed tag plus the caller's salt, verified
/// byte-for-byte by unframeStoreRecord — a snapshot from a different
/// build (different salt) fails the key check exactly like corruption.
std::string recordKey(const std::string &Salt) {
  return "closure-memo\n" + Salt;
}

void putU32(std::string &Out, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Little-endian bounded reader; every take* checks the remaining length
/// so a truncated or hostile payload can never read past the buffer.
struct Reader {
  const std::string &Buf;
  std::size_t Pos = 0;

  bool take(std::size_t N) { return Buf.size() - Pos >= N; }
  bool u32(std::uint32_t &V) {
    if (!take(4))
      return false;
    V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | static_cast<unsigned char>(Buf[Pos + I]);
    Pos += 4;
    return true;
  }
  bool u64(std::uint64_t &V) {
    if (!take(8))
      return false;
    V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | static_cast<unsigned char>(Buf[Pos + I]);
    Pos += 8;
    return true;
  }
  bool u8(std::uint8_t &V) {
    if (!take(1))
      return false;
    V = static_cast<unsigned char>(Buf[Pos++]);
    return true;
  }
};

void quarantineFile(const std::string &Dir, const std::string &Path,
                    MemoSnapshotStats &Stats) {
  std::error_code Ec;
  fs::path QDir = fs::path(Dir) / "quarantine";
  fs::create_directories(QDir, Ec);
  fs::rename(Path, QDir / fs::path(Path).filename(), Ec);
  if (Ec) // e.g. quarantine dir uncreatable — never adopt the bytes
    fs::remove(Path, Ec);
  ++Stats.Quarantined;
}

} // namespace

std::string csdf::serializeClosureMemo(const ClosureMemo &Memo,
                                       const std::string &Salt,
                                       MemoSnapshotStats &Stats) {
  std::string Payload;
  putU32(Payload, MemoSnapshotFormatVersion);
  std::uint32_t Count = 0;
  std::string Entries;
  Memo.forEach([&](std::uint64_t Key, DbmBackend Backend,
                   const std::vector<std::int64_t> &Pre,
                   const DbmShared &Closed) {
    unsigned N = Closed.M->size();
    putU64(Entries, Key);
    Entries.push_back(static_cast<char>(Backend));
    Entries.push_back(static_cast<char>(Closed.Feasible ? 1 : 0));
    putU32(Entries, static_cast<std::uint32_t>(Pre.size()));
    for (std::int64_t B : Pre)
      putU64(Entries, static_cast<std::uint64_t>(B));
    putU32(Entries, N);
    for (unsigned I = 0; I < N; ++I)
      for (unsigned J = 0; J < N; ++J)
        putU64(Entries,
               static_cast<std::uint64_t>(Closed.M->get(I, J)));
    ++Count;
  });
  putU32(Payload, Count);
  Payload += Entries;
  Stats.Saved = Count;
  return frameStoreRecord(recordKey(Salt), Payload);
}

bool csdf::adoptClosureMemo(const std::string &Bytes,
                            const std::string &Salt, ClosureMemo &Memo,
                            MemoSnapshotStats &Stats) {
  std::optional<std::string> Payload =
      unframeStoreRecord(Bytes, recordKey(Salt));
  if (!Payload) {
    ++Stats.Rejected;
    return false;
  }
  Reader R{*Payload};
  std::uint32_t Version = 0, Count = 0;
  if (!R.u32(Version) || Version != MemoSnapshotFormatVersion ||
      !R.u32(Count)) {
    ++Stats.Rejected;
    return false;
  }

  // Decode everything before inserting anything: a snapshot that fails
  // halfway must contribute nothing, not a prefix.
  struct Decoded {
    std::uint64_t Key;
    DbmBackend Backend;
    bool Feasible;
    std::vector<std::int64_t> Pre;
    unsigned N;
    std::vector<std::int64_t> Bounds;
  };
  std::vector<Decoded> Entries;
  Entries.reserve(Count);
  for (std::uint32_t E = 0; E < Count; ++E) {
    Decoded D;
    std::uint8_t Backend = 0, Feasible = 0;
    std::uint32_t PreLen = 0, N = 0;
    if (!R.u64(D.Key) || !R.u8(Backend) || !R.u8(Feasible) ||
        !R.u32(PreLen) || !R.take(static_cast<std::size_t>(PreLen) * 8)) {
      ++Stats.Rejected;
      return false;
    }
    if (Backend != static_cast<std::uint8_t>(DbmBackend::Dense) &&
        Backend != static_cast<std::uint8_t>(DbmBackend::MapBased)) {
      ++Stats.Rejected;
      return false;
    }
    D.Backend = static_cast<DbmBackend>(Backend);
    D.Feasible = Feasible != 0;
    D.Pre.reserve(PreLen);
    for (std::uint32_t I = 0; I < PreLen; ++I) {
      std::uint64_t V = 0;
      R.u64(V); // cannot fail: length pre-checked by take() above
      D.Pre.push_back(static_cast<std::int64_t>(V));
    }
    if (!R.u32(N) || N > 4096 ||
        !R.take(static_cast<std::size_t>(N) * N * 8)) {
      ++Stats.Rejected;
      return false;
    }
    D.N = N;
    D.Bounds.reserve(static_cast<std::size_t>(N) * N);
    for (std::size_t I = 0; I < static_cast<std::size_t>(N) * N; ++I) {
      std::uint64_t V = 0;
      R.u64(V); // cannot fail: length pre-checked by take() above
      D.Bounds.push_back(static_cast<std::int64_t>(V));
    }
    Entries.push_back(std::move(D));
  }
  if (R.Pos != Payload->size()) { // trailing garbage past the last entry
    ++Stats.Rejected;
    return false;
  }

  for (Decoded &D : Entries) {
    auto Block = std::make_shared<DbmShared>(makeDbmStorage(D.Backend));
    Block->M->resize(D.N);
    for (unsigned I = 0; I < D.N; ++I)
      for (unsigned J = 0; J < D.N; ++J)
        Block->M->set(I, J, D.Bounds[static_cast<std::size_t>(I) * D.N + J]);
    // Adopted blocks are closed by construction (they were snapshots of
    // closed blocks); the closed-shared-block invariant then keeps every
    // later reader from mutating them in place.
    Block->Closed = true;
    Block->Feasible = D.Feasible;
    Block->EverClosed = true;
    Memo.insert(D.Key, D.Backend, std::move(D.Pre), std::move(Block));
    ++Stats.Adopted;
  }
  return true;
}

bool csdf::saveMemoSnapshot(const std::string &Dir, const std::string &Salt,
                            const ClosureMemo &Memo,
                            MemoSnapshotStats &Stats, std::string &Error) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec || !fs::is_directory(Dir)) {
    Error = "cannot open memo directory '" + Dir +
            "': " + (Ec ? Ec.message() : "not a directory");
    return false;
  }

  std::string Rec = serializeClosureMemo(Memo, Salt, Stats);
  std::string Final = Dir + "/" + SnapshotFileName;
  std::string Tmp = Final + ".tmp." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = "cannot write memo snapshot '" + Tmp + "'";
    return false;
  }
  std::size_t Off = 0;
  bool Ok = true;
  while (Ok && Off < Rec.size()) {
    ssize_t N = ::write(Fd, Rec.data() + Off, Rec.size() - Off);
    if (N <= 0)
      Ok = false;
    else
      Off += static_cast<std::size_t>(N);
  }
  if (Ok)
    Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Ok || ::rename(Tmp.c_str(), Final.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    Error = "cannot persist memo snapshot '" + Final + "'";
    return false;
  }
  return true;
}

bool csdf::loadMemoSnapshot(const std::string &Dir, const std::string &Salt,
                            ClosureMemo &Memo, MemoSnapshotStats &Stats) {
  std::string Path = Dir + "/" + SnapshotFileName;
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return true; // first boot: nothing to adopt, nothing wrong
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (adoptClosureMemo(Bytes, Salt, Memo, Stats))
    return true;
  quarantineFile(Dir, Path, Stats);
  return false;
}
