//===- numeric/DbmStorage.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/DbmStorage.h"

#include "support/Budget.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>

using namespace csdf;

DbmShared::~DbmShared() {
  if (Accountant && AccountedBytes)
    Accountant->accountBytes(-static_cast<std::int64_t>(AccountedBytes));
}

void DbmShared::reaccount() {
  if (!Accountant)
    Accountant = currentBudget();
  if (!Accountant)
    return;
  std::uint64_t Now = M ? M->byteSize() : 0;
  Accountant->accountBytes(static_cast<std::int64_t>(Now) -
                           static_cast<std::int64_t>(AccountedBytes));
  AccountedBytes = Now;
}

void DenseDbmStorage::resize(unsigned NewN) {
  assert(NewN >= N && "DBM storage cannot shrink via resize");
  if (NewN == N)
    return;
  if (NewN > Cap) {
    // Re-layout into a geometrically grown buffer so the engine's
    // one-variable-at-a-time growth costs one fill per variable, not one
    // O(n^2) copy per variable.
    unsigned NewCap = std::max(NewN, Cap ? Cap * 2 : 8u);
    std::vector<std::int64_t, PoolAllocator<std::int64_t>> NewData(
        static_cast<std::size_t>(NewCap) * NewCap, DbmInfinity);
    for (unsigned I = 0; I < N; ++I)
      std::copy_n(Data.data() + static_cast<std::size_t>(I) * Cap, N,
                  NewData.data() + static_cast<std::size_t>(I) * NewCap);
    Data = std::move(NewData);
    Cap = NewCap;
  } else {
    // Within capacity: unconstrain the incoming cells (they may hold
    // stale bounds from an earlier, wider use of this buffer).
    for (unsigned I = 0; I < N; ++I)
      std::fill_n(Data.data() + static_cast<std::size_t>(I) * Cap + N,
                  NewN - N, DbmInfinity);
    for (unsigned I = N; I < NewN; ++I)
      std::fill_n(Data.data() + static_cast<std::size_t>(I) * Cap, NewN,
                  DbmInfinity);
  }
  Occ.resize(NewN, 0);
  N = NewN;
}

void DenseDbmStorage::removeVar(unsigned Victim) {
  assert(Victim < N && "removing a variable that does not exist");
  // Compact in place: rows keep their stride, the victim row/column is
  // squeezed out. Also the one point where the occupancy bitmap is
  // recomputed exactly, clearing any stale bits.
  for (unsigned I = 0, NI = 0; I < N; ++I) {
    if (I == Victim)
      continue;
    const std::int64_t *Src = Data.data() + static_cast<std::size_t>(I) * Cap;
    std::int64_t *Dst = Data.data() + static_cast<std::size_t>(NI) * Cap;
    for (unsigned J = 0, NJ = 0; J < N; ++J) {
      if (J == Victim)
        continue;
      Dst[NJ] = Src[J];
      ++NJ;
    }
    ++NI;
  }
  --N;
  Occ.resize(N);
  for (unsigned I = 0; I < N; ++I) {
    const std::int64_t *Row = Data.data() + static_cast<std::size_t>(I) * Cap;
    std::uint8_t Any = 0;
    for (unsigned J = 0; J < N; ++J)
      Any |= static_cast<std::uint8_t>(J != I && Row[J] < DbmInfinity);
    Occ[I] = Any;
  }
}

void MapDbmStorage::removeVar(unsigned Victim) {
  assert(Victim < N && "removing a variable that does not exist");
  std::map<std::pair<unsigned, unsigned>, std::int64_t> NewBounds;
  for (const auto &[Key, Bound] : Bounds) {
    auto [I, J] = Key;
    if (I == Victim || J == Victim)
      continue;
    NewBounds[{I > Victim ? I - 1 : I, J > Victim ? J - 1 : J}] = Bound;
  }
  Bounds = std::move(NewBounds);
  --N;
}

bool CowDbm::detach() {
  if (B.use_count() == 1)
    return false;
  auto Fresh = std::make_shared<DbmShared>(B->M->clone());
  Fresh->Closed = B->Closed;
  Fresh->Feasible = B->Feasible;
  Fresh->PendingEdge = B->PendingEdge;
  Fresh->EverClosed = B->EverClosed;
  Fresh->reaccount();
  B = std::move(Fresh);
  return true;
}

namespace {

constexpr std::uint64_t FnvOffset = 1469598103934665603ull;
constexpr std::uint64_t FnvPrime = 1099511628211ull;

inline std::uint64_t fnvMix(std::uint64_t H, std::uint64_t V) {
  for (int Byte = 0; Byte < 8; ++Byte) {
    H ^= (V >> (8 * Byte)) & 0xff;
    H *= FnvPrime;
  }
  return H;
}

} // namespace

std::uint64_t csdf::dbmFingerprint(const DbmStorage &M) {
  unsigned N = M.size();
  std::uint64_t H = FnvOffset ^ N;
  if (const DenseDbmStorage *D = M.asDense()) {
    const std::int64_t *Rows = D->rows();
    std::size_t Stride = D->rowStride();
    for (unsigned I = 0; I < N; ++I) {
      const std::int64_t *Row = Rows + I * Stride;
      for (unsigned J = 0; J < N; ++J)
        H = fnvMix(H, static_cast<std::uint64_t>(Row[J]));
    }
    return H;
  }
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      H = fnvMix(H, static_cast<std::uint64_t>(M.get(I, J)));
  return H;
}

std::vector<std::int64_t> csdf::dbmSnapshot(const DbmStorage &M) {
  unsigned N = M.size();
  std::vector<std::int64_t> Image;
  Image.reserve(static_cast<size_t>(N) * N);
  if (const DenseDbmStorage *D = M.asDense()) {
    const std::int64_t *Rows = D->rows();
    std::size_t Stride = D->rowStride();
    for (unsigned I = 0; I < N; ++I)
      Image.insert(Image.end(), Rows + I * Stride, Rows + I * Stride + N);
    return Image;
  }
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      Image.push_back(M.get(I, J));
  return Image;
}

std::unique_ptr<DbmStorage> csdf::makeDbmStorage(DbmBackend Backend) {
  switch (Backend) {
  case DbmBackend::Dense:
    return std::make_unique<DenseDbmStorage>();
  case DbmBackend::MapBased:
    return std::make_unique<MapDbmStorage>();
  }
  csdf_unreachable("unhandled DbmBackend");
}
