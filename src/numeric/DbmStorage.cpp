//===- numeric/DbmStorage.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/DbmStorage.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace csdf;

void DenseDbmStorage::resize(unsigned NewN) {
  assert(NewN >= N && "DBM storage cannot shrink via resize");
  if (NewN == N)
    return;
  std::vector<std::int64_t> NewData(static_cast<size_t>(NewN) * NewN,
                                    DbmInfinity);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      NewData[static_cast<size_t>(I) * NewN + J] = Data[I * N + J];
  Data = std::move(NewData);
  N = NewN;
}

void DenseDbmStorage::removeVar(unsigned Victim) {
  assert(Victim < N && "removing a variable that does not exist");
  std::vector<std::int64_t> NewData(static_cast<size_t>(N - 1) * (N - 1),
                                    DbmInfinity);
  for (unsigned I = 0, NI = 0; I < N; ++I) {
    if (I == Victim)
      continue;
    for (unsigned J = 0, NJ = 0; J < N; ++J) {
      if (J == Victim)
        continue;
      NewData[static_cast<size_t>(NI) * (N - 1) + NJ] = Data[I * N + J];
      ++NJ;
    }
    ++NI;
  }
  Data = std::move(NewData);
  --N;
}

void MapDbmStorage::removeVar(unsigned Victim) {
  assert(Victim < N && "removing a variable that does not exist");
  std::map<std::pair<unsigned, unsigned>, std::int64_t> NewBounds;
  for (const auto &[Key, Bound] : Bounds) {
    auto [I, J] = Key;
    if (I == Victim || J == Victim)
      continue;
    NewBounds[{I > Victim ? I - 1 : I, J > Victim ? J - 1 : J}] = Bound;
  }
  Bounds = std::move(NewBounds);
  --N;
}

std::unique_ptr<DbmStorage> csdf::makeDbmStorage(DbmBackend Backend) {
  switch (Backend) {
  case DbmBackend::Dense:
    return std::make_unique<DenseDbmStorage>();
  case DbmBackend::MapBased:
    return std::make_unique<MapDbmStorage>();
  }
  csdf_unreachable("unhandled DbmBackend");
}
