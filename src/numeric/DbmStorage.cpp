//===- numeric/DbmStorage.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/DbmStorage.h"

#include "support/Budget.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace csdf;

DbmShared::~DbmShared() {
  if (Accountant && AccountedBytes)
    Accountant->accountBytes(-static_cast<std::int64_t>(AccountedBytes));
}

void DbmShared::reaccount() {
  if (!Accountant)
    Accountant = currentBudget();
  if (!Accountant)
    return;
  std::uint64_t Now = M ? M->byteSize() : 0;
  Accountant->accountBytes(static_cast<std::int64_t>(Now) -
                           static_cast<std::int64_t>(AccountedBytes));
  AccountedBytes = Now;
}

void DenseDbmStorage::resize(unsigned NewN) {
  assert(NewN >= N && "DBM storage cannot shrink via resize");
  if (NewN == N)
    return;
  std::vector<std::int64_t> NewData(static_cast<size_t>(NewN) * NewN,
                                    DbmInfinity);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      NewData[static_cast<size_t>(I) * NewN + J] = Data[I * N + J];
  Data = std::move(NewData);
  N = NewN;
}

void DenseDbmStorage::removeVar(unsigned Victim) {
  assert(Victim < N && "removing a variable that does not exist");
  std::vector<std::int64_t> NewData(static_cast<size_t>(N - 1) * (N - 1),
                                    DbmInfinity);
  for (unsigned I = 0, NI = 0; I < N; ++I) {
    if (I == Victim)
      continue;
    for (unsigned J = 0, NJ = 0; J < N; ++J) {
      if (J == Victim)
        continue;
      NewData[static_cast<size_t>(NI) * (N - 1) + NJ] = Data[I * N + J];
      ++NJ;
    }
    ++NI;
  }
  Data = std::move(NewData);
  --N;
}

void MapDbmStorage::removeVar(unsigned Victim) {
  assert(Victim < N && "removing a variable that does not exist");
  std::map<std::pair<unsigned, unsigned>, std::int64_t> NewBounds;
  for (const auto &[Key, Bound] : Bounds) {
    auto [I, J] = Key;
    if (I == Victim || J == Victim)
      continue;
    NewBounds[{I > Victim ? I - 1 : I, J > Victim ? J - 1 : J}] = Bound;
  }
  Bounds = std::move(NewBounds);
  --N;
}

bool CowDbm::detach() {
  if (B.use_count() == 1)
    return false;
  auto Fresh = std::make_shared<DbmShared>(B->M->clone());
  Fresh->Closed = B->Closed;
  Fresh->Feasible = B->Feasible;
  Fresh->PendingEdge = B->PendingEdge;
  Fresh->EverClosed = B->EverClosed;
  Fresh->reaccount();
  B = std::move(Fresh);
  return true;
}

std::uint64_t csdf::dbmFingerprint(const DbmStorage &M) {
  constexpr std::uint64_t Offset = 1469598103934665603ull;
  constexpr std::uint64_t Prime = 1099511628211ull;
  unsigned N = M.size();
  std::uint64_t H = Offset ^ N;
  for (unsigned I = 0; I < N; ++I) {
    for (unsigned J = 0; J < N; ++J) {
      auto V = static_cast<std::uint64_t>(M.get(I, J));
      for (int Byte = 0; Byte < 8; ++Byte) {
        H ^= (V >> (8 * Byte)) & 0xff;
        H *= Prime;
      }
    }
  }
  return H;
}

std::vector<std::int64_t> csdf::dbmSnapshot(const DbmStorage &M) {
  unsigned N = M.size();
  std::vector<std::int64_t> Image;
  Image.reserve(static_cast<size_t>(N) * N);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      Image.push_back(M.get(I, J));
  return Image;
}

std::unique_ptr<DbmStorage> csdf::makeDbmStorage(DbmBackend Backend) {
  switch (Backend) {
  case DbmBackend::Dense:
    return std::make_unique<DenseDbmStorage>();
  case DbmBackend::MapBased:
    return std::make_unique<MapDbmStorage>();
  }
  csdf_unreachable("unhandled DbmBackend");
}
