//===- numeric/MemoSnapshot.h - Durable ClosureMemo snapshots -------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of a ClosureMemo to one on-disk snapshot file, and
/// adoption of such a snapshot into a fresh memo. This is the *near-miss*
/// half of serve durability: the result store (support/Store.h) answers
/// exact request repeats after a restart, but an edited source still pays
/// every O(n^3) closure cold — even though most of its constraint graphs
/// are identical to the prior revision's. Snapshotting the memo makes a
/// `kill -9` + restart warm for those too: the restarted daemon adopts
/// the saved (pre-image -> closed block) pairs and the paper's dominant
/// cost (92.5% of wall time in closures, Section IX) is amortized across
/// process lifetimes, not just requests.
///
/// Format: one file, `closure-memo.snap`, framed with the store's record
/// container (magic, lengths, FNV-1a checksum over key + payload — see
/// frameStoreRecord). The record key embeds a caller-provided salt (serve
/// passes the tool version), so a snapshot written by one build is
/// rejected — quarantined, never adopted — by another whose closure
/// bytes could legitimately differ. The payload is versioned
/// little-endian binary:
///
///   u32 format version (MemoSnapshotFormatVersion)
///   u32 entry count
///   per entry:
///     u64 fingerprint key        u8 backend (DbmBackend)
///     u8 feasible                u32 pre-image length (n*n)
///     i64[n*n] pre-image         u32 closed matrix size n
///     i64[n*n] closed bounds
///
/// Every decode step is bounds-checked; any violation (truncation, a
/// count past the buffer, an unknown backend) rejects the *whole* file —
/// a snapshot is a cache, and a suspect cache is worth less than no
/// cache. Corrupt files are moved to `<dir>/quarantine/` like the
/// store's records, keeping one corruption story across both artifacts.
///
/// Writes are atomic (temp + fsync + rename) for the same reason the
/// store's are: a crash mid-flush must leave the previous good snapshot,
/// not half of a new one.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_MEMOSNAPSHOT_H
#define CSDF_NUMERIC_MEMOSNAPSHOT_H

#include "numeric/ConstraintGraph.h"

#include <cstdint>
#include <string>

namespace csdf {

inline constexpr std::uint32_t MemoSnapshotFormatVersion = 1;

/// Counters for one save or adopt, mirrored into `csdf serve` stats.
struct MemoSnapshotStats {
  /// Entries written by the last save.
  std::uint64_t Saved = 0;
  /// Entries reconstructed and inserted by the last adopt.
  std::uint64_t Adopted = 0;
  /// Adopt attempts rejected wholesale (bad frame, salt mismatch,
  /// unknown format version, truncated payload).
  std::uint64_t Rejected = 0;
  /// Rejected files moved to quarantine/.
  std::uint64_t Quarantined = 0;
};

/// Serializes every entry of \p Memo into a framed snapshot record whose
/// key is salted with \p Salt (the memo itself bounds the entry count).
std::string serializeClosureMemo(const ClosureMemo &Memo,
                                 const std::string &Salt,
                                 MemoSnapshotStats &Stats);

/// Decodes \p Bytes (a framed record as produced by serializeClosureMemo
/// with the same \p Salt) and inserts every entry into \p Memo. Returns
/// false — with nothing inserted — when the record fails any check.
bool adoptClosureMemo(const std::string &Bytes, const std::string &Salt,
                      ClosureMemo &Memo, MemoSnapshotStats &Stats);

/// Atomically writes \p Memo's snapshot to `<Dir>/closure-memo.snap`,
/// creating \p Dir if needed. Returns false with \p Error set on IO
/// failure (never fatal to the caller: the daemon just stays unflushed).
bool saveMemoSnapshot(const std::string &Dir, const std::string &Salt,
                      const ClosureMemo &Memo, MemoSnapshotStats &Stats,
                      std::string &Error);

/// Adopts `<Dir>/closure-memo.snap` into \p Memo if present and valid; a
/// corrupt or mismatched-salt file is moved to `<Dir>/quarantine/` and
/// never adopted. A missing file is not an error (first boot). Returns
/// false only on a rejected file.
bool loadMemoSnapshot(const std::string &Dir, const std::string &Salt,
                      ClosureMemo &Memo, MemoSnapshotStats &Stats);

} // namespace csdf

#endif // CSDF_NUMERIC_MEMOSNAPSHOT_H
