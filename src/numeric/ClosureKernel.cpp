//===- numeric/ClosureKernel.cpp ------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// This translation unit is compiled with the kernel's SIMD flags (see
// src/numeric/CMakeLists.txt); everything that must vectorize lives here.
// tools/check-closure-vectorization.sh recompiles it with the compiler's
// vectorization report enabled and fails CI when the anchored inner loop
// is not vectorized.
//
//===----------------------------------------------------------------------===//

#include "numeric/ClosureKernel.h"

#include "support/Arena.h"
#include "support/Budget.h"

#include <algorithm>

using namespace csdf;

//===----------------------------------------------------------------------===//
// Reference kernels (v1 semantics, virtual dispatch)
//===----------------------------------------------------------------------===//

bool kernel::fullCloseRef(DbmStorage &M) {
  unsigned N = M.size();
  for (unsigned K = 0; K < N; ++K) {
    // The O(n^3) hot spot of the paper's Section IX profile: poll the
    // session budget once per outer iteration so a deadline can interrupt
    // even a single huge closure.
    budgetCheckpoint();
    for (unsigned I = 0; I < N; ++I) {
      std::int64_t BIK = M.get(I, K);
      if (BIK >= DbmInfinity)
        continue;
      for (unsigned J = 0; J < N; ++J) {
        std::int64_t Through = dbmAdd(BIK, M.get(K, J));
        if (Through < M.get(I, J))
          M.set(I, J, Through);
      }
    }
  }
  for (unsigned I = 0; I < N; ++I)
    if (M.get(I, I) < 0)
      return false;
  return true;
}

bool kernel::closeAfterEdgeRef(DbmStorage &M, unsigned I, unsigned J) {
  unsigned N = M.size();
  std::int64_t C = M.get(I, J);
  if (dbmAdd(M.get(J, I), C) < 0)
    return false;
  for (unsigned A = 0; A < N; ++A) {
    std::int64_t AI = M.get(A, I);
    if (AI >= DbmInfinity)
      continue;
    std::int64_t AIC = dbmAdd(AI, C);
    for (unsigned Bc = 0; Bc < N; ++Bc) {
      std::int64_t Through = dbmAdd(AIC, M.get(J, Bc));
      if (Through < M.get(A, Bc))
        M.set(A, Bc, Through);
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Flat kernels
//===----------------------------------------------------------------------===//

namespace {

/// Branchless saturating min-plus over one row segment:
///   RowI[j] = min(RowI[j], BIK (+) RowK[j])   for j in [Lo, Hi)
/// where (+) is dbmAdd with BIK known finite. The select on
/// RowK[j] >= DbmInfinity reproduces dbmAdd's absorbing infinity exactly
/// (a plain add would let a negative BIK pull infinity back into the
/// finite range). Compare/select/min are all lane-wise ops, so with
/// restrict-qualified pointers the loop auto-vectorizes.
///
/// Callers must guarantee RowI != RowK: every call site either skips the
/// aliasing iteration (it is provably a no-op on feasible systems) or
/// addresses disjoint rows.
inline void minPlusRow(std::int64_t *__restrict RowI,
                       const std::int64_t *__restrict RowK, std::int64_t BIK,
                       unsigned Lo, unsigned Hi) {
  for (unsigned J = Lo; J < Hi; ++J) { // CSDF-VEC-ANCHOR
    std::int64_t KJ = RowK[J];
    std::int64_t T = BIK + KJ;
    T = KJ >= DbmInfinity ? DbmInfinity : T;
    RowI[J] = RowI[J] < T ? RowI[J] : T;
  }
}

/// One Floyd–Warshall panel: for K in [KLo, KHi), relax rows [ILo, IHi)
/// against row K over columns [JLo, JHi). With all three ranges equal to
/// a tile this is the diagonal phase; (K, K, J) the row panel; (K, I, K)
/// the column panel; (K, I, J) the remainder — the classic blocked
/// schedule falls out of one helper because the panel always reads
/// A[i][k] and B[k][j] straight from the matrix, which at each phase are
/// exactly the blocks the schedule requires to be final (or the block
/// being updated, for the self-referencing diagonal/panel phases).
///
/// Skips: rows with no finite off-diagonal bound can neither contribute
/// (row K empty => B[k][j] infinite for all j != k, and B[k][k] = 0
/// relaxes nothing) nor improve (row I empty => A[i][k] infinite), and
/// closure never adds a first finite bound to an empty row, so the
/// occupancy bitmap taken at entry stays valid throughout. I == K is
/// skipped because A[k][k] = 0 on feasible systems makes it a no-op, and
/// it is the one pairing where RowI would alias RowK.
void panel(std::int64_t *M, std::size_t Stride, const std::uint8_t *Occ,
           unsigned KLo, unsigned KHi, unsigned ILo, unsigned IHi,
           unsigned JLo, unsigned JHi) {
  for (unsigned K = KLo; K < KHi; ++K) {
    if (!Occ[K])
      continue;
    const std::int64_t *RowK = M + static_cast<std::size_t>(K) * Stride;
    for (unsigned I = ILo; I < IHi; ++I) {
      if (I == K || !Occ[I])
        continue;
      std::int64_t *RowI = M + static_cast<std::size_t>(I) * Stride;
      std::int64_t BIK = RowI[K];
      if (BIK >= DbmInfinity)
        continue;
      minPlusRow(RowI, RowK, BIK, JLo, JHi);
    }
  }
}

} // namespace

bool kernel::fullCloseDense(DenseDbmStorage &D) {
  const unsigned N = D.size();
  std::int64_t *M = D.rows();
  const std::size_t Stride = D.rowStride();
  const std::uint8_t *Occ = D.rowOccupancy();
  constexpr unsigned T = ClosureTile;

  for (unsigned KB = 0; KB < N; KB += T) {
    // Deadline/memory poll per outer k-panel, the blocked counterpart of
    // the reference kernel's per-k checkpoint.
    budgetCheckpoint();
    const unsigned KE = std::min(KB + T, N);
    // Phase 1: the diagonal tile closes over itself.
    panel(M, Stride, Occ, KB, KE, KB, KE, KB, KE);
    // Phase 2: row panels (diagonal tile is the A operand).
    for (unsigned JB = 0; JB < N; JB += T)
      if (JB != KB)
        panel(M, Stride, Occ, KB, KE, KB, KE, JB, std::min(JB + T, N));
    // Phase 3: column panels (diagonal tile is the B operand).
    for (unsigned IB = 0; IB < N; IB += T)
      if (IB != KB)
        panel(M, Stride, Occ, KB, KE, IB, std::min(IB + T, N), KB, KE);
    // Phase 4: remainder tiles (row/column panels are the operands).
    for (unsigned IB = 0; IB < N; IB += T) {
      if (IB == KB)
        continue;
      const unsigned IE = std::min(IB + T, N);
      for (unsigned JB = 0; JB < N; JB += T)
        if (JB != KB)
          panel(M, Stride, Occ, KB, KE, IB, IE, JB, std::min(JB + T, N));
    }
  }

  for (unsigned I = 0; I < N; ++I)
    if (M[static_cast<std::size_t>(I) * Stride + I] < 0)
      return false;
  return true;
}

bool kernel::closeAfterEdgeDense(DenseDbmStorage &D, unsigned I, unsigned J) {
  const unsigned N = D.size();
  std::int64_t *M = D.rows();
  const std::size_t Stride = D.rowStride();
  const std::uint8_t *Occ = D.rowOccupancy();

  const std::int64_t *RowJ = M + static_cast<std::size_t>(J) * Stride;
  std::int64_t C = M[static_cast<std::size_t>(I) * Stride + J];
  std::int64_t JI = RowJ[I];
  if (JI < DbmInfinity && C < DbmInfinity && JI + C < 0)
    return false;

  for (unsigned A = 0; A < N; ++A) {
    // Row A only improves through a finite A->I bound, so unoccupied rows
    // cannot change; A == J is a no-op (J->I->J >= 0 was just checked)
    // and the one aliasing pairing.
    if (A == J || !Occ[A])
      continue;
    std::int64_t *RowA = M + static_cast<std::size_t>(A) * Stride;
    std::int64_t AI = RowA[I];
    if (AI >= DbmInfinity)
      continue;
    std::int64_t AIC = AI + C;
    if (AIC >= DbmInfinity)
      continue; // dbmAdd saturates: nothing can improve through it.
    minPlusRow(RowA, RowJ, AIC, 0, N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

bool kernel::fullClose(DbmStorage &M) {
  if (DenseDbmStorage *D = M.asDense())
    return fullCloseDense(*D);
  return fullCloseRef(M);
}

bool kernel::closeAfterEdge(DbmStorage &M, unsigned I, unsigned J) {
  if (DenseDbmStorage *D = M.asDense())
    return closeAfterEdgeDense(*D, I, J);
  return closeAfterEdgeRef(M, I, J);
}
