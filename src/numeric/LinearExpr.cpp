//===- numeric/LinearExpr.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/LinearExpr.h"

#include "lang/ExprOps.h"
#include "support/Casting.h"

using namespace csdf;

std::optional<LinearExpr> LinearExpr::fromExpr(const Expr *E) {
  if (auto C = foldConstant(E))
    return LinearExpr(*C);
  if (const auto *V = dyn_cast<VarRefExpr>(E))
    return LinearExpr(V->name(), 0);
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (B->op() == BinaryOp::Add) {
      auto L = fromExpr(B->lhs());
      auto R = fromExpr(B->rhs());
      if (!L || !R)
        return std::nullopt;
      if (L->isConstant() && R->hasVar())
        return LinearExpr(R->var(), R->constant() + L->constant());
      if (R->isConstant() && L->hasVar())
        return LinearExpr(L->var(), L->constant() + R->constant());
      return std::nullopt; // var + var is not linear-with-unit-coefficient.
    }
    if (B->op() == BinaryOp::Sub) {
      auto L = fromExpr(B->lhs());
      auto R = fromExpr(B->rhs());
      if (!L || !R || !R->isConstant())
        return std::nullopt;
      return L->plus(-R->constant());
    }
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() == UnaryOp::Neg) {
      auto Inner = fromExpr(U->operand());
      if (Inner && Inner->isConstant())
        return LinearExpr(-Inner->constant());
    }
  }
  return std::nullopt;
}

std::string LinearExpr::str() const {
  if (!Var)
    return std::to_string(Const);
  if (Const == 0)
    return *Var;
  if (Const > 0)
    return *Var + "+" + std::to_string(Const);
  return *Var + std::to_string(Const);
}
