//===- numeric/ClosureKernel.h - Flat transitive-closure kernels ---------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric core's v2 closure kernels. Section IX of the paper puts
/// 92.5% of analysis time into constraint-graph transitive closure; the
/// v1 kernels dispatched a virtual DbmStorage::get/set per matrix element,
/// which forbids vectorization outright. These kernels instead run on
/// DenseDbmStorage's raw contiguous rows with a branchless saturating
/// min-plus inner loop the compiler auto-vectorizes (CI verifies the
/// vectorization report), plus:
///
///   * cache blocking — the classic blocked Floyd–Warshall (diagonal /
///     row-panel / column-panel / remainder phases) in ClosureTile-sized
///     tiles, so the working set of the inner loops stays in L1/L2 at
///     n = 128..256 instead of streaming the whole matrix per k;
///   * sparse row skipping — the per-row occupancy bitmap maintained by
///     DenseDbmStorage::set lets both the k and i loops skip rows with no
///     finite off-diagonal bound, collapsing cold closures on the common
///     mostly-unconstrained graphs;
///   * exact semantics — for feasible systems the result is
///     entry-for-entry identical to the reference Floyd–Warshall (min-plus
///     over bounds <= DbmInfinity is order-independent), infeasibility is
///     detected on exactly the same inputs, and the session budget is
///     still polled per outer k-panel so deadlines can interrupt a huge
///     closure. ClosureKernelTest pins all of this against the reference.
///
/// fullClose/closeAfterEdge dispatch per backend: dense storages take the
/// flat kernel, everything else (the std::map ablation backend) takes the
/// reference loops — which are kept public as the test oracle.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_CLOSUREKERNEL_H
#define CSDF_NUMERIC_CLOSUREKERNEL_H

#include "numeric/DbmStorage.h"

namespace csdf {
namespace kernel {

/// Tile edge for the blocked Floyd–Warshall phases. 32 rows of 32
/// int64 bounds = 8 KiB per tile operand, three operands well inside L1;
/// the bench_closure `blocked_sweep` workload is the tuning record.
inline constexpr unsigned ClosureTile = 32;

/// Transitively closes \p M in place. Returns false when the constraint
/// system is infeasible (a negative cycle exists). Polls the session
/// budget per outer k-panel.
bool fullClose(DbmStorage &M);

/// Repairs closure after edge (I, J) was tightened; requires \p M was
/// closed before the tightening. Returns false on infeasibility.
bool closeAfterEdge(DbmStorage &M, unsigned I, unsigned J);

/// Reference implementations: the v1 naive triple loop over virtual
/// get/set. Still the execution path for non-dense backends, and the
/// oracle the ClosureKernelTest property suite compares the flat kernel
/// against.
bool fullCloseRef(DbmStorage &M);
bool closeAfterEdgeRef(DbmStorage &M, unsigned I, unsigned J);

/// The flat blocked/sparse kernels (dense storage only; fullClose and
/// closeAfterEdge route here via DbmStorage::asDense()).
bool fullCloseDense(DenseDbmStorage &M);
bool closeAfterEdgeDense(DenseDbmStorage &M, unsigned I, unsigned J);

} // namespace kernel
} // namespace csdf

#endif // CSDF_NUMERIC_CLOSUREKERNEL_H
