//===- numeric/ConstraintGraph.cpp ----------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/ConstraintGraph.h"

#include "numeric/ClosureKernel.h"
#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace csdf;

static const char *const ZeroVarName = "$0";

//===----------------------------------------------------------------------===//
// ClosureMemo
//===----------------------------------------------------------------------===//

std::shared_ptr<DbmShared>
ClosureMemo::lookup(std::uint64_t Key, DbmBackend Backend,
                    const std::vector<std::int64_t> &Pre) const {
  std::lock_guard<std::mutex> L(M);
  auto [Lo, Hi] = Entries.equal_range(Key);
  for (auto It = Lo; It != Hi; ++It)
    if (It->second.Backend == Backend && It->second.Pre == Pre)
      return It->second.Closed;
  return nullptr;
}

void ClosureMemo::insert(std::uint64_t Key, DbmBackend Backend,
                         std::vector<std::int64_t> Pre,
                         std::shared_ptr<DbmShared> Closed) {
  if (CrossSession && Closed) {
    // The memo outlives the inserting session's stack-local budget; keep
    // no charge (and no dangling Accountant) on blocks it retains. Safe
    // because reaccount() only ever runs on unshared blocks, so nothing
    // re-binds this block to a later thread's budget.
    if (Closed->Accountant && Closed->AccountedBytes)
      Closed->Accountant->accountBytes(
          -static_cast<std::int64_t>(Closed->AccountedBytes));
    Closed->Accountant = nullptr;
    Closed->AccountedBytes = 0;
  }
  std::lock_guard<std::mutex> L(M);
  if (Entries.size() >= MaxEntries)
    Entries.clear();
  Entries.emplace(Key, Entry{Backend, std::move(Pre), std::move(Closed)});
}

std::size_t ClosureMemo::size() const {
  std::lock_guard<std::mutex> L(M);
  return Entries.size();
}

void ClosureMemo::forEach(
    const std::function<void(std::uint64_t, DbmBackend,
                             const std::vector<std::int64_t> &,
                             const DbmShared &)> &Fn) const {
  std::lock_guard<std::mutex> L(M);
  for (const auto &[Key, E] : Entries)
    if (E.Closed && E.Closed->M)
      Fn(Key, E.Backend, E.Pre, *E.Closed);
}

//===----------------------------------------------------------------------===//
// Construction and copying
//===----------------------------------------------------------------------===//

ConstraintGraph::ConstraintGraph(DbmBackend Backend, StatsRegistry *Stats,
                                 SymbolTablePtr Syms, ClosureMemoPtr Memo)
    : Backend(Backend), Stats(Stats),
      Syms(Syms ? std::move(Syms) : std::make_shared<SymbolTable>()),
      Memo(std::move(Memo)), Cow(Backend) {
  if (Stats) {
    Cells.CowCopies = &Stats->counterCell("cg.cow.copies");
    Cells.CowDetaches = &Stats->counterCell("cg.cow.detaches");
    Cells.FullCalls = &Stats->counterCell("cg.closure.full.calls");
    Cells.FullVarsum = &Stats->counterCell("cg.closure.full.varsum");
    Cells.IncrCalls = &Stats->counterCell("cg.closure.incr.calls");
    Cells.IncrVarsum = &Stats->counterCell("cg.closure.incr.varsum");
    Cells.MemoHits = &Stats->counterCell("cg.closure.memo.hits");
    Cells.MemoMisses = &Stats->counterCell("cg.closure.memo.misses");
    Cells.ClosureNanos = &Stats->nanosCell("cg.closure.seconds");
  }
  Vars.push_back(this->Syms->intern(ZeroVarName));
  DbmShared &B = Cow.rwShared(); // Freshly created: nothing shares it yet.
  B.M->resize(1);
  B.M->set(0, 0, 0);
}

ConstraintGraph::ConstraintGraph(const ConstraintGraph &O)
    : Backend(O.Backend), Stats(O.Stats), Cells(O.Cells), Syms(O.Syms),
      Memo(O.Memo), Vars(O.Vars), Cow(O.Cow) {
  bump(Cells.CowCopies);
}

ConstraintGraph &ConstraintGraph::operator=(const ConstraintGraph &O) {
  if (this == &O)
    return *this;
  Backend = O.Backend;
  Stats = O.Stats;
  Cells = O.Cells;
  Syms = O.Syms;
  Memo = O.Memo;
  Vars = O.Vars;
  Cow = O.Cow;
  bump(Cells.CowCopies);
  return *this;
}

DbmShared &ConstraintGraph::mutableBlock() {
  if (Cow.detach())
    bump(Cells.CowDetaches);
  return Cow.rwShared();
}

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

std::optional<unsigned> ConstraintGraph::slotOf(VarId Id) const {
  for (unsigned I = 0; I < Vars.size(); ++I)
    if (Vars[I] == Id)
      return I;
  return std::nullopt;
}

unsigned ConstraintGraph::ensureSlot(VarId Id) {
  if (auto Slot = slotOf(Id))
    return *Slot;
  Vars.push_back(Id);
  unsigned Slot = static_cast<unsigned>(Vars.size()) - 1;
  DbmShared &B = mutableBlock();
  B.M->resize(Slot + 1);
  B.M->set(Slot, Slot, 0);
  B.reaccount();
  // Adding an unconstrained variable preserves closure.
  return Slot;
}

std::optional<unsigned>
ConstraintGraph::slotForOther(const ConstraintGraph &O, VarId Id) const {
  if (Syms == O.Syms)
    return slotOf(Id);
  auto Mine = Syms->lookup(O.Syms->name(Id));
  if (!Mine)
    return std::nullopt;
  return slotOf(*Mine);
}

unsigned ConstraintGraph::ensureVar(const std::string &Name) {
  assert(Name != ZeroVarName && "the zero variable is internal");
  return ensureSlot(Syms->intern(Name));
}

std::optional<unsigned> ConstraintGraph::findVar(const std::string &Name)
    const {
  auto Id = Syms->lookup(Name);
  if (!Id)
    return std::nullopt;
  auto Slot = slotOf(*Id);
  if (!Slot || *Slot == 0)
    return std::nullopt;
  return Slot;
}

std::vector<std::string> ConstraintGraph::varNames() const {
  std::vector<std::string> Names;
  Names.reserve(Vars.size() - 1);
  for (unsigned I = 1; I < Vars.size(); ++I)
    Names.push_back(Syms->name(Vars[I]));
  return Names;
}

void ConstraintGraph::removeVar(const std::string &Name) {
  auto Slot = findVar(Name);
  if (!Slot)
    return;
  close();
  mutableBlock().M->removeVar(*Slot);
  Vars.erase(Vars.begin() + *Slot);
  // Projection of a closed matrix is closed.
}

void ConstraintGraph::renameVars(
    const std::vector<std::pair<std::string, std::string>> &Renames) {
  for (VarId &Id : Vars) {
    const std::string &Name = Syms->name(Id);
    for (const auto &[From, To] : Renames) {
      if (Name == From) {
        Id = Syms->intern(To);
        break;
      }
    }
  }
#ifndef NDEBUG
  for (unsigned I = 0; I < Vars.size(); ++I)
    for (unsigned J = I + 1; J < Vars.size(); ++J)
      assert(Vars[I] != Vars[J] && "rename produced duplicate variables");
#endif
}

//===----------------------------------------------------------------------===//
// Constraints and transfer
//===----------------------------------------------------------------------===//

std::pair<unsigned, std::int64_t> ConstraintGraph::encode(
    const LinearExpr &E) {
  if (E.isConstant())
    return {zeroSlot(), E.constant()};
  return {ensureVar(E.var()), E.constant()};
}

std::optional<std::pair<unsigned, std::int64_t>>
ConstraintGraph::encodeConst(const LinearExpr &E) const {
  if (E.isConstant())
    return std::pair(zeroSlot(), E.constant());
  auto Slot = findVar(E.var());
  if (!Slot)
    return std::nullopt;
  return std::pair(*Slot, E.constant());
}

void ConstraintGraph::addEdge(unsigned I, unsigned J, std::int64_t C) {
  if (!Cow.ro().Feasible)
    return;
  if (I == J) {
    if (C < 0)
      mutableBlock().Feasible = false;
    return;
  }
  std::int64_t Old = Cow.ro().M->get(I, J);
  if (C >= Old)
    return;
  // On a warm matrix (closed at least once — the engine's steady state),
  // repair a previously pending edge eagerly so the O(n^2) path stays
  // applicable for this one. A cold matrix is still being built: batch
  // every tightening and pay one full closure at the first query, which
  // the ClosureMemo can satisfy when an identical graph was built before.
  if (!Cow.ro().Closed && Cow.ro().PendingEdge && Cow.ro().EverClosed)
    close();
  DbmShared &B = mutableBlock();
  B.M->set(I, J, C);
  if (B.Closed) {
    B.Closed = false;
    B.PendingEdge = {I, J};
  } else {
    B.PendingEdge.reset();
  }
}

void ConstraintGraph::addLE(const std::string &A, const std::string &B,
                            std::int64_t C) {
  addEdge(ensureVar(A), ensureVar(B), C);
}

void ConstraintGraph::addLE(const LinearExpr &Lhs, const LinearExpr &Rhs) {
  auto [I, CI] = encode(Lhs);
  auto [J, CJ] = encode(Rhs);
  addEdge(I, J, CJ - CI);
}

void ConstraintGraph::addEQ(const LinearExpr &Lhs, const LinearExpr &Rhs) {
  addLE(Lhs, Rhs);
  addLE(Rhs, Lhs);
}

void ConstraintGraph::addUpperBound(const std::string &Var, std::int64_t C) {
  addEdge(ensureVar(Var), zeroSlot(), C);
}

void ConstraintGraph::addLowerBound(const std::string &Var, std::int64_t C) {
  addEdge(zeroSlot(), ensureVar(Var), -C);
}

void ConstraintGraph::assign(const std::string &X, const LinearExpr &E) {
  if (E.hasVar() && E.var() == X) {
    // X := X + c — shift every bound that mentions X.
    std::int64_t C = E.constant();
    if (C == 0)
      return;
    close();
    if (!Cow.ro().Feasible)
      return;
    unsigned I = ensureVar(X);
    unsigned N = static_cast<unsigned>(Vars.size());
    DbmShared &B = mutableBlock();
    for (unsigned J = 0; J < N; ++J) {
      if (J == I)
        continue;
      B.M->set(I, J, dbmAdd(B.M->get(I, J), C));
      B.M->set(J, I, dbmAdd(B.M->get(J, I), -C));
    }
    // Uniform row/column shifts preserve closure.
    return;
  }
  havoc(X);
  addEQ(LinearExpr(X, 0), E);
}

void ConstraintGraph::havoc(const std::string &X) {
  auto Slot = findVar(X);
  if (!Slot)
    return;
  close();
  unsigned N = static_cast<unsigned>(Vars.size());
  DbmShared &B = mutableBlock();
  for (unsigned J = 0; J < N; ++J) {
    if (J == *Slot)
      continue;
    B.M->set(*Slot, J, DbmInfinity);
    B.M->set(J, *Slot, DbmInfinity);
  }
  // Dropping all edges of one variable preserves closure.
}

//===----------------------------------------------------------------------===//
// Closure
//===----------------------------------------------------------------------===//

bool ConstraintGraph::isFeasible() const {
  close();
  return Cow.ro().Feasible;
}

void ConstraintGraph::close() const {
  {
    const DbmShared &B = Cow.ro();
    if (B.Closed || !B.Feasible)
      return;
  }
  // Closing canonicalizes the represented constraint set without changing
  // it, so the work happens in the *shared* block: every copy still
  // sharing it observes the result.
  DbmShared &B = Cow.rwShared();
  B.EverClosed = true;
  if (B.PendingEdge) {
    auto [I, J] = *B.PendingEdge;
    B.PendingEdge.reset();
    closeAfterEdge(B, I, J);
    B.Closed = true;
    return;
  }
  if (Memo) {
    std::uint64_t Key = dbmFingerprint(*B.M);
    std::vector<std::int64_t> Pre = dbmSnapshot(*B.M);
    if (auto Hit = Memo->lookup(Key, Backend, Pre)) {
      Cow.adopt(std::move(Hit));
      bump(Cells.MemoHits);
      return;
    }
    fullClose(B);
    B.Closed = true;
    bump(Cells.MemoMisses);
    Memo->insert(Key, Backend, std::move(Pre), Cow.block());
    return;
  }
  fullClose(B);
  B.Closed = true;
}

void ConstraintGraph::detachAccounting() const {
  DbmShared &B = Cow.rwShared();
  if (B.Accountant && B.AccountedBytes)
    B.Accountant->accountBytes(-static_cast<std::int64_t>(B.AccountedBytes));
  B.Accountant = nullptr;
  B.AccountedBytes = 0;
}

void ConstraintGraph::fullClose(DbmShared &B) const {
  unsigned N = static_cast<unsigned>(Vars.size());
  bump(Cells.FullCalls);
  bump(Cells.FullVarsum, N);
  ScopedNanoTimer Timer(Cells.ClosureNanos);
  if (!kernel::fullClose(*B.M))
    B.Feasible = false;
}

void ConstraintGraph::closeAfterEdge(DbmShared &B, unsigned I,
                                     unsigned J) const {
  unsigned N = static_cast<unsigned>(Vars.size());
  bump(Cells.IncrCalls);
  bump(Cells.IncrVarsum, N);
  ScopedNanoTimer Timer(Cells.ClosureNanos);
  if (!kernel::closeAfterEdge(*B.M, I, J))
    B.Feasible = false;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

bool ConstraintGraph::provesLE(const LinearExpr &Lhs,
                               const LinearExpr &Rhs) const {
  if (!isFeasible())
    return true;
  // Same-variable (or constant/constant) comparisons need no graph.
  if (Lhs.isConstant() && Rhs.isConstant())
    return Lhs.constant() <= Rhs.constant();
  if (Lhs.hasVar() && Rhs.hasVar() && Lhs.var() == Rhs.var())
    return Lhs.constant() <= Rhs.constant();
  auto L = encodeConst(Lhs);
  auto R = encodeConst(Rhs);
  if (!L || !R)
    return false;
  close();
  return Cow.ro().M->get(L->first, R->first) <= R->second - L->second;
}

bool ConstraintGraph::provesEQ(const LinearExpr &Lhs,
                               const LinearExpr &Rhs) const {
  return provesLE(Lhs, Rhs) && provesLE(Rhs, Lhs);
}

ConstraintGraph::ResolvedForm ConstraintGraph::resolve(
    const LinearExpr &E) const {
  ResolvedForm R;
  R.C = E.constant();
  if (E.isConstant()) {
    R.IsConst = true;
    R.Known = true;
    R.Slot = zeroSlot();
    return R;
  }
  // Intern even unknown variables: ids make the same-variable fast path an
  // integer compare, and the shared table is append-only.
  R.Id = Syms->intern(E.var());
  if (auto Slot = slotOf(R.Id); Slot && *Slot != 0) {
    R.Known = true;
    R.Slot = *Slot;
  }
  return R;
}

bool ConstraintGraph::provesLE(const ResolvedForm &Lhs,
                               const ResolvedForm &Rhs) const {
  if (!isFeasible())
    return true;
  if (Lhs.IsConst && Rhs.IsConst)
    return Lhs.C <= Rhs.C;
  if (!Lhs.IsConst && !Rhs.IsConst && Lhs.Id == Rhs.Id)
    return Lhs.C <= Rhs.C;
  if (!Lhs.Known || !Rhs.Known)
    return false;
  close();
  return Cow.ro().M->get(Lhs.Slot, Rhs.Slot) <= Rhs.C - Lhs.C;
}

std::optional<std::int64_t> ConstraintGraph::bestBound(
    const std::string &A, const std::string &B) const {
  auto I = findVar(A);
  auto J = findVar(B);
  if (!I || !J || !isFeasible())
    return std::nullopt;
  close();
  std::int64_t Bound = Cow.ro().M->get(*I, *J);
  if (Bound >= DbmInfinity)
    return std::nullopt;
  return Bound;
}

std::optional<std::int64_t> ConstraintGraph::offsetBetween(
    const std::string &A, const std::string &B) const {
  auto Up = bestBound(A, B);
  auto Down = bestBound(B, A);
  if (Up && Down && *Up == -*Down)
    return *Up;
  return std::nullopt;
}

std::optional<std::int64_t> ConstraintGraph::constValue(
    const std::string &Var) const {
  auto Slot = findVar(Var);
  if (!Slot || !isFeasible())
    return std::nullopt;
  close();
  std::int64_t Up = Cow.ro().M->get(*Slot, zeroSlot());
  std::int64_t Down = Cow.ro().M->get(zeroSlot(), *Slot);
  if (Up < DbmInfinity && Down < DbmInfinity && Up == -Down)
    return Up;
  return std::nullopt;
}

std::vector<LinearExpr> ConstraintGraph::equivalentForms(
    const LinearExpr &E) const {
  std::vector<LinearExpr> Forms = {E};
  if (!isFeasible())
    return Forms;
  auto Base = encodeConst(E);
  if (!Base)
    return Forms;
  close();
  auto [I, C] = *Base;
  const DbmStorage &M = *Cow.ro().M;
  unsigned N = static_cast<unsigned>(Vars.size());
  for (unsigned V = 0; V < N; ++V) {
    if (V == I)
      continue;
    std::int64_t Up = M.get(V, I);
    std::int64_t Down = M.get(I, V);
    if (Up >= DbmInfinity || Down >= DbmInfinity || Up != -Down)
      continue;
    // v == v_I + Up, so v_I + C == v + (C - Up); when v is the zero
    // variable the form is the constant C - Up.
    if (V == zeroSlot())
      Forms.push_back(LinearExpr(C - Up));
    else
      Forms.push_back(LinearExpr(Syms->name(Vars[V]), C - Up));
  }
  return Forms;
}

//===----------------------------------------------------------------------===//
// Lattice operations
//===----------------------------------------------------------------------===//

namespace {

/// Bound of (I, J) in a closed matrix seen through a union variable list,
/// where \p Map holds each union variable's slot (or nullopt when the
/// graph lacks it).
std::int64_t boundThrough(const DbmStorage &M,
                          const std::vector<std::optional<unsigned>> &Map,
                          unsigned I, unsigned J) {
  if (!Map[I] || !Map[J])
    return I == J ? 0 : DbmInfinity;
  return M.get(*Map[I], *Map[J]);
}

} // namespace

void ConstraintGraph::joinWith(const ConstraintGraph &O) {
  if (!O.isFeasible())
    return;
  if (!isFeasible()) {
    *this = O;
    return;
  }
  close();
  O.close();

  // Build the union variable list using this graph's slots, extending
  // with O's extra variables (translated through names when the tables
  // differ).
  std::vector<VarId> UnionIds = Vars;
  for (unsigned I = 1; I < O.Vars.size(); ++I) {
    VarId Mine = Syms == O.Syms ? O.Vars[I]
                                : Syms->intern(O.Syms->name(O.Vars[I]));
    if (std::find(UnionIds.begin(), UnionIds.end(), Mine) == UnionIds.end())
      UnionIds.push_back(Mine);
  }

  std::vector<std::optional<unsigned>> MapThis(UnionIds.size());
  std::vector<std::optional<unsigned>> MapO(UnionIds.size());
  for (unsigned U = 0; U < UnionIds.size(); ++U) {
    MapThis[U] = slotOf(UnionIds[U]);
    MapO[U] = O.slotForOther(*this, UnionIds[U]);
  }

  auto NewStorage = makeDbmStorage(Backend);
  NewStorage->resize(static_cast<unsigned>(UnionIds.size()));
  const DbmStorage &MThis = *Cow.ro().M;
  const DbmStorage &MO = *O.Cow.ro().M;
  for (unsigned I = 0; I < UnionIds.size(); ++I)
    for (unsigned J = 0; J < UnionIds.size(); ++J) {
      std::int64_t A = boundThrough(MThis, MapThis, I, J);
      std::int64_t B = boundThrough(MO, MapO, I, J);
      NewStorage->set(I, J, std::max(A, B));
    }
  Vars = std::move(UnionIds);
  auto NewBlock = std::make_shared<DbmShared>(std::move(NewStorage));
  // Pointwise max of closed matrices is closed (and warm: later
  // tightenings should repair eagerly).
  NewBlock->Closed = true;
  NewBlock->EverClosed = true;
  NewBlock->Feasible = true;
  NewBlock->reaccount();
  Cow.adopt(std::move(NewBlock));
}

void ConstraintGraph::widenWith(const ConstraintGraph &O) {
  if (!O.isFeasible())
    return; // Old value stands.
  if (!isFeasible()) {
    *this = O;
    return;
  }
  close();
  O.close();
  // Keep a bound of *this only when O does not weaken it; drop everything
  // else to infinity. Variables O lacks are unconstrained there, so their
  // bounds drop too.
  unsigned N = static_cast<unsigned>(Vars.size());
  std::vector<std::optional<unsigned>> MapO(N);
  for (unsigned I = 0; I < N; ++I)
    MapO[I] = O.slotForOther(*this, Vars[I]);
  DbmShared &B = mutableBlock();
  const DbmStorage &MO = *O.Cow.ro().M;
  for (unsigned I = 0; I < N; ++I) {
    for (unsigned J = 0; J < N; ++J) {
      if (I == J)
        continue;
      std::int64_t Mine = B.M->get(I, J);
      if (Mine >= DbmInfinity)
        continue;
      std::int64_t Theirs = boundThrough(MO, MapO, I, J);
      if (Theirs <= Mine)
        continue;
      // Widen with thresholds: rather than dropping straight to infinity,
      // raise to the smallest stable small constant. This keeps loop-guard
      // relations like `i <= np - 1` (difference -1) alive across
      // widenings, which the paper's exchange-with-root invariant
      // [i+1 .. np-1] depends on. The finite threshold chain preserves
      // termination.
      static constexpr std::int64_t Thresholds[] = {-1, 0, 1};
      std::int64_t Widened = DbmInfinity;
      for (std::int64_t T : Thresholds) {
        if (Theirs <= T) {
          Widened = T;
          break;
        }
      }
      B.M->set(I, J, Widened);
    }
  }
  // A widened matrix is not re-closed: closing could re-tighten dropped
  // bounds and break the finite-ascent guarantee.
  B.Closed = true;
  B.PendingEdge.reset();
}

void ConstraintGraph::meetWith(const ConstraintGraph &O) {
  if (!isFeasible())
    return;
  if (!O.isFeasible()) {
    mutableBlock().Feasible = false;
    return;
  }
  O.close();
  unsigned ON = static_cast<unsigned>(O.Vars.size());
  for (unsigned I = 0; I < ON; ++I) {
    for (unsigned J = 0; J < ON; ++J) {
      if (I == J)
        continue;
      std::int64_t Bound = O.Cow.ro().M->get(I, J);
      if (Bound >= DbmInfinity)
        continue;
      auto MySlot = [&](unsigned OSlot) -> unsigned {
        if (OSlot == 0)
          return 0;
        VarId Id = Syms == O.Syms
                       ? O.Vars[OSlot]
                       : Syms->intern(O.Syms->name(O.Vars[OSlot]));
        return ensureSlot(Id);
      };
      addEdge(MySlot(I), MySlot(J), Bound);
    }
  }
}

bool ConstraintGraph::implies(const ConstraintGraph &O) const {
  if (!isFeasible())
    return true;
  if (!O.isFeasible())
    return false;
  close();
  O.close();
  std::vector<std::optional<unsigned>> MapThis(O.Vars.size());
  for (unsigned I = 0; I < O.Vars.size(); ++I)
    MapThis[I] = slotForOther(O, O.Vars[I]);
  const DbmStorage &MThis = *Cow.ro().M;
  const DbmStorage &MO = *O.Cow.ro().M;
  for (unsigned I = 0; I < O.Vars.size(); ++I) {
    for (unsigned J = 0; J < O.Vars.size(); ++J) {
      if (I == J)
        continue;
      std::int64_t Theirs = MO.get(I, J);
      if (Theirs >= DbmInfinity)
        continue;
      if (boundThrough(MThis, MapThis, I, J) > Theirs)
        return false;
    }
  }
  return true;
}

bool ConstraintGraph::equals(const ConstraintGraph &O) const {
  return implies(O) && O.implies(*this);
}

std::string ConstraintGraph::str() const {
  if (!isFeasible())
    return "<infeasible>";
  close();
  std::ostringstream OS;
  bool First = true;
  const DbmStorage &M = *Cow.ro().M;
  unsigned N = static_cast<unsigned>(Vars.size());
  for (unsigned I = 0; I < N; ++I) {
    for (unsigned J = 0; J < N; ++J) {
      if (I == J)
        continue;
      std::int64_t Bound = M.get(I, J);
      if (Bound >= DbmInfinity)
        continue;
      if (!First)
        OS << ", ";
      First = false;
      if (I == 0)
        OS << Syms->name(Vars[J]) << " >= " << -Bound;
      else if (J == 0)
        OS << Syms->name(Vars[I]) << " <= " << Bound;
      else
        OS << Syms->name(Vars[I]) << " <= " << Syms->name(Vars[J])
           << (Bound >= 0 ? "+" : "") << Bound;
    }
  }
  return First ? "<top>" : OS.str();
}
