//===- numeric/ConstraintGraph.cpp ----------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/ConstraintGraph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace csdf;

static const char *const ZeroVarName = "$0";

ConstraintGraph::ConstraintGraph(DbmBackend Backend, StatsRegistry *Stats)
    : Backend(Backend), Stats(Stats), Matrix(makeDbmStorage(Backend)) {
  Names.push_back(ZeroVarName);
  Matrix->resize(1);
  Matrix->set(0, 0, 0);
}

ConstraintGraph::ConstraintGraph(const ConstraintGraph &O)
    : Backend(O.Backend), Stats(O.Stats), Names(O.Names),
      Matrix(O.Matrix->clone()), Closed(O.Closed), Feasible(O.Feasible),
      PendingEdge(O.PendingEdge) {}

ConstraintGraph &ConstraintGraph::operator=(const ConstraintGraph &O) {
  if (this == &O)
    return *this;
  Backend = O.Backend;
  Stats = O.Stats;
  Names = O.Names;
  Matrix = O.Matrix->clone();
  Closed = O.Closed;
  Feasible = O.Feasible;
  PendingEdge = O.PendingEdge;
  return *this;
}

unsigned ConstraintGraph::ensureVar(const std::string &Name) {
  assert(Name != ZeroVarName && "the zero variable is internal");
  for (unsigned I = 1; I < Names.size(); ++I)
    if (Names[I] == Name)
      return I;
  Names.push_back(Name);
  unsigned Idx = static_cast<unsigned>(Names.size()) - 1;
  Matrix->resize(Idx + 1);
  Matrix->set(Idx, Idx, 0);
  // Adding an unconstrained variable preserves closure.
  return Idx;
}

std::optional<unsigned> ConstraintGraph::findVar(const std::string &Name)
    const {
  for (unsigned I = 1; I < Names.size(); ++I)
    if (Names[I] == Name)
      return I;
  return std::nullopt;
}

std::vector<std::string> ConstraintGraph::varNames() const {
  return std::vector<std::string>(Names.begin() + 1, Names.end());
}

void ConstraintGraph::removeVar(const std::string &Name) {
  auto Idx = findVar(Name);
  if (!Idx)
    return;
  close();
  Matrix->removeVar(*Idx);
  Names.erase(Names.begin() + *Idx);
  // Projection of a closed matrix is closed.
}

void ConstraintGraph::renameVars(
    const std::vector<std::pair<std::string, std::string>> &Renames) {
  for (std::string &Name : Names) {
    for (const auto &[From, To] : Renames) {
      if (Name == From) {
        Name = To;
        break;
      }
    }
  }
#ifndef NDEBUG
  for (unsigned I = 0; I < Names.size(); ++I)
    for (unsigned J = I + 1; J < Names.size(); ++J)
      assert(Names[I] != Names[J] && "rename produced duplicate variables");
#endif
}

std::pair<unsigned, std::int64_t> ConstraintGraph::encode(
    const LinearExpr &E) {
  if (E.isConstant())
    return {zeroIdx(), E.constant()};
  return {ensureVar(E.var()), E.constant()};
}

std::optional<std::pair<unsigned, std::int64_t>>
ConstraintGraph::encodeConst(const LinearExpr &E) const {
  if (E.isConstant())
    return std::pair(zeroIdx(), E.constant());
  auto Idx = findVar(E.var());
  if (!Idx)
    return std::nullopt;
  return std::pair(*Idx, E.constant());
}

void ConstraintGraph::addEdge(unsigned I, unsigned J, std::int64_t C) {
  if (!Feasible)
    return;
  if (I == J) {
    if (C < 0)
      Feasible = false;
    return;
  }
  std::int64_t Old = Matrix->get(I, J);
  if (C >= Old)
    return;
  // Repair any previously pending edge first so the O(n^2) path stays
  // applicable for this one.
  if (!Closed && PendingEdge)
    close();
  Matrix->set(I, J, C);
  if (Closed) {
    Closed = false;
    PendingEdge = {I, J};
  } else {
    PendingEdge.reset();
  }
}

void ConstraintGraph::addLE(const std::string &A, const std::string &B,
                            std::int64_t C) {
  addEdge(ensureVar(A), ensureVar(B), C);
}

void ConstraintGraph::addLE(const LinearExpr &Lhs, const LinearExpr &Rhs) {
  auto [I, CI] = encode(Lhs);
  auto [J, CJ] = encode(Rhs);
  addEdge(I, J, CJ - CI);
}

void ConstraintGraph::addEQ(const LinearExpr &Lhs, const LinearExpr &Rhs) {
  addLE(Lhs, Rhs);
  addLE(Rhs, Lhs);
}

void ConstraintGraph::addUpperBound(const std::string &Var, std::int64_t C) {
  addEdge(ensureVar(Var), zeroIdx(), C);
}

void ConstraintGraph::addLowerBound(const std::string &Var, std::int64_t C) {
  addEdge(zeroIdx(), ensureVar(Var), -C);
}

void ConstraintGraph::assign(const std::string &X, const LinearExpr &E) {
  if (E.hasVar() && E.var() == X) {
    // X := X + c — shift every bound that mentions X.
    std::int64_t C = E.constant();
    if (C == 0)
      return;
    close();
    if (!Feasible)
      return;
    unsigned I = ensureVar(X);
    unsigned N = static_cast<unsigned>(Names.size());
    for (unsigned J = 0; J < N; ++J) {
      if (J == I)
        continue;
      Matrix->set(I, J, dbmAdd(Matrix->get(I, J), C));
      Matrix->set(J, I, dbmAdd(Matrix->get(J, I), -C));
    }
    // Uniform row/column shifts preserve closure.
    return;
  }
  havoc(X);
  addEQ(LinearExpr(X, 0), E);
}

void ConstraintGraph::havoc(const std::string &X) {
  auto Idx = findVar(X);
  if (!Idx)
    return;
  close();
  unsigned N = static_cast<unsigned>(Names.size());
  for (unsigned J = 0; J < N; ++J) {
    if (J == *Idx)
      continue;
    Matrix->set(*Idx, J, DbmInfinity);
    Matrix->set(J, *Idx, DbmInfinity);
  }
  // Dropping all edges of one variable preserves closure.
}

bool ConstraintGraph::isFeasible() const {
  close();
  return Feasible;
}

void ConstraintGraph::close() const {
  if (Closed || !Feasible)
    return;
  if (PendingEdge) {
    closeAfterEdge(PendingEdge->first, PendingEdge->second);
    PendingEdge.reset();
    Closed = true;
    return;
  }
  fullClose();
  Closed = true;
}

void ConstraintGraph::fullClose() const {
  unsigned N = static_cast<unsigned>(Names.size());
  if (Stats) {
    Stats->addCounter("cg.closure.full.calls");
    Stats->addCounter("cg.closure.full.varsum", N);
  }
  ScopedTimer Timer(*Stats, "cg.closure.seconds");
  for (unsigned K = 0; K < N; ++K) {
    for (unsigned I = 0; I < N; ++I) {
      std::int64_t BIK = Matrix->get(I, K);
      if (BIK >= DbmInfinity)
        continue;
      for (unsigned J = 0; J < N; ++J) {
        std::int64_t Through = dbmAdd(BIK, Matrix->get(K, J));
        if (Through < Matrix->get(I, J))
          Matrix->set(I, J, Through);
      }
    }
  }
  for (unsigned I = 0; I < N; ++I) {
    if (Matrix->get(I, I) < 0) {
      Feasible = false;
      return;
    }
  }
}

void ConstraintGraph::closeAfterEdge(unsigned I, unsigned J) const {
  unsigned N = static_cast<unsigned>(Names.size());
  if (Stats) {
    Stats->addCounter("cg.closure.incr.calls");
    Stats->addCounter("cg.closure.incr.varsum", N);
  }
  ScopedTimer Timer(*Stats, "cg.closure.seconds");
  std::int64_t C = Matrix->get(I, J);
  if (dbmAdd(Matrix->get(J, I), C) < 0) {
    Feasible = false;
    return;
  }
  for (unsigned A = 0; A < N; ++A) {
    std::int64_t AI = Matrix->get(A, I);
    if (AI >= DbmInfinity)
      continue;
    std::int64_t AIC = dbmAdd(AI, C);
    for (unsigned B = 0; B < N; ++B) {
      std::int64_t Through = dbmAdd(AIC, Matrix->get(J, B));
      if (Through < Matrix->get(A, B))
        Matrix->set(A, B, Through);
    }
  }
}

bool ConstraintGraph::provesLE(const LinearExpr &Lhs,
                               const LinearExpr &Rhs) const {
  if (!isFeasible())
    return true;
  // Same-variable (or constant/constant) comparisons need no graph.
  if (Lhs.isConstant() && Rhs.isConstant())
    return Lhs.constant() <= Rhs.constant();
  if (Lhs.hasVar() && Rhs.hasVar() && Lhs.var() == Rhs.var())
    return Lhs.constant() <= Rhs.constant();
  auto L = encodeConst(Lhs);
  auto R = encodeConst(Rhs);
  if (!L || !R)
    return false;
  close();
  return Matrix->get(L->first, R->first) <= R->second - L->second;
}

bool ConstraintGraph::provesEQ(const LinearExpr &Lhs,
                               const LinearExpr &Rhs) const {
  return provesLE(Lhs, Rhs) && provesLE(Rhs, Lhs);
}

std::optional<std::int64_t> ConstraintGraph::bestBound(
    const std::string &A, const std::string &B) const {
  auto I = findVar(A);
  auto J = findVar(B);
  if (!I || !J || !isFeasible())
    return std::nullopt;
  close();
  std::int64_t Bound = Matrix->get(*I, *J);
  if (Bound >= DbmInfinity)
    return std::nullopt;
  return Bound;
}

std::optional<std::int64_t> ConstraintGraph::offsetBetween(
    const std::string &A, const std::string &B) const {
  auto Up = bestBound(A, B);
  auto Down = bestBound(B, A);
  if (Up && Down && *Up == -*Down)
    return *Up;
  return std::nullopt;
}

std::optional<std::int64_t> ConstraintGraph::constValue(
    const std::string &Var) const {
  auto Idx = findVar(Var);
  if (!Idx || !isFeasible())
    return std::nullopt;
  close();
  std::int64_t Up = Matrix->get(*Idx, zeroIdx());
  std::int64_t Down = Matrix->get(zeroIdx(), *Idx);
  if (Up < DbmInfinity && Down < DbmInfinity && Up == -Down)
    return Up;
  return std::nullopt;
}

std::vector<LinearExpr> ConstraintGraph::equivalentForms(
    const LinearExpr &E) const {
  std::vector<LinearExpr> Forms = {E};
  if (!isFeasible())
    return Forms;
  auto Base = encodeConst(E);
  if (!Base)
    return Forms;
  close();
  auto [I, C] = *Base;
  unsigned N = static_cast<unsigned>(Names.size());
  for (unsigned V = 0; V < N; ++V) {
    if (V == I)
      continue;
    std::int64_t Up = Matrix->get(V, I);
    std::int64_t Down = Matrix->get(I, V);
    if (Up >= DbmInfinity || Down >= DbmInfinity || Up != -Down)
      continue;
    // v == v_I + Up, so v_I + C == v + (C - Up); when v is the zero
    // variable the form is the constant C - Up.
    if (V == zeroIdx())
      Forms.push_back(LinearExpr(C - Up));
    else
      Forms.push_back(LinearExpr(Names[V], C - Up));
  }
  return Forms;
}

namespace {

/// Bound of (I, J) in \p G's closed matrix seen through the union variable
/// list \p UnionNames, where \p Map holds each union variable's index in G
/// (or nullopt when G lacks it).
std::int64_t boundThrough(const DbmStorage &M,
                          const std::vector<std::optional<unsigned>> &Map,
                          unsigned I, unsigned J) {
  if (!Map[I] || !Map[J])
    return I == J ? 0 : DbmInfinity;
  return M.get(*Map[I], *Map[J]);
}

} // namespace

void ConstraintGraph::joinWith(const ConstraintGraph &O) {
  if (!O.isFeasible())
    return;
  if (!isFeasible()) {
    *this = O;
    return;
  }
  close();
  O.close();

  // Build the union variable list using this graph's indices, extending
  // with O's extra variables.
  std::vector<std::string> UnionNames = Names;
  for (unsigned I = 1; I < O.Names.size(); ++I)
    if (std::find(UnionNames.begin(), UnionNames.end(), O.Names[I]) ==
        UnionNames.end())
      UnionNames.push_back(O.Names[I]);

  std::vector<std::optional<unsigned>> MapThis(UnionNames.size());
  std::vector<std::optional<unsigned>> MapO(UnionNames.size());
  for (unsigned U = 0; U < UnionNames.size(); ++U) {
    for (unsigned I = 0; I < Names.size(); ++I)
      if (Names[I] == UnionNames[U])
        MapThis[U] = I;
    for (unsigned I = 0; I < O.Names.size(); ++I)
      if (O.Names[I] == UnionNames[U])
        MapO[U] = I;
  }

  auto NewMatrix = makeDbmStorage(Backend);
  NewMatrix->resize(static_cast<unsigned>(UnionNames.size()));
  for (unsigned I = 0; I < UnionNames.size(); ++I)
    for (unsigned J = 0; J < UnionNames.size(); ++J) {
      std::int64_t A = boundThrough(*Matrix, MapThis, I, J);
      std::int64_t B = boundThrough(*O.Matrix, MapO, I, J);
      NewMatrix->set(I, J, std::max(A, B));
    }
  Names = std::move(UnionNames);
  Matrix = std::move(NewMatrix);
  // Pointwise max of closed matrices is closed.
  Closed = true;
  PendingEdge.reset();
  Feasible = true;
}

void ConstraintGraph::widenWith(const ConstraintGraph &O) {
  if (!O.isFeasible())
    return; // Old value stands.
  if (!isFeasible()) {
    *this = O;
    return;
  }
  close();
  O.close();
  // Keep a bound of *this only when O does not weaken it; drop everything
  // else to infinity. Variables O lacks are unconstrained there, so their
  // bounds drop too.
  unsigned N = static_cast<unsigned>(Names.size());
  std::vector<std::optional<unsigned>> MapO(N);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < O.Names.size(); ++J)
      if (O.Names[J] == Names[I])
        MapO[I] = J;
  for (unsigned I = 0; I < N; ++I) {
    for (unsigned J = 0; J < N; ++J) {
      if (I == J)
        continue;
      std::int64_t Mine = Matrix->get(I, J);
      if (Mine >= DbmInfinity)
        continue;
      std::int64_t Theirs = boundThrough(*O.Matrix, MapO, I, J);
      if (Theirs <= Mine)
        continue;
      // Widen with thresholds: rather than dropping straight to infinity,
      // raise to the smallest stable small constant. This keeps loop-guard
      // relations like `i <= np - 1` (difference -1) alive across
      // widenings, which the paper's exchange-with-root invariant
      // [i+1 .. np-1] depends on. The finite threshold chain preserves
      // termination.
      static constexpr std::int64_t Thresholds[] = {-1, 0, 1};
      std::int64_t Widened = DbmInfinity;
      for (std::int64_t T : Thresholds) {
        if (Theirs <= T) {
          Widened = T;
          break;
        }
      }
      Matrix->set(I, J, Widened);
    }
  }
  // A widened matrix is not re-closed: closing could re-tighten dropped
  // bounds and break the finite-ascent guarantee.
  Closed = true;
  PendingEdge.reset();
}

void ConstraintGraph::meetWith(const ConstraintGraph &O) {
  if (!isFeasible())
    return;
  if (!O.isFeasible()) {
    Feasible = false;
    return;
  }
  O.close();
  for (unsigned I = 0; I < O.Names.size(); ++I) {
    for (unsigned J = 0; J < O.Names.size(); ++J) {
      if (I == J)
        continue;
      std::int64_t Bound = O.Matrix->get(I, J);
      if (Bound >= DbmInfinity)
        continue;
      unsigned MyI = I == 0 ? 0 : ensureVar(O.Names[I]);
      unsigned MyJ = J == 0 ? 0 : ensureVar(O.Names[J]);
      addEdge(MyI, MyJ, Bound);
    }
  }
}

bool ConstraintGraph::implies(const ConstraintGraph &O) const {
  if (!isFeasible())
    return true;
  if (!O.isFeasible())
    return false;
  close();
  O.close();
  std::vector<std::optional<unsigned>> MapThis(O.Names.size());
  for (unsigned I = 0; I < O.Names.size(); ++I)
    for (unsigned J = 0; J < Names.size(); ++J)
      if (Names[J] == O.Names[I])
        MapThis[I] = J;
  for (unsigned I = 0; I < O.Names.size(); ++I) {
    for (unsigned J = 0; J < O.Names.size(); ++J) {
      if (I == J)
        continue;
      std::int64_t Theirs = O.Matrix->get(I, J);
      if (Theirs >= DbmInfinity)
        continue;
      if (boundThrough(*Matrix, MapThis, I, J) > Theirs)
        return false;
    }
  }
  return true;
}

bool ConstraintGraph::equals(const ConstraintGraph &O) const {
  return implies(O) && O.implies(*this);
}

std::string ConstraintGraph::str() const {
  if (!isFeasible())
    return "<infeasible>";
  close();
  std::ostringstream OS;
  bool First = true;
  unsigned N = static_cast<unsigned>(Names.size());
  for (unsigned I = 0; I < N; ++I) {
    for (unsigned J = 0; J < N; ++J) {
      if (I == J)
        continue;
      std::int64_t Bound = Matrix->get(I, J);
      if (Bound >= DbmInfinity)
        continue;
      if (!First)
        OS << ", ";
      First = false;
      if (I == 0)
        OS << Names[J] << " >= " << -Bound;
      else if (J == 0)
        OS << Names[I] << " <= " << Bound;
      else
        OS << Names[I] << " <= " << Names[J]
           << (Bound >= 0 ? "+" : "") << Bound;
    }
  }
  return First ? "<top>" : OS.str();
}
