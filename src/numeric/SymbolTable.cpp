//===- numeric/SymbolTable.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/SymbolTable.h"

#include <stdexcept>

using namespace csdf;

SymbolTable::~SymbolTable() {
  for (auto &Slot : Chunks)
    delete Slot.load(std::memory_order_relaxed);
}

VarId SymbolTable::intern(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto It = IdsByName.find(Name);
  if (It != IdsByName.end())
    return It->second;
  std::size_t N = Count.load(std::memory_order_relaxed);
  std::size_t Slot = N >> ChunkBits;
  if (Slot >= SpineSize)
    throw std::length_error("SymbolTable: too many interned names");
  Chunk *C = Chunks[Slot].load(std::memory_order_relaxed);
  if (!C) {
    C = new Chunk();
    Chunks[Slot].store(C, std::memory_order_release);
  }
  VarId Id = static_cast<VarId>(N);
  (*C)[N & (ChunkSize - 1)] = Name;
  // The release store publishes the written name to lock-free name()
  // readers in other threads, who learned the id through a synchronized
  // channel (the intern mutex or the engine's commit ordering).
  Count.store(N + 1, std::memory_order_release);
  IdsByName.emplace(Name, Id);
  return Id;
}

std::optional<VarId> SymbolTable::lookup(const std::string &Name) const {
  std::lock_guard<std::mutex> L(M);
  auto It = IdsByName.find(Name);
  if (It == IdsByName.end())
    return std::nullopt;
  return It->second;
}
