//===- numeric/SymbolTable.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "numeric/SymbolTable.h"

using namespace csdf;

VarId SymbolTable::intern(const std::string &Name) {
  auto It = IdsByName.find(Name);
  if (It != IdsByName.end())
    return It->second;
  VarId Id = static_cast<VarId>(NamesById.size());
  NamesById.push_back(Name);
  IdsByName.emplace(Name, Id);
  return Id;
}

std::optional<VarId> SymbolTable::lookup(const std::string &Name) const {
  auto It = IdsByName.find(Name);
  if (It == IdsByName.end())
    return std::nullopt;
  return It->second;
}
