//===- numeric/LinearExpr.h - `var + c` expressions --------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The restricted expression form used throughout client analysis #1
/// (Section VII): an optional variable plus a constant, `var + c` or `c`.
/// Message expressions, process-set bounds and assignments are recognized
/// into this form; anything else is handled conservatively or escalated to
/// the HSM client.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_LINEAREXPR_H
#define CSDF_NUMERIC_LINEAREXPR_H

#include "lang/Ast.h"

#include <cstdint>
#include <optional>
#include <string>

namespace csdf {

/// `Var + Const` when Var is set, otherwise the constant `Const`.
class LinearExpr {
public:
  LinearExpr() = default;
  explicit LinearExpr(std::int64_t Const) : Const(Const) {}
  LinearExpr(std::string Var, std::int64_t Const)
      : Var(std::move(Var)), Const(Const) {}

  /// Recognizes \p E as `var + c` / `var - c` / `c + var` / `var` / `c`
  /// (with nested parentheses and constant folding of pure-constant
  /// subtrees). Returns nullopt for anything else.
  static std::optional<LinearExpr> fromExpr(const Expr *E);

  bool isConstant() const { return !Var.has_value(); }
  bool hasVar() const { return Var.has_value(); }
  const std::string &var() const { return *Var; }
  std::int64_t constant() const { return Const; }

  /// Returns this + \p Delta.
  LinearExpr plus(std::int64_t Delta) const {
    LinearExpr R = *this;
    R.Const += Delta;
    return R;
  }

  /// Returns a copy with the variable renamed via \p Rename (no-op for
  /// constants).
  template <typename Fn> LinearExpr withRenamedVar(Fn Rename) const {
    if (!Var)
      return *this;
    return LinearExpr(Rename(*Var), Const);
  }

  /// Same variable and constant.
  bool operator==(const LinearExpr &O) const {
    return Var == O.Var && Const == O.Const;
  }
  bool operator!=(const LinearExpr &O) const { return !(*this == O); }
  bool operator<(const LinearExpr &O) const {
    if (Var != O.Var)
      return Var < O.Var;
    return Const < O.Const;
  }

  std::string str() const;

private:
  std::optional<std::string> Var;
  std::int64_t Const = 0;
};

} // namespace csdf

#endif // CSDF_NUMERIC_LINEAREXPR_H
