//===- numeric/SymbolTable.h - Interned variable names -------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer identifiers for analysis variable names — the paper's
/// Section IX optimization direction 1 ("variable indices instead of
/// names"). One SymbolTable is shared by every component of one analysis
/// run (constraint graphs, process-set queries, the matcher, the
/// sequential dataflow analyses), so a variable name is hashed at most
/// once per appearance and every internal comparison is an integer
/// compare. The string API of the consuming classes remains as a thin
/// boundary for the CLI, lint passes and tests.
///
/// Ids are append-only: interning never invalidates previously handed-out
/// VarIds, which is what lets long-lived analysis states cache them.
///
/// The table is thread-safe so the engine's parallel drain (and the batch
/// threads mode) can share one instance: intern()/lookup() serialize on a
/// mutex, while name() — the hot read on comparison paths — is lock-free.
/// Names live in fixed-size chunks that are never moved once published, so
/// a reference returned by name() stays valid for the table's lifetime no
/// matter how many names are interned afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_SYMBOLTABLE_H
#define CSDF_NUMERIC_SYMBOLTABLE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace csdf {

/// A dense index into a SymbolTable. Valid only together with the table
/// that produced it.
using VarId = std::uint32_t;

inline constexpr VarId InvalidVarId = static_cast<VarId>(-1);

/// Append-only intern pool mapping variable names to dense VarIds.
class SymbolTable {
public:
  SymbolTable() = default;
  ~SymbolTable();

  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Returns the id of \p Name, creating it on first sight.
  VarId intern(const std::string &Name);

  /// Returns the id of \p Name if it was ever interned.
  std::optional<VarId> lookup(const std::string &Name) const;

  /// The name behind \p Id. Lock-free: \p Id must have been obtained from
  /// this table, which establishes the happens-before edge to the chunk
  /// publication.
  const std::string &name(VarId Id) const {
    const Chunk *C =
        Chunks[Id >> ChunkBits].load(std::memory_order_acquire);
    return (*C)[Id & (ChunkSize - 1)];
  }

  /// Number of interned names.
  std::size_t size() const { return Count.load(std::memory_order_acquire); }

private:
  /// 512 names per chunk; the spine supports 2^21 names, far beyond any
  /// program the analyzer meets (stress corpus peaks in the thousands).
  static constexpr unsigned ChunkBits = 9;
  static constexpr std::size_t ChunkSize = std::size_t(1) << ChunkBits;
  static constexpr std::size_t SpineSize = 4096;
  using Chunk = std::array<std::string, ChunkSize>;

  mutable std::mutex M;
  std::unordered_map<std::string, VarId> IdsByName;
  std::array<std::atomic<Chunk *>, SpineSize> Chunks{};
  std::atomic<std::size_t> Count{0};
};

/// Tables are shared per analysis run.
using SymbolTablePtr = std::shared_ptr<SymbolTable>;

} // namespace csdf

#endif // CSDF_NUMERIC_SYMBOLTABLE_H
