//===- numeric/SymbolTable.h - Interned variable names -------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer identifiers for analysis variable names — the paper's
/// Section IX optimization direction 1 ("variable indices instead of
/// names"). One SymbolTable is shared by every component of one analysis
/// run (constraint graphs, process-set queries, the matcher, the
/// sequential dataflow analyses), so a variable name is hashed at most
/// once per appearance and every internal comparison is an integer
/// compare. The string API of the consuming classes remains as a thin
/// boundary for the CLI, lint passes and tests.
///
/// Ids are append-only: interning never invalidates previously handed-out
/// VarIds, which is what lets long-lived analysis states cache them.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_NUMERIC_SYMBOLTABLE_H
#define CSDF_NUMERIC_SYMBOLTABLE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace csdf {

/// A dense index into a SymbolTable. Valid only together with the table
/// that produced it.
using VarId = std::uint32_t;

inline constexpr VarId InvalidVarId = static_cast<VarId>(-1);

/// Append-only intern pool mapping variable names to dense VarIds.
class SymbolTable {
public:
  /// Returns the id of \p Name, creating it on first sight.
  VarId intern(const std::string &Name);

  /// Returns the id of \p Name if it was ever interned.
  std::optional<VarId> lookup(const std::string &Name) const;

  /// The name behind \p Id.
  const std::string &name(VarId Id) const { return NamesById[Id]; }

  /// Number of interned names.
  std::size_t size() const { return NamesById.size(); }

private:
  std::vector<std::string> NamesById;
  std::unordered_map<std::string, VarId> IdsByName;
};

/// Tables are shared per analysis run.
using SymbolTablePtr = std::shared_ptr<SymbolTable>;

} // namespace csdf

#endif // CSDF_NUMERIC_SYMBOLTABLE_H
