//===- lang/ExprOps.h - Expression utilities -------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pure utility operations over MPL expression trees: printing, structural
/// equality, free-variable collection, id-dependence checks, and concrete
/// evaluation against a variable environment. Shared by the CFG builder, the
/// interpreter, both client analyses and the MPI-CFG baseline.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_EXPROPS_H
#define CSDF_LANG_EXPROPS_H

#include "lang/Ast.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>

namespace csdf {

/// Renders \p E back to MPL surface syntax (fully parenthesized only where
/// precedence requires it).
std::string exprToString(const Expr *E);

/// Structural equality of expression trees (same shape, operators, names and
/// constants). Input() expressions are never equal to anything, including
/// themselves, because two reads may yield different values.
bool exprEquals(const Expr *A, const Expr *B);

/// Inserts the names of all variables referenced by \p E into \p Vars.
void collectVars(const Expr *E, std::set<std::string> &Vars);

/// Returns true if \p E references the process-rank variable `id`.
bool dependsOnId(const Expr *E);

/// Returns true if \p E contains an input() subexpression.
bool containsInput(const Expr *E);

/// Environment callback: yields the value of a variable, or nullopt when the
/// variable is unbound (which makes evaluation fail).
using VarEnv = std::function<std::optional<std::int64_t>(const std::string &)>;

/// Evaluates \p E under \p Env. Returns nullopt on unbound variables,
/// division/modulus by zero, or input() (callers that can service input()
/// must handle InputExpr before calling this). Booleans are 0/1. Division
/// truncates toward zero (C++ semantics); all paper examples use
/// non-negative operands where this matches floor division.
std::optional<std::int64_t> evalExpr(const Expr *E, const VarEnv &Env);

/// Result of constant folding: value if \p E is a constant expression.
std::optional<std::int64_t> foldConstant(const Expr *E);

} // namespace csdf

#endif // CSDF_LANG_EXPROPS_H
