//===- lang/Lexer.h - MPL lexer --------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MPL. Supports `#` line comments, decimal integer
/// literals, keywords and the operator set in Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_LEXER_H
#define CSDF_LANG_LEXER_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace csdf {

/// Converts MPL source text into a token stream.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes and returns the next token; returns Eof forever at end of input.
  Token next();

  /// Lexes the whole input. The returned vector always ends with Eof (or
  /// stops early after the first Error token).
  std::vector<Token> lexAll();

private:
  char peek() const;
  char peekAhead() const;
  char advance();
  bool atEnd() const;
  void skipTrivia();
  Token makeToken(TokenKind Kind) const;
  Token makeError(const std::string &Msg) const;
  Token lexNumber();
  Token lexIdentifierOrKeyword();

  std::string Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  SourceLoc TokenStart;
};

} // namespace csdf

#endif // CSDF_LANG_LEXER_H
