//===- lang/Corpus.h - Paper code samples as MPL programs ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code samples from the paper, transcribed to MPL, plus a few
/// additional kernels used for testing and benchmarking. Each function
/// returns MPL source text; tests, examples and benchmarks parse these via
/// parseProgramOrDie().
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_CORPUS_H
#define CSDF_LANG_CORPUS_H

#include <string>
#include <vector>

namespace csdf {
namespace corpus {

/// Figure 2: processes 0 and 1 exchange a value initialized to 5 by process
/// 0; both print it.
std::string figure2Exchange();

/// Figure 1 (mdcask), first half: every process i in [1..np-1] sends to
/// process 0 (gather-to-root).
std::string gatherToRoot();

/// Fan-out broadcast: process 0 sends to every other process. This is the
/// Section IX evaluation workload.
std::string fanOutBroadcast();

/// Figures 1/5 (mdcask), second half: process 0 exchanges a message with
/// every other process (exchange-with-root).
std::string exchangeWithRoot();

/// Figure 6 (NAS-CG): transpose exchange on a 2-D cartesian grid, with the
/// square (ncols == nrows) and rectangular (ncols == 2*nrows) branches.
std::string nascgTranspose();

/// The square branch of Figure 6 in isolation.
std::string transposeSquare();

/// The rectangular (ncols == 2*nrows) branch of Figure 6 in isolation.
std::string transposeRect();

/// Figure 7: 1-D nearest-neighbor shift. Interior processes receive from
/// the left and send to the right; the edges only send or only receive.
std::string neighborShift();

/// Right-to-left variant of Figure 7 (shift in the other direction).
std::string neighborShiftLeft();

/// Both shifts back to back: the 1-D nearest-neighbor exchange used by
/// stencil codes (2d+1 = 3 process roles).
std::string neighborExchange1D();

/// Pairwise exchange: even/odd neighbor pairs (2i <-> 2i+1) swap values.
/// Requires np even (assume np == 2 * half).
std::string pairwiseExchange();

/// Section VIII-C, d = 2: shift data one row down a 2-D nrows x ncols
/// mesh. Three row roles: top row only sends, bottom row only receives,
/// interior rows do both. Partner expressions are `id +- ncols`.
std::string vshift2d();

/// A two-phase kernel: broadcast from root, then gather back to root.
/// Exercises sequential composition of two matched phases.
std::string broadcastThenGather();

/// Buggy program: process 0 sends two messages to process 1 but process 1
/// receives only one — a message leak.
std::string messageLeak();

/// Buggy program: processes 0 and 1 both receive first — a deadlock.
std::string headToHeadDeadlock();

/// Buggy program: sender and receiver use different tags, so the message
/// can never match (tag mismatch).
std::string tagMismatch();

/// Ring shift with wraparound: send to (id+1) % np. The paper's analyses do
/// not support wraparound meshes; this must drive the framework to Top
/// rather than to a wrong match.
std::string ringShift();

/// A sequential program with no communication (baseline for the engine).
std::string noComm();

/// Non-blocking ping: rank 0 isends to rank 1; both sides complete their
/// request with a wait (the minimal isend/irecv/wait round trip).
std::string nonblockingPing();

/// Non-blocking fan-out: rank 0 posts isends to ranks 1 and 2 and
/// completes both with one waitall; the receivers use blocking recvs.
std::string isendFanout();

/// Wildcard receive with a unique sender: `recv <- any` that still
/// matches deterministically (exactly one statically eligible sender).
std::string wildcardUniqueSender();

/// Buggy program: the irecv buffer is read before the completing wait — a
/// buffer race.
std::string bufferRace();

/// Buggy program: an irecv request is never waited on — a request leak
/// (and the sender's message is never consumed).
std::string requestLeak();

/// Buggy program: two senders race into one wildcard receive — match
/// nondeterminism.
std::string wildcardRace();

/// Names and sources of all well-formed pattern programs (excludes the
/// intentionally buggy ones), for parameter sweeps.
struct NamedProgram {
  std::string Name;
  std::string Source;
};
std::vector<NamedProgram> allPatterns();

} // namespace corpus
} // namespace csdf

#endif // CSDF_LANG_CORPUS_H
