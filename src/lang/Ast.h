//===- lang/Ast.h - MPL abstract syntax trees ------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node hierarchy for MPL. All nodes are allocated in an AstContext arena
/// and use LLVM-style kind-discriminated RTTI (classof + isa/cast/dyn_cast).
///
/// The statement forms mirror the paper's execution model (Section III):
///   send <value> -> <dest> [tag <t>];   point-to-point blocking send
///   recv <var>  <- <src>  [tag <t>];    deterministic blocking receive
///   recv <var>  <- any    [tag <t>];    wildcard (any-source) receive
/// plus the non-blocking request forms of the Section X extension:
///   isend <value> -> <dest> [tag <t>] req <r>;
///   irecv <var>  <- <src|any> [tag <t>] req <r>;
///   wait <r>;   waitall;
/// plus assignments, structured control flow, `assume` (used to inject
/// topology invariants like `np == nrows * ncols`), `assert`, and `print`.
/// Request handles (`req r`) live in their own namespace, disjoint from
/// scalar variables.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_AST_H
#define CSDF_LANG_AST_H

#include "lang/Token.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace csdf {

class AstContext;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all MPL expressions.
class Expr {
public:
  enum class Kind {
    IntLit,
    VarRef,
    Unary,
    Binary,
    Input,
  };

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  virtual ~Expr() = default;

protected:
  Expr(Kind TheKind, SourceLoc Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  virtual void anchor();

  Kind TheKind;
  SourceLoc Loc;
};

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(std::int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  std::int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  std::int64_t Value;
};

/// A reference to a scalar variable. The special names `id` and `np` refer
/// to the process rank and process count of the executing process.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  bool isProcessId() const { return Name == "id"; }
  bool isProcessCount() const { return Name == "np"; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

/// A unary expression (negation / logical not).
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, const Expr *Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  const Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  const Expr *Operand;
};

/// Binary operators. Div/Mod follow integer (floor toward zero) semantics.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// Returns the surface spelling of \p Op.
const char *binaryOpSpelling(BinaryOp Op);

/// Returns true if \p Op yields a boolean (comparison or logical).
bool isBooleanOp(BinaryOp Op);

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, const Expr *LHS, const Expr *RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  const Expr *LHS;
  const Expr *RHS;
};

/// `input()` — reads a nondeterministic integer from the environment. The
/// execution model allows nondeterminism only from sources independent of
/// the communication pattern; this is that source.
class InputExpr : public Expr {
public:
  explicit InputExpr(SourceLoc Loc) : Expr(Kind::Input, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::Input; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all MPL statements.
class Stmt {
public:
  enum class Kind {
    Assign,
    If,
    While,
    For,
    Send,
    Recv,
    Isend,
    Irecv,
    Wait,
    Waitall,
    Print,
    Assume,
    Assert,
    Skip,
    Call,
  };

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  virtual ~Stmt() = default;

protected:
  Stmt(Kind TheKind, SourceLoc Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  virtual void anchor();

  Kind TheKind;
  SourceLoc Loc;
};

/// A list of statements executed in order.
using StmtList = std::vector<const Stmt *>;

/// `var = expr;`
class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Var, const Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Var(std::move(Var)), Value(Value) {}

  const std::string &var() const { return Var; }
  const Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  std::string Var;
  const Expr *Value;
};

/// `if c then ... [elif c then ...]* [else ...] end`. Elif chains are
/// desugared by the parser into nested IfStmts.
class IfStmt : public Stmt {
public:
  IfStmt(const Expr *Cond, StmtList Then, StmtList Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *cond() const { return Cond; }
  const StmtList &thenBody() const { return Then; }
  const StmtList &elseBody() const { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  const Expr *Cond;
  StmtList Then;
  StmtList Else;
};

/// `while c do ... end`
class WhileStmt : public Stmt {
public:
  WhileStmt(const Expr *Cond, StmtList Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(std::move(Body)) {}

  const Expr *cond() const { return Cond; }
  const StmtList &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  const Expr *Cond;
  StmtList Body;
};

/// `for v = lo to hi do ... end` — iterates v over [lo, hi] inclusive.
/// Kept as a distinct node (rather than parser-desugared) so printers can
/// round-trip source; the CFG builder lowers it to init/test/increment.
class ForStmt : public Stmt {
public:
  ForStmt(std::string Var, const Expr *From, const Expr *To, StmtList Body,
          SourceLoc Loc)
      : Stmt(Kind::For, Loc), Var(std::move(Var)), From(From), To(To),
        Body(std::move(Body)) {}

  const std::string &var() const { return Var; }
  const Expr *from() const { return From; }
  const Expr *to() const { return To; }
  const StmtList &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  std::string Var;
  const Expr *From;
  const Expr *To;
  StmtList Body;
};

/// `send value -> dest [tag t];`
class SendStmt : public Stmt {
public:
  SendStmt(const Expr *Value, const Expr *Dest, const Expr *Tag, SourceLoc Loc)
      : Stmt(Kind::Send, Loc), Value(Value), Dest(Dest), Tag(Tag) {}

  const Expr *value() const { return Value; }
  const Expr *dest() const { return Dest; }
  /// Null when the program did not specify a tag (tag 0 semantics).
  const Expr *tag() const { return Tag; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Send; }

private:
  const Expr *Value;
  const Expr *Dest;
  const Expr *Tag;
};

/// `recv var <- src [tag t];` / `recv var <- any [tag t];`
class RecvStmt : public Stmt {
public:
  RecvStmt(std::string Var, const Expr *Src, const Expr *Tag, SourceLoc Loc)
      : Stmt(Kind::Recv, Loc), Var(std::move(Var)), Src(Src), Tag(Tag) {}

  const std::string &var() const { return Var; }
  /// Null for a wildcard (`any`-source) receive.
  const Expr *src() const { return Src; }
  bool isWildcard() const { return Src == nullptr; }
  /// Null when the program did not specify a tag (tag 0 semantics).
  const Expr *tag() const { return Tag; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Recv; }

private:
  std::string Var;
  const Expr *Src;
  const Expr *Tag;
};

/// `isend value -> dest [tag t] req r;` — deposits the message and
/// completes immediately (a buffered send); `wait r` is the completion
/// point of the request handle.
class IsendStmt : public Stmt {
public:
  IsendStmt(const Expr *Value, const Expr *Dest, const Expr *Tag,
            std::string Req, SourceLoc Loc)
      : Stmt(Kind::Isend, Loc), Value(Value), Dest(Dest), Tag(Tag),
        Req(std::move(Req)) {}

  const Expr *value() const { return Value; }
  const Expr *dest() const { return Dest; }
  /// Null when the program did not specify a tag (tag 0 semantics).
  const Expr *tag() const { return Tag; }
  const std::string &req() const { return Req; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Isend; }

private:
  const Expr *Value;
  const Expr *Dest;
  const Expr *Tag;
  std::string Req;
};

/// `irecv var <- src [tag t] req r;` / `irecv var <- any [tag t] req r;` —
/// posts a receive request. Source and tag are evaluated at the post;
/// the message lands in `var` at the matching `wait r`. Touching `var`
/// between the post and the wait is a buffer race.
class IrecvStmt : public Stmt {
public:
  IrecvStmt(std::string Var, const Expr *Src, const Expr *Tag,
            std::string Req, SourceLoc Loc)
      : Stmt(Kind::Irecv, Loc), Var(std::move(Var)), Src(Src), Tag(Tag),
        Req(std::move(Req)) {}

  const std::string &var() const { return Var; }
  /// Null for a wildcard (`any`-source) receive.
  const Expr *src() const { return Src; }
  bool isWildcard() const { return Src == nullptr; }
  /// Null when the program did not specify a tag (tag 0 semantics).
  const Expr *tag() const { return Tag; }
  const std::string &req() const { return Req; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Irecv; }

private:
  std::string Var;
  const Expr *Src;
  const Expr *Tag;
  std::string Req;
};

/// `wait r;` — blocks until request `r` completes. Waiting on a request
/// that was never posted, or twice on the same posting, is an error.
class WaitStmt : public Stmt {
public:
  WaitStmt(std::string Req, SourceLoc Loc)
      : Stmt(Kind::Wait, Loc), Req(std::move(Req)) {}

  const std::string &req() const { return Req; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Wait; }

private:
  std::string Req;
};

/// `waitall;` — completes every outstanding request of the executing
/// process, in posting order.
class WaitallStmt : public Stmt {
public:
  explicit WaitallStmt(SourceLoc Loc) : Stmt(Kind::Waitall, Loc) {}

  static bool classof(const Stmt *S) { return S->kind() == Kind::Waitall; }
};

/// `print expr;`
class PrintStmt : public Stmt {
public:
  PrintStmt(const Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Print, Loc), Value(Value) {}

  const Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Print; }

private:
  const Expr *Value;
};

/// `assume expr;` — injects a fact the analysis may rely on (e.g. the
/// topology invariant `np == nrows * ncols` from the NAS-CG example). The
/// interpreter checks assumes like asserts so that simulated executions
/// cannot silently diverge from analyzed ones.
class AssumeStmt : public Stmt {
public:
  AssumeStmt(const Expr *Cond, SourceLoc Loc)
      : Stmt(Kind::Assume, Loc), Cond(Cond) {}

  const Expr *cond() const { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assume; }

private:
  const Expr *Cond;
};

/// `assert expr;` — checked at runtime by the interpreter; ignored by the
/// static analysis (it is a proof obligation, not a fact).
class AssertStmt : public Stmt {
public:
  AssertStmt(const Expr *Cond, SourceLoc Loc)
      : Stmt(Kind::Assert, Loc), Cond(Cond) {}

  const Expr *cond() const { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assert; }

private:
  const Expr *Cond;
};

/// `skip;` — no-op.
class SkipStmt : public Stmt {
public:
  explicit SkipStmt(SourceLoc Loc) : Stmt(Kind::Skip, Loc) {}

  static bool classof(const Stmt *S) { return S->kind() == Kind::Skip; }
};

/// `call name;` — runs the body of procedure `name`. Procedures share the
/// program's flat variable namespace (no parameters, no locals) and may
/// not recurse; the CFG builder splices the callee body in place, so a
/// call contributes no node of its own to the graph.
class CallStmt : public Stmt {
public:
  CallStmt(std::string Callee, SourceLoc Loc)
      : Stmt(Kind::Call, Loc), Callee(std::move(Callee)) {}

  const std::string &callee() const { return Callee; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }

private:
  std::string Callee;
};

/// A top-level `proc name do ... end` declaration. Declaration order is
/// irrelevant: a proc may call procs declared later in the file.
struct ProcDecl {
  std::string Name;
  StmtList Body;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Program and arena
//===----------------------------------------------------------------------===//

/// A complete MPL program: a top-level statement list plus the arena that
/// owns every node.
class Program {
public:
  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  const StmtList &body() const { return Body; }
  void setBody(StmtList NewBody) { Body = std::move(NewBody); }

  /// Top-level procedure declarations, in declaration order.
  const std::vector<ProcDecl> &procs() const { return Procs; }
  void addProc(ProcDecl Decl) { Procs.push_back(std::move(Decl)); }

  /// The declaration named \p Name, or null.
  const ProcDecl *findProc(const std::string &Name) const {
    for (const ProcDecl &P : Procs)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }

  /// Allocates an expression node owned by this program.
  template <typename T, typename... Args> const T *makeExpr(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    const T *Ptr = Node.get();
    ExprArena.push_back(std::move(Node));
    return Ptr;
  }

  /// Allocates a statement node owned by this program.
  template <typename T, typename... Args> const T *makeStmt(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    const T *Ptr = Node.get();
    StmtArena.push_back(std::move(Node));
    return Ptr;
  }

private:
  StmtList Body;
  std::vector<ProcDecl> Procs;
  std::vector<std::unique_ptr<const Expr>> ExprArena;
  std::vector<std::unique_ptr<const Stmt>> StmtArena;
};

} // namespace csdf

#endif // CSDF_LANG_AST_H
