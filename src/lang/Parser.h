//===- lang/Parser.h - MPL recursive-descent parser ------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MPL. Produces a Program (AST + arena) and a
/// list of diagnostics; a program with diagnostics must not be consumed.
///
/// Grammar (EBNF):
///   program   := stmt*
///   stmt      := ident '=' expr ';'
///              | 'if' expr 'then' stmt* ('elif' expr 'then' stmt*)*
///                    ('else' stmt*)? 'end'
///              | 'while' expr 'do' stmt* 'end'
///              | 'for' ident '=' expr 'to' expr 'do' stmt* 'end'
///              | 'send' expr '->' expr ('tag' expr)? ';'
///              | 'recv' ident '<-' expr ('tag' expr)? ';'
///              | 'print' expr ';' | 'assume' expr ';' | 'assert' expr ';'
///              | 'skip' ';'
///   expr      := orExpr
///   orExpr    := andExpr ('or' andExpr)*
///   andExpr   := notExpr ('and' notExpr)*
///   notExpr   := 'not' notExpr | relExpr
///   relExpr   := addExpr (('=='|'!='|'<'|'<='|'>'|'>=') addExpr)?
///   addExpr   := mulExpr (('+'|'-') mulExpr)*
///   mulExpr   := unary (('*'|'/'|'%') unary)*
///   unary     := '-' unary | primary
///   primary   := integer | ident | 'true' | 'false' | 'input' '(' ')'
///              | '(' expr ')'
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_PARSER_H
#define CSDF_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"

#include <string>
#include <vector>

namespace csdf {

/// A single parse diagnostic.
struct ParseDiagnostic {
  SourceLoc Loc;
  std::string Message;

  std::string str() const { return Loc.str() + ": error: " + Message; }
};

/// The result of a parse: the program plus any diagnostics.
struct ParseResult {
  Program Prog;
  std::vector<ParseDiagnostic> Diagnostics;

  bool succeeded() const { return Diagnostics.empty(); }
};

/// Default bound on statement/expression nesting depth. Deep enough for
/// any hand-written program, shallow enough that the recursive descent
/// (and every recursive AST walk downstream) stays far from stack
/// overflow on adversarial inputs like ((((((...)))))).
inline constexpr unsigned DefaultMaxParseDepth = 256;

/// Parses \p Source into an MPL program. Nesting beyond \p MaxDepth is a
/// parse diagnostic, not a crash.
ParseResult parseProgram(const std::string &Source,
                         unsigned MaxDepth = DefaultMaxParseDepth);

/// Parses \p Source and aborts with the first diagnostic on failure.
/// Convenience for tests, examples and benchmarks whose inputs are
/// known-good corpus programs.
Program parseProgramOrDie(const std::string &Source);

} // namespace csdf

#endif // CSDF_LANG_PARSER_H
