//===- lang/Ast.cpp --------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

#include "support/ErrorHandling.h"

using namespace csdf;

void Expr::anchor() {}
void Stmt::anchor() {}

const char *csdf::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  }
  csdf_unreachable("unhandled BinaryOp");
}

bool csdf::isBooleanOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod:
    return false;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::And:
  case BinaryOp::Or:
    return true;
  }
  csdf_unreachable("unhandled BinaryOp");
}
