//===- lang/AstPrinter.h - MPL pretty-printer ------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an MPL AST back to surface syntax. Printing then reparsing yields
/// a structurally identical program (round-trip property, tested).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_ASTPRINTER_H
#define CSDF_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace csdf {

/// Pretty-prints \p S (and nested statements) at \p Indent levels.
std::string stmtToString(const Stmt *S, unsigned Indent = 0);

/// Pretty-prints a whole program.
std::string programToString(const Program &Prog);

} // namespace csdf

#endif // CSDF_LANG_ASTPRINTER_H
