//===- lang/Sema.h - MPL semantic checks -----------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic validation of MPL programs against the paper's execution model:
///  * `id` and `np` are read-only (no assignment, recv or for-loop binding),
///  * communication partner and tag expressions are deterministic (no
///    input()) — the model requires deterministic receives,
///  * variables are defined before use along every path (flow-insensitive
///    approximation: a variable must be assigned/received somewhere before
///    its first textual use at the same or an enclosing nesting level is not
///    tracked; we instead warn on names never defined anywhere).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_SEMA_H
#define CSDF_LANG_SEMA_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace csdf {

/// A semantic diagnostic. Errors invalidate the program; warnings do not.
struct SemaDiagnostic {
  enum class Severity { Error, Warning };
  Severity Sev = Severity::Error;
  SourceLoc Loc;
  std::string Message;

  bool isError() const { return Sev == Severity::Error; }
  std::string str() const {
    return Loc.str() + (isError() ? ": error: " : ": warning: ") + Message;
  }
};

/// Result of semantic checking.
struct SemaResult {
  std::vector<SemaDiagnostic> Diagnostics;

  bool hasErrors() const {
    for (const SemaDiagnostic &Diag : Diagnostics)
      if (Diag.isError())
        return true;
    return false;
  }
};

/// Runs all semantic checks over \p Prog.
SemaResult checkProgram(const Program &Prog);

} // namespace csdf

#endif // CSDF_LANG_SEMA_H
