//===- lang/Token.h - MPL token definitions -------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type for the MPL mini message-passing
/// language. MPL is the textual form of the execution model in Section III
/// of the paper: integer scalars, `id`/`np` special variables, blocking
/// `send`/`recv` with arithmetic partner expressions, and structured control
/// flow.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_TOKEN_H
#define CSDF_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace csdf {

/// Source location (1-based line and column) for diagnostics.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator<(const SourceLoc &A, const SourceLoc &B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Col < B.Col;
  }
  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

/// The lexical classes of MPL.
enum class TokenKind {
  // Markers.
  Eof,
  Error,

  // Literals and identifiers.
  Integer,
  Identifier,

  // Keywords.
  KwIf,
  KwThen,
  KwElif,
  KwElse,
  KwEnd,
  KwWhile,
  KwDo,
  KwFor,
  KwTo,
  KwSend,
  KwRecv,
  KwPrint,
  KwAssume,
  KwAssert,
  KwSkip,
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  KwNot,
  KwInput,
  KwTag,
  KwIsend,
  KwIrecv,
  KwWait,
  KwWaitall,
  KwReq,
  KwAny,
  KwProc,
  KwCall,

  // Punctuation and operators.
  LParen,
  RParen,
  Semi,
  Comma,
  Assign,   // =
  Arrow,    // ->
  BackArrow, // <-
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
};

/// Returns a human-readable spelling for \p Kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// A single lexed token: kind, source range start, and payload.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Identifier spelling; also holds the message for Error tokens.
  std::string Text;
  /// Value for Integer tokens.
  std::int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace csdf

#endif // CSDF_LANG_TOKEN_H
