//===- lang/Token.cpp ------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Token.h"

#include "support/ErrorHandling.h"

using namespace csdf;

const char *csdf::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Integer:
    return "integer literal";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElif:
    return "'elif'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwSend:
    return "'send'";
  case TokenKind::KwRecv:
    return "'recv'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwAssume:
    return "'assume'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwInput:
    return "'input'";
  case TokenKind::KwTag:
    return "'tag'";
  case TokenKind::KwIsend:
    return "'isend'";
  case TokenKind::KwIrecv:
    return "'irecv'";
  case TokenKind::KwWait:
    return "'wait'";
  case TokenKind::KwWaitall:
    return "'waitall'";
  case TokenKind::KwReq:
    return "'req'";
  case TokenKind::KwAny:
    return "'any'";
  case TokenKind::KwProc:
    return "'proc'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::BackArrow:
    return "'<-'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  }
  csdf_unreachable("unhandled TokenKind");
}
