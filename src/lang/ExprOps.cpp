//===- lang/ExprOps.cpp ----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/ExprOps.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <sstream>

using namespace csdf;

namespace {

/// Binding strength used to decide where parentheses are needed.
int precedence(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::Input:
    return 100;
  case Expr::Kind::Unary:
    return 90;
  case Expr::Kind::Binary:
    switch (cast<BinaryExpr>(E)->op()) {
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return 80;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 70;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return 60;
    case BinaryOp::And:
      return 50;
    case BinaryOp::Or:
      return 40;
    }
    csdf_unreachable("unhandled BinaryOp");
  }
  csdf_unreachable("unhandled Expr::Kind");
}

void printExpr(const Expr *E, std::ostringstream &OS) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    OS << cast<IntLitExpr>(E)->value();
    return;
  case Expr::Kind::VarRef:
    OS << cast<VarRefExpr>(E)->name();
    return;
  case Expr::Kind::Input:
    OS << "input()";
    return;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    OS << (U->op() == UnaryOp::Neg ? "-" : "not ");
    bool NeedParens = precedence(U->operand()) < precedence(E);
    if (NeedParens)
      OS << "(";
    printExpr(U->operand(), OS);
    if (NeedParens)
      OS << ")";
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int MyPrec = precedence(E);
    // Left child may bind equally (left associativity); right child must
    // bind strictly tighter.
    bool LParens = precedence(B->lhs()) < MyPrec;
    bool RParens = precedence(B->rhs()) <= MyPrec;
    if (LParens)
      OS << "(";
    printExpr(B->lhs(), OS);
    if (LParens)
      OS << ")";
    OS << " " << binaryOpSpelling(B->op()) << " ";
    if (RParens)
      OS << "(";
    printExpr(B->rhs(), OS);
    if (RParens)
      OS << ")";
    return;
  }
  }
  csdf_unreachable("unhandled Expr::Kind");
}

} // namespace

std::string csdf::exprToString(const Expr *E) {
  std::ostringstream OS;
  printExpr(E, OS);
  return OS.str();
}

bool csdf::exprEquals(const Expr *A, const Expr *B) {
  if (A == B && A->kind() != Expr::Kind::Input)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(A)->value() == cast<IntLitExpr>(B)->value();
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(A)->name() == cast<VarRefExpr>(B)->name();
  case Expr::Kind::Input:
    // Two reads of input() may differ; never equal.
    return false;
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(A);
    const auto *UB = cast<UnaryExpr>(B);
    return UA->op() == UB->op() && exprEquals(UA->operand(), UB->operand());
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A);
    const auto *BB = cast<BinaryExpr>(B);
    return BA->op() == BB->op() && exprEquals(BA->lhs(), BB->lhs()) &&
           exprEquals(BA->rhs(), BB->rhs());
  }
  }
  csdf_unreachable("unhandled Expr::Kind");
}

void csdf::collectVars(const Expr *E, std::set<std::string> &Vars) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Input:
    return;
  case Expr::Kind::VarRef:
    Vars.insert(cast<VarRefExpr>(E)->name());
    return;
  case Expr::Kind::Unary:
    collectVars(cast<UnaryExpr>(E)->operand(), Vars);
    return;
  case Expr::Kind::Binary:
    collectVars(cast<BinaryExpr>(E)->lhs(), Vars);
    collectVars(cast<BinaryExpr>(E)->rhs(), Vars);
    return;
  }
  csdf_unreachable("unhandled Expr::Kind");
}

bool csdf::dependsOnId(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Input:
    return false;
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(E)->isProcessId();
  case Expr::Kind::Unary:
    return dependsOnId(cast<UnaryExpr>(E)->operand());
  case Expr::Kind::Binary:
    return dependsOnId(cast<BinaryExpr>(E)->lhs()) ||
           dependsOnId(cast<BinaryExpr>(E)->rhs());
  }
  csdf_unreachable("unhandled Expr::Kind");
}

bool csdf::containsInput(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
    return false;
  case Expr::Kind::Input:
    return true;
  case Expr::Kind::Unary:
    return containsInput(cast<UnaryExpr>(E)->operand());
  case Expr::Kind::Binary:
    return containsInput(cast<BinaryExpr>(E)->lhs()) ||
           containsInput(cast<BinaryExpr>(E)->rhs());
  }
  csdf_unreachable("unhandled Expr::Kind");
}

std::optional<std::int64_t> csdf::evalExpr(const Expr *E, const VarEnv &Env) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E)->value();
  case Expr::Kind::VarRef:
    return Env(cast<VarRefExpr>(E)->name());
  case Expr::Kind::Input:
    return std::nullopt;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    auto V = evalExpr(U->operand(), Env);
    if (!V)
      return std::nullopt;
    return U->op() == UnaryOp::Neg ? -*V : static_cast<std::int64_t>(*V == 0);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = evalExpr(B->lhs(), Env);
    if (!L)
      return std::nullopt;
    // Short-circuit logical operators so `x != 0 and y / x > 1` style
    // guards behave as programmers expect.
    if (B->op() == BinaryOp::And && *L == 0)
      return 0;
    if (B->op() == BinaryOp::Or && *L != 0)
      return 1;
    auto R = evalExpr(B->rhs(), Env);
    if (!R)
      return std::nullopt;
    switch (B->op()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      if (*R == 0)
        return std::nullopt;
      return *L / *R;
    case BinaryOp::Mod:
      if (*R == 0)
        return std::nullopt;
      return *L % *R;
    case BinaryOp::Eq:
      return static_cast<std::int64_t>(*L == *R);
    case BinaryOp::Ne:
      return static_cast<std::int64_t>(*L != *R);
    case BinaryOp::Lt:
      return static_cast<std::int64_t>(*L < *R);
    case BinaryOp::Le:
      return static_cast<std::int64_t>(*L <= *R);
    case BinaryOp::Gt:
      return static_cast<std::int64_t>(*L > *R);
    case BinaryOp::Ge:
      return static_cast<std::int64_t>(*L >= *R);
    case BinaryOp::And:
      return static_cast<std::int64_t>(*L != 0 && *R != 0);
    case BinaryOp::Or:
      return static_cast<std::int64_t>(*L != 0 || *R != 0);
    }
    csdf_unreachable("unhandled BinaryOp");
  }
  }
  csdf_unreachable("unhandled Expr::Kind");
}

std::optional<std::int64_t> csdf::foldConstant(const Expr *E) {
  return evalExpr(E, [](const std::string &) { return std::nullopt; });
}
