//===- lang/Sema.cpp -------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/ExprOps.h"
#include "support/Budget.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <map>
#include <set>

using namespace csdf;

namespace {

bool isReservedName(const std::string &Name) {
  return Name == "id" || Name == "np";
}

class SemaImpl {
public:
  explicit SemaImpl(SemaResult &Result) : Result(Result) {}

  void run(const Program &Prog) {
    checkProcs(Prog);
    // The variable namespace is flat across the main body and every proc
    // body: a proc is spliced into its caller by the CFG builder, so defs
    // anywhere count everywhere.
    collectDefs(Prog.body());
    for (const ProcDecl &P : Prog.procs())
      collectDefs(P.Body);
    checkBody(Prog.body());
    for (const ProcDecl &P : Prog.procs())
      checkBody(P.Body);
    reportUndefinedUses();
    reportNamespaceClashes();
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) {
    Result.Diagnostics.push_back(
        {SemaDiagnostic::Severity::Error, Loc, Msg});
  }

  void warning(SourceLoc Loc, const std::string &Msg) {
    Result.Diagnostics.push_back(
        {SemaDiagnostic::Severity::Warning, Loc, Msg});
  }

  /// Belt-and-braces depth limit for ASTs that did not come through the
  /// parser (which enforces DefaultMaxParseDepth itself): stop descending
  /// and report instead of overflowing the stack.
  static constexpr unsigned MaxStmtDepth = 512;

  bool enterNested(SourceLoc Loc) {
    if (Depth < MaxStmtDepth)
      return true;
    if (!DepthErrorReported) {
      DepthErrorReported = true;
      error(Loc, "statement nesting exceeds the limit of " +
                     std::to_string(MaxStmtDepth));
    }
    return false;
  }

  void collectDefs(const StmtList &Body) {
    if (!Body.empty() && !enterNested(Body.front()->loc()))
      return;
    ++Depth;
    collectDefsImpl(Body);
    --Depth;
  }

  void collectDefsImpl(const StmtList &Body) {
    for (const Stmt *S : Body) {
      switch (S->kind()) {
      case Stmt::Kind::Assign:
        Defined.insert(cast<AssignStmt>(S)->var());
        break;
      case Stmt::Kind::Recv:
        Defined.insert(cast<RecvStmt>(S)->var());
        break;
      case Stmt::Kind::Irecv:
        Defined.insert(cast<IrecvStmt>(S)->var());
        break;
      case Stmt::Kind::For: {
        const auto *F = cast<ForStmt>(S);
        Defined.insert(F->var());
        collectDefs(F->body());
        break;
      }
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(S);
        collectDefs(If->thenBody());
        collectDefs(If->elseBody());
        break;
      }
      case Stmt::Kind::While:
        collectDefs(cast<WhileStmt>(S)->body());
        break;
      default:
        break;
      }
    }
  }

  void noteUses(const Expr *E) {
    std::set<std::string> Vars;
    collectVars(E, Vars);
    for (const std::string &Var : Vars)
      if (!isReservedName(Var))
        Used.insert({Var, E->loc()});
  }

  void checkPartnerExpr(const Expr *E, const char *What) {
    if (containsInput(E))
      error(E->loc(), std::string(What) +
                          " expression must be deterministic; input() "
                          "violates the execution model's deterministic "
                          "receive requirement");
  }

  void checkBody(const StmtList &Body) {
    budgetCheckpoint();
    if (!Body.empty() && !enterNested(Body.front()->loc()))
      return;
    ++Depth;
    for (const Stmt *S : Body)
      checkStmt(S);
    --Depth;
  }

  void checkStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (isReservedName(A->var()))
        error(S->loc(), "cannot assign to reserved variable '" + A->var() +
                            "'");
      noteUses(A->value());
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      noteUses(If->cond());
      checkBody(If->thenBody());
      checkBody(If->elseBody());
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      noteUses(W->cond());
      checkBody(W->body());
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (isReservedName(F->var()))
        error(S->loc(), "cannot use reserved variable '" + F->var() +
                            "' as a loop variable");
      noteUses(F->from());
      noteUses(F->to());
      checkBody(F->body());
      return;
    }
    case Stmt::Kind::Send: {
      const auto *Send = cast<SendStmt>(S);
      noteUses(Send->value());
      noteUses(Send->dest());
      checkPartnerExpr(Send->dest(), "send destination");
      if (Send->tag()) {
        noteUses(Send->tag());
        checkPartnerExpr(Send->tag(), "send tag");
      }
      return;
    }
    case Stmt::Kind::Recv: {
      const auto *Recv = cast<RecvStmt>(S);
      if (isReservedName(Recv->var()))
        error(S->loc(), "cannot receive into reserved variable '" +
                            Recv->var() + "'");
      if (!Recv->isWildcard()) {
        noteUses(Recv->src());
        checkPartnerExpr(Recv->src(), "receive source");
      }
      if (Recv->tag()) {
        noteUses(Recv->tag());
        checkPartnerExpr(Recv->tag(), "receive tag");
      }
      return;
    }
    case Stmt::Kind::Isend: {
      const auto *Send = cast<IsendStmt>(S);
      noteUses(Send->value());
      noteUses(Send->dest());
      checkPartnerExpr(Send->dest(), "send destination");
      if (Send->tag()) {
        noteUses(Send->tag());
        checkPartnerExpr(Send->tag(), "send tag");
      }
      noteRequest(Send->req(), S->loc());
      return;
    }
    case Stmt::Kind::Irecv: {
      const auto *Recv = cast<IrecvStmt>(S);
      if (isReservedName(Recv->var()))
        error(S->loc(), "cannot receive into reserved variable '" +
                            Recv->var() + "'");
      if (!Recv->isWildcard()) {
        noteUses(Recv->src());
        checkPartnerExpr(Recv->src(), "receive source");
      }
      if (Recv->tag()) {
        noteUses(Recv->tag());
        checkPartnerExpr(Recv->tag(), "receive tag");
      }
      noteRequest(Recv->req(), S->loc());
      return;
    }
    case Stmt::Kind::Wait:
      noteRequest(cast<WaitStmt>(S)->req(), S->loc());
      return;
    case Stmt::Kind::Waitall:
      return;
    case Stmt::Kind::Print:
      noteUses(cast<PrintStmt>(S)->value());
      return;
    case Stmt::Kind::Assume:
      noteUses(cast<AssumeStmt>(S)->cond());
      return;
    case Stmt::Kind::Assert:
      noteUses(cast<AssertStmt>(S)->cond());
      return;
    case Stmt::Kind::Skip:
      return;
    case Stmt::Kind::Call: {
      const auto *C = cast<CallStmt>(S);
      if (!ProcNames.count(C->callee()))
        error(S->loc(),
              "call to undefined procedure '" + C->callee() + "'");
      return;
    }
    }
    csdf_unreachable("unhandled Stmt::Kind");
  }

  /// Duplicate-name and recursion checks over the proc declarations.
  /// Procedures are inlined at CFG build, so the call graph must be
  /// acyclic; declaration order is irrelevant.
  void checkProcs(const Program &Prog) {
    for (const ProcDecl &P : Prog.procs()) {
      if (!ProcNames.insert(P.Name).second)
        error(P.Loc, "duplicate procedure '" + P.Name + "'");
    }
    // Direct-call adjacency, then a colored DFS for cycles.
    std::map<std::string, std::set<std::string>> Calls;
    for (const ProcDecl &P : Prog.procs())
      collectCalls(P.Body, Calls[P.Name]);
    std::map<std::string, int> Color; // 0 = white, 1 = on stack, 2 = done.
    for (const ProcDecl &P : Prog.procs())
      if (Color[P.Name] == 0 && hasCycle(P.Name, Calls, Color))
        error(P.Loc, "procedure '" + P.Name +
                         "' is recursive; procedures are inlined and may "
                         "not call themselves directly or indirectly");
  }

  void collectCalls(const StmtList &Body, std::set<std::string> &Out) {
    for (const Stmt *S : Body) {
      switch (S->kind()) {
      case Stmt::Kind::Call:
        Out.insert(cast<CallStmt>(S)->callee());
        break;
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(S);
        collectCalls(If->thenBody(), Out);
        collectCalls(If->elseBody(), Out);
        break;
      }
      case Stmt::Kind::While:
        collectCalls(cast<WhileStmt>(S)->body(), Out);
        break;
      case Stmt::Kind::For:
        collectCalls(cast<ForStmt>(S)->body(), Out);
        break;
      default:
        break;
      }
    }
  }

  bool hasCycle(const std::string &Name,
                const std::map<std::string, std::set<std::string>> &Calls,
                std::map<std::string, int> &Color) {
    Color[Name] = 1;
    auto It = Calls.find(Name);
    if (It != Calls.end()) {
      for (const std::string &Callee : It->second) {
        if (!ProcNames.count(Callee))
          continue; // Unknown callee; reported at the call site.
        int C = Color[Callee];
        if (C == 1 || (C == 0 && hasCycle(Callee, Calls, Color))) {
          Color[Name] = 2;
          return true;
        }
      }
    }
    Color[Name] = 2;
    return false;
  }

  /// Records a request-handle occurrence (isend/irecv `req r`, `wait r`).
  /// Requests live in their own namespace; the checks are reservedness and
  /// (later) no overlap with the scalar namespace.
  void noteRequest(const std::string &Req, SourceLoc Loc) {
    if (isReservedName(Req))
      error(Loc, "cannot use reserved variable '" + Req +
                     "' as a request name");
    Requests.insert({Req, Loc});
  }

  void reportUndefinedUses() {
    for (const auto &[Var, Loc] : Used)
      if (!Defined.count(Var))
        warning(Loc, "variable '" + Var +
                         "' is never assigned; it reads as uninitialized "
                         "input in the interpreter and as unconstrained in "
                         "the analysis");
  }

  /// A name cannot be both a scalar variable and a request handle: the two
  /// namespaces are disjoint by construction, and a clash is almost always
  /// a confusion between the buffer and the request of an irecv.
  void reportNamespaceClashes() {
    std::set<std::string> ScalarNames = Defined;
    for (const auto &[Var, Loc] : Used)
      ScalarNames.insert(Var);
    std::set<std::string> Reported;
    for (const auto &[Req, Loc] : Requests)
      if (ScalarNames.count(Req) && Reported.insert(Req).second)
        error(Loc, "'" + Req + "' is used both as a request handle and as "
                               "a scalar variable; the namespaces are "
                               "disjoint");
  }

  SemaResult &Result;
  std::set<std::string> ProcNames;
  std::set<std::string> Defined;
  std::set<std::pair<std::string, SourceLoc>> Used;
  std::set<std::pair<std::string, SourceLoc>> Requests;
  unsigned Depth = 0;
  bool DepthErrorReported = false;
};

} // namespace

SemaResult csdf::checkProgram(const Program &Prog) {
  SemaResult Result;
  SemaImpl Impl(Result);
  Impl.run(Prog);
  return Result;
}
