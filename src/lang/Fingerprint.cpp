//===- lang/Fingerprint.cpp ------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Fingerprint.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <vector>

using namespace csdf;

namespace {

/// FNV-1a, 64 bit. Stable across platforms; not cryptographic — collisions
/// only cost a spurious cache hit *candidate*, and every adoption is
/// re-validated structurally by the engine before any state is reused.
class Hasher {
public:
  void bytes(const void *Data, size_t N) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < N; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ULL;
    }
  }
  void u8(std::uint8_t V) { bytes(&V, 1); }
  void u64(std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      u8(static_cast<std::uint8_t>(V >> (I * 8)));
  }
  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }
  /// Length-prefixed so "ab","c" and "a","bc" hash differently.
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  std::uint64_t done() const { return H; }

private:
  std::uint64_t H = 0xcbf29ce484222325ULL;
};

// Tag bytes: expressions 1..9, statements 32..63, structure markers 128+.
// Any change here invalidates every cached fingerprint, which is safe.
enum : std::uint8_t {
  TagIntLit = 1,
  TagVarRef = 2,
  TagUnary = 3,
  TagBinary = 4,
  TagInput = 5,
  TagNullExpr = 9,
  TagBodyBegin = 128,
  TagBodyEnd = 129,
};

void hashExpr(Hasher &H, const Expr *E) {
  if (!E) {
    H.u8(TagNullExpr);
    return;
  }
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    H.u8(TagIntLit);
    H.i64(cast<IntLitExpr>(E)->value());
    return;
  case Expr::Kind::VarRef:
    H.u8(TagVarRef);
    H.str(cast<VarRefExpr>(E)->name());
    return;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    H.u8(TagUnary);
    H.u8(static_cast<std::uint8_t>(U->op()));
    hashExpr(H, U->operand());
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    H.u8(TagBinary);
    H.u8(static_cast<std::uint8_t>(B->op()));
    hashExpr(H, B->lhs());
    hashExpr(H, B->rhs());
    return;
  }
  case Expr::Kind::Input:
    H.u8(TagInput);
    return;
  }
  csdf_unreachable("unhandled Expr::Kind");
}

void hashBody(Hasher &H, const StmtList &Body);

void hashStmt(Hasher &H, const Stmt *S) {
  H.u8(static_cast<std::uint8_t>(32 + static_cast<int>(S->kind())));
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    H.str(A->var());
    hashExpr(H, A->value());
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    hashExpr(H, If->cond());
    hashBody(H, If->thenBody());
    hashBody(H, If->elseBody());
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    hashExpr(H, W->cond());
    hashBody(H, W->body());
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    H.str(F->var());
    hashExpr(H, F->from());
    hashExpr(H, F->to());
    hashBody(H, F->body());
    return;
  }
  case Stmt::Kind::Send: {
    const auto *Send = cast<SendStmt>(S);
    hashExpr(H, Send->value());
    hashExpr(H, Send->dest());
    hashExpr(H, Send->tag());
    return;
  }
  case Stmt::Kind::Recv: {
    const auto *Recv = cast<RecvStmt>(S);
    H.str(Recv->var());
    hashExpr(H, Recv->src()); // Null for the `any` wildcard.
    hashExpr(H, Recv->tag());
    return;
  }
  case Stmt::Kind::Isend: {
    const auto *Send = cast<IsendStmt>(S);
    hashExpr(H, Send->value());
    hashExpr(H, Send->dest());
    hashExpr(H, Send->tag());
    H.str(Send->req());
    return;
  }
  case Stmt::Kind::Irecv: {
    const auto *Recv = cast<IrecvStmt>(S);
    H.str(Recv->var());
    hashExpr(H, Recv->src());
    hashExpr(H, Recv->tag());
    H.str(Recv->req());
    return;
  }
  case Stmt::Kind::Wait:
    H.str(cast<WaitStmt>(S)->req());
    return;
  case Stmt::Kind::Waitall:
    return;
  case Stmt::Kind::Print:
    hashExpr(H, cast<PrintStmt>(S)->value());
    return;
  case Stmt::Kind::Assume:
    hashExpr(H, cast<AssumeStmt>(S)->cond());
    return;
  case Stmt::Kind::Assert:
    hashExpr(H, cast<AssertStmt>(S)->cond());
    return;
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Call:
    // Call sites depend on the callee by *name*; the body of the callee
    // is folded in by ProcsWithDeps/Combined, not here.
    H.str(cast<CallStmt>(S)->callee());
    return;
  }
  csdf_unreachable("unhandled Stmt::Kind");
}

void hashBody(Hasher &H, const StmtList &Body) {
  H.u8(TagBodyBegin);
  for (const Stmt *S : Body)
    hashStmt(H, S);
  H.u8(TagBodyEnd);
}

void collectCallees(const StmtList &Body, std::set<std::string> &Out) {
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case Stmt::Kind::Call:
      Out.insert(cast<CallStmt>(S)->callee());
      break;
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      collectCallees(If->thenBody(), Out);
      collectCallees(If->elseBody(), Out);
      break;
    }
    case Stmt::Kind::While:
      collectCallees(cast<WhileStmt>(S)->body(), Out);
      break;
    case Stmt::Kind::For:
      collectCallees(cast<ForStmt>(S)->body(), Out);
      break;
    default:
      break;
    }
  }
}

/// Dependency-closed hash of proc \p Name: own hash + closed hashes of the
/// direct callees, sorted by name. The call graph is acyclic after sema;
/// the OnStack guard keeps unchecked cyclic ASTs from looping (a revisit
/// hashes as a fixed tag, which is stable and deterministic).
std::uint64_t closedHash(const std::string &Name,
                         const ProgramFingerprints &FP,
                         std::map<std::string, std::uint64_t> &Memo,
                         std::set<std::string> &OnStack) {
  if (auto It = Memo.find(Name); It != Memo.end())
    return It->second;
  Hasher H;
  auto OwnIt = FP.Procs.find(Name);
  H.u64(OwnIt != FP.Procs.end() ? OwnIt->second : 0);
  if (!OnStack.insert(Name).second)
    return H.done(); // Cycle on an unchecked AST; stay deterministic.
  if (auto DepIt = FP.Deps.find(Name); DepIt != FP.Deps.end())
    for (const std::string &Callee : DepIt->second) { // std::set: sorted.
      H.str(Callee);
      H.u64(closedHash(Callee, FP, Memo, OnStack));
    }
  OnStack.erase(Name);
  Memo[Name] = H.done();
  return H.done();
}

} // namespace

std::uint64_t csdf::fingerprintBody(const StmtList &Body) {
  Hasher H;
  hashBody(H, Body);
  return H.done();
}

ProgramFingerprints csdf::fingerprintProgram(const Program &Prog) {
  ProgramFingerprints FP;
  FP.Main = fingerprintBody(Prog.body());
  collectCallees(Prog.body(), FP.Deps[""]);
  for (const ProcDecl &P : Prog.procs()) {
    FP.Procs[P.Name] = fingerprintBody(P.Body);
    collectCallees(P.Body, FP.Deps[P.Name]);
  }
  std::map<std::string, std::uint64_t> Memo;
  for (const ProcDecl &P : Prog.procs()) {
    std::set<std::string> OnStack;
    FP.ProcsWithDeps[P.Name] = closedHash(P.Name, FP, Memo, OnStack);
  }
  // Combined: main + every proc sorted by name, so reordering unrelated
  // declarations never invalidates the program-level key.
  Hasher H;
  H.u64(FP.Main);
  for (const auto &[Name, Hash] : FP.Procs) { // std::map: name-sorted.
    H.str(Name);
    H.u64(Hash);
  }
  FP.Combined = H.done();
  return FP;
}

std::string csdf::fingerprintHex(std::uint64_t H) {
  static const char *Digits = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[static_cast<size_t>(I)] = Digits[H & 0xF];
    H >>= 4;
  }
  return S;
}
