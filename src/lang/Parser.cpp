//===- lang/Parser.cpp -----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Budget.h"

#include <cstdio>
#include <cstdlib>

using namespace csdf;

namespace {

/// Implements the recursive descent. On error it records a diagnostic and
/// synchronizes to the next statement boundary so multiple errors can be
/// reported from one run.
class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, ParseResult &Result,
             unsigned MaxDepth)
      : Tokens(std::move(Tokens)), Result(Result), MaxDepth(MaxDepth) {}

  void run() {
    // Top level: interleaved proc declarations and main-body statements.
    // Procs nest nowhere else; their declaration order is irrelevant.
    StmtList Body;
    while (cur().isNot(TokenKind::Eof) && cur().isNot(TokenKind::Error)) {
      if (cur().is(TokenKind::KwProc)) {
        parseProcDecl();
        continue;
      }
      size_t Before = Pos;
      StmtList Piece = parseStmtsUntil({TokenKind::KwProc});
      for (const Stmt *S : Piece)
        Body.push_back(S);
      if (Pos == Before && cur().isNot(TokenKind::KwProc))
        take(); // No progress; bail out of a stuck position.
    }
    if (cur().is(TokenKind::Error) && !LexErrorReported)
      error(cur().Text);
    Result.Prog.setBody(std::move(Body));
  }

private:
  const Token &cur() const { return Tokens[Pos]; }

  const Token &take() {
    const Token &Tok = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return Tok;
  }

  bool consumeIf(TokenKind Kind) {
    if (cur().isNot(Kind))
      return false;
    take();
    return true;
  }

  /// Records a diagnostic at the current token.
  void error(const std::string &Msg) {
    Result.Diagnostics.push_back({cur().Loc, Msg});
  }

  /// Counts one level of statement/expression nesting; reports a single
  /// diagnostic (deep inputs would otherwise drown it in follow-on
  /// errors) when the configured limit is exceeded.
  struct DepthGuard {
    ParserImpl &P;
    explicit DepthGuard(ParserImpl &P) : P(P) { ++P.Depth; }
    ~DepthGuard() { --P.Depth; }
    /// True when parsing may recurse further.
    bool ok() {
      if (P.Depth <= P.MaxDepth)
        return true;
      if (!P.DepthErrorReported) {
        P.DepthErrorReported = true;
        P.error("nesting depth exceeds the limit of " +
                std::to_string(P.MaxDepth));
      }
      return false;
    }
  };

  /// Consumes a token of kind \p Kind or reports an error.
  bool expect(TokenKind Kind) {
    if (consumeIf(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + " but found " +
          tokenKindName(cur().Kind));
    return false;
  }

  /// Skips tokens until a likely statement start, to recover after errors.
  /// The token stream ends at the first Error token (lexAll stops there),
  /// so Error must terminate the scan like Eof — take() cannot advance
  /// past the final token and would otherwise spin forever.
  void synchronize() {
    while (cur().isNot(TokenKind::Eof) && cur().isNot(TokenKind::Error)) {
      if (consumeIf(TokenKind::Semi))
        return;
      switch (cur().Kind) {
      case TokenKind::KwIf:
      case TokenKind::KwWhile:
      case TokenKind::KwFor:
      case TokenKind::KwSend:
      case TokenKind::KwRecv:
      case TokenKind::KwIsend:
      case TokenKind::KwIrecv:
      case TokenKind::KwWait:
      case TokenKind::KwWaitall:
      case TokenKind::KwPrint:
      case TokenKind::KwEnd:
      case TokenKind::KwElse:
      case TokenKind::KwElif:
      case TokenKind::KwProc:
      case TokenKind::KwCall:
        return;
      default:
        take();
      }
    }
  }

  bool atStmtListEnd(const std::vector<TokenKind> &Terminators) const {
    for (TokenKind Kind : Terminators)
      if (cur().is(Kind))
        return true;
    return cur().is(TokenKind::Eof) || cur().is(TokenKind::Error);
  }

  StmtList parseStmtsUntil(const std::vector<TokenKind> &Terminators) {
    StmtList Stmts;
    while (!atStmtListEnd(Terminators)) {
      size_t Before = Pos;
      if (const Stmt *S = parseStmt())
        Stmts.push_back(S);
      else
        synchronize();
      if (Pos == Before) {
        // No progress; bail out to avoid an infinite loop.
        take();
      }
    }
    if (cur().is(TokenKind::Error)) {
      error(cur().Text);
      LexErrorReported = true;
    }
    return Stmts;
  }

  /// Parses `proc name do ... end` after lookahead saw `proc`.
  void parseProcDecl() {
    SourceLoc Loc = cur().Loc;
    take(); // proc
    if (cur().isNot(TokenKind::Identifier)) {
      error("expected procedure name after 'proc'");
      synchronize();
      return;
    }
    std::string Name = take().Text;
    if (!expect(TokenKind::KwDo)) {
      synchronize();
      return;
    }
    StmtList Body = parseStmtsUntil({TokenKind::KwEnd});
    if (!expect(TokenKind::KwEnd))
      return;
    Result.Prog.addProc(ProcDecl{std::move(Name), std::move(Body), Loc});
  }

  const Stmt *parseStmt() {
    // Under an analysis session a budget may be active; huge inputs must
    // honor the wall-clock deadline during parsing too.
    budgetCheckpoint();
    DepthGuard Guard(*this);
    if (!Guard.ok())
      return nullptr;
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::Identifier: {
      std::string Var = take().Text;
      if (!expect(TokenKind::Assign))
        return nullptr;
      const Expr *Value = parseExpr();
      if (!Value || !expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<AssignStmt>(Var, Value, Loc);
    }
    case TokenKind::KwIf:
      take();
      return parseIfTail(Loc);
    case TokenKind::KwWhile: {
      take();
      const Expr *Cond = parseExpr();
      if (!Cond || !expect(TokenKind::KwDo))
        return nullptr;
      StmtList Body = parseStmtsUntil({TokenKind::KwEnd});
      if (!expect(TokenKind::KwEnd))
        return nullptr;
      return Result.Prog.makeStmt<WhileStmt>(Cond, std::move(Body), Loc);
    }
    case TokenKind::KwFor: {
      take();
      if (cur().isNot(TokenKind::Identifier)) {
        error("expected loop variable after 'for'");
        return nullptr;
      }
      std::string Var = take().Text;
      if (!expect(TokenKind::Assign))
        return nullptr;
      const Expr *From = parseExpr();
      if (!From || !expect(TokenKind::KwTo))
        return nullptr;
      const Expr *To = parseExpr();
      if (!To || !expect(TokenKind::KwDo))
        return nullptr;
      StmtList Body = parseStmtsUntil({TokenKind::KwEnd});
      if (!expect(TokenKind::KwEnd))
        return nullptr;
      return Result.Prog.makeStmt<ForStmt>(Var, From, To, std::move(Body),
                                           Loc);
    }
    case TokenKind::KwSend:
    case TokenKind::KwIsend: {
      bool NonBlocking = cur().is(TokenKind::KwIsend);
      take();
      const Expr *Value = parseExpr();
      if (!Value || !expect(TokenKind::Arrow))
        return nullptr;
      const Expr *Dest = parseExpr();
      if (!Dest)
        return nullptr;
      const Expr *Tag = nullptr;
      if (consumeIf(TokenKind::KwTag)) {
        Tag = parseExpr();
        if (!Tag)
          return nullptr;
      }
      if (!NonBlocking) {
        if (!expect(TokenKind::Semi))
          return nullptr;
        return Result.Prog.makeStmt<SendStmt>(Value, Dest, Tag, Loc);
      }
      std::string Req;
      if (!parseReqClause("isend", Req) || !expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<IsendStmt>(Value, Dest, Tag,
                                             std::move(Req), Loc);
    }
    case TokenKind::KwRecv:
    case TokenKind::KwIrecv: {
      bool NonBlocking = cur().is(TokenKind::KwIrecv);
      take();
      if (cur().isNot(TokenKind::Identifier)) {
        error(NonBlocking ? "expected variable after 'irecv'"
                          : "expected variable after 'recv'");
        return nullptr;
      }
      std::string Var = take().Text;
      if (!expect(TokenKind::BackArrow))
        return nullptr;
      // `any` is the wildcard source: match a message from any sender.
      const Expr *Src = nullptr;
      if (!consumeIf(TokenKind::KwAny)) {
        Src = parseExpr();
        if (!Src)
          return nullptr;
      }
      const Expr *Tag = nullptr;
      if (consumeIf(TokenKind::KwTag)) {
        Tag = parseExpr();
        if (!Tag)
          return nullptr;
      }
      if (!NonBlocking) {
        if (!expect(TokenKind::Semi))
          return nullptr;
        return Result.Prog.makeStmt<RecvStmt>(Var, Src, Tag, Loc);
      }
      std::string Req;
      if (!parseReqClause("irecv", Req) || !expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<IrecvStmt>(Var, Src, Tag, std::move(Req),
                                             Loc);
    }
    case TokenKind::KwWait: {
      take();
      if (cur().isNot(TokenKind::Identifier)) {
        error("expected request name after 'wait'");
        return nullptr;
      }
      std::string Req = take().Text;
      if (!expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<WaitStmt>(std::move(Req), Loc);
    }
    case TokenKind::KwWaitall: {
      take();
      if (!expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<WaitallStmt>(Loc);
    }
    case TokenKind::KwPrint: {
      take();
      const Expr *Value = parseExpr();
      if (!Value || !expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<PrintStmt>(Value, Loc);
    }
    case TokenKind::KwAssume: {
      take();
      const Expr *Cond = parseExpr();
      if (!Cond || !expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<AssumeStmt>(Cond, Loc);
    }
    case TokenKind::KwAssert: {
      take();
      const Expr *Cond = parseExpr();
      if (!Cond || !expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<AssertStmt>(Cond, Loc);
    }
    case TokenKind::KwSkip: {
      take();
      if (!expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<SkipStmt>(Loc);
    }
    case TokenKind::KwCall: {
      take();
      if (cur().isNot(TokenKind::Identifier)) {
        error("expected procedure name after 'call'");
        return nullptr;
      }
      std::string Callee = take().Text;
      if (!expect(TokenKind::Semi))
        return nullptr;
      return Result.Prog.makeStmt<CallStmt>(std::move(Callee), Loc);
    }
    case TokenKind::KwProc:
      error("'proc' declarations are only allowed at the top level");
      return nullptr;
    default:
      error(std::string("expected statement but found ") +
            tokenKindName(cur().Kind));
      return nullptr;
    }
  }

  /// Parses the mandatory `req <name>` clause of an isend/irecv.
  bool parseReqClause(const char *Form, std::string &Req) {
    if (!consumeIf(TokenKind::KwReq)) {
      error(std::string("'") + Form + "' requires a 'req <name>' clause");
      return false;
    }
    if (cur().isNot(TokenKind::Identifier)) {
      error("expected request name after 'req'");
      return false;
    }
    Req = take().Text;
    return true;
  }

  /// Parses the remainder of an if statement after 'if' was consumed. Elif
  /// chains become nested IfStmts in the else position.
  const Stmt *parseIfTail(SourceLoc Loc) {
    DepthGuard Guard(*this);
    if (!Guard.ok())
      return nullptr;
    const Expr *Cond = parseExpr();
    if (!Cond || !expect(TokenKind::KwThen))
      return nullptr;
    StmtList Then = parseStmtsUntil(
        {TokenKind::KwElif, TokenKind::KwElse, TokenKind::KwEnd});
    StmtList Else;
    if (cur().is(TokenKind::KwElif)) {
      SourceLoc ElifLoc = cur().Loc;
      take();
      const Stmt *Nested = parseIfTail(ElifLoc);
      if (!Nested)
        return nullptr;
      Else.push_back(Nested);
      return Result.Prog.makeStmt<IfStmt>(Cond, std::move(Then),
                                          std::move(Else), Loc);
    }
    if (consumeIf(TokenKind::KwElse))
      Else = parseStmtsUntil({TokenKind::KwEnd});
    if (!expect(TokenKind::KwEnd))
      return nullptr;
    return Result.Prog.makeStmt<IfStmt>(Cond, std::move(Then), std::move(Else),
                                        Loc);
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  const Expr *parseExpr() {
    DepthGuard Guard(*this);
    if (!Guard.ok())
      return nullptr;
    return parseOr();
  }

  const Expr *parseOr() {
    const Expr *LHS = parseAnd();
    while (LHS && cur().is(TokenKind::KwOr)) {
      SourceLoc Loc = take().Loc;
      const Expr *RHS = parseAnd();
      if (!RHS)
        return nullptr;
      LHS = Result.Prog.makeExpr<BinaryExpr>(BinaryOp::Or, LHS, RHS, Loc);
    }
    return LHS;
  }

  const Expr *parseAnd() {
    const Expr *LHS = parseNot();
    while (LHS && cur().is(TokenKind::KwAnd)) {
      SourceLoc Loc = take().Loc;
      const Expr *RHS = parseNot();
      if (!RHS)
        return nullptr;
      LHS = Result.Prog.makeExpr<BinaryExpr>(BinaryOp::And, LHS, RHS, Loc);
    }
    return LHS;
  }

  const Expr *parseNot() {
    if (cur().is(TokenKind::KwNot)) {
      DepthGuard Guard(*this);
      if (!Guard.ok())
        return nullptr;
      SourceLoc Loc = take().Loc;
      const Expr *Operand = parseNot();
      if (!Operand)
        return nullptr;
      return Result.Prog.makeExpr<UnaryExpr>(UnaryOp::Not, Operand, Loc);
    }
    return parseRel();
  }

  const Expr *parseRel() {
    const Expr *LHS = parseAdd();
    if (!LHS)
      return nullptr;
    BinaryOp Op;
    switch (cur().Kind) {
    case TokenKind::EqEq:
      Op = BinaryOp::Eq;
      break;
    case TokenKind::NotEq:
      Op = BinaryOp::Ne;
      break;
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEq:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::GreaterEq:
      Op = BinaryOp::Ge;
      break;
    default:
      return LHS;
    }
    SourceLoc Loc = take().Loc;
    const Expr *RHS = parseAdd();
    if (!RHS)
      return nullptr;
    return Result.Prog.makeExpr<BinaryExpr>(Op, LHS, RHS, Loc);
  }

  const Expr *parseAdd() {
    const Expr *LHS = parseMul();
    while (LHS &&
           (cur().is(TokenKind::Plus) || cur().is(TokenKind::Minus))) {
      BinaryOp Op =
          cur().is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      SourceLoc Loc = take().Loc;
      const Expr *RHS = parseMul();
      if (!RHS)
        return nullptr;
      LHS = Result.Prog.makeExpr<BinaryExpr>(Op, LHS, RHS, Loc);
    }
    return LHS;
  }

  const Expr *parseMul() {
    const Expr *LHS = parseUnary();
    while (LHS && (cur().is(TokenKind::Star) || cur().is(TokenKind::Slash) ||
                   cur().is(TokenKind::Percent))) {
      BinaryOp Op = cur().is(TokenKind::Star)    ? BinaryOp::Mul
                    : cur().is(TokenKind::Slash) ? BinaryOp::Div
                                                 : BinaryOp::Mod;
      SourceLoc Loc = take().Loc;
      const Expr *RHS = parseUnary();
      if (!RHS)
        return nullptr;
      LHS = Result.Prog.makeExpr<BinaryExpr>(Op, LHS, RHS, Loc);
    }
    return LHS;
  }

  const Expr *parseUnary() {
    if (cur().is(TokenKind::Minus)) {
      DepthGuard Guard(*this);
      if (!Guard.ok())
        return nullptr;
      SourceLoc Loc = take().Loc;
      const Expr *Operand = parseUnary();
      if (!Operand)
        return nullptr;
      return Result.Prog.makeExpr<UnaryExpr>(UnaryOp::Neg, Operand, Loc);
    }
    return parsePrimary();
  }

  const Expr *parsePrimary() {
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::Integer:
      return Result.Prog.makeExpr<IntLitExpr>(take().IntValue, Loc);
    case TokenKind::Identifier:
      return Result.Prog.makeExpr<VarRefExpr>(take().Text, Loc);
    case TokenKind::KwTrue:
      take();
      return Result.Prog.makeExpr<IntLitExpr>(1, Loc);
    case TokenKind::KwFalse:
      take();
      return Result.Prog.makeExpr<IntLitExpr>(0, Loc);
    case TokenKind::KwInput:
      take();
      if (!expect(TokenKind::LParen) || !expect(TokenKind::RParen))
        return nullptr;
      return Result.Prog.makeExpr<InputExpr>(Loc);
    case TokenKind::LParen: {
      take();
      const Expr *Inner = parseExpr();
      if (!Inner || !expect(TokenKind::RParen))
        return nullptr;
      return Inner;
    }
    default:
      error(std::string("expected expression but found ") +
            tokenKindName(cur().Kind));
      return nullptr;
    }
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ParseResult &Result;
  unsigned MaxDepth;
  unsigned Depth = 0;
  bool DepthErrorReported = false;
  bool LexErrorReported = false;
};

} // namespace

ParseResult csdf::parseProgram(const std::string &Source, unsigned MaxDepth) {
  ParseResult Result;
  Lexer Lex(Source);
  ParserImpl Impl(Lex.lexAll(), Result, MaxDepth);
  Impl.run();
  return Result;
}

Program csdf::parseProgramOrDie(const std::string &Source) {
  ParseResult Result = parseProgram(Source);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "MPL parse failed:\n");
    for (const ParseDiagnostic &Diag : Result.Diagnostics)
      std::fprintf(stderr, "  %s\n", Diag.str().c_str());
    std::abort();
  }
  return std::move(Result.Prog);
}
