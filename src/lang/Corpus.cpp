//===- lang/Corpus.cpp -----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Corpus.h"

using namespace csdf;

std::string corpus::figure2Exchange() {
  return R"mpl(
# Figure 2: two-process value exchange.
if id == 0 then
  x = 5;
  send x -> 1;
  recv y <- 1;
  print y;
elif id == 1 then
  recv y <- 0;
  send y -> 0;
  print y;
end
)mpl";
}

std::string corpus::gatherToRoot() {
  return R"mpl(
# Figure 1 (mdcask), phase 1: gather to root.
if id == 0 then
  for i = 1 to np - 1 do
    recv y <- i;
  end
else
  x = id * 10;
  send x -> 0;
end
)mpl";
}

std::string corpus::fanOutBroadcast() {
  return R"mpl(
# Section IX evaluation workload: fan-out broadcast from process 0.
if id == 0 then
  x = 42;
  for i = 1 to np - 1 do
    send x -> i;
  end
else
  recv y <- 0;
end
)mpl";
}

std::string corpus::exchangeWithRoot() {
  return R"mpl(
# Figures 1/5 (mdcask), phase 2: exchange with root.
if id == 0 then
  x = 7;
  for i = 1 to np - 1 do
    send x -> i;
    recv y <- i;
  end
else
  recv y <- 0;
  send y -> 0;
end
)mpl";
}

std::string corpus::nascgTranspose() {
  return R"mpl(
# Figure 6 (NAS-CG): transpose exchange on an nrows x ncols process grid.
assume np == ncols * nrows;
x = id + 100;
if ncols == nrows then
  send x -> (id % nrows) * nrows + id / nrows;
  recv y <- (id % nrows) * nrows + id / nrows;
elif ncols == nrows * 2 then
  send x -> 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2;
  recv y <- 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2;
end
)mpl";
}

std::string corpus::transposeSquare() {
  return R"mpl(
# Figure 6, square branch: partner = transpose position in the grid.
assume np == nrows * nrows;
x = id + 100;
send x -> (id % nrows) * nrows + id / nrows;
recv y <- (id % nrows) * nrows + id / nrows;
)mpl";
}

std::string corpus::transposeRect() {
  return R"mpl(
# Figure 6, rectangular branch (ncols == 2 * nrows): processes pair up in
# column pairs; the pair grid is transposed while parity is preserved.
assume ncols == nrows * 2;
assume np == ncols * nrows;
x = id + 100;
send x -> 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2;
recv y <- 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2;
)mpl";
}

std::string corpus::neighborShift() {
  return R"mpl(
# Figure 7: shift along one mesh dimension (no wraparound).
x = id;
if id == 0 then
  send x -> id + 1;
elif id == np - 1 then
  recv y <- id - 1;
else
  recv y <- id - 1;
  send x -> id + 1;
end
)mpl";
}

std::string corpus::neighborShiftLeft() {
  return R"mpl(
# Mirror of Figure 7: shift data toward lower ranks.
x = id;
if id == 0 then
  recv y <- id + 1;
elif id == np - 1 then
  send x -> id - 1;
else
  recv y <- id + 1;
  send x -> id - 1;
end
)mpl";
}

std::string corpus::neighborExchange1D() {
  return R"mpl(
# 1-D nearest-neighbor exchange: shift right then shift left.
x = id;
if id == 0 then
  send x -> id + 1;
elif id == np - 1 then
  recv y <- id - 1;
else
  recv y <- id - 1;
  send x -> id + 1;
end
if id == 0 then
  recv z <- id + 1;
elif id == np - 1 then
  send x -> id - 1;
else
  recv z <- id + 1;
  send x -> id - 1;
end
)mpl";
}

std::string corpus::pairwiseExchange() {
  return R"mpl(
# Even/odd pairwise exchange: 2i <-> 2i+1.
assume np == 2 * half;
x = id;
if id % 2 == 0 then
  send x -> id + 1;
  recv y <- id + 1;
else
  recv y <- id - 1;
  send x -> id - 1;
end
)mpl";
}

std::string corpus::vshift2d() {
  return R"mpl(
# 2-D mesh (nrows x ncols, row-major), vertical shift one row down.
assume np == nrows * ncols;
x = id;
if id < ncols then
  send x -> id + ncols;
elif id >= np - ncols then
  recv y <- id - ncols;
else
  recv y <- id - ncols;
  send x -> id + ncols;
end
)mpl";
}

std::string corpus::broadcastThenGather() {
  return R"mpl(
# Broadcast from root, then gather back to root.
if id == 0 then
  x = 9;
  for i = 1 to np - 1 do
    send x -> i;
  end
  for j = 1 to np - 1 do
    recv r <- j;
  end
else
  recv y <- 0;
  w = y + id;
  send w -> 0;
end
)mpl";
}

std::string corpus::messageLeak() {
  return R"mpl(
# Bug: the second send from 0 to 1 is never received.
if id == 0 then
  x = 1;
  send x -> 1;
  send x -> 1;
elif id == 1 then
  recv y <- 0;
end
)mpl";
}

std::string corpus::headToHeadDeadlock() {
  return R"mpl(
# Bug: 0 and 1 both block on receives; no send can ever match.
if id == 0 then
  recv y <- 1;
  send y -> 1;
elif id == 1 then
  recv y <- 0;
  send y -> 0;
end
)mpl";
}

std::string corpus::tagMismatch() {
  return R"mpl(
# Bug: the tags differ, so the message never matches the receive.
if id == 0 then
  x = 3;
  send x -> 1 tag 1;
elif id == 1 then
  recv y <- 0 tag 2;
end
)mpl";
}

std::string corpus::ringShift() {
  return R"mpl(
# Ring with wraparound: outside the supported pattern class (Section X).
x = id;
send x -> (id + 1) % np;
recv y <- (id + np - 1) % np;
)mpl";
}

std::string corpus::noComm() {
  return R"mpl(
# Purely sequential control flow; no communication.
x = 0;
for i = 1 to 4 do
  x = x + i;
end
if x > 5 then
  print x;
else
  print 0 - x;
end
)mpl";
}

std::string corpus::nonblockingPing() {
  return R"mpl(
# Non-blocking ping: isend/irecv completed by waits on both sides.
if id == 0 then
  isend 7 -> 1 req s;
  wait s;
else
  if id == 1 then
    irecv x <- 0 req r;
    wait r;
    print x;
  end
end
)mpl";
}

std::string corpus::isendFanout() {
  return R"mpl(
# Rank 0 posts two isends and completes both with one waitall.
if id == 0 then
  isend 10 -> 1 req s1;
  isend 20 -> 2 req s2;
  waitall;
else
  if id < 3 then
    recv v <- 0;
    print v;
  end
end
)mpl";
}

std::string corpus::wildcardUniqueSender() {
  return R"mpl(
# A wildcard receive whose only statically eligible sender is rank 1.
if id == 0 then
  recv x <- any;
  print x;
else
  if id == 1 then
    send 5 -> 0;
  end
end
)mpl";
}

std::string corpus::bufferRace() {
  return R"mpl(
# BUG: the irecv buffer is read before the completing wait.
if id == 0 then
  irecv x <- 1 req r;
  print x;
  wait r;
else
  if id == 1 then
    send 1 -> 0;
  end
end
)mpl";
}

std::string corpus::requestLeak() {
  return R"mpl(
# BUG: the irecv request is never waited on.
if id == 0 then
  irecv x <- 1 req r;
else
  if id == 1 then
    send 1 -> 0;
  end
end
)mpl";
}

std::string corpus::wildcardRace() {
  return R"mpl(
# BUG: ranks 1 and 2 race into rank 0's wildcard receives.
if id == 0 then
  recv x <- any;
  recv y <- any;
  print x + y;
else
  if id < 3 then
    send id -> 0;
  end
end
)mpl";
}

std::vector<corpus::NamedProgram> corpus::allPatterns() {
  return {
      {"figure2-exchange", figure2Exchange()},
      {"gather-to-root", gatherToRoot()},
      {"fan-out-broadcast", fanOutBroadcast()},
      {"exchange-with-root", exchangeWithRoot()},
      {"transpose-square", transposeSquare()},
      {"transpose-rect", transposeRect()},
      {"nascg-transpose", nascgTranspose()},
      {"neighbor-shift", neighborShift()},
      {"neighbor-shift-left", neighborShiftLeft()},
      {"neighbor-exchange-1d", neighborExchange1D()},
      {"pairwise-exchange", pairwiseExchange()},
      {"vshift-2d", vshift2d()},
      {"broadcast-then-gather", broadcastThenGather()},
      {"no-comm", noComm()},
      {"nonblocking-ping", nonblockingPing()},
      {"isend-fanout", isendFanout()},
      {"wildcard-unique-sender", wildcardUniqueSender()},
  };
}
