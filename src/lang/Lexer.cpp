//===- lang/Lexer.cpp ------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cassert>
#include <cctype>
#include <map>

using namespace csdf;

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::peek() const { return atEnd() ? '\0' : Source[Pos]; }

char Lexer::peekAhead() const {
  return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::atEnd() const { return Pos >= Source.size(); }

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == '#') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(C)))
      return;
    advance();
  }
}

Token Lexer::makeToken(TokenKind Kind) const {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = TokenStart;
  return Tok;
}

Token Lexer::makeError(const std::string &Msg) const {
  Token Tok = makeToken(TokenKind::Error);
  Tok.Text = Msg;
  return Tok;
}

Token Lexer::lexNumber() {
  std::int64_t Value = 0;
  bool Overflow = false;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
    int Digit = advance() - '0';
    if (Value > (INT64_MAX - Digit) / 10)
      Overflow = true;
    else
      Value = Value * 10 + Digit;
  }
  if (Overflow)
    return makeError("integer literal too large");
  Token Tok = makeToken(TokenKind::Integer);
  Tok.IntValue = Value;
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword() {
  static const std::map<std::string, TokenKind> Keywords = {
      {"if", TokenKind::KwIf},         {"then", TokenKind::KwThen},
      {"elif", TokenKind::KwElif},     {"else", TokenKind::KwElse},
      {"end", TokenKind::KwEnd},       {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},         {"for", TokenKind::KwFor},
      {"to", TokenKind::KwTo},         {"send", TokenKind::KwSend},
      {"recv", TokenKind::KwRecv},     {"print", TokenKind::KwPrint},
      {"assume", TokenKind::KwAssume}, {"assert", TokenKind::KwAssert},
      {"skip", TokenKind::KwSkip},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},         {"not", TokenKind::KwNot},
      {"input", TokenKind::KwInput},   {"tag", TokenKind::KwTag},
      {"isend", TokenKind::KwIsend},   {"irecv", TokenKind::KwIrecv},
      {"wait", TokenKind::KwWait},     {"waitall", TokenKind::KwWaitall},
      {"req", TokenKind::KwReq},       {"any", TokenKind::KwAny},
      {"proc", TokenKind::KwProc},     {"call", TokenKind::KwCall},
  };

  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();

  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second);

  Token Tok = makeToken(TokenKind::Identifier);
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::next() {
  skipTrivia();
  TokenStart = {Line, Col};
  if (atEnd())
    return makeToken(TokenKind::Eof);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case ';':
    return makeToken(TokenKind::Semi);
  case ',':
    return makeToken(TokenKind::Comma);
  case '+':
    return makeToken(TokenKind::Plus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '%':
    return makeToken(TokenKind::Percent);
  case '-':
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow);
    }
    return makeToken(TokenKind::Minus);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqEq);
    }
    return makeToken(TokenKind::Assign);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEq);
    }
    return makeError("expected '=' after '!'");
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEq);
    }
    if (peek() == '-') {
      advance();
      return makeToken(TokenKind::BackArrow);
    }
    return makeToken(TokenKind::Less);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEq);
    }
    return makeToken(TokenKind::Greater);
  default:
    return makeError(std::string("unexpected character '") + C + "'");
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token Tok = next();
    Tokens.push_back(Tok);
    if (Tok.is(TokenKind::Eof) || Tok.is(TokenKind::Error))
      return Tokens;
  }
}
