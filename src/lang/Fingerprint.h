//===- lang/Fingerprint.h - Canonical AST content fingerprints -------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content fingerprints over the canonical AST, computed after sema. The
/// hash covers structure only — statement/expression kinds, operators,
/// variable and request names, literal values, call targets — and never
/// source locations, so it is insensitive to whitespace, comments, and
/// reformatting. Per-procedure hashes cover one body with call sites
/// hashed by callee *name*; the dependency-closed hash folds in the
/// hashes of every (transitively) called procedure, and the combined
/// program hash is invariant under reordering of procedure declarations.
///
/// These fingerprints key the incremental `PipelineCache` (see
/// api/Csdf.h): equal combined fingerprints mean the edit was
/// whitespace/comment/decl-order only and the prior engine fixpoint
/// replays in full; per-procedure deltas tell the cache which dependency
/// chains were invalidated.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_LANG_FINGERPRINT_H
#define CSDF_LANG_FINGERPRINT_H

#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace csdf {

/// Canonical content fingerprints for one program.
struct ProgramFingerprints {
  /// Hash of the main body (call statements hashed by callee name).
  std::uint64_t Main = 0;
  /// Whole-program hash: main + every procedure, sorted by name. Invariant
  /// under declaration reordering; changes when any body changes.
  std::uint64_t Combined = 0;
  /// Per-procedure hash of the own body only.
  std::map<std::string, std::uint64_t> Procs;
  /// Per-procedure hash closed over (transitive) callees: changes when the
  /// procedure or anything it calls changes.
  std::map<std::string, std::uint64_t> ProcsWithDeps;
  /// Direct callees per procedure ("" keys the main body).
  std::map<std::string, std::set<std::string>> Deps;
};

/// Computes canonical content fingerprints for \p Prog.
ProgramFingerprints fingerprintProgram(const Program &Prog);

/// Hashes one statement list (exposed for tests).
std::uint64_t fingerprintBody(const StmtList &Body);

/// 16-digit lowercase hex rendering of a fingerprint.
std::string fingerprintHex(std::uint64_t H);

} // namespace csdf

#endif // CSDF_LANG_FINGERPRINT_H
