//===- lang/AstPrinter.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "lang/ExprOps.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <sstream>

using namespace csdf;

namespace {

void printStmt(const Stmt *S, unsigned Indent, std::ostringstream &OS);

void printBody(const StmtList &Body, unsigned Indent, std::ostringstream &OS) {
  for (const Stmt *S : Body)
    printStmt(S, Indent, OS);
}

std::string pad(unsigned Indent) { return std::string(Indent * 2, ' '); }

void printStmt(const Stmt *S, unsigned Indent, std::ostringstream &OS) {
  OS << pad(Indent);
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << A->var() << " = " << exprToString(A->value()) << ";\n";
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    OS << "if " << exprToString(If->cond()) << " then\n";
    printBody(If->thenBody(), Indent + 1, OS);
    if (!If->elseBody().empty()) {
      OS << pad(Indent) << "else\n";
      printBody(If->elseBody(), Indent + 1, OS);
    }
    OS << pad(Indent) << "end\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    OS << "while " << exprToString(W->cond()) << " do\n";
    printBody(W->body(), Indent + 1, OS);
    OS << pad(Indent) << "end\n";
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    OS << "for " << F->var() << " = " << exprToString(F->from()) << " to "
       << exprToString(F->to()) << " do\n";
    printBody(F->body(), Indent + 1, OS);
    OS << pad(Indent) << "end\n";
    return;
  }
  case Stmt::Kind::Send: {
    const auto *Send = cast<SendStmt>(S);
    OS << "send " << exprToString(Send->value()) << " -> "
       << exprToString(Send->dest());
    if (Send->tag())
      OS << " tag " << exprToString(Send->tag());
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Recv: {
    const auto *Recv = cast<RecvStmt>(S);
    OS << "recv " << Recv->var() << " <- "
       << (Recv->isWildcard() ? "any" : exprToString(Recv->src()));
    if (Recv->tag())
      OS << " tag " << exprToString(Recv->tag());
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Isend: {
    const auto *Send = cast<IsendStmt>(S);
    OS << "isend " << exprToString(Send->value()) << " -> "
       << exprToString(Send->dest());
    if (Send->tag())
      OS << " tag " << exprToString(Send->tag());
    OS << " req " << Send->req() << ";\n";
    return;
  }
  case Stmt::Kind::Irecv: {
    const auto *Recv = cast<IrecvStmt>(S);
    OS << "irecv " << Recv->var() << " <- "
       << (Recv->isWildcard() ? "any" : exprToString(Recv->src()));
    if (Recv->tag())
      OS << " tag " << exprToString(Recv->tag());
    OS << " req " << Recv->req() << ";\n";
    return;
  }
  case Stmt::Kind::Wait:
    OS << "wait " << cast<WaitStmt>(S)->req() << ";\n";
    return;
  case Stmt::Kind::Waitall:
    OS << "waitall;\n";
    return;
  case Stmt::Kind::Print:
    OS << "print " << exprToString(cast<PrintStmt>(S)->value()) << ";\n";
    return;
  case Stmt::Kind::Assume:
    OS << "assume " << exprToString(cast<AssumeStmt>(S)->cond()) << ";\n";
    return;
  case Stmt::Kind::Assert:
    OS << "assert " << exprToString(cast<AssertStmt>(S)->cond()) << ";\n";
    return;
  case Stmt::Kind::Skip:
    OS << "skip;\n";
    return;
  case Stmt::Kind::Call:
    OS << "call " << cast<CallStmt>(S)->callee() << ";\n";
    return;
  }
  csdf_unreachable("unhandled Stmt::Kind");
}

} // namespace

std::string csdf::stmtToString(const Stmt *S, unsigned Indent) {
  std::ostringstream OS;
  printStmt(S, Indent, OS);
  return OS.str();
}

std::string csdf::programToString(const Program &Prog) {
  std::ostringstream OS;
  for (const ProcDecl &P : Prog.procs()) {
    OS << "proc " << P.Name << " do\n";
    printBody(P.Body, 1, OS);
    OS << "end\n";
  }
  printBody(Prog.body(), 0, OS);
  return OS.str();
}
