//===- api/Csdf.cpp -------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "api/Csdf.h"

#include "analysis/Lint.h"
#include "api/Pipeline.h"
#include "numeric/ConstraintGraph.h"
#include "numeric/SymbolTable.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"
#include "support/Version.h"

#include <algorithm>
#include <chrono>
#include <future>

using namespace csdf;
using namespace csdf::api;

namespace {

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Resolves a request's source text per the facade contract: inline
/// Source wins; otherwise the file at Path is read. Returns false with
/// the usage-error text set.
bool resolveSource(const std::string &Path,
                   const std::optional<std::string> &Inline,
                   std::string &Source, std::string &Error,
                   bool EmptyIsError) {
  if (Inline) {
    Source = *Inline;
    if (Source.empty() && EmptyIsError) {
      // Mirror readSessionFile's empty-input contract for inline sources.
      Error = "error: '" + Path + "' is empty";
      return false;
    }
    return true;
  }
  return readSessionFile(Path, Source, Error);
}

/// Procedures (and the main body, keyed "") whose canonical fingerprint
/// differs between two revisions — added, removed, or edited.
std::uint64_t countChangedProcs(const ProgramFingerprints &Old,
                                const ProgramFingerprints &New) {
  std::uint64_t Changed = Old.Main != New.Main ? 1 : 0;
  for (const auto &[Name, Hash] : New.Procs) {
    auto It = Old.Procs.find(Name);
    if (It == Old.Procs.end() || It->second != Hash)
      ++Changed;
  }
  for (const auto &[Name, Hash] : Old.Procs)
    if (!New.Procs.count(Name))
      ++Changed;
  return Changed;
}

/// Canonical key of the lint-only request knobs, layered on top of the
/// shared options fingerprint (same shape the serve daemon uses for its
/// lint cache keys).
std::string lintKnobsKey(const LintRequest &Req) {
  std::string Key = "werror=" + std::to_string(Req.Werror);
  Key += ";minsev=" + std::to_string(static_cast<int>(Req.MinSeverity));
  Key += ";disabled={";
  for (const std::string &Pass : Req.Disabled)
    Key += Pass + ",";
  Key += "}";
  return Key;
}

} // namespace

Analyzer::Analyzer(const AnalyzerConfig &Config)
    : Config(Config), Syms(std::make_shared<SymbolTable>()),
      Memo(std::make_shared<ClosureMemo>(/*CrossSession=*/true)) {}

Analyzer::~Analyzer() = default;

ThreadPool &Analyzer::pool(unsigned Workers) {
  Workers = std::max(1u, Workers);
  if (!Pool || PoolWorkers != Workers) {
    Pool = std::make_unique<ThreadPool>(Workers);
    PoolWorkers = Workers;
  }
  return *Pool;
}

AnalyzeResponse Analyzer::analyze(const AnalyzeRequest &Req) {
  // Cold mode hands the session null handles, i.e. fresh per-run state —
  // the classic isolated run.
  return analyzeWith(Req, Config.WarmState ? Syms : nullptr,
                     Config.WarmState ? Memo : nullptr);
}

AnalyzeResponse
Analyzer::analyzeWith(const AnalyzeRequest &Req,
                      std::shared_ptr<SymbolTable> SharedSyms,
                      std::shared_ptr<ClosureMemo> SharedMemo) {
  AnalyzeResponse Resp;
  Resp.OptionsFingerprint = Req.Options.fingerprint();
  std::uint64_t Start = nowUs();

  std::string Source, Error;
  if (!resolveSource(Req.Path, Req.Source, Source, Error,
                     /*EmptyIsError=*/true)) {
    Resp.Session.ExitCode = SessionExitUsage;
    Resp.Session.Error = Error;
    Resp.WallUs = nowUs() - Start;
    return Resp;
  }

  SessionOptions Opts = Req.Options.session();
  Opts.Analysis.SharedSymbols = std::move(SharedSyms);
  Opts.Analysis.SharedMemo = std::move(SharedMemo);
  Resp.Session = runAnalysisSession(Req.Path, Source, Opts);
  Resp.WallUs = nowUs() - Start;
  return Resp;
}

PipelineCache &Analyzer::cache() {
  if (!Cache)
    Cache = std::make_unique<PipelineCache>();
  return *Cache;
}

AnalyzeResponse Analyzer::analyzeIncremental(const AnalyzeRequest &Req) {
  IncStats.Requests++;

  // Budget-limited outcomes are timing-dependent: not safe to memoize,
  // and the engine refuses to capture or seed under them anyway.
  if (Req.Options.DeadlineMs || Req.Options.MaxMemoryMb ||
      Req.Options.ProverSteps) {
    IncStats.ColdRuns++;
    return analyzeWith(Req, Syms, Memo);
  }

  AnalyzeResponse Resp;
  std::string OptionsFp = Req.Options.fingerprint();
  Resp.OptionsFingerprint = OptionsFp;
  std::uint64_t Start = nowUs();

  std::string Source, Error;
  if (!resolveSource(Req.Path, Req.Source, Source, Error,
                     /*EmptyIsError=*/true)) {
    Resp.Session.ExitCode = SessionExitUsage;
    Resp.Session.Error = Error;
    Resp.WallUs = nowUs() - Start;
    return Resp;
  }

  AnalyzePipelineEntry *Prior = cache().findAnalyze(Req.Path);
  if (Prior && Prior->OptionsFp == OptionsFp && Prior->Source == Source) {
    // L0: byte-exact re-request. The cached response is plain data plus
    // owning handles; only the wall clock is this request's own.
    IncStats.CacheHits++;
    AnalyzeResponse Hit = Prior->Resp;
    Hit.FromCache = true;
    Hit.Replay = ReplayStats();
    Hit.WallUs = nowUs() - Start;
    return Hit;
  }

  // Live run, always warm: seeding requires the recording and the seeded
  // run to share one symbol intern table, so incremental requests use the
  // Analyzer's even in cold config.
  SessionOptions Opts = Req.Options.session();
  Opts.Analysis.SharedSymbols = Syms;
  Opts.Analysis.SharedMemo = Memo;
  auto Capture = std::make_shared<ReplayCapture>();
  auto RStats = std::make_shared<ReplayStats>();
  Opts.Analysis.Capture = Capture;
  Opts.Analysis.Replay = RStats;
  if (Prior && Prior->OptionsFp == OptionsFp && Prior->Trace &&
      Prior->Resp.Session.Graph && Prior->Resp.Session.Parsed) {
    auto Seed = std::make_shared<EngineSeed>();
    Seed->Trace = Prior->Trace;
    Seed->PriorGraph = Prior->Resp.Session.Graph;
    Seed->Symbols = Syms;
    Seed->PriorKeepAlive = Prior->Resp.Session.Parsed;
    Seed->OptionsFingerprint = Opts.Analysis.fingerprint();
    Opts.Analysis.Seed = std::move(Seed);
  }

  Resp.Session = runAnalysisSession(Req.Path, Source, Opts);
  Resp.WallUs = nowUs() - Start;
  Resp.Replay = *RStats;

  if (RStats->SeedUsed)
    IncStats.SeededRuns++;
  else
    IncStats.ColdRuns++;
  IncStats.AdoptedSteps += RStats->AdoptedSteps;
  IncStats.LiveSteps += RStats->LiveSteps;
  IncStats.LastSeedRejectReason = RStats->SeedRejectReason;

  AnalyzePipelineEntry Entry;
  Entry.OptionsFp = OptionsFp;
  Entry.Source = Source;
  Entry.Resp = Resp;
  Entry.Trace = Capture->Trace; // Null unless the engine converged.
  if (Resp.Session.Parsed && Resp.Session.Parsed->succeeded()) {
    Entry.FP = fingerprintProgram(Resp.Session.Parsed->Prog);
    if (Prior)
      IncStats.ChangedProcs += countChangedProcs(Prior->FP, Entry.FP);
  }
  cache().putAnalyze(Req.Path, std::move(Entry));
  return Resp;
}

LintResponse Analyzer::lintIncremental(const LintRequest &Req) {
  IncStats.Requests++;

  if (Req.Options.DeadlineMs || Req.Options.MaxMemoryMb ||
      Req.Options.ProverSteps) {
    IncStats.ColdRuns++;
    return lint(Req);
  }

  LintResponse Resp;
  std::uint64_t Start = nowUs();
  std::string Key = Req.Options.fingerprint() + ";" + lintKnobsKey(Req);

  std::string Source, Error;
  if (!resolveSource(Req.Path, Req.Source, Source, Error,
                     /*EmptyIsError=*/false)) {
    Resp.ExitCode = SessionExitUsage;
    Resp.Error = Error;
    Resp.WallUs = nowUs() - Start;
    return Resp;
  }

  LintPipelineEntry *Prior = cache().findLint(Req.Path);
  if (Prior && Prior->Key == Key && Prior->Source == Source) {
    IncStats.CacheHits++;
    LintResponse Hit = Prior->Resp;
    Hit.FromCache = true;
    Hit.Replay = ReplayStats();
    Hit.WallUs = nowUs() - Start;
    return Hit;
  }

  LintOptions Opts;
  Opts.Disabled = Req.Disabled;
  Opts.Analysis = Req.Options.analysis();
  Opts.Analysis.SharedSymbols = Syms;
  Opts.Analysis.SharedMemo = Memo;
  auto Capture = std::make_shared<ReplayCapture>();
  auto RStats = std::make_shared<ReplayStats>();
  Opts.Analysis.Capture = Capture;
  Opts.Analysis.Replay = RStats;
  if (Prior && Prior->Key == Key && Prior->Trace &&
      Prior->Artifacts.Graph && Prior->Artifacts.Parsed) {
    auto Seed = std::make_shared<EngineSeed>();
    Seed->Trace = Prior->Trace;
    Seed->PriorGraph = Prior->Artifacts.Graph;
    Seed->Symbols = Syms;
    Seed->PriorKeepAlive = Prior->Artifacts.Parsed;
    Seed->OptionsFingerprint = Opts.Analysis.fingerprint();
    Opts.Analysis.Seed = std::move(Seed);
  }

  // No budget: limited requests were delegated above, and lint's passes
  // are deterministic without one (MaxStates etc. still bound the engine).
  DiagnosticEngine Diags;
  LintArtifacts Artifacts;
  lintSource(Source, Opts, Diags, &Artifacts);
  if (Req.Werror)
    Diags.promoteWarningsToErrors();
  Diags.filterBelow(Req.MinSeverity);

  Resp.Diagnostics = Diags.diagnostics();
  Resp.ExitCode = Diags.exitCode();
  for (const Diagnostic &D : Resp.Diagnostics)
    if (D.Pass == "internal-error")
      Resp.ExitCode = SessionExitInternal;
  Resp.WallUs = nowUs() - Start;
  Resp.Replay = *RStats;

  if (RStats->SeedUsed)
    IncStats.SeededRuns++;
  else
    IncStats.ColdRuns++;
  IncStats.AdoptedSteps += RStats->AdoptedSteps;
  IncStats.LiveSteps += RStats->LiveSteps;
  IncStats.LastSeedRejectReason = RStats->SeedRejectReason;

  LintPipelineEntry Entry;
  Entry.Key = Key;
  Entry.Source = Source;
  Entry.Resp = Resp;
  Entry.Artifacts = Artifacts;
  Entry.Trace = Capture->Trace;
  if (Artifacts.Parsed && Artifacts.Parsed->succeeded()) {
    Entry.FP = fingerprintProgram(Artifacts.Parsed->Prog);
    if (Prior)
      IncStats.ChangedProcs += countChangedProcs(Prior->FP, Entry.FP);
  }
  cache().putLint(Req.Path, std::move(Entry));
  return Resp;
}

LintResponse Analyzer::lint(const LintRequest &Req) {
  LintResponse Resp;
  std::uint64_t Start = nowUs();

  std::string Source;
  if (Req.Source) {
    Source = *Req.Source;
  } else {
    std::string Error;
    if (!readSessionFile(Req.Path, Source, Error)) {
      Resp.ExitCode = SessionExitUsage;
      Resp.Error = Error;
      Resp.WallUs = nowUs() - Start;
      return Resp;
    }
  }

  LintOptions Opts;
  Opts.Disabled = Req.Disabled;
  Opts.Analysis = Req.Options.analysis();
  if (Config.WarmState) {
    Opts.Analysis.SharedSymbols = Syms;
    Opts.Analysis.SharedMemo = Memo;
  }

  AnalysisBudget Budget;
  Budget.DeadlineMs = Req.Options.DeadlineMs;
  Budget.MaxMemoryMb = Req.Options.MaxMemoryMb;
  Budget.MaxProverSteps = Req.Options.ProverSteps;
  Budget.begin();
  // The scope arms the parser/sema checkpoints (they reach the budget
  // through the thread-local, not AnalysisOptions), so the deadline
  // covers lint's front end too.
  BudgetScope Budgets(&Budget);
  Opts.Analysis.Budget = &Budget;

  DiagnosticEngine Diags;
  try {
    lintSource(Source, Opts, Diags);
  } catch (const BudgetExceeded &E) {
    // The budget tripped outside the engine (parse, sema, or a
    // post-engine pass): degrade like the engine's own give-up instead of
    // dying.
    if (Opts.isEnabled("analysis-top"))
      Diags.report(makeDiag("analysis-top", DiagSeverity::Note, SourceLoc(),
                            "lint gave up (Top): " + E.reason(),
                            "budget exhausted before the pass suite "
                            "finished; findings may be incomplete"));
  }
  if (Req.Werror)
    Diags.promoteWarningsToErrors();
  Diags.filterBelow(Req.MinSeverity);

  Resp.Diagnostics = Diags.diagnostics();
  Resp.ExitCode = Diags.exitCode();
  // A recovered engine invariant violation outranks ordinary findings.
  for (const Diagnostic &D : Resp.Diagnostics)
    if (D.Pass == "internal-error")
      Resp.ExitCode = SessionExitInternal;
  Resp.WallUs = nowUs() - Start;
  return Resp;
}

BatchReport Analyzer::runBatch(const BatchRequest &Req) {
  BatchOptions Opts;
  Opts.Session = Req.Options.session();
  Opts.Jobs = std::max(1u, Req.Jobs);
  Opts.Mode = Req.Mode;
  Opts.TimeoutMs = Req.TimeoutMs;
  // Hard address-space backstop behind the soft DBM ceiling: generous
  // headroom for code, stacks, and the front end.
  Opts.AddressSpaceMb =
      Req.Options.MaxMemoryMb ? Req.Options.MaxMemoryMb * 4 + 256 : 0;

  if (Req.Mode == BatchMode::Fork)
    return runBatchFork(Req.Files, Opts);

  // The shared-memory runner: sessions run on the Analyzer's pool, all
  // sharing one cross-session ClosureMemo so closure results computed for
  // one file are reused by every later one. Trades the fork mode's hard
  // crash isolation for zero process overhead; hangs are still bounded by
  // mapping TimeoutMs onto the cooperative budget deadline.
  BatchReport Report;
  Report.Entries.resize(Req.Files.size());
  for (size_t I = 0; I < Req.Files.size(); ++I)
    Report.Entries[I].File = Req.Files[I];

  // Warm analyzers amortize across batches too; a cold one still shares
  // within the batch (the mode's whole point), then drops the memo.
  std::shared_ptr<ClosureMemo> SharedMemo =
      Config.WarmState ? Memo
                       : std::make_shared<ClosureMemo>(/*CrossSession=*/true);

  {
    ThreadPool &P = pool(Opts.Jobs);
    std::vector<std::future<void>> Done;
    Done.reserve(Req.Files.size());
    for (size_t I = 0; I < Req.Files.size(); ++I) {
      Done.push_back(P.submit([&Report, &Req, &Opts, SharedMemo, I] {
        BatchEntry &E = Report.Entries[I]; // Disjoint per task: no lock.
        std::uint64_t Start = nowUs();
        SessionOptions SOpts = Opts.Session;
        // No SIGKILL backstop in-process: the wall-clock timeout becomes
        // (or tightens) the session's cooperative deadline.
        if (Opts.TimeoutMs &&
            (SOpts.DeadlineMs == 0 || Opts.TimeoutMs < SOpts.DeadlineMs))
          SOpts.DeadlineMs = Opts.TimeoutMs;
        // Memo only: concurrent sessions must not interleave their symbol
        // intern orders, so the table stays per-session here.
        SOpts.Analysis.SharedMemo = SharedMemo;
        E.Reason = BatchExitReason::Exited;
        try {
          E.ExitCode =
              runSessionOutcome(Req.Files[I], SOpts, E.Verdict, E.Detail);
        } catch (const std::exception &Ex) {
          // Sessions recover their own failures; this catches what leaks
          // anyway (e.g. bad_alloc) so one file cannot sink the batch.
          E.ExitCode = SessionExitInternal;
          E.Verdict = "internal-error";
          E.Detail = std::string("uncaught exception: ") + Ex.what();
        }
        E.WallMs = (nowUs() - Start) / 1000;
        // Peak RSS is a per-process number; in-process sessions share the
        // address space, so no per-file figure exists.
        E.PeakRssKb = 0;
      }));
    }
    for (std::future<void> &F : Done)
      F.get();
  }

  for (const BatchEntry &E : Report.Entries) {
    switch (E.ExitCode) {
    case SessionExitComplete:
      Report.Complete++;
      break;
    case SessionExitFindings:
      Report.Findings++;
      break;
    case SessionExitUsage:
      Report.UsageErrors++;
      break;
    default:
      Report.InternalErrors++;
      break;
    }
  }
  return Report;
}

BatchEntry csdf::api::toBatchEntry(const std::string &File,
                                   const AnalyzeResponse &R) {
  BatchEntry E;
  E.File = File;
  E.Reason = BatchExitReason::Exited;
  E.ExitCode = R.Session.ExitCode;
  sessionVerdict(R.Session, E.Verdict, E.Detail);
  E.WallMs = R.WallUs / 1000;
  E.PeakRssKb = 0;
  return E;
}

std::string csdf::api::verdictJson(const std::string &File,
                                   const AnalyzeResponse &R) {
  // The batch row schema, extended with the identity members every
  // non-batch JSON surface carries. Inserted before the closing brace so
  // the shared prefix stays byte-identical to a batch report entry.
  std::string Out = batchEntryJson(toBatchEntry(File, R));
  std::string Extra = ", \"tool_version\": \"" + std::string(toolVersion()) +
                      "\", \"options_fingerprint\": \"" +
                      jsonEscape(R.OptionsFingerprint) + "\"";
  Out.insert(Out.size() - 1, Extra);
  return Out;
}
