//===- api/Csdf.h - The stable library facade -----------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one supported way to run csdf analyses from code. Every front end —
/// `csdf analyze`, `csdf lint`, `csdf batch`, the `csdf serve` daemon, the
/// benchmarks — and any embedder constructs an Analyzer and feeds it
/// value-typed requests:
///
/// \code
///   csdf::api::Analyzer An(csdf::api::AnalyzerConfig::warm());
///   csdf::api::AnalyzeRequest Req;
///   Req.Path = "ring.mpl";
///   Req.Source = "proc p in 0..np-1 { ... }";   // or omit to read Path
///   Req.Options.Client = "cartesian";
///   csdf::api::AnalyzeResponse R = An.analyze(Req);
///   if (R.Session.Outcome.complete())
///     for (const csdf::AnalysisBug &B : R.Session.Report.Analysis.Bugs)
///       use(B);
/// \endcode
///
/// The Analyzer owns the state worth keeping warm between requests — the
/// symbol intern table and the cross-session closure memo — so a
/// long-lived holder (the serve daemon) amortizes closure work across
/// requests, while a cold Analyzer (the one-shot CLI) reproduces the
/// classic fully-isolated run bit for bit. Layering: api wraps
/// driver/Session (the fail-safe pipeline) and driver/Batch (process
/// isolation); it never reaches around them into the engine.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_API_CSDF_H
#define CSDF_API_CSDF_H

#include "api/Options.h"
#include "diag/DiagnosticEngine.h"
#include "driver/Batch.h"
#include "pcfg/Replay.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace csdf {
class SymbolTable;
class ClosureMemo;
class ThreadPool;
} // namespace csdf

namespace csdf::api {

/// One analysis request: a source program plus options. When Source is
/// absent the file at Path is read; when present, Path is only used in
/// messages (so callers can analyze unsaved buffers).
struct AnalyzeRequest {
  std::string Path;
  std::optional<std::string> Source;
  RequestOptions Options;
};

/// What one analyze request produced. Session carries the full structured
/// result (outcome, report, exit code per the 0/1/2/3 contract); the
/// accessors below cover the common questions.
struct AnalyzeResponse {
  SessionResult Session;

  /// Wall time of this request as observed by the facade, in
  /// microseconds (the only field that differs between identical runs).
  std::uint64_t WallUs = 0;

  /// RequestOptions::fingerprint() of the request that produced this
  /// response — stamped into the JSON verdict so cached results can be
  /// traced back to the exact option set.
  std::string OptionsFingerprint;

  /// True when an incremental entry point answered this request from its
  /// cache without running the pipeline (exact source + options match).
  bool FromCache = false;

  /// Engine adoption counters when the run went through the incremental
  /// pipeline (all-zero for plain analyze() and for cache hits).
  ReplayStats Replay;

  int exitCode() const { return Session.ExitCode; }
  const AnalysisOutcome &outcome() const { return Session.Outcome; }
  bool degraded() const { return !Session.Outcome.complete(); }
};

/// One lint request: source plus pass selection and severity policy.
struct LintRequest {
  std::string Path;
  std::optional<std::string> Source;
  RequestOptions Options;

  /// Pass names to skip (see lintPassRegistry()).
  std::set<std::string> Disabled;
  /// Promote warnings to errors.
  bool Werror = false;
  /// Drop findings below this level.
  DiagSeverity MinSeverity = DiagSeverity::Note;
};

/// What one lint request produced.
struct LintResponse {
  /// Per the session contract: 0 clean, 1 findings, 2 usage/IO error,
  /// 3 recovered internal error.
  int ExitCode = 0;

  /// Filtered, severity-adjusted findings, in pass order.
  std::vector<Diagnostic> Diagnostics;

  /// IO error text when the input could not be read (ExitCode 2), empty
  /// otherwise.
  std::string Error;

  std::uint64_t WallUs = 0;

  /// True when lintIncremental answered from its cache (exact source +
  /// options match) without running any pass.
  bool FromCache = false;

  /// Engine adoption counters when the run went through the incremental
  /// pipeline (all-zero for plain lint() and for cache hits).
  ReplayStats Replay;
};

/// One batch request: a corpus plus per-file options and isolation policy.
struct BatchRequest {
  std::vector<std::string> Files;

  /// Per-file request configuration. Batch corpora are test/stress
  /// inputs; callers typically set Options.TestHooks.
  RequestOptions Options;

  /// Concurrent children (fork) or worker threads (threads); 1 = serial.
  unsigned Jobs = 1;

  /// Fork: one rlimited child per file (crash isolation). Threads:
  /// in-process pool sharing the Analyzer's closure memo.
  BatchMode Mode = BatchMode::Fork;

  /// Per-file wall-clock timeout: SIGKILL in fork mode, cooperative
  /// deadline in threads mode. 0 = none.
  std::uint64_t TimeoutMs = 0;
};

/// How an Analyzer treats state between requests.
struct AnalyzerConfig {
  /// Share the symbol intern table and the cross-session closure memo
  /// across requests. Warm mode is for long-lived holders (serve): later
  /// requests reuse closure results computed by earlier ones. Cold mode
  /// (default) gives every request fresh state — exactly the classic
  /// one-shot run.
  bool WarmState = false;

  static AnalyzerConfig warm() {
    AnalyzerConfig C;
    C.WarmState = true;
    return C;
  }
};

class PipelineCache;

/// Lifetime counters of the incremental entry points
/// (Analyzer::analyzeIncremental / lintIncremental). Reported by the
/// serve daemon's "stats" request.
struct IncrementalStats {
  /// Incremental requests received (analyze + lint).
  std::uint64_t Requests = 0;
  /// Answered from the cached response (exact source + options match).
  std::uint64_t CacheHits = 0;
  /// Runs that entered the engine with an accepted seed trace.
  std::uint64_t SeededRuns = 0;
  /// Runs computed cold (no prior entry, or the seed was rejected).
  std::uint64_t ColdRuns = 0;
  /// Engine worklist steps adopted verbatim from seed traces.
  std::uint64_t AdoptedSteps = 0;
  /// Engine worklist steps computed live.
  std::uint64_t LiveSteps = 0;
  /// Procedures whose canonical fingerprint changed vs the prior revision,
  /// summed over seed-capable requests.
  std::uint64_t ChangedProcs = 0;
  /// Why the most recent seed was rejected; empty when it was accepted.
  std::string LastSeedRejectReason;
};

/// The facade handle. Thread-compatible, not thread-safe: issue requests
/// from one thread at a time (runBatch parallelizes internally and is one
/// such request). Copying is disabled — the whole point is *shared* warm
/// state, so pass the Analyzer by reference.
class Analyzer {
public:
  Analyzer() : Analyzer(AnalyzerConfig()) {}
  explicit Analyzer(const AnalyzerConfig &Config);
  ~Analyzer();
  Analyzer(const Analyzer &) = delete;
  Analyzer &operator=(const Analyzer &) = delete;

  /// Runs one analysis session (read file if needed, parse, sema, CFG,
  /// pCFG engine, client passes) under the request's budget. Never
  /// throws; failures are folded into the response per the session
  /// contract.
  AnalyzeResponse analyze(const AnalyzeRequest &Req);

  /// Runs the lint pass suite under the request's budget. Never throws.
  LintResponse lint(const LintRequest &Req);

  /// analyze() through the incremental pipeline (see api/Pipeline.h). An
  /// exact re-request (same path, source bytes, and options) is answered
  /// from the cached response; an edited revision re-runs the pipeline
  /// with the prior run's engine trace attached as a seed, so worklist
  /// steps whose CFG footprint is unchanged are adopted instead of
  /// recomputed. The verdict is bit-identical to analyze() in every case;
  /// only the work to produce it differs. Requests with budget limits
  /// (deadline, memory, prover steps) bypass the cache entirely — their
  /// outcomes are timing-dependent and not safe to replay or memoize.
  /// Incremental requests always run warm (shared symbols and closure
  /// memo), even on a cold-configured Analyzer: seeding requires the
  /// recording and seeded runs to share one intern table.
  AnalyzeResponse analyzeIncremental(const AnalyzeRequest &Req);

  /// lint() through the incremental pipeline; same contract as
  /// analyzeIncremental. This is what the LSP server calls per keystroke.
  LintResponse lintIncremental(const LintRequest &Req);

  /// Lifetime counters of the incremental entry points.
  const IncrementalStats &incrementalStats() const { return IncStats; }

  /// The cross-session closure memo shared by this Analyzer's requests.
  /// Exposed so a long-lived holder can persist it across restarts
  /// (serve's --memo-dir snapshots, numeric/MemoSnapshot.h); treat it as
  /// read/insert-only.
  const std::shared_ptr<ClosureMemo> &closureMemo() const { return Memo; }

  /// Runs every file through an isolated session. Fork mode delegates to
  /// the process-per-file driver; threads mode runs sessions on this
  /// Analyzer's pool, sharing its closure memo so closure work amortizes
  /// across files (symbols stay per-session there: concurrent sessions
  /// must not interleave their intern orders).
  BatchReport runBatch(const BatchRequest &Req);

private:
  AnalyzeResponse analyzeWith(const AnalyzeRequest &Req,
                              std::shared_ptr<SymbolTable> Syms,
                              std::shared_ptr<ClosureMemo> Memo);

  /// Lazily (re)built pool for threads-mode batches.
  ThreadPool &pool(unsigned Workers);

  /// Lazily constructed per-path entry cache of the incremental pipeline.
  PipelineCache &cache();

  AnalyzerConfig Config;
  std::shared_ptr<SymbolTable> Syms;
  std::shared_ptr<ClosureMemo> Memo;
  std::unique_ptr<ThreadPool> Pool;
  unsigned PoolWorkers = 0;
  std::unique_ptr<PipelineCache> Cache;
  IncrementalStats IncStats;
};

/// Maps a response onto the batch report row shape — the one per-file
/// verdict schema every JSON surface shares (`csdf analyze --format
/// json`, `csdf batch --report`, `csdf serve`). PeakRssKb is 0: like the
/// threads batch mode, an in-process run has no per-file RSS figure.
BatchEntry toBatchEntry(const std::string &File, const AnalyzeResponse &R);

/// Renders the response as one JSON verdict object (batchEntryJson over
/// toBatchEntry), without a trailing newline, extended with two identity
/// members: "tool_version" (csdf::toolVersion()) and
/// "options_fingerprint" (the request's RequestOptions::fingerprint()).
/// `csdf analyze --format json` and the serve daemon's analyze "result"
/// both go through here, so the two stay byte-identical by construction;
/// batch report entries keep the unextended schema.
std::string verdictJson(const std::string &File, const AnalyzeResponse &R);

} // namespace csdf::api

#endif // CSDF_API_CSDF_H
