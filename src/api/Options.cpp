//===- api/Options.cpp ----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "api/Options.h"

#include "diag/DiagRenderer.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace csdf;
using namespace csdf::api;

bool RequestOptions::isKnownClient(const std::string &Name) {
  return Name == "linear" || Name == "cartesian" || Name == "sectionx";
}

AnalysisOptions RequestOptions::analysis() const {
  AnalysisOptions Opts;
  if (Client == "linear")
    Opts = AnalysisOptions::simpleSymbolic();
  else if (Client == "sectionx")
    Opts = AnalysisOptions::sectionX();
  else
    Opts = AnalysisOptions::cartesian();
  if (FixedNp > 0)
    Opts.FixedNp = FixedNp;
  for (const auto &[Name, Value] : Params)
    Opts.Params[Name] = Value;
  if (Threads > 0)
    Opts.Threads = Threads;
  if (MaxStates > 0)
    Opts.MaxStates = MaxStates;
  Opts.CheckMatchNondet = CheckMatchNondet;
  return Opts;
}

SessionOptions RequestOptions::session() const {
  SessionOptions Opts;
  Opts.Analysis = analysis();
  Opts.DeadlineMs = DeadlineMs;
  Opts.MaxMemoryMb = MaxMemoryMb;
  Opts.MaxProverSteps = ProverSteps;
  Opts.EnableTestHooks = TestHooks;
  return Opts;
}

std::string RequestOptions::fingerprint() const {
  std::string F = "client=" + Client + ";";
  F += analysis().fingerprint();
  F += ";deadline=" + std::to_string(DeadlineMs);
  F += ";mem=" + std::to_string(MaxMemoryMb);
  F += ";steps=" + std::to_string(ProverSteps);
  F += ";hooks=" + std::to_string(TestHooks);
  return F;
}

namespace {

/// Parses a full decimal signed integer, rejecting partial and
/// out-of-range input.
bool parseInt(const char *Text, std::int64_t &Out) {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text, &End, 10);
  if (errno == ERANGE || End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Non-negative integer with an upper bound (the shared flags are all
/// counts or limits; negative or absurd values are user error).
bool parseLimit(const char *Text, std::int64_t Max, std::int64_t &Out) {
  return parseInt(Text, Out) && Out >= 0 && Out <= Max;
}

} // namespace

ArgStatus csdf::api::parseSharedOption(int Argc, const char *const *Argv,
                                       int &I, RequestOptions &Opts,
                                       std::string &Error) {
  const std::string Arg = Argv[I];

  // Flags with a required value. `Value` points at Argv[I+1] when present.
  auto takeValue = [&](const char *&Value) {
    if (I + 1 >= Argc) {
      Error = Arg + " requires a value";
      return false;
    }
    Value = Argv[++I];
    return true;
  };

  if (Arg == "--client") {
    const char *Value;
    if (!takeValue(Value))
      return ArgStatus::Error;
    if (!RequestOptions::isKnownClient(Value)) {
      Error = std::string("unknown client '") + Value +
              "' (expected linear, cartesian, or sectionx)";
      return ArgStatus::Error;
    }
    Opts.Client = Value;
    return ArgStatus::Consumed;
  }

  if (Arg == "--fixed-np") {
    const char *Value;
    std::int64_t N;
    if (!takeValue(Value))
      return ArgStatus::Error;
    if (!parseInt(Value, N) || N <= 0) {
      Error = "--fixed-np requires a positive integer";
      return ArgStatus::Error;
    }
    Opts.FixedNp = N;
    return ArgStatus::Consumed;
  }

  if (Arg == "--param") {
    const char *Value;
    if (!takeValue(Value))
      return ArgStatus::Error;
    const char *Eq = std::strchr(Value, '=');
    std::int64_t N;
    if (!Eq || Eq == Value || !parseInt(Eq + 1, N)) {
      Error = "--param requires name=integer";
      return ArgStatus::Error;
    }
    Opts.Params[std::string(Value, Eq)] = N;
    return ArgStatus::Consumed;
  }

  if (Arg == "--threads") {
    const char *Value;
    std::int64_t N;
    if (!takeValue(Value))
      return ArgStatus::Error;
    if (!parseLimit(Value, 1024, N) || N == 0) {
      Error = "--threads requires an integer between 1 and 1024";
      return ArgStatus::Error;
    }
    Opts.Threads = static_cast<unsigned>(N);
    return ArgStatus::Consumed;
  }

  if (Arg == "--max-states") {
    const char *Value;
    std::int64_t N;
    if (!takeValue(Value))
      return ArgStatus::Error;
    if (!parseLimit(Value, 1000000000, N) || N == 0) {
      Error = "--max-states requires a positive integer";
      return ArgStatus::Error;
    }
    Opts.MaxStates = static_cast<unsigned>(N);
    return ArgStatus::Consumed;
  }

  if (Arg == "--deadline-ms" || Arg == "--max-memory-mb" ||
      Arg == "--prover-steps") {
    const char *Value;
    std::int64_t N;
    if (!takeValue(Value))
      return ArgStatus::Error;
    if (!parseLimit(Value, 1000000000000LL, N)) {
      Error = Arg + " requires a non-negative integer";
      return ArgStatus::Error;
    }
    if (Arg == "--deadline-ms")
      Opts.DeadlineMs = static_cast<std::uint64_t>(N);
    else if (Arg == "--max-memory-mb")
      Opts.MaxMemoryMb = static_cast<std::uint64_t>(N);
    else
      Opts.ProverSteps = static_cast<std::uint64_t>(N);
    return ArgStatus::Consumed;
  }

  if (Arg == "--no-match-nondet") {
    Opts.CheckMatchNondet = false;
    return ArgStatus::Consumed;
  }

  if (Arg == "--test-hooks") {
    Opts.TestHooks = true;
    return ArgStatus::Consumed;
  }

  return ArgStatus::NotMine;
}

bool csdf::api::optionsFromJson(const JsonValue &Json, RequestOptions &Opts,
                                std::string &Error) {
  if (!Json.isObject()) {
    Error = "options must be an object";
    return false;
  }
  for (const auto &[Key, Value] : Json.asObject()) {
    if (Key == "client") {
      if (!Value.isString() ||
          !RequestOptions::isKnownClient(Value.asString())) {
        Error = "options.client must be \"linear\", \"cartesian\", or "
                "\"sectionx\"";
        return false;
      }
      Opts.Client = Value.asString();
    } else if (Key == "fixed_np") {
      if (!Value.isInt() || Value.asInt() <= 0) {
        Error = "options.fixed_np must be a positive integer";
        return false;
      }
      Opts.FixedNp = Value.asInt();
    } else if (Key == "params") {
      if (!Value.isObject()) {
        Error = "options.params must be an object of name -> integer";
        return false;
      }
      for (const auto &[Name, Param] : Value.asObject()) {
        if (!Param.isInt()) {
          Error = "options.params." + Name + " must be an integer";
          return false;
        }
        Opts.Params[Name] = Param.asInt();
      }
    } else if (Key == "threads") {
      if (!Value.isInt() || Value.asInt() < 1 || Value.asInt() > 1024) {
        Error = "options.threads must be an integer between 1 and 1024";
        return false;
      }
      Opts.Threads = static_cast<unsigned>(Value.asInt());
    } else if (Key == "max_states") {
      if (!Value.isInt() || Value.asInt() < 1 ||
          Value.asInt() > 1000000000) {
        Error = "options.max_states must be a positive integer";
        return false;
      }
      Opts.MaxStates = static_cast<unsigned>(Value.asInt());
    } else if (Key == "deadline_ms" || Key == "max_memory_mb" ||
               Key == "prover_steps") {
      if (!Value.isInt() || Value.asInt() < 0) {
        Error = "options." + Key + " must be a non-negative integer";
        return false;
      }
      auto N = static_cast<std::uint64_t>(Value.asInt());
      if (Key == "deadline_ms")
        Opts.DeadlineMs = N;
      else if (Key == "max_memory_mb")
        Opts.MaxMemoryMb = N;
      else
        Opts.ProverSteps = N;
    } else if (Key == "check_match_nondet") {
      if (!Value.isBool()) {
        Error = "options.check_match_nondet must be a boolean";
        return false;
      }
      Opts.CheckMatchNondet = Value.asBool();
    } else if (Key == "test_hooks") {
      if (!Value.isBool()) {
        Error = "options.test_hooks must be a boolean";
        return false;
      }
      Opts.TestHooks = Value.asBool();
    } else {
      Error = "unknown option '" + Key + "'";
      return false;
    }
  }
  return true;
}

std::string csdf::api::optionsToJson(const RequestOptions &Opts) {
  std::string J = "{";
  J += "\"check_match_nondet\":";
  J += Opts.CheckMatchNondet ? "true" : "false";
  J += ",\"client\":\"" + Opts.Client + "\"";
  J += ",\"deadline_ms\":" + std::to_string(Opts.DeadlineMs);
  if (Opts.FixedNp > 0)
    J += ",\"fixed_np\":" + std::to_string(Opts.FixedNp);
  J += ",\"max_memory_mb\":" + std::to_string(Opts.MaxMemoryMb);
  if (Opts.MaxStates > 0)
    J += ",\"max_states\":" + std::to_string(Opts.MaxStates);
  if (!Opts.Params.empty()) {
    J += ",\"params\":{";
    bool First = true;
    for (const auto &[Name, Value] : Opts.Params) {
      if (!First)
        J += ',';
      First = false;
      J += "\"" + jsonEscape(Name) + "\":" + std::to_string(Value);
    }
    J += "}";
  }
  J += ",\"prover_steps\":" + std::to_string(Opts.ProverSteps);
  J += ",\"test_hooks\":";
  J += Opts.TestHooks ? "true" : "false";
  J += ",\"threads\":" + std::to_string(Opts.Threads);
  J += "}";
  return J;
}
