//===- api/Wire.h - The one spelling of the serve wire protocol -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON-lines wire protocol shared by every process in a csdf fleet:
/// the serve daemon (shard), the consistent-hash router, and `csdf
/// client`. Exactly one spelling of the request envelope, the response
/// envelope, and the structured error vocabulary lives here — the same
/// move api/Options.h made for option flags. Before this file the daemon
/// and the client each hand-rolled their half of the protocol, which is
/// exactly how wire formats drift.
///
/// ## Envelope
///
/// One JSON object per line, both directions. Requests:
///
///   {"id": 7, "proto": 1, "type": "analyze", "path": "ring.mpl",
///    "source": "...", "options": {...}, "tenant": "ci"}
///
/// `proto` is the wire protocol version (WireProtoVersion). A request
/// carrying a different major version is answered with a structured,
/// retryable-false "proto-mismatch" error instead of being
/// half-understood; an absent `proto` means "current" so pre-versioning
/// clients keep working. `tenant` names the requester for the router's
/// per-tenant admission control; shards accept and ignore it, so a
/// request is byte-identically forwardable.
///
/// Every response carries `proto` + `tool_version` right after `id`, so
/// any consumer can check compatibility before touching the rest:
///
///   {"id": 7, "proto": 1, "tool_version": "0.7.0", "ok": true, ...}
///
/// ## Errors
///
/// Error responses are structured and machine-retryable:
///
///   {"id": null, "proto": 1, "tool_version": "...", "ok": false,
///    "code": "overloaded", "error": "...", "retryable": true,
///    "retry_after_ms": 50}
///
/// `code` is one of: "parse-error", "invalid-request", "proto-mismatch",
/// "io-error", "overloaded", "unavailable", "internal-error". Only
/// "overloaded" and "unavailable" are retryable; they carry
/// `retry_after_ms`.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_API_WIRE_H
#define CSDF_API_WIRE_H

#include "api/Options.h"
#include "diag/Diagnostic.h"

#include <optional>
#include <set>
#include <string>

namespace csdf::api {

/// The wire protocol version this build speaks. Bumped on any change a
/// peer could misparse (renamed/retyped envelope member, changed error
/// vocabulary); additive members do not bump it.
inline constexpr int WireProtoVersion = 1;

/// One decoded request envelope. Defaults are the values an absent
/// member leaves in place.
struct WireRequest {
  /// The request's "id", re-serialized for echoing (null when absent).
  std::string IdJson = "null";
  /// Negotiated protocol version (requests without "proto" mean current).
  int Proto = WireProtoVersion;
  std::string Type;
  std::string Path = "<request>";
  std::optional<std::string> Source;
  /// Layered: parseWireRequest seeds this from the daemon's defaults and
  /// applies the request's "options" object on top.
  RequestOptions Options;
  /// Tenant name for per-tenant admission control (empty = the default
  /// tenant). Routers enforce quotas on it; shards just accept it.
  std::string Tenant;
  // Lint policy (ignored by analyze).
  std::set<std::string> Disabled;
  bool Werror = false;
  DiagSeverity MinSeverity = DiagSeverity::Note;
};

/// The fixed head of every response line: `{"id":<id>,"proto":N,
/// "tool_version":"..."` — callers append their members and the closing
/// brace. Keeping the identity members first means a peer can version-check
/// a response without parsing the (possibly large) result payload.
std::string wireResponseHead(const std::string &IdJson);

/// A complete structured error line. \p RetryAfterMs < 0 omits the
/// member (it is only meaningful on retryable errors).
std::string wireError(const std::string &IdJson, const char *Code,
                      const std::string &Message, bool Retryable,
                      int RetryAfterMs = -1);

/// The `overloaded` shed response (id null, retryable, with a hint).
std::string wireOverloaded(unsigned RetryAfterMs);

/// Parses one request line into \p Req (seeded from \p Defaults).
/// Enforces the \p MaxBytes size cap, the JSON-object shape, per-member
/// types, and the protocol version, in that order. On failure returns
/// false with \p ErrorLine set to the complete structured error response
/// — the caller writes it verbatim, so serve and router reject identical
/// garbage with identical bytes.
bool parseWireRequest(const std::string &Line, std::size_t MaxBytes,
                      const RequestOptions &Defaults, WireRequest &Req,
                      std::string &ErrorLine);

/// The inverse spelling: \p Req as one request line (no trailing
/// newline). Always carries `proto`; "options" is included only when
/// \p IncludeOptions (a plain request inherits the daemon's defaults).
/// `csdf client` and any forwarding layer build requests through here, so
/// a forwarded request can never spell an option differently than a
/// direct one.
std::string wireRequestJson(const WireRequest &Req, bool IncludeOptions);

/// The shard-ownership key of a request: the same string the shard uses
/// as its cache key head (type, canonical option fingerprint, path,
/// source bytes). The router hashes this onto the ring, so identical
/// requests always land on the shard that already cached them.
std::string wireRoutingKey(const WireRequest &Req);

} // namespace csdf::api

#endif // CSDF_API_WIRE_H
