//===- api/Options.h - One option set for every csdf front end ------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RequestOptions is the value-typed option bag every consumer of the
/// library shares: the `csdf` CLI subcommands (analyze, lint, batch,
/// serve), the `csdf serve` request protocol, and embedders going through
/// api::Analyzer. It captures the *request-level* knobs — client preset,
/// engine overrides, and the session budget — and materializes them into
/// the lower layers' AnalysisOptions / SessionOptions on demand, so there
/// is exactly one mapping from user-visible options to engine
/// configuration.
///
/// The same struct has exactly one command-line spelling
/// (parseSharedOption), one JSON spelling (optionsFromJson), and one
/// canonical cache-key encoding (fingerprint), so the three front ends
/// cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_API_OPTIONS_H
#define CSDF_API_OPTIONS_H

#include "driver/Session.h"
#include "pcfg/AnalysisOptions.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <string>

namespace csdf::api {

/// Everything a single analyze/lint request can configure, in preset +
/// overrides form. The client preset is applied first and the overrides
/// last, so the result does not depend on flag order.
struct RequestOptions {
  /// Client analysis preset: "linear" (Section VII), "cartesian"
  /// (Section VIII, the default), or "sectionx" (every extension on).
  std::string Client = "cartesian";

  /// Engine overrides on top of the preset (0 = preset default).
  std::int64_t FixedNp = 0;
  std::map<std::string, std::int64_t> Params;
  unsigned Threads = 1;
  unsigned MaxStates = 0;

  /// Session budget limits (0 = unlimited).
  std::uint64_t DeadlineMs = 0;
  std::uint64_t MaxMemoryMb = 0;
  std::uint64_t ProverSteps = 0;

  /// Report match-nondeterminism bugs at wildcard receives with two or
  /// more statically eligible senders (`--no-match-nondet` disables the
  /// report; the precision degradation at such receives is unconditional).
  bool CheckMatchNondet = true;

  /// Honor `# csdf-test:` failure-injection directives (batch corpora and
  /// robustness tests only).
  bool TestHooks = false;

  /// True if \p Name is a known client preset.
  static bool isKnownClient(const std::string &Name);

  /// The engine options this request resolves to (preset, then
  /// overrides). Budget/shared-state wiring is attached by the Analyzer,
  /// not here.
  AnalysisOptions analysis() const;

  /// The full session configuration (analysis + budget + hooks).
  SessionOptions session() const;

  /// Canonical encoding of every semantically relevant field — combined
  /// with the source text it forms the content-addressed cache key of
  /// `csdf serve`. Budget limits are included: a run bounded by a 50 ms
  /// deadline is a different request than an unbounded one (its verdict
  /// may legitimately be degraded-to-top). Threads is not: results are
  /// bit-identical at any worker count.
  std::string fingerprint() const;
};

/// Outcome of offering one argv element to the shared-flag parser.
enum class ArgStatus {
  Consumed, ///< The flag (and its value, if any) was recognized and applied.
  NotMine,  ///< Not a shared flag; the caller should try its own table.
  Error,    ///< A shared flag with a bad/missing value; Error text is set.
};

/// Tries to consume Argv[I] as one of the shared request flags —
/// `--client`, `--fixed-np`, `--param`, `--threads`, `--max-states`,
/// `--deadline-ms`, `--max-memory-mb`, `--prover-steps`,
/// `--no-match-nondet`, `--test-hooks` —
/// advancing \p I past the flag's value when one is taken. Every csdf
/// front end funnels through this, so a flag spelled once works (and
/// validates identically) everywhere.
ArgStatus parseSharedOption(int Argc, const char *const *Argv, int &I,
                            RequestOptions &Opts, std::string &Error);

/// Applies a `csdf serve` request's "options" object on top of \p Opts
/// (fields not present keep their current — typically daemon-default —
/// values). Accepted members: client, fixed_np, params (object of
/// name -> integer), threads, max_states, deadline_ms, max_memory_mb,
/// prover_steps, check_match_nondet, test_hooks. Returns false with \p
/// Error set on an
/// unknown member or a type mismatch: requests with typos fail loudly
/// instead of analyzing with silently-default options.
bool optionsFromJson(const JsonValue &Json, RequestOptions &Opts,
                     std::string &Error);

/// The inverse spelling: \p Opts as a serve-protocol "options" object
/// (sorted keys, compact). Round-trips through optionsFromJson to an
/// options value with the identical fingerprint(), so `csdf client` can
/// forward its command-line flags to a daemon without a third spelling.
/// Fields whose zero value optionsFromJson rejects (fixed_np, max_states)
/// are omitted when unset, as is an empty params object.
std::string optionsToJson(const RequestOptions &Opts);

} // namespace csdf::api

#endif // CSDF_API_OPTIONS_H
