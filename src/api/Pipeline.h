//===- api/Pipeline.h - The incremental analysis pipeline cache -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State the incremental entry points (Analyzer::analyzeIncremental,
/// Analyzer::lintIncremental) keep between requests, keyed by document
/// path. Each entry remembers, for the last analyzed revision of one
/// document: the exact source bytes and options fingerprint (the L0 key —
/// an exact match is answered from the cached response without running
/// anything), the canonical per-procedure content fingerprints (see
/// lang/Fingerprint.h — they tell the stats layer *which* procedures an
/// edit touched), and the prior run's parse tree, CFG, and engine trace
/// (the seed for pcfg/Replay.h's validated step adoption on the next
/// revision).
///
/// Correctness note: the cached artifacts never substitute for analysis
/// on a changed document. An edited revision always re-runs the full
/// pipeline; the trace only lets the engine adopt recorded steps whose
/// CFG footprint is provably unchanged, so the incremental verdict is
/// bit-identical to a cold run by construction.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_API_PIPELINE_H
#define CSDF_API_PIPELINE_H

#include "analysis/Lint.h"
#include "api/Csdf.h"
#include "lang/Fingerprint.h"
#include "pcfg/Replay.h"

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

namespace csdf {
class AnalysisTrace;
class Cfg;
struct ParseResult;
} // namespace csdf

namespace csdf::api {

/// What the pipeline remembers about the last analyzed revision of one
/// document (analyze flavor). Resp owns the parse tree and CFG through
/// its SessionResult; Trace points into that parse tree's AST.
struct AnalyzePipelineEntry {
  /// RequestOptions::fingerprint() of the run that produced this entry.
  std::string OptionsFp;
  /// Exact source bytes analyzed.
  std::string Source;
  /// Canonical content fingerprints of that revision.
  ProgramFingerprints FP;
  /// The full cached response (plain data plus the owning Parsed/Graph
  /// handles) — returned verbatim on an exact re-request.
  AnalyzeResponse Resp;
  /// The converged engine trace, when one was captured; null after a
  /// degraded or front-end-failed run.
  std::shared_ptr<const AnalysisTrace> Trace;
};

/// Lint flavor of the above. Artifacts are the lint pipeline's own parse
/// tree and CFG (lint does not go through driver/Session).
struct LintPipelineEntry {
  /// Full lint cache key: options fingerprint plus the lint-only knobs
  /// (werror, min severity, disabled passes).
  std::string Key;
  std::string Source;
  ProgramFingerprints FP;
  LintResponse Resp;
  LintArtifacts Artifacts;
  std::shared_ptr<const AnalysisTrace> Trace;
};

/// Per-path LRU over the two entry flavors. Bounded: editors hold a
/// handful of documents, but a batch misusing the incremental entry
/// points must not accumulate one AST + trace per corpus file forever.
class PipelineCache {
public:
  explicit PipelineCache(std::size_t Capacity = 64) : Capacity(Capacity) {}

  AnalyzePipelineEntry *findAnalyze(const std::string &Path) {
    return find(Analyze, AnalyzeLru, Path);
  }
  LintPipelineEntry *findLint(const std::string &Path) {
    return find(Lint, LintLru, Path);
  }
  void putAnalyze(const std::string &Path, AnalyzePipelineEntry Entry) {
    put(Analyze, AnalyzeLru, Path, std::move(Entry));
  }
  void putLint(const std::string &Path, LintPipelineEntry Entry) {
    put(Lint, LintLru, Path, std::move(Entry));
  }
  /// Drops both flavors for \p Path (LSP didClose).
  void erase(const std::string &Path) {
    erase(Analyze, AnalyzeLru, Path);
    erase(Lint, LintLru, Path);
  }
  std::size_t entries() const { return Analyze.size() + Lint.size(); }

private:
  template <typename EntryT> struct Slot {
    EntryT Entry;
    std::list<std::string>::iterator LruIt;
  };

  template <typename EntryT>
  EntryT *find(std::unordered_map<std::string, Slot<EntryT>> &Map,
               std::list<std::string> &Lru, const std::string &Path) {
    auto It = Map.find(Path);
    if (It == Map.end())
      return nullptr;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return &It->second.Entry;
  }

  template <typename EntryT>
  void put(std::unordered_map<std::string, Slot<EntryT>> &Map,
           std::list<std::string> &Lru, const std::string &Path,
           EntryT Entry) {
    auto It = Map.find(Path);
    if (It != Map.end()) {
      It->second.Entry = std::move(Entry);
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      return;
    }
    if (Capacity && Map.size() >= Capacity && !Lru.empty()) {
      Map.erase(Lru.back());
      Lru.pop_back();
    }
    Lru.push_front(Path);
    Map.emplace(Path, Slot<EntryT>{std::move(Entry), Lru.begin()});
  }

  template <typename EntryT>
  void erase(std::unordered_map<std::string, Slot<EntryT>> &Map,
             std::list<std::string> &Lru, const std::string &Path) {
    auto It = Map.find(Path);
    if (It == Map.end())
      return;
    Lru.erase(It->second.LruIt);
    Map.erase(It);
  }

  std::size_t Capacity;
  std::unordered_map<std::string, Slot<AnalyzePipelineEntry>> Analyze;
  std::unordered_map<std::string, Slot<LintPipelineEntry>> Lint;
  std::list<std::string> AnalyzeLru;
  std::list<std::string> LintLru;
};

} // namespace csdf::api

#endif // CSDF_API_PIPELINE_H
