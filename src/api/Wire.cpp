//===- api/Wire.cpp -------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "api/Wire.h"

#include "analysis/Lint.h"
#include "diag/DiagRenderer.h"
#include "support/Version.h"

using namespace csdf;
using namespace csdf::api;

std::string csdf::api::wireResponseHead(const std::string &IdJson) {
  return "{\"id\":" + IdJson +
         ",\"proto\":" + std::to_string(WireProtoVersion) +
         ",\"tool_version\":\"" + toolVersion() + "\"";
}

std::string csdf::api::wireError(const std::string &IdJson, const char *Code,
                                 const std::string &Message, bool Retryable,
                                 int RetryAfterMs) {
  std::string S = wireResponseHead(IdJson) + ",\"ok\":false,\"code\":\"" +
                  Code + "\",\"error\":\"" + jsonEscape(Message) +
                  "\",\"retryable\":" + (Retryable ? "true" : "false");
  if (RetryAfterMs >= 0)
    S += ",\"retry_after_ms\":" + std::to_string(RetryAfterMs);
  S += "}";
  return S;
}

std::string csdf::api::wireOverloaded(unsigned RetryAfterMs) {
  return wireError("null", "overloaded", "server overloaded, retry later",
                   /*Retryable=*/true, static_cast<int>(RetryAfterMs));
}

bool csdf::api::parseWireRequest(const std::string &Line,
                                 std::size_t MaxBytes,
                                 const RequestOptions &Defaults,
                                 WireRequest &Req, std::string &ErrorLine) {
  auto Fail = [&](const std::string &IdJson, const char *Code,
                  const std::string &Msg) {
    ErrorLine = wireError(IdJson, Code, Msg, /*Retryable=*/false);
    return false;
  };

  // The size cap is checked before the parser ever sees the bytes: an
  // oversized request is a protocol violation answered structurally, not
  // an invitation to buffer without bound.
  if (Line.size() > MaxBytes)
    return Fail("null", "parse-error",
                "request exceeds " + std::to_string(MaxBytes) + " bytes");

  JsonValue Json;
  std::string Error;
  if (!parseJson(Line, Json, Error))
    return Fail("null", "parse-error", "malformed request: " + Error);
  if (!Json.isObject())
    return Fail("null", "parse-error", "request must be a JSON object");

  Req = WireRequest();
  if (const JsonValue *Id = Json.get("id"))
    Req.IdJson = Id->str();
  Req.Options = Defaults;

  // Version first: a peer speaking a different protocol gets exactly one
  // answer — a structured, non-retryable mismatch — before any other
  // member is interpreted under possibly-wrong rules.
  if (const JsonValue *Proto = Json.get("proto")) {
    if (!Proto->isInt())
      return Fail(Req.IdJson, "invalid-request", "proto must be an integer");
    Req.Proto = static_cast<int>(Proto->asInt());
    if (Req.Proto != WireProtoVersion)
      return Fail(Req.IdJson, "proto-mismatch",
                  "request speaks wire protocol " +
                      std::to_string(Req.Proto) + ", this server speaks " +
                      std::to_string(WireProtoVersion));
  }

  for (const auto &[Key, Value] : Json.asObject()) {
    if (Key == "id" || Key == "proto") {
      // id is echoed verbatim; proto was validated above.
    } else if (Key == "type") {
      if (!Value.isString())
        return Fail(Req.IdJson, "invalid-request", "type must be a string");
      Req.Type = Value.asString();
    } else if (Key == "path") {
      if (!Value.isString())
        return Fail(Req.IdJson, "invalid-request", "path must be a string");
      Req.Path = Value.asString();
    } else if (Key == "source") {
      if (!Value.isString())
        return Fail(Req.IdJson, "invalid-request",
                    "source must be a string");
      Req.Source = Value.asString();
    } else if (Key == "tenant") {
      if (!Value.isString())
        return Fail(Req.IdJson, "invalid-request",
                    "tenant must be a string");
      Req.Tenant = Value.asString();
    } else if (Key == "options") {
      if (!optionsFromJson(Value, Req.Options, Error))
        return Fail(Req.IdJson, "invalid-request", Error);
    } else if (Key == "disable") {
      if (!Value.isArray())
        return Fail(Req.IdJson, "invalid-request",
                    "disable must be an array of pass names");
      for (const JsonValue &Pass : Value.asArray()) {
        if (!Pass.isString() || !isKnownLintPass(Pass.asString()))
          return Fail(Req.IdJson, "invalid-request",
                      "disable names an unknown lint pass");
        Req.Disabled.insert(Pass.asString());
      }
    } else if (Key == "werror") {
      if (!Value.isBool())
        return Fail(Req.IdJson, "invalid-request",
                    "werror must be a boolean");
      Req.Werror = Value.asBool();
    } else if (Key == "min_severity") {
      const std::string &S = Value.isString() ? Value.asString() : "";
      if (S == "note")
        Req.MinSeverity = DiagSeverity::Note;
      else if (S == "warning")
        Req.MinSeverity = DiagSeverity::Warning;
      else if (S == "error")
        Req.MinSeverity = DiagSeverity::Error;
      else
        return Fail(Req.IdJson, "invalid-request",
                    "min_severity must be note, warning, or error");
    } else {
      return Fail(Req.IdJson, "invalid-request",
                  "unknown request field '" + Key + "'");
    }
  }
  return true;
}

std::string csdf::api::wireRequestJson(const WireRequest &Req,
                                       bool IncludeOptions) {
  std::string J = "{\"id\":" + Req.IdJson +
                  ",\"proto\":" + std::to_string(WireProtoVersion) +
                  ",\"type\":\"" + jsonEscape(Req.Type) + "\"";
  if (Req.Type == "analyze" || Req.Type == "lint") {
    J += ",\"path\":\"" + jsonEscape(Req.Path) + "\"";
    if (Req.Source)
      J += ",\"source\":\"" + jsonEscape(*Req.Source) + "\"";
  }
  if (IncludeOptions)
    J += ",\"options\":" + optionsToJson(Req.Options);
  if (!Req.Tenant.empty())
    J += ",\"tenant\":\"" + jsonEscape(Req.Tenant) + "\"";
  if (Req.Type == "lint") {
    if (Req.Werror)
      J += ",\"werror\":true";
    if (Req.MinSeverity != DiagSeverity::Note)
      J += std::string(",\"min_severity\":\"") +
           (Req.MinSeverity == DiagSeverity::Error ? "error" : "warning") +
           "\"";
    if (!Req.Disabled.empty()) {
      J += ",\"disable\":[";
      bool First = true;
      for (const std::string &Pass : Req.Disabled) {
        if (!First)
          J += ',';
        First = false;
        J += "\"" + jsonEscape(Pass) + "\"";
      }
      J += "]";
    }
  }
  J += "}";
  return J;
}

std::string csdf::api::wireRoutingKey(const WireRequest &Req) {
  // Mirrors the head of the shard's cache key (type, canonical option
  // fingerprint, path, source bytes): a request and its exact repeat hash
  // to the same ring position, so repeats land on the shard that already
  // holds the cached result.
  return Req.Type + "\n" + Req.Options.fingerprint() + "\n" + Req.Path +
         "\n" + (Req.Source ? *Req.Source : std::string());
}
