//===- dataflow/SeqAnalyses.cpp --------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "dataflow/SeqAnalyses.h"

#include "lang/ExprOps.h"

using namespace csdf;

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

bool ReachingDefsDomain::join(Fact &Into, const Fact &From) const {
  bool Changed = false;
  for (const Definition &D : From)
    Changed |= Into.insert(D).second;
  return Changed;
}

ReachingDefsDomain::Fact
ReachingDefsDomain::transfer(const Cfg &, const CfgNode &Node,
                             const Fact &In) const {
  if (Node.Kind != CfgNodeKind::Assign && Node.Kind != CfgNodeKind::Recv)
    return In;
  Fact Out;
  for (const Definition &D : In)
    if (D.first != Node.Var)
      Out.insert(D);
  Out.insert({Node.Var, Node.Id});
  return Out;
}

DataflowResult<ReachingDefsDomain>
csdf::computeReachingDefs(const Cfg &Graph) {
  return solveDataflow(Graph, ReachingDefsDomain());
}

//===----------------------------------------------------------------------===//
// Live variables
//===----------------------------------------------------------------------===//

namespace {

void addUses(const Expr *E, std::set<std::string> &Into) {
  if (!E)
    return;
  std::set<std::string> Vars;
  collectVars(E, Vars);
  for (const std::string &V : Vars)
    if (V != "id" && V != "np")
      Into.insert(V);
}

} // namespace

bool LiveVarsDomain::join(Fact &Into, const Fact &From) const {
  bool Changed = false;
  for (const std::string &V : From)
    Changed |= Into.insert(V).second;
  return Changed;
}

LiveVarsDomain::Fact LiveVarsDomain::transfer(const Cfg &,
                                              const CfgNode &Node,
                                              const Fact &In) const {
  Fact Out = In;
  if (Node.Kind == CfgNodeKind::Assign || Node.Kind == CfgNodeKind::Recv)
    Out.erase(Node.Var);
  addUses(Node.Value, Out);
  addUses(Node.Cond, Out);
  addUses(Node.Partner, Out);
  addUses(Node.Tag, Out);
  return Out;
}

DataflowResult<LiveVarsDomain> csdf::computeLiveVars(const Cfg &Graph) {
  return solveDataflow(Graph, LiveVarsDomain());
}

//===----------------------------------------------------------------------===//
// Definite assignment
//===----------------------------------------------------------------------===//

bool DefiniteAssignDomain::join(Fact &Into, const Fact &From) const {
  if (From.IsTop)
    return false;
  if (Into.IsTop) {
    Into = From;
    return true;
  }
  // Intersection: drop everything not definitely assigned on both paths.
  bool Changed = false;
  for (auto It = Into.Vars.begin(); It != Into.Vars.end();) {
    if (From.Vars.count(*It) == 0) {
      It = Into.Vars.erase(It);
      Changed = true;
    } else {
      ++It;
    }
  }
  return Changed;
}

DefiniteAssignDomain::Fact
DefiniteAssignDomain::transfer(const Cfg &, const CfgNode &Node,
                               const Fact &In) const {
  if (Node.Kind != CfgNodeKind::Assign && Node.Kind != CfgNodeKind::Recv)
    return In;
  Fact Out = In;
  if (!Out.IsTop)
    Out.Vars.insert(Node.Var);
  return Out;
}

DataflowResult<DefiniteAssignDomain>
csdf::computeDefiniteAssigns(const Cfg &Graph) {
  return solveDataflow(Graph, DefiniteAssignDomain());
}

//===----------------------------------------------------------------------===//
// Sequential constant propagation
//===----------------------------------------------------------------------===//

namespace {

/// Flat-lattice merge toward NonConst.
bool mergeConst(ConstVal &Into, const ConstVal &From) {
  if (From.TheKind == ConstVal::Kind::Unknown)
    return false;
  if (Into.TheKind == ConstVal::Kind::Unknown) {
    Into = From;
    return true;
  }
  if (Into == From)
    return false;
  if (Into.TheKind != ConstVal::Kind::NonConst) {
    Into = ConstVal::nonConst();
    return true;
  }
  return false;
}

/// Evaluates \p E with the constants known in \p In; anything else (a
/// non-constant variable, input(), division by zero) is NonConst.
ConstVal evalConst(const Expr *E, const SeqConstDomain::Fact &In) {
  auto V = evalExpr(E, [&](const std::string &Name)
                           -> std::optional<std::int64_t> {
    auto It = In.find(Name);
    if (It == In.end() || !It->second.isConst())
      return std::nullopt;
    return It->second.Value;
  });
  return V ? ConstVal::constant(*V) : ConstVal::nonConst();
}

} // namespace

bool SeqConstDomain::join(Fact &Into, const Fact &From) const {
  bool Changed = false;
  for (const auto &[Var, Val] : From)
    Changed |= mergeConst(Into[Var], Val);
  return Changed;
}

SeqConstDomain::Fact SeqConstDomain::transfer(const Cfg &,
                                              const CfgNode &Node,
                                              const Fact &In) const {
  Fact Out = In;
  switch (Node.Kind) {
  case CfgNodeKind::Assign:
    Out[Node.Var] = evalConst(Node.Value, In);
    return Out;
  case CfgNodeKind::Recv:
    // The sequential view cannot know what arrives.
    Out[Node.Var] = ConstVal::nonConst();
    return Out;
  default:
    return Out;
  }
}

DataflowResult<SeqConstDomain>
csdf::computeSeqConstants(const Cfg &Graph) {
  return solveDataflow(Graph, SeqConstDomain());
}

std::optional<std::int64_t>
csdf::seqConstantAt(const DataflowResult<SeqConstDomain> &R, CfgNodeId Node,
                    const std::string &Var) {
  const auto &Fact = R.In[Node];
  auto It = Fact.find(Var);
  if (It == Fact.end() || !It->second.isConst())
    return std::nullopt;
  return It->second.Value;
}
