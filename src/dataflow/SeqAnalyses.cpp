//===- dataflow/SeqAnalyses.cpp --------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "dataflow/SeqAnalyses.h"

#include "lang/ExprOps.h"

using namespace csdf;

namespace {

SymbolTablePtr orFresh(SymbolTablePtr Syms) {
  return Syms ? std::move(Syms) : std::make_shared<SymbolTable>();
}

} // namespace

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

bool ReachingDefsDomain::join(Fact &Into, const Fact &From) const {
  bool Changed = false;
  for (const Definition &D : From)
    Changed |= Into.insert(D).second;
  return Changed;
}

ReachingDefsDomain::Fact
ReachingDefsDomain::transfer(const Cfg &, const CfgNode &Node,
                             const Fact &In) const {
  if (Node.Kind != CfgNodeKind::Assign && Node.Kind != CfgNodeKind::Recv &&
      Node.Kind != CfgNodeKind::Irecv)
    return In;
  VarId Var = Syms->intern(Node.Var);
  Fact Out;
  for (const Definition &D : In)
    if (D.first != Var)
      Out.insert(D);
  Out.insert({Var, Node.Id});
  return Out;
}

DataflowResult<ReachingDefsDomain>
csdf::computeReachingDefs(const Cfg &Graph, SymbolTablePtr Syms) {
  return solveDataflow(Graph, ReachingDefsDomain(orFresh(std::move(Syms))));
}

//===----------------------------------------------------------------------===//
// Live variables
//===----------------------------------------------------------------------===//

namespace {

void addUses(const Expr *E, SymbolTable &Syms, std::set<VarId> &Into) {
  if (!E)
    return;
  std::set<std::string> Vars;
  collectVars(E, Vars);
  for (const std::string &V : Vars)
    if (V != "id" && V != "np")
      Into.insert(Syms.intern(V));
}

} // namespace

bool LiveVarsDomain::join(Fact &Into, const Fact &From) const {
  bool Changed = false;
  for (VarId V : From)
    Changed |= Into.insert(V).second;
  return Changed;
}

LiveVarsDomain::Fact LiveVarsDomain::transfer(const Cfg &,
                                              const CfgNode &Node,
                                              const Fact &In) const {
  Fact Out = In;
  if (Node.Kind == CfgNodeKind::Assign || Node.Kind == CfgNodeKind::Recv ||
      Node.Kind == CfgNodeKind::Irecv)
    Out.erase(Syms->intern(Node.Var));
  addUses(Node.Value, *Syms, Out);
  addUses(Node.Cond, *Syms, Out);
  addUses(Node.Partner, *Syms, Out);
  addUses(Node.Tag, *Syms, Out);
  return Out;
}

DataflowResult<LiveVarsDomain>
csdf::computeLiveVars(const Cfg &Graph, SymbolTablePtr Syms) {
  return solveDataflow(Graph, LiveVarsDomain(orFresh(std::move(Syms))));
}

//===----------------------------------------------------------------------===//
// Definite assignment
//===----------------------------------------------------------------------===//

bool DefiniteAssignDomain::join(Fact &Into, const Fact &From) const {
  if (From.IsTop)
    return false;
  if (Into.IsTop) {
    Into = From;
    return true;
  }
  // Intersection: drop everything not definitely assigned on both paths.
  bool Changed = false;
  for (auto It = Into.Vars.begin(); It != Into.Vars.end();) {
    if (From.Vars.count(*It) == 0) {
      It = Into.Vars.erase(It);
      Changed = true;
    } else {
      ++It;
    }
  }
  return Changed;
}

DefiniteAssignDomain::Fact
DefiniteAssignDomain::transfer(const Cfg &, const CfgNode &Node,
                               const Fact &In) const {
  if (Node.Kind != CfgNodeKind::Assign && Node.Kind != CfgNodeKind::Recv &&
      Node.Kind != CfgNodeKind::Irecv)
    return In;
  Fact Out = In;
  if (!Out.IsTop)
    Out.Vars.insert(Syms->intern(Node.Var));
  return Out;
}

DataflowResult<DefiniteAssignDomain>
csdf::computeDefiniteAssigns(const Cfg &Graph, SymbolTablePtr Syms) {
  return solveDataflow(Graph,
                       DefiniteAssignDomain(orFresh(std::move(Syms))));
}

//===----------------------------------------------------------------------===//
// Sequential constant propagation
//===----------------------------------------------------------------------===//

namespace {

/// Flat-lattice merge toward NonConst.
bool mergeConst(ConstVal &Into, const ConstVal &From) {
  if (From.TheKind == ConstVal::Kind::Unknown)
    return false;
  if (Into.TheKind == ConstVal::Kind::Unknown) {
    Into = From;
    return true;
  }
  if (Into == From)
    return false;
  if (Into.TheKind != ConstVal::Kind::NonConst) {
    Into = ConstVal::nonConst();
    return true;
  }
  return false;
}

/// Evaluates \p E with the constants known in \p In; anything else (a
/// non-constant variable, input(), division by zero) is NonConst.
ConstVal evalConst(const Expr *E, const SymbolTable &Syms,
                   const SeqConstDomain::Fact &In) {
  auto V = evalExpr(E, [&](const std::string &Name)
                           -> std::optional<std::int64_t> {
    auto Id = Syms.lookup(Name);
    if (!Id)
      return std::nullopt;
    auto It = In.find(*Id);
    if (It == In.end() || !It->second.isConst())
      return std::nullopt;
    return It->second.Value;
  });
  return V ? ConstVal::constant(*V) : ConstVal::nonConst();
}

} // namespace

bool SeqConstDomain::join(Fact &Into, const Fact &From) const {
  bool Changed = false;
  for (const auto &[Var, Val] : From)
    Changed |= mergeConst(Into[Var], Val);
  return Changed;
}

SeqConstDomain::Fact SeqConstDomain::transfer(const Cfg &,
                                              const CfgNode &Node,
                                              const Fact &In) const {
  Fact Out = In;
  switch (Node.Kind) {
  case CfgNodeKind::Assign:
    Out[Syms->intern(Node.Var)] = evalConst(Node.Value, *Syms, In);
    return Out;
  case CfgNodeKind::Recv:
  case CfgNodeKind::Irecv:
    // The sequential view cannot know what arrives.
    Out[Syms->intern(Node.Var)] = ConstVal::nonConst();
    return Out;
  default:
    return Out;
  }
}

DataflowResult<SeqConstDomain>
csdf::computeSeqConstants(const Cfg &Graph, SymbolTablePtr Syms) {
  return solveDataflow(Graph, SeqConstDomain(orFresh(std::move(Syms))));
}

std::optional<std::int64_t>
csdf::seqConstantAt(const DataflowResult<SeqConstDomain> &R,
                    const SymbolTable &Syms, CfgNodeId Node,
                    const std::string &Var) {
  auto Id = Syms.lookup(Var);
  if (!Id)
    return std::nullopt;
  const auto &Fact = R.In[Node];
  auto It = Fact.find(*Id);
  if (It == Fact.end() || !It->second.isConst())
    return std::nullopt;
  return It->second.Value;
}
