//===- dataflow/SeqAnalyses.h - Classic per-process analyses -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three textbook dataflow analyses instantiated over MPL CFGs:
///
///   * reaching definitions (forward, may);
///   * live variables (backward, may);
///   * sequential constant propagation (forward, flat lattice), which —
///     being blind to the parallel structure — must treat every `recv`
///     and `input()` as an unknown value. It therefore cannot prove the
///     Figure 2 prints, which the pCFG analysis can (tested).
///
/// All four domains intern variable names into a SymbolTable, so the facts
/// iterated at every CFG node are sets/maps of dense VarIds rather than
/// strings. Each compute* wrapper accepts the analysis run's shared table
/// (creating a private one when passed nullptr); name-level queries go
/// through that table.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DATAFLOW_SEQANALYSES_H
#define CSDF_DATAFLOW_SEQANALYSES_H

#include "dataflow/Dataflow.h"
#include "numeric/SymbolTable.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace csdf {

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

/// A definition site: the (interned) variable and the CFG node that
/// assigns it (Assign or Recv).
using Definition = std::pair<VarId, CfgNodeId>;

/// Forward may-analysis: which definitions may reach each point.
struct ReachingDefsDomain {
  using Fact = std::set<Definition>;
  static constexpr bool IsForward = true;

  explicit ReachingDefsDomain(SymbolTablePtr Syms) : Syms(std::move(Syms)) {}

  Fact boundary(const Cfg &) const { return {}; }
  Fact initial(const Cfg &) const { return {}; }
  bool join(Fact &Into, const Fact &From) const;
  Fact transfer(const Cfg &Graph, const CfgNode &Node, const Fact &In) const;

  SymbolTablePtr Syms;
};

/// Convenience wrapper; interns into \p Syms (fresh table when null).
DataflowResult<ReachingDefsDomain>
computeReachingDefs(const Cfg &Graph, SymbolTablePtr Syms = nullptr);

//===----------------------------------------------------------------------===//
// Live variables
//===----------------------------------------------------------------------===//

/// Backward may-analysis: which variables may be read before their next
/// redefinition. `id` and `np` are ambient and excluded.
struct LiveVarsDomain {
  using Fact = std::set<VarId>;
  static constexpr bool IsForward = false;

  explicit LiveVarsDomain(SymbolTablePtr Syms) : Syms(std::move(Syms)) {}

  Fact boundary(const Cfg &) const { return {}; }
  Fact initial(const Cfg &) const { return {}; }
  bool join(Fact &Into, const Fact &From) const;
  Fact transfer(const Cfg &Graph, const CfgNode &Node, const Fact &In) const;

  SymbolTablePtr Syms;
};

DataflowResult<LiveVarsDomain>
computeLiveVars(const Cfg &Graph, SymbolTablePtr Syms = nullptr);

//===----------------------------------------------------------------------===//
// Definite assignment
//===----------------------------------------------------------------------===//

/// Forward must-analysis: which variables are assigned (or received into)
/// on *every* path reaching a point. The lattice element is a variable set
/// plus an explicit Top ("all variables") used as the optimistic initial
/// value; join is set intersection. `csdf lint`'s use-before-init pass
/// reports reads of variables outside this set.
struct DefiniteAssignDomain {
  struct Fact {
    /// Top = assigned-everything, the initial value of unvisited nodes.
    bool IsTop = true;
    std::set<VarId> Vars;

    bool contains(VarId Var) const {
      return IsTop || Vars.count(Var) != 0;
    }
    bool operator==(const Fact &O) const {
      return IsTop == O.IsTop && Vars == O.Vars;
    }
  };
  static constexpr bool IsForward = true;

  explicit DefiniteAssignDomain(SymbolTablePtr Syms) : Syms(std::move(Syms)) {}

  Fact boundary(const Cfg &) const { return {false, {}}; }
  Fact initial(const Cfg &) const { return {true, {}}; }
  bool join(Fact &Into, const Fact &From) const;
  Fact transfer(const Cfg &Graph, const CfgNode &Node, const Fact &In) const;

  SymbolTablePtr Syms;
};

DataflowResult<DefiniteAssignDomain>
computeDefiniteAssigns(const Cfg &Graph, SymbolTablePtr Syms = nullptr);

//===----------------------------------------------------------------------===//
// Sequential constant propagation
//===----------------------------------------------------------------------===//

/// The flat constant lattice: unset = not yet known (optimistic top),
/// value = constant, NonConst = bottom of the flat lattice.
struct ConstVal {
  enum class Kind { Unknown, Const, NonConst };
  Kind TheKind = Kind::Unknown;
  std::int64_t Value = 0;

  static ConstVal constant(std::int64_t V) {
    return {Kind::Const, V};
  }
  static ConstVal nonConst() { return {Kind::NonConst, 0}; }
  bool isConst() const { return TheKind == Kind::Const; }
  bool operator==(const ConstVal &O) const {
    return TheKind == O.TheKind && (TheKind != Kind::Const ||
                                    Value == O.Value);
  }
};

/// Forward must-analysis over per-variable flat lattices. Receives and
/// input() produce NonConst — a sequential analysis has no way to know
/// what arrives.
struct SeqConstDomain {
  using Fact = std::map<VarId, ConstVal>;
  static constexpr bool IsForward = true;

  explicit SeqConstDomain(SymbolTablePtr Syms) : Syms(std::move(Syms)) {}

  Fact boundary(const Cfg &) const { return {}; }
  Fact initial(const Cfg &) const { return {}; }
  bool join(Fact &Into, const Fact &From) const;
  Fact transfer(const Cfg &Graph, const CfgNode &Node, const Fact &In) const;

  SymbolTablePtr Syms;
};

DataflowResult<SeqConstDomain>
computeSeqConstants(const Cfg &Graph, SymbolTablePtr Syms = nullptr);

/// The constant \p Var provably holds on entry to \p Node, if any. \p Syms
/// must be the table the analysis interned into.
std::optional<std::int64_t>
seqConstantAt(const DataflowResult<SeqConstDomain> &R,
              const SymbolTable &Syms, CfgNodeId Node,
              const std::string &Var);

} // namespace csdf

#endif // CSDF_DATAFLOW_SEQANALYSES_H
