//===- dataflow/Dataflow.h - Classical intra-process dataflow ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small classical dataflow framework over MPL CFGs — the "traditional
/// sequential analyses" the paper contrasts with (Section I/IV): they see
/// one process at a time and must treat every `recv` as an unknown value.
/// The pCFG framework's Figure 2 claim ("neither task can be accomplished
/// by traditional analyses") is demonstrated against these.
///
/// The solver is a standard iterative worklist over a join semilattice.
/// A Domain provides:
///
///   using Fact = ...;                          // lattice element
///   static constexpr bool IsForward = ...;
///   Fact boundary(const Cfg &) const;          // entry (or exit) fact
///   Fact initial(const Cfg &) const;           // optimistic start value
///   bool join(Fact &Into, const Fact &From) const;  // true if changed
///   Fact transfer(const Cfg &, const CfgNode &, const Fact &In) const;
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DATAFLOW_DATAFLOW_H
#define CSDF_DATAFLOW_DATAFLOW_H

#include "cfg/Cfg.h"

#include <deque>
#include <vector>

namespace csdf {

/// Per-node dataflow results: the fact holding before and after each node
/// (in execution order, regardless of analysis direction).
template <typename Domain> struct DataflowResult {
  std::vector<typename Domain::Fact> In;
  std::vector<typename Domain::Fact> Out;
};

/// Runs \p D to fixpoint over \p Graph.
template <typename Domain>
DataflowResult<Domain> solveDataflow(const Cfg &Graph, const Domain &D) {
  using Fact = typename Domain::Fact;
  const size_t N = Graph.size();
  DataflowResult<Domain> R;
  R.In.assign(N, D.initial(Graph));
  R.Out.assign(N, D.initial(Graph));

  // For a backward domain, "input" flows from successors; unify by
  // talking about pred/succ in *analysis* direction.
  auto AnalysisPreds = [&](CfgNodeId Id) {
    std::vector<CfgNodeId> Nodes;
    if constexpr (Domain::IsForward) {
      for (CfgNodeId P : Graph.node(Id).Preds)
        Nodes.push_back(P);
    } else {
      for (const CfgEdge &E : Graph.node(Id).Succs)
        Nodes.push_back(E.Target);
    }
    return Nodes;
  };
  auto AnalysisSuccs = [&](CfgNodeId Id) {
    std::vector<CfgNodeId> Nodes;
    if constexpr (Domain::IsForward) {
      for (const CfgEdge &E : Graph.node(Id).Succs)
        Nodes.push_back(E.Target);
    } else {
      for (CfgNodeId P : Graph.node(Id).Preds)
        Nodes.push_back(P);
    }
    return Nodes;
  };

  CfgNodeId Start = Domain::IsForward ? Graph.entryId() : Graph.exitId();

  std::deque<CfgNodeId> Worklist;
  std::vector<bool> Queued(N, false);
  for (CfgNodeId Id = 0; Id < N; ++Id) {
    Worklist.push_back(Id);
    Queued[Id] = true;
  }

  auto &Before = Domain::IsForward ? R.In : R.Out;
  auto &After = Domain::IsForward ? R.Out : R.In;
  Before[Start] = D.boundary(Graph);

  while (!Worklist.empty()) {
    CfgNodeId Id = Worklist.front();
    Worklist.pop_front();
    Queued[Id] = false;

    Fact InFact = Id == Start ? D.boundary(Graph) : D.initial(Graph);
    for (CfgNodeId P : AnalysisPreds(Id))
      D.join(InFact, After[P]);
    Before[Id] = InFact;
    Fact OutFact = D.transfer(Graph, Graph.node(Id), InFact);

    bool Changed = D.join(After[Id], OutFact);
    // join() accumulates; for must-analyses transfer output may *shrink*,
    // so also detect plain inequality via a second join direction: if the
    // stored fact changed at all, requeue successors.
    if (Changed) {
      for (CfgNodeId S : AnalysisSuccs(Id)) {
        if (!Queued[S]) {
          Worklist.push_back(S);
          Queued[S] = true;
        }
      }
    }
  }
  return R;
}

} // namespace csdf

#endif // CSDF_DATAFLOW_DATAFLOW_H
