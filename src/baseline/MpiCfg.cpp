//===- baseline/MpiCfg.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "baseline/MpiCfg.h"

#include "lang/ExprOps.h"
#include "pcfg/PartnerExpr.h"

using namespace csdf;

MpiCfgResult csdf::buildMpiCfg(const Cfg &Graph) {
  MpiCfgResult Result;
  for (const CfgNode &Send : Graph.nodes()) {
    if (Send.Kind != CfgNodeKind::Send)
      continue;
    for (const CfgNode &Recv : Graph.nodes()) {
      if (Recv.Kind != CfgNodeKind::Recv)
        continue;
      ++Result.InitialEdges;

      // Tag pruning: constant tags that cannot match (absent tag = 0).
      auto SendTag =
          Send.Tag ? foldConstant(Send.Tag) : std::optional<std::int64_t>(0);
      auto RecvTag =
          Recv.Tag ? foldConstant(Recv.Tag) : std::optional<std::int64_t>(0);
      if (SendTag && RecvTag && *SendTag != *RecvTag) {
        ++Result.PrunedByTag;
        continue;
      }

      // Shift pruning: id+k composed with id+m is never the identity when
      // k + m != 0, so no message on this edge can be addressed both ways.
      auto DestShift = matchIdPlusC(Send.Partner);
      auto SrcShift = matchIdPlusC(Recv.Partner);
      if (DestShift && SrcShift && *DestShift + *SrcShift != 0) {
        ++Result.PrunedByShift;
        continue;
      }

      Result.Edges.insert({Send.Id, Recv.Id});
    }
  }
  return Result;
}
