//===- baseline/MpiCfg.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "baseline/MpiCfg.h"

#include "lang/ExprOps.h"
#include "pcfg/PartnerExpr.h"

using namespace csdf;

MpiCfgResult csdf::buildMpiCfg(const Cfg &Graph) {
  MpiCfgResult Result;
  // Non-blocking operations address messages exactly like their blocking
  // counterparts (the trace anchors irecv deliveries at the posting node),
  // so the all-pairs baseline treats Isend as Send and Irecv as Recv.
  for (const CfgNode &Send : Graph.nodes()) {
    if (Send.Kind != CfgNodeKind::Send && Send.Kind != CfgNodeKind::Isend)
      continue;
    for (const CfgNode &Recv : Graph.nodes()) {
      if (Recv.Kind != CfgNodeKind::Recv &&
          Recv.Kind != CfgNodeKind::Irecv)
        continue;
      ++Result.InitialEdges;

      // Tag pruning: constant tags that cannot match (absent tag = 0).
      auto SendTag =
          Send.Tag ? foldConstant(Send.Tag) : std::optional<std::int64_t>(0);
      auto RecvTag =
          Recv.Tag ? foldConstant(Recv.Tag) : std::optional<std::int64_t>(0);
      if (SendTag && RecvTag && *SendTag != *RecvTag) {
        ++Result.PrunedByTag;
        continue;
      }

      // Shift pruning: id+k composed with id+m is never the identity when
      // k + m != 0, so no message on this edge can be addressed both ways.
      // A wildcard (`any`-source) receive names no source expression and
      // can never be pruned this way.
      auto DestShift = matchIdPlusC(Send.Partner);
      auto SrcShift =
          Recv.Partner ? matchIdPlusC(Recv.Partner)
                       : std::optional<std::int64_t>();
      if (DestShift && SrcShift && *DestShift + *SrcShift != 0) {
        ++Result.PrunedByShift;
        continue;
      }

      Result.Edges.insert({Send.Id, Recv.Id});
    }
  }
  return Result;
}
