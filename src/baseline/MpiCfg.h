//===- baseline/MpiCfg.h - The MPI-CFG baseline --------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MPI-CFG construction the paper compares against (Shires et al.,
/// discussed in Section II): start from an edge between *every* send and
/// *every* receive, then prune edges that sequential information rules
/// out. No parallel reasoning: no process sets, no rank propagation.
///
/// Pruning rules implemented (all purely expression-local):
///   * constant tags that differ;
///   * `id + k` / `id + m` partner shifts whose composition cannot be the
///     identity (k + m != 0).
///
/// The benchmark E8 measures this baseline's precision (spurious edges)
/// against the pCFG analysis and the dynamic ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_BASELINE_MPICFG_H
#define CSDF_BASELINE_MPICFG_H

#include "cfg/Cfg.h"

#include <set>
#include <utility>

namespace csdf {

/// Result of the MPI-CFG construction.
struct MpiCfgResult {
  /// Surviving send -> recv edges.
  std::set<std::pair<CfgNodeId, CfgNodeId>> Edges;
  unsigned InitialEdges = 0;
  unsigned PrunedByTag = 0;
  unsigned PrunedByShift = 0;
};

/// Builds the MPI-CFG communication edges of \p Graph.
MpiCfgResult buildMpiCfg(const Cfg &Graph);

} // namespace csdf

#endif // CSDF_BASELINE_MPICFG_H
