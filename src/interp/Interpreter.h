//===- interp/Interpreter.h - Concrete message-passing simulator ------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete executor for MPL programs on N simulated processes,
/// implementing the paper's execution model (Section III):
///   * processes 0..np-1, each with private scalar state,
///   * one FIFO channel per ordered process pair,
///   * non-blocking sends, blocking deterministic receives,
///   * first-class non-blocking requests: isend/irecv post a request,
///     wait/waitall complete it; reading or writing an irecv buffer while
///     its request is in flight is a buffer race (EvalError), and a
///     request that is never waited is reported in RequestLeaks,
///   * wildcard (`any`-source) receives, resolved lowest-sender-first for
///     reproducibility, with multi-eligible matches recorded as
///     NondetWitnesses,
///   * nondeterminism only from input() (schedule-independent).
///
/// The interpreter provides ground truth for the static analysis: every
/// statically matched send/receive pair can be checked against the recorded
/// dynamic trace, and the model's interleaving-obliviousness is testable by
/// swapping schedulers.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_INTERP_INTERPRETER_H
#define CSDF_INTERP_INTERPRETER_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace csdf {

/// One dynamically matched message.
struct TraceEvent {
  int Sender = 0;
  int Receiver = 0;
  CfgNodeId SendNode = 0;
  CfgNodeId RecvNode = 0;
  std::int64_t Value = 0;
  std::int64_t Tag = 0;
  /// Index of this message within its (Sender, Receiver) channel.
  unsigned ChannelSeq = 0;
};

/// A message still sitting in a channel when the run ended (a leak).
struct LeakedMessage {
  int Sender = 0;
  int Receiver = 0;
  CfgNodeId SendNode = 0;
  std::int64_t Value = 0;
  std::int64_t Tag = 0;
};

/// A non-blocking request that was still outstanding (never waited) when
/// its process finished or the run ended.
struct LeakedRequest {
  int Rank = 0;
  CfgNodeId PostNode = 0;
  std::string Req;
};

/// A wildcard receive that had more than one eligible sender when it
/// matched: concrete evidence of match nondeterminism.
struct NondetWitness {
  int Receiver = 0;
  CfgNodeId RecvNode = 0;
  /// All sender ranks whose channel head was eligible, ascending. The
  /// interpreter always delivers from the lowest (a fixed resolution), so
  /// runs stay reproducible, but the witness records the race.
  std::vector<int> EligibleSenders;
};

/// Why a run ended.
enum class RunStatus {
  Finished,     ///< All processes reached Exit.
  Deadlock,     ///< Some process blocked forever on a receive.
  AssertFailed, ///< An assert or assume evaluated to false.
  EvalError,    ///< Division by zero, unbound variable, bad partner rank.
  StepLimit,    ///< The step budget ran out (probable infinite loop).
};

/// Returns a short name for \p Status.
const char *runStatusName(RunStatus Status);

/// Everything observable about one run.
struct RunResult {
  RunStatus Status = RunStatus::Finished;
  std::string Error;
  std::vector<TraceEvent> Trace;
  std::vector<std::vector<std::int64_t>> Prints;
  std::vector<std::map<std::string, std::int64_t>> FinalVars;
  std::vector<LeakedMessage> Leaks;
  /// Requests posted but never completed by a wait/waitall.
  std::vector<LeakedRequest> RequestLeaks;
  /// Wildcard receives that observed ≥2 eligible senders when matching.
  std::vector<NondetWitness> NondetWitnesses;
  /// Ranks blocked on a receive or wait at the end (for deadlock reports).
  std::vector<int> BlockedRanks;

  bool finished() const { return Status == RunStatus::Finished; }

  /// Trace sorted by (sender, receiver, channel sequence): a canonical,
  /// schedule-independent ordering used by determinism tests.
  std::vector<TraceEvent> canonicalTrace() const;
};

/// Picks which runnable process steps next. Implementations determine the
/// interleaving; the model guarantees results do not depend on the choice.
class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Returns an element of \p Runnable (all currently runnable ranks,
  /// ascending).
  virtual int pick(const std::vector<int> &Runnable) = 0;
};

/// Cycles fairly through runnable processes.
class RoundRobinScheduler : public Scheduler {
public:
  int pick(const std::vector<int> &Runnable) override;

private:
  int Last = -1;
};

/// Picks uniformly at random (seeded, reproducible).
class RandomScheduler : public Scheduler {
public:
  explicit RandomScheduler(std::uint64_t Seed) : State(Seed | 1) {}

  int pick(const std::vector<int> &Runnable) override;

private:
  std::uint64_t State;
};

/// Always runs the highest-ranked runnable process (an adversarially
/// unfair schedule).
class LifoScheduler : public Scheduler {
public:
  int pick(const std::vector<int> &Runnable) override;
};

/// Supplies values for input() expressions: (rank, per-rank read index) ->
/// value. Must be a pure function for the model's determinism guarantee.
using InputProvider = std::function<std::int64_t(int Rank, unsigned Index)>;

/// Options for a run.
struct RunOptions {
  int NumProcs = 2;
  /// Extra variables pre-bound on every process (e.g. nrows/ncols for the
  /// NAS-CG kernels). `id` and `np` are always bound automatically.
  std::map<std::string, std::int64_t> Params;
  InputProvider Input = [](int, unsigned) { return 0; };
  /// Total step budget across all processes.
  std::uint64_t MaxSteps = 1u << 22;
};

/// Executes \p Graph under \p Opts with \p Sched choosing the interleaving.
RunResult runProgram(const Cfg &Graph, const RunOptions &Opts,
                     Scheduler &Sched);

/// Convenience overload using a round-robin schedule.
RunResult runProgram(const Cfg &Graph, const RunOptions &Opts);

} // namespace csdf

#endif // CSDF_INTERP_INTERPRETER_H
