//===- interp/Interpreter.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "lang/ExprOps.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>

using namespace csdf;

const char *csdf::runStatusName(RunStatus Status) {
  switch (Status) {
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Deadlock:
    return "deadlock";
  case RunStatus::AssertFailed:
    return "assert-failed";
  case RunStatus::EvalError:
    return "eval-error";
  case RunStatus::StepLimit:
    return "step-limit";
  }
  csdf_unreachable("unhandled RunStatus");
}

std::vector<TraceEvent> RunResult::canonicalTrace() const {
  std::vector<TraceEvent> Sorted = Trace;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return std::tuple(A.Sender, A.Receiver, A.ChannelSeq) <
                     std::tuple(B.Sender, B.Receiver, B.ChannelSeq);
            });
  return Sorted;
}

int RoundRobinScheduler::pick(const std::vector<int> &Runnable) {
  assert(!Runnable.empty() && "pick() with no runnable processes");
  for (int Rank : Runnable)
    if (Rank > Last) {
      Last = Rank;
      return Rank;
    }
  Last = Runnable.front();
  return Last;
}

int RandomScheduler::pick(const std::vector<int> &Runnable) {
  assert(!Runnable.empty() && "pick() with no runnable processes");
  // xorshift64*.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  std::uint64_t R = State * 0x2545F4914F6CDD1Dull;
  return Runnable[R % Runnable.size()];
}

int LifoScheduler::pick(const std::vector<int> &Runnable) {
  assert(!Runnable.empty() && "pick() with no runnable processes");
  return Runnable.back();
}

namespace {

/// A message in flight.
struct Message {
  std::int64_t Value = 0;
  std::int64_t Tag = 0;
  CfgNodeId SendNode = 0;
  unsigned ChannelSeq = 0;
};

/// Per-process execution state.
struct ProcState {
  CfgNodeId Node = 0;
  std::map<std::string, std::int64_t> Vars;
  unsigned InputReads = 0;
  bool Blocked = false;
};

class Machine {
public:
  Machine(const Cfg &Graph, const RunOptions &Opts, Scheduler &Sched)
      : Graph(Graph), Opts(Opts), Sched(Sched) {}

  RunResult run() {
    assert(Opts.NumProcs >= 1 && "need at least one process");
    const int NP = Opts.NumProcs;
    Procs.assign(NP, ProcState());
    Result.Prints.assign(NP, {});
    for (int Rank = 0; Rank < NP; ++Rank) {
      ProcState &P = Procs[Rank];
      P.Node = Graph.entryId();
      P.Vars["id"] = Rank;
      P.Vars["np"] = NP;
      for (const auto &[Name, Value] : Opts.Params)
        P.Vars[Name] = Value;
    }

    std::uint64_t Steps = 0;
    for (;;) {
      std::vector<int> Runnable = runnableRanks();
      if (Runnable.empty())
        return finish();
      if (++Steps > Opts.MaxSteps) {
        Result.Status = RunStatus::StepLimit;
        Result.Error = "step limit exceeded";
        return harvest();
      }
      int Rank = Sched.pick(Runnable);
      if (!step(Rank))
        return harvest();
    }
  }

private:
  std::vector<int> runnableRanks() const {
    std::vector<int> Runnable;
    for (int Rank = 0; Rank < Opts.NumProcs; ++Rank) {
      const ProcState &P = Procs[Rank];
      if (Graph.node(P.Node).isExit())
        continue;
      if (P.Blocked && !recvReady(Rank))
        continue;
      Runnable.push_back(Rank);
    }
    return Runnable;
  }

  /// True if the blocked receive of \p Rank can complete now.
  bool recvReady(int Rank) const {
    const ProcState &P = Procs[Rank];
    const CfgNode &N = Graph.node(P.Node);
    assert(N.Kind == CfgNodeKind::Recv && "blocked on a non-recv node");
    auto Src = evalIn(Rank, N.Partner);
    if (!Src || *Src < 0 || *Src >= Opts.NumProcs)
      return true; // Let step() surface the error.
    auto It = Channels.find({static_cast<int>(*Src), Rank});
    if (It == Channels.end() || It->second.empty())
      return false;
    std::int64_t WantTag = 0;
    if (N.Tag) {
      auto Tag = evalIn(Rank, N.Tag);
      if (!Tag)
        return true; // Error path.
      WantTag = *Tag;
    }
    // Strict FIFO: only the channel head may match; a tag mismatch at the
    // head blocks the receiver forever (the tag-mismatch bug shows up as a
    // deadlock plus a leak).
    return It->second.front().Tag == WantTag;
  }

  std::optional<std::int64_t> evalIn(int Rank, const Expr *E) const {
    const ProcState &P = Procs[Rank];
    if (const auto *In = dyn_cast<InputExpr>(E)) {
      (void)In;
      // input() handled by caller via takeInput(); plain eval fails.
    }
    return evalExpr(E, [&P](const std::string &Name) {
      auto It = P.Vars.find(Name);
      return It == P.Vars.end() ? std::optional<std::int64_t>()
                                : std::optional<std::int64_t>(It->second);
    });
  }

  /// Evaluates \p E servicing input() reads from the provider. Only used
  /// where the language allows input() (right-hand sides of assignments and
  /// printed/sent values); partner expressions reject input() in Sema.
  std::optional<std::int64_t> evalWithInput(int Rank, const Expr *E) {
    if (isa<InputExpr>(E))
      return Opts.Input(Rank, Procs[Rank].InputReads++);
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      auto V = evalWithInput(Rank, U->operand());
      if (!V)
        return std::nullopt;
      return U->op() == UnaryOp::Neg ? -*V
                                     : static_cast<std::int64_t>(*V == 0);
    }
    if (const auto *B = dyn_cast<BinaryExpr>(E)) {
      if (containsInput(B->lhs()) || containsInput(B->rhs())) {
        auto L = evalWithInput(Rank, B->lhs());
        if (!L)
          return std::nullopt;
        auto R = evalWithInput(Rank, B->rhs());
        if (!R)
          return std::nullopt;
        // Rebuild via a tiny environment trick: evaluate operator on L, R.
        switch (B->op()) {
        case BinaryOp::Add:
          return *L + *R;
        case BinaryOp::Sub:
          return *L - *R;
        case BinaryOp::Mul:
          return *L * *R;
        case BinaryOp::Div:
          return *R == 0 ? std::optional<std::int64_t>() : *L / *R;
        case BinaryOp::Mod:
          return *R == 0 ? std::optional<std::int64_t>() : *L % *R;
        case BinaryOp::Eq:
          return static_cast<std::int64_t>(*L == *R);
        case BinaryOp::Ne:
          return static_cast<std::int64_t>(*L != *R);
        case BinaryOp::Lt:
          return static_cast<std::int64_t>(*L < *R);
        case BinaryOp::Le:
          return static_cast<std::int64_t>(*L <= *R);
        case BinaryOp::Gt:
          return static_cast<std::int64_t>(*L > *R);
        case BinaryOp::Ge:
          return static_cast<std::int64_t>(*L >= *R);
        case BinaryOp::And:
          return static_cast<std::int64_t>(*L != 0 && *R != 0);
        case BinaryOp::Or:
          return static_cast<std::int64_t>(*L != 0 || *R != 0);
        }
        csdf_unreachable("unhandled BinaryOp");
      }
    }
    return evalIn(Rank, E);
  }

  bool fail(RunStatus Status, const std::string &Msg) {
    Result.Status = Status;
    Result.Error = Msg;
    return false;
  }

  /// Executes one node on \p Rank. Returns false to abort the run.
  bool step(int Rank) {
    ProcState &P = Procs[Rank];
    const CfgNode &N = Graph.node(P.Node);
    switch (N.Kind) {
    case CfgNodeKind::Entry:
    case CfgNodeKind::Skip:
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    case CfgNodeKind::Exit:
      csdf_unreachable("stepping a process at exit");
    case CfgNodeKind::Assign: {
      auto V = evalWithInput(Rank, N.Value);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      P.Vars[N.Var] = *V;
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Branch: {
      auto V = evalIn(Rank, N.Cond);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      P.Node = Graph.branchSuccessor(P.Node, *V != 0);
      return true;
    }
    case CfgNodeKind::Assume:
    case CfgNodeKind::Assert: {
      auto V = evalIn(Rank, N.Cond);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      if (*V == 0)
        return fail(RunStatus::AssertFailed,
                    "rank " + std::to_string(Rank) + ": " +
                        cfgNodeKindName(N.Kind) + " violated at " +
                        Graph.nodeLabel(P.Node));
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Print: {
      auto V = evalWithInput(Rank, N.Value);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      Result.Prints[Rank].push_back(*V);
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Send: {
      auto Dest = evalIn(Rank, N.Partner);
      auto Value = evalWithInput(Rank, N.Value);
      std::optional<std::int64_t> Tag = 0;
      if (N.Tag)
        Tag = evalIn(Rank, N.Tag);
      if (!Dest || !Value || !Tag)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      if (*Dest < 0 || *Dest >= Opts.NumProcs)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": send to invalid rank " + std::to_string(*Dest));
      auto &Channel = Channels[{Rank, static_cast<int>(*Dest)}];
      auto &Sent = SentCount[{Rank, static_cast<int>(*Dest)}];
      Channel.push_back({*Value, *Tag, P.Node, Sent++});
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Recv: {
      auto Src = evalIn(Rank, N.Partner);
      if (!Src)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      if (*Src < 0 || *Src >= Opts.NumProcs)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": recv from invalid rank " + std::to_string(*Src));
      auto It = Channels.find({static_cast<int>(*Src), Rank});
      if (It == Channels.end() || It->second.empty()) {
        P.Blocked = true;
        return true;
      }
      std::int64_t WantTag = 0;
      if (N.Tag) {
        auto Tag = evalIn(Rank, N.Tag);
        if (!Tag)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": evaluation failed at " +
                          Graph.nodeLabel(P.Node));
        WantTag = *Tag;
      }
      if (It->second.front().Tag != WantTag) {
        P.Blocked = true;
        return true;
      }
      Message Msg = It->second.front();
      It->second.pop_front();
      P.Vars[N.Var] = Msg.Value;
      P.Blocked = false;
      Result.Trace.push_back({static_cast<int>(*Src), Rank, Msg.SendNode,
                              P.Node, Msg.Value, Msg.Tag, Msg.ChannelSeq});
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    }
    csdf_unreachable("unhandled CfgNodeKind");
  }

  /// No process is runnable: either everyone finished or we deadlocked.
  RunResult finish() {
    bool AllDone = true;
    for (int Rank = 0; Rank < Opts.NumProcs; ++Rank) {
      if (!Graph.node(Procs[Rank].Node).isExit()) {
        AllDone = false;
        Result.BlockedRanks.push_back(Rank);
      }
    }
    if (!AllDone) {
      Result.Status = RunStatus::Deadlock;
      Result.Error = "deadlock: " +
                     std::to_string(Result.BlockedRanks.size()) +
                     " process(es) blocked on receives";
    }
    return harvest();
  }

  RunResult harvest() {
    for (auto &[Key, Channel] : Channels)
      for (const Message &Msg : Channel)
        Result.Leaks.push_back(
            {Key.first, Key.second, Msg.SendNode, Msg.Value, Msg.Tag});
    Result.FinalVars.reserve(Procs.size());
    for (ProcState &P : Procs)
      Result.FinalVars.push_back(std::move(P.Vars));
    return std::move(Result);
  }

  const Cfg &Graph;
  const RunOptions &Opts;
  Scheduler &Sched;
  std::vector<ProcState> Procs;
  std::map<std::pair<int, int>, std::deque<Message>> Channels;
  std::map<std::pair<int, int>, unsigned> SentCount;
  RunResult Result;
};

} // namespace

RunResult csdf::runProgram(const Cfg &Graph, const RunOptions &Opts,
                           Scheduler &Sched) {
  Machine M(Graph, Opts, Sched);
  return M.run();
}

RunResult csdf::runProgram(const Cfg &Graph, const RunOptions &Opts) {
  RoundRobinScheduler Sched;
  return runProgram(Graph, Opts, Sched);
}
