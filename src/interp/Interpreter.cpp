//===- interp/Interpreter.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "lang/ExprOps.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace csdf;

const char *csdf::runStatusName(RunStatus Status) {
  switch (Status) {
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Deadlock:
    return "deadlock";
  case RunStatus::AssertFailed:
    return "assert-failed";
  case RunStatus::EvalError:
    return "eval-error";
  case RunStatus::StepLimit:
    return "step-limit";
  }
  csdf_unreachable("unhandled RunStatus");
}

std::vector<TraceEvent> RunResult::canonicalTrace() const {
  std::vector<TraceEvent> Sorted = Trace;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return std::tuple(A.Sender, A.Receiver, A.ChannelSeq) <
                     std::tuple(B.Sender, B.Receiver, B.ChannelSeq);
            });
  return Sorted;
}

int RoundRobinScheduler::pick(const std::vector<int> &Runnable) {
  assert(!Runnable.empty() && "pick() with no runnable processes");
  for (int Rank : Runnable)
    if (Rank > Last) {
      Last = Rank;
      return Rank;
    }
  Last = Runnable.front();
  return Last;
}

int RandomScheduler::pick(const std::vector<int> &Runnable) {
  assert(!Runnable.empty() && "pick() with no runnable processes");
  // xorshift64*.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  std::uint64_t R = State * 0x2545F4914F6CDD1Dull;
  return Runnable[R % Runnable.size()];
}

int LifoScheduler::pick(const std::vector<int> &Runnable) {
  assert(!Runnable.empty() && "pick() with no runnable processes");
  return Runnable.back();
}

namespace {

/// A message in flight.
struct Message {
  std::int64_t Value = 0;
  std::int64_t Tag = 0;
  CfgNodeId SendNode = 0;
  unsigned ChannelSeq = 0;
};

/// One posted non-blocking request.
struct Request {
  bool IsSend = false;
  bool Waited = false;
  CfgNodeId PostNode = 0;
  /// Irecv only: the buffer variable and the source/tag frozen at post
  /// time. Src == -1 encodes the `any` wildcard.
  std::string Var;
  int Src = -1;
  std::int64_t Tag = 0;
};

/// Per-process execution state.
struct ProcState {
  CfgNodeId Node = 0;
  std::map<std::string, std::int64_t> Vars;
  unsigned InputReads = 0;
  bool Blocked = false;
  /// Live request table, keyed by handle name.
  std::map<std::string, Request> Requests;
  /// Handle names in posting order (waitall completes in this order).
  std::vector<std::string> PostOrder;
  /// Buffer variables with an irecv in flight: touching one is a race.
  std::set<std::string> InFlightBuffers;
};

class Machine {
public:
  Machine(const Cfg &Graph, const RunOptions &Opts, Scheduler &Sched)
      : Graph(Graph), Opts(Opts), Sched(Sched) {}

  RunResult run() {
    assert(Opts.NumProcs >= 1 && "need at least one process");
    const int NP = Opts.NumProcs;
    Procs.assign(NP, ProcState());
    Result.Prints.assign(NP, {});
    for (int Rank = 0; Rank < NP; ++Rank) {
      ProcState &P = Procs[Rank];
      P.Node = Graph.entryId();
      P.Vars["id"] = Rank;
      P.Vars["np"] = NP;
      for (const auto &[Name, Value] : Opts.Params)
        P.Vars[Name] = Value;
    }

    std::uint64_t Steps = 0;
    for (;;) {
      std::vector<int> Runnable = runnableRanks();
      if (Runnable.empty())
        return finish();
      if (++Steps > Opts.MaxSteps) {
        Result.Status = RunStatus::StepLimit;
        Result.Error = "step limit exceeded";
        return harvest();
      }
      int Rank = Sched.pick(Runnable);
      if (!step(Rank))
        return harvest();
    }
  }

private:
  std::vector<int> runnableRanks() const {
    std::vector<int> Runnable;
    for (int Rank = 0; Rank < Opts.NumProcs; ++Rank) {
      const ProcState &P = Procs[Rank];
      if (Graph.node(P.Node).isExit())
        continue;
      if (P.Blocked && !recvReady(Rank))
        continue;
      Runnable.push_back(Rank);
    }
    return Runnable;
  }

  /// True if the head of channel \p Src -> \p Rank is a message with tag
  /// \p WantTag. Strict FIFO: only the channel head may match; a tag
  /// mismatch at the head blocks the receiver forever (the tag-mismatch
  /// bug shows up as a deadlock plus a leak).
  bool headMatches(int Src, int Rank, std::int64_t WantTag) const {
    auto It = Channels.find({Src, Rank});
    return It != Channels.end() && !It->second.empty() &&
           It->second.front().Tag == WantTag;
  }

  /// Sender ranks whose channel head is eligible for a wildcard receive on
  /// \p Rank with tag \p WantTag, ascending.
  std::vector<int> eligibleSenders(int Rank, std::int64_t WantTag) const {
    std::vector<int> Eligible;
    for (int Src = 0; Src < Opts.NumProcs; ++Src)
      if (headMatches(Src, Rank, WantTag))
        Eligible.push_back(Src);
    return Eligible;
  }

  /// True if the irecv behind \p R (un-waited) can complete now.
  bool irecvReady(int Rank, const Request &R) const {
    if (R.Src < 0)
      return !eligibleSenders(Rank, R.Tag).empty();
    return headMatches(R.Src, Rank, R.Tag);
  }

  /// True if the blocked receive/wait of \p Rank can complete now.
  bool recvReady(int Rank) const {
    const ProcState &P = Procs[Rank];
    const CfgNode &N = Graph.node(P.Node);
    switch (N.Kind) {
    case CfgNodeKind::Recv: {
      std::int64_t WantTag = 0;
      if (N.Tag) {
        auto Tag = evalIn(Rank, N.Tag);
        if (!Tag)
          return true; // Error path.
        WantTag = *Tag;
      }
      if (!N.Partner) // Wildcard: any eligible channel head unblocks.
        return !eligibleSenders(Rank, WantTag).empty();
      auto Src = evalIn(Rank, N.Partner);
      if (!Src || *Src < 0 || *Src >= Opts.NumProcs)
        return true; // Let step() surface the error.
      return headMatches(static_cast<int>(*Src), Rank, WantTag);
    }
    case CfgNodeKind::Wait: {
      auto It = P.Requests.find(N.Req);
      if (It == P.Requests.end() || It->second.Waited ||
          It->second.IsSend)
        return true; // Error or no-op path; step() handles it.
      return irecvReady(Rank, It->second);
    }
    case CfgNodeKind::Waitall: {
      // Runnable iff some incomplete irecv can make progress (step()
      // completes every ready request, so "nothing ready" means blocked).
      bool AnyIncomplete = false;
      for (const std::string &Name : P.PostOrder) {
        auto It = P.Requests.find(Name);
        if (It == P.Requests.end() || It->second.Waited ||
            It->second.IsSend)
          continue;
        AnyIncomplete = true;
        if (irecvReady(Rank, It->second))
          return true;
      }
      return !AnyIncomplete;
    }
    default:
      csdf_unreachable("blocked on a non-blocking node");
    }
  }

  std::optional<std::int64_t> evalIn(int Rank, const Expr *E) const {
    const ProcState &P = Procs[Rank];
    if (const auto *In = dyn_cast<InputExpr>(E)) {
      (void)In;
      // input() handled by caller via takeInput(); plain eval fails.
    }
    return evalExpr(E, [&P](const std::string &Name) {
      auto It = P.Vars.find(Name);
      return It == P.Vars.end() ? std::optional<std::int64_t>()
                                : std::optional<std::int64_t>(It->second);
    });
  }

  /// Evaluates \p E servicing input() reads from the provider. Only used
  /// where the language allows input() (right-hand sides of assignments and
  /// printed/sent values); partner expressions reject input() in Sema.
  std::optional<std::int64_t> evalWithInput(int Rank, const Expr *E) {
    if (isa<InputExpr>(E))
      return Opts.Input(Rank, Procs[Rank].InputReads++);
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      auto V = evalWithInput(Rank, U->operand());
      if (!V)
        return std::nullopt;
      return U->op() == UnaryOp::Neg ? -*V
                                     : static_cast<std::int64_t>(*V == 0);
    }
    if (const auto *B = dyn_cast<BinaryExpr>(E)) {
      if (containsInput(B->lhs()) || containsInput(B->rhs())) {
        auto L = evalWithInput(Rank, B->lhs());
        if (!L)
          return std::nullopt;
        auto R = evalWithInput(Rank, B->rhs());
        if (!R)
          return std::nullopt;
        // Rebuild via a tiny environment trick: evaluate operator on L, R.
        switch (B->op()) {
        case BinaryOp::Add:
          return *L + *R;
        case BinaryOp::Sub:
          return *L - *R;
        case BinaryOp::Mul:
          return *L * *R;
        case BinaryOp::Div:
          return *R == 0 ? std::optional<std::int64_t>() : *L / *R;
        case BinaryOp::Mod:
          return *R == 0 ? std::optional<std::int64_t>() : *L % *R;
        case BinaryOp::Eq:
          return static_cast<std::int64_t>(*L == *R);
        case BinaryOp::Ne:
          return static_cast<std::int64_t>(*L != *R);
        case BinaryOp::Lt:
          return static_cast<std::int64_t>(*L < *R);
        case BinaryOp::Le:
          return static_cast<std::int64_t>(*L <= *R);
        case BinaryOp::Gt:
          return static_cast<std::int64_t>(*L > *R);
        case BinaryOp::Ge:
          return static_cast<std::int64_t>(*L >= *R);
        case BinaryOp::And:
          return static_cast<std::int64_t>(*L != 0 && *R != 0);
        case BinaryOp::Or:
          return static_cast<std::int64_t>(*L != 0 || *R != 0);
        }
        csdf_unreachable("unhandled BinaryOp");
      }
    }
    return evalIn(Rank, E);
  }

  bool fail(RunStatus Status, const std::string &Msg) {
    Result.Status = Status;
    Result.Error = Msg;
    return false;
  }

  /// Returns a variable read by \p E that has an irecv in flight on
  /// \p Rank, if any (a buffer race).
  std::optional<std::string> racyRead(int Rank, const Expr *E) const {
    if (!E || Procs[Rank].InFlightBuffers.empty())
      return std::nullopt;
    std::set<std::string> Vars;
    collectVars(E, Vars);
    for (const std::string &V : Vars)
      if (Procs[Rank].InFlightBuffers.count(V))
        return V;
    return std::nullopt;
  }

  /// Fails with a buffer-race EvalError if any of \p Reads reads, or
  /// \p Write writes, a variable with an irecv in flight on \p Rank.
  /// Returns true if the node is race-free.
  bool checkRaces(int Rank, std::initializer_list<const Expr *> Reads,
                  const std::string &Write = "") {
    ProcState &P = Procs[Rank];
    for (const Expr *E : Reads)
      if (auto V = racyRead(Rank, E))
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) + ": buffer race: '" +
                        *V + "' is read while an irecv into it is in "
                             "flight, at " +
                        Graph.nodeLabel(P.Node));
    if (!Write.empty() && P.InFlightBuffers.count(Write))
      return fail(RunStatus::EvalError,
                  "rank " + std::to_string(Rank) + ": buffer race: '" +
                      Write + "' is written while an irecv into it is in "
                              "flight, at " +
                      Graph.nodeLabel(P.Node));
    return true;
  }

  /// Completes the irecv behind request \p R on \p Rank if a message
  /// matches now: pops it, writes the buffer, unmarks it and records the
  /// trace event (anchored at the posting irecv node). Returns false if
  /// nothing matched (the caller blocks).
  bool completeIrecv(int Rank, Request &R) {
    ProcState &P = Procs[Rank];
    int Src = R.Src;
    if (Src < 0) {
      std::vector<int> Eligible = eligibleSenders(Rank, R.Tag);
      if (Eligible.empty())
        return false;
      if (Eligible.size() > 1)
        Result.NondetWitnesses.push_back({Rank, R.PostNode, Eligible});
      Src = Eligible.front();
    } else if (!headMatches(Src, Rank, R.Tag)) {
      return false;
    }
    auto &Channel = Channels[{Src, Rank}];
    Message Msg = Channel.front();
    Channel.pop_front();
    P.Vars[R.Var] = Msg.Value;
    P.InFlightBuffers.erase(R.Var);
    R.Waited = true;
    Result.Trace.push_back({Src, Rank, Msg.SendNode, R.PostNode, Msg.Value,
                            Msg.Tag, Msg.ChannelSeq});
    return true;
  }

  /// Records the posting of request \p Req at the current node of
  /// \p Rank, reporting a leak if it abandons a still-outstanding
  /// posting.
  void postRequest(int Rank, const std::string &Req, Request R) {
    ProcState &P = Procs[Rank];
    auto It = P.Requests.find(Req);
    if (It != P.Requests.end() && !It->second.Waited) {
      Result.RequestLeaks.push_back({Rank, It->second.PostNode, Req});
      if (!It->second.IsSend)
        P.InFlightBuffers.erase(It->second.Var);
    }
    if (It == P.Requests.end())
      P.PostOrder.push_back(Req);
    P.Requests[Req] = std::move(R);
  }

  /// Executes one node on \p Rank. Returns false to abort the run.
  bool step(int Rank) {
    ProcState &P = Procs[Rank];
    const CfgNode &N = Graph.node(P.Node);
    switch (N.Kind) {
    case CfgNodeKind::Entry:
    case CfgNodeKind::Skip:
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    case CfgNodeKind::Exit:
      csdf_unreachable("stepping a process at exit");
    case CfgNodeKind::Assign: {
      if (!checkRaces(Rank, {N.Value}, N.Var))
        return false;
      auto V = evalWithInput(Rank, N.Value);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      P.Vars[N.Var] = *V;
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Branch: {
      if (!checkRaces(Rank, {N.Cond}))
        return false;
      auto V = evalIn(Rank, N.Cond);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      P.Node = Graph.branchSuccessor(P.Node, *V != 0);
      return true;
    }
    case CfgNodeKind::Assume:
    case CfgNodeKind::Assert: {
      if (!checkRaces(Rank, {N.Cond}))
        return false;
      auto V = evalIn(Rank, N.Cond);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      if (*V == 0)
        return fail(RunStatus::AssertFailed,
                    "rank " + std::to_string(Rank) + ": " +
                        cfgNodeKindName(N.Kind) + " violated at " +
                        Graph.nodeLabel(P.Node));
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Print: {
      if (!checkRaces(Rank, {N.Value}))
        return false;
      auto V = evalWithInput(Rank, N.Value);
      if (!V)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      Result.Prints[Rank].push_back(*V);
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Send: {
      if (!checkRaces(Rank, {N.Value, N.Partner, N.Tag}))
        return false;
      auto Dest = evalIn(Rank, N.Partner);
      auto Value = evalWithInput(Rank, N.Value);
      std::optional<std::int64_t> Tag = 0;
      if (N.Tag)
        Tag = evalIn(Rank, N.Tag);
      if (!Dest || !Value || !Tag)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      if (*Dest < 0 || *Dest >= Opts.NumProcs)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": send to invalid rank " + std::to_string(*Dest));
      auto &Channel = Channels[{Rank, static_cast<int>(*Dest)}];
      auto &Sent = SentCount[{Rank, static_cast<int>(*Dest)}];
      Channel.push_back({*Value, *Tag, P.Node, Sent++});
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Recv: {
      if (!checkRaces(Rank, {N.Partner, N.Tag}, N.Var))
        return false;
      std::int64_t WantTag = 0;
      if (N.Tag) {
        auto Tag = evalIn(Rank, N.Tag);
        if (!Tag)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": evaluation failed at " +
                          Graph.nodeLabel(P.Node));
        WantTag = *Tag;
      }
      int Src;
      if (!N.Partner) {
        // Wildcard: deliver from the lowest eligible sender; a match with
        // several eligible senders is recorded as nondeterminism.
        std::vector<int> Eligible = eligibleSenders(Rank, WantTag);
        if (Eligible.empty()) {
          P.Blocked = true;
          return true;
        }
        if (Eligible.size() > 1)
          Result.NondetWitnesses.push_back({Rank, P.Node, Eligible});
        Src = Eligible.front();
      } else {
        auto S = evalIn(Rank, N.Partner);
        if (!S)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": evaluation failed at " +
                          Graph.nodeLabel(P.Node));
        if (*S < 0 || *S >= Opts.NumProcs)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": recv from invalid rank " + std::to_string(*S));
        Src = static_cast<int>(*S);
        if (!headMatches(Src, Rank, WantTag)) {
          P.Blocked = true;
          return true;
        }
      }
      auto &Channel = Channels[{Src, Rank}];
      Message Msg = Channel.front();
      Channel.pop_front();
      P.Vars[N.Var] = Msg.Value;
      P.Blocked = false;
      Result.Trace.push_back({Src, Rank, Msg.SendNode, P.Node, Msg.Value,
                              Msg.Tag, Msg.ChannelSeq});
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Isend: {
      if (!checkRaces(Rank, {N.Value, N.Partner, N.Tag}))
        return false;
      auto Dest = evalIn(Rank, N.Partner);
      auto Value = evalWithInput(Rank, N.Value);
      std::optional<std::int64_t> Tag = 0;
      if (N.Tag)
        Tag = evalIn(Rank, N.Tag);
      if (!Dest || !Value || !Tag)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": evaluation failed at " + Graph.nodeLabel(P.Node));
      if (*Dest < 0 || *Dest >= Opts.NumProcs)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": isend to invalid rank " + std::to_string(*Dest));
      // The message enters the channel at post time (sends are
      // non-blocking in the model); the request only tracks completion.
      auto &Channel = Channels[{Rank, static_cast<int>(*Dest)}];
      auto &Sent = SentCount[{Rank, static_cast<int>(*Dest)}];
      Channel.push_back({*Value, *Tag, P.Node, Sent++});
      Request R;
      R.IsSend = true;
      R.PostNode = P.Node;
      postRequest(Rank, N.Req, std::move(R));
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Irecv: {
      if (!checkRaces(Rank, {N.Partner, N.Tag}, N.Var))
        return false;
      int Src = -1;
      if (N.Partner) {
        auto S = evalIn(Rank, N.Partner);
        if (!S)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": evaluation failed at " +
                          Graph.nodeLabel(P.Node));
        if (*S < 0 || *S >= Opts.NumProcs)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": irecv from invalid rank " +
                          std::to_string(*S));
        Src = static_cast<int>(*S);
      }
      std::int64_t Tag = 0;
      if (N.Tag) {
        auto T = evalIn(Rank, N.Tag);
        if (!T)
          return fail(RunStatus::EvalError,
                      "rank " + std::to_string(Rank) +
                          ": evaluation failed at " +
                          Graph.nodeLabel(P.Node));
        Tag = *T;
      }
      Request R;
      R.PostNode = P.Node;
      R.Var = N.Var;
      R.Src = Src;
      R.Tag = Tag;
      postRequest(Rank, N.Req, std::move(R));
      P.InFlightBuffers.insert(N.Var);
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Wait: {
      auto It = P.Requests.find(N.Req);
      if (It == P.Requests.end())
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": wait on never-posted request '" + N.Req + "'");
      Request &R = It->second;
      if (R.Waited)
        return fail(RunStatus::EvalError,
                    "rank " + std::to_string(Rank) +
                        ": double wait on request '" + N.Req + "'");
      if (!R.IsSend && !completeIrecv(Rank, R)) {
        P.Blocked = true;
        return true;
      }
      R.Waited = true;
      P.Blocked = false;
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    case CfgNodeKind::Waitall: {
      bool AllDone = true;
      for (const std::string &Name : P.PostOrder) {
        auto It = P.Requests.find(Name);
        if (It == P.Requests.end() || It->second.Waited)
          continue;
        Request &R = It->second;
        if (R.IsSend || completeIrecv(Rank, R))
          R.Waited = true;
        else
          AllDone = false;
      }
      if (!AllDone) {
        P.Blocked = true;
        return true;
      }
      P.Blocked = false;
      P.Node = Graph.soleSuccessor(P.Node);
      return true;
    }
    }
    csdf_unreachable("unhandled CfgNodeKind");
  }

  /// No process is runnable: either everyone finished or we deadlocked.
  RunResult finish() {
    bool AllDone = true;
    for (int Rank = 0; Rank < Opts.NumProcs; ++Rank) {
      if (!Graph.node(Procs[Rank].Node).isExit()) {
        AllDone = false;
        Result.BlockedRanks.push_back(Rank);
      }
    }
    if (!AllDone) {
      Result.Status = RunStatus::Deadlock;
      Result.Error = "deadlock: " +
                     std::to_string(Result.BlockedRanks.size()) +
                     " process(es) blocked on receives";
    }
    return harvest();
  }

  RunResult harvest() {
    for (auto &[Key, Channel] : Channels)
      for (const Message &Msg : Channel)
        Result.Leaks.push_back(
            {Key.first, Key.second, Msg.SendNode, Msg.Value, Msg.Tag});
    for (int Rank = 0; Rank < static_cast<int>(Procs.size()); ++Rank) {
      const ProcState &P = Procs[Rank];
      for (const std::string &Name : P.PostOrder) {
        auto It = P.Requests.find(Name);
        if (It != P.Requests.end() && !It->second.Waited)
          Result.RequestLeaks.push_back({Rank, It->second.PostNode, Name});
      }
    }
    Result.FinalVars.reserve(Procs.size());
    for (ProcState &P : Procs)
      Result.FinalVars.push_back(std::move(P.Vars));
    return std::move(Result);
  }

  const Cfg &Graph;
  const RunOptions &Opts;
  Scheduler &Sched;
  std::vector<ProcState> Procs;
  std::map<std::pair<int, int>, std::deque<Message>> Channels;
  std::map<std::pair<int, int>, unsigned> SentCount;
  RunResult Result;
};

} // namespace

RunResult csdf::runProgram(const Cfg &Graph, const RunOptions &Opts,
                           Scheduler &Sched) {
  Machine M(Graph, Opts, Sched);
  return M.run();
}

RunResult csdf::runProgram(const Cfg &Graph, const RunOptions &Opts) {
  RoundRobinScheduler Sched;
  return runProgram(Graph, Opts, Sched);
}
