//===- topology/CommTopology.h - Communication topology reporting -------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consumers of the analysis result: validation of the statically matched
/// topology against a concrete interpreter trace (the exactness check),
/// classification of matched send/receive pairs into the communication
/// patterns the paper names (broadcast/scatter, gather, exchange-with-root,
/// nearest-neighbor shifts, cartesian transpose), and Graphviz export.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_TOPOLOGY_COMMTOPOLOGY_H
#define CSDF_TOPOLOGY_COMMTOPOLOGY_H

#include "cfg/Cfg.h"
#include "interp/Interpreter.h"
#include "pcfg/AnalysisResult.h"

#include <string>
#include <vector>

namespace csdf {

/// The communication pattern shapes the paper discusses.
enum class PatternKind {
  RootScatter,   ///< A root sends one message to every other process.
  RootGather,    ///< Every other process sends one message to a root.
  ShiftRight,    ///< send -> id+k / recv <- id-k with k > 0.
  ShiftLeft,     ///< send -> id-k / recv <- id+k with k > 0.
  TransposeLike, ///< Self-inverse cartesian exchange (same expr both ways).
  PointToPoint,  ///< A single fixed sender/receiver pair.
  Unknown,
};

/// Returns a short name for \p Kind.
const char *patternKindName(PatternKind Kind);

/// One classified matched pair.
struct ClassifiedPattern {
  PatternKind Kind = PatternKind::Unknown;
  CfgNodeId SendNode = 0;
  CfgNodeId RecvNode = 0;
  std::string Description;
};

/// Classifies every matched (send, recv) node pair of \p Result.
std::vector<ClassifiedPattern> classifyMatches(const Cfg &Graph,
                                               const AnalysisResult &Result);

/// True when the classified pairs contain both a RootScatter and a
/// RootGather — the mdcask exchange-with-root composition of Figure 1.
bool hasExchangeWithRoot(const std::vector<ClassifiedPattern> &Patterns);

/// Result of validating static matches against a dynamic trace.
struct ValidationReport {
  bool Exact = false;
  /// Dynamic (send, recv) node pairs with no static counterpart —
  /// soundness violations (must be empty when the analysis converged).
  std::vector<std::pair<CfgNodeId, CfgNodeId>> MissedPairs;
  /// Static pairs never observed dynamically at this np — imprecision or
  /// np-dependent dead code.
  std::vector<std::pair<CfgNodeId, CfgNodeId>> UnobservedPairs;

  std::string str(const Cfg &Graph) const;
};

/// Compares the statically matched node pairs against the trace of a
/// concrete run.
ValidationReport validateTopology(const AnalysisResult &Result,
                                  const RunResult &Run);

/// Renders the matched topology as a DOT digraph over the program's
/// communication statements.
std::string topologyToDot(const Cfg &Graph, const AnalysisResult &Result,
                          const std::string &Name = "topology");

} // namespace csdf

#endif // CSDF_TOPOLOGY_COMMTOPOLOGY_H
