//===- topology/CommTopology.cpp ------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "topology/CommTopology.h"

#include "lang/ExprOps.h"
#include "pcfg/PartnerExpr.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace csdf;

const char *csdf::patternKindName(PatternKind Kind) {
  switch (Kind) {
  case PatternKind::RootScatter:
    return "root-scatter";
  case PatternKind::RootGather:
    return "root-gather";
  case PatternKind::ShiftRight:
    return "shift-right";
  case PatternKind::ShiftLeft:
    return "shift-left";
  case PatternKind::TransposeLike:
    return "transpose-like";
  case PatternKind::PointToPoint:
    return "point-to-point";
  case PatternKind::Unknown:
    return "unknown";
  }
  csdf_unreachable("unhandled PatternKind");
}

namespace {

/// True if \p E mentions an integral division or modulus — the signature
/// of a cartesian (grid) rank computation.
bool usesDivOrMod(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::Input:
    return false;
  case Expr::Kind::Unary:
    return usesDivOrMod(cast<UnaryExpr>(E)->operand());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::Div || B->op() == BinaryOp::Mod)
      return true;
    return usesDivOrMod(B->lhs()) || usesDivOrMod(B->rhs());
  }
  }
  csdf_unreachable("unhandled Expr::Kind");
}

ClassifiedPattern classifyPair(const Cfg &Graph, CfgNodeId SendId,
                               CfgNodeId RecvId) {
  const CfgNode &Send = Graph.node(SendId);
  const CfgNode &Recv = Graph.node(RecvId);
  ClassifiedPattern P;
  P.SendNode = SendId;
  P.RecvNode = RecvId;

  // Wildcard (`any`-source) receive: there is no source expression to
  // classify against; the match was proved unique by the engine.
  if (!Recv.Partner) {
    auto DestConst = foldConstant(Send.Partner);
    P.Kind = DestConst ? PatternKind::PointToPoint : PatternKind::Unknown;
    P.Description =
        "any-source receive matched with send to " +
        exprToString(Send.Partner);
    return P;
  }

  auto DestShift = matchIdPlusC(Send.Partner);
  auto SrcShift = matchIdPlusC(Recv.Partner);
  if (DestShift && SrcShift && *DestShift + *SrcShift == 0 &&
      *DestShift != 0) {
    P.Kind = *DestShift > 0 ? PatternKind::ShiftRight : PatternKind::ShiftLeft;
    P.Description = "neighbor shift by " + std::to_string(*DestShift);
    return P;
  }

  bool DestOnId = dependsOnId(Send.Partner);
  bool SrcOnId = dependsOnId(Recv.Partner);
  if (DestOnId && SrcOnId && exprEquals(Send.Partner, Recv.Partner) &&
      usesDivOrMod(Send.Partner)) {
    P.Kind = PatternKind::TransposeLike;
    P.Description =
        "self-inverse cartesian exchange via " + exprToString(Send.Partner);
    return P;
  }

  auto DestConst = foldConstant(Send.Partner);
  auto SrcConst = foldConstant(Recv.Partner);
  if (DestConst && SrcConst) {
    P.Kind = PatternKind::PointToPoint;
    P.Description = "fixed pair " + std::to_string(*SrcConst) + " -> " +
                    std::to_string(*DestConst);
    return P;
  }
  if (SrcConst && !DestOnId) {
    // Receivers take from a fixed root; the root addresses them through a
    // varying (loop) expression: one-to-many distribution.
    P.Kind = PatternKind::RootScatter;
    P.Description = "root " + std::to_string(*SrcConst) +
                    " sends to varying ranks (" +
                    exprToString(Send.Partner) + ")";
    return P;
  }
  if (DestConst && !SrcOnId) {
    P.Kind = PatternKind::RootGather;
    P.Description = "varying ranks send to root " +
                    std::to_string(*DestConst) + " (matched via " +
                    exprToString(Recv.Partner) + ")";
    return P;
  }

  P.Kind = PatternKind::Unknown;
  P.Description = "send " + exprToString(Send.Partner) + " / recv " +
                  exprToString(Recv.Partner);
  return P;
}

} // namespace

std::vector<ClassifiedPattern>
csdf::classifyMatches(const Cfg &Graph, const AnalysisResult &Result) {
  std::vector<ClassifiedPattern> Patterns;
  for (const auto &[SendId, RecvId] : Result.matchedNodePairs())
    Patterns.push_back(classifyPair(Graph, SendId, RecvId));
  return Patterns;
}

bool csdf::hasExchangeWithRoot(
    const std::vector<ClassifiedPattern> &Patterns) {
  bool Scatter = false;
  bool Gather = false;
  for (const ClassifiedPattern &P : Patterns) {
    Scatter |= P.Kind == PatternKind::RootScatter;
    Gather |= P.Kind == PatternKind::RootGather;
  }
  return Scatter && Gather;
}

std::string ValidationReport::str(const Cfg &Graph) const {
  std::ostringstream OS;
  OS << (Exact ? "exact" : "inexact");
  for (const auto &[S, R] : MissedPairs)
    OS << "\n  missed: " << Graph.nodeLabel(S) << " -> "
       << Graph.nodeLabel(R);
  for (const auto &[S, R] : UnobservedPairs)
    OS << "\n  unobserved: " << Graph.nodeLabel(S) << " -> "
       << Graph.nodeLabel(R);
  return OS.str();
}

ValidationReport csdf::validateTopology(const AnalysisResult &Result,
                                        const RunResult &Run) {
  ValidationReport Report;
  std::set<std::pair<CfgNodeId, CfgNodeId>> Dynamic;
  for (const TraceEvent &E : Run.Trace)
    Dynamic.insert({E.SendNode, E.RecvNode});
  std::set<std::pair<CfgNodeId, CfgNodeId>> Static =
      Result.matchedNodePairs();

  for (const auto &Pair : Dynamic)
    if (!Static.count(Pair))
      Report.MissedPairs.push_back(Pair);
  for (const auto &Pair : Static)
    if (!Dynamic.count(Pair))
      Report.UnobservedPairs.push_back(Pair);
  Report.Exact = Report.MissedPairs.empty() && Report.UnobservedPairs.empty();
  return Report;
}

std::string csdf::topologyToDot(const Cfg &Graph,
                                const AnalysisResult &Result,
                                const std::string &Name) {
  std::ostringstream OS;
  OS << "digraph " << Name << " {\n";
  OS << "  rankdir=LR;\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  std::set<CfgNodeId> Nodes;
  for (const MatchRecord &M : Result.Matches) {
    Nodes.insert(M.SendNode);
    Nodes.insert(M.RecvNode);
  }
  for (CfgNodeId Id : Nodes) {
    std::string Label = Graph.nodeLabel(Id);
    std::string Escaped;
    for (char C : Label) {
      if (C == '"' || C == '\\')
        Escaped += '\\';
      Escaped += C;
    }
    OS << "  n" << Id << " [label=\"" << Escaped << "\"];\n";
  }
  for (const MatchRecord &M : Result.Matches) {
    std::string Label = M.SenderRange + " -> " + M.ReceiverRange;
    std::string Escaped;
    for (char C : Label) {
      if (C == '"' || C == '\\')
        Escaped += '\\';
      Escaped += C;
    }
    OS << "  n" << M.SendNode << " -> n" << M.RecvNode << " [label=\""
       << Escaped << "\"];\n";
  }
  OS << "}\n";
  return OS.str();
}
