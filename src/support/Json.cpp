//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

using namespace csdf;

namespace {

/// Recursive-descent parser over one in-memory buffer. Depth is bounded so
/// a hostile request line cannot blow the stack.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t N = std::string(Word).size();
    if (Text.compare(Pos, N, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (++Pos >= Text.size())
          break;
        switch (Text[Pos]) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 >= Text.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 1; I <= 4; ++I) {
            char H = Text[Pos + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          Pos += 4;
          // UTF-8 encode the code point (surrogate pairs are passed
          // through as two 3-byte sequences — MPL sources are ASCII, this
          // path exists for protocol robustness, not fidelity).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape character");
        }
        ++Pos;
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
    bool Integral = true;
    if (Pos < Text.size() &&
        (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      while (Pos < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
              Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
    }
    std::string Num = Text.substr(Start, Pos - Start);
    if (Num.empty() || Num == "-")
      return fail("malformed number");
    errno = 0;
    char *End = nullptr;
    if (Integral) {
      long long I = std::strtoll(Num.c_str(), &End, 10);
      if (errno != ERANGE && End == Num.c_str() + Num.size()) {
        Out = JsonValue(static_cast<std::int64_t>(I));
        return true;
      }
      errno = 0; // Overflowed int64: fall through to double.
    }
    double D = std::strtod(Num.c_str(), &End);
    if (errno == ERANGE || End != Num.c_str() + Num.size())
      return fail("malformed number");
    Out = JsonValue(D);
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n') {
      if (!literal("null"))
        return false;
      Out = JsonValue();
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return false;
      Out = JsonValue(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return false;
      Out = JsonValue(false);
      return true;
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      JsonValue::Array A;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        Out = JsonValue(std::move(A));
        return true;
      }
      while (true) {
        JsonValue Elem;
        if (!parseValue(Elem, Depth + 1))
          return false;
        A.push_back(std::move(Elem));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          Out = JsonValue(std::move(A));
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    if (C == '{') {
      ++Pos;
      JsonValue::Object O;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        Out = JsonValue(std::move(O));
        return true;
      }
      while (true) {
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != '"')
          return fail("expected string key in object");
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':' after object key");
        ++Pos;
        JsonValue Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        O[std::move(Key)] = std::move(Member);
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          Out = JsonValue(std::move(O));
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return parseNumber(Out);
    return fail("unexpected character");
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

void writeEscaped(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void writeValue(std::ostringstream &OS, const JsonValue &V) {
  if (V.isNull()) {
    OS << "null";
  } else if (V.isBool()) {
    OS << (V.asBool() ? "true" : "false");
  } else if (V.isInt()) {
    OS << V.asInt();
  } else if (V.isDouble()) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V.asDouble());
    OS << Buf;
  } else if (V.isString()) {
    writeEscaped(OS, V.asString());
  } else if (V.isArray()) {
    OS << '[';
    bool First = true;
    for (const JsonValue &E : V.asArray()) {
      if (!First)
        OS << ',';
      First = false;
      writeValue(OS, E);
    }
    OS << ']';
  } else {
    OS << '{';
    bool First = true;
    for (const auto &[Key, Member] : V.asObject()) {
      if (!First)
        OS << ',';
      First = false;
      writeEscaped(OS, Key);
      OS << ':';
      writeValue(OS, Member);
    }
    OS << '}';
  }
}

} // namespace

std::string JsonValue::str() const {
  std::ostringstream OS;
  writeValue(OS, *this);
  return OS.str();
}

bool csdf::parseJson(const std::string &Text, JsonValue &Out,
                     std::string &Error) {
  return Parser(Text, Error).parse(Out);
}
