//===- support/Store.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Store.h"

#include "support/Fault.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace csdf;
namespace fs = std::filesystem;

std::uint64_t csdf::fnv1a64(const std::string &Data) {
  std::uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

/// Record layout: magic, lengths, checksum over (key + payload), then the
/// raw key and payload bytes. Fixed little-endian integers so a store
/// directory is portable between builds.
constexpr char Magic[4] = {'C', 'S', 'R', '1'};
constexpr size_t HeaderSize = 4 + 4 + 4 + 8;

void putU32(std::string &Out, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

std::uint32_t getU32(const char *P) {
  std::uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(P[I]);
  return V;
}

std::uint64_t getU64(const char *P) {
  std::uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(P[I]);
  return V;
}

bool writeAll(int Fd, const char *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::write(Fd, Data + Off, Size - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

std::string csdf::frameStoreRecord(const std::string &Key,
                                   const std::string &Payload) {
  std::string Rec;
  Rec.reserve(HeaderSize + Key.size() + Payload.size());
  Rec.append(Magic, sizeof(Magic));
  putU32(Rec, static_cast<std::uint32_t>(Key.size()));
  putU32(Rec, static_cast<std::uint32_t>(Payload.size()));
  putU64(Rec, fnv1a64(Key + Payload));
  Rec += Key;
  Rec += Payload;
  return Rec;
}

std::optional<std::string> csdf::unframeStoreRecord(const std::string &Rec,
                                                    const std::string &Key) {
  if (Rec.size() < HeaderSize ||
      std::memcmp(Rec.data(), Magic, sizeof(Magic)) != 0)
    return std::nullopt;
  std::uint64_t KeyLen = getU32(Rec.data() + 4);
  std::uint64_t PayloadLen = getU32(Rec.data() + 8);
  std::uint64_t Checksum = getU64(Rec.data() + 12);
  if (Rec.size() != HeaderSize + KeyLen + PayloadLen)
    return std::nullopt;
  std::string Body = Rec.substr(HeaderSize);
  if (fnv1a64(Body) != Checksum)
    return std::nullopt;
  if (Body.compare(0, KeyLen, Key) != 0)
    return std::nullopt;
  return Body.substr(KeyLen);
}

std::string DiskStore::recordPath(const std::string &Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "e-%016llx.rec",
                static_cast<unsigned long long>(
                    fnv1a64(Opts.Namespace + "\n" + Key)));
  return Opts.Dir + "/" + Name;
}

bool DiskStore::open(std::string &Error) {
  std::error_code Ec;
  fs::create_directories(Opts.Dir, Ec);
  if (FaultInjector::global().shouldFail("store-open-fail"))
    Ec = std::make_error_code(std::errc::permission_denied);
  if (Ec || !fs::is_directory(Opts.Dir)) {
    Error = "cannot open store directory '" + Opts.Dir +
            "': " + (Ec ? Ec.message() : "not a directory");
    return false;
  }

  LiveBytes = 0;
  Entries = 0;
  for (const auto &E : fs::directory_iterator(Opts.Dir, Ec)) {
    if (!E.is_regular_file())
      continue;
    std::string Name = E.path().filename().string();
    if (Name.find(".tmp.") != std::string::npos) {
      // Debris from a writer that died between create and rename.
      fs::remove(E.path(), Ec);
      ++Stats.TempsCleaned;
      continue;
    }
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".rec") == 0) {
      LiveBytes += E.file_size(Ec);
      ++Entries;
    }
  }
  Opened = true;
  return true;
}

void DiskStore::quarantine(const std::string &Path) {
  std::error_code Ec;
  fs::path Dir = fs::path(Opts.Dir) / "quarantine";
  fs::create_directories(Dir, Ec);
  std::uint64_t Size = fs::file_size(Path, Ec);
  fs::rename(Path, Dir / fs::path(Path).filename(), Ec);
  if (Ec) // e.g. quarantine dir uncreatable — never serve the bytes
    fs::remove(Path, Ec);
  ++Stats.Quarantined;
  if (Entries > 0)
    --Entries;
  LiveBytes -= std::min(LiveBytes, Size);
}

std::optional<std::string> DiskStore::get(const std::string &Key) {
  if (!Opened) {
    ++Stats.Misses;
    return std::nullopt;
  }
  std::string Path = recordPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  if (FaultInjector::global().shouldFail("store-read-fail")) {
    ++Stats.ReadFailures;
    ++Stats.Misses;
    return std::nullopt;
  }
  std::string Rec((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    ++Stats.ReadFailures;
    ++Stats.Misses;
    return std::nullopt;
  }
  std::optional<std::string> Payload = unframeStoreRecord(Rec, Key);
  if (!Payload) {
    // Torn, corrupted, or a different key's record (hash collision). A
    // collision is not damage, but quarantining is still the safe move:
    // the record can never answer for this key, and its own key will
    // simply re-analyze once.
    quarantine(Path);
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  // Touch the record so the eviction sweep's mtime order is true LRU,
  // not write order.
  std::error_code Ec;
  fs::last_write_time(Path, fs::file_time_type::clock::now(), Ec);
  return Payload;
}

bool DiskStore::put(const std::string &Key, const std::string &Payload) {
  if (!Opened)
    return false;
  FaultInjector &Faults = FaultInjector::global();
  if (Faults.shouldFail("store-write-fail")) {
    ++Stats.WriteFailures;
    return false;
  }

  std::string Rec = frameStoreRecord(Key, Payload);
  if (Faults.shouldFail("store-corrupt") && !Payload.empty())
    Rec[HeaderSize + Key.size()] ^= 0x40; // flip a payload bit post-checksum

  std::string Final = recordPath(Key);

  if (Faults.shouldFail("store-torn-write")) {
    // Simulate a torn write / lying disk: half the record lands at the
    // final path with no temp+rename protecting it.
    std::ofstream Out(Final, std::ios::binary | std::ios::trunc);
    Out.write(Rec.data(), static_cast<std::streamsize>(Rec.size() / 2));
    Out.close();
    ++Stats.Writes; // the writer believed it succeeded
    return true;
  }

  std::string Tmp = Final + ".tmp." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    ++Stats.WriteFailures;
    return false;
  }
  size_t WriteSize = Rec.size();
  if (Faults.shouldFail("store-short-write"))
    WriteSize /= 2; // truncated but "successful" — read-side must catch
  bool Ok = writeAll(Fd, Rec.data(), WriteSize);
  if (Ok)
    Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  if (Faults.shouldFail("serve-crash-write"))
    ::_exit(137); // process dies between temp write and rename
  if (!Ok || ::rename(Tmp.c_str(), Final.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    ++Stats.WriteFailures;
    return false;
  }

  std::error_code Ec;
  std::uint64_t Size = fs::file_size(Final, Ec);
  LiveBytes += Ec ? Rec.size() : Size;
  ++Entries;
  ++Stats.Writes;
  if (Opts.MaxBytes && LiveBytes > Opts.MaxBytes)
    evictToBudget();
  return true;
}

void DiskStore::evictToBudget() {
  // LRU by mtime: collect (mtime, size, path) for every record and
  // remove oldest-first until comfortably under budget, so back-to-back
  // puts don't each pay a sweep.
  std::uint64_t Target = Opts.MaxBytes - Opts.MaxBytes / 10;
  struct Victim {
    fs::file_time_type MTime;
    std::uint64_t Size;
    fs::path Path;
  };
  std::vector<Victim> Records;
  std::error_code Ec;
  for (const auto &E : fs::directory_iterator(Opts.Dir, Ec)) {
    if (!E.is_regular_file())
      continue;
    std::string Name = E.path().filename().string();
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".rec") == 0)
      Records.push_back({E.last_write_time(Ec), E.file_size(Ec), E.path()});
  }
  std::sort(Records.begin(), Records.end(),
            [](const Victim &A, const Victim &B) {
              return A.MTime < B.MTime;
            });
  for (const Victim &V : Records) {
    if (LiveBytes <= Target)
      break;
    fs::remove(V.Path, Ec);
    if (Ec)
      continue;
    LiveBytes -= std::min(LiveBytes, V.Size);
    if (Entries > 0)
      --Entries;
    ++Stats.Evictions;
  }
}

void DiskStore::sync() {
  if (!Opened)
    return;
  int Fd = ::open(Opts.Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}
