//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's isa<>/cast<>/dyn_cast<> templates for
/// class hierarchies that expose a `static bool classof(const Base *)`
/// predicate. This lets the AST and CFG hierarchies use checked casts without
/// C++ RTTI, matching LLVM idiom.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_CASTING_H
#define CSDF_SUPPORT_CASTING_H

#include <cassert>

namespace csdf {

/// Returns true if \p Val is an instance of type \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Downcast that returns null when \p Val is not a \p To (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace csdf

#endif // CSDF_SUPPORT_CASTING_H
