//===- support/ErrorHandling.h - Fatal error utilities --------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// csdf_unreachable() mirrors llvm_unreachable(): marks code paths that must
/// never execute if program invariants hold.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_ERRORHANDLING_H
#define CSDF_SUPPORT_ERRORHANDLING_H

namespace csdf {

/// Reports a fatal internal error and aborts. Never returns.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

} // namespace csdf

/// Marks a point in the code that should never be reached.
#define csdf_unreachable(MSG)                                                  \
  ::csdf::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // CSDF_SUPPORT_ERRORHANDLING_H
