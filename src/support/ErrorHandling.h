//===- support/ErrorHandling.h - Fatal and recoverable error utilities ----===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// csdf_unreachable() mirrors llvm_unreachable(): marks code paths that must
/// never execute if program invariants hold. By default it aborts, but two
/// RAII helpers change what happens on the way down:
///
///  - RecoveryScope turns reportUnreachable into a thrown EngineError, so an
///    input-reachable invariant violation inside the analysis engine becomes
///    a recoverable InternalError outcome instead of killing the process.
///    This is how one pathological .mpl file is prevented from taking down a
///    batch or an interactive session.
///
///  - CrashContext registers a lazily-formatted context frame (active source
///    file, current pCFG configuration, ...) that reportUnreachable prints —
///    after flushing stdio, so pending diagnostics are not lost — before
///    aborting. Frames cost one thread-local pointer write when nothing
///    crashes.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_ERRORHANDLING_H
#define CSDF_SUPPORT_ERRORHANDLING_H

#include <functional>
#include <stdexcept>
#include <string>

namespace csdf {

/// Reports a fatal internal error. Flushes stdio, prints any active
/// CrashContext frames, and aborts — unless a RecoveryScope is active on
/// this thread, in which case it throws EngineError instead.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// A recoverable internal engine error: an invariant violation reached from
/// user input. Thrown by reportUnreachable under a RecoveryScope; callers
/// (Engine::run, the driver Session) surface it as an `internal-error`
/// diagnostic / InternalError verdict.
class EngineError : public std::runtime_error {
public:
  EngineError(std::string Msg, std::string File, unsigned Line)
      : std::runtime_error(Msg + " (" + File + ":" + std::to_string(Line) +
                           ")"),
        Msg(std::move(Msg)), File(std::move(File)), Line(Line) {}

  const std::string &message() const { return Msg; }
  const std::string &file() const { return File; }
  unsigned line() const { return Line; }

private:
  std::string Msg;
  std::string File;
  unsigned Line;
};

/// While alive, invariant violations on this thread throw EngineError
/// instead of aborting. Scopes nest; recovery stays active until the
/// outermost scope exits. Only install around code prepared to catch
/// EngineError and unwind safely (the analysis engine; NOT arbitrary code
/// holding half-updated global state).
class RecoveryScope {
public:
  RecoveryScope();
  ~RecoveryScope();

  /// True if any RecoveryScope is active on this thread.
  static bool active();

  RecoveryScope(const RecoveryScope &) = delete;
  RecoveryScope &operator=(const RecoveryScope &) = delete;
};

/// Registers a crash-report context frame for this thread. The callback is
/// only invoked if the process is actually about to abort, so it may format
/// freely (it must not itself crash or allocate unboundedly). Frames print
/// innermost-last, prefixed "while ".
class CrashContext {
public:
  CrashContext(std::string Label, std::function<std::string()> Detail);
  explicit CrashContext(std::string Label);
  ~CrashContext();

  CrashContext(const CrashContext &) = delete;
  CrashContext &operator=(const CrashContext &) = delete;

private:
  std::string Label;
  std::function<std::string()> Detail;
  CrashContext *Parent;
  friend void printCrashContexts();
};

} // namespace csdf

/// Marks a point in the code that should never be reached.
#define csdf_unreachable(MSG)                                                  \
  ::csdf::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // CSDF_SUPPORT_ERRORHANDLING_H
