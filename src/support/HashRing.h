//===- support/HashRing.h - Consistent-hash ring over named nodes ---------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consistent-hash ring behind `csdf router`'s shard ownership. Each
/// node (a backend's socket path) is placed on a 64-bit ring at Replicas
/// virtual positions — fnv1a64(name + "#" + i) — and a key is owned by
/// the first node position clockwise of fnv1a64(key). Virtual replicas
/// smooth the key distribution (with R replicas per node the expected
/// per-node load imbalance is O(1/sqrt(R))), and consistency means
/// adding or removing one shard only remaps the keys that shard owned —
/// the property that makes warm shard caches survive fleet resizes.
///
/// successors() yields the distinct-node ownership order for a key: the
/// owner first, then each next-closest node clockwise. The router walks
/// it for shed-aware failover — a dead or overloaded owner's requests go
/// to the ring successor, which is exactly the node that would own the
/// key if the owner were removed, so retried and failed-over requests
/// agree on their destination.
///
/// Deliberately value-typed and unsynchronized: the router rebuilds its
/// view under its own lock; the ring itself is cheap to copy.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_HASHRING_H
#define CSDF_SUPPORT_HASHRING_H

#include <cstdint>
#include <string>
#include <vector>

namespace csdf {

class HashRing {
public:
  /// \p Replicas virtual points per node; 0 is clamped to 1.
  explicit HashRing(unsigned Replicas = 64);

  /// Adds \p Node (idempotent: re-adding an existing name is a no-op).
  void addNode(const std::string &Node);

  /// Removes \p Node and its virtual points (no-op when absent).
  void removeNode(const std::string &Node);

  std::size_t nodeCount() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }

  /// The node owning \p Key, or empty when the ring has no nodes.
  std::string owner(const std::string &Key) const;

  /// Every distinct node in ownership order for \p Key: the owner first,
  /// then each clockwise successor. Size == nodeCount().
  std::vector<std::string> successors(const std::string &Key) const;

private:
  struct Point {
    std::uint64_t Hash;
    std::uint32_t NodeIndex;
  };

  unsigned Replicas;
  std::vector<std::string> Nodes;
  /// Virtual points sorted by hash; rebuilt on membership change
  /// (membership changes are rare, lookups are per-request).
  std::vector<Point> Points;

  void rebuild();
};

} // namespace csdf

#endif // CSDF_SUPPORT_HASHRING_H
