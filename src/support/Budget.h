//===- support/Budget.h - Cooperative analysis resource governor ----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AnalysisBudget bounds the four resources the paper's Section IX profile
/// shows dominate analysis cost: wall-clock time (the fan-out broadcast took
/// 381 s), memory held in DBM state, engine worklist steps, and HSM prover
/// search steps. Budgets are *cooperative*: hot loops poll checkpoint() (or
/// proverStep() in the prover search), which throws BudgetExceeded when a
/// limit trips. The engine catches the exception at the worklist loop and
/// degrades the result to Top with a structured verdict instead of hanging
/// or dying.
///
/// Layers that cannot see AnalysisOptions (numeric core, prover, matcher)
/// reach the active budget through a thread-local installed by BudgetScope
/// for the duration of Engine::run. A null current budget makes every poll
/// a no-op, so standalone use of those layers is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_BUDGET_H
#define CSDF_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace csdf {

/// Which resource bound forced an analysis to give up. `None` is reserved
/// for precision give-ups (the engine's own "cannot prove a match" path)
/// that are not resource exhaustion.
enum class BudgetKind {
  None,        ///< Not a resource limit (precision give-up or no failure).
  States,      ///< AnalysisOptions::MaxStates worklist-step bound.
  Variants,    ///< AnalysisOptions::MaxVariantsPerConfig bound.
  InFlight,    ///< AnalysisOptions::MaxInFlight send-buffer bound.
  ProcSets,    ///< AnalysisOptions::MaxProcSets process-set bound.
  Deadline,    ///< AnalysisBudget wall-clock deadline.
  Memory,      ///< AnalysisBudget DBM memory ceiling.
  ProverSteps, ///< AnalysisBudget HSM prover search-step bound.
};

/// Stable lower-case name for a budget kind ("deadline", "memory", ...).
const char *budgetKindName(BudgetKind Kind);

/// Thrown by AnalysisBudget::checkpoint()/proverStep() when a limit trips.
/// Caught by Engine::run (and the driver Session) and converted into a
/// DegradedToTop outcome; never escapes to the user as an abort.
class BudgetExceeded : public std::runtime_error {
public:
  BudgetExceeded(BudgetKind Kind, std::string Reason)
      : std::runtime_error(Reason), Kind(Kind), Reason(std::move(Reason)) {}

  BudgetKind kind() const { return Kind; }
  const std::string &reason() const { return Reason; }

private:
  BudgetKind Kind;
  std::string Reason;
};

/// Resource limits for one analysis session plus the accounting state used
/// to enforce them. Configure the *Limit fields, call begin() immediately
/// before the analysis starts, then poll checkpoint() from hot loops.
///
/// The budget object must outlive every DBM it has accounted bytes for:
/// DbmShared blocks keep a raw pointer back to the budget and release their
/// bytes on destruction.
class AnalysisBudget {
public:
  /// Wall-clock deadline in milliseconds from begin(); 0 = unlimited.
  std::uint64_t DeadlineMs = 0;
  /// Soft ceiling on live DBM bytes, in megabytes; 0 = unlimited. "Soft"
  /// because accounting covers DBM storage (the dominant allocation, per
  /// Section IX) rather than every byte the process touches.
  std::uint64_t MaxMemoryMb = 0;
  /// HSM prover search-step bound across the whole session; 0 = unlimited.
  std::uint64_t MaxProverSteps = 0;

  /// True when any limit is configured. An unlimited budget never trips:
  /// it is pure accounting, so deterministic-exploration consumers (trace
  /// capture/replay) treat it like no budget at all.
  bool limited() const { return DeadlineMs || MaxMemoryMb || MaxProverSteps; }

  /// Stamps the deadline clock and resets accounting. Call once, just
  /// before the work the budget governs.
  void begin();

  /// True once begin() has been called. The engine begins a not-yet-started
  /// budget itself, so drivers may start the clock earlier (covering
  /// parsing) or leave it to the engine.
  bool started() const { return Started; }

  /// Cheap cooperative poll: checks the deadline (via a sampled steady
  /// clock read) and the memory ceiling. Throws BudgetExceeded on a trip.
  /// Safe to call at loop frequency: the clock is only read once every
  /// ClockSampleInterval calls.
  void checkpoint();

  /// Counts one HSM prover search step; throws BudgetExceeded(ProverSteps)
  /// past MaxProverSteps and samples the deadline like checkpoint().
  void proverStep();

  /// Accounts a change in live DBM bytes (positive on allocation/growth,
  /// negative on release). Growth past MaxMemoryMb does not throw here —
  /// destructors release through this path — it trips the next
  /// checkpoint() instead.
  void accountBytes(std::int64_t Delta);

  /// Live DBM bytes currently accounted.
  std::uint64_t liveBytes() const {
    return LiveBytes.load(std::memory_order_relaxed);
  }
  /// High-water mark of accounted DBM bytes.
  std::uint64_t peakBytes() const {
    return PeakBytes.load(std::memory_order_relaxed);
  }
  /// Prover search steps consumed so far.
  std::uint64_t proverStepsUsed() const {
    return ProverSteps.load(std::memory_order_relaxed);
  }
  /// Milliseconds elapsed since begin().
  std::uint64_t elapsedMs() const;

private:
  void checkDeadline();

  /// How many checkpoint()/proverStep() calls share one clock read.
  static constexpr std::uint32_t ClockSampleInterval = 256;

  std::chrono::steady_clock::time_point Start{};
  bool Started = false;
  /// The counters below are shared by every thread the budget governs —
  /// the engine's parallel drain installs one session budget on all pool
  /// workers via BudgetScope. All of them are heuristics or monotone
  /// accumulators, so relaxed ordering is enough: no other data is
  /// published through them, and a poll that reads a slightly stale value
  /// only delays a trip by one sampling interval.
  std::atomic<std::uint32_t> PollsSinceClockRead{0};
  std::atomic<std::uint64_t> LiveBytes{0};
  std::atomic<std::uint64_t> PeakBytes{0};
  std::atomic<std::uint64_t> ProverSteps{0};
};

/// The budget governing the current thread's analysis, or null. Installed
/// by BudgetScope; polled by layers (numeric closure, matcher, prover)
/// that have no channel to AnalysisOptions.
AnalysisBudget *currentBudget();

/// Installs \p Budget as the thread's current budget for the scope's
/// lifetime, restoring the previous one on exit (scopes nest).
class BudgetScope {
public:
  explicit BudgetScope(AnalysisBudget *Budget);
  ~BudgetScope();

  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

private:
  AnalysisBudget *Previous;
};

/// Polls the thread's current budget, if any. The form hot loops outside
/// the engine use: one predictable branch when no budget is installed.
inline void budgetCheckpoint() {
  if (AnalysisBudget *B = currentBudget())
    B->checkpoint();
}

/// Counts a prover search step against the thread's current budget, if any.
inline void budgetProverStep() {
  if (AnalysisBudget *B = currentBudget())
    B->proverStep();
}

} // namespace csdf

#endif // CSDF_SUPPORT_BUDGET_H
