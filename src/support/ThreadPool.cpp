//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace csdf;

unsigned ThreadPool::hardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  NumWorkers = std::max(1u, NumWorkers);
  Shards.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    // The lock orders the stop flag against workers deciding to sleep:
    // without it a worker could check Stop, then block forever on a
    // notification sent before it reached the wait.
    std::lock_guard<std::mutex> L(IdleM);
    Stop.store(true, std::memory_order_relaxed);
  }
  IdleCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // Tasks still queued are dropped deliberately: by contract, callers that
  // need a task's effect hold a future (or their own latch) and wait for
  // it before tearing the pool down.
}

void ThreadPool::run(std::function<void()> Task) {
  unsigned S = NextShard.fetch_add(1, std::memory_order_relaxed) %
               Shards.size();
  {
    std::lock_guard<std::mutex> L(Shards[S]->M);
    Shards[S]->Tasks.push_back(std::move(Task));
  }
  Queued.fetch_add(1, std::memory_order_release);
  IdleCv.notify_one();
}

bool ThreadPool::popTask(unsigned Me, std::function<void()> &Out) {
  // Own shard first (front: FIFO for cache-warm, in-order pickup) ...
  {
    Shard &S = *Shards[Me];
    std::lock_guard<std::mutex> L(S.M);
    if (!S.Tasks.empty()) {
      Out = std::move(S.Tasks.front());
      S.Tasks.pop_front();
      return true;
    }
  }
  // ... then steal from the back of the other shards, starting after our
  // own so victims are spread across thieves.
  for (size_t Step = 1; Step < Shards.size(); ++Step) {
    Shard &S = *Shards[(Me + Step) % Shards.size()];
    std::lock_guard<std::mutex> L(S.M);
    if (!S.Tasks.empty()) {
      Out = std::move(S.Tasks.back());
      S.Tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerMain(unsigned Me) {
  for (;;) {
    if (Stop.load(std::memory_order_relaxed))
      return;
    std::function<void()> Task;
    if (popTask(Me, Task)) {
      Queued.fetch_sub(1, std::memory_order_relaxed);
      Task();
      continue;
    }
    std::unique_lock<std::mutex> L(IdleM);
    if (Stop.load(std::memory_order_relaxed))
      return;
    IdleCv.wait(L, [this] {
      return Stop.load(std::memory_order_relaxed) ||
             Queued.load(std::memory_order_acquire) > 0;
    });
    if (Stop.load(std::memory_order_relaxed))
      return;
  }
}
