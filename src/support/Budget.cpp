//===- support/Budget.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

using namespace csdf;

const char *csdf::budgetKindName(BudgetKind Kind) {
  switch (Kind) {
  case BudgetKind::None:
    return "none";
  case BudgetKind::States:
    return "states";
  case BudgetKind::Variants:
    return "variants";
  case BudgetKind::InFlight:
    return "in-flight";
  case BudgetKind::ProcSets:
    return "proc-sets";
  case BudgetKind::Deadline:
    return "deadline";
  case BudgetKind::Memory:
    return "memory";
  case BudgetKind::ProverSteps:
    return "prover-steps";
  }
  return "unknown";
}

void AnalysisBudget::begin() {
  Start = std::chrono::steady_clock::now();
  Started = true;
  PollsSinceClockRead = 0;
  LiveBytes = 0;
  PeakBytes = 0;
  ProverSteps = 0;
}

std::uint64_t AnalysisBudget::elapsedMs() const {
  if (!Started)
    return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

void AnalysisBudget::checkDeadline() {
  if (DeadlineMs == 0 || !Started)
    return;
  if (++PollsSinceClockRead < ClockSampleInterval)
    return;
  PollsSinceClockRead = 0;
  std::uint64_t Elapsed = elapsedMs();
  if (Elapsed > DeadlineMs)
    throw BudgetExceeded(BudgetKind::Deadline,
                         "wall-clock deadline of " +
                             std::to_string(DeadlineMs) + " ms exceeded (" +
                             std::to_string(Elapsed) + " ms elapsed)");
}

void AnalysisBudget::checkpoint() {
  checkDeadline();
  if (MaxMemoryMb != 0 && LiveBytes > MaxMemoryMb * 1024 * 1024)
    throw BudgetExceeded(
        BudgetKind::Memory,
        "DBM memory ceiling of " + std::to_string(MaxMemoryMb) +
            " MB exceeded (" + std::to_string(LiveBytes / (1024 * 1024)) +
            " MB live)");
}

void AnalysisBudget::proverStep() {
  ++ProverSteps;
  if (MaxProverSteps != 0 && ProverSteps > MaxProverSteps)
    throw BudgetExceeded(BudgetKind::ProverSteps,
                         "HSM prover search-step budget of " +
                             std::to_string(MaxProverSteps) + " exceeded");
  checkDeadline();
}

void AnalysisBudget::accountBytes(std::int64_t Delta) {
  if (Delta >= 0)
    LiveBytes += static_cast<std::uint64_t>(Delta);
  else {
    std::uint64_t Release = static_cast<std::uint64_t>(-Delta);
    LiveBytes = LiveBytes >= Release ? LiveBytes - Release : 0;
  }
  if (LiveBytes > PeakBytes)
    PeakBytes = LiveBytes;
}

namespace {
thread_local AnalysisBudget *CurrentBudget = nullptr;
} // namespace

AnalysisBudget *csdf::currentBudget() { return CurrentBudget; }

BudgetScope::BudgetScope(AnalysisBudget *Budget) : Previous(CurrentBudget) {
  CurrentBudget = Budget;
}

BudgetScope::~BudgetScope() { CurrentBudget = Previous; }
