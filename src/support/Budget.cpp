//===- support/Budget.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

using namespace csdf;

const char *csdf::budgetKindName(BudgetKind Kind) {
  switch (Kind) {
  case BudgetKind::None:
    return "none";
  case BudgetKind::States:
    return "states";
  case BudgetKind::Variants:
    return "variants";
  case BudgetKind::InFlight:
    return "in-flight";
  case BudgetKind::ProcSets:
    return "proc-sets";
  case BudgetKind::Deadline:
    return "deadline";
  case BudgetKind::Memory:
    return "memory";
  case BudgetKind::ProverSteps:
    return "prover-steps";
  }
  return "unknown";
}

void AnalysisBudget::begin() {
  Start = std::chrono::steady_clock::now();
  Started = true;
  PollsSinceClockRead.store(0, std::memory_order_relaxed);
  LiveBytes.store(0, std::memory_order_relaxed);
  PeakBytes.store(0, std::memory_order_relaxed);
  ProverSteps.store(0, std::memory_order_relaxed);
}

std::uint64_t AnalysisBudget::elapsedMs() const {
  if (!Started)
    return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

void AnalysisBudget::checkDeadline() {
  if (DeadlineMs == 0 || !Started)
    return;
  // Clock-read sampling is a heuristic: under relaxed contention two
  // threads may both reset the counter or both skip a read, which only
  // shifts when the next sample happens.
  if (PollsSinceClockRead.fetch_add(1, std::memory_order_relaxed) + 1 <
      ClockSampleInterval)
    return;
  PollsSinceClockRead.store(0, std::memory_order_relaxed);
  std::uint64_t Elapsed = elapsedMs();
  if (Elapsed > DeadlineMs)
    throw BudgetExceeded(BudgetKind::Deadline,
                         "wall-clock deadline of " +
                             std::to_string(DeadlineMs) + " ms exceeded (" +
                             std::to_string(Elapsed) + " ms elapsed)");
}

void AnalysisBudget::checkpoint() {
  checkDeadline();
  std::uint64_t Live = LiveBytes.load(std::memory_order_relaxed);
  if (MaxMemoryMb != 0 && Live > MaxMemoryMb * 1024 * 1024)
    throw BudgetExceeded(
        BudgetKind::Memory,
        "DBM memory ceiling of " + std::to_string(MaxMemoryMb) +
            " MB exceeded (" + std::to_string(Live / (1024 * 1024)) +
            " MB live)");
}

void AnalysisBudget::proverStep() {
  std::uint64_t Used =
      ProverSteps.fetch_add(1, std::memory_order_relaxed) + 1;
  if (MaxProverSteps != 0 && Used > MaxProverSteps)
    throw BudgetExceeded(BudgetKind::ProverSteps,
                         "HSM prover search-step budget of " +
                             std::to_string(MaxProverSteps) + " exceeded");
  checkDeadline();
}

void AnalysisBudget::accountBytes(std::int64_t Delta) {
  std::uint64_t Live;
  if (Delta >= 0) {
    Live = LiveBytes.fetch_add(static_cast<std::uint64_t>(Delta),
                               std::memory_order_relaxed) +
           static_cast<std::uint64_t>(Delta);
  } else {
    // Clamp-at-zero release: a block accounted before begin() reset the
    // counters may release more than is currently live.
    std::uint64_t Release = static_cast<std::uint64_t>(-Delta);
    std::uint64_t Old = LiveBytes.load(std::memory_order_relaxed);
    while (!LiveBytes.compare_exchange_weak(
        Old, Old >= Release ? Old - Release : 0,
        std::memory_order_relaxed))
      ;
    Live = Old >= Release ? Old - Release : 0;
  }
  std::uint64_t Peak = PeakBytes.load(std::memory_order_relaxed);
  while (Live > Peak &&
         !PeakBytes.compare_exchange_weak(Peak, Live,
                                          std::memory_order_relaxed))
    ;
}

namespace {
thread_local AnalysisBudget *CurrentBudget = nullptr;
} // namespace

AnalysisBudget *csdf::currentBudget() { return CurrentBudget; }

BudgetScope::BudgetScope(AnalysisBudget *Budget) : Previous(CurrentBudget) {
  CurrentBudget = Budget;
}

BudgetScope::~BudgetScope() { CurrentBudget = Previous; }
