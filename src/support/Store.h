//===- support/Store.h - On-disk content-addressed result store -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DiskStore persists (key -> payload) records so an analysis result
/// outlives the process that computed it: `csdf serve --store-dir D`
/// consults memory-LRU -> disk -> cold-analyze, and a `kill -9` +
/// restart is warm instead of empty. The store is deliberately paranoid,
/// because its whole value proposition is surviving failures:
///
///  - **Atomic writes.** A record is written to `<name>.tmp.<pid>`,
///    fsynced, and renamed into place. A crash mid-write leaves a stale
///    temp file (cleaned on the next open()), never a half-record at the
///    final path.
///
///  - **Framed, checksummed records.** Every record carries a magic, the
///    key and payload lengths, and an FNV-1a checksum over both. A torn,
///    truncated, or bit-flipped record is detected on read, counted, and
///    *quarantined* — renamed into `<dir>/quarantine/` so it can never be
///    served and the bytes stay available for postmortems.
///
///  - **Exact keys.** File names are a 64-bit hash of (namespace + key),
///    but the full key is stored in the record and compared on read, so
///    a hash collision degrades to a miss, never to wrong bytes. The
///    namespace (serve passes the tool version) keeps records written by
///    one build from answering for another whose verdicts may differ.
///
///  - **Budgeted eviction.** Live bytes are tracked; when a put pushes
///    the store past MaxBytes, an LRU-by-mtime sweep evicts records
///    until the store is back under ~90% of budget.
///
/// Failure paths are exercised deliberately via support/Fault.h sites
/// (`store-*`, `serve-crash-write`), not hoped-for.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_STORE_H
#define CSDF_SUPPORT_STORE_H

#include <cstdint>
#include <optional>
#include <string>

namespace csdf {

/// FNV-1a 64-bit over \p Data — the store's record checksum and file-name
/// hash. Stable across platforms/builds by construction (pure integer
/// arithmetic, no layout dependence), which the on-disk format requires.
std::uint64_t fnv1a64(const std::string &Data);

/// Frames (\p Key -> \p Payload) as one on-disk record: magic "CSR1",
/// little-endian key/payload lengths, an FNV-1a checksum over both, then
/// the raw bytes. This is the store's record format, exported so other
/// durable artifacts (numeric/MemoSnapshot) share one framing and one
/// corruption story instead of inventing a second container.
std::string frameStoreRecord(const std::string &Key,
                             const std::string &Payload);

/// Parses \p Rec against \p Key. Returns the payload, or nullopt when the
/// record is torn, corrupted, or carries a different key.
std::optional<std::string> unframeStoreRecord(const std::string &Rec,
                                              const std::string &Key);

/// Store behaviour knobs.
struct DiskStoreOptions {
  /// Root directory; created (one level) by open() if missing.
  std::string Dir;

  /// Live-byte budget; a put that crosses it triggers an eviction sweep.
  /// 0 means unbudgeted.
  std::uint64_t MaxBytes = 256ull << 20;

  /// Key-space salt, stored and verified with every record. `csdf serve`
  /// passes the tool version so stale-build records never hit.
  std::string Namespace;
};

/// Store-lifetime counters, surfaced through `csdf serve` stats as the
/// disk tier's distinct accounting.
struct DiskStoreStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Writes = 0;
  /// Puts that failed before a record reached its final path (IO error,
  /// injected fault). Never fatal: the caller just stays uncached.
  std::uint64_t WriteFailures = 0;
  /// Gets that failed at the syscall level (not: absent or corrupt).
  std::uint64_t ReadFailures = 0;
  /// Records detected torn/corrupted/mismatched and moved to quarantine/.
  std::uint64_t Quarantined = 0;
  /// Records removed by the byte-budget sweep.
  std::uint64_t Evictions = 0;
  /// Stale temp files removed by open() (crash debris).
  std::uint64_t TempsCleaned = 0;
};

/// A content-addressed (key -> payload) store over one directory. Not
/// internally synchronized: `csdf serve` serializes request handling, and
/// that single-writer discipline is this class's concurrency contract.
class DiskStore {
public:
  explicit DiskStore(DiskStoreOptions Opts) : Opts(std::move(Opts)) {}

  /// Creates the directory if needed, removes stale `*.tmp.*` debris from
  /// crashed writers, and sums live bytes. Returns false with \p Error on
  /// an unusable directory.
  bool open(std::string &Error);

  /// Looks up \p Key. A torn/corrupt/mismatched record is quarantined and
  /// reported as a miss.
  std::optional<std::string> get(const std::string &Key);

  /// Writes (\p Key -> \p Payload) atomically. Returns false when the
  /// record could not be persisted; the store stays consistent either way.
  bool put(const std::string &Key, const std::string &Payload);

  /// Best-effort directory fsync so renames are durable; `csdf serve`
  /// calls this on graceful shutdown.
  void sync();

  const DiskStoreStats &stats() const { return Stats; }
  std::uint64_t liveBytes() const { return LiveBytes; }
  std::uint64_t entryCount() const { return Entries; }
  const std::string &dir() const { return Opts.Dir; }

private:
  std::string recordPath(const std::string &Key) const;
  void quarantine(const std::string &Path);
  void evictToBudget();

  DiskStoreOptions Opts;
  DiskStoreStats Stats;
  std::uint64_t LiveBytes = 0;
  std::uint64_t Entries = 0;
  bool Opened = false;
};

} // namespace csdf

#endif // CSDF_SUPPORT_STORE_H
