//===- support/Version.h - Tool version identity --------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single definition of the tool's version string. Every surface that
/// stamps output with a version — `csdf analyze --format json`, the serve
/// daemon, the LSP server's serverInfo — reads it from here, so cached or
/// recorded results can always be traced back to the build that produced
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_VERSION_H
#define CSDF_SUPPORT_VERSION_H

#define CSDF_VERSION_MAJOR 0
#define CSDF_VERSION_MINOR 7
#define CSDF_VERSION_PATCH 0

namespace csdf {

/// "major.minor.patch", e.g. "0.7.0".
inline const char *toolVersion() { return "0.7.0"; }

} // namespace csdf

#endif // CSDF_SUPPORT_VERSION_H
