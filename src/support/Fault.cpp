//===- support/Fault.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include <cstdlib>

using namespace csdf;

FaultInjector &FaultInjector::global() {
  static FaultInjector Injector;
  return Injector;
}

const std::vector<FaultSiteInfo> &FaultInjector::knownSites() {
  static const std::vector<FaultSiteInfo> Catalog = {
      {"store-open-fail", "DiskStore::open fails as if the directory were "
                          "uncreatable"},
      {"store-write-fail", "a store put() fails cleanly before the record "
                           "reaches disk (counts a write failure; the "
                           "response is unaffected)"},
      {"store-short-write", "the record's temp file is truncated to half "
                            "its bytes before the atomic rename — the "
                            "framing must catch it on read"},
      {"store-torn-write", "the record is written truncated *directly* at "
                           "its final path, bypassing temp+rename — "
                           "simulates a torn write/lying disk; read must "
                           "quarantine"},
      {"store-corrupt", "one payload byte is flipped after the checksum "
                        "is computed — read must detect the mismatch and "
                        "quarantine"},
      {"store-read-fail", "a store get() fails as if the read syscall "
                          "errored; treated as a miss"},
      {"serve-crash-write", "the process _exits mid-write, after the temp "
                            "file exists but before the rename — a "
                            "restart must see an intact store and clean "
                            "the temp"},
      {"serve-crash-response", "the process _exits after handling a "
                               "request but before the response line is "
                               "written — the client sees EOF and must "
                               "treat it as retryable"},
  };
  return Catalog;
}

bool FaultInjector::isKnownSite(const std::string &Name) {
  for (const FaultSiteInfo &S : knownSites())
    if (Name == S.Name)
      return true;
  return false;
}

bool FaultInjector::configure(const std::string &Spec, std::string &Error) {
  std::map<std::string, Arm> Parsed;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Token = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Token.empty())
      continue;

    Arm A;
    std::string Name = Token;
    size_t Colon = Token.find(':');
    if (Colon != std::string::npos) {
      Name = Token.substr(0, Colon);
      std::string Count = Token.substr(Colon + 1);
      if (!Count.empty() && Count.back() == '+') {
        A.AndAfter = true;
        Count.pop_back();
      }
      char *End = nullptr;
      A.Nth = std::strtoull(Count.c_str(), &End, 10);
      if (Count.empty() || *End != '\0' || A.Nth == 0) {
        Error = "bad fault count in '" + Token +
                "' (expected site, site:N, or site:N+)";
        return false;
      }
    }
    if (!isKnownSite(Name)) {
      Error = "unknown fault site '" + Name + "'";
      return false;
    }
    Parsed[Name] = A;
  }
  Sites = std::move(Parsed);
  Fired = 0;
  return true;
}

bool FaultInjector::configureFromEnv(std::string &Error) {
  const char *Spec = std::getenv("CSDF_FAULT");
  if (!Spec || !*Spec)
    return true;
  return configure(Spec, Error);
}

bool FaultInjector::shouldFail(const char *Site) {
  if (Sites.empty())
    return false;
  auto It = Sites.find(Site);
  if (It == Sites.end())
    return false;
  Arm &A = It->second;
  ++A.Hits;
  bool Fire = A.Nth == 0 || A.Hits == A.Nth ||
              (A.AndAfter && A.Hits > A.Nth);
  if (Fire)
    ++Fired;
  return Fire;
}
