//===- support/Stats.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

using namespace csdf;

StatsRegistry &StatsRegistry::global() {
  static StatsRegistry Registry;
  return Registry;
}

void StatsRegistry::addCounter(const std::string &Name, std::int64_t Delta) {
  Counters[Name] += Delta;
}

void StatsRegistry::addSeconds(const std::string &Name, double Seconds) {
  Timers[Name] += Seconds;
}

std::int64_t StatsRegistry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double StatsRegistry::seconds(const std::string &Name) const {
  auto It = Timers.find(Name);
  return It == Timers.end() ? 0.0 : It->second;
}

void StatsRegistry::clear() {
  Counters.clear();
  Timers.clear();
}
