//===- support/Stats.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

using namespace csdf;

StatsRegistry &StatsRegistry::global() {
  static StatsRegistry Registry;
  return Registry;
}

std::atomic<std::int64_t> &StatsRegistry::counterCell(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.try_emplace(Name, 0).first->second;
}

void StatsRegistry::addCounter(const std::string &Name, std::int64_t Delta) {
  counterCell(Name).fetch_add(Delta, std::memory_order_relaxed);
}

std::atomic<std::int64_t> &StatsRegistry::nanosCell(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Nanos.try_emplace(Name, 0).first->second;
}

void StatsRegistry::addSeconds(const std::string &Name, double Seconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Timers[Name] += Seconds;
}

std::int64_t StatsRegistry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0
                              : It->second.load(std::memory_order_relaxed);
}

double StatsRegistry::seconds(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  double Total = 0.0;
  if (auto It = Timers.find(Name); It != Timers.end())
    Total += It->second;
  if (auto It = Nanos.find(Name); It != Nanos.end())
    Total += 1e-9 *
             static_cast<double>(It->second.load(std::memory_order_relaxed));
  return Total;
}

void StatsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Zero in place: cells handed out via counterCell()/nanosCell() must
  // stay valid.
  for (auto &[Name, Cell] : Counters)
    Cell.store(0, std::memory_order_relaxed);
  for (auto &[Name, Cell] : Nanos)
    Cell.store(0, std::memory_order_relaxed);
  Timers.clear();
}

std::map<std::string, std::int64_t> StatsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, std::int64_t> Snapshot;
  for (const auto &[Name, Cell] : Counters)
    if (std::int64_t V = Cell.load(std::memory_order_relaxed))
      Snapshot.emplace(Name, V);
  return Snapshot;
}

std::map<std::string, double> StatsRegistry::timers() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, double> Snapshot = Timers;
  for (const auto &[Name, Cell] : Nanos)
    if (std::int64_t N = Cell.load(std::memory_order_relaxed))
      Snapshot[Name] +=
          1e-9 * static_cast<double>(N);
  return Snapshot;
}
