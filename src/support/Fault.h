//===- support/Fault.h - Deterministic fault injection --------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide fault injector for testing recovery paths deliberately
/// instead of hoping a disk or a kill arrives at the right moment. Code
/// that has a recovery path names the spot with a *site* string and asks
/// `FaultInjector::global().shouldFail("site")`; nothing fires unless a
/// fault spec was configured via the `CSDF_FAULT` environment variable or
/// the `--fault` flag of `csdf serve`.
///
/// Spec grammar (comma-separated, no spaces):
///
///   site          the site fires on every hit
///   site:N        the site fires on its Nth hit only (1-based)
///   site:N+       the site fires on the Nth hit and every one after
///
/// e.g. `CSDF_FAULT=store-write-fail:2,store-corrupt` fails the second
/// store write and corrupts every written record. Sites must come from
/// the registered catalog (`knownSites()`); a typo in a spec is a loud
/// configuration error, not a silently-never-firing fault.
///
/// The injector is deterministic by construction — it holds no RNG. Soak
/// harnesses that want randomized faults pick a random spec *outside* the
/// process (see tests/scripts/serve_soak.py), so any failure reproduces
/// from the spec alone.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_FAULT_H
#define CSDF_SUPPORT_FAULT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace csdf {

/// The registered fault sites. Keeping the catalog in one table means a
/// soak script can enumerate every site (`csdf serve --fault list` prints
/// them) and the spec parser can reject unknown names.
struct FaultSiteInfo {
  const char *Name;
  const char *Description;
};

/// Process-wide deterministic fault injector. Thread-safe: hit counters
/// are guarded by the sites map being configured once, up front, and the
/// per-site counters being atomic-free but only mutated under the
/// injector's own lock-free single-writer discipline — in practice serve
/// serializes request handling, and tests configure before spawning.
class FaultInjector {
public:
  /// The singleton every instrumented site consults.
  static FaultInjector &global();

  /// The full site catalog.
  static const std::vector<FaultSiteInfo> &knownSites();
  static bool isKnownSite(const std::string &Name);

  /// Parses and installs \p Spec (see file comment for the grammar),
  /// replacing any previous configuration. An empty spec disarms every
  /// site. Returns false with \p Error set on a malformed token or an
  /// unknown site name.
  bool configure(const std::string &Spec, std::string &Error);

  /// configure() from the CSDF_FAULT environment variable when it is set
  /// and non-empty. Returns false (with \p Error) only on a bad spec.
  bool configureFromEnv(std::string &Error);

  /// True when the named site should fail on this hit. Counts the hit
  /// either way. Unconfigured sites never fire and count nothing.
  bool shouldFail(const char *Site);

  /// Total fired faults since the last configure(), for stats surfaces.
  std::uint64_t firedCount() const { return Fired; }

  /// True when any site is armed (cheap early-out for hot paths).
  bool armed() const { return !Sites.empty(); }

private:
  struct Arm {
    std::uint64_t Hits = 0; ///< Hits observed so far.
    std::uint64_t Nth = 0;  ///< 0 = every hit; else the 1-based target.
    bool AndAfter = false;  ///< With Nth: fire on every hit >= Nth.
  };

  std::map<std::string, Arm> Sites;
  std::uint64_t Fired = 0;
};

} // namespace csdf

#endif // CSDF_SUPPORT_FAULT_H
