//===- support/Json.h - Minimal JSON value model and parser ---------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader for the `csdf serve` request
/// protocol (one JSON object per line). The value model is deliberately
/// tiny: null, bool, int64, double, string, array, object — enough to
/// parse request envelopes and option bags, not a general-purpose
/// serialization framework. Writers in this codebase emit JSON by hand
/// (see DiagRenderer, BatchReport::json); only *reading* needs a parser.
///
/// Numbers that look integral (no '.', 'e', or overflow) parse as int64 so
/// option fields like "deadline_ms" round-trip exactly; everything else
/// parses as double.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_JSON_H
#define CSDF_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace csdf {

/// One parsed JSON value. Objects keep their members in a sorted map —
/// request envelopes are small and key order never matters to the
/// protocol.
class JsonValue {
public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default; // null
  JsonValue(bool B) : V(B) {}
  JsonValue(std::int64_t I) : V(I) {}
  JsonValue(double D) : V(D) {}
  JsonValue(std::string S) : V(std::move(S)) {}
  JsonValue(Array A) : V(std::move(A)) {}
  JsonValue(Object O) : V(std::move(O)) {}

  bool isNull() const { return std::holds_alternative<std::monostate>(V); }
  bool isBool() const { return std::holds_alternative<bool>(V); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(V); }
  bool isDouble() const { return std::holds_alternative<double>(V); }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return std::holds_alternative<std::string>(V); }
  bool isArray() const { return std::holds_alternative<Array>(V); }
  bool isObject() const { return std::holds_alternative<Object>(V); }

  bool asBool() const { return std::get<bool>(V); }
  /// Integral value; a double is truncated toward zero.
  std::int64_t asInt() const {
    return isDouble() ? static_cast<std::int64_t>(std::get<double>(V))
                      : std::get<std::int64_t>(V);
  }
  double asDouble() const {
    return isInt() ? static_cast<double>(std::get<std::int64_t>(V))
                   : std::get<double>(V);
  }
  const std::string &asString() const { return std::get<std::string>(V); }
  const Array &asArray() const { return std::get<Array>(V); }
  const Object &asObject() const { return std::get<Object>(V); }

  /// Object member access; returns nullptr when this is not an object or
  /// has no such member. The pointer is valid as long as this value is.
  const JsonValue *get(const std::string &Key) const {
    if (!isObject())
      return nullptr;
    auto It = asObject().find(Key);
    return It == asObject().end() ? nullptr : &It->second;
  }

  /// Re-serializes the value as compact JSON (stable: object keys come
  /// out in sorted order). Used to echo request ids back verbatim.
  std::string str() const;

private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               Array, Object>
      V;
};

/// Parses \p Text as one JSON value. Returns false with \p Error set (one
/// line, with a character offset) on malformed input or trailing garbage.
bool parseJson(const std::string &Text, JsonValue &Out, std::string &Error);

} // namespace csdf

#endif // CSDF_SUPPORT_JSON_H
