//===- support/ErrorHandling.cpp ------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace csdf;

namespace {
thread_local unsigned RecoveryDepth = 0;
thread_local CrashContext *InnermostContext = nullptr;
} // namespace

RecoveryScope::RecoveryScope() { ++RecoveryDepth; }

RecoveryScope::~RecoveryScope() { --RecoveryDepth; }

bool RecoveryScope::active() { return RecoveryDepth > 0; }

CrashContext::CrashContext(std::string Label,
                           std::function<std::string()> Detail)
    : Label(std::move(Label)), Detail(std::move(Detail)),
      Parent(InnermostContext) {
  InnermostContext = this;
}

CrashContext::CrashContext(std::string Label)
    : CrashContext(std::move(Label), nullptr) {}

CrashContext::~CrashContext() { InnermostContext = Parent; }

namespace csdf {
/// Prints active CrashContext frames outermost-first. Only called on the
/// abort path, where reentrancy and allocation failure are acceptable
/// risks compared to losing the report entirely.
void printCrashContexts() {
  // Walk the intrusive list into outermost-first order without allocating
  // more than the frame count in pointers.
  CrashContext *Frames[64];
  unsigned Count = 0;
  for (CrashContext *C = InnermostContext; C && Count < 64; C = C->Parent)
    Frames[Count++] = C;
  for (unsigned I = Count; I > 0; --I) {
    CrashContext *C = Frames[I - 1];
    if (C->Detail) {
      std::string D = C->Detail();
      std::fprintf(stderr, "  while %s: %s\n", C->Label.c_str(), D.c_str());
    } else {
      std::fprintf(stderr, "  while %s\n", C->Label.c_str());
    }
  }
}
} // namespace csdf

void csdf::reportUnreachable(const char *Msg, const char *File,
                             unsigned Line) {
  if (RecoveryScope::active())
    throw EngineError(Msg, File, Line);
  // Flush pending output (diagnostics already rendered to stdout/stderr)
  // before the crash report so field reports keep their ordering.
  std::fflush(stdout);
  std::fflush(stderr);
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  printCrashContexts();
  std::fflush(stderr);
  std::abort();
}
