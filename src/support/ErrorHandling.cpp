//===- support/ErrorHandling.cpp ------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace csdf;

void csdf::reportUnreachable(const char *Msg, const char *File,
                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
