//===- support/Arena.h - Pooled buffer arena for hot-path allocations ----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-local, size-bucketed buffer pool backing the numeric core's
/// hot allocations (DBM matrices, closure scratch). The pCFG engine
/// creates and destroys thousands of short-lived DenseDbmStorage buffers
/// per analysis — one per cold graph build, join, and copy-on-write
/// detach — and Section IX's "arrays instead of C++ STL containers"
/// direction is only half captured if every array still costs a trip to
/// the general-purpose allocator. The arena recycles buffers by
/// power-of-two size class so steady-state closure work allocates
/// nothing.
///
/// Thread safety by construction: each thread owns a private pool.
/// acquire() takes from (and release() returns to) the *calling* thread's
/// pool, so a buffer allocated on one thread and freed on another simply
/// migrates — there is no cross-thread data structure to race on. Pools
/// are bounded (per-bucket count and total byte cap); overflow falls
/// through to operator new/delete.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_ARENA_H
#define CSDF_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>

namespace csdf {

/// Returns a buffer of at least \p Bytes (rounded up to the bucket size),
/// recycled from the calling thread's pool when possible.
void *arenaAcquire(std::size_t Bytes);

/// Returns \p P (previously acquired with a request of \p Bytes) to the
/// calling thread's pool, or frees it when the pool is full.
void arenaRelease(void *P, std::size_t Bytes) noexcept;

/// Buffers currently cached by the calling thread's pool, in bytes.
/// Test/diagnostic hook.
std::size_t arenaCachedBytes();

/// Frees every buffer cached by the calling thread's pool. Test hook.
void arenaDrain();

/// Allocator adapter so standard containers (the DenseDbmStorage matrix)
/// draw from the arena. Stateless: all instances are interchangeable.
template <typename T> struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U> PoolAllocator(const PoolAllocator<U> &) noexcept {}

  T *allocate(std::size_t N) {
    return static_cast<T *>(arenaAcquire(N * sizeof(T)));
  }
  void deallocate(T *P, std::size_t N) noexcept {
    arenaRelease(P, N * sizeof(T));
  }

  template <typename U> bool operator==(const PoolAllocator<U> &) const {
    return true;
  }
  template <typename U> bool operator!=(const PoolAllocator<U> &) const {
    return false;
  }
};

} // namespace csdf

#endif // CSDF_SUPPORT_ARENA_H
