//===- support/StringUtils.h - Small string helpers ----------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared across the library: container joining
/// and printf-style formatting into std::string.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_STRINGUTILS_H
#define CSDF_SUPPORT_STRINGUTILS_H

#include <sstream>
#include <string>

namespace csdf {

/// Joins the elements of \p Range (streamed via operator<<) with \p Sep.
template <typename Range>
std::string join(const Range &Items, const std::string &Sep) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &Item : Items) {
    if (!First)
      OS << Sep;
    OS << Item;
    First = false;
  }
  return OS.str();
}

/// Joins after applying \p Fn to each element.
template <typename Range, typename Fn>
std::string joinMapped(const Range &Items, const std::string &Sep, Fn Mapper) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &Item : Items) {
    if (!First)
      OS << Sep;
    OS << Mapper(Item);
    First = false;
  }
  return OS.str();
}

} // namespace csdf

#endif // CSDF_SUPPORT_STRINGUTILS_H
