//===- support/ThreadPool.h - Shared worker pool --------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a sharded ready-queue and work stealing,
/// shared by the two parallel layers of the system (Section IX(5),
/// "pCFG-based analyses are naturally parallelizable"):
///
///   * the pCFG engine's in-engine parallel drain (AnalysisOptions::Threads
///     speculative step tasks, committed in deterministic order), and
///   * the in-process `csdf batch` threads mode (whole analysis sessions
///     as tasks, sharing one cross-session ClosureMemo).
///
/// Each worker owns one deque shard; submissions are distributed
/// round-robin and an idle worker steals from the back of other shards, so
/// a burst of slow tasks on one shard cannot starve the rest. The pool is
/// deliberately policy-free: tasks are plain closures, and every
/// determinism or isolation concern (budget scopes, recovery scopes,
/// ordered commits) belongs to the caller.
///
/// Thread-local context does NOT propagate onto workers: a task that needs
/// the caller's AnalysisBudget must install it itself with BudgetScope
/// (see Engine's worker tasks and Batch's threads mode).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_THREADPOOL_H
#define CSDF_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace csdf {

class ThreadPool {
public:
  /// Starts \p Workers worker threads (at least 1).
  explicit ThreadPool(unsigned Workers);

  /// Waits for running tasks to finish; tasks still queued are discarded.
  /// Callers that must observe every result (futures, batch reports) wait
  /// for them before destroying the pool.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues a fire-and-forget task.
  void run(std::function<void()> Task);

  /// Enqueues \p Fn and returns a future for its result.
  template <typename Fn> auto submit(Fn &&F) {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Out = Task->get_future();
    run([Task] { (*Task)(); });
    return Out;
  }

  /// The machine's hardware thread count (at least 1).
  static unsigned hardwareThreads();

private:
  struct Shard {
    std::mutex M;
    std::deque<std::function<void()>> Tasks;
  };

  void workerMain(unsigned Me);
  bool popTask(unsigned Me, std::function<void()> &Out);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::vector<std::thread> Workers;
  std::mutex IdleM;
  std::condition_variable IdleCv;
  std::atomic<bool> Stop{false};
  /// Tasks queued but not yet picked up; lets sleeping workers avoid a
  /// scan of every shard on spurious wakeups.
  std::atomic<int> Queued{0};
  std::atomic<unsigned> NextShard{0};
};

} // namespace csdf

#endif // CSDF_SUPPORT_THREADPOOL_H
