//===- support/Arena.cpp --------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <new>

using namespace csdf;

namespace {

/// Smallest bucket; everything below rounds up to this.
constexpr std::size_t MinBucketBytes = 64;
/// Requests above the largest bucket bypass the pool entirely.
constexpr int NumBuckets = 22; // 64 B .. 128 MiB
/// At most this many cached buffers per bucket.
constexpr std::size_t MaxPerBucket = 32;
/// Total cached bytes per thread before release() starts freeing.
constexpr std::size_t MaxCachedBytes = std::size_t(16) << 20;

/// Bucket index for a request, or -1 when the request is too large to
/// pool. Bucket B holds buffers of exactly (MinBucketBytes << B) bytes.
int bucketFor(std::size_t Bytes) {
  std::size_t Size = MinBucketBytes;
  for (int B = 0; B < NumBuckets; ++B, Size <<= 1)
    if (Bytes <= Size)
      return B;
  return -1;
}

struct ThreadPoolArena {
  /// Intrusive free list: the first word of a cached buffer points to
  /// the next one. Every bucket's buffers are at least 64 bytes, so the
  /// link always fits.
  void *Free[NumBuckets] = {};
  std::size_t Count[NumBuckets] = {};
  std::size_t CachedBytes = 0;

  ~ThreadPoolArena() { drain(); }

  void drain() {
    for (int B = 0; B < NumBuckets; ++B) {
      while (Free[B]) {
        void *Next = *static_cast<void **>(Free[B]);
        ::operator delete(Free[B]);
        Free[B] = Next;
      }
      Count[B] = 0;
    }
    CachedBytes = 0;
  }
};

ThreadPoolArena &pool() {
  thread_local ThreadPoolArena P;
  return P;
}

} // namespace

void *csdf::arenaAcquire(std::size_t Bytes) {
  int B = bucketFor(Bytes);
  if (B < 0)
    return ::operator new(Bytes);
  ThreadPoolArena &P = pool();
  if (void *Buf = P.Free[B]) {
    P.Free[B] = *static_cast<void **>(Buf);
    --P.Count[B];
    P.CachedBytes -= MinBucketBytes << B;
    return Buf;
  }
  return ::operator new(MinBucketBytes << B);
}

void csdf::arenaRelease(void *P, std::size_t Bytes) noexcept {
  if (!P)
    return;
  int B = bucketFor(Bytes);
  ThreadPoolArena &Pool = pool();
  std::size_t Size = B < 0 ? 0 : (MinBucketBytes << B);
  if (B < 0 || Pool.Count[B] >= MaxPerBucket ||
      Pool.CachedBytes + Size > MaxCachedBytes) {
    ::operator delete(P);
    return;
  }
  *static_cast<void **>(P) = Pool.Free[B];
  Pool.Free[B] = P;
  ++Pool.Count[B];
  Pool.CachedBytes += Size;
}

std::size_t csdf::arenaCachedBytes() { return pool().CachedBytes; }

void csdf::arenaDrain() { pool().drain(); }
