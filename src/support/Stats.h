//===- support/Stats.h - Lightweight analysis statistics ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny analogue of LLVM's Statistic class: named counters and timers that
/// analysis components bump and benchmarks read back. Used to reproduce the
/// Section IX profile of the paper (closure call counts, average variable
/// counts, fraction of time spent in state consistency).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_STATS_H
#define CSDF_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace csdf {

/// Process-wide registry of named counters and accumulated durations.
///
/// Not thread-safe by design: the dataflow engine is single-threaded except
/// for the explicitly parallel benchmark, which uses per-thread registries.
class StatsRegistry {
public:
  /// Returns the registry used by library components by default.
  static StatsRegistry &global();

  /// Adds \p Delta to counter \p Name (creating it at zero).
  void addCounter(const std::string &Name, std::int64_t Delta = 1);

  /// Adds \p Seconds to timer \p Name (creating it at zero).
  void addSeconds(const std::string &Name, double Seconds);

  /// Current value of counter \p Name, or 0 if never bumped.
  std::int64_t counter(const std::string &Name) const;

  /// Accumulated seconds of timer \p Name, or 0 if never bumped.
  double seconds(const std::string &Name) const;

  /// Resets all counters and timers.
  void clear();

  /// All counters, for report printing.
  const std::map<std::string, std::int64_t> &counters() const {
    return Counters;
  }

  /// All timers, for report printing.
  const std::map<std::string, double> &timers() const { return Timers; }

private:
  std::map<std::string, std::int64_t> Counters;
  std::map<std::string, double> Timers;
};

/// RAII timer that adds its lifetime to a named StatsRegistry timer.
class ScopedTimer {
public:
  ScopedTimer(StatsRegistry &Registry, std::string Name)
      : Registry(Registry), Name(std::move(Name)),
        Start(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    auto End = std::chrono::steady_clock::now();
    Registry.addSeconds(Name,
                        std::chrono::duration<double>(End - Start).count());
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  StatsRegistry &Registry;
  std::string Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace csdf

#endif // CSDF_SUPPORT_STATS_H
