//===- support/Stats.h - Lightweight analysis statistics ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny analogue of LLVM's Statistic class: named counters and timers that
/// analysis components bump and benchmarks read back. Used to reproduce the
/// Section IX profile of the paper (closure call counts, average variable
/// counts, fraction of time spent in state consistency).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_SUPPORT_STATS_H
#define CSDF_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace csdf {

/// Process-wide registry of named counters and accumulated durations.
///
/// Thread-safe: updates and reads take an internal mutex, so concurrent
/// analyses (bench_parallel) may share the global registry. Hot analysis
/// loops avoid both the lock and the string lookup by caching the
/// counter's cell via counterCell() once and bumping the atomic directly;
/// cells have stable addresses for the registry's lifetime (clear() zeroes
/// them in place).
class StatsRegistry {
public:
  /// Returns the registry used by library components by default.
  static StatsRegistry &global();

  /// The atomic cell behind counter \p Name (creating it at zero). The
  /// reference stays valid — and keeps counting into this registry — for
  /// the registry's lifetime. Bump with fetch_add(delta,
  /// std::memory_order_relaxed).
  std::atomic<std::int64_t> &counterCell(const std::string &Name);

  /// The atomic nanosecond cell behind timer \p Name, for hot loops that
  /// cannot afford addSeconds' lock; seconds()/timers() fold it into the
  /// reported value. Same lifetime guarantees as counterCell().
  std::atomic<std::int64_t> &nanosCell(const std::string &Name);

  /// Adds \p Delta to counter \p Name (creating it at zero).
  void addCounter(const std::string &Name, std::int64_t Delta = 1);

  /// Adds \p Seconds to timer \p Name (creating it at zero).
  void addSeconds(const std::string &Name, double Seconds);

  /// Current value of counter \p Name, or 0 if never bumped.
  std::int64_t counter(const std::string &Name) const;

  /// Accumulated seconds of timer \p Name, or 0 if never bumped.
  double seconds(const std::string &Name) const;

  /// Resets all counters and timers. Counter cells handed out by
  /// counterCell() are zeroed, not destroyed.
  void clear();

  /// Snapshot of all counters with a nonzero value, for report printing.
  /// (Zero-valued cells are retained internally for address stability but
  /// carry no information worth reporting.)
  std::map<std::string, std::int64_t> counters() const;

  /// Snapshot of all timers, for report printing.
  std::map<std::string, double> timers() const;

private:
  mutable std::mutex Mutex;
  /// std::map nodes never move, so cell addresses are stable.
  std::map<std::string, std::atomic<std::int64_t>> Counters;
  std::map<std::string, double> Timers;
  /// Nanoseconds accumulated through nanosCell(), folded into Timers'
  /// view on read.
  std::map<std::string, std::atomic<std::int64_t>> Nanos;
};

/// RAII timer that adds its lifetime to a named StatsRegistry timer.
class ScopedTimer {
public:
  ScopedTimer(StatsRegistry &Registry, std::string Name)
      : Registry(Registry), Name(std::move(Name)),
        Start(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    auto End = std::chrono::steady_clock::now();
    Registry.addSeconds(Name,
                        std::chrono::duration<double>(End - Start).count());
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  StatsRegistry &Registry;
  std::string Name;
  std::chrono::steady_clock::time_point Start;
};

/// RAII timer that adds its lifetime, in nanoseconds, to a cached
/// StatsRegistry::nanosCell(). The lock- and allocation-free variant of
/// ScopedTimer for per-closure-call use; a null cell disables it.
class ScopedNanoTimer {
public:
  explicit ScopedNanoTimer(std::atomic<std::int64_t> *Cell)
      : Cell(Cell), Start(std::chrono::steady_clock::now()) {}

  ~ScopedNanoTimer() {
    if (!Cell)
      return;
    auto End = std::chrono::steady_clock::now();
    Cell->fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        End - Start)
                        .count(),
                    std::memory_order_relaxed);
  }

  ScopedNanoTimer(const ScopedNanoTimer &) = delete;
  ScopedNanoTimer &operator=(const ScopedNanoTimer &) = delete;

private:
  std::atomic<std::int64_t> *Cell;
  std::chrono::steady_clock::time_point Start;
};

} // namespace csdf

#endif // CSDF_SUPPORT_STATS_H
