//===- support/HashRing.cpp -----------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/HashRing.h"

#include "support/Store.h"

#include <algorithm>

using namespace csdf;

namespace {

/// splitmix64 finalizer over the FNV digest. FNV-1a alone leaves the high
/// bits of short, similar strings (socket paths differing in one digit)
/// badly avalanched, which clusters vnode points and skews ownership up
/// to several-fold; the finalizer restores a uniform spread.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

HashRing::HashRing(unsigned Replicas)
    : Replicas(Replicas == 0 ? 1 : Replicas) {}

void HashRing::addNode(const std::string &Node) {
  if (std::find(Nodes.begin(), Nodes.end(), Node) != Nodes.end())
    return;
  Nodes.push_back(Node);
  rebuild();
}

void HashRing::removeNode(const std::string &Node) {
  auto It = std::find(Nodes.begin(), Nodes.end(), Node);
  if (It == Nodes.end())
    return;
  Nodes.erase(It);
  rebuild();
}

void HashRing::rebuild() {
  Points.clear();
  Points.reserve(Nodes.size() * Replicas);
  for (std::uint32_t N = 0; N < Nodes.size(); ++N)
    for (unsigned R = 0; R < Replicas; ++R)
      Points.push_back(
          {mix64(fnv1a64(Nodes[N] + "#" + std::to_string(R))), N});
  std::sort(Points.begin(), Points.end(),
            [](const Point &A, const Point &B) {
              // Node index tiebreak keeps ownership deterministic even on
              // a (vanishingly unlikely) 64-bit hash collision.
              return A.Hash != B.Hash ? A.Hash < B.Hash
                                      : A.NodeIndex < B.NodeIndex;
            });
}

std::string HashRing::owner(const std::string &Key) const {
  std::vector<std::string> Order = successors(Key);
  return Order.empty() ? std::string() : Order.front();
}

std::vector<std::string> HashRing::successors(const std::string &Key) const {
  std::vector<std::string> Order;
  if (Points.empty())
    return Order;
  std::uint64_t H = mix64(fnv1a64(Key));
  auto Start = std::lower_bound(
      Points.begin(), Points.end(), H,
      [](const Point &P, std::uint64_t Hash) { return P.Hash < Hash; });
  std::vector<bool> Seen(Nodes.size(), false);
  Order.reserve(Nodes.size());
  for (std::size_t I = 0; I < Points.size() && Order.size() < Nodes.size();
       ++I) {
    const Point &P =
        Points[(static_cast<std::size_t>(Start - Points.begin()) + I) %
               Points.size()];
    if (!Seen[P.NodeIndex]) {
      Seen[P.NodeIndex] = true;
      Order.push_back(Nodes[P.NodeIndex]);
    }
  }
  return Order;
}
