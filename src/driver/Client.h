//===- driver/Client.h - One-shot serve client with retry/backoff ---------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf client` is the reference consumer of the wire protocol's failure
/// contract (api/Wire.h): it sends exactly one request over a daemon's or
/// router's unix socket, prints the response line, and implements the
/// retry side of the structured-error protocol, so the contract is
/// exercised end-to-end by real binaries, not just unit tests. The two
/// failure classes back off on *separate tracks*, because they mean
/// different things in a fleet:
///
///  - A structured `"retryable": true` response (`"code": "overloaded"`)
///    is the server saying "I exist but am saturated" — the client waits
///    max(`retry_after_ms`, capped exponential backoff with jitter)
///    before adding load back.
///  - A dropped connection or EOF before a full response line (a shard
///    killed mid-response, a daemon restarting) is retried *promptly* on
///    a short linear track: behind a router the very next attempt is
///    re-routed to a healthy shard, so sleeping an exponential backoff
///    would just serialize the failover the fleet already absorbed.
///  - A non-retryable `"ok": false` response is printed and exits 1.
///
/// With Verbose set, each attempt's fate and the answering shard (the
/// router's `"shard"` response member) go to stderr — stdout stays
/// exactly one response line either way.
///
/// Exit codes: 0 — the daemon answered `"ok": true`; 1 — a structured,
/// non-retryable error (or retries exhausted on a retryable one); 2 —
/// usage error or the socket never became reachable.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_CLIENT_H
#define CSDF_DRIVER_CLIENT_H

#include "api/Options.h"

#include <set>
#include <string>

namespace csdf {

struct ClientOptions {
  /// The daemon's (or router's) unix socket (required).
  std::string SocketPath;

  /// Request type: "analyze", "lint", "stats", or "shutdown".
  std::string Type = "analyze";

  /// Input file for analyze/lint.
  std::string Path;

  /// Read the file locally and embed it as "source" (the daemon then
  /// never touches the filesystem for this request).
  bool SendSource = false;

  /// Shared analysis options; sent as the request's "options" object
  /// only when HasOptions is set, so a plain request inherits the
  /// daemon's defaults instead of overriding them with client defaults.
  api::RequestOptions Options;
  bool HasOptions = false;

  /// Tenant name stamped into the envelope; the router enforces
  /// per-tenant admission quotas on it (empty = the default tenant).
  std::string Tenant;

  // Lint policy.
  std::set<std::string> Disabled;
  bool Werror = false;
  std::string MinSeverity;

  /// Retry policy: attempts = Retries + 1. An `overloaded` response
  /// backs off min(RetryCapMs, RetryBaseMs << k) with +-50% jitter, or
  /// the server-suggested retry_after_ms when larger; a transport drop
  /// retries on the short linear track min(RetryCapMs, RetryBaseMs * k)
  /// (fleet failover makes the next attempt cheap).
  unsigned Retries = 5;
  unsigned RetryBaseMs = 25;
  unsigned RetryCapMs = 2000;

  /// Narrate attempts and the answering shard on stderr.
  bool Verbose = false;
};

/// Runs one request per \p Opts, printing the daemon's response line to
/// stdout (retried attempts print nothing; only the final response is
/// shown). Returns the process exit code described in the file comment.
int runClient(const ClientOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_CLIENT_H
