//===- driver/Client.h - One-shot serve client with retry/backoff ---------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf client` is the reference consumer of the serve daemon's failure
/// contract: it sends exactly one request over the daemon's unix socket,
/// prints the response line, and — crucially — implements the retry side
/// of the structured-error protocol, so the contract is exercised
/// end-to-end by real binaries, not just unit tests:
///
///  - A response with `"retryable": true` (e.g. `"code": "overloaded"`)
///    is retried after max(`retry_after_ms`, capped exponential backoff
///    with jitter).
///  - A dropped connection or EOF before a full response line (daemon
///    crashed mid-response, or is restarting) is treated the same way.
///  - A non-retryable `"ok": false` response is printed and exits 1.
///
/// Exit codes: 0 — the daemon answered `"ok": true`; 1 — a structured,
/// non-retryable error (or retries exhausted on a retryable one); 2 —
/// usage error or the socket never became reachable.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_CLIENT_H
#define CSDF_DRIVER_CLIENT_H

#include "api/Options.h"

#include <set>
#include <string>

namespace csdf {

struct ClientOptions {
  /// The daemon's unix socket (required).
  std::string SocketPath;

  /// Request type: "analyze", "lint", "stats", or "shutdown".
  std::string Type = "analyze";

  /// Input file for analyze/lint.
  std::string Path;

  /// Read the file locally and embed it as "source" (the daemon then
  /// never touches the filesystem for this request).
  bool SendSource = false;

  /// Shared analysis options; sent as the request's "options" object
  /// only when HasOptions is set, so a plain request inherits the
  /// daemon's defaults instead of overriding them with client defaults.
  api::RequestOptions Options;
  bool HasOptions = false;

  // Lint policy.
  std::set<std::string> Disabled;
  bool Werror = false;
  std::string MinSeverity;

  /// Retry policy: attempts = Retries + 1; backoff for attempt k sleeps
  /// min(RetryCapMs, RetryBaseMs << k) with +-50% jitter, or the
  /// server-suggested retry_after_ms when larger.
  unsigned Retries = 5;
  unsigned RetryBaseMs = 25;
  unsigned RetryCapMs = 2000;
};

/// Runs one request per \p Opts, printing the daemon's response line to
/// stdout (retried attempts print nothing; only the final response is
/// shown). Returns the process exit code described in the file comment.
int runClient(const ClientOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_CLIENT_H
