//===- driver/Lsp.h - Language Server Protocol front end ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf lsp` speaks a minimal Language Server Protocol subset over stdio
/// so editors get csdf lint diagnostics as they type, powered by the
/// incremental pipeline: every didOpen/didChange runs
/// api::Analyzer::lintIncremental over the full document text (the server
/// advertises full-document sync), so an unchanged document is answered
/// from cache and a small edit re-analyzes with the prior engine trace as
/// a seed. Published diagnostics are always exactly the findings `csdf
/// lint --format json` would print for the same text — the server is a
/// transport, never a different analyzer.
///
/// Handled methods: initialize, initialized, shutdown, exit,
/// textDocument/didOpen, textDocument/didChange, textDocument/didClose
/// (clears the document's diagnostics). Unknown *requests* get a
/// MethodNotFound error; unknown notifications are ignored, per the spec.
///
/// The protocol mapping of one csdf Diagnostic:
///   range     — the primary location, zero-length, 0-based (LSP) from
///               the 1-based SourceLoc; whole-program findings (invalid
///               location) anchor at 0:0
///   severity  — Error=1, Warning=2, Note=3 (Information)
///   code      — the stable rule ID ("csdf.<pass>")
///   source    — "csdf"
///   message   — the finding message (the note, when present, is
///               appended after a newline)
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_LSP_H
#define CSDF_DRIVER_LSP_H

#include "api/Csdf.h"

#include <string>
#include <vector>

namespace csdf {

/// Configuration of one LSP server instance.
struct LspOptions {
  /// Analysis options for every lint run (the shared CLI flags).
  api::RequestOptions Defaults;
};

/// The transport-agnostic message processor: feed it one JSON-RPC message
/// body (no framing), collect zero or more response/notification bodies.
/// Tests drive this directly; runLsp() wires it to Content-Length framed
/// stdio.
class LspServer {
public:
  explicit LspServer(const LspOptions &Opts);

  /// Handles one message. Appends any responses and notifications (bodies
  /// only, no framing) to \p Out. Returns false once `exit` is received —
  /// the transport loop should stop.
  bool handleMessage(const std::string &Body, std::vector<std::string> &Out);

  /// Process exit code per the spec: 0 when `exit` followed `shutdown`,
  /// 1 otherwise.
  int exitCode() const { return SawShutdown ? 0 : 1; }

  /// The analyzer behind the server (exposed for tests and stats).
  api::Analyzer &analyzer() { return An; }

private:
  void publishDiagnostics(const std::string &Uri, const std::string &Text,
                          std::vector<std::string> &Out);

  LspOptions Opts;
  api::Analyzer An{api::AnalyzerConfig::warm()};
  bool SawShutdown = false;
};

/// Runs the server over Content-Length framed stdio until `exit` or EOF.
/// Returns the process exit code.
int runLsp(const LspOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_LSP_H
