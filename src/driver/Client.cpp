//===- driver/Client.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Client.h"

#include "api/Wire.h"
#include "driver/Session.h"
#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace csdf;

namespace {

/// Connects to the daemon's unix socket; -1 on failure.
int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One attempt: send the line, read one response line. Returns false on
/// any transport failure (connect refused, EOF mid-response) — all
/// retryable, since the daemon may be restarting or crashed mid-write.
bool attempt(const ClientOptions &Opts, const std::string &RequestLine,
             std::string &ResponseLine) {
  int Fd = connectUnix(Opts.SocketPath);
  if (Fd < 0)
    return false;
  std::string Out = RequestLine + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    // MSG_NOSIGNAL: a daemon that sheds the connection (writes the
    // overloaded error and closes) must surface as a retryable EPIPE,
    // not kill the client with SIGPIPE.
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  std::string Buf;
  char Chunk[4096];
  size_t Nl;
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0) {
      ::close(Fd);
      return false; // EOF before a full line: daemon died mid-response
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
  ResponseLine = Buf.substr(0, Nl);
  return true;
}

std::string buildRequest(const ClientOptions &Opts, std::string &Error) {
  api::WireRequest Req;
  Req.IdJson = "1";
  Req.Type = Opts.Type;
  Req.Tenant = Opts.Tenant;
  if (Opts.Type == "analyze" || Opts.Type == "lint") {
    Req.Path = Opts.Path;
    if (Opts.SendSource) {
      std::string Source;
      if (!readSessionFile(Opts.Path, Source, Error))
        return "";
      Req.Source = std::move(Source);
    }
  }
  if (Opts.HasOptions)
    Req.Options = Opts.Options;
  Req.Werror = Opts.Werror;
  if (Opts.MinSeverity == "warning")
    Req.MinSeverity = DiagSeverity::Warning;
  else if (Opts.MinSeverity == "error")
    Req.MinSeverity = DiagSeverity::Error;
  Req.Disabled = Opts.Disabled;
  return api::wireRequestJson(Req, Opts.HasOptions);
}

/// The router stamps `"shard":"<backend socket>"` into forwarded
/// responses; surface it so a human can see which shard answered.
void narrateShard(const ClientOptions &Opts, const std::string &Response) {
  if (!Opts.Verbose)
    return;
  JsonValue V;
  std::string ParseError;
  if (parseJson(Response, V, ParseError)) {
    const JsonValue *Shard = V.get("shard");
    if (Shard && Shard->isString()) {
      std::fprintf(stderr, "csdf client: answered by shard '%s'\n",
                   Shard->asString().c_str());
      return;
    }
  }
  std::fprintf(stderr, "csdf client: answered directly (no shard member)\n");
}

} // namespace

int csdf::runClient(const ClientOptions &Opts) {
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "csdf: error: client requires --socket PATH\n");
    return 2;
  }
  if ((Opts.Type == "analyze" || Opts.Type == "lint") && Opts.Path.empty()) {
    std::fprintf(stderr, "csdf: error: client %s requires an input file\n",
                 Opts.Type.c_str());
    return 2;
  }

  std::string Error;
  std::string RequestLine = buildRequest(Opts, Error);
  if (RequestLine.empty()) {
    std::fprintf(stderr, "csdf: error: %s\n", Error.c_str());
    return 2;
  }

  // Jitter decorrelates a fleet of retrying clients; determinism is not a
  // goal here (this is wall-clock scheduling, not analysis).
  std::mt19937_64 Rng(static_cast<std::uint64_t>(::getpid()) ^
                      static_cast<std::uint64_t>(
                          std::chrono::steady_clock::now()
                              .time_since_epoch()
                              .count()));

  // The two failure classes back off independently: `overloaded` is a
  // live server asking for patience (exponential, honors its hint), a
  // transport drop is a shard dying or restarting (short linear track —
  // behind a router the next attempt lands on a healthy shard, so long
  // sleeps would serialize a failover the fleet already absorbed).
  unsigned OverloadRetries = 0, TransportRetries = 0;
  bool LastWasOverload = false;
  std::string Response;
  bool SawResponse = false;
  for (unsigned Attempt = 0; Attempt <= Opts.Retries; ++Attempt) {
    if (Attempt > 0) {
      std::uint64_t Delay;
      if (LastWasOverload) {
        Delay = std::min<std::uint64_t>(
            Opts.RetryCapMs,
            static_cast<std::uint64_t>(Opts.RetryBaseMs)
                << std::min(OverloadRetries - 1, 20u));
        // Honor the server's hint when it asks for more patience.
        if (SawResponse) {
          JsonValue V;
          std::string ParseError;
          if (parseJson(Response, V, ParseError) &&
              V.get("retry_after_ms"))
            Delay = std::max<std::uint64_t>(
                Delay, static_cast<std::uint64_t>(
                           V.get("retry_after_ms")->asInt()));
        }
      } else {
        Delay = std::min<std::uint64_t>(
            Opts.RetryCapMs,
            static_cast<std::uint64_t>(Opts.RetryBaseMs) * TransportRetries);
      }
      // +-50% jitter.
      std::uniform_int_distribution<std::uint64_t> Dist(Delay / 2, Delay +
                                                                       1);
      std::this_thread::sleep_for(std::chrono::milliseconds(Dist(Rng)));
    }

    std::string Line;
    if (!attempt(Opts, RequestLine, Line)) {
      SawResponse = false;
      ++TransportRetries;
      LastWasOverload = false;
      if (Opts.Verbose)
        std::fprintf(stderr,
                     "csdf client: attempt %u: transport drop, retrying\n",
                     Attempt + 1);
      continue;
    }
    Response = Line;
    SawResponse = true;

    JsonValue V;
    std::string ParseError;
    if (!parseJson(Line, V, ParseError)) {
      // A daemon speaking garbage is not retryable — surface it.
      std::fprintf(stderr, "csdf: error: unparseable response: %s\n",
                   ParseError.c_str());
      std::printf("%s\n", Line.c_str());
      return 1;
    }
    const JsonValue *Ok = V.get("ok");
    if (Ok && Ok->isBool() && Ok->asBool()) {
      narrateShard(Opts, Line);
      std::printf("%s\n", Line.c_str());
      return 0;
    }
    const JsonValue *Retryable = V.get("retryable");
    if (Retryable && Retryable->isBool() && Retryable->asBool()) {
      ++OverloadRetries;
      LastWasOverload = true;
      if (Opts.Verbose) {
        const JsonValue *Code = V.get("code");
        std::fprintf(stderr,
                     "csdf client: attempt %u: retryable '%s', backing off\n",
                     Attempt + 1,
                     Code && Code->isString() ? Code->asString().c_str()
                                              : "?");
      }
      continue;
    }
    narrateShard(Opts, Line);
    std::printf("%s\n", Line.c_str());
    return 1;
  }

  if (SawResponse) {
    std::printf("%s\n", Response.c_str());
    std::fprintf(stderr, "csdf: error: retries exhausted\n");
    return 1;
  }
  std::fprintf(stderr, "csdf: error: cannot reach daemon at '%s'\n",
               Opts.SocketPath.c_str());
  return 2;
}
