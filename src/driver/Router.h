//===- driver/Router.h - Consistent-hash fleet front end ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf router` turns N independent serve daemons into one fleet behind
/// one unix socket. It speaks the same wire protocol as the shards
/// (api/Wire.h) and owns exactly the three concerns a shard cannot:
///
///  - **Placement.** Each request's wireRoutingKey (type, canonical
///    option fingerprint, path, source bytes) is hashed onto a
///    consistent-hash ring (support/HashRing.h) over the backend socket
///    paths, so an exact repeat always lands on the shard that already
///    cached it, and adding or removing one shard remaps only ~1/N of the
///    key space — the rest of the fleet's warm caches survive a resize.
///
///  - **Failover.** The request line is forwarded to the owner shard
///    *byte-verbatim* (the shard computes the same cache key a direct
///    request would). On a transport failure or an `overloaded` answer
///    the router walks the key's ring successors; a shard kill -9 costs
///    the client nothing but latency. Only when every backend has refused
///    does the client see an error — a structured, *retryable*
///    "unavailable", because the fleet may be restarting.
///
///  - **Tenant admission.** Requests carry a `tenant` name; the router
///    grants each tenant at most TenantMaxInflight concurrently forwarded
///    requests plus TenantQueueDepth waiters. A tenant past both gets a
///    structured `overloaded` shed while other tenants proceed — one
///    noisy CI fleet cannot starve interactive editors.
///
/// Forwarded responses gain a `"shard":"<backend socket>"` member so
/// clients (and the fleet smoke test) can see which shard answered.
/// `stats` and `shutdown` are answered by the router itself; shards keep
/// their own lifecycles.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_ROUTER_H
#define CSDF_DRIVER_ROUTER_H

#include "api/Wire.h"
#include "support/HashRing.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace csdf {

struct RouterOptions {
  /// Backend shard sockets (unix paths); at least one is required.
  std::vector<std::string> Backends;

  /// The router's own listening socket (required).
  std::string SocketPath;

  /// Virtual nodes per backend on the consistent-hash ring.
  unsigned Replicas = 64;

  /// Per-tenant admission: concurrently forwarded requests, then
  /// waiters; past both the tenant is shed with `overloaded`.
  unsigned TenantMaxInflight = 4;
  unsigned TenantQueueDepth = 8;

  /// Health-probe period (a probe is one connect; a shard that refuses
  /// is routed around until it accepts again). 0 disables probing.
  unsigned HealthIntervalMs = 200;

  /// Envelope size cap, mirrored from the shards' contract.
  std::size_t MaxRequestBytes = 8ull << 20;

  /// The retry_after_ms hint stamped into shed/unavailable responses.
  unsigned RetryAfterMs = 50;
};

/// Router lifetime counters (reported by its own "stats" answer).
struct RouterStats {
  std::uint64_t Requests = 0;
  /// Requests answered by a shard (possibly after failover).
  std::uint64_t Forwarded = 0;
  /// Attempts that moved past a dead or overloaded shard to a successor.
  std::uint64_t Failovers = 0;
  /// Requests shed by per-tenant admission control.
  std::uint64_t TenantSheds = 0;
  /// Requests answered "unavailable" because every backend refused.
  std::uint64_t Unavailable = 0;
  /// Malformed or rejected request lines.
  std::uint64_t Errors = 0;

  /// Stable JSON object (sorted keys, no trailing newline).
  std::string json(std::size_t Backends, std::size_t Healthy) const;
};

/// The router's request processor, transport-agnostic like ServeServer —
/// but unlike it, handleLine is fully thread-safe: concurrent forwarding
/// is the whole point of a fleet, so connection threads call straight in.
class RouterServer {
public:
  explicit RouterServer(const RouterOptions &Opts);

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws. Sets \p Shutdown on a shutdown request.
  std::string handleLine(const std::string &Line, bool &Shutdown);

  /// Marks one backend (un)healthy; the probe thread calls this, and
  /// forwarding demotes a backend itself when a connect fails.
  void setHealthy(const std::string &Backend, bool Healthy);
  std::size_t healthyCount() const;

  /// Snapshot of the counters (thread-safe copy).
  RouterStats statsSnapshot() const;

  /// Wakes every admission waiter (shutdown path).
  void releaseWaiters();

private:
  /// Blocks until \p Tenant has an inflight slot, or sheds. True =
  /// admitted (caller must call admitRelease).
  bool admitAcquire(const std::string &Tenant);
  void admitRelease(const std::string &Tenant);

  /// Forwards \p Line to \p Backend and reads one response line; false
  /// on any transport failure.
  bool forwardOnce(const std::string &Backend, const std::string &Line,
                   std::string &Response);

  /// The candidate shards for \p Key: ring successors, healthy first
  /// (unhealthy ones are kept as a last resort — a probe may be stale).
  std::vector<std::string> candidates(const std::string &Key) const;

  RouterOptions Opts;
  HashRing Ring;

  mutable std::mutex HealthMu;
  std::map<std::string, bool> Healthy;

  mutable std::mutex StatsMu;
  RouterStats Stats;

  struct TenantState {
    unsigned Active = 0;
    unsigned Waiting = 0;
  };
  std::mutex AdmitMu;
  std::condition_variable AdmitCv;
  std::map<std::string, TenantState> Tenants;
  bool Draining = false;
};

/// Runs the router per \p Opts: AF_UNIX listener, one thread per
/// connection (forwarding runs concurrently), plus a health-probe thread.
/// Returns a process exit code (0 on clean shutdown, 2 on setup failure).
int runRouter(const RouterOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_ROUTER_H
