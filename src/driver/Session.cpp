//===- driver/Session.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include "cfg/CfgBuilder.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/ErrorHandling.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

using namespace csdf;

bool csdf::readSessionFile(const std::string &Path, std::string &Source,
                           std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "error: cannot read '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Source = SS.str();
  if (Source.find_first_not_of(" \t\r\n") == std::string::npos) {
    Error = "error: '" + Path + "' is empty";
    return false;
  }
  return true;
}

namespace {

/// Failure modes a test corpus can request via `# csdf-test: <hook>`
/// comments (the lexer treats `#` lines as comments, so hook files are
/// still valid MPL).
struct TestHooks {
  bool InternalError = false;
  bool Crash = false;
  std::uint64_t SleepMs = 0;
};

TestHooks scanTestHooks(const std::string &Source) {
  TestHooks Hooks;
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t At = Line.find("# csdf-test:");
    if (At == std::string::npos)
      continue;
    std::istringstream Rest(Line.substr(At + 12));
    std::string Word;
    Rest >> Word;
    if (Word == "internal-error")
      Hooks.InternalError = true;
    else if (Word == "crash")
      Hooks.Crash = true;
    else if (Word == "sleep-ms")
      Rest >> Hooks.SleepMs;
  }
  return Hooks;
}

} // namespace

SessionResult csdf::runAnalysisSession(const std::string &Path,
                                       const std::string &Source,
                                       const SessionOptions &Opts) {
  SessionResult R;

  AnalysisBudget Budget;
  Budget.DeadlineMs = Opts.DeadlineMs;
  Budget.MaxMemoryMb = Opts.MaxMemoryMb;
  Budget.MaxProverSteps = Opts.MaxProverSteps;
  // Start the clock here so the deadline covers the front end too; the
  // engine sees a started budget and leaves it alone. The scope makes the
  // budget visible to parser/sema checkpoints and to the client passes
  // that run after the engine (their checkpoints may throw out of
  // runClients, caught below).
  Budget.begin();
  BudgetScope Budgets(&Budget);

  auto Stamp = [&] {
    R.ElapsedMs = Budget.elapsedMs();
    R.PeakDbmBytes = Budget.peakBytes();
    R.ProverStepsUsed = Budget.proverStepsUsed();
  };

  if (Opts.EnableTestHooks) {
    TestHooks Hooks = scanTestHooks(Source);
    if (Hooks.SleepMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(Hooks.SleepMs));
    if (Hooks.Crash) {
      // Deliberate hard crash (no RecoveryScope): exercises the batch
      // driver's signal reaping.
      csdf_unreachable("csdf-test: crash hook");
    }
    if (Hooks.InternalError) {
      // Deliberate invariant violation through the real recovery path.
      try {
        RecoveryScope Recover;
        csdf_unreachable("csdf-test: internal-error hook");
      } catch (const EngineError &E) {
        R.Outcome.Verdict = AnalysisVerdict::InternalError;
        R.Outcome.Reason = E.what();
        R.Error = std::string("internal error: ") + E.what();
        R.ExitCode = SessionExitInternal;
        Stamp();
        return R;
      }
    }
  }

  auto Degrade = [&](const BudgetExceeded &E) {
    R.Outcome.Verdict = AnalysisVerdict::DegradedToTop;
    R.Outcome.Budget = E.kind();
    R.Outcome.Reason = E.reason();
    R.ExitCode = SessionExitFindings;
    Stamp();
  };

  // The Cfg keeps pointers into the AST, so the session owns the parse
  // result for as long as the caller holds Graph.
  try {
    R.Parsed = std::make_shared<ParseResult>(parseProgram(Source));
  } catch (const BudgetExceeded &E) {
    Degrade(E);
    return R;
  }
  ParseResult &Parsed = *R.Parsed;
  if (!Parsed.succeeded()) {
    R.FrontEndErrors = true;
    std::string Msg;
    for (const ParseDiagnostic &D : Parsed.Diagnostics)
      Msg += Path + ": " + D.str() + "\n";
    R.Error = Msg;
    R.ExitCode = SessionExitFindings;
    Stamp();
    return R;
  }
  // Sema polls the same budget checkpoints as the parser, so a deadline
  // that trips during semantic checking degrades the same way.
  SemaResult Sema;
  try {
    Sema = checkProgram(Parsed.Prog);
  } catch (const BudgetExceeded &E) {
    Degrade(E);
    return R;
  }
  if (Sema.hasErrors()) {
    R.FrontEndErrors = true;
    std::string Msg;
    for (const SemaDiagnostic &D : Sema.Diagnostics)
      Msg += Path + ": " + D.str() + "\n";
    R.Error = Msg;
    R.ExitCode = SessionExitFindings;
    Stamp();
    return R;
  }

  AnalysisOptions Analysis = Opts.Analysis;
  Analysis.Budget = &Budget;

  // CFG construction is cheap but walks the AST; keep it inside the
  // recovery net too so a malformed-but-parseable program cannot abort
  // the session.
  try {
    RecoveryScope Recover;
    R.Graph = std::make_shared<Cfg>(buildCfg(Parsed.Prog));
    R.Report = runClients(*R.Graph, Analysis);
  } catch (const BudgetExceeded &E) {
    // A post-engine client pass (matcher, topology) tripped the budget.
    // runClients threw before returning, so no partial report (or engine
    // configuration) survives to fold in here.
    Degrade(E);
    return R;
  } catch (const EngineError &E) {
    R.Outcome.Verdict = AnalysisVerdict::InternalError;
    R.Outcome.Reason = E.what();
    R.Error = std::string("internal error: ") + E.what();
    R.ExitCode = SessionExitInternal;
    Stamp();
    return R;
  }

  R.Outcome = R.Report.Analysis.Outcome;
  Stamp();
  if (R.Outcome.internalError())
    R.ExitCode = SessionExitInternal;
  else if (!R.Outcome.complete() || !R.Report.Analysis.Bugs.empty())
    R.ExitCode = SessionExitFindings;
  else
    R.ExitCode = SessionExitComplete;
  return R;
}
