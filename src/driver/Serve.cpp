//===- driver/Serve.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "diag/DiagRenderer.h"
#include "driver/Session.h"
#include "numeric/MemoSnapshot.h"
#include "support/Fault.h"
#include "support/Stats.h"
#include "support/Version.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <optional>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace csdf;

namespace {

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One-line diagnostics (renderDiagsJson emits one object per line)
/// re-shaped into a JSON array fragment.
std::string diagsJsonArray(const std::vector<Diagnostic> &Diags,
                           const std::string &Path) {
  std::string Lines = renderDiagsJson(Diags, Path);
  std::string Out = "[";
  size_t Pos = 0;
  bool First = true;
  while (Pos < Lines.size()) {
    size_t Nl = Lines.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Lines.size();
    if (Nl > Pos) {
      if (!First)
        Out += ',';
      First = false;
      Out.append(Lines, Pos, Nl - Pos);
    }
    Pos = Nl + 1;
  }
  Out += ']';
  return Out;
}

} // namespace

std::string csdf::overloadedResponse(unsigned RetryAfterMs) {
  return api::wireOverloaded(RetryAfterMs);
}

std::string ServeStats::json(std::size_t CacheEntries,
                             std::size_t CacheCapacity) const {
  char Rate[32];
  std::snprintf(Rate, sizeof(Rate), "%.4f", hitRate());
  std::string S = "{";
  S += "\"adopted_steps\":" + std::to_string(AdoptedSteps);
  S += ",\"analyze_requests\":" + std::to_string(AnalyzeRequests);
  S += ",\"budget_trips\":" + std::to_string(BudgetTrips);
  S += ",\"cache_capacity\":" + std::to_string(CacheCapacity);
  S += ",\"cache_entries\":" + std::to_string(CacheEntries);
  S += ",\"closure_full_calls\":" + std::to_string(ClosureFullCalls);
  S += ",\"closure_memo_hits\":" + std::to_string(ClosureMemoHits);
  S += ",\"cold_runs\":" + std::to_string(ColdRuns);
  S += ",\"disk_evictions\":" + std::to_string(DiskEvictions);
  S += ",\"disk_hits\":" + std::to_string(DiskHits);
  S += ",\"disk_misses\":" + std::to_string(DiskMisses);
  S += ",\"disk_quarantined\":" + std::to_string(DiskQuarantined);
  S += ",\"disk_read_failures\":" + std::to_string(DiskReadFailures);
  S += ",\"disk_write_failures\":" + std::to_string(DiskWriteFailures);
  S += ",\"disk_writes\":" + std::to_string(DiskWrites);
  S += ",\"errors\":" + std::to_string(Errors);
  S += ",\"evictions\":" + std::to_string(Evictions);
  S += ",\"hit_rate\":" + std::string(Rate);
  S += ",\"hits\":" + std::to_string(Hits);
  S += ",\"incremental_cache_hits\":" + std::to_string(IncrementalCacheHits);
  S += ",\"incremental_requests\":" + std::to_string(IncrementalRequests);
  S += ",\"last_seed_reject\":\"" + jsonEscape(LastSeedReject) + "\"";
  S += ",\"lint_requests\":" + std::to_string(LintRequests);
  S += ",\"live_steps\":" + std::to_string(LiveSteps);
  S += ",\"memo_adopted\":" + std::to_string(MemoAdopted);
  S += ",\"memo_entries\":" + std::to_string(MemoEntries);
  S += ",\"memo_quarantined\":" + std::to_string(MemoQuarantined);
  S += ",\"memo_snapshot_rejected\":" + std::to_string(MemoSnapshotRejected);
  S += ",\"memo_snapshot_saves\":" + std::to_string(MemoSnapshotSaves);
  S += ",\"misses\":" + std::to_string(Misses);
  S += ",\"proto\":" + std::to_string(api::WireProtoVersion);
  S += ",\"requests\":" + std::to_string(Requests);
  S += ",\"seeded_runs\":" + std::to_string(SeededRuns);
  S += ",\"shed_connections\":" + std::to_string(ShedConnections);
  S += ",\"store_enabled\":" + std::string(StoreEnabled ? "true" : "false");
  S += ",\"store_entries\":" + std::to_string(StoreEntries);
  S += ",\"store_live_bytes\":" + std::to_string(StoreLiveBytes);
  S += ",\"store_temps_cleaned\":" + std::to_string(StoreTempsCleaned);
  S += ",\"wall_us_avg\":" +
       std::to_string(Requests ? WallUsTotal / Requests : 0);
  S += ",\"wall_us_total\":" + std::to_string(WallUsTotal);
  S += "}";
  return S;
}

ServeServer::ServeServer(const ServeOptions &Opts)
    : Opts(Opts), Analyzer(api::AnalyzerConfig::warm()) {
  if (!Opts.MemoDir.empty()) {
    // Adopt the prior process's closure memo before the first request, so
    // a restarted daemon is warm on near-miss workloads too. Rejection is
    // non-fatal: the snapshot is a cache, and the daemon just runs cold.
    MemoSnapshotStats MStats;
    loadMemoSnapshot(Opts.MemoDir, toolVersion(), *Analyzer.closureMemo(),
                     MStats);
    Stats.MemoAdopted = MStats.Adopted;
    Stats.MemoSnapshotRejected = MStats.Rejected;
    Stats.MemoQuarantined = MStats.Quarantined;
  }
  if (Opts.StoreDir.empty())
    return;
  DiskStoreOptions SOpts;
  SOpts.Dir = Opts.StoreDir;
  SOpts.MaxBytes = Opts.StoreMaxBytes;
  // Version-salted keys: a store written by one build never answers for
  // another whose verdict bytes may legitimately differ.
  SOpts.Namespace = toolVersion();
  Store = std::make_unique<DiskStore>(std::move(SOpts));
  if (!Store->open(StoreError))
    Store.reset();
}

const ServeStats &ServeServer::stats() {
  const api::IncrementalStats &I = Analyzer.incrementalStats();
  Stats.IncrementalRequests = I.Requests;
  Stats.IncrementalCacheHits = I.CacheHits;
  Stats.SeededRuns = I.SeededRuns;
  Stats.ColdRuns = I.ColdRuns;
  Stats.AdoptedSteps = I.AdoptedSteps;
  Stats.LiveSteps = I.LiveSteps;
  Stats.LastSeedReject = I.LastSeedRejectReason;
  Stats.MemoEntries = Analyzer.closureMemo()->size();
  // The closure counters accumulate in the process-global registry (every
  // engine run records there); mirroring them here is what lets the fleet
  // smoke test assert a warm restart did measurably less closure work.
  Stats.ClosureFullCalls = static_cast<std::uint64_t>(
      StatsRegistry::global().counter("cg.closure.full.calls"));
  Stats.ClosureMemoHits = static_cast<std::uint64_t>(
      StatsRegistry::global().counter("cg.closure.memo.hits"));
  Stats.StoreEnabled = Store != nullptr;
  if (Store) {
    const DiskStoreStats &D = Store->stats();
    Stats.DiskHits = D.Hits;
    Stats.DiskMisses = D.Misses;
    Stats.DiskWrites = D.Writes;
    Stats.DiskWriteFailures = D.WriteFailures;
    Stats.DiskReadFailures = D.ReadFailures;
    Stats.DiskQuarantined = D.Quarantined;
    Stats.DiskEvictions = D.Evictions;
    Stats.StoreEntries = Store->entryCount();
    Stats.StoreLiveBytes = Store->liveBytes();
    Stats.StoreTempsCleaned = D.TempsCleaned;
  }
  return Stats;
}

std::optional<std::string> ServeServer::cacheGet(const std::string &Key,
                                                const char *&Tier) {
  auto It = CacheMap.find(Key);
  if (It != CacheMap.end()) {
    CacheList.splice(CacheList.begin(), CacheList, It->second);
    Tier = "memory";
    return It->second->second;
  }
  if (Store) {
    if (std::optional<std::string> Payload = Store->get(Key)) {
      // Backfill the memory tier so the next repeat is a memory hit.
      cachePut(Key, *Payload, /*WriteDisk=*/false);
      Tier = "disk";
      return Payload;
    }
  }
  return std::nullopt;
}

void ServeServer::cachePut(const std::string &Key, std::string Payload,
                           bool WriteDisk) {
  if (WriteDisk && Store)
    Store->put(Key, Payload);
  if (Opts.CacheCapacity == 0)
    return;
  auto It = CacheMap.find(Key);
  if (It != CacheMap.end()) {
    It->second->second = std::move(Payload);
    CacheList.splice(CacheList.begin(), CacheList, It->second);
    return;
  }
  CacheList.emplace_front(Key, std::move(Payload));
  CacheMap[Key] = CacheList.begin();
  if (CacheMap.size() > Opts.CacheCapacity) {
    CacheMap.erase(CacheList.back().first);
    CacheList.pop_back();
    ++Stats.Evictions;
  }
}

void ServeServer::flushStore() {
  if (Store)
    Store->sync();
  maybeFlushMemo(/*Force=*/true);
}

void ServeServer::maybeFlushMemo(bool Force) {
  if (Opts.MemoDir.empty())
    return;
  if (!Force && ColdSinceMemoFlush < Opts.MemoFlushEvery)
    return;
  ColdSinceMemoFlush = 0;
  MemoSnapshotStats MStats;
  std::string Error;
  // A failed flush is logged in the counters only (the daemon keeps the
  // previous good snapshot on disk); durability here is best-effort by
  // design — the memo is a cache.
  if (saveMemoSnapshot(Opts.MemoDir, toolVersion(), *Analyzer.closureMemo(),
                       MStats, Error))
    ++Stats.MemoSnapshotSaves;
}

std::string ServeServer::handleAnalyze(const api::WireRequest &Req) {
  ++Stats.AnalyzeRequests;

  std::string Source;
  if (Req.Source) {
    Source = *Req.Source;
  } else {
    std::string Error;
    if (!readSessionFile(Req.Path, Source, Error)) {
      // Not cached: the same request may succeed once the file exists.
      api::AnalyzeResponse R;
      R.Session.ExitCode = SessionExitUsage;
      R.Session.Error = Error;
      return api::wireResponseHead(Req.IdJson) +
             ",\"ok\":true,\"cached\":false,\"result\":" +
             api::verdictJson(Req.Path, R) + "}";
    }
  }

  // The full key string is stored, so a hit is exact string equality —
  // same source bytes, same path, same effective options.
  std::string Key =
      "analyze\n" + Req.Options.fingerprint() + "\n" + Req.Path + "\n" +
      Source;
  const char *Tier = "memory";
  if (std::optional<std::string> Payload = cacheGet(Key, Tier)) {
    if (Tier[0] == 'm') // disk hits are counted by the store's own stats
      ++Stats.Hits;
    return api::wireResponseHead(Req.IdJson) + ",\"ok\":true,\"cached\":true," +
           "\"tier\":\"" + Tier + "\",\"result\":" + *Payload + "}";
  }
  ++Stats.Misses;

  api::AnalyzeRequest AReq;
  AReq.Path = Req.Path;
  AReq.Source = std::move(Source);
  AReq.Options = Req.Options;
  // Through the incremental pipeline: after this daemon-level cache
  // missed (edited source), the prior revision's engine trace seeds the
  // re-analysis. The verdict is bit-identical to a cold run either way.
  api::AnalyzeResponse R = Analyzer.analyzeIncremental(AReq);
  if (!R.Session.Outcome.complete() && !R.Session.Outcome.internalError())
    ++Stats.BudgetTrips;

  std::string Payload = api::verdictJson(Req.Path, R);
  // Internal errors are not cached either: they are recovered invariant
  // violations, not a property of the input worth replaying.
  if (!R.Session.Outcome.internalError())
    cachePut(Key, Payload);
  ++ColdSinceMemoFlush;
  maybeFlushMemo(/*Force=*/false);
  return api::wireResponseHead(Req.IdJson) +
         ",\"ok\":true,\"cached\":false,\"result\":" + Payload + "}";
}

std::string ServeServer::handleLint(const api::WireRequest &Req) {
  ++Stats.LintRequests;

  std::string Source;
  if (Req.Source) {
    Source = *Req.Source;
  } else {
    std::string Error;
    if (!readSessionFile(Req.Path, Source, Error)) {
      ++Stats.Errors;
      return api::wireError(Req.IdJson, "io-error", Error,
                            /*Retryable=*/false);
    }
  }

  std::string Key = "lint\n" + Req.Options.fingerprint() + "\n" + Req.Path +
                    "\nwerror=" + std::to_string(Req.Werror) + ";minsev=" +
                    std::to_string(static_cast<int>(Req.MinSeverity)) +
                    ";disabled=";
  for (const std::string &Pass : Req.Disabled)
    Key += Pass + ",";
  Key += "\n" + Source;
  const char *Tier = "memory";
  if (std::optional<std::string> Payload = cacheGet(Key, Tier)) {
    if (Tier[0] == 'm')
      ++Stats.Hits;
    return api::wireResponseHead(Req.IdJson) + ",\"ok\":true,\"cached\":true," +
           "\"tier\":\"" + Tier + "\",\"result\":" + *Payload + "}";
  }
  ++Stats.Misses;

  api::LintRequest LReq;
  LReq.Path = Req.Path;
  LReq.Source = std::move(Source);
  LReq.Options = Req.Options;
  LReq.Disabled = Req.Disabled;
  LReq.Werror = Req.Werror;
  LReq.MinSeverity = Req.MinSeverity;
  api::LintResponse R = Analyzer.lintIncremental(LReq);

  std::string Payload =
      "{\"diagnostics\":" + diagsJsonArray(R.Diagnostics, Req.Path) +
      ",\"exit_code\":" + std::to_string(R.ExitCode) + "}";
  if (R.ExitCode != SessionExitInternal)
    cachePut(Key, Payload);
  ++ColdSinceMemoFlush;
  maybeFlushMemo(/*Force=*/false);
  return api::wireResponseHead(Req.IdJson) +
         ",\"ok\":true,\"cached\":false,\"result\":" + Payload + "}";
}

std::string ServeServer::handleLine(const std::string &Line, bool &Shutdown) {
  std::uint64_t Start = nowUs();
  ++Stats.Requests;

  auto Fail = [&](const std::string &IdJson, const char *Code,
                  const std::string &Msg) {
    ++Stats.Errors;
    Stats.WallUsTotal += nowUs() - Start;
    return api::wireError(IdJson, Code, Msg, /*Retryable=*/false);
  };

  // The envelope — size cap, JSON shape, member types, protocol version —
  // is enforced by the shared codec, so serve, router, and client agree
  // byte-for-byte on what a malformed request is answered with.
  api::WireRequest Req;
  std::string ErrorLine;
  if (!api::parseWireRequest(Line, Opts.MaxRequestBytes, Opts.Defaults, Req,
                             ErrorLine)) {
    ++Stats.Errors;
    Stats.WallUsTotal += nowUs() - Start;
    return ErrorLine;
  }

  std::string Resp;
  if (Req.Type == "analyze") {
    if (!Req.Source && Req.Path == "<request>")
      return Fail(Req.IdJson, "invalid-request",
                  "analyze needs a path or a source");
    Resp = handleAnalyze(Req);
  } else if (Req.Type == "lint") {
    if (!Req.Source && Req.Path == "<request>")
      return Fail(Req.IdJson, "invalid-request",
                  "lint needs a path or a source");
    Resp = handleLint(Req);
  } else if (Req.Type == "stats") {
    Stats.WallUsTotal += nowUs() - Start;
    return api::wireResponseHead(Req.IdJson) + ",\"ok\":true,\"stats\":" +
           stats().json(cacheEntries(), Opts.CacheCapacity) + "}";
  } else if (Req.Type == "shutdown") {
    Shutdown = true;
    // Graceful drain: pending store writes and the memo snapshot are
    // flushed before the response goes out, so an acknowledged shutdown
    // is a durable one.
    flushStore();
    Stats.WallUsTotal += nowUs() - Start;
    return api::wireResponseHead(Req.IdJson) +
           ",\"ok\":true,\"shutting_down\":true}";
  } else if (Req.Type.empty()) {
    return Fail(Req.IdJson, "invalid-request", "request has no type");
  } else {
    return Fail(Req.IdJson, "invalid-request",
                "unknown request type '" + Req.Type + "'");
  }

  // Deliberate mid-response crash site: the request was handled but the
  // response never leaves. Clients must treat the dropped connection as
  // retryable.
  if (FaultInjector::global().armed() &&
      FaultInjector::global().shouldFail("serve-crash-response"))
    ::_exit(141);

  std::uint64_t Wall = nowUs() - Start;
  Stats.WallUsTotal += Wall;
  // wall_us rides outside the cached payload: it is per-request, while
  // "result" must stay byte-stable between a miss and its later hits.
  Resp.insert(Resp.size() - 1, ",\"wall_us\":" + std::to_string(Wall));
  return Resp;
}

void csdf::runServeLoop(ServeServer &Server, std::istream &In,
                        std::ostream &Out) {
  std::string Line;
  bool Shutdown = false;
  while (!Shutdown && std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    Out << Server.handleLine(Line, Shutdown) << "\n" << std::flush;
  }
}

namespace {

bool writeAllFd(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Serves one accepted socket connection with the line protocol.
/// handleLine calls are serialized through \p Mu; reads poll with a short
/// timeout so the thread notices a daemon-wide shutdown promptly.
void serveConnection(ServeServer &Server, std::mutex &Mu, int Fd,
                     std::atomic<bool> &Shutdown, const ServeOptions &Opts) {
  timeval Tv{0, 200000};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));

  std::string Buf;
  char Chunk[4096];
  while (!Shutdown.load()) {
    size_t Nl = Buf.find('\n');
    if (Nl == std::string::npos) {
      // A runaway line (no newline past the cap) is answered and the
      // connection dropped — the daemon never buffers without bound.
      if (Buf.size() > Opts.MaxRequestBytes + 4096) {
        writeAllFd(Fd, api::wireError(
                           "null", "parse-error",
                           "request exceeds " +
                               std::to_string(Opts.MaxRequestBytes) +
                               " bytes",
                           /*Retryable=*/false) +
                           "\n");
        return;
      }
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N == 0)
        return; // client EOF
      if (N < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue; // timeout: re-check Shutdown
        return;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    std::string Resp;
    bool WantShutdown = false;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Resp = Server.handleLine(Line, WantShutdown);
    }
    bool Wrote = writeAllFd(Fd, Resp + "\n");
    if (WantShutdown) {
      Shutdown.store(true);
      return;
    }
    if (!Wrote)
      return;
  }
}

} // namespace

int csdf::runServe(const ServeOptions &Opts) {
  ServeServer Server(Opts);
  if (!Server.storeError().empty()) {
    std::fprintf(stderr, "csdf: error: %s\n", Server.storeError().c_str());
    return 2;
  }
  if (Opts.SocketPath.empty()) {
    runServeLoop(Server, std::cin, std::cout);
    Server.flushStore();
    return 0;
  }

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "csdf: error: socket path too long: '%s'\n",
                 Opts.SocketPath.c_str());
    return 2;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "csdf: error: socket: %s\n", std::strerror(errno));
    return 2;
  }
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    std::fprintf(stderr, "csdf: error: cannot listen on '%s': %s\n",
                 Opts.SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return 2;
  }

  // Each connection gets its own thread; request handling is serialized
  // through Mu (one warm analyzer). The admission gate sheds connections
  // beyond MaxInflight + QueueDepth with a structured `overloaded`
  // response instead of queueing unboundedly.
  std::atomic<bool> Shutdown{false};
  std::atomic<unsigned> Inflight{0};
  std::mutex Mu;
  std::vector<std::thread> Threads;
  const unsigned AdmitLimit = Opts.MaxInflight + Opts.QueueDepth;

  while (!Shutdown.load()) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue; // timeout: re-check Shutdown
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Inflight.load() >= AdmitLimit) {
      writeAllFd(Conn, overloadedResponse(/*RetryAfterMs=*/50) + "\n");
      ::close(Conn);
      std::lock_guard<std::mutex> Lock(Mu);
      Server.countShed();
      continue;
    }
    ++Inflight;
    Threads.emplace_back([&Server, &Mu, &Shutdown, &Inflight, &Opts,
                          Conn]() {
      serveConnection(Server, Mu, Conn, Shutdown, Opts);
      ::close(Conn);
      --Inflight;
    });
  }
  // Drain: every admitted connection finishes its in-flight request and
  // gets its response before the process exits.
  for (std::thread &T : Threads)
    T.join();
  ::close(Fd);
  ::unlink(Opts.SocketPath.c_str());
  Server.flushStore();
  return 0;
}
