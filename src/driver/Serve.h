//===- driver/Serve.h - Persistent analysis daemon ------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf serve` keeps one warm api::Analyzer alive and answers analysis
/// requests over a JSON-lines protocol — one request object per line in,
/// one response object per line out — on stdio (the default) or a unix
/// domain socket. Editors and build orchestrators get pCFG verdicts
/// without paying process startup, symbol re-interning, or closure
/// recomputation per file; repeated requests are answered from a
/// content-addressed LRU cache keyed by (source text, request options).
///
/// Requests:
///
///   {"id": 1, "type": "analyze", "path": "ring.mpl"}
///   {"id": 2, "type": "analyze", "path": "buf", "source": "proc p ...",
///    "options": {"client": "sectionx", "deadline_ms": 500}}
///   {"id": 3, "type": "lint", "path": "ring.mpl", "werror": true,
///    "disable": ["dead-store"], "min_severity": "warning"}
///   {"id": 4, "type": "stats"}
///   {"id": 5, "type": "shutdown"}
///
/// "source" is analyzed as given (the file is not read); otherwise "path"
/// is read per request. "options" layers on the daemon's defaults (the
/// shared CLI flags). Responses echo "id" and carry "ok"; an analyze
/// response's "result" is byte-identical to the object `csdf analyze
/// --format json` prints for the same input — the daemon is a cache in
/// front of the CLI, never a different analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_SERVE_H
#define CSDF_DRIVER_SERVE_H

#include "api/Csdf.h"

#include <cstdint>
#include <istream>
#include <list>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

namespace csdf {

/// Configuration of one daemon instance.
struct ServeOptions {
  /// Per-request defaults (a request's "options" object overrides them).
  api::RequestOptions Defaults;

  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t CacheCapacity = 256;

  /// When non-empty, listen on this unix domain socket path instead of
  /// stdio (one connection served at a time; the daemon state — cache,
  /// warm analyzer, stats — persists across connections).
  std::string SocketPath;
};

/// Daemon-lifetime counters, reported by the "stats" request.
struct ServeStats {
  std::uint64_t Requests = 0;
  std::uint64_t AnalyzeRequests = 0;
  std::uint64_t LintRequests = 0;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  /// Requests whose analysis degraded to Top on a budget limit.
  std::uint64_t BudgetTrips = 0;
  /// Malformed or rejected requests (parse error, unknown type/option).
  std::uint64_t Errors = 0;
  std::uint64_t WallUsTotal = 0;

  /// Incremental-pipeline counters, mirrored from the warm Analyzer's
  /// IncrementalStats when a stats request is answered. The daemon's own
  /// LRU answers exact repeats before the Analyzer sees them, so
  /// IncrementalCacheHits counts only requests that got past it (e.g.
  /// after an eviction).
  std::uint64_t IncrementalRequests = 0;
  std::uint64_t IncrementalCacheHits = 0;
  /// Misses that re-ran the engine with an accepted seed trace / cold.
  std::uint64_t SeededRuns = 0;
  std::uint64_t ColdRuns = 0;
  /// Engine worklist steps adopted from seed traces vs computed live.
  std::uint64_t AdoptedSteps = 0;
  std::uint64_t LiveSteps = 0;
  /// Why the most recent seed was rejected (empty: accepted or none).
  std::string LastSeedReject;

  double hitRate() const {
    std::uint64_t Lookups = Hits + Misses;
    return Lookups ? static_cast<double>(Hits) / Lookups : 0.0;
  }

  /// Stable JSON object (sorted keys, no trailing newline). CacheEntries
  /// is passed in because the cache lives in the server, not here.
  std::string json(std::size_t CacheEntries,
                   std::size_t CacheCapacity) const;
};

/// The daemon's request processor, transport-agnostic: feed it one request
/// line, get one response line back. Owns the warm Analyzer, the result
/// cache, and the stats. Tests drive this directly; runServe() wires it to
/// stdio or a socket.
class ServeServer {
public:
  explicit ServeServer(const ServeOptions &Opts);

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws; malformed input yields an "ok": false
  /// response. Sets \p Shutdown on a shutdown request.
  std::string handleLine(const std::string &Line, bool &Shutdown);

  /// Daemon counters with the incremental-pipeline section freshly
  /// mirrored from the warm Analyzer.
  const ServeStats &stats();
  std::size_t cacheEntries() const { return CacheMap.size(); }

private:
  struct Request;

  std::string handleAnalyze(const Request &Req);
  std::string handleLint(const Request &Req);

  /// Content-addressed cache lookup; moves the entry to MRU on hit.
  const std::string *cacheGet(const std::string &Key);
  void cachePut(const std::string &Key, std::string Payload);

  ServeOptions Opts;
  api::Analyzer Analyzer;
  ServeStats Stats;

  /// LRU list, most recent first; the map points into it. The key embeds
  /// the full option fingerprint and source text, so a hit is exact by
  /// construction — no hash-collision risk.
  std::list<std::pair<std::string, std::string>> CacheList;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::string>>::iterator>
      CacheMap;
};

/// Reads request lines from \p In, writes response lines (flushed each)
/// to \p Out, until EOF or a shutdown request.
void runServeLoop(ServeServer &Server, std::istream &In, std::ostream &Out);

/// Runs the daemon per \p Opts: stdio, or an AF_UNIX listener when
/// SocketPath is set. Returns a process exit code (0 on clean shutdown or
/// EOF, 2 on a transport setup failure).
int runServe(const ServeOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_SERVE_H
