//===- driver/Serve.h - Persistent analysis daemon ------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf serve` keeps one warm api::Analyzer alive and answers analysis
/// requests over a JSON-lines protocol — one request object per line in,
/// one response object per line out — on stdio (the default) or a unix
/// domain socket. Editors and build orchestrators get pCFG verdicts
/// without paying process startup, symbol re-interning, or closure
/// recomputation per file; repeated requests are answered from a
/// content-addressed LRU cache keyed by (source text, request options).
///
/// With `--store-dir` the daemon adds a second, *durable* tier: an
/// on-disk content-addressed store (support/Store.h) consulted on a
/// memory miss and backfilled on every cacheable result, so a `kill -9`
/// + restart serves the same requests byte-identically from disk instead
/// of re-analyzing. Cached responses carry `"tier": "memory"|"disk"`.
///
/// Requests:
///
///   {"id": 1, "type": "analyze", "path": "ring.mpl"}
///   {"id": 2, "type": "analyze", "path": "buf", "source": "proc p ...",
///    "options": {"client": "sectionx", "deadline_ms": 500}}
///   {"id": 3, "type": "lint", "path": "ring.mpl", "werror": true,
///    "disable": ["dead-store"], "min_severity": "warning"}
///   {"id": 4, "type": "stats"}
///   {"id": 5, "type": "shutdown"}
///
/// "source" is analyzed as given (the file is not read); otherwise "path"
/// is read per request. "options" layers on the daemon's defaults (the
/// shared CLI flags). The envelope (members, versioning, `tenant`, error
/// vocabulary) is specified once in api/Wire.h and shared with `csdf
/// client` and `csdf router`; every response leads with "id", "proto",
/// and "tool_version", then "ok". An analyze response's "result" is
/// byte-identical to the object `csdf analyze --format json` prints for
/// the same input — the daemon is a cache in front of the CLI, never a
/// different analyzer.
///
/// Error responses are structured and machine-retryable (see Wire.h for
/// the code vocabulary); a bad line never kills the daemon, and a
/// mismatched "proto" gets a non-retryable "proto-mismatch" answer.
/// `csdf client` implements the retry side of this contract with capped
/// exponential backoff.
///
/// On the socket transport each connection is served on its own thread
/// (request handling itself is serialized through the single warm
/// analyzer); the admission gate sheds connections beyond
/// `--max-inflight` + `--queue-depth` with an `overloaded` response
/// instead of queueing unboundedly. A `shutdown` request drains: requests
/// already in flight still get responses, the disk store is flushed, and
/// the process exits 0 deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_SERVE_H
#define CSDF_DRIVER_SERVE_H

#include "api/Csdf.h"
#include "api/Wire.h"
#include "support/Store.h"

#include <cstdint>
#include <istream>
#include <list>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

namespace csdf {

/// Configuration of one daemon instance.
struct ServeOptions {
  /// Per-request defaults (a request's "options" object overrides them).
  api::RequestOptions Defaults;

  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t CacheCapacity = 256;

  /// When non-empty, results are also persisted to this directory's
  /// content-addressed DiskStore and served from it after a restart.
  std::string StoreDir;

  /// Disk-store byte budget (oldest records evicted past it).
  std::uint64_t StoreMaxBytes = 256ull << 20;

  /// When non-empty, the warm ClosureMemo is periodically snapshotted to
  /// this directory (numeric/MemoSnapshot.h) and adopted back on
  /// startup, so a restarted daemon is warm on *near-miss* workloads —
  /// edited sources whose constraint graphs mostly repeat — not only the
  /// exact repeats the result store answers.
  std::string MemoDir;

  /// Snapshot the memo after this many cache-missing (analyzed) requests
  /// since the last flush; also flushed on graceful shutdown.
  unsigned MemoFlushEvery = 16;

  /// Socket admission gate: connections concurrently being served, plus
  /// how many more may wait. A connection arriving past
  /// MaxInflight + QueueDepth gets an `overloaded` response and is
  /// closed. (Request handling is serialized through the one warm
  /// analyzer; the gate bounds admitted work, not parallel analyses.)
  unsigned MaxInflight = 8;
  unsigned QueueDepth = 16;

  /// Requests over this many bytes are rejected with a structured
  /// `parse-error` instead of being buffered without bound.
  std::size_t MaxRequestBytes = 8ull << 20;

  /// When non-empty, listen on this unix domain socket path instead of
  /// stdio (the daemon state — cache, warm analyzer, stats — persists
  /// across connections).
  std::string SocketPath;
};

/// Daemon-lifetime counters, reported by the "stats" request.
struct ServeStats {
  std::uint64_t Requests = 0;
  std::uint64_t AnalyzeRequests = 0;
  std::uint64_t LintRequests = 0;
  /// Memory-LRU tier hits. Disk-tier hits are counted separately below;
  /// Misses counts requests that missed *both* tiers and analyzed.
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  /// Memory-LRU evictions (the disk tier's evictions are DiskEvictions).
  std::uint64_t Evictions = 0;
  /// Requests whose analysis degraded to Top on a budget limit.
  std::uint64_t BudgetTrips = 0;
  /// Malformed or rejected requests (parse error, unknown type/option).
  std::uint64_t Errors = 0;
  /// Connections shed by the admission gate with an `overloaded` error.
  std::uint64_t ShedConnections = 0;
  std::uint64_t WallUsTotal = 0;

  /// Disk-store tier, mirrored from the DiskStore when a stats request
  /// is answered (all zero when no --store-dir is configured).
  bool StoreEnabled = false;
  std::uint64_t DiskHits = 0;
  std::uint64_t DiskMisses = 0;
  std::uint64_t DiskWrites = 0;
  std::uint64_t DiskWriteFailures = 0;
  std::uint64_t DiskReadFailures = 0;
  std::uint64_t DiskQuarantined = 0;
  std::uint64_t DiskEvictions = 0;
  std::uint64_t StoreEntries = 0;
  std::uint64_t StoreLiveBytes = 0;
  std::uint64_t StoreTempsCleaned = 0;

  /// Incremental-pipeline counters, mirrored from the warm Analyzer's
  /// IncrementalStats when a stats request is answered. The daemon's own
  /// LRU answers exact repeats before the Analyzer sees them, so
  /// IncrementalCacheHits counts only requests that got past it (e.g.
  /// after an eviction).
  std::uint64_t IncrementalRequests = 0;
  std::uint64_t IncrementalCacheHits = 0;
  /// Misses that re-ran the engine with an accepted seed trace / cold.
  std::uint64_t SeededRuns = 0;
  std::uint64_t ColdRuns = 0;
  /// Engine worklist steps adopted from seed traces vs computed live.
  std::uint64_t AdoptedSteps = 0;
  std::uint64_t LiveSteps = 0;
  /// Why the most recent seed was rejected (empty: accepted or none).
  std::string LastSeedReject;

  /// ClosureMemo snapshot tier (--memo-dir), plus the process-global
  /// closure counters it exists to reduce: a restarted shard that adopted
  /// a snapshot shows MemoAdopted > 0 and fewer ClosureFullCalls than a
  /// cold shard on the same near-miss workload.
  std::uint64_t MemoEntries = 0;
  std::uint64_t MemoAdopted = 0;
  std::uint64_t MemoSnapshotSaves = 0;
  std::uint64_t MemoSnapshotRejected = 0;
  std::uint64_t MemoQuarantined = 0;
  std::uint64_t ClosureFullCalls = 0;
  std::uint64_t ClosureMemoHits = 0;

  double hitRate() const {
    std::uint64_t Lookups = Hits + Misses;
    return Lookups ? static_cast<double>(Hits) / Lookups : 0.0;
  }

  /// Stable JSON object (sorted keys, no trailing newline). CacheEntries
  /// is passed in because the cache lives in the server, not here.
  std::string json(std::size_t CacheEntries,
                   std::size_t CacheCapacity) const;
};

/// The structured `overloaded` response the admission gate writes before
/// closing a shed connection (api::wireOverloaded, re-exported for the
/// transport loop and its tests).
std::string overloadedResponse(unsigned RetryAfterMs);

/// The daemon's request processor, transport-agnostic: feed it one request
/// line, get one response line back. Owns the warm Analyzer, the result
/// cache, the optional disk store, and the stats. Not internally
/// synchronized — the socket transport serializes handleLine calls under
/// one mutex. Tests drive this directly; runServe() wires it to stdio or
/// a socket.
class ServeServer {
public:
  explicit ServeServer(const ServeOptions &Opts);

  /// Non-empty when --store-dir was configured but the store could not
  /// be opened; runServe() refuses to start in that case.
  const std::string &storeError() const { return StoreError; }

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws; malformed input yields an "ok": false
  /// response. Sets \p Shutdown on a shutdown request.
  std::string handleLine(const std::string &Line, bool &Shutdown);

  /// Daemon counters with the incremental-pipeline and disk-store
  /// sections freshly mirrored.
  const ServeStats &stats();
  std::size_t cacheEntries() const { return CacheMap.size(); }
  DiskStore *store() { return Store.get(); }

  /// Counts one admission-gate shed (called by the socket accept loop
  /// under the server mutex).
  void countShed() { ++Stats.ShedConnections; }

  /// Flushes the disk store and the memo snapshot (graceful-drain step of
  /// shutdown).
  void flushStore();

private:
  std::string handleAnalyze(const api::WireRequest &Req);
  std::string handleLint(const api::WireRequest &Req);

  /// Snapshot the closure memo to MemoDir when due (every MemoFlushEvery
  /// analyzed requests); \p Force flushes unconditionally (shutdown).
  void maybeFlushMemo(bool Force);

  /// Two-tier lookup: memory LRU first (moves the entry to MRU), then
  /// the disk store (backfilling the LRU). \p Tier names the hit's tier
  /// for the response. Returns empty optional on a full miss.
  std::optional<std::string> cacheGet(const std::string &Key,
                                      const char *&Tier);
  void cachePut(const std::string &Key, std::string Payload,
                bool WriteDisk = true);

  ServeOptions Opts;
  api::Analyzer Analyzer;
  ServeStats Stats;
  std::unique_ptr<DiskStore> Store;
  std::string StoreError;
  /// Analyzed (cache-missing) requests since the last memo flush.
  unsigned ColdSinceMemoFlush = 0;

  /// LRU list, most recent first; the map points into it. The key embeds
  /// the full option fingerprint and source text, so a hit is exact by
  /// construction — no hash-collision risk.
  std::list<std::pair<std::string, std::string>> CacheList;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::string>>::iterator>
      CacheMap;
};

/// Reads request lines from \p In, writes response lines (flushed each)
/// to \p Out, until EOF or a shutdown request.
void runServeLoop(ServeServer &Server, std::istream &In, std::ostream &Out);

/// Runs the daemon per \p Opts: stdio, or an AF_UNIX listener when
/// SocketPath is set. Returns a process exit code (0 on clean shutdown or
/// EOF — deterministically, with the store flushed; 2 on a transport or
/// store setup failure).
int runServe(const ServeOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_SERVE_H
