//===- driver/Batch.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"

#include "diag/DiagRenderer.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace csdf;

const char *csdf::batchModeName(BatchMode Mode) {
  switch (Mode) {
  case BatchMode::Fork:
    return "fork";
  case BatchMode::Threads:
    return "threads";
  }
  return "unknown";
}

const char *csdf::batchExitReasonName(BatchExitReason Reason) {
  switch (Reason) {
  case BatchExitReason::Exited:
    return "exited";
  case BatchExitReason::Signaled:
    return "signaled";
  case BatchExitReason::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

bool csdf::collectBatchInputs(const std::string &DirOrList,
                              std::vector<std::string> &Files,
                              std::string &Error) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (fs::is_directory(DirOrList, Ec)) {
    for (const fs::directory_entry &E : fs::directory_iterator(DirOrList, Ec))
      if (E.is_regular_file() && E.path().extension() == ".mpl")
        Files.push_back(E.path().string());
    std::sort(Files.begin(), Files.end());
    if (Files.empty()) {
      Error = "error: no .mpl files in directory '" + DirOrList + "'";
      return false;
    }
    return true;
  }
  std::ifstream In(DirOrList);
  if (!In) {
    Error = "error: cannot read '" + DirOrList + "'";
    return false;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    // Trim and skip blanks/comments so hand-maintained lists stay tidy.
    size_t B = Line.find_first_not_of(" \t\r");
    size_t E = Line.find_last_not_of(" \t\r");
    if (B == std::string::npos || Line[B] == '#')
      continue;
    Files.push_back(Line.substr(B, E - B + 1));
  }
  if (Files.empty()) {
    Error = "error: file list '" + DirOrList + "' names no inputs";
    return false;
  }
  return true;
}

namespace {

std::uint64_t nowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs one session in the already-forked child and reports the outcome
/// line over \p OutFd as "verdict\tdetail\n". Never returns.
[[noreturn]] void childMain(const std::string &File,
                            const SessionOptions &Opts, int OutFd) {
  // The child talks to the parent only through the outcome pipe; analysis
  // chatter would interleave across jobs.
  int DevNull = ::open("/dev/null", O_WRONLY);
  if (DevNull >= 0) {
    ::dup2(DevNull, STDOUT_FILENO);
    ::dup2(DevNull, STDERR_FILENO);
    ::close(DevNull);
  }

  std::string Verdict;
  std::string Detail;
  int Code = runSessionOutcome(File, Opts, Verdict, Detail);
  std::string Line = Verdict + "\t" + Detail + "\n";
  // Best effort: if the parent vanished there is nobody to report to.
  ssize_t Unused = ::write(OutFd, Line.c_str(), Line.size());
  (void)Unused;
  ::close(OutFd);
  ::_exit(Code);
}

struct RunningChild {
  size_t Index = 0;
  int PipeFd = -1;
  std::uint64_t StartMs = 0;
  bool Killed = false;
};

/// Drains whatever the child wrote to its outcome pipe (at most a line).
std::string drainPipe(int Fd) {
  std::string Out;
  char Buf[512];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  return Out;
}

} // namespace

void csdf::sessionVerdict(const SessionResult &R, std::string &Verdict,
                          std::string &Detail) {
  if (R.ExitCode == SessionExitUsage) {
    Verdict = "usage-error";
    Detail = R.Error;
  } else if (R.FrontEndErrors) {
    Verdict = "front-end-errors";
    // First line only: the report row (and pipe protocol) is one line.
    Detail = R.Error.substr(0, R.Error.find('\n'));
  } else {
    Verdict = R.Outcome.str();
    Detail = R.Outcome.Reason;
    if (R.ExitCode == SessionExitFindings && R.Outcome.complete())
      Detail = std::to_string(R.Report.Analysis.Bugs.size()) +
               " bug candidate(s)";
  }
  std::replace(Detail.begin(), Detail.end(), '\n', ' ');
  std::replace(Detail.begin(), Detail.end(), '\t', ' ');
}

int csdf::runSessionOutcome(const std::string &File,
                            const SessionOptions &Opts, std::string &Verdict,
                            std::string &Detail) {
  SessionResult R;
  std::string Source;
  if (!readSessionFile(File, Source, R.Error))
    R.ExitCode = SessionExitUsage;
  else
    R = runAnalysisSession(File, Source, Opts);
  sessionVerdict(R, Verdict, Detail);
  return R.ExitCode;
}

BatchReport csdf::runBatchFork(const std::vector<std::string> &Files,
                               const BatchOptions &Opts) {
  BatchReport Report;
  Report.Entries.resize(Files.size());
  for (size_t I = 0; I < Files.size(); ++I)
    Report.Entries[I].File = Files[I];

  unsigned Jobs = std::max(1u, Opts.Jobs);
  std::map<pid_t, RunningChild> Running;
  size_t Next = 0;

  auto Spawn = [&](size_t Index) -> bool {
    int Fds[2];
    if (::pipe(Fds) != 0)
      return false;
    pid_t Pid = ::fork();
    if (Pid < 0) {
      ::close(Fds[0]);
      ::close(Fds[1]);
      return false;
    }
    if (Pid == 0) {
      ::close(Fds[0]);
      // No core dumps from deliberate crash corpora; bound CPU and
      // address space so even a non-cooperative child cannot run away.
      struct rlimit NoCore = {0, 0};
      ::setrlimit(RLIMIT_CORE, &NoCore);
      if (Opts.TimeoutMs) {
        rlim_t Secs = static_cast<rlim_t>(Opts.TimeoutMs / 1000 + 2);
        struct rlimit Cpu = {Secs, Secs + 1};
        ::setrlimit(RLIMIT_CPU, &Cpu);
      }
      if (Opts.AddressSpaceMb) {
        rlim_t Bytes = static_cast<rlim_t>(Opts.AddressSpaceMb) * 1024 * 1024;
        struct rlimit As = {Bytes, Bytes};
        ::setrlimit(RLIMIT_AS, &As);
      }
      childMain(Files[Index], Opts.Session, Fds[1]);
    }
    ::close(Fds[1]);
    Running[Pid] = {Index, Fds[0], nowMs(), false};
    return true;
  };

  auto Reap = [&](pid_t Pid, int Status, const struct rusage &Ru) {
    auto It = Running.find(Pid);
    if (It == Running.end())
      return;
    RunningChild Child = It->second;
    Running.erase(It);
    BatchEntry &E = Report.Entries[Child.Index];
    E.WallMs = nowMs() - Child.StartMs;
    // Linux reports ru_maxrss in kilobytes.
    E.PeakRssKb = static_cast<std::uint64_t>(Ru.ru_maxrss);

    std::string Line = drainPipe(Child.PipeFd);
    ::close(Child.PipeFd);
    size_t Tab = Line.find('\t');
    size_t Nl = Line.find('\n');
    std::string Verdict =
        Tab == std::string::npos ? "" : Line.substr(0, Tab);
    std::string Detail =
        Tab == std::string::npos
            ? ""
            : Line.substr(Tab + 1,
                          Nl == std::string::npos ? std::string::npos
                                                  : Nl - Tab - 1);

    if (Child.Killed) {
      E.Reason = BatchExitReason::TimedOut;
      E.Signal = SIGKILL;
      E.Verdict = "timeout";
      E.Detail = "killed after exceeding " +
                 std::to_string(Opts.TimeoutMs) + " ms wall-clock timeout";
      Report.Timeouts++;
      return;
    }
    if (WIFSIGNALED(Status)) {
      E.Reason = BatchExitReason::Signaled;
      E.Signal = WTERMSIG(Status);
      E.Verdict = "crash";
      E.Detail = std::string("killed by signal ") +
                 strsignal(WTERMSIG(Status));
      Report.Crashes++;
      return;
    }
    E.Reason = BatchExitReason::Exited;
    E.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
    E.Verdict = Verdict.empty() ? "unknown" : Verdict;
    E.Detail = Detail;
    switch (E.ExitCode) {
    case SessionExitComplete:
      Report.Complete++;
      break;
    case SessionExitFindings:
      Report.Findings++;
      break;
    case SessionExitUsage:
      Report.UsageErrors++;
      break;
    default:
      Report.InternalErrors++;
      break;
    }
  };

  while (Next < Files.size() || !Running.empty()) {
    while (Next < Files.size() && Running.size() < Jobs) {
      if (!Spawn(Next)) {
        // Could not fork: report the file as an internal error rather
        // than dropping it, and stop trying to add load.
        BatchEntry &E = Report.Entries[Next];
        E.Reason = BatchExitReason::Exited;
        E.ExitCode = SessionExitInternal;
        E.Verdict = "internal-error";
        E.Detail = std::string("fork/pipe failed: ") + std::strerror(errno);
        Report.InternalErrors++;
      }
      ++Next;
    }
    if (Running.empty())
      continue;

    int Status = 0;
    struct rusage Ru;
    std::memset(&Ru, 0, sizeof(Ru));
    pid_t Pid = ::wait4(-1, &Status, WNOHANG, &Ru);
    if (Pid > 0) {
      Reap(Pid, Status, Ru);
      continue;
    }

    // Nothing exited: enforce the wall-clock timeout, then yield briefly.
    if (Opts.TimeoutMs) {
      std::uint64_t Now = nowMs();
      for (auto &[ChildPid, Child] : Running) {
        if (!Child.Killed && Now - Child.StartMs > Opts.TimeoutMs) {
          Child.Killed = true;
          ::kill(ChildPid, SIGKILL);
        }
      }
    }
    ::usleep(2000);
  }
  return Report;
}

std::string csdf::batchEntryJson(const BatchEntry &E) {
  std::ostringstream OS;
  OS << "{\"file\": \"" << jsonEscape(E.File) << "\", \"verdict\": \""
     << jsonEscape(E.Verdict) << "\", \"exit_reason\": \""
     << batchExitReasonName(E.Reason) << "\", \"exit_code\": " << E.ExitCode
     << ", \"signal\": " << E.Signal << ", \"detail\": \""
     << jsonEscape(E.Detail) << "\", \"wall_ms\": " << E.WallMs
     << ", \"peak_rss_kb\": " << E.PeakRssKb << "}";
  return OS.str();
}

std::string BatchReport::json() const {
  std::ostringstream OS;
  OS << "{\n  \"summary\": {\"files\": " << Entries.size()
     << ", \"complete\": " << Complete << ", \"findings\": " << Findings
     << ", \"usage_errors\": " << UsageErrors
     << ", \"internal_errors\": " << InternalErrors
     << ", \"crashes\": " << Crashes << ", \"timeouts\": " << Timeouts
     << "},\n  \"files\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I)
    OS << "    " << batchEntryJson(Entries[I])
       << (I + 1 < Entries.size() ? ",\n" : "\n");
  OS << "  ]\n}\n";
  return OS.str();
}
