//===- driver/Batch.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Batch.h"

#include "diag/DiagRenderer.h"
#include "numeric/ConstraintGraph.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace csdf;

const char *csdf::batchModeName(BatchMode Mode) {
  switch (Mode) {
  case BatchMode::Fork:
    return "fork";
  case BatchMode::Threads:
    return "threads";
  }
  return "unknown";
}

const char *csdf::batchExitReasonName(BatchExitReason Reason) {
  switch (Reason) {
  case BatchExitReason::Exited:
    return "exited";
  case BatchExitReason::Signaled:
    return "signaled";
  case BatchExitReason::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

bool csdf::collectBatchInputs(const std::string &DirOrList,
                              std::vector<std::string> &Files,
                              std::string &Error) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (fs::is_directory(DirOrList, Ec)) {
    for (const fs::directory_entry &E : fs::directory_iterator(DirOrList, Ec))
      if (E.is_regular_file() && E.path().extension() == ".mpl")
        Files.push_back(E.path().string());
    std::sort(Files.begin(), Files.end());
    if (Files.empty()) {
      Error = "error: no .mpl files in directory '" + DirOrList + "'";
      return false;
    }
    return true;
  }
  std::ifstream In(DirOrList);
  if (!In) {
    Error = "error: cannot read '" + DirOrList + "'";
    return false;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    // Trim and skip blanks/comments so hand-maintained lists stay tidy.
    size_t B = Line.find_first_not_of(" \t\r");
    size_t E = Line.find_last_not_of(" \t\r");
    if (B == std::string::npos || Line[B] == '#')
      continue;
    Files.push_back(Line.substr(B, E - B + 1));
  }
  if (Files.empty()) {
    Error = "error: file list '" + DirOrList + "' names no inputs";
    return false;
  }
  return true;
}

namespace {

std::uint64_t nowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs one session over \p File and renders its outcome as the batch's
/// verdict/detail pair (single line each). Returns the session exit code.
/// Shared by the forked child and the in-process threads mode.
int runSessionOutcome(const std::string &File, const SessionOptions &Opts,
                      std::string &Verdict, std::string &Detail) {
  int Code;
  std::string Source, Error;
  if (!readSessionFile(File, Source, Error)) {
    Verdict = "usage-error";
    Detail = Error;
    Code = SessionExitUsage;
  } else {
    SessionResult R = runAnalysisSession(File, Source, Opts);
    Code = R.ExitCode;
    if (R.FrontEndErrors) {
      Verdict = "front-end-errors";
      // First line only: the report row (and pipe protocol) is one line.
      Detail = R.Error.substr(0, R.Error.find('\n'));
    } else {
      Verdict = R.Outcome.str();
      Detail = R.Outcome.Reason;
      if (Code == SessionExitFindings && R.Outcome.complete())
        Detail = std::to_string(R.Report.Analysis.Bugs.size()) +
                 " bug candidate(s)";
    }
  }
  std::replace(Detail.begin(), Detail.end(), '\n', ' ');
  std::replace(Detail.begin(), Detail.end(), '\t', ' ');
  return Code;
}

/// Runs one session in the already-forked child and reports the outcome
/// line over \p OutFd as "verdict\tdetail\n". Never returns.
[[noreturn]] void childMain(const std::string &File,
                            const SessionOptions &Opts, int OutFd) {
  // The child talks to the parent only through the outcome pipe; analysis
  // chatter would interleave across jobs.
  int DevNull = ::open("/dev/null", O_WRONLY);
  if (DevNull >= 0) {
    ::dup2(DevNull, STDOUT_FILENO);
    ::dup2(DevNull, STDERR_FILENO);
    ::close(DevNull);
  }

  std::string Verdict;
  std::string Detail;
  int Code = runSessionOutcome(File, Opts, Verdict, Detail);
  std::string Line = Verdict + "\t" + Detail + "\n";
  // Best effort: if the parent vanished there is nobody to report to.
  ssize_t Unused = ::write(OutFd, Line.c_str(), Line.size());
  (void)Unused;
  ::close(OutFd);
  ::_exit(Code);
}

struct RunningChild {
  size_t Index = 0;
  int PipeFd = -1;
  std::uint64_t StartMs = 0;
  bool Killed = false;
};

/// Drains whatever the child wrote to its outcome pipe (at most a line).
std::string drainPipe(int Fd) {
  std::string Out;
  char Buf[512];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  return Out;
}

/// The shared-memory batch runner: sessions run on a thread pool inside
/// this process, all sharing one cross-session ClosureMemo so closure
/// results computed for one file are reused by every later one. Trades
/// the fork mode's hard crash isolation for zero process overhead; hangs
/// are still bounded by mapping TimeoutMs onto the cooperative budget
/// deadline.
BatchReport runBatchThreads(const std::vector<std::string> &Files,
                            const BatchOptions &Opts) {
  BatchReport Report;
  Report.Entries.resize(Files.size());
  for (size_t I = 0; I < Files.size(); ++I)
    Report.Entries[I].File = Files[I];

  auto SharedMemo = std::make_shared<ClosureMemo>(/*CrossSession=*/true);

  {
    ThreadPool Pool(std::max(1u, Opts.Jobs));
    std::vector<std::future<void>> Done;
    Done.reserve(Files.size());
    for (size_t I = 0; I < Files.size(); ++I) {
      Done.push_back(Pool.submit([&Report, &Files, &Opts, SharedMemo, I] {
        BatchEntry &E = Report.Entries[I]; // Disjoint per task: no lock.
        std::uint64_t Start = nowMs();
        SessionOptions SOpts = Opts.Session;
        // No SIGKILL backstop in-process: the wall-clock timeout becomes
        // (or tightens) the session's cooperative deadline.
        if (Opts.TimeoutMs &&
            (SOpts.DeadlineMs == 0 || Opts.TimeoutMs < SOpts.DeadlineMs))
          SOpts.DeadlineMs = Opts.TimeoutMs;
        SOpts.Analysis.SharedMemo = SharedMemo;
        E.Reason = BatchExitReason::Exited;
        try {
          E.ExitCode = runSessionOutcome(Files[I], SOpts, E.Verdict, E.Detail);
        } catch (const std::exception &Ex) {
          // Sessions recover their own failures; this catches what leaks
          // anyway (e.g. bad_alloc) so one file cannot sink the batch.
          E.ExitCode = SessionExitInternal;
          E.Verdict = "internal-error";
          E.Detail = std::string("uncaught exception: ") + Ex.what();
        }
        E.WallMs = nowMs() - Start;
        // Peak RSS is a per-process number; in-process sessions share the
        // address space, so no per-file figure exists.
        E.PeakRssKb = 0;
      }));
    }
    for (std::future<void> &F : Done)
      F.get();
  }

  for (const BatchEntry &E : Report.Entries) {
    switch (E.ExitCode) {
    case SessionExitComplete:
      Report.Complete++;
      break;
    case SessionExitFindings:
      Report.Findings++;
      break;
    case SessionExitUsage:
      Report.UsageErrors++;
      break;
    default:
      Report.InternalErrors++;
      break;
    }
  }
  return Report;
}

} // namespace

BatchReport csdf::runBatch(const std::vector<std::string> &Files,
                           const BatchOptions &Opts) {
  if (Opts.Mode == BatchMode::Threads)
    return runBatchThreads(Files, Opts);
  BatchReport Report;
  Report.Entries.resize(Files.size());
  for (size_t I = 0; I < Files.size(); ++I)
    Report.Entries[I].File = Files[I];

  unsigned Jobs = std::max(1u, Opts.Jobs);
  std::map<pid_t, RunningChild> Running;
  size_t Next = 0;

  auto Spawn = [&](size_t Index) -> bool {
    int Fds[2];
    if (::pipe(Fds) != 0)
      return false;
    pid_t Pid = ::fork();
    if (Pid < 0) {
      ::close(Fds[0]);
      ::close(Fds[1]);
      return false;
    }
    if (Pid == 0) {
      ::close(Fds[0]);
      // No core dumps from deliberate crash corpora; bound CPU and
      // address space so even a non-cooperative child cannot run away.
      struct rlimit NoCore = {0, 0};
      ::setrlimit(RLIMIT_CORE, &NoCore);
      if (Opts.TimeoutMs) {
        rlim_t Secs = static_cast<rlim_t>(Opts.TimeoutMs / 1000 + 2);
        struct rlimit Cpu = {Secs, Secs + 1};
        ::setrlimit(RLIMIT_CPU, &Cpu);
      }
      if (Opts.AddressSpaceMb) {
        rlim_t Bytes = static_cast<rlim_t>(Opts.AddressSpaceMb) * 1024 * 1024;
        struct rlimit As = {Bytes, Bytes};
        ::setrlimit(RLIMIT_AS, &As);
      }
      childMain(Files[Index], Opts.Session, Fds[1]);
    }
    ::close(Fds[1]);
    Running[Pid] = {Index, Fds[0], nowMs(), false};
    return true;
  };

  auto Reap = [&](pid_t Pid, int Status, const struct rusage &Ru) {
    auto It = Running.find(Pid);
    if (It == Running.end())
      return;
    RunningChild Child = It->second;
    Running.erase(It);
    BatchEntry &E = Report.Entries[Child.Index];
    E.WallMs = nowMs() - Child.StartMs;
    // Linux reports ru_maxrss in kilobytes.
    E.PeakRssKb = static_cast<std::uint64_t>(Ru.ru_maxrss);

    std::string Line = drainPipe(Child.PipeFd);
    ::close(Child.PipeFd);
    size_t Tab = Line.find('\t');
    size_t Nl = Line.find('\n');
    std::string Verdict =
        Tab == std::string::npos ? "" : Line.substr(0, Tab);
    std::string Detail =
        Tab == std::string::npos
            ? ""
            : Line.substr(Tab + 1,
                          Nl == std::string::npos ? std::string::npos
                                                  : Nl - Tab - 1);

    if (Child.Killed) {
      E.Reason = BatchExitReason::TimedOut;
      E.Signal = SIGKILL;
      E.Verdict = "timeout";
      E.Detail = "killed after exceeding " +
                 std::to_string(Opts.TimeoutMs) + " ms wall-clock timeout";
      Report.Timeouts++;
      return;
    }
    if (WIFSIGNALED(Status)) {
      E.Reason = BatchExitReason::Signaled;
      E.Signal = WTERMSIG(Status);
      E.Verdict = "crash";
      E.Detail = std::string("killed by signal ") +
                 strsignal(WTERMSIG(Status));
      Report.Crashes++;
      return;
    }
    E.Reason = BatchExitReason::Exited;
    E.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
    E.Verdict = Verdict.empty() ? "unknown" : Verdict;
    E.Detail = Detail;
    switch (E.ExitCode) {
    case SessionExitComplete:
      Report.Complete++;
      break;
    case SessionExitFindings:
      Report.Findings++;
      break;
    case SessionExitUsage:
      Report.UsageErrors++;
      break;
    default:
      Report.InternalErrors++;
      break;
    }
  };

  while (Next < Files.size() || !Running.empty()) {
    while (Next < Files.size() && Running.size() < Jobs) {
      if (!Spawn(Next)) {
        // Could not fork: report the file as an internal error rather
        // than dropping it, and stop trying to add load.
        BatchEntry &E = Report.Entries[Next];
        E.Reason = BatchExitReason::Exited;
        E.ExitCode = SessionExitInternal;
        E.Verdict = "internal-error";
        E.Detail = std::string("fork/pipe failed: ") + std::strerror(errno);
        Report.InternalErrors++;
      }
      ++Next;
    }
    if (Running.empty())
      continue;

    int Status = 0;
    struct rusage Ru;
    std::memset(&Ru, 0, sizeof(Ru));
    pid_t Pid = ::wait4(-1, &Status, WNOHANG, &Ru);
    if (Pid > 0) {
      Reap(Pid, Status, Ru);
      continue;
    }

    // Nothing exited: enforce the wall-clock timeout, then yield briefly.
    if (Opts.TimeoutMs) {
      std::uint64_t Now = nowMs();
      for (auto &[ChildPid, Child] : Running) {
        if (!Child.Killed && Now - Child.StartMs > Opts.TimeoutMs) {
          Child.Killed = true;
          ::kill(ChildPid, SIGKILL);
        }
      }
    }
    ::usleep(2000);
  }
  return Report;
}

std::string BatchReport::json() const {
  std::ostringstream OS;
  OS << "{\n  \"summary\": {\"files\": " << Entries.size()
     << ", \"complete\": " << Complete << ", \"findings\": " << Findings
     << ", \"usage_errors\": " << UsageErrors
     << ", \"internal_errors\": " << InternalErrors
     << ", \"crashes\": " << Crashes << ", \"timeouts\": " << Timeouts
     << "},\n  \"files\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const BatchEntry &E = Entries[I];
    OS << "    {\"file\": \"" << jsonEscape(E.File) << "\", \"verdict\": \""
       << jsonEscape(E.Verdict) << "\", \"exit_reason\": \""
       << batchExitReasonName(E.Reason) << "\", \"exit_code\": " << E.ExitCode
       << ", \"signal\": " << E.Signal << ", \"detail\": \""
       << jsonEscape(E.Detail) << "\", \"wall_ms\": " << E.WallMs
       << ", \"peak_rss_kb\": " << E.PeakRssKb << "}"
       << (I + 1 < Entries.size() ? ",\n" : "\n");
  }
  OS << "  ]\n}\n";
  return OS.str();
}
