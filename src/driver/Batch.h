//===- driver/Batch.h - Crash-isolated batch analysis driver --------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `csdf batch` runs one analysis Session per input file, each in a forked
/// child with rlimits (CPU, address space, no core files), so that one
/// pathological input — a hang, a runaway allocation, an outright crash —
/// is reaped and reported without taking down the batch. The paper's
/// fan-out broadcast took 381 s on the prototype; a batch over a real
/// corpus must survive members like that.
///
/// The parent enforces a per-file wall-clock timeout (SIGKILL), collects
/// per-child rusage (wall time, peak RSS), reads the child's structured
/// outcome over a pipe, and emits a per-file JSON report.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_BATCH_H
#define CSDF_DRIVER_BATCH_H

#include "driver/Session.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csdf {

/// How batch jobs are isolated from each other.
enum class BatchMode {
  /// One forked, rlimited child per file (the default): full crash and
  /// hang isolation, at the cost of a process per file and no sharing.
  Fork,
  /// One in-process thread per job slot, sharing one cross-session
  /// closure memo: no fork/exec or page-duplication cost and closure
  /// results amortize across files, but a hard crash (signal) in one
  /// session takes the whole batch down. Hangs are still bounded: the
  /// per-file wall-clock timeout becomes a cooperative budget deadline.
  Threads,
};

/// Stable lower-case name ("fork", "threads").
const char *batchModeName(BatchMode Mode);

/// Configuration of a batch run.
struct BatchOptions {
  /// Per-file session configuration (budgets, analysis preset). Batch
  /// corpora are test/stress inputs, so test hooks default on here.
  SessionOptions Session;

  /// Concurrent children (fork mode) or worker threads (threads mode);
  /// 1 = serial.
  unsigned Jobs = 1;

  BatchMode Mode = BatchMode::Fork;

  /// Per-file wall-clock timeout enforced by the parent with SIGKILL;
  /// 0 = no timeout. This is the hard backstop behind the cooperative
  /// --deadline-ms budget.
  std::uint64_t TimeoutMs = 0;

  /// Child address-space rlimit in MB; 0 = leave unlimited.
  std::uint64_t AddressSpaceMb = 0;
};

/// How one child ended, beyond its exit code.
enum class BatchExitReason {
  Exited,   ///< Normal exit; ExitCode holds the session contract code.
  Signaled, ///< Killed by a signal (crash, rlimit).
  TimedOut, ///< Exceeded TimeoutMs; killed by the parent.
};

/// Stable lower-case name ("exited", "signaled", "timed-out").
const char *batchExitReasonName(BatchExitReason Reason);

/// Per-file outcome row of the batch report.
struct BatchEntry {
  std::string File;
  BatchExitReason Reason = BatchExitReason::Exited;
  /// Session exit code (contract 0/1/2/3) when Reason == Exited.
  int ExitCode = 0;
  /// Terminating signal when Reason != Exited.
  int Signal = 0;
  /// Structured verdict string from the child ("complete",
  /// "degraded-to-top(deadline)", ...), or "timeout"/"crash" when the
  /// child never reported.
  std::string Verdict;
  /// One-line detail (budget reason, error text), possibly empty.
  std::string Detail;
  std::uint64_t WallMs = 0;
  std::uint64_t PeakRssKb = 0;
};

/// The whole batch: per-file entries plus summary counts.
struct BatchReport {
  std::vector<BatchEntry> Entries;
  unsigned Complete = 0;
  unsigned Findings = 0;
  unsigned UsageErrors = 0;
  unsigned InternalErrors = 0;
  unsigned Crashes = 0;
  unsigned Timeouts = 0;

  /// True when every file completed cleanly (exit 0).
  bool allComplete() const { return Complete == Entries.size(); }

  /// Renders the report as JSON (stable field order; wall_ms/peak_rss_kb
  /// are the only non-deterministic fields).
  std::string json() const;
};

/// Renders one report row as a JSON object (no trailing newline) — the
/// per-file verdict schema shared by `csdf batch --report`,
/// `csdf analyze --format json`, and `csdf serve`. BatchReport::json()
/// emits exactly these objects; keep golden tests on either surface in
/// sync through this one function.
std::string batchEntryJson(const BatchEntry &E);

/// Renders one session result as the batch verdict/detail pair: verdict
/// is "usage-error", "front-end-errors", or the outcome string
/// ("complete", "degraded-to-top(deadline)", ...); detail is a single
/// line (newlines/tabs scrubbed), e.g. the budget reason or "N bug
/// candidate(s)".
void sessionVerdict(const SessionResult &R, std::string &Verdict,
                    std::string &Detail);

/// Runs one session over \p File and renders its outcome through
/// sessionVerdict. Returns the session exit code. Shared by the forked
/// batch child and the api layer's in-process runners.
int runSessionOutcome(const std::string &File, const SessionOptions &Opts,
                      std::string &Verdict, std::string &Detail);

/// Expands \p DirOrList into the .mpl files to analyze: a directory is
/// scanned (sorted, non-recursive) for *.mpl; any other path is read as a
/// newline-separated file list. Returns false with \p Error set on IO
/// failure or when no inputs are found.
bool collectBatchInputs(const std::string &DirOrList,
                        std::vector<std::string> &Files, std::string &Error);

/// Runs every file through a forked, rlimited child session (full crash
/// and hang isolation). Never throws; every file yields exactly one
/// BatchEntry, in input order. This is the BatchMode::Fork runner; the
/// BatchMode::Threads runner is api::Analyzer::runBatch, which needs the
/// facade's shared warm state — callers pick between them through the api
/// layer.
BatchReport runBatchFork(const std::vector<std::string> &Files,
                         const BatchOptions &Opts);

} // namespace csdf

#endif // CSDF_DRIVER_BATCH_H
