//===- driver/Router.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Router.h"

#include "diag/DiagRenderer.h"
#include "support/Json.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace csdf;

namespace {

int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool writeAllFd(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Reads one newline-terminated line; false on EOF or error before it.
bool readLineFd(int Fd, std::string &Line) {
  std::string Buf;
  char Chunk[4096];
  size_t Nl;
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      return false;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  Line = Buf.substr(0, Nl);
  return true;
}

} // namespace

std::string RouterStats::json(std::size_t Backends,
                              std::size_t Healthy) const {
  std::string S = "{";
  S += "\"backends\":" + std::to_string(Backends);
  S += ",\"backends_healthy\":" + std::to_string(Healthy);
  S += ",\"errors\":" + std::to_string(Errors);
  S += ",\"failovers\":" + std::to_string(Failovers);
  S += ",\"forwarded\":" + std::to_string(Forwarded);
  S += ",\"proto\":" + std::to_string(api::WireProtoVersion);
  S += ",\"requests\":" + std::to_string(Requests);
  S += ",\"tenant_sheds\":" + std::to_string(TenantSheds);
  S += ",\"unavailable\":" + std::to_string(Unavailable);
  S += "}";
  return S;
}

RouterServer::RouterServer(const RouterOptions &Opts)
    : Opts(Opts), Ring(Opts.Replicas) {
  for (const std::string &B : Opts.Backends) {
    Ring.addNode(B);
    Healthy[B] = true; // optimistic until a probe or a forward says no
  }
}

void RouterServer::setHealthy(const std::string &Backend, bool IsHealthy) {
  std::lock_guard<std::mutex> L(HealthMu);
  auto It = Healthy.find(Backend);
  if (It != Healthy.end())
    It->second = IsHealthy;
}

std::size_t RouterServer::healthyCount() const {
  std::lock_guard<std::mutex> L(HealthMu);
  std::size_t N = 0;
  for (const auto &[_, H] : Healthy)
    N += H ? 1 : 0;
  return N;
}

RouterStats RouterServer::statsSnapshot() const {
  std::lock_guard<std::mutex> L(StatsMu);
  return Stats;
}

void RouterServer::releaseWaiters() {
  {
    std::lock_guard<std::mutex> L(AdmitMu);
    Draining = true;
  }
  AdmitCv.notify_all();
}

bool RouterServer::admitAcquire(const std::string &Tenant) {
  std::unique_lock<std::mutex> L(AdmitMu);
  TenantState &T = Tenants[Tenant];
  if (T.Active < Opts.TenantMaxInflight) {
    ++T.Active;
    return true;
  }
  if (T.Waiting >= Opts.TenantQueueDepth)
    return false; // over quota *and* the queue is full: shed
  ++T.Waiting;
  AdmitCv.wait(L, [&] {
    return Draining || T.Active < Opts.TenantMaxInflight;
  });
  --T.Waiting;
  if (Draining)
    return false;
  ++T.Active;
  return true;
}

void RouterServer::admitRelease(const std::string &Tenant) {
  {
    std::lock_guard<std::mutex> L(AdmitMu);
    auto It = Tenants.find(Tenant);
    if (It != Tenants.end() && It->second.Active > 0)
      --It->second.Active;
  }
  AdmitCv.notify_all();
}

bool RouterServer::forwardOnce(const std::string &Backend,
                               const std::string &Line,
                               std::string &Response) {
  int Fd = connectUnix(Backend);
  if (Fd < 0)
    return false;
  bool Ok = writeAllFd(Fd, Line + "\n") && readLineFd(Fd, Response);
  ::close(Fd);
  return Ok;
}

std::vector<std::string> RouterServer::candidates(
    const std::string &Key) const {
  std::vector<std::string> Order = Ring.successors(Key);
  // Healthy shards first, ring order preserved within each class; the
  // unhealthy tail stays as a last resort because a probe can be stale
  // in either direction.
  std::vector<std::string> Out;
  Out.reserve(Order.size());
  std::lock_guard<std::mutex> L(HealthMu);
  for (const std::string &B : Order) {
    auto It = Healthy.find(B);
    if (It == Healthy.end() || It->second)
      Out.push_back(B);
  }
  for (const std::string &B : Order) {
    auto It = Healthy.find(B);
    if (It != Healthy.end() && !It->second)
      Out.push_back(B);
  }
  return Out;
}

std::string RouterServer::handleLine(const std::string &Line,
                                     bool &Shutdown) {
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Requests;
  }

  auto CountError = [&] {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Errors;
  };

  // Same codec as the shards: garbage is rejected with byte-identical
  // structured errors whether it hits the router or a shard directly.
  api::WireRequest Req;
  std::string ErrorLine;
  if (!api::parseWireRequest(Line, Opts.MaxRequestBytes,
                             api::RequestOptions(), Req, ErrorLine)) {
    CountError();
    return ErrorLine;
  }

  if (Req.Type == "stats") {
    return api::wireResponseHead(Req.IdJson) + ",\"ok\":true,\"stats\":" +
           statsSnapshot().json(Opts.Backends.size(), healthyCount()) + "}";
  }
  if (Req.Type == "shutdown") {
    Shutdown = true;
    releaseWaiters();
    return api::wireResponseHead(Req.IdJson) +
           ",\"ok\":true,\"shutting_down\":true}";
  }
  if (Req.Type.empty()) {
    CountError();
    return api::wireError(Req.IdJson, "invalid-request",
                          "request has no type", /*Retryable=*/false);
  }
  if (Req.Type != "analyze" && Req.Type != "lint") {
    CountError();
    return api::wireError(Req.IdJson, "invalid-request",
                          "unknown request type '" + Req.Type + "'",
                          /*Retryable=*/false);
  }
  if (!Req.Source && Req.Path == "<request>") {
    CountError();
    return api::wireError(Req.IdJson, "invalid-request",
                          Req.Type + " needs a path or a source",
                          /*Retryable=*/false);
  }

  if (!admitAcquire(Req.Tenant)) {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Stats.TenantSheds;
    }
    return api::wireError(
        Req.IdJson, "overloaded",
        "tenant '" + (Req.Tenant.empty() ? "default" : Req.Tenant) +
            "' is over its admission quota",
        /*Retryable=*/true, static_cast<int>(Opts.RetryAfterMs));
  }

  // The original line is forwarded byte-verbatim: the shard computes the
  // exact cache key a direct request would, so routing adds placement,
  // never a second spelling of the request.
  std::string Resp;
  bool Answered = false;
  bool FirstAttempt = true;
  for (const std::string &Backend : candidates(api::wireRoutingKey(Req))) {
    if (!FirstAttempt) {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Stats.Failovers;
    }
    FirstAttempt = false;
    if (!forwardOnce(Backend, Line, Resp)) {
      // Demote immediately — the probe will promote it back when it
      // accepts connections again.
      setHealthy(Backend, false);
      continue;
    }
    // A shard shedding load is a failover signal too: the successor may
    // have capacity right now, and the client need never know.
    JsonValue V;
    std::string ParseError;
    if (parseJson(Resp, V, ParseError)) {
      const JsonValue *Code = V.get("code");
      if (Code && Code->isString() && Code->asString() == "overloaded")
        continue;
    }
    setHealthy(Backend, true);
    if (!Resp.empty() && Resp.back() == '}')
      Resp.insert(Resp.size() - 1,
                  ",\"shard\":\"" + jsonEscape(Backend) + "\"");
    Answered = true;
    break;
  }
  admitRelease(Req.Tenant);

  if (Answered) {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Forwarded;
    return Resp;
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Unavailable;
  }
  return api::wireError(Req.IdJson, "unavailable",
                        "no shard could answer (fleet down or saturated)",
                        /*Retryable=*/true,
                        static_cast<int>(Opts.RetryAfterMs));
}

namespace {

/// Serves one accepted router connection; handleLine is thread-safe, so
/// connection threads call straight in — concurrent forwarding to
/// different shards is the point of a fleet front end.
void routeConnection(RouterServer &Server, int Fd,
                     std::atomic<bool> &Shutdown,
                     const RouterOptions &Opts) {
  timeval Tv{0, 200000};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));

  std::string Buf;
  char Chunk[4096];
  while (!Shutdown.load()) {
    size_t Nl = Buf.find('\n');
    if (Nl == std::string::npos) {
      if (Buf.size() > Opts.MaxRequestBytes + 4096) {
        writeAllFd(Fd, api::wireError(
                           "null", "parse-error",
                           "request exceeds " +
                               std::to_string(Opts.MaxRequestBytes) +
                               " bytes",
                           /*Retryable=*/false) +
                           "\n");
        return;
      }
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N == 0)
        return;
      if (N < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        return;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    bool WantShutdown = false;
    std::string Resp = Server.handleLine(Line, WantShutdown);
    bool Wrote = writeAllFd(Fd, Resp + "\n");
    if (WantShutdown) {
      Shutdown.store(true);
      return;
    }
    if (!Wrote)
      return;
  }
}

} // namespace

int csdf::runRouter(const RouterOptions &Opts) {
  if (Opts.Backends.empty()) {
    std::fprintf(stderr,
                 "csdf: error: router requires at least one --backend\n");
    return 2;
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "csdf: error: router requires --socket PATH\n");
    return 2;
  }

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "csdf: error: socket path too long: '%s'\n",
                 Opts.SocketPath.c_str());
    return 2;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "csdf: error: socket: %s\n", std::strerror(errno));
    return 2;
  }
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    std::fprintf(stderr, "csdf: error: cannot listen on '%s': %s\n",
                 Opts.SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return 2;
  }

  RouterServer Server(Opts);
  std::atomic<bool> Shutdown{false};

  // The probe is one connect per backend per period: cheap enough to run
  // constantly, honest enough to catch a kill -9 within one period.
  std::thread Prober([&Server, &Shutdown, &Opts]() {
    if (Opts.HealthIntervalMs == 0)
      return;
    while (!Shutdown.load()) {
      for (const std::string &B : Opts.Backends) {
        int Pfd = connectUnix(B);
        Server.setHealthy(B, Pfd >= 0);
        if (Pfd >= 0)
          ::close(Pfd);
      }
      for (unsigned Slept = 0;
           Slept < Opts.HealthIntervalMs && !Shutdown.load(); Slept += 20)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::vector<std::thread> Threads;
  while (!Shutdown.load()) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue;
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Threads.emplace_back([&Server, &Shutdown, &Opts, Conn]() {
      routeConnection(Server, Conn, Shutdown, Opts);
      ::close(Conn);
    });
  }
  Server.releaseWaiters();
  for (std::thread &T : Threads)
    T.join();
  Prober.join();
  ::close(Fd);
  ::unlink(Opts.SocketPath.c_str());
  return 0;
}
