//===- driver/Session.h - One fail-safe analysis session ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session is the unit of "serving one request": read one MPL file, run
/// the front end and the pCFG analysis under an AnalysisBudget and a
/// RecoveryScope, and fold whatever happened — success, findings, budget
/// degradation, front-end failure, internal error — into a SessionResult
/// with the documented exit-code contract:
///
///   0  complete, no findings
///   1  degraded to Top, or analysis findings (bugs), or front-end errors
///   2  usage/IO error (unreadable or empty file)
///   3  internal error (recovered invariant violation)
///
/// The CLI `analyze` command and every `csdf batch` child go through this
/// layer, so interactive and batch behavior cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DRIVER_SESSION_H
#define CSDF_DRIVER_SESSION_H

#include "analysis/Clients.h"
#include "lang/Parser.h"
#include "pcfg/AnalysisOptions.h"
#include "support/Budget.h"

#include <cstdint>
#include <memory>
#include <string>

namespace csdf {

/// Exit codes of the analyze/batch contract.
enum SessionExitCode : int {
  SessionExitComplete = 0,
  SessionExitFindings = 1,
  SessionExitUsage = 2,
  SessionExitInternal = 3,
};

/// Configuration of one analysis session.
struct SessionOptions {
  AnalysisOptions Analysis = AnalysisOptions::cartesian();

  /// Budget limits (0 = unlimited); the session owns the AnalysisBudget
  /// they configure.
  std::uint64_t DeadlineMs = 0;
  std::uint64_t MaxMemoryMb = 0;
  std::uint64_t MaxProverSteps = 0;

  /// Honor `# csdf-test:` directives embedded in the source (internal
  /// error, crash, sleep) — the hooks the batch-isolation tests and the
  /// stress corpus use to simulate failure modes. Off by default so
  /// production analyses cannot be steered by comments.
  bool EnableTestHooks = false;
};

/// Everything one session produced.
struct SessionResult {
  /// Per the exit-code contract above.
  int ExitCode = SessionExitComplete;

  /// Structured outcome. For front-end failures the verdict is Complete
  /// with FrontEndErrors set (the analysis never ran).
  AnalysisOutcome Outcome;

  /// IO or front-end error text (one line, already formatted), empty
  /// otherwise.
  std::string Error;

  /// True when parse/sema errors stopped the pipeline before analysis.
  bool FrontEndErrors = false;

  /// Full analysis report; meaningful only when the pipeline reached the
  /// engine.
  ClientReport Report;

  /// The parsed program. The Cfg stores pointers into this AST, so it
  /// must stay alive as long as Graph is used.
  std::shared_ptr<ParseResult> Parsed;

  /// The program's CFG (set once the front end succeeded) — callers need
  /// it to render node labels for Report.
  std::shared_ptr<Cfg> Graph;

  /// Budget accounting snapshot (valid whether or not a limit tripped).
  std::uint64_t ElapsedMs = 0;
  std::uint64_t PeakDbmBytes = 0;
  std::uint64_t ProverStepsUsed = 0;
};

/// Runs the full pipeline over \p Source (read with readSessionFile or
/// supplied directly). \p Path is used for messages only.
SessionResult runAnalysisSession(const std::string &Path,
                                 const std::string &Source,
                                 const SessionOptions &Opts);

/// Reads \p Path; returns false with \p Error set (one line) when the
/// file is unreadable or empty — both usage/IO failures (exit 2).
bool readSessionFile(const std::string &Path, std::string &Source,
                     std::string &Error);

} // namespace csdf

#endif // CSDF_DRIVER_SESSION_H
