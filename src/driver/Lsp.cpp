//===- driver/Lsp.cpp -----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "driver/Lsp.h"

#include "diag/DiagRenderer.h"
#include "support/Json.h"
#include "support/Version.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace csdf;

namespace {

/// file:// URI to a filesystem path (the pipeline cache key). Non-file
/// URIs are used verbatim — the path is a cache key and a message label,
/// never opened (document text always arrives in the message).
std::string uriToPath(const std::string &Uri) {
  const std::string Scheme = "file://";
  if (Uri.compare(0, Scheme.size(), Scheme) == 0)
    return Uri.substr(Scheme.size());
  return Uri;
}

int lspSeverity(DiagSeverity Sev) {
  switch (Sev) {
  case DiagSeverity::Error:
    return 1;
  case DiagSeverity::Warning:
    return 2;
  case DiagSeverity::Note:
    return 3; // Information.
  }
  return 3;
}

/// One LSP position object, converting csdf's 1-based locations to the
/// protocol's 0-based ones; invalid locations anchor at 0:0.
std::string lspPosition(SourceLoc Loc) {
  unsigned Line = Loc.Line > 0 ? Loc.Line - 1 : 0;
  unsigned Col = Loc.Col > 0 ? Loc.Col - 1 : 0;
  return "{\"line\":" + std::to_string(Line) +
         ",\"character\":" + std::to_string(Col) + "}";
}

std::string lspDiagnostic(const Diagnostic &D) {
  std::string Pos = lspPosition(D.Loc);
  std::string Message = D.Message;
  if (!D.Note.empty())
    Message += "\n" + D.Note;
  return "{\"range\":{\"start\":" + Pos + ",\"end\":" + Pos +
         "},\"severity\":" + std::to_string(lspSeverity(D.Sev)) +
         ",\"code\":\"" + jsonEscape(D.Id) + "\",\"source\":\"csdf\"" +
         ",\"message\":\"" + jsonEscape(Message) + "\"}";
}

std::string responseEnvelope(const std::string &Id, const std::string &Result) {
  return "{\"jsonrpc\":\"2.0\",\"id\":" + Id + ",\"result\":" + Result + "}";
}

std::string errorEnvelope(const std::string &Id, int Code,
                          const std::string &Message) {
  return "{\"jsonrpc\":\"2.0\",\"id\":" + Id +
         ",\"error\":{\"code\":" + std::to_string(Code) + ",\"message\":\"" +
         jsonEscape(Message) + "\"}}";
}

} // namespace

LspServer::LspServer(const LspOptions &Opts) : Opts(Opts) {}

void LspServer::publishDiagnostics(const std::string &Uri,
                                   const std::string &Text,
                                   std::vector<std::string> &Out) {
  api::LintRequest Req;
  Req.Path = uriToPath(Uri);
  Req.Source = Text;
  Req.Options = Opts.Defaults;
  api::LintResponse Resp = An.lintIncremental(Req);

  std::string Body = "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/"
                     "publishDiagnostics\",\"params\":{\"uri\":\"" +
                     jsonEscape(Uri) + "\",\"diagnostics\":[";
  for (size_t I = 0; I < Resp.Diagnostics.size(); ++I) {
    if (I)
      Body += ",";
    Body += lspDiagnostic(Resp.Diagnostics[I]);
  }
  Body += "]}}";
  Out.push_back(std::move(Body));
}

bool LspServer::handleMessage(const std::string &Body,
                              std::vector<std::string> &Out) {
  JsonValue Msg;
  std::string Error;
  if (!parseJson(Body, Msg, Error) || !Msg.isObject()) {
    Out.push_back(errorEnvelope("null", -32700, "parse error: " + Error));
    return true;
  }

  const JsonValue *Method = Msg.get("method");
  const JsonValue *Id = Msg.get("id");
  // Ids are echoed back verbatim (the spec allows numbers and strings).
  std::string IdStr = Id ? Id->str() : "null";
  if (!Method || !Method->isString()) {
    if (Id)
      Out.push_back(errorEnvelope(IdStr, -32600, "request without method"));
    return true;
  }
  const std::string &Name = Method->asString();
  const JsonValue *Params = Msg.get("params");

  if (Name == "initialize") {
    Out.push_back(responseEnvelope(
        IdStr, std::string("{\"capabilities\":{\"textDocumentSync\":1},"
                           "\"serverInfo\":{\"name\":\"csdf\",\"version\":\"") +
                   toolVersion() + "\"}}"));
    return true;
  }
  if (Name == "shutdown") {
    SawShutdown = true;
    Out.push_back(responseEnvelope(IdStr, "null"));
    return true;
  }
  if (Name == "exit")
    return false;

  if (Name == "textDocument/didOpen") {
    const JsonValue *Doc = Params ? Params->get("textDocument") : nullptr;
    const JsonValue *Uri = Doc ? Doc->get("uri") : nullptr;
    const JsonValue *Text = Doc ? Doc->get("text") : nullptr;
    if (Uri && Uri->isString() && Text && Text->isString())
      publishDiagnostics(Uri->asString(), Text->asString(), Out);
    return true;
  }
  if (Name == "textDocument/didChange") {
    const JsonValue *Doc = Params ? Params->get("textDocument") : nullptr;
    const JsonValue *Uri = Doc ? Doc->get("uri") : nullptr;
    const JsonValue *Changes = Params ? Params->get("contentChanges") : nullptr;
    // Full-document sync: the last change carries the whole new text.
    if (Uri && Uri->isString() && Changes && Changes->isArray() &&
        !Changes->asArray().empty()) {
      const JsonValue *Text = Changes->asArray().back().get("text");
      if (Text && Text->isString())
        publishDiagnostics(Uri->asString(), Text->asString(), Out);
    }
    return true;
  }
  if (Name == "textDocument/didClose") {
    const JsonValue *Doc = Params ? Params->get("textDocument") : nullptr;
    const JsonValue *Uri = Doc ? Doc->get("uri") : nullptr;
    if (Uri && Uri->isString())
      // Clear the document's diagnostics in the editor.
      Out.push_back("{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/"
                    "publishDiagnostics\",\"params\":{\"uri\":\"" +
                    jsonEscape(Uri->asString()) + "\",\"diagnostics\":[]}}");
    return true;
  }

  // Unknown requests get MethodNotFound; unknown notifications (no id,
  // e.g. "initialized", "$/cancelRequest") are ignored per the spec.
  if (Id)
    Out.push_back(errorEnvelope(IdStr, -32601, "method not found: " + Name));
  return true;
}

int csdf::runLsp(const LspOptions &Opts) {
  LspServer Server(Opts);
  std::string Line;
  bool Running = true;
  while (Running) {
    // Read the header block (Content-Length is the only header we need).
    std::size_t ContentLength = 0;
    bool SawHeader = false;
    while (std::getline(std::cin, Line)) {
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty()) {
        SawHeader = true;
        break;
      }
      const std::string Key = "Content-Length:";
      if (Line.compare(0, Key.size(), Key) == 0)
        ContentLength = std::stoul(Line.substr(Key.size()));
    }
    if (!SawHeader || !std::cin)
      break; // EOF between messages: clean transport end.
    if (ContentLength == 0)
      continue;

    std::string Body(ContentLength, '\0');
    std::cin.read(Body.data(), static_cast<std::streamsize>(ContentLength));
    if (std::cin.gcount() != static_cast<std::streamsize>(ContentLength))
      break;

    std::vector<std::string> Out;
    Running = Server.handleMessage(Body, Out);
    for (const std::string &Msg : Out)
      std::cout << "Content-Length: " << Msg.size() << "\r\n\r\n" << Msg;
    std::cout.flush();
  }
  return Server.exitCode();
}
