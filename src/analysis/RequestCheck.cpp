//===- analysis/RequestCheck.cpp -------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/RequestCheck.h"

#include "analysis/Lint.h"
#include "cfg/RequestInfo.h"
#include "lang/ExprOps.h"

#include <map>
#include <set>
#include <string>

using namespace csdf;

namespace {

/// "line L" when the location is known, "<label>" otherwise — for referring
/// to the *other* site of a two-site defect inside a note.
std::string describeSite(const Cfg &Graph, CfgNodeId Id) {
  const CfgNode &Node = Graph.node(Id);
  if (Node.Loc.isValid())
    return "line " + std::to_string(Node.Loc.Line);
  return "'" + Graph.nodeLabel(Id) + "'";
}

/// Comma-joined describeSite over a set, in node order (deterministic).
std::string describeSites(const Cfg &Graph, const std::set<CfgNodeId> &Ids) {
  std::string Out;
  for (CfgNodeId Id : Ids)
    Out += (Out.empty() ? "" : ", ") + describeSite(Graph, Id);
  return Out;
}

//===----------------------------------------------------------------------===//
// request-leak
//===----------------------------------------------------------------------===//

void checkRequestLeak(const Cfg &Graph, const RequestInfo &Info,
                      DiagnosticEngine &Diags) {
  // Re-posting over an outstanding request drops the in-flight message:
  // nothing can ever complete the first posting afterwards.
  for (const CfgNode &Node : Graph.nodes()) {
    if (Node.Kind != CfgNodeKind::Isend && Node.Kind != CfgNodeKind::Irecv)
      continue;
    if (!Info.reached(Node.Id))
      continue;
    const ReqState &St = Info.in(Node.Id, Node.Req);
    if (St.MayPosted.empty())
      continue;
    Diags.report(makeDiag(
        "request-leak", DiagSeverity::Warning, Node.Loc,
        "request '" + Node.Req + "' is re-posted while a previous posting "
        "(" + describeSites(Graph, St.MayPosted) + ") may still be "
        "outstanding",
        "the earlier operation is never completed; wait on '" + Node.Req +
            "' before posting it again"));
  }

  // Postings still outstanding on entry to Exit were never waited on some
  // path. Report at the posting site (mirrors the interpreter's
  // RequestLeaks harvest, which records the posting node).
  std::map<CfgNodeId, std::set<std::string>> LeakedAt;
  for (const std::string &Req : Info.requestVars())
    for (CfgNodeId P : Info.in(Graph.exitId(), Req).MayPosted)
      LeakedAt[P].insert(Req);
  for (const auto &[P, Reqs] : LeakedAt) {
    const CfgNode &Posting = Graph.node(P);
    for (const std::string &Req : Reqs)
      Diags.report(makeDiag(
          "request-leak", DiagSeverity::Warning, Posting.Loc,
          "request '" + Req + "' posted here may never be waited on",
          "the program can reach its end with this " +
              std::string(Posting.Kind == CfgNodeKind::Isend ? "isend"
                                                             : "irecv") +
              " still in flight; add a wait or waitall"));
  }
}

//===----------------------------------------------------------------------===//
// double-wait / wait-uninit
//===----------------------------------------------------------------------===//

void checkWaitLifecycle(const Cfg &Graph, const RequestInfo &Info,
                        const LintOptions &Opts, DiagnosticEngine &Diags) {
  // Only `wait r` names a specific request; `waitall` completes whatever
  // is outstanding and is well-defined on an empty or already-completed
  // set, so neither check applies to it.
  for (const CfgNode &Node : Graph.nodes()) {
    if (Node.Kind != CfgNodeKind::Wait || !Info.reached(Node.Id))
      continue;
    const ReqState &St = Info.in(Node.Id, Node.Req);
    if (Opts.isEnabled("wait-uninit") && St.MayUnposted)
      Diags.report(makeDiag(
          "wait-uninit", DiagSeverity::Warning, Node.Loc,
          "request '" + Node.Req + "' may be waited on before any "
          "isend/irecv posts it",
          St.MayPosted.empty()
              ? "no posting of '" + Node.Req + "' reaches this wait on any "
                "path"
              : "some path reaches this wait without passing a posting of "
                "'" + Node.Req + "'"));
    if (Opts.isEnabled("double-wait") && St.MayWaited)
      Diags.report(makeDiag(
          "double-wait", DiagSeverity::Warning, Node.Loc,
          "request '" + Node.Req + "' may already have been completed by "
          "an earlier wait",
          "waiting twice on the same posting is an error; re-post the "
          "request or drop one wait"));
  }
}

//===----------------------------------------------------------------------===//
// buffer-race
//===----------------------------------------------------------------------===//

void checkBufferRace(const Cfg &Graph, const RequestInfo &Info,
                     DiagnosticEngine &Diags) {
  for (const CfgNode &Node : Graph.nodes()) {
    if (!Info.reached(Node.Id))
      continue;
    std::map<std::string, std::set<CfgNodeId>> Outstanding =
        Info.outstandingIrecvBuffers(Node.Id);
    if (Outstanding.empty())
      continue;

    // Writes: the node's assignment target clobbers a buffer the runtime
    // may also write when the message lands. (At an irecv node the facts
    // describe entry, so a posting never races with itself — but a second
    // irecv into the same buffer does.)
    if (Node.Kind == CfgNodeKind::Assign || Node.Kind == CfgNodeKind::Recv ||
        Node.Kind == CfgNodeKind::Irecv) {
      auto It = Outstanding.find(Node.Var);
      if (It != Outstanding.end())
        Diags.report(makeDiag(
            "buffer-race", DiagSeverity::Warning, Node.Loc,
            "variable '" + Node.Var + "' is written while an irecv posted "
            "at " + describeSites(Graph, It->second) + " may still deliver "
            "into it",
            "the stored value races with message delivery; wait on the "
            "request first"));
    }

    // Reads: any expression the node evaluates may observe the buffer
    // before or after delivery, nondeterministically.
    std::set<std::string> Reads;
    for (const Expr *E : {Node.Value, Node.Cond, Node.Partner, Node.Tag})
      if (E)
        collectVars(E, Reads);
    for (const std::string &Var : Reads) {
      auto It = Outstanding.find(Var);
      if (It == Outstanding.end())
        continue;
      Diags.report(makeDiag(
          "buffer-race", DiagSeverity::Warning, Node.Loc,
          "variable '" + Var + "' is read while an irecv posted at " +
              describeSites(Graph, It->second) + " may still deliver "
              "into it",
          "the value observed depends on message timing; wait on the "
          "request before reading the buffer"));
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void csdf::runRequestChecks(const Cfg &Graph, const LintOptions &Opts,
                            DiagnosticEngine &Diags) {
  bool Any = Opts.isEnabled("request-leak") || Opts.isEnabled("double-wait") ||
             Opts.isEnabled("wait-uninit") || Opts.isEnabled("buffer-race");
  if (!Any)
    return;
  RequestInfo Info = RequestInfo::compute(Graph);
  if (!Info.hasRequests())
    return;
  if (Opts.isEnabled("request-leak"))
    checkRequestLeak(Graph, Info, Diags);
  checkWaitLifecycle(Graph, Info, Opts, Diags);
  if (Opts.isEnabled("buffer-race"))
    checkBufferRace(Graph, Info, Diags);
}
