//===- analysis/RequestCheck.h - Request-lifecycle lint passes -------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-lifecycle checker: four lint passes over the RequestInfo
/// dataflow (cfg/RequestInfo.h) that catch misuse of non-blocking
/// communication before the pCFG engine ever runs:
///
///   * "request-leak"  — a posted isend/irecv may reach program exit
///     without a completing wait, or is re-posted while the earlier
///     posting is still outstanding (the earlier message is lost);
///   * "double-wait"   — a wait may execute after its request was already
///     completed and not re-posted;
///   * "wait-uninit"   — a wait may execute before any isend/irecv posts
///     its request handle;
///   * "buffer-race"   — the destination buffer of an in-flight irecv is
///     read or written between the posting and the matching wait, racing
///     with message delivery.
///
/// All four are "may" analyses over the per-process CFG: a report means
/// some path exhibits the defect. The interpreter provides the ground
/// truth for each (EvalError for wait misuse and buffer races,
/// RunResult::RequestLeaks for leaks).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_ANALYSIS_REQUESTCHECK_H
#define CSDF_ANALYSIS_REQUESTCHECK_H

#include "cfg/Cfg.h"
#include "diag/DiagnosticEngine.h"

namespace csdf {

struct LintOptions;

/// Runs every enabled request-lifecycle pass over \p Graph, reporting into
/// \p Diags. Cheap no-op for programs without non-blocking operations.
void runRequestChecks(const Cfg &Graph, const LintOptions &Opts,
                      DiagnosticEngine &Diags);

} // namespace csdf

#endif // CSDF_ANALYSIS_REQUESTCHECK_H
