//===- analysis/Clients.cpp ------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"

using namespace csdf;

std::vector<CollectiveSuggestion>
csdf::suggestCollectives(const std::vector<ClassifiedPattern> &Patterns) {
  std::vector<CollectiveSuggestion> Suggestions;
  bool Scatter = false;
  bool Gather = false;
  for (const ClassifiedPattern &P : Patterns) {
    switch (P.Kind) {
    case PatternKind::RootScatter:
      Scatter = true;
      Suggestions.push_back({P.Kind, "MPI_Bcast/MPI_Scatter",
                             "one-to-many from a root: " + P.Description});
      break;
    case PatternKind::RootGather:
      Gather = true;
      Suggestions.push_back({P.Kind, "MPI_Gather",
                             "many-to-one to a root: " + P.Description});
      break;
    case PatternKind::TransposeLike:
      Suggestions.push_back({P.Kind, "MPI_Alltoall (pairwise)",
                             "cartesian self-inverse exchange: " +
                                 P.Description});
      break;
    case PatternKind::ShiftRight:
    case PatternKind::ShiftLeft:
      Suggestions.push_back(
          {P.Kind, "MPI_Sendrecv along MPI_Cart_shift",
           "nearest-neighbor dimension shift: " + P.Description});
      break;
    case PatternKind::PointToPoint:
    case PatternKind::Unknown:
      break;
    }
  }
  if (Scatter && Gather)
    Suggestions.push_back(
        {PatternKind::Unknown, "MPI_Bcast + MPI_Gather",
         "exchange-with-root (the paper's mdcask optimization): condense "
         "the root loop into two collectives"});
  return Suggestions;
}

std::vector<std::pair<std::string, std::int64_t>>
csdf::findShareableConstants(const AnalysisResult &Result) {
  std::vector<std::pair<std::string, std::int64_t>> Shareable;
  if (!Result.Converged || Result.FinalSnapshots.empty())
    return Shareable;
  const auto &First = Result.FinalSnapshots.front();
  // Snapshots are key-sorted maps, so a forward cursor per snapshot
  // advanced in lockstep with First's iteration order replaces the
  // per-variable tree find: every snapshot entry is compared at most once
  // instead of O(vars log vars) string-keyed lookups per snapshot.
  using Snapshot = std::map<std::string, std::optional<std::int64_t>>;
  std::vector<std::pair<Snapshot::const_iterator, Snapshot::const_iterator>>
      Rest;
  for (std::size_t I = 1; I < Result.FinalSnapshots.size(); ++I)
    Rest.push_back({Result.FinalSnapshots[I].begin(),
                    Result.FinalSnapshots[I].end()});
  for (const auto &[Var, Value] : First) {
    if (!Value)
      continue;
    bool SameEverywhere = true;
    for (auto &[It, End] : Rest) {
      while (It != End && It->first < Var)
        ++It;
      if (It == End || It->first != Var || It->second != Value) {
        SameEverywhere = false;
        break;
      }
    }
    if (SameEverywhere)
      Shareable.emplace_back(Var, *Value);
  }
  return Shareable;
}

ClientReport csdf::runClients(const Cfg &Graph, const AnalysisOptions &Opts) {
  ClientReport Report;
  Report.Analysis = analyzeProgram(Graph, Opts);
  Report.Patterns = classifyMatches(Graph, Report.Analysis);
  Report.Suggestions = suggestCollectives(Report.Patterns);
  Report.ShareableConstants = findShareableConstants(Report.Analysis);
  return Report;
}
