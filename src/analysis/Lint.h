//===- analysis/Lint.h - The `csdf lint` static-analysis pass suite --------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Communication-aware lint passes over MPL programs, feeding structured
/// diagnostics (src/diag) to `csdf lint`. Three families:
///
///   * front end — parse and sema diagnostics lifted into the engine
///     ("parse", "sema");
///   * intraprocedural CFG/dataflow lints — "use-before-init" (definite
///     assignment), "dead-store" (liveness), "unreachable-code" (constant
///     branch pruning, catches code after infinite loops);
///   * communication lints — "send-to-self" (partner provably == id),
///     "partner-bounds" (partner provably outside [0, np) under the
///     difference-constraint graph), "tag-mismatch-const" (a constant
///     send/recv tag no matching operation ever uses);
///   * pCFG bridge — the engine's bug candidates ("message-leak",
///     "possible-deadlock", "tag-mismatch") mapped to source locations,
///     plus an "analysis-top" note when the analysis gave up.
///
/// Every pass is individually disableable via LintOptions::Disabled; the
/// pass name doubles as the `--disable` key and the suffix of the stable
/// rule ID ("csdf.<pass>").
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_ANALYSIS_LINT_H
#define CSDF_ANALYSIS_LINT_H

#include "cfg/Cfg.h"
#include "diag/DiagRenderer.h"
#include "diag/DiagnosticEngine.h"
#include "lang/Parser.h"
#include "pcfg/AnalysisOptions.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace csdf {

/// Configuration of a lint run.
struct LintOptions {
  /// Pass names to skip (see lintPassRegistry()).
  std::set<std::string> Disabled;
  /// Options forwarded to the pCFG engine for the bridge passes. FixedNp
  /// and Params also sharpen the partner-bounds constraint graph.
  AnalysisOptions Analysis = AnalysisOptions::cartesian();

  bool isEnabled(const std::string &Pass) const {
    return Disabled.count(Pass) == 0;
  }
};

/// A registered lint pass: its `--disable` key, a one-line description
/// (also the SARIF shortDescription), and a longer explanation (the SARIF
/// fullDescription; falls back to Description when empty).
struct LintPassInfo {
  std::string Name;
  std::string Description;
  std::string Help;
};

/// All passes, in documentation order.
const std::vector<LintPassInfo> &lintPassRegistry();

/// True if \p Name names a registered pass.
bool isKnownLintPass(const std::string &Name);

/// Rule ID ("csdf.<pass>") to description map for the SARIF renderer.
std::map<std::string, std::string> lintRuleDescriptions();

/// Full SARIF rule catalog: rule ID to {shortDescription, fullDescription,
/// helpUri} for every registered pass. The helpUri points at the rule's
/// anchor in DESIGN.md ("#rule-<pass>").
std::map<std::string, SarifRuleDoc> lintRuleDocs();

/// Runs every enabled CFG-level and pCFG-bridge pass over \p Graph,
/// reporting into \p Diags. (Parse/sema passes live in lintSource().)
void runLintPasses(const Cfg &Graph, const LintOptions &Opts,
                   DiagnosticEngine &Diags);

/// The reusable intermediate artifacts of one lint run, exposed for the
/// incremental pipeline (api::Analyzer::lintIncremental): the parsed AST
/// and the CFG built from it. Graph stores pointers into Parsed's AST, so
/// holders must keep both (a captured engine trace points into the same
/// AST via the CFG's expression pointers).
struct LintArtifacts {
  std::shared_ptr<ParseResult> Parsed;
  std::shared_ptr<Cfg> Graph;
};

/// Full lint pipeline over MPL source text: parse, sema, CFG construction,
/// then runLintPasses(). Returns false when the program was too broken to
/// lint past the front end (parse or sema errors); front-end findings are
/// still reported into \p Diags. When \p Artifacts is non-null it receives
/// the parse result and CFG once the front end succeeded.
bool lintSource(const std::string &Source, const LintOptions &Opts,
                DiagnosticEngine &Diags, LintArtifacts *Artifacts = nullptr);

} // namespace csdf

#endif // CSDF_ANALYSIS_LINT_H
