//===- analysis/Clients.h - The paper's client applications --------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// High-level entry points packaging the framework into the client
/// applications Section I motivates:
///
///   * communication optimization — detect the topology and name the
///     collective pattern it can be condensed into;
///   * error detection — message leaks, deadlocks, tag mismatches;
///   * constant propagation / memory-footprint reduction — variables that
///     provably hold one identical constant on every process at program
///     end are candidates for sharing a single copy on multi-core nodes.
///
/// Everything here is a convenience layer over analyzeProgram() and the
/// topology module; library users wanting control call those directly.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_ANALYSIS_CLIENTS_H
#define CSDF_ANALYSIS_CLIENTS_H

#include "cfg/Cfg.h"
#include "pcfg/AnalysisResult.h"
#include "pcfg/Engine.h"
#include "topology/CommTopology.h"

#include <string>
#include <vector>

namespace csdf {

/// A collective-substitution suggestion for the communication optimizer.
struct CollectiveSuggestion {
  PatternKind Kind = PatternKind::Unknown;
  /// The collective the pattern can be condensed into, e.g. "MPI_Bcast".
  std::string Collective;
  std::string Description;
};

/// The combined report of all three clients.
struct ClientReport {
  AnalysisResult Analysis;
  std::vector<ClassifiedPattern> Patterns;
  std::vector<CollectiveSuggestion> Suggestions;
  /// Variables provably identical (one constant) on all processes in
  /// every terminal state — safe to keep as one shared read-only copy.
  std::vector<std::pair<std::string, std::int64_t>> ShareableConstants;
};

/// Runs the framework and all client post-passes over \p Graph.
ClientReport runClients(const Cfg &Graph, const AnalysisOptions &Opts);

/// The collective-substitution table for a classified pattern set (the
/// paper's mdcask example: exchange-with-root condenses into a broadcast
/// plus a gather).
std::vector<CollectiveSuggestion>
suggestCollectives(const std::vector<ClassifiedPattern> &Patterns);

/// Variables whose final value is one identical constant on every process
/// in every terminal state of \p Result.
std::vector<std::pair<std::string, std::int64_t>>
findShareableConstants(const AnalysisResult &Result);

} // namespace csdf

#endif // CSDF_ANALYSIS_CLIENTS_H
