//===- analysis/Lint.cpp ---------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/RequestCheck.h"
#include "cfg/CfgBuilder.h"
#include "dataflow/SeqAnalyses.h"
#include "lang/ExprOps.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "numeric/ConstraintGraph.h"
#include "pcfg/Engine.h"
#include "pcfg/PartnerExpr.h"
#include "support/Casting.h"

#include <algorithm>

using namespace csdf;

//===----------------------------------------------------------------------===//
// Pass registry
//===----------------------------------------------------------------------===//

const std::vector<LintPassInfo> &csdf::lintPassRegistry() {
  static const std::vector<LintPassInfo> Registry = {
      {"parse", "syntax errors from the MPL parser",
       "The MPL parser could not build an AST for part of the input. "
       "Nothing past the front end runs until the syntax error is fixed."},
      {"sema", "semantic checks (reserved names, nondeterministic partners, "
               "never-assigned variables)",
       "Structural problems the type-free front end can prove without "
       "dataflow: writes to the reserved 'id'/'np' names, request handles "
       "reused as scalar variables, and variables read but never assigned "
       "anywhere."},
      {"use-before-init",
       "a variable is read on some path before any assignment reaches it",
       "Definite-assignment dataflow found a read that some execution path "
       "reaches before any assignment to the variable; on that path the "
       "value is undefined."},
      {"dead-store", "an assigned value is never read afterwards",
       "Liveness dataflow found an assignment whose value no later "
       "statement can observe; the store is wasted work or a logic error."},
      {"unreachable-code",
       "a statement can never execute (constant branch or infinite loop)",
       "Constant-branch pruning found statements cut off from the entry "
       "node on every execution, e.g. code after 'while true' or inside "
       "'if false'."},
      {"send-to-self",
       "a send/recv whose partner expression is provably the process itself",
       "The partner expression folds to the process's own rank. Under "
       "rendezvous semantics a self-send blocks forever; a self-receive "
       "only completes after a buffered self-send."},
      {"partner-bounds",
       "a partner expression provably evaluates outside the valid rank "
       "range [0, np)",
       "The difference-constraint graph proves the partner rank is always "
       "negative or always at least np, so the operation addresses a "
       "process that cannot exist."},
      {"tag-mismatch-const",
       "a constant message tag that no opposite operation ever uses",
       "A send (or receive) carries a constant tag, every opposite "
       "operation also uses constant tags, and none of them matches: the "
       "operation can never pair up."},
      {"request-leak",
       "a non-blocking request may never be waited on, or is re-posted "
       "while still outstanding (the in-flight message is lost)",
       "Request-lifecycle dataflow found an isend/irecv posting that can "
       "reach program exit without a completing wait, or a re-post of a "
       "handle whose earlier posting is still in flight. Either way the "
       "earlier operation is never completed and its message is lost."},
      {"double-wait",
       "a request may be waited on twice without an intervening re-post",
       "Some path reaches a 'wait r' after an earlier wait already "
       "completed the same posting of 'r'. The interpreter treats this as "
       "a runtime error, matching MPI's invalid-request semantics."},
      {"wait-uninit",
       "a wait may execute before any isend/irecv posts its request",
       "Some path reaches a 'wait r' without passing any posting of 'r'; "
       "on that path the wait operates on an uninitialized request handle, "
       "a runtime error in the interpreter."},
      {"buffer-race",
       "an irecv destination buffer is read or written between the posting "
       "and the matching wait, racing with message delivery",
       "Between an 'irecv x ... req r' and the wait that completes it, the "
       "message may land in 'x' at any moment. A read of 'x' in that "
       "window observes a timing-dependent value; a write races with the "
       "delivery itself."},
      {"message-leak",
       "pCFG analysis: a sent message no receive ever consumes",
       "The pCFG dataflow engine proved a send deposits a message that "
       "remains in flight in every reachable terminal state."},
      {"possible-deadlock",
       "pCFG analysis: process sets blocked with no possible match",
       "The pCFG dataflow engine reached a state where some process sets "
       "block on communication and no matching partner can ever arrive."},
      {"tag-mismatch",
       "pCFG analysis: matched send/recv with provably different tags",
       "The pCFG dataflow engine matched a send and receive on the same "
       "channel whose tag expressions are provably unequal."},
      {"match-nondet",
       "pCFG analysis: a wildcard receive with two or more statically "
       "eligible senders; which message arrives first depends on timing",
       "A 'recv ... <- any' (or wildcard irecv) has at least two "
       "statically eligible senders in some reachable state. The value "
       "received depends on message timing, so the program's result is "
       "nondeterministic; the analysis also degrades to Top there because "
       "exact matching is impossible."},
      {"analysis-top",
       "pCFG analysis hit Top and gave up; bridge findings may be "
       "incomplete",
       "A resource bound or precision limit forced the engine to return "
       "Top. Findings already reported remain sound facts about the "
       "explored prefix, but the topology and bug list may be incomplete."},
      {"internal-error",
       "the pCFG analysis recovered from an internal invariant violation; "
       "its results must not be trusted",
       "The engine caught an internal invariant violation and discarded "
       "its partial results instead of aborting the process."},
  };
  return Registry;
}

bool csdf::isKnownLintPass(const std::string &Name) {
  for (const LintPassInfo &P : lintPassRegistry())
    if (P.Name == Name)
      return true;
  return false;
}

std::map<std::string, std::string> csdf::lintRuleDescriptions() {
  std::map<std::string, std::string> Rules;
  for (const LintPassInfo &P : lintPassRegistry())
    Rules["csdf." + P.Name] = P.Description;
  return Rules;
}

std::map<std::string, SarifRuleDoc> csdf::lintRuleDocs() {
  std::map<std::string, SarifRuleDoc> Docs;
  for (const LintPassInfo &P : lintPassRegistry())
    Docs["csdf." + P.Name] = {
        P.Description, P.Help.empty() ? P.Description : P.Help,
        "https://example.org/csdf/DESIGN.md#rule-" + P.Name};
  return Docs;
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

namespace {

/// Collects every variable read in \p E with the location of the reference
/// (unlike collectVars, which drops locations). `id`/`np` are ambient and
/// excluded. Names are interned on sight so callers work in VarIds — one
/// hash per reference and no string copies on the per-node path.
void collectVarReads(const Expr *E, SymbolTable &Syms,
                     std::vector<std::pair<VarId, SourceLoc>> &Reads) {
  if (!E)
    return;
  if (const auto *V = dyn_cast<VarRefExpr>(E)) {
    if (!V->isProcessId() && !V->isProcessCount())
      Reads.push_back({Syms.intern(V->name()), V->loc()});
    return;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E))
    return collectVarReads(U->operand(), Syms, Reads);
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    collectVarReads(B->lhs(), Syms, Reads);
    collectVarReads(B->rhs(), Syms, Reads);
  }
}

/// All expressions a CFG node evaluates.
std::vector<const Expr *> nodeExprs(const CfgNode &Node) {
  std::vector<const Expr *> Exprs;
  for (const Expr *E : {Node.Value, Node.Cond, Node.Partner, Node.Tag})
    if (E)
      Exprs.push_back(E);
  return Exprs;
}

bool isSendOp(const CfgNode &Node) {
  return Node.Kind == CfgNodeKind::Send || Node.Kind == CfgNodeKind::Isend;
}

const char *commOpName(const CfgNode &Node) {
  return isSendOp(Node) ? "send" : "receive";
}

//===----------------------------------------------------------------------===//
// use-before-init
//===----------------------------------------------------------------------===//

void lintUseBeforeInit(const Cfg &Graph, DiagnosticEngine &Diags) {
  // Variables never assigned anywhere are external parameters (sema already
  // warns about them); only flag variables the program does assign, but not
  // on every path reaching the use.
  auto Syms = std::make_shared<SymbolTable>();
  // VarIds are dense, so "assigned somewhere" is a bitmap rather than a
  // string set; the per-use test below is an integer index, and the name
  // is only materialized (Syms->name) when a diagnostic actually fires.
  std::vector<bool> AssignedSomewhere;
  for (const CfgNode &Node : Graph.nodes())
    if (Node.Kind == CfgNodeKind::Assign || Node.Kind == CfgNodeKind::Recv ||
        Node.Kind == CfgNodeKind::Irecv) {
      VarId Id = Syms->intern(Node.Var);
      if (Id >= AssignedSomewhere.size())
        AssignedSomewhere.resize(Id + 1, false);
      AssignedSomewhere[Id] = true;
    }

  DataflowResult<DefiniteAssignDomain> Assigned =
      computeDefiniteAssigns(Graph, Syms);

  std::vector<std::pair<VarId, SourceLoc>> Reads;
  for (const CfgNode &Node : Graph.nodes()) {
    const DefiniteAssignDomain::Fact &In = Assigned.In[Node.Id];
    for (const Expr *E : nodeExprs(Node)) {
      Reads.clear();
      collectVarReads(E, *Syms, Reads);
      for (const auto &[Id, Loc] : Reads) {
        if (Id >= AssignedSomewhere.size() || !AssignedSomewhere[Id] ||
            In.contains(Id))
          continue;
        Diags.report(makeDiag(
            "use-before-init", DiagSeverity::Warning,
            Loc.isValid() ? Loc : Node.Loc,
            "variable '" + Syms->name(Id) +
                "' may be used before initialization",
            "it is assigned on some paths but not on all paths reaching "
            "this use"));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// dead-store
//===----------------------------------------------------------------------===//

void lintDeadStore(const Cfg &Graph, DiagnosticEngine &Diags) {
  auto Syms = std::make_shared<SymbolTable>();
  // Intern each assignment target once up front; the check loop then
  // queries liveness by VarId instead of re-hashing the name per node.
  std::vector<VarId> AssignVar(Graph.size(), InvalidVarId);
  for (const CfgNode &Node : Graph.nodes())
    if (Node.Kind == CfgNodeKind::Assign)
      AssignVar[Node.Id] = Syms->intern(Node.Var);
  DataflowResult<LiveVarsDomain> Live = computeLiveVars(Graph, Syms);
  for (const CfgNode &Node : Graph.nodes()) {
    if (Node.Kind != CfgNodeKind::Assign)
      continue;
    if (Live.Out[Node.Id].count(AssignVar[Node.Id]))
      continue;
    Diags.report(makeDiag("dead-store", DiagSeverity::Warning, Node.Loc,
                          "value assigned to '" + Node.Var +
                              "' is never read",
                          "remove the assignment or use the variable"));
  }
}

//===----------------------------------------------------------------------===//
// unreachable-code
//===----------------------------------------------------------------------===//

void lintUnreachable(const Cfg &Graph, DiagnosticEngine &Diags) {
  // Reachability from entry, pruning branch edges whose condition folds to
  // a constant. This catches code after `while true` loops and inside
  // `if false` arms.
  std::vector<bool> Reached(Graph.size(), false);
  std::vector<CfgNodeId> Stack = {Graph.entryId()};
  Reached[Graph.entryId()] = true;
  while (!Stack.empty()) {
    CfgNodeId Id = Stack.back();
    Stack.pop_back();
    const CfgNode &Node = Graph.node(Id);
    std::optional<std::int64_t> Taken;
    if (Node.isBranch() && Node.Cond)
      Taken = foldConstant(Node.Cond);
    for (const CfgEdge &E : Node.Succs) {
      if (Taken && Node.isBranch()) {
        bool WantTrue = *Taken != 0;
        if ((E.Kind == CfgEdgeKind::True) != WantTrue &&
            E.Kind != CfgEdgeKind::Fallthrough)
          continue;
      }
      if (!Reached[E.Target]) {
        Reached[E.Target] = true;
        Stack.push_back(E.Target);
      }
    }
  }

  // Report only region roots (an unreachable node with a reachable
  // predecessor) so one diagnostic covers each dead region.
  for (const CfgNode &Node : Graph.nodes()) {
    if (Reached[Node.Id] || !Node.Loc.isValid())
      continue;
    bool IsRoot = Node.Preds.empty();
    for (CfgNodeId P : Node.Preds)
      if (Reached[P])
        IsRoot = true;
    if (!IsRoot)
      continue;
    Diags.report(makeDiag("unreachable-code", DiagSeverity::Warning, Node.Loc,
                          "statement is unreachable",
                          "a constant branch or infinite loop cuts off "
                          "every path to it"));
  }
}

//===----------------------------------------------------------------------===//
// send-to-self
//===----------------------------------------------------------------------===//

void lintSendToSelf(const Cfg &Graph, DiagnosticEngine &Diags) {
  for (const CfgNode &Node : Graph.nodes()) {
    if (!Node.isCommOp() || !Node.Partner)
      continue;
    auto Offset = matchIdPlusC(Node.Partner);
    if (!Offset || *Offset != 0)
      continue;
    bool IsSend = isSendOp(Node);
    Diags.report(makeDiag(
        "send-to-self", DiagSeverity::Warning, Node.Loc,
        std::string(IsSend ? "send to self: destination" : "receive from "
                                                           "self: source") +
            " '" + exprToString(Node.Partner) + "' is provably the "
            "process's own rank",
        IsSend ? "under rendezvous semantics a self-send blocks forever"
               : "a self-receive only completes after a buffered self-send"));
  }
}

//===----------------------------------------------------------------------===//
// partner-bounds
//===----------------------------------------------------------------------===//

void lintPartnerBounds(const Cfg &Graph, const LintOptions &Opts,
                       DiagnosticEngine &Diags) {
  // The rank invariants every execution satisfies: 0 <= id < np, np >= 1
  // (MinProcs sharpens that), plus any pinned np / grid parameters.
  ConstraintGraph Cg;
  Cg.addLowerBound("np", std::max<std::int64_t>(Opts.Analysis.MinProcs, 1));
  Cg.addLowerBound("id", 0);
  Cg.addLE("id", "np", -1);
  if (Opts.Analysis.FixedNp > 0)
    Cg.addEQ(LinearExpr("np", 0), LinearExpr(Opts.Analysis.FixedNp));
  for (const auto &[Name, Value] : Opts.Analysis.Params)
    Cg.addEQ(LinearExpr(Name, 0), LinearExpr(Value));
  if (!Cg.isFeasible())
    return; // Contradictory options: everything would be vacuously provable.

  // The two bound forms are loop-invariant: resolve them to VarId slots
  // once, so the per-node queries stay off the string path. The loop below
  // only queries (never mutates), which keeps the resolved forms valid.
  const ConstraintGraph::ResolvedForm MinusOne = Cg.resolve(LinearExpr(-1));
  const ConstraintGraph::ResolvedForm Np = Cg.resolve(LinearExpr("np", 0));

  for (const CfgNode &Node : Graph.nodes()) {
    if (!Node.isCommOp() || !Node.Partner)
      continue;
    auto L = LinearExpr::fromExpr(Node.Partner);
    if (!L)
      continue; // Outside the linear fragment: nothing provable here.
    ConstraintGraph::ResolvedForm Partner = Cg.resolve(*L);
    bool BelowZero = Cg.provesLE(Partner, MinusOne);
    bool AboveNp = Cg.provesLE(Np, Partner);
    if (!BelowZero && !AboveNp)
      continue;
    Diags.report(makeDiag(
        "partner-bounds", DiagSeverity::Error, Node.Loc,
        std::string(commOpName(Node)) + " partner '" +
            exprToString(Node.Partner) + "' provably evaluates outside "
            "[0, np)",
        BelowZero ? "the partner rank is always negative"
                  : "the partner rank is always >= np"));
  }
}

//===----------------------------------------------------------------------===//
// tag-mismatch-const
//===----------------------------------------------------------------------===//

void lintConstTagMismatch(const Cfg &Graph, DiagnosticEngine &Diags) {
  // Flow-insensitive: collect the constant tags on each side. A missing
  // tag expression means tag 0. A non-constant tag on the opposite side
  // makes the check inconclusive for this direction.
  struct Op {
    const CfgNode *Node;
    std::optional<std::int64_t> Tag;
  };
  std::vector<Op> Sends, Recvs;
  for (const CfgNode &Node : Graph.nodes()) {
    if (!Node.isCommOp())
      continue;
    std::optional<std::int64_t> Tag =
        Node.Tag ? foldConstant(Node.Tag) : std::optional<std::int64_t>(0);
    (isSendOp(Node) ? Sends : Recvs).push_back({&Node, Tag});
  }
  if (Sends.empty() || Recvs.empty())
    return; // One-sided programs are message-leak/deadlock territory.

  auto Check = [&](const std::vector<Op> &These,
                   const std::vector<Op> &Those, const char *Opposite) {
    std::set<std::int64_t> TheirTags;
    for (const Op &O : Those) {
      if (!O.Tag)
        return; // A symbolic tag on the other side may match anything.
      TheirTags.insert(*O.Tag);
    }
    for (const Op &O : These) {
      if (!O.Tag || TheirTags.count(*O.Tag))
        continue;
      std::string Known;
      for (std::int64_t T : TheirTags)
        Known += (Known.empty() ? "" : ", ") + std::to_string(T);
      Diags.report(makeDiag(
          "tag-mismatch-const", DiagSeverity::Warning, O.Node->Loc,
          std::string(commOpName(*O.Node)) + " uses tag " +
              std::to_string(*O.Tag) + " but every " + Opposite +
              " uses a different constant tag",
          std::string(Opposite) + " tags in the program: {" + Known + "}"));
    }
  };
  Check(Sends, Recvs, "receive");
  Check(Recvs, Sends, "send");
}

//===----------------------------------------------------------------------===//
// pCFG bridge
//===----------------------------------------------------------------------===//

const char *bridgePassName(AnalysisBug::Kind Kind) {
  return analysisBugKindName(Kind); // "message-leak" / "possible-deadlock"
                                    // / "tag-mismatch" / "match-nondet" —
                                    // the pass names.
}

void lintPcfgBridge(const Cfg &Graph, const LintOptions &Opts,
                    DiagnosticEngine &Diags) {
  bool AnyBridge =
      Opts.isEnabled("message-leak") || Opts.isEnabled("possible-deadlock") ||
      Opts.isEnabled("tag-mismatch") || Opts.isEnabled("match-nondet") ||
      Opts.isEnabled("analysis-top") || Opts.isEnabled("internal-error");
  if (!AnyBridge)
    return;

  AnalysisOptions EngineOpts = Opts.Analysis;
  EngineOpts.CheckMatchNondet =
      EngineOpts.CheckMatchNondet && Opts.isEnabled("match-nondet");
  AnalysisResult R = analyzeProgram(Graph, EngineOpts);
  if (R.Outcome.internalError()) {
    // The engine recovered from an invariant violation: surface it as a
    // diagnostic instead of aborting the process, and do not relay bug
    // candidates from an untrustworthy run.
    if (Opts.isEnabled("internal-error"))
      Diags.report(makeDiag(
          "internal-error", DiagSeverity::Error, SourceLoc(),
          "pCFG analysis failed with an internal error: " + R.Outcome.Reason,
          R.Outcome.Configuration.empty()
              ? "please report this; analysis results were discarded"
              : "at configuration " + R.Outcome.Configuration +
                    "; please report this"));
    return;
  }
  for (const AnalysisBug &B : R.Bugs) {
    std::string Pass = bridgePassName(B.TheKind);
    if (!Opts.isEnabled(Pass))
      continue;
    Diags.report(makeDiag(Pass, DiagSeverity::Warning, B.Loc, B.Detail,
                          "reported by the pCFG dataflow analysis"));
  }
  if (!R.Converged && Opts.isEnabled("analysis-top"))
    Diags.report(makeDiag("analysis-top", DiagSeverity::Note, SourceLoc(),
                          "pCFG analysis gave up (Top): " + R.TopReason,
                          "bug candidates and the topology may be "
                          "incomplete"));
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void csdf::runLintPasses(const Cfg &Graph, const LintOptions &Opts,
                         DiagnosticEngine &Diags) {
  if (Opts.isEnabled("use-before-init"))
    lintUseBeforeInit(Graph, Diags);
  if (Opts.isEnabled("dead-store"))
    lintDeadStore(Graph, Diags);
  if (Opts.isEnabled("unreachable-code"))
    lintUnreachable(Graph, Diags);
  if (Opts.isEnabled("send-to-self"))
    lintSendToSelf(Graph, Diags);
  if (Opts.isEnabled("partner-bounds"))
    lintPartnerBounds(Graph, Opts, Diags);
  if (Opts.isEnabled("tag-mismatch-const"))
    lintConstTagMismatch(Graph, Diags);
  runRequestChecks(Graph, Opts, Diags);
  lintPcfgBridge(Graph, Opts, Diags);
}

bool csdf::lintSource(const std::string &Source, const LintOptions &Opts,
                      DiagnosticEngine &Diags, LintArtifacts *Artifacts) {
  // Shared from the start: the CFG (and any engine trace captured through
  // it) stores pointers into this AST, and Artifacts holders keep both.
  auto Parsed = std::make_shared<ParseResult>(parseProgram(Source));
  if (!Parsed->succeeded()) {
    if (Opts.isEnabled("parse"))
      for (const ParseDiagnostic &D : Parsed->Diagnostics)
        Diags.report(
            makeDiag("parse", DiagSeverity::Error, D.Loc, D.Message));
    return false;
  }

  SemaResult Sema = checkProgram(Parsed->Prog);
  if (Opts.isEnabled("sema"))
    for (const SemaDiagnostic &D : Sema.Diagnostics)
      Diags.report(makeDiag("sema",
                            D.isError() ? DiagSeverity::Error
                                        : DiagSeverity::Warning,
                            D.Loc, D.Message));
  if (Sema.hasErrors())
    return false;

  auto Graph = std::make_shared<Cfg>(buildCfg(Parsed->Prog));
  if (Artifacts) {
    Artifacts->Parsed = Parsed;
    Artifacts->Graph = Graph;
  }
  runLintPasses(*Graph, Opts, Diags);
  return true;
}
