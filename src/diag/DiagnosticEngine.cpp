//===- diag/DiagnosticEngine.cpp -------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "diag/DiagnosticEngine.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace csdf;

const char *csdf::diagSeverityName(DiagSeverity Sev) {
  switch (Sev) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  csdf_unreachable("unhandled DiagSeverity");
}

bool DiagnosticEngine::report(Diagnostic D) {
  auto Key = std::tuple(D.Id, D.Loc, D.Message);
  if (!Seen.insert(std::move(Key)).second)
    return false;
  Diags.push_back(std::move(D));
  Sorted = false;
  return true;
}

const std::vector<Diagnostic> &DiagnosticEngine::diagnostics() const {
  if (!Sorted) {
    std::stable_sort(Diags.begin(), Diags.end());
    Sorted = true;
  }
  return Diags;
}

void DiagnosticEngine::promoteWarningsToErrors() {
  for (Diagnostic &D : Diags)
    if (D.Sev == DiagSeverity::Warning)
      D.Sev = DiagSeverity::Error;
}

void DiagnosticEngine::filterBelow(DiagSeverity Min) {
  Diags.erase(std::remove_if(Diags.begin(), Diags.end(),
                             [&](const Diagnostic &D) { return D.Sev < Min; }),
              Diags.end());
}

unsigned DiagnosticEngine::count(DiagSeverity Sev) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Sev)
      ++N;
  return N;
}

int DiagnosticEngine::exitCode() const {
  return count(DiagSeverity::Warning) + count(DiagSeverity::Error) > 0 ? 1
                                                                       : 0;
}
