//===- diag/Diagnostic.h - Structured lint/analysis diagnostics ------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic record produced by `csdf lint` and the analysis
/// bridge. A Diagnostic carries everything a human or a CI system needs to
/// act on a finding: a stable rule ID, the pass that produced it, a severity,
/// a primary source location, optional secondary locations (e.g. the matching
/// receive of a mismatched send), and an optional fix hint. Rendering to
/// text / JSON lines / SARIF lives in DiagRenderer.h.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DIAG_DIAGNOSTIC_H
#define CSDF_DIAG_DIAGNOSTIC_H

#include "lang/Token.h"

#include <string>
#include <tuple>
#include <vector>

namespace csdf {

/// Severity of a diagnostic. Notes are informational and never affect exit
/// codes; warnings are findings; errors invalidate the program (or are
/// Werror-promoted warnings).
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// Returns "note" / "warning" / "error".
const char *diagSeverityName(DiagSeverity Sev);

/// A secondary location attached to a diagnostic (e.g. "matching receive is
/// here").
struct DiagRelatedLoc {
  SourceLoc Loc;
  std::string Message;

  bool operator==(const DiagRelatedLoc &O) const {
    return Loc == O.Loc && Message == O.Message;
  }
};

/// One structured finding.
struct Diagnostic {
  /// The pass that produced this diagnostic; also the key accepted by
  /// `csdf lint --disable <pass>` (e.g. "use-before-init").
  std::string Pass;
  /// Stable machine-readable rule ID, used as the SARIF ruleId (e.g.
  /// "csdf.use-before-init"). Never reuse an ID for a different check.
  std::string Id;
  DiagSeverity Sev = DiagSeverity::Warning;
  /// Primary location. May be invalid (Line == 0) for whole-program
  /// findings; renderers then omit the location.
  SourceLoc Loc;
  std::string Message;
  /// Optional explanation or fix hint, rendered as a trailing note.
  std::string Note;
  /// Optional secondary locations.
  std::vector<DiagRelatedLoc> Related;

  /// Stable ordering: by location, then rule, then message, then severity.
  /// DiagnosticEngine sorts with this so output is deterministic no matter
  /// in which order passes ran.
  friend bool operator<(const Diagnostic &A, const Diagnostic &B) {
    return std::tie(A.Loc, A.Id, A.Message, A.Sev) <
           std::tie(B.Loc, B.Id, B.Message, B.Sev);
  }

  /// Two diagnostics are duplicates when rule, location and message agree;
  /// severity and notes are presentation detail.
  bool sameFinding(const Diagnostic &O) const {
    return Id == O.Id && Loc == O.Loc && Message == O.Message;
  }
};

/// Convenience factory for the common case.
inline Diagnostic makeDiag(std::string Pass, DiagSeverity Sev, SourceLoc Loc,
                           std::string Message, std::string Note = "") {
  Diagnostic D;
  D.Id = "csdf." + Pass;
  D.Pass = std::move(Pass);
  D.Sev = Sev;
  D.Loc = Loc;
  D.Message = std::move(Message);
  D.Note = std::move(Note);
  return D;
}

} // namespace csdf

#endif // CSDF_DIAG_DIAGNOSTIC_H
