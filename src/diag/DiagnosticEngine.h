//===- diag/DiagnosticEngine.h - Collect, dedupe and sort diagnostics ------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection point for all lint/analysis diagnostics. The engine
/// deduplicates findings (same rule + location + message), keeps them stably
/// sorted by source location, applies severity policy (Werror promotion and
/// minimum-severity filtering), and computes the CI exit code:
///
///   0  no warnings or errors (notes are allowed),
///   1  at least one warning or error survived filtering,
///   2  (reserved for the driver: usage / IO / internal errors).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DIAG_DIAGNOSTICENGINE_H
#define CSDF_DIAG_DIAGNOSTICENGINE_H

#include "diag/Diagnostic.h"

#include <set>
#include <vector>

namespace csdf {

/// Collects diagnostics from every pass and owns the output policy.
class DiagnosticEngine {
public:
  /// Records \p D unless an identical finding (rule + location + message)
  /// was already reported. Returns true if the diagnostic was kept.
  bool report(Diagnostic D);

  /// All surviving diagnostics, stably sorted by (location, rule, message).
  const std::vector<Diagnostic> &diagnostics() const;

  /// Promotes every Warning to Error (the `--Werror` switch).
  void promoteWarningsToErrors();

  /// Drops every diagnostic below \p Min (the `--min-severity` switch).
  void filterBelow(DiagSeverity Min);

  /// Number of surviving diagnostics with severity exactly \p Sev.
  unsigned count(DiagSeverity Sev) const;

  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }

  bool hasErrors() const { return count(DiagSeverity::Error) != 0; }

  /// The CI exit code for the current contents: 1 when any warning or
  /// error survived, 0 otherwise. (Exit code 2 is the driver's.)
  int exitCode() const;

private:
  /// Kept unsorted as reported; sorted lazily by diagnostics().
  mutable std::vector<Diagnostic> Diags;
  mutable bool Sorted = true;
  /// Dedup keys of everything reported so far.
  std::set<std::tuple<std::string, SourceLoc, std::string>> Seen;
};

} // namespace csdf

#endif // CSDF_DIAG_DIAGNOSTICENGINE_H
