//===- diag/DiagRenderer.cpp -----------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "diag/DiagRenderer.h"

#include <cstdio>
#include <sstream>

using namespace csdf;

std::string csdf::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Text with caret snippets
//===----------------------------------------------------------------------===//

namespace {

/// Splits \p Source into lines (without terminators), 1-based access.
std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(std::move(Cur));
      Cur.clear();
    } else if (C != '\r') {
      Cur += C;
    }
  }
  Lines.push_back(std::move(Cur));
  return Lines;
}

void appendSnippet(std::ostringstream &OS, const std::vector<std::string> &Lines,
                   SourceLoc Loc) {
  if (!Loc.isValid() || Loc.Line > Lines.size())
    return;
  const std::string &Line = Lines[Loc.Line - 1];
  OS << "  " << Line << "\n  ";
  // The caret column is clamped to just past the end of the line; tabs in
  // the prefix are preserved so the caret stays visually aligned.
  unsigned Col = Loc.Col ? Loc.Col : 1;
  if (Col > Line.size() + 1)
    Col = static_cast<unsigned>(Line.size()) + 1;
  for (unsigned I = 0; I + 1 < Col; ++I)
    OS << (Line[I] == '\t' ? '\t' : ' ');
  OS << "^\n";
}

void appendLocPrefix(std::ostringstream &OS, const std::string &FileName,
                     SourceLoc Loc) {
  OS << FileName;
  if (Loc.isValid())
    OS << ":" << Loc.Line << ":" << Loc.Col;
  OS << ": ";
}

} // namespace

std::string csdf::renderDiagsText(const std::vector<Diagnostic> &Diags,
                                  const std::string &FileName,
                                  const std::string &Source) {
  std::vector<std::string> Lines = splitLines(Source);
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    appendLocPrefix(OS, FileName, D.Loc);
    OS << diagSeverityName(D.Sev) << ": " << D.Message << " [" << D.Pass
       << "]\n";
    appendSnippet(OS, Lines, D.Loc);
    for (const DiagRelatedLoc &R : D.Related) {
      appendLocPrefix(OS, FileName, R.Loc);
      OS << "note: " << R.Message << "\n";
      appendSnippet(OS, Lines, R.Loc);
    }
    if (!D.Note.empty())
      OS << "  note: " << D.Note << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// JSON lines
//===----------------------------------------------------------------------===//

std::string csdf::renderDiagsJson(const std::vector<Diagnostic> &Diags,
                                  const std::string &FileName) {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << "{\"file\":\"" << jsonEscape(FileName) << "\",\"line\":" << D.Loc.Line
       << ",\"col\":" << D.Loc.Col << ",\"severity\":\""
       << diagSeverityName(D.Sev) << "\",\"rule\":\"" << jsonEscape(D.Id)
       << "\",\"pass\":\"" << jsonEscape(D.Pass) << "\",\"message\":\""
       << jsonEscape(D.Message) << "\"";
    if (!D.Note.empty())
      OS << ",\"note\":\"" << jsonEscape(D.Note) << "\"";
    if (!D.Related.empty()) {
      OS << ",\"related\":[";
      for (size_t I = 0; I < D.Related.size(); ++I) {
        if (I)
          OS << ",";
        OS << "{\"line\":" << D.Related[I].Loc.Line
           << ",\"col\":" << D.Related[I].Loc.Col << ",\"message\":\""
           << jsonEscape(D.Related[I].Message) << "\"}";
      }
      OS << "]";
    }
    OS << "}\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// SARIF 2.1.0
//===----------------------------------------------------------------------===//

namespace {

/// SARIF levels: note / warning / error match our severities.
const char *sarifLevel(DiagSeverity Sev) {
  return diagSeverityName(Sev);
}

void appendSarifLocation(std::ostringstream &OS, const std::string &Uri,
                         SourceLoc Loc) {
  OS << "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
     << jsonEscape(Uri) << "\"},\"region\":{\"startLine\":"
     << (Loc.isValid() ? Loc.Line : 1)
     << ",\"startColumn\":" << (Loc.Col ? Loc.Col : 1) << "}}}";
}

} // namespace

std::string csdf::renderDiagsSarif(
    const std::vector<Diagnostic> &Diags, const std::string &FileName,
    const std::map<std::string, std::string> &RuleDescriptions) {
  std::map<std::string, SarifRuleDoc> Docs;
  for (const auto &[Id, Desc] : RuleDescriptions)
    Docs[Id] = {Desc, "", ""};
  return renderDiagsSarif(Diags, FileName, Docs);
}

std::string csdf::renderDiagsSarif(
    const std::vector<Diagnostic> &Diags, const std::string &FileName,
    const std::map<std::string, SarifRuleDoc> &RuleDocs) {
  // The full catalog plus an ID-only stub for any rule a diagnostic names
  // that the caller did not document. Sorted map order keeps the document
  // deterministic.
  std::map<std::string, SarifRuleDoc> Rules = RuleDocs;
  for (const Diagnostic &D : Diags)
    if (!Rules.count(D.Id))
      Rules[D.Id] = {D.Id, "", ""};

  std::ostringstream OS;
  OS << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
     << "\"name\":\"csdf-lint\","
     << "\"informationUri\":\"https://example.org/csdf\",\"rules\":[";
  bool First = true;
  for (const auto &[Id, Doc] : Rules) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"id\":\"" << jsonEscape(Id) << "\",\"shortDescription\":{"
       << "\"text\":\"" << jsonEscape(Doc.ShortDescription) << "\"}";
    if (!Doc.FullDescription.empty())
      OS << ",\"fullDescription\":{\"text\":\""
         << jsonEscape(Doc.FullDescription) << "\"}";
    if (!Doc.HelpUri.empty())
      OS << ",\"helpUri\":\"" << jsonEscape(Doc.HelpUri) << "\"";
    OS << "}";
  }
  OS << "]}},\"results\":[";
  First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      OS << ",";
    First = false;
    std::string Text = D.Message;
    if (!D.Note.empty())
      Text += " (" + D.Note + ")";
    OS << "{\"ruleId\":\"" << jsonEscape(D.Id) << "\",\"level\":\""
       << sarifLevel(D.Sev) << "\",\"message\":{\"text\":\""
       << jsonEscape(Text) << "\"},\"locations\":[";
    appendSarifLocation(OS, FileName, D.Loc);
    OS << "]";
    if (!D.Related.empty()) {
      OS << ",\"relatedLocations\":[";
      for (size_t I = 0; I < D.Related.size(); ++I) {
        if (I)
          OS << ",";
        appendSarifLocation(OS, FileName, D.Related[I].Loc);
      }
      OS << "]";
    }
    OS << "}";
  }
  OS << "]}]}\n";
  return OS.str();
}
