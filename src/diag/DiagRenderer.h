//===- diag/DiagRenderer.h - Text / JSON / SARIF diagnostic output ---------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three output formats of `csdf lint`:
///
///   * text  — clang-style `file:line:col: severity: message [rule]` with a
///     caret/snippet rendered from the original source buffer;
///   * json  — one JSON object per line (easy to grep and to diff in golden
///     tests);
///   * sarif — a SARIF 2.1.0 document for CI upload (GitHub code scanning
///     et al.): tool.driver.rules plus results with ruleId, level and
///     physicalLocation.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_DIAG_DIAGRENDERER_H
#define CSDF_DIAG_DIAGRENDERER_H

#include "diag/Diagnostic.h"

#include <map>
#include <string>
#include <vector>

namespace csdf {

/// Escapes \p S for embedding in a JSON string literal (quotes, backslashes,
/// control characters).
std::string jsonEscape(const std::string &S);

/// Renders \p Diags as human-readable text with caret snippets cut from
/// \p Source. \p FileName is used as the location prefix.
std::string renderDiagsText(const std::vector<Diagnostic> &Diags,
                            const std::string &FileName,
                            const std::string &Source);

/// Renders \p Diags as JSON lines (one object per diagnostic).
std::string renderDiagsJson(const std::vector<Diagnostic> &Diags,
                            const std::string &FileName);

/// Documentation for one SARIF rule, rendered into tool.driver.rules.
/// Empty FullDescription/HelpUri fields are omitted from the document.
struct SarifRuleDoc {
  std::string ShortDescription;
  std::string FullDescription;
  std::string HelpUri;
};

/// Renders \p Diags as a SARIF 2.1.0 document. Every rule in \p RuleDocs is
/// emitted into tool.driver.rules — including rules with no result in this
/// run, so code-scanning consumers see the full rule catalog — plus an
/// ID-only stub for any rule appearing in \p Diags but missing from the map.
std::string
renderDiagsSarif(const std::vector<Diagnostic> &Diags,
                 const std::string &FileName,
                 const std::map<std::string, SarifRuleDoc> &RuleDocs);

/// Convenience overload taking only short descriptions.
std::string
renderDiagsSarif(const std::vector<Diagnostic> &Diags,
                 const std::string &FileName,
                 const std::map<std::string, std::string> &RuleDescriptions =
                     {});

} // namespace csdf

#endif // CSDF_DIAG_DIAGRENDERER_H
