//===- pcfg/PartnerExpr.h - Communication expression classification -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies the expressions appearing in send/recv statements (partner
/// ranks, tags, sent values) into the forms the Section VII matcher
/// understands:
///
///   * IdPlusC  — `id + c`: a rank-dependent shift;
///   * Uniform  — `var + c` or `c`, the same value on every process of the
///     executing set (variables are scoped into the set's namespace);
///   * Complex  — anything else (left to the HSM matcher or Top).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_PARTNEREXPR_H
#define CSDF_PCFG_PARTNEREXPR_H

#include "lang/Ast.h"
#include "numeric/LinearExpr.h"
#include "pcfg/PcfgState.h"

#include <optional>

namespace csdf {

/// A classified communication expression.
struct PartnerExpr {
  enum class Kind {
    IdPlusC, ///< id + Offset.
    Uniform, ///< Value (scoped LinearExpr), same on all set members.
    Complex, ///< Outside the linear fragment.
  };

  Kind TheKind = Kind::Complex;
  std::int64_t Offset = 0; ///< For IdPlusC.
  LinearExpr Value;        ///< For Uniform (already namespaced).

  bool isIdPlusC() const { return TheKind == Kind::IdPlusC; }
  bool isUniform() const { return TheKind == Kind::Uniform; }
  bool isComplex() const { return TheKind == Kind::Complex; }
};

/// Classifies \p E as executed by \p Set. A `var + c` expression is
/// Uniform only when var is not in the set's NonUniform list (or the set
/// is a provable singleton, where everything is uniform).
PartnerExpr classifyPartnerExpr(const Expr *E, const ProcSetEntry &Set,
                                const std::set<std::string> &AssignedVars,
                                const ConstraintGraph &Cg);

/// Recognizes `id + c` (also `c + id`, `id - c`).
std::optional<std::int64_t> matchIdPlusC(const Expr *E);

} // namespace csdf

#endif // CSDF_PCFG_PARTNEREXPR_H
