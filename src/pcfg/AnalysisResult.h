//===- pcfg/AnalysisResult.h - Output of the pCFG analysis --------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything the analysis produces: the established send-receive matches
/// (the communication topology), facts provable at print statements (the
/// constant-propagation client's output, Figure 2), detected bug
/// candidates, the Top/converged verdict, and exploration statistics for
/// the Section IX benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_ANALYSISRESULT_H
#define CSDF_PCFG_ANALYSISRESULT_H

#include "pcfg/PcfgState.h"
#include "support/Budget.h"

#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace csdf {

/// A provable fact at a print statement: which processes print and, if
/// pinned, the constant they print.
struct PrintFact {
  CfgNodeId Node = 0;
  std::string SetRange;
  std::optional<std::int64_t> Value;

  bool operator<(const PrintFact &O) const {
    return std::tuple(Node, SetRange, Value) <
           std::tuple(O.Node, O.SetRange, O.Value);
  }
  bool operator==(const PrintFact &O) const {
    return Node == O.Node && SetRange == O.SetRange && Value == O.Value;
  }
};

/// A statically detected bug candidate.
struct AnalysisBug {
  enum class Kind {
    /// A sent message that no receive ever consumes.
    MessageLeak,
    /// Process sets blocked on communication with no possible match.
    PossibleDeadlock,
    /// Send and receive on the same channel with provably different tags.
    TagMismatch,
    /// A wildcard (`any`-source) receive with two or more statically
    /// eligible senders: which message arrives first depends on timing.
    MatchNondet,
  };

  Kind TheKind = Kind::MessageLeak;
  CfgNodeId Node = 0;
  /// Source location of Node's originating statement; filled in by the
  /// engine from the CFG so every bug carries a real line:column.
  SourceLoc Loc;
  std::string Detail;

  /// Deterministic reporting order: by source location, then kind, then
  /// node id, then detail text.
  friend bool operator<(const AnalysisBug &A, const AnalysisBug &B) {
    return std::tuple(A.Loc, A.TheKind, A.Node, A.Detail) <
           std::tuple(B.Loc, B.TheKind, B.Node, B.Detail);
  }
};

/// Returns a short name for \p Kind.
const char *analysisBugKindName(AnalysisBug::Kind Kind);

/// How an analysis session ended, ordered from best to worst.
enum class AnalysisVerdict {
  /// Reached a fixpoint; results are the full abstraction the framework
  /// can express.
  Complete,
  /// A resource budget or precision limit forced the framework to pass
  /// Top (Section VI): partial results below remain sound facts about the
  /// explored prefix, but the topology may be incomplete.
  DegradedToTop,
  /// An internal invariant violation was caught and recovered; results
  /// must not be trusted.
  InternalError,
};

/// Returns a short name for \p Verdict ("complete", "degraded-to-top",
/// "internal-error").
const char *analysisVerdictName(AnalysisVerdict Verdict);

/// Structured description of how the analysis ended — the replacement for
/// matching on bare TopReason strings.
struct AnalysisOutcome {
  AnalysisVerdict Verdict = AnalysisVerdict::Complete;

  /// For DegradedToTop: which resource bound tripped, or BudgetKind::None
  /// for a precision give-up (unprovable send-receive match).
  BudgetKind Budget = BudgetKind::None;

  /// Human-readable reason (empty for Complete).
  std::string Reason;

  /// The pCFG configuration being processed when the analysis gave up or
  /// failed, when one was active (e.g. the configuration whose variant
  /// set overflowed). Empty otherwise.
  std::string Configuration;

  bool complete() const { return Verdict == AnalysisVerdict::Complete; }
  bool degraded() const { return Verdict == AnalysisVerdict::DegradedToTop; }
  bool internalError() const {
    return Verdict == AnalysisVerdict::InternalError;
  }

  /// Renders "complete", "degraded-to-top(deadline)", or
  /// "internal-error" — the stable one-token form the CLI prints and the
  /// batch report stores.
  std::string str() const;
};

/// The result of running the pCFG dataflow analysis on a program.
struct AnalysisResult {
  /// True when the analysis reached a fixpoint without giving up. A false
  /// value means the framework passed Top (Section VI): the topology may
  /// be incomplete.
  bool Converged = false;
  std::string TopReason;

  /// Structured verdict; kept in sync with Converged/TopReason (which
  /// remain for existing callers: Converged == Outcome.complete() unless
  /// the verdict is InternalError, where Converged is also false).
  AnalysisOutcome Outcome;

  /// Established send-receive matches (the communication topology).
  std::set<MatchRecord> Matches;

  /// Constant-propagation facts at print statements.
  std::set<PrintFact> PrintFacts;

  /// Bug candidates (meaningful even when Converged is false).
  std::vector<AnalysisBug> Bugs;

  /// One entry per reachable terminal state (all process sets at exit):
  /// for every program variable, the constant it provably holds on *all*
  /// processes, or nullopt when unknown / divergent across processes.
  /// Input for the constant-sharing client (Section I).
  std::vector<std::map<std::string, std::optional<std::int64_t>>>
      FinalSnapshots;

  /// Exploration statistics.
  unsigned StatesExplored = 0;
  unsigned ConfigsVisited = 0;
  unsigned MaxSetsSeen = 0;
  double Seconds = 0.0;

  /// All (send node, recv node) pairs in Matches.
  std::set<std::pair<CfgNodeId, CfgNodeId>> matchedNodePairs() const {
    std::set<std::pair<CfgNodeId, CfgNodeId>> Pairs;
    for (const MatchRecord &M : Matches)
      Pairs.insert({M.SendNode, M.RecvNode});
    return Pairs;
  }

  bool hasBug(AnalysisBug::Kind Kind) const {
    for (const AnalysisBug &B : Bugs)
      if (B.TheKind == Kind)
        return true;
    return false;
  }
};

} // namespace csdf

#endif // CSDF_PCFG_ANALYSISRESULT_H
