//===- pcfg/AnalysisOptions.h - pCFG engine configuration ---------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the pCFG dataflow engine. The two client analyses of
/// the paper are option presets:
///
///   * Section VII (simple symbolic): linear matcher, blocking sends —
///     exactly the Figure 4 formulas;
///   * Section VIII (cartesian/HSM): adds the HSM matcher and buffered
///     sends (the paper's Section X non-blocking extension, needed for
///     self-exchange patterns like the NAS-CG transpose where every
///     process sends before any receives).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_ANALYSISOPTIONS_H
#define CSDF_PCFG_ANALYSISOPTIONS_H

#include "numeric/DbmStorage.h"
#include "support/Budget.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace csdf {

class SymbolTable;
class ClosureMemo;
struct EngineSeed;
struct ReplayCapture;
struct ReplayStats;

/// How the analysis models sends (Section III vs Section X).
enum class SendSemantics {
  /// Sends block until matched (the paper's simplifying assumption).
  Blocking,
  /// Sends deposit an in-flight message and advance (bounded aggregation).
  Buffered,
};

/// Engine limits and feature switches.
struct AnalysisOptions {
  /// Enables the Section VII `var + c` matcher.
  bool UseLinearMatcher = true;
  /// Enables the Section VIII HSM matcher.
  bool UseHsmMatcher = false;

  SendSemantics Sends = SendSemantics::Blocking;

  /// Assumed minimum process count. Results describe executions with
  /// np >= MinProcs (the paper's examples implicitly assume enough
  /// processes for every role to be non-empty).
  std::int64_t MinProcs = 4;

  /// When positive, pins np to this exact value. Useful for patterns whose
  /// dynamic structure is not named by any program variable (e.g. the
  /// Figure 7 pipeline), where only a concrete process count lets the
  /// exploration terminate.
  std::int64_t FixedNp = 0;

  /// Maximum distinct (unjoinable) states kept per pCFG configuration.
  unsigned MaxVariantsPerConfig = 96;

  /// Pinned grid parameters (e.g. {nrows: 3, ncols: 4}), analogous to the
  /// interpreter's RunOptions::Params. Each becomes an equality fact in
  /// the constraint graph and a rewrite in the fact environment, letting
  /// expressions like `id + ncols` resolve to concrete shifts.
  std::map<std::string, std::int64_t> Params;

  /// Maximum simultaneously tracked in-flight sends (buffered mode);
  /// exceeding it aborts to Top (all-to-all style aggregation is future
  /// work in the paper too).
  unsigned MaxInFlight = 8;

  /// Maximum number of process sets per state (the paper's parameter p).
  unsigned MaxProcSets = 12;

  /// Joins at a configuration become widenings after this many visits.
  unsigned WidenDelay = 2;

  /// Abort to Top after this many explored states (safety net).
  unsigned MaxStates = 20000;

  /// Constraint-graph storage backend (the Section IX ablation knob).
  DbmBackend Backend = DbmBackend::Dense;

  /// Resource governor for this run (deadline, memory ceiling, prover
  /// steps). Non-owning: the budget must outlive the analysis *and* every
  /// AnalysisResult snapshot holding DBM state accounted against it. Null
  /// disables cooperative budgeting (the MaxStates/MaxProcSets/... bounds
  /// above still apply).
  AnalysisBudget *Budget = nullptr;

  /// Reports a MatchNondet bug when a wildcard receive has two or more
  /// statically eligible senders. Disabling only suppresses the report;
  /// the precision consequence (degrading to Top at ambiguous wildcard
  /// matches) is unconditional because exact matching is impossible
  /// there either way.
  bool CheckMatchNondet = true;

  /// Summarizes singleton-sender send loops (`for v = lo to hi do
  /// send x -> v; end`) into one aggregated in-flight record — the
  /// Section X extension for non-blocking send loops. Requires buffered
  /// sends.
  bool AggregateSendLoops = false;

  /// Worker threads for the engine's parallel worklist drain (Section
  /// IX(5): pCFG analyses are naturally parallelizable). 1 = the classic
  /// sequential drain. Any value produces bit-identical results: workers
  /// only *speculate* on step outcomes, and a single coordinator commits
  /// them in the sequential worklist order.
  unsigned Threads = 1;

  /// Optional pre-shared intern table / closure memo for the run. Null
  /// (the default) gives every run its own. The batch threads mode passes
  /// a shared cross-session ClosureMemo here so closure work is amortized
  /// across files; a shared memo must be constructed in cross-session
  /// mode (see ClosureMemo) and a shared SymbolTable must be used only by
  /// runs that may share DBM blocks through that memo.
  std::shared_ptr<SymbolTable> SharedSymbols;
  std::shared_ptr<ClosureMemo> SharedMemo;

  /// Warm start from a prior converged run over an edited version of the
  /// same program (see pcfg/Replay.h). Requires SharedSymbols to be the
  /// seed's own table. Null = cold run. Like the shared handles above,
  /// this is runtime wiring, not semantics — a validated seed changes
  /// nothing about the result, only how much of it is recomputed — so it
  /// is excluded from fingerprint().
  std::shared_ptr<const EngineSeed> Seed;

  /// When set, a converged run deposits its exploration trace here for a
  /// future Seed. Ignored (never filled) for budgeted runs. Excluded
  /// from fingerprint() like Seed.
  std::shared_ptr<ReplayCapture> Capture;

  /// When set, the engine fills adoption/live counters for this run.
  std::shared_ptr<ReplayStats> Replay;

  /// Canonical one-line encoding of every field that can change an
  /// analysis result — the engine half of a content-addressed cache key
  /// (api::RequestOptions::fingerprint layers the budget limits on top;
  /// `csdf serve` keys its result cache on the combination). Threads is
  /// deliberately excluded: results are bit-identical at any thread
  /// count, so runs differing only in worker count share one cache entry.
  /// Budget and the SharedSymbols/SharedMemo handles are runtime wiring,
  /// not semantics, and are excluded too.
  std::string fingerprint() const {
    std::string F;
    F += "lin=" + std::to_string(UseLinearMatcher);
    F += ";hsm=" + std::to_string(UseHsmMatcher);
    F += ";sends=" + std::to_string(static_cast<int>(Sends));
    F += ";minp=" + std::to_string(MinProcs);
    F += ";np=" + std::to_string(FixedNp);
    F += ";var=" + std::to_string(MaxVariantsPerConfig);
    F += ";infl=" + std::to_string(MaxInFlight);
    F += ";sets=" + std::to_string(MaxProcSets);
    F += ";widen=" + std::to_string(WidenDelay);
    F += ";states=" + std::to_string(MaxStates);
    F += ";backend=" + std::to_string(static_cast<int>(Backend));
    F += ";agg=" + std::to_string(AggregateSendLoops);
    F += ";nondet=" + std::to_string(CheckMatchNondet);
    F += ";params={";
    for (const auto &[Name, Value] : Params)
      F += Name + "=" + std::to_string(Value) + ",";
    F += "}";
    return F;
  }

  /// Preset for the Section VII client analysis.
  static AnalysisOptions simpleSymbolic() { return AnalysisOptions(); }

  /// Preset for the Section VIII cartesian client analysis.
  static AnalysisOptions cartesian() {
    AnalysisOptions Opts;
    Opts.UseHsmMatcher = true;
    Opts.Sends = SendSemantics::Buffered;
    return Opts;
  }

  /// Preset with every Section X extension switched on.
  static AnalysisOptions sectionX() {
    AnalysisOptions Opts = cartesian();
    Opts.AggregateSendLoops = true;
    return Opts;
  }
};

} // namespace csdf

#endif // CSDF_PCFG_ANALYSISOPTIONS_H
