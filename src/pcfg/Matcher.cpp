//===- pcfg/Matcher.cpp --------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "pcfg/Matcher.h"

#include "support/Budget.h"

using namespace csdf;

namespace {

/// Fills MatchResult leftovers for one side. Returns false when the
/// leftover split is not provable (exactness requirement).
bool computeSide(const ProcRange &Whole, const ProcRange &Matched,
                 bool &Full, RangeDifference &Rest,
                 const ConstraintGraph &Cg) {
  if (provablyEqual(Whole, Matched, Cg)) {
    Full = true;
    return true;
  }
  auto Diff = tryDifference(Whole, Matched, Cg);
  if (!Diff)
    return false;
  Full = false;
  Rest = *Diff;
  return true;
}

/// Builds a MatchResult from candidate matched subranges, checking
/// non-emptiness and exact splits.
std::optional<MatchResult> finalize(const ProcRange &Senders,
                                    const ProcRange &SProcs,
                                    const ProcRange &Receivers,
                                    const ProcRange &RProcs,
                                    const ConstraintGraph &Cg) {
  if (!SProcs.provablyNonEmpty(Cg) || !RProcs.provablyNonEmpty(Cg))
    return std::nullopt;
  if (!provablyContains(Senders, SProcs, Cg) ||
      !provablyContains(Receivers, RProcs, Cg))
    return std::nullopt;
  MatchResult R;
  R.SProcs = SProcs;
  R.RProcs = RProcs;
  if (!computeSide(Senders, SProcs, R.SenderFull, R.SenderRest, Cg))
    return std::nullopt;
  if (!computeSide(Receivers, RProcs, R.ReceiverFull, R.ReceiverRest, Cg))
    return std::nullopt;
  return R;
}

/// The Section VII strategy over `id + c` and uniform expressions.
std::optional<MatchResult> linearMatch(const CommDesc &Send,
                                       const CommDesc &Recv,
                                       const ConstraintGraph &Cg) {
  const PartnerExpr &D = Send.Partner;
  const PartnerExpr &S = Recv.Partner;
  if (D.isComplex() || S.isComplex())
    return std::nullopt;

  if (D.isIdPlusC() && S.isIdPlusC()) {
    // Composition (id+c1)+c2 is the identity iff c1 + c2 == 0.
    if (D.Offset + S.Offset != 0)
      return std::nullopt;
    ProcRange Image = Send.Range.shifted(D.Offset);
    auto RProcs = tryIntersect(Image, Recv.Range, Cg);
    if (!RProcs)
      return std::nullopt;
    ProcRange SProcs = RProcs->shifted(-D.Offset);
    return finalize(Send.Range, SProcs, Recv.Range, *RProcs, Cg);
  }

  if (D.isIdPlusC() && S.isUniform()) {
    // Receivers all expect source E2; only rank E2 + c1 can be satisfied,
    // by sender E2.
    SymBound Src(S.Value);
    Src.enrich(Cg);
    ProcRange SProcs(Src, Src);
    ProcRange RProcs(Src.plus(D.Offset), Src.plus(D.Offset));
    return finalize(Send.Range, SProcs, Recv.Range, RProcs, Cg);
  }

  if (D.isUniform()) {
    // All senders target rank E1, so only the single receiver E1 can be
    // satisfied, and its source expression pins the unique sender: the
    // matched pair is ({claimed}, {E1}) with both sides split off their
    // sets. Channels are per ordered pair, so other senders' messages to
    // E1 do not interfere with this sender's FIFO.
    SymBound Dest(D.Value);
    Dest.enrich(Cg);
    ProcRange RProcs(Dest, Dest);
    SymBound Claimed = S.isIdPlusC() ? Dest.plus(S.Offset) : SymBound(S.Value);
    Claimed.enrich(Cg);
    ProcRange SProcs(Claimed, Claimed);
    return finalize(Send.Range, SProcs, Recv.Range, RProcs, Cg);
  }

  return std::nullopt;
}

/// The Section VIII strategy: whole-set HSM matching.
std::optional<MatchResult> hsmMatch(const CommDesc &Send,
                                    const CommDesc &Recv,
                                    const ConstraintGraph &Cg,
                                    const FactEnv &Facts) {
  if (!Send.PartnerAst || !Recv.PartnerAst)
    return std::nullopt;
  if (!Send.PartnerGlobalsOnly || !Recv.PartnerGlobalsOnly)
    return std::nullopt;

  auto SLo = boundToGlobalPoly(Send.Range.lb(), Cg);
  auto SHi = boundToGlobalPoly(Send.Range.ub(), Cg);
  auto RLo = boundToGlobalPoly(Recv.Range.lb(), Cg);
  auto RHi = boundToGlobalPoly(Recv.Range.ub(), Cg);
  if (!SLo || !SHi || !RLo || !RHi)
    return std::nullopt;
  Poly SCount = SHi->minus(*SLo).plus(Poly(1));
  Poly RCount = RHi->minus(*RLo).plus(Poly(1));

  if (!hsmFullSetMatch(Send.PartnerAst, *SLo, SCount, Recv.PartnerAst, *RLo,
                       RCount, Facts))
    return std::nullopt;

  MatchResult R;
  R.SProcs = Send.Range;
  R.RProcs = Recv.Range;
  R.SenderFull = true;
  R.ReceiverFull = true;
  return R;
}

} // namespace

std::optional<Poly> csdf::boundToGlobalPoly(const SymBound &Bound,
                                            const ConstraintGraph &Cg) {
  SymBound Enriched = Bound;
  Enriched.enrich(Cg);
  for (const LinearExpr &Form : Enriched.forms()) {
    if (Form.isConstant())
      return Poly(Form.constant());
    if (Form.var().find('.') == std::string::npos)
      return Poly::var(Form.var()).plus(Poly(Form.constant()));
  }
  return std::nullopt;
}

std::optional<MatchResult> csdf::tryMatch(const AnalysisOptions &Opts,
                                          const CommDesc &Send,
                                          const CommDesc &Recv,
                                          const ConstraintGraph &Cg,
                                          const FactEnv &Facts,
                                          bool &TagConflict) {
  TagConflict = false;
  budgetCheckpoint();
  // Tags must be provably equal for a match; provably unequal tags are a
  // diagnosable bug (the channel head can never be consumed).
  if (!Send.Tag || !Recv.Tag)
    return std::nullopt;
  // Resolve both tags once; the equality and strict-order probes below
  // reuse the interned forms.
  ConstraintGraph::ResolvedForm S = Cg.resolve(*Send.Tag);
  ConstraintGraph::ResolvedForm R = Cg.resolve(*Recv.Tag);
  if (!(Cg.provesLE(S, R) && Cg.provesLE(R, S))) {
    // Distinguish "provably different" from "unknown".
    ConstraintGraph::ResolvedForm S1 = S, R1 = R;
    S1.C += 1;
    R1.C += 1;
    if (Cg.provesLE(S1, R) || Cg.provesLE(R1, S))
      TagConflict = true;
    return std::nullopt;
  }

  if (Opts.UseLinearMatcher)
    if (auto R = linearMatch(Send, Recv, Cg))
      return R;
  if (Opts.UseHsmMatcher)
    if (auto R = hsmMatch(Send, Recv, Cg, Facts))
      return R;
  return std::nullopt;
}
