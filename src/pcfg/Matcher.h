//===- pcfg/Matcher.h - Send/receive matching strategies ----------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements matchSendsRecvs (Figure 4): given a send side and a receive
/// side, find sProcs ⊆ senders and rProcs ⊆ receivers such that the send
/// expression surjectively maps sProcs onto rProcs and the composition of
/// the receive and send expressions is the identity on sProcs. Matching
/// must be *exact*: the unmatched leftovers must also be provable, or no
/// match is reported.
///
/// Two strategies, one per client analysis:
///  * Linear (Section VII): `id + c` shifts and uniform `var + c`
///    destinations, resolved through the constraint graph;
///  * HSM (Section VIII): whole-set matching of cartesian expressions via
///    Hierarchical Sequence Maps.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_MATCHER_H
#define CSDF_PCFG_MATCHER_H

#include "hsm/HsmExpr.h"
#include "pcfg/AnalysisOptions.h"
#include "pcfg/PartnerExpr.h"
#include "pcfg/PcfgState.h"

#include <optional>

namespace csdf {

/// One side of a potential match, independent of whether it comes from a
/// blocked process set or an in-flight send record.
struct CommDesc {
  CfgNodeId Node = 0;
  ProcRange Range;
  PartnerExpr Partner;
  /// Original partner expression (used by the HSM strategy).
  const Expr *PartnerAst = nullptr;
  /// True when PartnerAst reads only `id` and global parameters, so it can
  /// be (re)evaluated at any time.
  bool PartnerGlobalsOnly = false;
  /// Classified uniform tag; nullopt when unclassifiable.
  std::optional<LinearExpr> Tag;
};

/// The matched portions and the provable leftovers.
struct MatchResult {
  ProcRange SProcs;
  ProcRange RProcs;
  bool SenderFull = false;
  bool ReceiverFull = false;
  RangeDifference SenderRest;   ///< Valid when !SenderFull.
  RangeDifference ReceiverRest; ///< Valid when !ReceiverFull.
};

/// Attempts to match \p Send against \p Recv under \p Cg and \p Facts.
/// On a provable tag conflict sets \p TagConflict (no match possible on
/// this channel, a bug indicator). Returns nullopt when no exact match can
/// be proven.
std::optional<MatchResult> tryMatch(const AnalysisOptions &Opts,
                                    const CommDesc &Send,
                                    const CommDesc &Recv,
                                    const ConstraintGraph &Cg,
                                    const FactEnv &Facts, bool &TagConflict);

/// Converts a symbolic bound to a Poly usable by the HSM strategy: a form
/// whose variable is a global parameter (no namespace dot) or a constant.
std::optional<Poly> boundToGlobalPoly(const SymBound &Bound,
                                      const ConstraintGraph &Cg);

} // namespace csdf

#endif // CSDF_PCFG_MATCHER_H
