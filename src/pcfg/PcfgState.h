//===- pcfg/PcfgState.h - Dataflow state over pCFG nodes ----------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow state of Section VI: `state[n_pCFG] = (dfState, pSets,
/// matches)`. Here a PcfgState bundles
///
///   * the process sets (symbolic ranges) and the CFG node each occupies —
///     together these identify the pCFG node the state sits at;
///   * the constraint-graph dfState, with per-set variables living in
///     per-set namespaces (`p0.i`) and never-assigned grid parameters
///     (np, nrows, ...) shared globally, as in Section VII-A's
///     set-specific namespaces;
///   * in-flight sends (buffered-send mode);
///   * the send-receive matches established so far.
///
/// States are canonicalized (sets sorted, namespaces renumbered) so that
/// two visits to the same pCFG configuration are comparable, then joined or
/// widened per Figure 4.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_PCFGSTATE_H
#define CSDF_PCFG_PCFGSTATE_H

#include "cfg/Cfg.h"
#include "hsm/Poly.h"
#include "numeric/ConstraintGraph.h"
#include "pcfg/AnalysisOptions.h"
#include "procset/ProcSet.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace csdf {

/// One process set inside a state.
struct ProcSetEntry {
  /// Namespace prefix for this set's variables (e.g. "p0").
  std::string Name;
  /// The processes this set denotes.
  ProcRange Range;
  /// The CFG node the set currently occupies.
  CfgNodeId Node = 0;
  /// Variables whose value may differ between processes of this set;
  /// branching on them with a non-singleton range is not exact.
  std::set<std::string> NonUniform;
};

/// A buffered (emitted but unmatched) send. Expressions that could change
/// after emission are frozen into `m<Seq>.*` constraint-graph variables at
/// emission time, so the record stays valid as the sender's state evolves.
struct PendingSend {
  CfgNodeId SendNode = 0;
  /// Senders that emitted and whose message is still in flight (bounds
  /// frozen).
  ProcRange Senders;
  /// Monotone emission stamp (FIFO order).
  unsigned Seq = 0;

  /// Frozen destination: id+c offset, or a frozen uniform value. Complex
  /// destinations keep the AST expression (valid only when it reads just
  /// `id` and global parameters).
  bool DestIsIdPlusC = false;
  std::int64_t DestOffset = 0;
  std::optional<LinearExpr> DestUniform;
  const Expr *DestExprAst = nullptr;
  bool DestGlobalsOnly = false;

  /// Frozen tag (uniform) — nullopt when the tag was not classifiable.
  std::optional<LinearExpr> Tag;

  /// Frozen sent value when it was uniform across the senders.
  std::optional<LinearExpr> Value;

  /// Namespace prefix of this record's frozen variables (e.g. "q3").
  /// Leftover pieces of a partially consumed send share one namespace.
  std::string FreezeNs;

  /// Aggregated send loop (the Section X extension): a singleton sender
  /// executed `for v = lo to hi do send x -> v; end`, summarized as one
  /// record; every rank in AggRange receives exactly one message from the
  /// sender. Dest fields are unused when set.
  bool IsAggregate = false;
  ProcRange AggRange;
};

/// A recorded send-receive match (an entry of the paper's `matches` set).
struct MatchRecord {
  CfgNodeId SendNode = 0;
  CfgNodeId RecvNode = 0;
  std::string SenderRange;
  std::string ReceiverRange;

  bool operator<(const MatchRecord &O) const {
    return std::tuple(SendNode, RecvNode, SenderRange, ReceiverRange) <
           std::tuple(O.SendNode, O.RecvNode, O.SenderRange, O.ReceiverRange);
  }
  bool operator==(const MatchRecord &O) const {
    return SendNode == O.SendNode && RecvNode == O.RecvNode &&
           SenderRange == O.SenderRange && ReceiverRange == O.ReceiverRange;
  }
};

/// The dataflow state at one pCFG node.
class PcfgState {
public:
  explicit PcfgState(DbmBackend Backend = DbmBackend::Dense)
      : Cg(Backend) {}

  std::vector<ProcSetEntry> Sets;
  ConstraintGraph Cg;
  std::vector<PendingSend> InFlight;
  unsigned NextSeq = 0;
  /// Topology invariants gathered from assume statements and equality
  /// branches on global parameters (path-sensitive, hence per-state).
  FactEnv Facts;

  /// Namespaces a set-local variable: globals and `np` stay bare.
  static std::string scopedVar(const ProcSetEntry &Set,
                               const std::string &Var,
                               const std::set<std::string> &AssignedVars) {
    if (!AssignedVars.count(Var))
      return Var; // Global (never assigned anywhere): np, nrows, ...
    return Set.Name + "." + Var;
  }

  /// Renames set \p Idx's namespace to \p NewName (variables included).
  void renameSet(size_t Idx, const std::string &NewName);

  /// Renames every variable with prefix `<FromNs>.` to `<ToNs>.` across
  /// the constraint graph, ranges and pending sends.
  void renameNamespace(const std::string &FromNs, const std::string &ToNs);

  /// Drops all constraint-graph variables in \p Set's namespace.
  void dropSetVars(const ProcSetEntry &Set);

  /// Sorts sets into canonical order and renumbers namespaces p0, p1, ...
  /// so states at the same configuration are comparable.
  void canonicalize();

  /// Configuration key: which CFG nodes are occupied (with multiplicity)
  /// plus the in-flight send nodes. States with equal keys are joined.
  std::string configKey() const;

  /// Human-readable dump.
  std::string str(const Cfg &Graph) const;

  /// All processes covered by any set (string form, for debugging).
  std::string setsStr() const;
};

/// Joins \p New into \p Acc (same configuration required): ranges keep the
/// bound forms common to both sides, constraint graphs join, pending sends
/// join pairwise. Returns false when the states cannot be joined exactly
/// (e.g. a bound has no stable form) — the caller then goes to Top.
bool joinStates(PcfgState &Acc, const PcfgState &New);

/// Like joinStates but widens the constraint graph (drops unstable
/// bounds), guaranteeing finite ascent around loops.
bool widenStates(PcfgState &Acc, const PcfgState &New);

/// Structural equality of canonicalized states (used for fixpoint checks).
bool statesEqual(const PcfgState &A, const PcfgState &B);

} // namespace csdf

#endif // CSDF_PCFG_PCFGSTATE_H
