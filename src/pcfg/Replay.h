//===- pcfg/Replay.h - Seeded fixpoints: trace capture and replay ----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-side contract of the incremental pipeline. A run with a
/// ReplayCapture attached records its exploration as an AnalysisTrace —
/// the per-worklist-position effect logs plus the committer's decisions.
/// A later run over an *edited* program passes that trace back as an
/// EngineSeed: the engine validates, per CFG node, whether the node (and
/// everything a step reading it would touch) is unchanged, and adopts
/// recorded steps verbatim until the exploration first reaches an edited
/// region, falling back to live computation from there on.
///
/// Correctness model: adoption is re-validated structurally — a step is
/// adopted only when every CFG node in its read/write footprint is
/// provably identical between the prior and current graphs, so the
/// incremental result is bit-identical to a cold run by construction.
/// Any doubt (changed node, out-of-range id, recorded failure) stops the
/// replay permanently; the remaining worklist is computed live.
///
/// AnalysisTrace is deliberately opaque outside the engine: its contents
/// mirror engine internals and carry pointers into the AST of the run
/// that captured it (EngineSeed::PriorKeepAlive must own that AST). The
/// recording run's DBM accounting is detached before the trace is
/// deposited, but its StatsRegistry pointer is retained by contained
/// constraint graphs — capture only on runs using the global registry
/// (the default; every driver/api path qualifies).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_REPLAY_H
#define CSDF_PCFG_REPLAY_H

#include <memory>
#include <string>

namespace csdf {

class AnalysisTrace; // Defined in Engine.cpp; opaque to clients.
class Cfg;
class SymbolTable;

/// Observability counters for one seeded (or capturing) run.
struct ReplayStats {
  /// Worklist steps processed (adopted + live).
  unsigned TotalSteps = 0;
  /// Steps adopted verbatim from the seed trace.
  unsigned AdoptedSteps = 0;
  /// Steps computed live (after replay stopped, or with no seed).
  unsigned LiveSteps = 0;
  /// True when a seed passed validation and at least the replay window
  /// was opened (even if the first step already failed adoption).
  bool SeedUsed = false;
  /// Why the seed was rejected wholesale; empty when accepted or absent.
  std::string SeedRejectReason;
};

/// A prior converged exploration offered to the engine as a warm start.
/// All four members must describe the *same* prior run.
struct EngineSeed {
  /// The recorded exploration (from ReplayCapture::Trace).
  std::shared_ptr<const AnalysisTrace> Trace;
  /// The CFG the trace was recorded against, for node-level diffing.
  std::shared_ptr<const Cfg> PriorGraph;
  /// The intern table the prior run used. The seeding run must pass the
  /// *same* table as AnalysisOptions::SharedSymbols — recorded states
  /// hold interned variable ids that are only valid against it.
  std::shared_ptr<SymbolTable> Symbols;
  /// Owner of the AST the trace's states point into (the prior parse).
  std::shared_ptr<const void> PriorKeepAlive;
  /// AnalysisOptions::fingerprint() of the recording run. The seeding
  /// run's options must fingerprint identically: recorded steps encode
  /// option-dependent decisions (matchers, send semantics, widening
  /// delays), so a mismatch invalidates the whole trace.
  std::string OptionsFingerprint;
};

/// Attach to AnalysisOptions::Capture to record the run. Filled only
/// when the run converged (budget-limited or degraded explorations are
/// not worth replaying and are never captured).
struct ReplayCapture {
  std::shared_ptr<const AnalysisTrace> Trace;
};

} // namespace csdf

#endif // CSDF_PCFG_REPLAY_H
