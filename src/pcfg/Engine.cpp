//===- pcfg/Engine.cpp ---------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "pcfg/Engine.h"

#include "cfg/LoopInfo.h"
#include "cfg/RequestInfo.h"
#include "lang/ExprOps.h"
#include "pcfg/Matcher.h"
#include "pcfg/PartnerExpr.h"
#include "pcfg/Replay.h"
#include "support/Budget.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace csdf;

/// Set the CSDF_TRACE_PCFG environment variable to get a step-by-step
/// dump of the exploration on stderr.
static bool tracingEnabled() {
  static bool Enabled = std::getenv("CSDF_TRACE_PCFG") != nullptr;
  return Enabled;
}

const char *csdf::analysisBugKindName(AnalysisBug::Kind Kind) {
  switch (Kind) {
  case AnalysisBug::Kind::MessageLeak:
    return "message-leak";
  case AnalysisBug::Kind::PossibleDeadlock:
    return "possible-deadlock";
  case AnalysisBug::Kind::TagMismatch:
    return "tag-mismatch";
  case AnalysisBug::Kind::MatchNondet:
    return "match-nondet";
  }
  csdf_unreachable("unhandled AnalysisBug::Kind");
}

const char *csdf::analysisVerdictName(AnalysisVerdict Verdict) {
  switch (Verdict) {
  case AnalysisVerdict::Complete:
    return "complete";
  case AnalysisVerdict::DegradedToTop:
    return "degraded-to-top";
  case AnalysisVerdict::InternalError:
    return "internal-error";
  }
  csdf_unreachable("unhandled AnalysisVerdict");
}

std::string AnalysisOutcome::str() const {
  std::string S = analysisVerdictName(Verdict);
  if (Verdict == AnalysisVerdict::DegradedToTop && Budget != BudgetKind::None)
    S += std::string("(") + budgetKindName(Budget) + ")";
  return S;
}

namespace csdf {

/// The buffered outcome of speculatively stepping one state.
///
/// The engine's parallel drain lets worker threads *compute* steps ahead
/// of time, but only a single coordinator *commits* their outcomes, in
/// the exact order the sequential drain would have produced them. A
/// Stepper therefore never touches the engine's result, configuration
/// table, or worklist: every mutation it would have performed is logged
/// here as an ordered item and replayed verbatim at commit time. The log
/// preserves the sequential interleaving of result mutations exactly —
/// including mutations that preceded an exception (Error carries it; the
/// committer applies the partial log, then rethrows).
struct StepEffects {
  struct Item {
    enum class Kind { Match, Print, TagConflict, Leak, Snapshot, Fail, Submit };
    Kind K = Kind::Match;
    MatchRecord Match{};
    PrintFact Print{};
    CfgNodeId ConflictSend = 0, ConflictRecv = 0;
    AnalysisBug Leak{};
    std::map<std::string, std::optional<std::int64_t>> Snapshot;
    BudgetKind FailKind = BudgetKind::None;
    std::string FailReason, FailConfig;
    PcfgState Sub;
    std::string SubKey;
    bool SubAtLoopHeader = false;
  };
  std::vector<Item> Items;
  /// Why the stepped state was stuck (empty when it progressed).
  std::vector<AnalysisBug> StuckBugs;
  /// Cur.Sets.size() of the stepped state, for the MaxSetsSeen high-water.
  unsigned SetsSeen = 0;
  /// Exception the step died with, if any (rethrown after commit).
  std::exception_ptr Error;
};

/// The committer's decision for one submitted state, recorded alongside
/// the effect log so a replay can reproduce the configuration table's
/// evolution without re-running joins, widenings, or equality tests.
struct CommitOutcome {
  enum class Kind {
    /// The state was unjoinable with every stored variant: appended.
    NewVariant,
    /// Folded into variant `Variant` without changing it.
    Fixpoint,
    /// Folded into variant `Variant`, producing `NewState`.
    Updated,
  };
  Kind K = Kind::NewVariant;
  std::uint32_t Variant = 0;
  /// Updated only: the stored variant's post-join state, captured after
  /// closure (exactly what the table held after this commit).
  PcfgState NewState;
};

/// One worklist position of a recorded exploration: the step's effect log
/// plus the committer's decision for each Submit item, in order.
struct TraceStep {
  StepEffects Fx;
  std::vector<CommitOutcome> Outcomes;
};

/// A converged exploration, step by step. Steps[i] corresponds to
/// worklist position i (the initial seeding commit is not recorded: it is
/// determined by the options alone and runs identically in both modes).
/// States inside the trace point into the AST of the run that captured
/// it; EngineSeed::PriorKeepAlive must own that AST. Adopted steps are
/// re-captured with remapped pointers, so every trace stands alone.
class AnalysisTrace {
public:
  std::vector<TraceStep> Steps;
};

} // namespace csdf

namespace {

/// One target piece when a process set splits.
struct SplitPiece {
  ProcRange Range;
  CfgNodeId Node = 0;
};

/// One speculative step of the pCFG exploration: all transfer functions,
/// matching, and normalization, reading a private state snapshot and
/// writing a StepEffects log. Steppers are cheap, single-use and
/// thread-confined; shared inputs (Cfg, options, loop info, assigned-var
/// set) are immutable during a drain.
class Stepper {
public:
  Stepper(const Cfg &Graph, const AnalysisOptions &Opts, const LoopInfo &Loops,
          const std::set<std::string> &AssignedVars,
          const std::map<CfgNodeId, WaitResolution> &WaitPlans)
      : Graph(Graph), Opts(Opts), Loops(Loops), AssignedVars(AssignedVars),
        WaitPlans(WaitPlans) {}

  /// Submits the initial state (the seeding half of Figure 4).
  void seed(PcfgState Init) { submit(std::move(Init)); }

  StepEffects takeEffects() { return std::move(Fx); }

private:
  //===--------------------------------------------------------------------===
  // Setup and small helpers
  //===--------------------------------------------------------------------===

  std::string scoped(const ProcSetEntry &Set, const std::string &Var) const {
    return PcfgState::scopedVar(Set, Var, AssignedVars);
  }

  /// True when \p E reads only `id` and globals (safe to re-evaluate any
  /// time).
  bool globalsOnly(const Expr *E) const {
    std::set<std::string> Vars;
    collectVars(E, Vars);
    for (const std::string &V : Vars)
      if (V != "id" && AssignedVars.count(V))
        return false;
    return true;
  }

  PartnerExpr classify(const PcfgState &St, const ProcSetEntry &Set,
                       const Expr *E) const {
    return classifyPartnerExpr(E, Set, AssignedVars, St.Cg);
  }

  /// Classified tag for a comm node (tag defaults to 0).
  std::optional<LinearExpr> classifyTag(const PcfgState &St,
                                        const ProcSetEntry &Set,
                                        const Expr *TagExpr) const {
    if (!TagExpr)
      return LinearExpr(0);
    PartnerExpr P = classify(St, Set, TagExpr);
    if (P.isUniform())
      return P.Value;
    return std::nullopt;
  }

  /// Degrades the result to Top. \p Kind records which resource bound
  /// tripped (BudgetKind::None for precision give-ups); \p Config the
  /// offending pCFG configuration, when one is identifiable. Logged; the
  /// committer's first-failure-wins rule decides which one sticks.
  void fail(BudgetKind Kind, const std::string &Reason,
            std::string Config = "") {
    if (tracingEnabled())
      std::fprintf(stderr, "TOP: %s\n", Reason.c_str());
    LocalTop = true;
    StepEffects::Item It;
    It.K = StepEffects::Item::Kind::Fail;
    It.FailKind = Kind;
    It.FailReason = Reason;
    It.FailConfig = std::move(Config);
    Fx.Items.push_back(std::move(It));
  }

  /// Precision give-up (not resource exhaustion).
  void fail(const std::string &Reason) { fail(BudgetKind::None, Reason); }

  void logMatch(MatchRecord M) {
    StepEffects::Item It;
    It.K = StepEffects::Item::Kind::Match;
    It.Match = std::move(M);
    Fx.Items.push_back(std::move(It));
  }

  /// Deduplication against already-reported bugs happens at commit time,
  /// where the full bug list is visible.
  void logTagConflict(CfgNodeId SendNode, CfgNodeId RecvNode) {
    StepEffects::Item It;
    It.K = StepEffects::Item::Kind::TagConflict;
    It.ConflictSend = SendNode;
    It.ConflictRecv = RecvNode;
    Fx.Items.push_back(std::move(It));
  }

  std::string freshSetName() { return "s" + std::to_string(FreshSets++); }

  /// Human-readable range for match records: one representative form per
  /// bound, preferring globals/constants over alias lists.
  static std::string displayRange(const ProcRange &Range) {
    auto Pick = [](const SymBound &Bound) {
      for (const LinearExpr &Form : Bound.forms())
        if (Form.isConstant() || Form.var().find('.') == std::string::npos)
          return Form.str();
      return Bound.primary().str();
    };
    return "[" + Pick(Range.lb()) + ".." + Pick(Range.ub()) + "]";
  }

  //===--------------------------------------------------------------------===
  // State normalization and the worklist
  //===--------------------------------------------------------------------===

  /// Drops empty sets/pendings, merges sets at the same node, collects
  /// dead freeze variables, canonicalizes. Returns false (and tops out)
  /// when a set's emptiness is undecidable nowhere... (never fails: only
  /// provably empty pieces were admitted).
  void normalize(PcfgState &St) {
    // Drop provably empty sets.
    for (size_t I = 0; I < St.Sets.size();) {
      if (St.Sets[I].Range.provablyEmpty(St.Cg)) {
        St.dropSetVars(St.Sets[I]);
        St.Sets.erase(St.Sets.begin() + static_cast<long>(I));
      } else {
        ++I;
      }
    }
    for (size_t I = 0; I < St.InFlight.size();) {
      const PendingSend &P = St.InFlight[I];
      bool Dead = P.IsAggregate ? P.AggRange.provablyEmpty(St.Cg)
                                : P.Senders.provablyEmpty(St.Cg);
      if (Dead)
        St.InFlight.erase(St.InFlight.begin() + static_cast<long>(I));
      else
        ++I;
    }

    // Merge sets that meet at the same CFG node.
    bool Merged = true;
    while (Merged) {
      Merged = false;
      for (size_t I = 0; I < St.Sets.size() && !Merged; ++I) {
        for (size_t J = I + 1; J < St.Sets.size() && !Merged; ++J) {
          if (St.Sets[I].Node != St.Sets[J].Node)
            continue;
          auto Combined =
              tryMerge(St.Sets[I].Range, St.Sets[J].Range, St.Cg);
          if (!Combined) {
            if (tracingEnabled())
              std::fprintf(stderr, "no-merge: %s and %s\n",
                           St.Sets[I].Range.str().c_str(),
                           St.Sets[J].Range.str().c_str());
            continue;
          }
          mergeSets(St, I, J, *Combined);
          Merged = true;
        }
      }
    }

    // Garbage-collect freeze variables of consumed pendings.
    std::set<std::string> LiveNs;
    for (const PendingSend &P : St.InFlight)
      LiveNs.insert(P.FreezeNs);
    for (const std::string &Var : St.Cg.varNames()) {
      size_t Dot = Var.find('.');
      if (Dot == std::string::npos)
        continue;
      std::string Ns = Var.substr(0, Dot);
      if ((Ns[0] == 'q' || Ns.rfind("tmpq$", 0) == 0) && !LiveNs.count(Ns))
        St.Cg.removeVar(Var);
    }

    St.canonicalize();
  }

  /// Merges set J into set I (same CFG node, \p Combined covers both).
  void mergeSets(PcfgState &St, size_t I, size_t J,
                 const ProcRange &Combined) {
    ProcSetEntry &A = St.Sets[I];
    ProcSetEntry &B = St.Sets[J];
    std::string NewName = freshSetName();

    // Uniformity: a variable stays uniform only when uniform on both
    // sides and provably equal across the halves.
    std::set<std::string> NonUniform = A.NonUniform;
    NonUniform.insert(B.NonUniform.begin(), B.NonUniform.end());
    std::set<std::string> VarsSeen;
    for (const std::string &Var : St.Cg.varNames()) {
      std::string PrefixA = A.Name + ".";
      if (Var.rfind(PrefixA, 0) != 0)
        continue;
      std::string Base = Var.substr(PrefixA.size());
      if (Base.find('$') != std::string::npos)
        continue; // Anchor slots are per-set metadata.
      VarsSeen.insert(Base);
      LinearExpr VA(A.Name + "." + Base, 0);
      LinearExpr VB(B.Name + "." + Base, 0);
      if (!NonUniform.count(Base) && !St.Cg.provesEQ(VA, VB))
        NonUniform.insert(Base);
    }

    // Join the two sides' variable valuations under the new namespace.
    // Anchor the merged bounds into a scratch namespace *before* joining:
    // they may reference A's or B's variables, which do not survive the
    // merge. The scratch constraints agree on both join sides, so the
    // captured values survive the join.
    ProcRange Anchored = anchorRange(St, "mrg$", Combined);

    ConstraintGraph CgA = St.Cg;
    ConstraintGraph CgB = St.Cg;
    renameNsIn(CgA, A.Name, NewName);
    renameNsIn(CgB, B.Name, NewName);
    CgA.joinWith(CgB);
    St.Cg = std::move(CgA);
    // A's anchor slots (lo$/ub$) were renamed into NewName by the join
    // but describe A's old extent; drop them before the merged anchors
    // take those names.
    for (const std::string &Var : St.Cg.varNames()) {
      if (Var.rfind(NewName + ".", 0) == 0 &&
          Var.find('$') != std::string::npos)
        St.Cg.removeVar(Var);
    }
    renameNsIn(St.Cg, "mrg$", NewName);
    Anchored = Anchored.withRenamedVars([&](const std::string &Var) {
      if (Var.rfind("mrg$.", 0) == 0)
        return NewName + "." + Var.substr(5);
      return Var;
    });

    ProcSetEntry Combined2;
    Combined2.Name = NewName;
    Combined2.Range = Anchored;
    Combined2.Node = A.Node;
    Combined2.NonUniform = std::move(NonUniform);

    // Remove stale namespaces (B's vars survived in CgA, A's in CgB; both
    // partially; clean them).
    for (const std::string &Var : St.Cg.varNames()) {
      if (Var.rfind(A.Name + ".", 0) == 0 ||
          Var.rfind(B.Name + ".", 0) == 0)
        St.Cg.removeVar(Var);
    }

    // Erase J first (higher index), then replace I.
    St.Sets.erase(St.Sets.begin() + static_cast<long>(J));
    St.Sets[I] = std::move(Combined2);
  }

  static void renameNsIn(ConstraintGraph &Cg, const std::string &FromNs,
                         const std::string &ToNs) {
    std::vector<std::pair<std::string, std::string>> Renames;
    std::string Prefix = FromNs + ".";
    for (const std::string &Var : Cg.varNames())
      if (Var.rfind(Prefix, 0) == 0)
        Renames.emplace_back(Var, ToNs + "." + Var.substr(Prefix.size()));
    Cg.renameVars(Renames);
  }

  /// Reduces a range bound to one *stable* form. Stored bounds must never
  /// reference a variable that a later transfer can mutate: enriched alias
  /// forms (e.g. `i-1`) silently change meaning when `i` is reassigned.
  /// Constants and globals are stable as-is; anything namespaced is pinned
  /// into a fresh anchor variable in \p OwnerNs whose value the constraint
  /// graph tracks exactly (assignments to the original variable shift the
  /// relation, not the anchor). Aliases are recovered transiently via
  /// enrichment whenever a query needs them.
  SymBound anchorBound(PcfgState &St, const std::string &OwnerNs,
                       const char *Slot, const SymBound &Bound) {
    for (const LinearExpr &Form : Bound.forms())
      if (Form.isConstant() || Form.var().find('.') == std::string::npos)
        return SymBound(Form);
    std::string Anchor = OwnerNs + "." + Slot;
    St.Cg.assign(Anchor, Bound.primary());
    return SymBound(LinearExpr(Anchor, 0));
  }

  ProcRange anchorRange(PcfgState &St, const std::string &OwnerNs,
                        const ProcRange &Range) {
    return ProcRange(anchorBound(St, OwnerNs, "lo$", Range.lb()),
                     anchorBound(St, OwnerNs, "ub$", Range.ub()));
  }

  /// Replaces set \p Idx by \p Pieces (each with its own target node).
  /// Returns the indices of the new sets, in piece order.
  std::vector<size_t> replaceSet(PcfgState &St, size_t Idx,
                                 const std::vector<SplitPiece> &Pieces) {
    ProcSetEntry Old = St.Sets[Idx];
    std::vector<size_t> NewIndices;
    for (const SplitPiece &Piece : Pieces) {
      ProcSetEntry E;
      E.Name = freshSetName();
      E.Range = Piece.Range;
      E.Node = Piece.Node;
      E.NonUniform = Old.NonUniform;
      E.Range = anchorRange(St, E.Name, E.Range);
      // Copy the old set's variable valuation: at split time all pieces
      // agree with the parent exactly. The parent's `lo$`/`ub$` anchor
      // slots are per-set metadata, not program state — copying them
      // would contradict the piece's own freshly assigned anchors.
      std::string OldPrefix = Old.Name + ".";
      for (const std::string &Var : St.Cg.varNames()) {
        if (Var.rfind(OldPrefix, 0) != 0)
          continue;
        std::string Base = Var.substr(OldPrefix.size());
        if (Base.find('$') != std::string::npos)
          continue;
        St.Cg.addEQ(LinearExpr(E.Name + "." + Base, 0),
                    LinearExpr(Var, 0));
      }
      NewIndices.push_back(St.Sets.size());
      St.Sets.push_back(std::move(E));
    }
    St.dropSetVars(St.Sets[Idx]);
    St.Sets.erase(St.Sets.begin() + static_cast<long>(Idx));
    for (size_t &I : NewIndices)
      --I; // Account for the erased entry before them.
    return NewIndices;
  }

  /// Submits a successor state: joins/widens with any stored state at the
  /// same configuration and enqueues when something changed.
  void submit(PcfgState St) {
    if (tracingEnabled())
      std::fprintf(stderr, "submit(raw): %s\n", St.setsStr().c_str());
    if (!St.Cg.isFeasible()) {
      // Contradictory facts: this successor describes no execution.
      if (tracingEnabled())
        std::fprintf(stderr, "submit: infeasible state dropped\n");
      return;
    }
    normalize(St);
    if (St.Sets.size() > Opts.MaxProcSets) {
      fail(BudgetKind::ProcSets,
           "process-set bound p=" + std::to_string(Opts.MaxProcSets) +
               " exceeded",
           St.configKey());
      return;
    }

    // Terminal state?
    bool AllExit = true;
    for (const ProcSetEntry &Set : St.Sets)
      if (!Graph.node(Set.Node).isExit())
        AllExit = false;
    if (AllExit) {
      for (const PendingSend &P : St.InFlight) {
        StepEffects::Item It;
        It.K = StepEffects::Item::Kind::Leak;
        It.Leak = {AnalysisBug::Kind::MessageLeak, P.SendNode, SourceLoc(),
                   "message from " + P.Senders.str() + " sent at " +
                       Graph.nodeLabel(P.SendNode) + " is never received"};
        Fx.Items.push_back(std::move(It));
      }
      recordFinalSnapshot(St);
      return;
    }

    std::string Key = St.configKey();
    if (tracingEnabled())
      std::fprintf(stderr, "submit: key=%s  %s\n", Key.c_str(),
                   St.setsStr().c_str());

    // Widen only at configurations with a set inside a CFG loop body:
    // repeated visits there are genuine loop iterations needing finite
    // ascent, and loop guards are re-established by branch transfers on
    // the next pass (the standard widening-with-guard pattern).
    // Everywhere else a plain join converges once the loops stabilize.
    // Decided here (not at commit) because LoopInfo is immutable shared
    // input; the join-vs-widen choice itself is the committer's.
    bool AtLoopHeader = false;
    for (const ProcSetEntry &Set : St.Sets)
      if (Loops.isInLoop(Set.Node))
        AtLoopHeader = true;

    // Close the constraint graph now, on the speculating thread: stored
    // states must be closed before another worker may snapshot them (the
    // closed-shared-block invariant), and doing it here keeps the O(n^3)
    // closure cost out of the coordinator's serialized commit path.
    St.Cg.close();

    StepEffects::Item It;
    It.K = StepEffects::Item::Kind::Submit;
    It.SubKey = std::move(Key);
    It.Sub = std::move(St);
    It.SubAtLoopHeader = AtLoopHeader;
    Fx.Items.push_back(std::move(It));
  }

  //===--------------------------------------------------------------------===
  // Transfer functions
  //===--------------------------------------------------------------------===

  /// Applies `Var := E` on set \p Idx of \p St.
  void transferAssign(PcfgState &St, size_t Idx, const std::string &Var,
                      const Expr *E) {
    ProcSetEntry &Set = St.Sets[Idx];
    std::string Target = scoped(Set, Var);
    bool Singleton = Set.Range.provablySingleton(St.Cg);

    if (auto Offset = matchIdPlusC(E)) {
      if (Singleton) {
        St.Cg.assign(Target, Set.Range.lb().primary().plus(*Offset));
        Set.NonUniform.erase(Var);
        return;
      }
      St.Cg.havoc(Target);
      Set.NonUniform.insert(Var);
      return;
    }

    PartnerExpr P = classify(St, Set, E);
    if (P.isUniform()) {
      St.Cg.assign(Target, P.Value);
      Set.NonUniform.erase(Var);
      return;
    }

    // Complex right-hand side: value unknown.
    St.Cg.havoc(Target);
    std::set<std::string> Vars;
    collectVars(E, Vars);
    bool MayDiffer = dependsOnId(E) || containsInput(E);
    for (const std::string &V : Vars)
      if (Set.NonUniform.count(V))
        MayDiffer = true;
    if (MayDiffer && !Singleton)
      Set.NonUniform.insert(Var);
    else
      Set.NonUniform.erase(Var);
  }

  /// Records what a print statement provably prints.
  void transferPrint(PcfgState &St, size_t Idx, CfgNodeId Node,
                     const Expr *E) {
    ProcSetEntry &Set = St.Sets[Idx];
    PrintFact Fact;
    Fact.Node = Node;
    Fact.SetRange = Set.Range.str();
    PartnerExpr P = classify(St, Set, E);
    if (P.isUniform()) {
      if (P.Value.isConstant())
        Fact.Value = P.Value.constant();
      else if (auto C = St.Cg.constValue(P.Value.var()))
        Fact.Value = *C + P.Value.constant();
    }
    StepEffects::Item It;
    It.K = StepEffects::Item::Kind::Print;
    It.Print = std::move(Fact);
    Fx.Items.push_back(std::move(It));
  }

  /// Registers an assume's fact into the FactEnv and (when linear) the
  /// constraint graph.
  void transferAssume(PcfgState &St, size_t Idx, const Expr *Cond) {
    if (globalsOnly(Cond))
      addAssumeFact(St.Facts, Cond);
    assumeRelational(St, Idx, Cond, /*Positive=*/true);
  }

  /// Conjoins a relational condition (or its negation) into the graph
  /// when it is linear; silently keeps Top behaviour otherwise.
  void assumeRelational(PcfgState &St, size_t Idx, const Expr *Cond,
                        bool Positive) {
    const auto *B = dyn_cast<BinaryExpr>(Cond);
    if (!B)
      return;
    if (Positive && B->op() == BinaryOp::And) {
      assumeRelational(St, Idx, B->lhs(), true);
      assumeRelational(St, Idx, B->rhs(), true);
      return;
    }
    if (!Positive && B->op() == BinaryOp::Or) {
      assumeRelational(St, Idx, B->lhs(), false);
      assumeRelational(St, Idx, B->rhs(), false);
      return;
    }
    ProcSetEntry &Set = St.Sets[Idx];
    PartnerExpr L = classify(St, Set, B->lhs());
    PartnerExpr R = classify(St, Set, B->rhs());
    if (!L.isUniform() || !R.isUniform())
      return;
    BinaryOp Op = B->op();
    if (!Positive) {
      switch (Op) {
      case BinaryOp::Eq:
        Op = BinaryOp::Ne;
        break;
      case BinaryOp::Ne:
        Op = BinaryOp::Eq;
        break;
      case BinaryOp::Lt:
        Op = BinaryOp::Ge;
        break;
      case BinaryOp::Le:
        Op = BinaryOp::Gt;
        break;
      case BinaryOp::Gt:
        Op = BinaryOp::Le;
        break;
      case BinaryOp::Ge:
        Op = BinaryOp::Lt;
        break;
      default:
        return;
      }
    }
    switch (Op) {
    case BinaryOp::Eq:
      St.Cg.addEQ(L.Value, R.Value);
      return;
    case BinaryOp::Ne:
      return; // Not expressible as a difference constraint.
    case BinaryOp::Lt:
      St.Cg.addLE(L.Value, R.Value.plus(-1));
      return;
    case BinaryOp::Le:
      St.Cg.addLE(L.Value, R.Value);
      return;
    case BinaryOp::Gt:
      St.Cg.addLE(R.Value, L.Value.plus(-1));
      return;
    case BinaryOp::Ge:
      St.Cg.addLE(R.Value, L.Value);
      return;
    default:
      return;
    }
  }

  //===--------------------------------------------------------------------===
  // Branches
  //===--------------------------------------------------------------------===

  /// Handles a branch by set \p Idx. Appends successor states.
  bool transferBranch(PcfgState St, size_t Idx) {
    const CfgNode &Node = Graph.node(St.Sets[Idx].Node);
    const Expr *Cond = Node.Cond;
    CfgNodeId TrueSucc = Graph.branchSuccessor(Node.Id, true);
    CfgNodeId FalseSucc = Graph.branchSuccessor(Node.Id, false);

    if (dependsOnId(Cond))
      return splitOnIdBranch(std::move(St), Idx, Cond, TrueSucc, FalseSucc);

    ProcSetEntry &Set = St.Sets[Idx];
    // Data-dependent branch of a multi-process set: only exact when the
    // decision is uniform across the set.
    if (!Set.Range.provablySingleton(St.Cg)) {
      std::set<std::string> Vars;
      collectVars(Cond, Vars);
      for (const std::string &V : Vars) {
        if (Set.NonUniform.count(V)) {
          fail("branch at " + Graph.nodeLabel(Node.Id) +
               " depends on non-uniform variable '" + V +
               "' of a multi-process set");
          return false;
        }
      }
    }

    // Explore both outcomes, pruning infeasible ones.
    PcfgState TrueSt = St;
    TrueSt.Sets[Idx].Node = TrueSucc;
    assumeRelational(TrueSt, Idx, Cond, /*Positive=*/true);
    if (globalsOnly(Cond))
      addAssumeFact(TrueSt.Facts, Cond);
    if (TrueSt.Cg.isFeasible())
      submit(std::move(TrueSt));

    PcfgState FalseSt = std::move(St);
    FalseSt.Sets[Idx].Node = FalseSucc;
    assumeRelational(FalseSt, Idx, Cond, /*Positive=*/false);
    if (FalseSt.Cg.isFeasible())
      submit(std::move(FalseSt));
    return true;
  }

  /// Provably larger / smaller of two bounds, or nullopt.
  static std::optional<SymBound> maxBound(const SymBound &A,
                                          const SymBound &B,
                                          const ConstraintGraph &Cg) {
    if (A.provablyLE(B, Cg))
      return B;
    if (B.provablyLE(A, Cg))
      return A;
    return std::nullopt;
  }
  static std::optional<SymBound> minBound(const SymBound &A,
                                          const SymBound &B,
                                          const ConstraintGraph &Cg) {
    if (A.provablyLE(B, Cg))
      return A;
    if (B.provablyLE(A, Cg))
      return B;
    return std::nullopt;
  }

  /// Splits set \p Idx over an id-relational branch.
  bool splitOnIdBranch(PcfgState St, size_t Idx, const Expr *Cond,
                       CfgNodeId TrueSucc, CfgNodeId FalseSucc) {
    const auto *B = dyn_cast<BinaryExpr>(Cond);
    const ProcSetEntry &Set = St.Sets[Idx];
    std::string Where = " at " + Graph.nodeLabel(Set.Node);
    if (!B) {
      fail("unsupported id-dependent branch" + Where);
      return false;
    }
    // Normalize to `id <op> pivot`.
    BinaryOp Op = B->op();
    const Expr *IdSide = nullptr;
    const Expr *PivotE = nullptr;
    if (const auto *V = dyn_cast<VarRefExpr>(B->lhs());
        V && V->isProcessId()) {
      IdSide = B->lhs();
      PivotE = B->rhs();
    } else if (const auto *V2 = dyn_cast<VarRefExpr>(B->rhs());
               V2 && V2->isProcessId()) {
      IdSide = B->rhs();
      PivotE = B->lhs();
      switch (Op) {
      case BinaryOp::Lt:
        Op = BinaryOp::Gt;
        break;
      case BinaryOp::Le:
        Op = BinaryOp::Ge;
        break;
      case BinaryOp::Gt:
        Op = BinaryOp::Lt;
        break;
      case BinaryOp::Ge:
        Op = BinaryOp::Le;
        break;
      default:
        break;
      }
    }
    if (!IdSide || dependsOnId(PivotE)) {
      fail("unsupported id-dependent branch" + Where);
      return false;
    }
    PartnerExpr Pivot = classify(St, Set, PivotE);
    if (!Pivot.isUniform()) {
      fail("id compared against non-uniform expression" + Where);
      return false;
    }
    SymBound E(Pivot.Value);
    E.enrich(St.Cg);

    const SymBound &Lb = Set.Range.lb();
    const SymBound &Ub = Set.Range.ub();

    // Piece boundaries per operator; nullopt bound = unclipped.
    struct PieceSpec {
      std::optional<SymBound> Lo, Hi;
      bool TakeTrue;
    };
    std::vector<PieceSpec> Specs;
    switch (Op) {
    case BinaryOp::Eq:
      Specs = {{E, E, true}, {std::nullopt, E.plus(-1), false},
               {E.plus(1), std::nullopt, false}};
      break;
    case BinaryOp::Ne:
      Specs = {{E, E, false}, {std::nullopt, E.plus(-1), true},
               {E.plus(1), std::nullopt, true}};
      break;
    case BinaryOp::Lt:
      Specs = {{std::nullopt, E.plus(-1), true}, {E, std::nullopt, false}};
      break;
    case BinaryOp::Le:
      Specs = {{std::nullopt, E, true}, {E.plus(1), std::nullopt, false}};
      break;
    case BinaryOp::Gt:
      Specs = {{E.plus(1), std::nullopt, true}, {std::nullopt, E, false}};
      break;
    case BinaryOp::Ge:
      Specs = {{E, std::nullopt, true}, {std::nullopt, E.plus(-1), false}};
      break;
    default:
      fail("unsupported id-dependent branch operator" + Where);
      return false;
    }

    std::vector<SplitPiece> Pieces;
    for (const PieceSpec &Spec : Specs) {
      std::optional<SymBound> Lo =
          Spec.Lo ? maxBound(Lb, *Spec.Lo, St.Cg) : std::optional(Lb);
      std::optional<SymBound> Hi =
          Spec.Hi ? minBound(Ub, *Spec.Hi, St.Cg) : std::optional(Ub);
      if (!Lo || !Hi) {
        fail("cannot order split bounds" + Where);
        return false;
      }
      ProcRange Piece(*Lo, *Hi);
      // Provably empty pieces vanish; pieces with unknown emptiness are
      // kept as possibly-empty sets and deleted if and when their
      // emptiness is discovered.
      if (Piece.provablyEmpty(St.Cg))
        continue;
      Pieces.push_back({Piece, Spec.TakeTrue ? TrueSucc : FalseSucc});
    }
    replaceSet(St, Idx, Pieces);
    submit(std::move(St));
    return true;
  }

  //===--------------------------------------------------------------------===
  // Sends, receives and matching
  //===--------------------------------------------------------------------===

  //===--------------------------------------------------------------------===
  // Aggregated send loops (Section X)
  //===--------------------------------------------------------------------===

  /// The recognized shape `branch(v <= UB) { send VAL -> v; v = v + 1; }`.
  struct SendLoop {
    CfgNodeId Branch = 0;
    CfgNodeId SendNode = 0;
    std::string Var;
    const Expr *UpperBound = nullptr;
    const Expr *ValueExpr = nullptr;
    const Expr *TagExpr = nullptr;
    CfgNodeId ExitNode = 0;
  };

  /// Recognizes a send loop rooted at branch node \p BranchId.
  std::optional<SendLoop> matchSendLoop(CfgNodeId BranchId) const {
    const CfgNode &Branch = Graph.node(BranchId);
    if (!Branch.isBranch())
      return std::nullopt;
    const auto *Cond = dyn_cast<BinaryExpr>(Branch.Cond);
    if (!Cond || Cond->op() != BinaryOp::Le)
      return std::nullopt;
    const auto *Var = dyn_cast<VarRefExpr>(Cond->lhs());
    if (!Var || Var->isProcessId() || Var->isProcessCount())
      return std::nullopt;

    SendLoop Loop;
    Loop.Branch = BranchId;
    Loop.Var = Var->name();
    Loop.UpperBound = Cond->rhs();
    Loop.ExitNode = Graph.branchSuccessor(BranchId, false);

    // Body: exactly Send(dest == v) then v = v + 1 back to the branch.
    CfgNodeId SendId = Graph.branchSuccessor(BranchId, true);
    const CfgNode &Send = Graph.node(SendId);
    if (Send.Kind != CfgNodeKind::Send)
      return std::nullopt;
    const auto *Dest = dyn_cast<VarRefExpr>(Send.Partner);
    if (!Dest || Dest->name() != Loop.Var)
      return std::nullopt;
    if (Send.Succs.size() != 1)
      return std::nullopt;
    CfgNodeId StepId = Graph.soleSuccessor(SendId);
    const CfgNode &Step = Graph.node(StepId);
    if (Step.Kind != CfgNodeKind::Assign || Step.Var != Loop.Var)
      return std::nullopt;
    auto Inc = matchIdPlusC(Step.Value);
    (void)Inc; // Step must be v = v + 1 (id-form does not apply here).
    auto Lin = LinearExpr::fromExpr(Step.Value);
    if (!Lin || !Lin->hasVar() || Lin->var() != Loop.Var ||
        Lin->constant() != 1)
      return std::nullopt;
    if (Step.Succs.size() != 1 || Graph.soleSuccessor(StepId) != BranchId)
      return std::nullopt;

    Loop.SendNode = SendId;
    Loop.ValueExpr = Send.Value;
    Loop.TagExpr = Send.Tag;
    return Loop;
  }

  /// Summarizes the whole remaining send loop of set \p Idx (sitting at
  /// the loop branch) into one aggregated pending record and advances the
  /// set past the loop. Returns false when preconditions fail (caller
  /// falls back to per-iteration exploration).
  bool emitAggregateSendLoop(PcfgState &St, size_t Idx,
                             const SendLoop &Loop) {
    ProcSetEntry &Set = St.Sets[Idx];
    if (!Set.Range.provablySingleton(St.Cg))
      return false;
    if (St.InFlight.size() >= Opts.MaxInFlight)
      return false;

    // Loop bounds: v's current value .. UB (uniform).
    std::string ScopedVar = scoped(Set, Loop.Var);
    PartnerExpr Ub = classify(St, Set, Loop.UpperBound);
    if (!Ub.isUniform())
      return false;
    SymBound Lo((LinearExpr(ScopedVar, 0)));
    SymBound Hi(Ub.Value);
    ProcRange Agg(Lo, Hi);
    // The summary asserts "the loop body ran for v = lo..UB and exited
    // with v == UB+1", which is only exact when the loop provably runs at
    // least once. Otherwise fall back to per-iteration exploration.
    if (!Agg.provablyNonEmpty(St.Cg))
      return false;

    PendingSend P;
    P.SendNode = Loop.SendNode;
    P.Seq = St.NextSeq++;
    P.FreezeNs = "q" + std::to_string(P.Seq);
    P.IsAggregate = true;

    if (auto Tag = classifyTag(St, Set, Loop.TagExpr)) {
      if (Tag->hasVar() && Tag->var().find('.') != std::string::npos) {
        St.Cg.assign(P.FreezeNs + ".tag", *Tag);
        P.Tag = LinearExpr(P.FreezeNs + ".tag", 0);
      } else {
        P.Tag = Tag;
      }
    }

    // The per-iteration value: uniform only if it does not read the loop
    // variable (every receiver then gets the same value).
    PartnerExpr Value = classify(St, Set, Loop.ValueExpr);
    std::set<std::string> ValueVars;
    collectVars(Loop.ValueExpr, ValueVars);
    if (Value.isUniform() && !ValueVars.count(Loop.Var)) {
      if (Value.Value.hasVar() &&
          Value.Value.var().find('.') != std::string::npos) {
        St.Cg.assign(P.FreezeNs + ".val", Value.Value);
        P.Value = LinearExpr(P.FreezeNs + ".val", 0);
      } else {
        P.Value = Value.Value;
      }
    }

    P.Senders = ProcRange(anchorBound(St, P.FreezeNs, "lo", Set.Range.lb()),
                          anchorBound(St, P.FreezeNs, "hi", Set.Range.ub()));
    P.AggRange = ProcRange(anchorBound(St, P.FreezeNs, "alo", Lo),
                           anchorBound(St, P.FreezeNs, "ahi", Hi));
    St.InFlight.push_back(std::move(P));

    // The sender has executed the entire loop: v = UB + 1, exit edge.
    St.Cg.assign(ScopedVar, Hi.primary().plus(1));
    Set.Node = Loop.ExitNode;
    if (tracingEnabled())
      std::fprintf(stderr, "aggregated send loop at n%u: range %s\n",
                   Loop.SendNode, St.InFlight.back().AggRange.str().c_str());
    return true;
  }

  /// Matches an aggregated pending against a blocked receiver set: each
  /// rank in the aggregate range holds exactly one message from the
  /// singleton sender, so receivers whose claimed source equals the
  /// sender's rank match en masse.
  std::optional<MatchResult> aggregateMatch(const PcfgState &St,
                                            const PendingSend &P,
                                            const CommDesc &Recv,
                                            bool &TagConflict) const {
    TagConflict = false;
    if (!P.Tag || !Recv.Tag)
      return std::nullopt;
    if (!St.Cg.provesEQ(*P.Tag, *Recv.Tag)) {
      if (St.Cg.provesLE(P.Tag->plus(1), *Recv.Tag) ||
          St.Cg.provesLE(Recv.Tag->plus(1), *P.Tag))
        TagConflict = true;
      return std::nullopt;
    }

    const SymBound &SenderRank = P.Senders.lb();
    ProcRange Candidates = P.AggRange;

    if (Recv.Partner.isUniform()) {
      SymBound Claimed(Recv.Partner.Value);
      Claimed.enrich(St.Cg);
      if (!SenderRank.provablyEQ(Claimed, St.Cg))
        return std::nullopt;
      auto RProcs = tryIntersect(Candidates, Recv.Range, St.Cg);
      if (!RProcs)
        return std::nullopt;
      MatchResult M;
      M.SProcs = P.Senders;
      M.RProcs = *RProcs;
      M.SenderFull = true; // The sender set itself is never split.
      if (!M.RProcs.provablyNonEmpty(St.Cg))
        return std::nullopt;
      if (provablyEqual(M.RProcs, Recv.Range, St.Cg)) {
        M.ReceiverFull = true;
      } else {
        auto Diff = tryDifference(Recv.Range, M.RProcs, St.Cg);
        if (!Diff)
          return std::nullopt;
        M.ReceiverFull = false;
        M.ReceiverRest = *Diff;
      }
      // The aggregate-range leftover rides in SenderRest (consumed by the
      // aggregate-aware pending update).
      auto AggDiff = tryDifference(Candidates, M.RProcs, St.Cg);
      if (!AggDiff)
        return std::nullopt;
      M.SenderRest = *AggDiff;
      return M;
    }

    if (Recv.Partner.isIdPlusC()) {
      // Claimed source id + c equals the sender only for the single rank
      // senderRank - c.
      SymBound R0 = SenderRank.plus(-Recv.Partner.Offset);
      ProcRange Single(R0, R0);
      if (!provablyContains(Candidates, Single, St.Cg) ||
          !provablyContains(Recv.Range, Single, St.Cg))
        return std::nullopt;
      MatchResult M;
      M.SProcs = P.Senders;
      M.RProcs = Single;
      M.SenderFull = true;
      auto RDiff = tryDifference(Recv.Range, Single, St.Cg);
      auto ADiff = tryDifference(Candidates, Single, St.Cg);
      if (!RDiff || !ADiff)
        return std::nullopt;
      M.ReceiverFull =
          !RDiff->Before.has_value() && !RDiff->After.has_value();
      M.ReceiverRest = *RDiff;
      M.SenderRest = *ADiff;
      return M;
    }
    return std::nullopt;
  }

  /// The recognized shape `branch(v <= UB) { recv W <- v; v = v + 1; }`.
  struct RecvLoop {
    CfgNodeId Branch = 0;
    CfgNodeId RecvNode = 0;
    std::string Var;     ///< Loop variable (also the source expression).
    std::string RecvVar; ///< Variable received into.
    const Expr *UpperBound = nullptr;
    const Expr *TagExpr = nullptr;
    CfgNodeId ExitNode = 0;
  };

  /// Recognizes a receive loop rooted at branch node \p BranchId.
  std::optional<RecvLoop> matchRecvLoop(CfgNodeId BranchId) const {
    const CfgNode &Branch = Graph.node(BranchId);
    if (!Branch.isBranch())
      return std::nullopt;
    const auto *Cond = dyn_cast<BinaryExpr>(Branch.Cond);
    if (!Cond || Cond->op() != BinaryOp::Le)
      return std::nullopt;
    const auto *Var = dyn_cast<VarRefExpr>(Cond->lhs());
    if (!Var || Var->isProcessId() || Var->isProcessCount())
      return std::nullopt;

    RecvLoop Loop;
    Loop.Branch = BranchId;
    Loop.Var = Var->name();
    Loop.UpperBound = Cond->rhs();
    Loop.ExitNode = Graph.branchSuccessor(BranchId, false);

    CfgNodeId RecvId = Graph.branchSuccessor(BranchId, true);
    const CfgNode &Recv = Graph.node(RecvId);
    if (Recv.Kind != CfgNodeKind::Recv || !Recv.Partner)
      return std::nullopt;
    const auto *Src = dyn_cast<VarRefExpr>(Recv.Partner);
    if (!Src || Src->name() != Loop.Var)
      return std::nullopt;
    if (Recv.Succs.size() != 1)
      return std::nullopt;
    CfgNodeId StepId = Graph.soleSuccessor(RecvId);
    const CfgNode &Step = Graph.node(StepId);
    if (Step.Kind != CfgNodeKind::Assign || Step.Var != Loop.Var)
      return std::nullopt;
    auto Lin = LinearExpr::fromExpr(Step.Value);
    if (!Lin || !Lin->hasVar() || Lin->var() != Loop.Var ||
        Lin->constant() != 1)
      return std::nullopt;
    if (Step.Succs.size() != 1 || Graph.soleSuccessor(StepId) != BranchId)
      return std::nullopt;

    Loop.RecvNode = RecvId;
    Loop.RecvVar = Recv.Var;
    Loop.TagExpr = Recv.Tag;
    return Loop;
  }

  /// Consumes a whole in-flight sender block through a receive loop: the
  /// singleton receiver's loop over v = lo..UB receives one message from
  /// each rank in [lo..UB]; a pending with uniform destination equal to
  /// the receiver's rank and sender range exactly [lo..UB] satisfies the
  /// entire loop at once. Returns false when preconditions fail.
  bool consumeRecvLoop(PcfgState &St, size_t Idx, const RecvLoop &Loop) {
    ProcSetEntry &Set = St.Sets[Idx];
    if (!Set.Range.provablySingleton(St.Cg))
      return false;

    std::string ScopedVar = scoped(Set, Loop.Var);
    PartnerExpr Ub = classify(St, Set, Loop.UpperBound);
    if (!Ub.isUniform())
      return false;
    SymBound Lo((LinearExpr(ScopedVar, 0)));
    SymBound Hi(Ub.Value);
    ProcRange Sources(Lo, Hi);
    if (!Sources.provablyNonEmpty(St.Cg))
      return false;

    std::optional<LinearExpr> WantTag = classifyTag(St, Set, Loop.TagExpr);
    if (!WantTag)
      return false;

    for (size_t P = 0; P < St.InFlight.size(); ++P) {
      const PendingSend &Pending = St.InFlight[P];
      if (Pending.IsAggregate || !Pending.DestUniform || !Pending.Tag)
        continue;
      // Destination must be this receiver's rank; tag must agree; the
      // sender block must be exactly the loop's source range; earlier
      // pendings must provably not interfere.
      SymBound Dest(*Pending.DestUniform);
      Dest.enrich(St.Cg);
      if (!Dest.provablyEQ(Set.Range.lb(), St.Cg))
        continue;
      if (!St.Cg.provesEQ(*Pending.Tag, *WantTag))
        continue;
      if (!provablyEqual(Pending.Senders, Sources, St.Cg))
        continue;
      bool Interferes = false;
      for (size_t Q = 0; Q < P && !Interferes; ++Q) {
        const PendingSend &Earlier = St.InFlight[Q];
        if (provablyDisjoint(Earlier.Senders, Pending.Senders, St.Cg))
          continue;
        auto Image = pendingImage(Earlier);
        if (Image && provablyDisjoint(*Image, Set.Range, St.Cg))
          continue;
        Interferes = true;
      }
      if (Interferes)
        continue;

      logMatch({Pending.SendNode, Loop.RecvNode,
                displayRange(Pending.Senders), displayRange(Set.Range)});
      St.InFlight.erase(St.InFlight.begin() + static_cast<long>(P));

      // The receiver executed the whole loop: the received values come
      // from distinct senders, so the variable is unknown (but uniform on
      // this singleton).
      St.Cg.havoc(scoped(Set, Loop.RecvVar));
      Set.NonUniform.erase(Loop.RecvVar);
      St.Cg.assign(ScopedVar, Hi.primary().plus(1));
      Set.Node = Loop.ExitNode;
      if (tracingEnabled())
        std::fprintf(stderr, "aggregated recv loop at n%u consumed %s\n",
                     Loop.RecvNode, Sources.str().c_str());
      return true;
    }
    return false;
  }

  /// Buffered-send emission: freeze the send's expressions and advance.
  bool emitSend(PcfgState &St, size_t Idx) {
    if (St.InFlight.size() >= Opts.MaxInFlight) {
      fail(BudgetKind::InFlight,
           "in-flight send bound exceeded (aggregation of unbounded "
           "non-blocking sends is future work, Section X)",
           St.configKey());
      return false;
    }
    ProcSetEntry &Set = St.Sets[Idx];
    const CfgNode &Node = Graph.node(Set.Node);

    PendingSend P;
    P.SendNode = Node.Id;
    P.Seq = St.NextSeq++;
    P.FreezeNs = "q" + std::to_string(P.Seq);

    // Freeze a uniform LinearExpr into the pending's namespace when it
    // references a mutable (namespaced) variable.
    auto Freeze = [&](const LinearExpr &Value,
                      const std::string &Slot) -> LinearExpr {
      if (Value.isConstant() ||
          Value.var().find('.') == std::string::npos)
        return Value;
      std::string Frozen = P.FreezeNs + "." + Slot;
      St.Cg.assign(Frozen, Value);
      return LinearExpr(Frozen, 0);
    };

    PartnerExpr Dest = classify(St, Set, Node.Partner);
    if (Dest.isIdPlusC()) {
      P.DestIsIdPlusC = true;
      P.DestOffset = Dest.Offset;
    } else if (Dest.isUniform()) {
      P.DestUniform = Freeze(Dest.Value, "dest");
    }
    P.DestExprAst = Node.Partner;
    P.DestGlobalsOnly = globalsOnly(Node.Partner);
    if (!P.DestIsIdPlusC && !P.DestUniform && !P.DestGlobalsOnly) {
      fail("cannot represent in-flight send destination at " +
           Graph.nodeLabel(Node.Id));
      return false;
    }

    if (auto Tag = classifyTag(St, Set, Node.Tag))
      P.Tag = Freeze(*Tag, "tag");

    PartnerExpr Value = classify(St, Set, Node.Value);
    if (Value.isUniform())
      P.Value = Freeze(Value.Value, "val");
    else if (auto Offset = matchIdPlusC(Node.Value);
             Offset && Set.Range.provablySingleton(St.Cg))
      P.Value = Freeze(Set.Range.lb().primary().plus(*Offset), "val");

    // Freeze the sender bounds.
    auto FreezeBound = [&](const SymBound &Bound,
                           const std::string &Slot) -> SymBound {
      const LinearExpr &Primary = Bound.primary();
      if (Primary.isConstant() ||
          Primary.var().find('.') == std::string::npos)
        return Bound;
      std::string Frozen = P.FreezeNs + "." + Slot;
      St.Cg.assign(Frozen, Primary);
      return SymBound(LinearExpr(Frozen, 0));
    };
    P.Senders = ProcRange(FreezeBound(Set.Range.lb(), "lo"),
                          FreezeBound(Set.Range.ub(), "hi"));

    St.InFlight.push_back(std::move(P));
    Set.Node = Graph.soleSuccessor(Set.Node);
    return true;
  }

  /// Builds the CommDesc of a pending send.
  CommDesc descOfPending(const PendingSend &P) const {
    CommDesc D;
    D.Node = P.SendNode;
    D.Range = P.Senders;
    if (P.DestIsIdPlusC) {
      D.Partner.TheKind = PartnerExpr::Kind::IdPlusC;
      D.Partner.Offset = P.DestOffset;
    } else if (P.DestUniform) {
      D.Partner.TheKind = PartnerExpr::Kind::Uniform;
      D.Partner.Value = *P.DestUniform;
    }
    D.PartnerAst = P.DestExprAst;
    D.PartnerGlobalsOnly = P.DestGlobalsOnly;
    D.Tag = P.Tag;
    return D;
  }

  /// Builds the CommDesc of a process set blocked at a send or recv node.
  /// \p Payload overrides the node supplying Partner/Tag — used for a set
  /// blocked at a wait that completes an irecv: the set sits at the wait,
  /// but the communication payload lives on the posting node. Evaluating
  /// the posting's expressions at the wait is sound because resolveWait
  /// proved partner/tag stable between post and wait.
  CommDesc descOfSet(const PcfgState &St, const ProcSetEntry &Set,
                     const CfgNode *Payload = nullptr) const {
    const CfgNode &Node = Payload ? *Payload : Graph.node(Set.Node);
    CommDesc D;
    D.Node = Node.Id;
    D.Range = Set.Range;
    D.Range.enrich(St.Cg);
    D.Partner = classify(St, Set, Node.Partner);
    D.PartnerAst = Node.Partner;
    D.PartnerGlobalsOnly = globalsOnly(Node.Partner);
    D.Tag = classifyTag(St, Set, Node.Tag);
    return D;
  }

  /// The destination image of a pending send, for FIFO ordering checks.
  std::optional<ProcRange> pendingImage(const PendingSend &P) const {
    if (P.IsAggregate)
      return P.AggRange;
    if (P.DestIsIdPlusC)
      return P.Senders.shifted(P.DestOffset);
    if (P.DestUniform)
      return ProcRange(SymBound(*P.DestUniform), SymBound(*P.DestUniform));
    return std::nullopt;
  }

  /// FIFO safety: an earlier pending must provably not deliver to the
  /// candidate receivers from the candidate senders.
  bool fifoSafe(const PcfgState &St, size_t PendingIdx,
                const MatchResult &M) const {
    for (size_t I = 0; I < PendingIdx; ++I) {
      const PendingSend &Earlier = St.InFlight[I];
      if (provablyDisjoint(Earlier.Senders, M.SProcs, St.Cg))
        continue;
      auto Image = pendingImage(Earlier);
      if (Image && provablyDisjoint(*Image, M.RProcs, St.Cg))
        continue;
      return false;
    }
    return true;
  }

  /// Applies a successful match: advances/splits the receiver set,
  /// advances/splits the sender (set or pending), propagates the sent
  /// value, and records the match. Then submits the successor.
  void applyMatch(PcfgState St, std::optional<size_t> SenderSetIdx,
                  std::optional<size_t> PendingIdx, size_t RecvIdx,
                  const MatchResult &MIn, std::optional<LinearExpr> Value,
                  CfgNodeId SendNode) {
    // The match ranges may reference variables of the sets about to be
    // replaced (whose namespaces are dropped). Pin every range into
    // scratch anchors first; the per-piece anchors in replaceSet then
    // chain off these, and the scratch namespace is collected at the end.
    unsigned ScratchId = 0;
    auto Scratch = [&](const ProcRange &R) {
      return anchorRange(St, "mt$" + std::to_string(ScratchId++), R);
    };
    MatchResult M = MIn;
    M.SProcs = Scratch(M.SProcs);
    M.RProcs = Scratch(M.RProcs);
    if (M.SenderRest.Before)
      M.SenderRest.Before = Scratch(*M.SenderRest.Before);
    if (M.SenderRest.After)
      M.SenderRest.After = Scratch(*M.SenderRest.After);
    if (M.ReceiverRest.Before)
      M.ReceiverRest.Before = Scratch(*M.ReceiverRest.Before);
    if (M.ReceiverRest.After)
      M.ReceiverRest.After = Scratch(*M.ReceiverRest.After);

    // The set advances from the node it sits at (a recv, or a wait that
    // completes an irecv); the received variable and the reported recv
    // node come from the payload node (the irecv posting for waits).
    const CfgNode &PosNode = Graph.node(St.Sets[RecvIdx].Node);
    const CfgNode &Payload =
        PosNode.isWaitOp() ? Graph.node(WaitPlans.at(PosNode.Id).Posting)
                           : PosNode;
    CfgNodeId RecvId = PosNode.Id;
    std::string RecvVar = Payload.Var;

    logMatch({SendNode, Payload.Id, displayRange(MIn.SProcs),
              displayRange(MIn.RProcs)});

    // Receiver side: matched piece advances, the rest stays blocked.
    std::vector<SplitPiece> Pieces;
    Pieces.push_back({M.RProcs, Graph.soleSuccessor(RecvId)});
    if (!M.ReceiverFull) {
      if (M.ReceiverRest.Before)
        Pieces.push_back({*M.ReceiverRest.Before, RecvId});
      if (M.ReceiverRest.After)
        Pieces.push_back({*M.ReceiverRest.After, RecvId});
    }
    std::vector<size_t> NewIdx = replaceSet(St, RecvIdx, Pieces);

    // Value propagation into the matched receivers.
    ProcSetEntry &Matched = St.Sets[NewIdx[0]];
    std::string Target = scoped(Matched, RecvVar);
    if (Value) {
      St.Cg.assign(Target, *Value);
      Matched.NonUniform.erase(RecvVar);
    } else {
      St.Cg.havoc(Target);
      if (!Matched.Range.provablySingleton(St.Cg))
        Matched.NonUniform.insert(RecvVar);
      else
        Matched.NonUniform.erase(RecvVar);
    }

    // Sender side.
    if (SenderSetIdx) {
      size_t SIdx = *SenderSetIdx;
      // Indices moved: the receiver set was erased/reinserted at the end;
      // recompute the sender index by name would be cleaner, but the
      // receiver replacement only erased RecvIdx and appended new sets.
      if (SIdx > RecvIdx)
        --SIdx;
      CfgNodeId SendNodeId = St.Sets[SIdx].Node;
      std::vector<SplitPiece> SPieces;
      SPieces.push_back({M.SProcs, Graph.soleSuccessor(SendNodeId)});
      if (!M.SenderFull) {
        if (M.SenderRest.Before)
          SPieces.push_back({*M.SenderRest.Before, SendNodeId});
        if (M.SenderRest.After)
          SPieces.push_back({*M.SenderRest.After, SendNodeId});
      }
      replaceSet(St, SIdx, SPieces);
    } else if (PendingIdx) {
      size_t PIdx = *PendingIdx;
      PendingSend Old = St.InFlight[PIdx];
      St.InFlight.erase(St.InFlight.begin() + static_cast<long>(PIdx));
      if (Old.IsAggregate) {
        // Aggregate consumption: the matched receivers leave the range;
        // leftovers (rides in SenderRest) stay in flight under fresh
        // freeze namespaces.
        auto ReinsertAgg = [&](const ProcRange &Rest) {
          PendingSend Piece = Old;
          Piece.Seq = St.NextSeq++;
          Piece.FreezeNs = "q" + std::to_string(Piece.Seq);
          std::string OldPrefix = Old.FreezeNs + ".";
          for (const std::string &Var : St.Cg.varNames()) {
            if (Var.rfind(OldPrefix, 0) != 0)
              continue;
            St.Cg.addEQ(LinearExpr(Piece.FreezeNs + "." +
                                       Var.substr(OldPrefix.size()),
                                   0),
                        LinearExpr(Var, 0));
          }
          auto Retarget = [&](std::optional<LinearExpr> &L) {
            if (L && L->hasVar() && L->var().rfind(OldPrefix, 0) == 0)
              L = LinearExpr(Piece.FreezeNs + "." +
                                 L->var().substr(OldPrefix.size()),
                             L->constant());
          };
          Retarget(Piece.Tag);
          Retarget(Piece.Value);
          Piece.Senders =
              Old.Senders.withRenamedVars([&](const std::string &V) {
                if (V.rfind(OldPrefix, 0) == 0)
                  return Piece.FreezeNs + "." + V.substr(OldPrefix.size());
                return V;
              });
          Piece.AggRange =
              ProcRange(anchorBound(St, Piece.FreezeNs, "alo", Rest.lb()),
                        anchorBound(St, Piece.FreezeNs, "ahi", Rest.ub()));
          St.InFlight.insert(St.InFlight.begin() + static_cast<long>(PIdx),
                             Piece);
        };
        if (M.SenderRest.After)
          ReinsertAgg(*M.SenderRest.After);
        if (M.SenderRest.Before)
          ReinsertAgg(*M.SenderRest.Before);
      } else if (!M.SenderFull) {
        // Leftover pieces get a fresh freeze namespace: their bounds may
        // reference mutable variables (e.g. a loop counter) and must be
        // pinned, and the frozen payload is copied so the old namespace
        // can be collected independently.
        auto Reinsert = [&](const ProcRange &Rest) {
          PendingSend Piece = Old;
          Piece.Seq = St.NextSeq++;
          Piece.FreezeNs = "q" + std::to_string(Piece.Seq);
          std::string OldPrefix = Old.FreezeNs + ".";
          for (const std::string &Var : St.Cg.varNames()) {
            if (Var.rfind(OldPrefix, 0) != 0)
              continue;
            St.Cg.addEQ(
                LinearExpr(Piece.FreezeNs + "." + Var.substr(OldPrefix.size()),
                           0),
                LinearExpr(Var, 0));
          }
          auto Retarget = [&](std::optional<LinearExpr> &L) {
            if (L && L->hasVar() && L->var().rfind(OldPrefix, 0) == 0)
              L = LinearExpr(Piece.FreezeNs + "." +
                                 L->var().substr(OldPrefix.size()),
                             L->constant());
          };
          Retarget(Piece.DestUniform);
          Retarget(Piece.Tag);
          Retarget(Piece.Value);
          Piece.Senders =
              ProcRange(anchorBound(St, Piece.FreezeNs, "lo", Rest.lb()),
                        anchorBound(St, Piece.FreezeNs, "hi", Rest.ub()));
          St.InFlight.insert(St.InFlight.begin() + static_cast<long>(PIdx),
                             Piece);
        };
        // Keep FIFO position.
        if (M.SenderRest.After)
          Reinsert(*M.SenderRest.After);
        if (M.SenderRest.Before)
          Reinsert(*M.SenderRest.Before);
      }
    }

    // Collect the scratch anchors; relations they mediated are preserved
    // by the closure.
    for (const std::string &Var : St.Cg.varNames())
      if (Var.rfind("mt$", 0) == 0)
        St.Cg.removeVar(Var);

    submit(std::move(St));
  }

  /// Handles a wildcard (`any`-source) receive-like set \p R, whose
  /// communication payload is \p Payload (the recv node itself, or the
  /// irecv posting completed by a wait the set is blocked at). Counts the
  /// statically eligible senders: with two or more, the match depends on
  /// message timing — a MatchNondet bug is reported (when enabled) and the
  /// analysis degrades to Top, since exact matching is impossible. With
  /// exactly one *provable* source the wildcard is deterministic and the
  /// match is applied. Returns true when the step was fully handled
  /// (match applied or degraded); false when the receiver stays blocked.
  bool tryWildcardMatch(const PcfgState &St, size_t R,
                        const CfgNode &Payload) {
    const ProcSetEntry &Set = St.Sets[R];
    if (!Set.Range.provablySingleton(St.Cg)) {
      fail(BudgetKind::None,
           "wildcard receive at " + Graph.nodeLabel(Payload.Id) +
               " executed by a process set not provably singleton",
           St.configKey());
      return true;
    }
    std::optional<LinearExpr> WantTag = classifyTag(St, Set, Payload.Tag);
    if (!WantTag) {
      fail(BudgetKind::None,
           "cannot evaluate the tag of the wildcard receive at " +
               Graph.nodeLabel(Payload.Id),
           St.configKey());
      return true;
    }

    // Tri-state tag comparison: 1 provably equal, -1 provably different,
    // 0 unknown (mirrors the pending-tag test in aggregate matching).
    auto TagEq = [&](const std::optional<LinearExpr> &T) -> int {
      if (!T)
        return 0;
      if (St.Cg.provesEQ(*T, *WantTag))
        return 1;
      if (St.Cg.provesLE(T->plus(1), *WantTag) ||
          St.Cg.provesLE(WantTag->plus(1), *T))
        return -1;
      return 0;
    };

    struct Candidate {
      /// Provably the single deliverable message: singleton sender whose
      /// destination image provably equals the receiver, tag equal.
      bool Exact = false;
      /// Every rank of the sender range targets one fixed destination —
      /// a multi-rank candidate then contributes several eligible senders
      /// all by itself.
      bool UniformDest = false;
      ProcRange Senders;
      std::string Desc;
      std::optional<size_t> Pending;
      std::optional<size_t> SenderSet;
      std::optional<LinearExpr> Value;
      CfgNodeId SendNode = 0;
    };
    std::vector<Candidate> Cands;

    // In-flight messages, FIFO order.
    for (size_t P = 0; P < St.InFlight.size(); ++P) {
      const PendingSend &Pend = St.InFlight[P];
      auto Image = pendingImage(Pend);
      if (Image && provablyDisjoint(*Image, Set.Range, St.Cg))
        continue;
      int TE = TagEq(Pend.Tag);
      if (TE < 0)
        continue;
      Candidate C;
      C.Pending = P;
      C.SendNode = Pend.SendNode;
      C.Value = Pend.Value;
      C.Senders = Pend.Senders;
      C.UniformDest = !Pend.IsAggregate && Pend.DestUniform.has_value();
      C.Desc = displayRange(Pend.Senders);
      C.Exact = TE > 0 && !Pend.IsAggregate && Image &&
                Pend.Senders.provablySingleton(St.Cg) &&
                provablyEqual(*Image, Set.Range, St.Cg);
      Cands.push_back(std::move(C));
    }

    // Process sets blocked at send nodes (blocking semantics).
    if (Opts.Sends == SendSemantics::Blocking) {
      for (size_t S = 0; S < St.Sets.size(); ++S) {
        if (S == R || Graph.node(St.Sets[S].Node).Kind != CfgNodeKind::Send)
          continue;
        CommDesc SendD = descOfSet(St, St.Sets[S]);
        std::optional<ProcRange> Image;
        if (SendD.Partner.isUniform())
          Image = ProcRange(SymBound(SendD.Partner.Value),
                            SymBound(SendD.Partner.Value));
        else if (SendD.Partner.isIdPlusC())
          Image = SendD.Range.shifted(SendD.Partner.Offset);
        if (Image && provablyDisjoint(*Image, Set.Range, St.Cg))
          continue;
        int TE = TagEq(SendD.Tag);
        if (TE < 0)
          continue;
        Candidate C;
        C.SenderSet = S;
        C.SendNode = SendD.Node;
        C.Senders = St.Sets[S].Range;
        C.UniformDest = SendD.Partner.isUniform();
        C.Desc = displayRange(St.Sets[S].Range);
        C.Exact = TE > 0 && Image &&
                  St.Sets[S].Range.provablySingleton(St.Cg) &&
                  provablyEqual(*Image, Set.Range, St.Cg);
        const CfgNode &SendNode = Graph.node(St.Sets[S].Node);
        PartnerExpr V = classify(St, St.Sets[S], SendNode.Value);
        if (V.isUniform())
          C.Value = V.Value;
        Cands.push_back(std::move(C));
      }
    }

    if (Cands.empty())
      return false; // Nothing eligible yet; stays blocked.

    if (Cands.size() == 1 && Cands[0].Exact) {
      const Candidate &C = Cands[0];
      MatchResult M;
      M.SProcs = C.Pending ? St.InFlight[*C.Pending].Senders
                           : St.Sets[*C.SenderSet].Range;
      M.RProcs = Set.Range;
      M.SenderFull = true;
      M.ReceiverFull = true;
      if (C.Pending && !fifoSafe(St, *C.Pending, M))
        return false;
      applyMatch(St, C.SenderSet, C.Pending, R, M, C.Value, C.SendNode);
      return true;
    }

    // Several candidates, or one that is not provably the unique source.
    // Distinct candidates each contribute at least one eligible sender; a
    // single multi-rank candidate whose every rank targets one fixed
    // destination provably contributes two or more on its own.
    bool AtLeastTwo = Cands.size() >= 2;
    if (!AtLeastTwo && Cands[0].UniformDest)
      AtLeastTwo = St.Cg.provesLE(Cands[0].Senders.lb().primary().plus(1),
                                  Cands[0].Senders.ub().primary());
    if (Opts.CheckMatchNondet && AtLeastTwo) {
      std::string Detail = "wildcard receive at " +
                           Graph.nodeLabel(Payload.Id) +
                           " can match messages from senders ";
      for (size_t I = 0; I < Cands.size(); ++I)
        Detail += (I ? ", " : "") + Cands[I].Desc;
      Detail += "; which message arrives first depends on timing";
      StepEffects::Item It;
      It.K = StepEffects::Item::Kind::Leak;
      It.Leak = {AnalysisBug::Kind::MatchNondet, Payload.Id, SourceLoc(),
                 std::move(Detail)};
      Fx.Items.push_back(std::move(It));
    }
    fail(BudgetKind::None,
         "wildcard receive at " + Graph.nodeLabel(Payload.Id) +
             " cannot be matched deterministically (no provably unique "
             "sender)",
         St.configKey());
    return true;
  }

  /// Figure 4's matchSendsRecvs: scans sender/receiver candidates and
  /// applies the first provable match. Returns true when one was applied.
  /// Receive candidates are recv nodes and wait/waitall nodes statically
  /// resolved to complete exactly one irecv (wait-as-recv).
  bool tryMatching(const PcfgState &St) {
    // Receiver candidates.
    for (size_t R = 0; R < St.Sets.size(); ++R) {
      const CfgNode &SetNode = Graph.node(St.Sets[R].Node);
      const CfgNode *Payload = &SetNode;
      if (SetNode.isWaitOp()) {
        auto It = WaitPlans.find(SetNode.Id);
        if (It == WaitPlans.end() ||
            It->second.Result != WaitResolution::Kind::AsRecv)
          continue;
        Payload = &Graph.node(It->second.Posting);
      } else if (SetNode.Kind != CfgNodeKind::Recv) {
        continue;
      }
      if (!Payload->Partner) {
        if (tryWildcardMatch(St, R, *Payload))
          return true;
        continue;
      }
      CommDesc RecvD = descOfSet(St, St.Sets[R], Payload);

      // Buffered: in-flight sends in FIFO order.
      for (size_t P = 0; P < St.InFlight.size(); ++P) {
        bool TagConflict = false;
        std::optional<MatchResult> M;
        if (St.InFlight[P].IsAggregate) {
          M = aggregateMatch(St, St.InFlight[P], RecvD, TagConflict);
        } else {
          CommDesc SendD = descOfPending(St.InFlight[P]);
          M = tryMatch(Opts, SendD, RecvD, St.Cg, St.Facts, TagConflict);
        }
        if (TagConflict)
          logTagConflict(St.InFlight[P].SendNode, RecvD.Node);
        if (!M || !fifoSafe(St, P, *M))
          continue;
        applyMatch(St, std::nullopt, P, R, *M, St.InFlight[P].Value,
                   St.InFlight[P].SendNode);
        return true;
      }

      // Blocking: process sets waiting at send nodes.
      if (Opts.Sends == SendSemantics::Blocking) {
        for (size_t S = 0; S < St.Sets.size(); ++S) {
          if (S == R || Graph.node(St.Sets[S].Node).Kind != CfgNodeKind::Send)
            continue;
          CommDesc SendD = descOfSet(St, St.Sets[S]);
          bool TagConflict = false;
          auto M =
              tryMatch(Opts, SendD, RecvD, St.Cg, St.Facts, TagConflict);
          if (TagConflict)
            logTagConflict(SendD.Node, RecvD.Node);
          if (!M)
            continue;
          // Value at match time: classified on the sender set now.
          const CfgNode &SendNode = Graph.node(St.Sets[S].Node);
          std::optional<LinearExpr> Value;
          PartnerExpr V = classify(St, St.Sets[S], SendNode.Value);
          if (V.isUniform())
            Value = V.Value;
          else if (auto Off = matchIdPlusC(SendNode.Value);
                   Off && St.Sets[S].Range.provablySingleton(St.Cg))
            Value = St.Sets[S].Range.lb().primary().plus(*Off);
          applyMatch(St, S, std::nullopt, R, *M, Value, SendNode.Id);
          return true;
        }
      }
    }
    return false;
  }

  /// Records, for a terminal state, which program variables provably hold
  /// one constant on every process — the raw material of the paper's
  /// constant-sharing client.
  void recordFinalSnapshot(const PcfgState &St) {
    std::map<std::string, std::optional<std::int64_t>> Snapshot;
    for (const std::string &Var : AssignedVars) {
      std::optional<std::int64_t> Agreed;
      bool Diverged = false;
      for (const ProcSetEntry &Set : St.Sets) {
        auto C = St.Cg.constValue(scoped(Set, Var));
        if (!C || Set.NonUniform.count(Var) ||
            (Agreed && *Agreed != *C)) {
          Diverged = true;
          break;
        }
        Agreed = C;
      }
      Snapshot[Var] =
          (!Diverged && Agreed) ? Agreed : std::optional<std::int64_t>();
    }
    StepEffects::Item It;
    It.K = StepEffects::Item::Kind::Snapshot;
    It.Snapshot = std::move(Snapshot);
    Fx.Items.push_back(std::move(It));
  }

  //===--------------------------------------------------------------------===
  // The main step function
  //===--------------------------------------------------------------------===

  /// Advances every set of \p St through straight-line nodes until all
  /// sets sit at a blocking point (comm op, exit) or a branch. Macro-
  /// stepping to quiescence is justified by interleaving-obliviousness
  /// and keeps states at shared configurations canonical, so joins do not
  /// mix partially advanced interleavings. Returns true if anything moved.
  bool advanceToQuiescence(PcfgState &St) {
    bool Moved = false;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t I = 0; I < St.Sets.size(); ++I) {
        const CfgNode &Node = Graph.node(St.Sets[I].Node);
        switch (Node.Kind) {
        case CfgNodeKind::Entry:
        case CfgNodeKind::Skip:
        case CfgNodeKind::Assert: // A proof obligation, not a fact.
          St.Sets[I].Node = Graph.soleSuccessor(Node.Id);
          break;
        case CfgNodeKind::Assign:
          transferAssign(St, I, Node.Var, Node.Value);
          St.Sets[I].Node = Graph.soleSuccessor(Node.Id);
          break;
        case CfgNodeKind::Print:
          transferPrint(St, I, Node.Id, Node.Value);
          St.Sets[I].Node = Graph.soleSuccessor(Node.Id);
          break;
        case CfgNodeKind::Assume:
          transferAssume(St, I, Node.Cond);
          St.Sets[I].Node = Graph.soleSuccessor(Node.Id);
          break;
        case CfgNodeKind::Send:
          if (Opts.Sends == SendSemantics::Buffered) {
            if (!emitSend(St, I))
              return Moved; // Resource failure already reported.
            break;
          }
          continue; // Blocking send: blocked.
        case CfgNodeKind::Isend:
          // Isend is non-blocking by definition: it deposits an in-flight
          // message and advances even under blocking-send semantics. The
          // node payload is identical to Send, so emitSend applies as-is.
          if (!emitSend(St, I))
            return Moved;
          break;
        case CfgNodeKind::Irecv:
          // Posting is a no-op for the abstraction: the receive happens at
          // the matching wait (WaitPlans resolved it statically).
          St.Sets[I].Node = Graph.soleSuccessor(Node.Id);
          break;
        case CfgNodeKind::Wait:
        case CfgNodeKind::Waitall: {
          const WaitResolution &Plan = WaitPlans.at(Node.Id);
          if (Plan.Result == WaitResolution::Kind::NoOp) {
            // All completed requests were isends: already in flight.
            St.Sets[I].Node = Graph.soleSuccessor(Node.Id);
            break;
          }
          if (Plan.Result == WaitResolution::Kind::Imprecise) {
            fail(BudgetKind::None,
                 "cannot model " + Graph.nodeLabel(Node.Id) + ": " +
                     Plan.Why,
                 St.configKey());
            return Moved;
          }
          continue; // AsRecv: blocks until matched like a receive.
        }
        case CfgNodeKind::Branch: // Handled by the caller (forks).
        case CfgNodeKind::Recv:
        case CfgNodeKind::Exit:
          continue;
        }
        Progress = true;
        Moved = true;
      }
    }
    return Moved;
  }

public:
  /// Processes one state: advances all unblocked sets to quiescence,
  /// forks at branches, then matches, or reports stuckness. \p TraceId is
  /// the 1-based sequential position of this step (trace output only).
  void step(const PcfgState &Cur, unsigned TraceId) {
    if (tracingEnabled())
      std::fprintf(stderr, "--- step %u ---\n%s", TraceId,
                   Cur.str(Graph).c_str());
    Fx.SetsSeen = static_cast<unsigned>(Cur.Sets.size());

    // Matching runs before further advancement: with buffered sends a
    // loop would otherwise emit past the in-flight bound before any
    // receiver gets to consume, and an applicable match is always sound
    // to take (matchSendsRecvs proves it exactly).
    if (tryMatching(Cur))
      return;

    PcfgState St = Cur;
    bool Moved = advanceToQuiescence(St);
    if (LocalTop)
      return;

    // Fork the first set waiting at a branch (successor states macro-step
    // further when re-stepped). With the Section X extension, a singleton
    // sender at a recognized send-loop header is summarized wholesale
    // instead of unrolled.
    for (size_t I = 0; I < St.Sets.size(); ++I) {
      if (!Graph.node(St.Sets[I].Node).isBranch())
        continue;
      if (Opts.AggregateSendLoops && Opts.Sends == SendSemantics::Buffered) {
        if (auto Loop = matchSendLoop(St.Sets[I].Node)) {
          PcfgState Agg = St;
          if (emitAggregateSendLoop(Agg, I, *Loop)) {
            submit(std::move(Agg));
            return;
          }
        }
        if (auto Loop = matchRecvLoop(St.Sets[I].Node)) {
          PcfgState Agg = St;
          if (consumeRecvLoop(Agg, I, *Loop)) {
            submit(std::move(Agg));
            return;
          }
        }
      }
      transferBranch(std::move(St), I);
      return;
    }

    if (Moved) {
      // Reached a new quiescent configuration; store it, then match on
      // the (possibly joined) stored representative.
      submit(std::move(St));
      return;
    }

    // All at exit was handled at submit time; reaching here with blocked
    // sets means this state cannot make progress *now*. The verdict is
    // deferred: a later join at this configuration (more loop context,
    // widening) may unblock it, in which case the variant is re-stepped
    // and the stuck mark cleared. Only states still stuck when the
    // worklist drains count as Top (Figure 4's "gives up" rule).
    Fx.StuckBugs.clear();
    for (const ProcSetEntry &Set : Cur.Sets) {
      const CfgNode &Node = Graph.node(Set.Node);
      if (Node.isCommOp() || Node.isWaitOp())
        Fx.StuckBugs.push_back(
            {AnalysisBug::Kind::PossibleDeadlock, Node.Id, SourceLoc(),
             Set.Range.str() + " blocked forever at " +
                 Graph.nodeLabel(Node.Id)});
    }
    if (!Fx.StuckBugs.empty() && tracingEnabled())
      std::fprintf(stderr, "stuck (deferred verdict)\n");
  }

  //===--------------------------------------------------------------------===

private:
  const Cfg &Graph;
  const AnalysisOptions &Opts;
  const LoopInfo &Loops;
  const std::set<std::string> &AssignedVars;
  /// Static wait resolution, one entry per wait/waitall node (computed
  /// once by the Engine; see WaitResolution).
  const std::map<CfgNodeId, WaitResolution> &WaitPlans;
  /// The ordered effect log this step is accumulating.
  StepEffects Fx;
  /// Local mirror of the engine's topped-out flag for intra-step control
  /// flow (the committer's first-failure-wins rule is authoritative).
  bool LocalTop = false;
  /// Per-step fresh-name counter. Observationally identical to the old
  /// engine-global counter: canonicalize() renames every transient
  /// namespace before a state is stored, so the numbers never escape.
  unsigned FreshSets = 0;
};

/// Canonical structural signature of one CFG node, for the replay
/// validator's per-node diff. Two nodes with equal signatures (at the
/// same id, with equal signatures across their relevant neighborhood —
/// see the Safe[] closure) are indistinguishable to every engine read:
/// the signature covers the kind, names, every payload expression
/// (rendered, with distinct markers for a wildcard partner vs an absent
/// expression), the successor edge sequence, the in-loop flag that
/// drives join-vs-widen decisions, and — for wait nodes — the full
/// static wait resolution including the posting node's payload (the
/// matcher evaluates partner/tag/var on the *posting* when a wait acts
/// as a receive). Source locations are deliberately absent: whitespace
/// and comment edits must not change any signature.
std::string nodeSignature(const Cfg &G, const LoopInfo &Loops,
                          const std::map<CfgNodeId, WaitResolution> &Plans,
                          CfgNodeId Id) {
  const CfgNode &N = G.node(Id);
  std::string S = cfgNodeKindName(N.Kind);
  auto Text = [&](const Expr *E, const char *Absent) {
    S += '|';
    S += E ? exprToString(E) : Absent;
  };
  S += '|';
  S += N.Var;
  S += '|';
  S += N.Req;
  Text(N.Value, "<none>");
  Text(N.Cond, "<none>");
  Text(N.Partner, "<any>"); // A null partner on a comm op is a wildcard.
  Text(N.Tag, "<none>");
  S += "|succs:";
  for (const CfgEdge &E : N.Succs) {
    S += std::to_string(static_cast<int>(E.Kind));
    S += '>';
    S += std::to_string(E.Target);
    S += ',';
  }
  S += Loops.isInLoop(Id) ? "|L1" : "|L0";
  if (N.isWaitOp()) {
    auto It = Plans.find(Id);
    if (It == Plans.end()) {
      S += "|plan:none";
    } else {
      const WaitResolution &Plan = It->second;
      S += "|plan:" + std::to_string(static_cast<int>(Plan.Result));
      S += ";post=" + std::to_string(Plan.Posting);
      S += ";done=";
      for (CfgNodeId C : Plan.Completed)
        S += std::to_string(C) + ",";
      S += ";why=" + Plan.Why;
      if (Plan.Result == WaitResolution::Kind::AsRecv) {
        const CfgNode &Post = G.node(Plan.Posting);
        S += ";payload=" + Post.Var;
        Text(Post.Partner, "<any>");
        Text(Post.Tag, "<none>");
        Text(Post.Value, "<none>");
      }
    }
  }
  return S;
}

/// The analysis coordinator: owns the configuration table, the worklist
/// and the AnalysisResult, and is the only mutator of all three. Steps
/// are computed by Steppers — inline (sequential drain) or speculatively
/// on a thread pool (parallel drain) — and their effect logs are
/// committed in strict worklist order, which makes the result
/// bit-identical at every thread count.
class Engine {
public:
  Engine(const Cfg &Graph, const AnalysisOptions &Opts, StatsRegistry *Stats)
      : Graph(Graph), Opts(Opts), Stats(Stats), Loops(Graph) {
    for (const CfgNode &N : Graph.nodes())
      if (N.Kind == CfgNodeKind::Assign || N.Kind == CfgNodeKind::Recv ||
          N.Kind == CfgNodeKind::Irecv)
        AssignedVars.insert(N.Var);
    // Resolve every wait/waitall statically once: which posting it
    // completes and whether it behaves as a no-op, a receive, or is
    // beyond the abstraction (degrades to Top when reached).
    RequestInfo Requests = RequestInfo::compute(Graph);
    for (const CfgNode &N : Graph.nodes())
      if (N.isWaitOp())
        WaitPlans.emplace(N.Id, Requests.resolveWait(N.Id));
    setupReplay();
  }

  AnalysisResult run();

private:
  struct Stored {
    PcfgState State;
    unsigned Visits = 0;
    /// Bugs describing why the last step of this variant was stuck;
    /// empty when the variant progressed. Cleared on every update.
    std::vector<AnalysisBug> Stuck;
    /// Worklist dedup: set while a (config, variant) entry is pending, so
    /// repeated submissions re-step it once instead of once per update.
    bool InWorklist = false;
    /// Bumped on every committed update of State. A speculative step
    /// whose snapshot carries an older stamp is stale and is dropped.
    std::uint64_t Stamp = 0;
  };

  /// One pCFG configuration: its key and its unjoinable state variants.
  /// Configs grow in commit order; ids are stable (never erased).
  struct ConfigEntry {
    std::string Key;
    std::vector<Stored> Variants;
  };

  /// Worklist entries name configurations by dense id, not string key:
  /// the hot pop path does two vector indexings instead of a map lookup
  /// over long key strings.
  struct WorkItem {
    std::uint32_t Config = 0;
    std::uint32_t Variant = 0;
  };

  /// Degrades the result to Top; first failure wins.
  void fail(BudgetKind Kind, const std::string &Reason,
            std::string Config = "") {
    if (tracingEnabled())
      std::fprintf(stderr, "TOP: %s\n", Reason.c_str());
    if (!ToppedOut) {
      ToppedOut = true;
      Result.TopReason = Reason;
      Result.Outcome.Verdict = AnalysisVerdict::DegradedToTop;
      Result.Outcome.Budget = Kind;
      Result.Outcome.Reason = Reason;
      Result.Outcome.Configuration = std::move(Config);
    }
  }
  void fail(const std::string &Reason) { fail(BudgetKind::None, Reason); }

  void noteTagConflict(CfgNodeId SendNode, CfgNodeId RecvNode) {
    std::string Detail = "send at " + Graph.nodeLabel(SendNode) +
                         " and recv at " + Graph.nodeLabel(RecvNode) +
                         " use provably different tags";
    for (const AnalysisBug &B : Result.Bugs)
      if (B.TheKind == AnalysisBug::Kind::TagMismatch && B.Detail == Detail)
        return;
    Result.Bugs.push_back(
        {AnalysisBug::Kind::TagMismatch, SendNode, SourceLoc(), Detail});
  }

  /// Enqueues a variant unless it is already pending.
  void push(std::uint32_t Cid, std::size_t V) {
    Stored &E = Configs[Cid].Variants[V];
    if (E.InWorklist)
      return;
    E.InWorklist = true;
    Worklist.push_back({Cid, static_cast<std::uint32_t>(V)});
  }

  void commitSubmission(PcfgState St, const std::string &Key,
                        bool AtLoopHeader);
  void commitEffects(StepEffects &Fx);
  StepEffects computeStep(const PcfgState &Cur, unsigned TraceId) const;
  void drainSequential();
  void drainParallel();
  void explore();
  void finish();

  //===--------------------------------------------------------------------===
  // Trace capture and replay (the incremental pipeline's engine half)
  //===--------------------------------------------------------------------===

  void setupReplay();
  bool stoppingNode(const CfgNode &N) const;
  bool stateAdoptable(const PcfgState &St, bool NeedSafe) const;
  bool adoptable(const TraceStep &Rec, const PcfgState &Popped) const;
  void remapTraceStates(TraceStep &T) const;
  void adoptStep(const TraceStep &Rec, WorkItem W);
  void applyRecordedSubmission(PcfgState St, const std::string &Key,
                               CommitOutcome &Out);

  const Cfg &Graph;
  AnalysisOptions Opts;
  StatsRegistry *Stats;
  LoopInfo Loops;
  std::set<std::string> AssignedVars;
  /// Static wait resolution, one entry per wait/waitall node.
  std::map<CfgNodeId, WaitResolution> WaitPlans;
  /// Interned configuration keys -> dense ids into Configs.
  std::unordered_map<std::string, std::uint32_t> ConfigIds;
  std::vector<ConfigEntry> Configs;
  /// Append-only worklist; Head is the next position to commit. The
  /// prefix behind Head doubles as the exploration history numbering the
  /// steps (TraceId = position + 1).
  std::vector<WorkItem> Worklist;
  std::size_t Head = 0;
  AnalysisResult Result;
  bool ToppedOut = false;
  /// Configuration key of the state currently being committed, for budget
  /// failure attribution and crash reports.
  std::string CurrentConfig;

  /// Trace being captured this run (null when not capturing). Deposited
  /// into Opts.Capture only when the run converges.
  std::shared_ptr<AnalysisTrace> Captured;
  /// The step currently being recorded; commitSubmission appends its
  /// outcome decisions here. Null outside a recorded commit (in
  /// particular during the initial seeding commit, which is not traced).
  TraceStep *Recording = nullptr;
  /// Validated seed trace to replay from (null = cold run).
  const AnalysisTrace *SeedTrace = nullptr;
  /// True while recorded steps are still being adopted. Cleared forever
  /// at the first non-adoptable step: from there the configuration table
  /// may evolve differently from the recording run.
  bool ReplayOn = false;
  /// Node ids valid in both graphs: min(prior size, current size).
  CfgNodeId Ncommon = 0;
  /// Clean[n]: node n has an identical structural signature in the prior
  /// and current graphs (every direct read of n behaves identically).
  std::vector<char> Clean;
  /// Safe[n]: Clean[n] and the whole advance-to-quiescence walk starting
  /// at n stays on clean nodes up to and including its stopping node
  /// (greatest fixpoint; see setupReplay).
  std::vector<char> Safe;
  /// Step counters for ReplayStats.
  unsigned StepsTotal = 0, StepsAdopted = 0, StepsLive = 0;
};

/// Validates the seed (if any) and prepares capture. Runs once, from the
/// constructor, after AssignedVars/WaitPlans are computed. Replay and
/// capture force the sequential drain: results are bit-identical at any
/// thread count, so pinning Threads=1 is semantics-neutral, and it keeps
/// the trace's step<->position correspondence trivial.
void Engine::setupReplay() {
  // Limit-bounded runs neither replay nor capture: a deadline makes the
  // exploration prefix nondeterministic, which is exactly what a trace
  // must not be. (An unlimited budget is pure accounting and is fine.)
  if (Opts.Budget && Opts.Budget->limited())
    Opts.Capture.reset();
  if (Opts.Capture)
    Captured = std::make_shared<AnalysisTrace>();
  if (Opts.Seed || Captured)
    Opts.Threads = 1;
  if (!Opts.Seed)
    return;

  auto Reject = [&](std::string Why) {
    if (Opts.Replay)
      Opts.Replay->SeedRejectReason = std::move(Why);
  };
  const EngineSeed &Seed = *Opts.Seed;
  if (!Seed.Trace || !Seed.PriorGraph)
    return Reject("seed missing trace or prior graph");
  if (Opts.Budget && Opts.Budget->limited())
    return Reject("budget-limited run; replaying is disabled");
  if (!Opts.SharedSymbols || Opts.SharedSymbols != Seed.Symbols)
    return Reject("symbol table differs from the seed's");
  if (Seed.OptionsFingerprint != Opts.fingerprint())
    return Reject("analysis options differ from the recording run's");

  // The transfer functions scope variables through the *global* assigned-
  // variable set (PcfgState::scopedVar); recorded states are only
  // meaningful when that set is unchanged.
  const Cfg &Old = *Seed.PriorGraph;
  std::set<std::string> OldAssigned;
  for (const CfgNode &N : Old.nodes())
    if (N.Kind == CfgNodeKind::Assign || N.Kind == CfgNodeKind::Recv ||
        N.Kind == CfgNodeKind::Irecv)
      OldAssigned.insert(N.Var);
  if (OldAssigned != AssignedVars)
    return Reject("assigned-variable set changed");

  // Per-node structural diff over the common id range.
  LoopInfo OldLoops(Old);
  RequestInfo OldRequests = RequestInfo::compute(Old);
  std::map<CfgNodeId, WaitResolution> OldPlans;
  for (const CfgNode &N : Old.nodes())
    if (N.isWaitOp())
      OldPlans.emplace(N.Id, OldRequests.resolveWait(N.Id));
  Ncommon = static_cast<CfgNodeId>(std::min(Old.size(), Graph.size()));
  Clean.assign(Ncommon, 0);
  for (CfgNodeId N = 0; N < Ncommon; ++N)
    Clean[N] = nodeSignature(Old, OldLoops, OldPlans, N) ==
               nodeSignature(Graph, Loops, WaitPlans, N);

  // Safe[] greatest fixpoint: a stepped set at node n macro-advances
  // through every non-stopping node to its stopping point; the whole walk
  // must be clean for the recorded step to be byte-equal to a cold one.
  // Branches additionally expose their loop shape to the Section X
  // aggregate recognizers, which peek at the true-successor body.
  Safe = Clean;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (CfgNodeId N = 0; N < Ncommon; ++N) {
      if (!Safe[N])
        continue;
      const CfgNode &Node = Graph.node(N);
      bool Ok = true;
      if (Node.isBranch()) {
        if (Opts.AggregateSendLoops &&
            Opts.Sends == SendSemantics::Buffered) {
          CfgNodeId T = Graph.branchSuccessor(N, true);
          Ok = T < Ncommon && Clean[T];
          if (Ok && Graph.node(T).Succs.size() == 1) {
            CfgNodeId Body = Graph.soleSuccessor(T);
            Ok = Body < Ncommon && Clean[Body];
          }
        }
      } else if (!stoppingNode(Node)) {
        Ok = Node.Succs.size() == 1;
        if (Ok) {
          CfgNodeId Next = Node.Succs.front().Target;
          Ok = Next < Ncommon && Safe[Next];
        }
      }
      if (!Ok) {
        Safe[N] = 0;
        Changed = true;
      }
    }
  }

  SeedTrace = Seed.Trace.get();
  ReplayOn = true;
  if (Opts.Replay)
    Opts.Replay->SeedUsed = true;
}

/// Nodes where advanceToQuiescence leaves a set blocked (or forks): the
/// end points of the macro-step walk. Everything else advances through
/// its sole successor.
bool Engine::stoppingNode(const CfgNode &N) const {
  switch (N.Kind) {
  case CfgNodeKind::Branch:
  case CfgNodeKind::Exit:
  case CfgNodeKind::Recv:
    return true;
  case CfgNodeKind::Send:
    return Opts.Sends == SendSemantics::Blocking;
  case CfgNodeKind::Wait:
  case CfgNodeKind::Waitall: {
    auto It = WaitPlans.find(N.Id);
    // NoOp waits step straight over; AsRecv blocks, Imprecise fails in
    // place — both of the latter end the walk.
    return !(It != WaitPlans.end() &&
             It->second.Result == WaitResolution::Kind::NoOp);
  }
  default:
    return false;
  }
}

/// Every CFG reference of \p St must survive into the current graph.
/// Popped states need the full quiescence walk clean (Safe); states
/// inside recorded effects only need the nodes the committer itself
/// reads (terminal/exit test, loop flag, node labels) — Clean suffices,
/// and their own step, if ever popped, is re-validated then.
bool Engine::stateAdoptable(const PcfgState &St, bool NeedSafe) const {
  for (const ProcSetEntry &Set : St.Sets) {
    if (Set.Node >= Ncommon)
      return false;
    if (!(NeedSafe ? Safe[Set.Node] : Clean[Set.Node]))
      return false;
  }
  for (const PendingSend &P : St.InFlight)
    if (P.SendNode >= Ncommon || !Clean[P.SendNode])
      return false;
  return true;
}

/// Would a cold step over \p Popped produce exactly the recorded effects?
/// True only when every graph read the step performs — the quiescence
/// walks from each set, each in-flight send's payload node, and the
/// submit-side reads on each successor state — lands on provably
/// unchanged nodes. Conservative by design: any doubt says no.
bool Engine::adoptable(const TraceStep &Rec, const PcfgState &Popped) const {
  if (Rec.Fx.Error)
    return false;
  if (!stateAdoptable(Popped, /*NeedSafe=*/true))
    return false;
  std::size_t Submits = 0;
  for (const StepEffects::Item &It : Rec.Fx.Items) {
    if (It.K == StepEffects::Item::Kind::Fail)
      return false; // Converged traces carry none; refuse defensively.
    if (It.K == StepEffects::Item::Kind::Submit) {
      ++Submits;
      if (!stateAdoptable(It.Sub, /*NeedSafe=*/false))
        return false;
    }
  }
  if (Submits != Rec.Outcomes.size())
    return false; // Malformed trace (e.g. truncated by a failure).
  for (const CommitOutcome &O : Rec.Outcomes)
    if (O.K == CommitOutcome::Kind::Updated &&
        !stateAdoptable(O.NewState, /*NeedSafe=*/false))
      return false;
  return true;
}

/// Points every recorded in-flight send's destination AST at the current
/// graph. The adoption check proved the node clean, so the new Partner is
/// structurally identical to the recorded one — this only swaps which
/// (equivalent) AST the state references, making the adopted state
/// bit-identical to what a cold run would have built and freeing the
/// trace from the prior run's AST lifetime.
void Engine::remapTraceStates(TraceStep &T) const {
  auto Remap = [&](PcfgState &St) {
    for (PendingSend &P : St.InFlight)
      P.DestExprAst = Graph.node(P.SendNode).Partner;
  };
  for (StepEffects::Item &It : T.Fx.Items)
    if (It.K == StepEffects::Item::Kind::Submit)
      Remap(It.Sub);
  for (CommitOutcome &O : T.Outcomes)
    if (O.K == CommitOutcome::Kind::Updated)
      Remap(O.NewState);
}

/// Replays one recorded step: applies its effect log exactly like
/// commitEffects, but resolves each Submit with the recorded committer
/// decision instead of re-running joins. When this run is itself being
/// captured, the remapped copy joins the new trace so the new trace
/// references only the current AST.
void Engine::adoptStep(const TraceStep &Rec, WorkItem W) {
  TraceStep Local = Rec; // Copy-on-write states make this cheap.
  remapTraceStates(Local);
  if (Captured)
    Captured->Steps.push_back(Local);
  Result.MaxSetsSeen = std::max(Result.MaxSetsSeen, Local.Fx.SetsSeen);
  std::size_t NextOutcome = 0;
  for (StepEffects::Item &It : Local.Fx.Items) {
    switch (It.K) {
    case StepEffects::Item::Kind::Match:
      Result.Matches.insert(std::move(It.Match));
      break;
    case StepEffects::Item::Kind::Print:
      Result.PrintFacts.insert(std::move(It.Print));
      break;
    case StepEffects::Item::Kind::TagConflict:
      noteTagConflict(It.ConflictSend, It.ConflictRecv);
      break;
    case StepEffects::Item::Kind::Leak:
      Result.Bugs.push_back(std::move(It.Leak));
      break;
    case StepEffects::Item::Kind::Snapshot:
      Result.FinalSnapshots.push_back(std::move(It.Snapshot));
      break;
    case StepEffects::Item::Kind::Fail:
      // Unreachable: adoptable() refuses steps with failures.
      fail(It.FailKind, It.FailReason, std::move(It.FailConfig));
      break;
    case StepEffects::Item::Kind::Submit:
      applyRecordedSubmission(std::move(It.Sub), It.SubKey,
                              Local.Outcomes[NextOutcome++]);
      break;
    }
  }
  Configs[W.Config].Variants[W.Variant].Stuck = std::move(Local.Fx.StuckBugs);
}

/// The replay twin of commitSubmission: identical table bookkeeping,
/// with the join/widen/equality work replaced by the recorded decision.
void Engine::applyRecordedSubmission(PcfgState St, const std::string &Key,
                                     CommitOutcome &Out) {
  auto [IdIt, New] =
      ConfigIds.emplace(Key, static_cast<std::uint32_t>(Configs.size()));
  if (New) {
    Configs.push_back(ConfigEntry{Key, {}});
    Result.ConfigsVisited++;
  }
  std::uint32_t Cid = IdIt->second;
  std::vector<Stored> &Variants = Configs[Cid].Variants;
  switch (Out.K) {
  case CommitOutcome::Kind::NewVariant:
    Variants.push_back(Stored{std::move(St), 1, {}});
    push(Cid, Variants.size() - 1);
    return;
  case CommitOutcome::Kind::Fixpoint:
    Variants[Out.Variant].Visits++;
    return;
  case CommitOutcome::Kind::Updated: {
    Stored &Entry = Variants[Out.Variant];
    Entry.Visits++;
    Entry.State = std::move(Out.NewState); // Recorded post-close state.
    Entry.Stamp++;
    Entry.Stuck.clear();
    push(Cid, Out.Variant);
    return;
  }
  }
}

/// Folds the submitted state into the configuration table: joins/widens
/// with a stored variant and enqueues when something changed. This is the
/// serialized half of the old submit(); the feasibility check,
/// normalization and terminal handling already ran on the Stepper.
void Engine::commitSubmission(PcfgState St, const std::string &Key,
                              bool AtLoopHeader) {
  auto [IdIt, New] =
      ConfigIds.emplace(Key, static_cast<std::uint32_t>(Configs.size()));
  if (New) {
    Configs.push_back(ConfigEntry{Key, {}});
    Result.ConfigsVisited++;
  }
  std::uint32_t Cid = IdIt->second;
  std::vector<Stored> &Variants = Configs[Cid].Variants;

  // Try to fold the new state into an existing variant; states that are
  // not joinable (e.g. successive stages of a pipeline with no loop
  // variable naming their progress) become separate variants.
  for (size_t V = 0; V < Variants.size(); ++V) {
    Stored &Entry = Variants[V];
    PcfgState Acc = Entry.State;
    bool Widen = AtLoopHeader && Entry.Visits >= Opts.WidenDelay;
    bool Ok = Widen ? widenStates(Acc, St) : joinStates(Acc, St);
    if (!Ok)
      continue;
    Entry.Visits++;
    if (statesEqual(Acc, Entry.State)) {
      if (tracingEnabled())
        std::fprintf(stderr, "submit: fixpoint at %s (variant %zu)\n",
                     Key.c_str(), V);
      if (Recording) {
        CommitOutcome O;
        O.K = CommitOutcome::Kind::Fixpoint;
        O.Variant = static_cast<std::uint32_t>(V);
        Recording->Outcomes.push_back(std::move(O));
      }
      return; // Fixpoint at this variant.
    }
    if (tracingEnabled())
      std::fprintf(stderr, "submit: %s variant %zu updated (%s)\n",
                   Key.c_str(), V, Widen ? "widen" : "join");
    Entry.State = std::move(Acc);
    // Close before the state becomes visible to speculating workers
    // (closed-shared-block invariant; see DESIGN.md).
    Entry.State.Cg.close();
    Entry.Stamp++; // Invalidates speculation snapshotted from the old state.
    Entry.Stuck.clear(); // Superseded; the variant will be re-stepped.
    push(Cid, V);
    if (Recording) {
      CommitOutcome O;
      O.K = CommitOutcome::Kind::Updated;
      O.Variant = static_cast<std::uint32_t>(V);
      O.NewState = Entry.State; // Post-close; exactly what the table holds.
      Recording->Outcomes.push_back(std::move(O));
    }
    return;
  }
  if (Variants.size() >= Opts.MaxVariantsPerConfig) {
    fail(BudgetKind::Variants,
         "too many unjoinable states at configuration " + Key, Key);
    return;
  }
  Variants.push_back(Stored{std::move(St), 1, {}});
  push(Cid, Variants.size() - 1);
  if (Recording)
    Recording->Outcomes.emplace_back(); // Default kind: NewVariant.
}

/// Replays one step's effect log against the result and the table, in
/// the exact order the mutations happened on the Stepper.
void Engine::commitEffects(StepEffects &Fx) {
  Result.MaxSetsSeen = std::max(Result.MaxSetsSeen, Fx.SetsSeen);
  for (StepEffects::Item &It : Fx.Items) {
    switch (It.K) {
    case StepEffects::Item::Kind::Match:
      Result.Matches.insert(std::move(It.Match));
      break;
    case StepEffects::Item::Kind::Print:
      Result.PrintFacts.insert(std::move(It.Print));
      break;
    case StepEffects::Item::Kind::TagConflict:
      noteTagConflict(It.ConflictSend, It.ConflictRecv);
      break;
    case StepEffects::Item::Kind::Leak:
      Result.Bugs.push_back(std::move(It.Leak));
      break;
    case StepEffects::Item::Kind::Snapshot:
      Result.FinalSnapshots.push_back(std::move(It.Snapshot));
      break;
    case StepEffects::Item::Kind::Fail:
      fail(It.FailKind, It.FailReason, std::move(It.FailConfig));
      break;
    case StepEffects::Item::Kind::Submit:
      commitSubmission(std::move(It.Sub), It.SubKey, It.SubAtLoopHeader);
      break;
    }
  }
  // The sequential engine applied mutations until the exception; the log
  // replicates that partial application, then the exception continues.
  if (Fx.Error)
    std::rethrow_exception(Fx.Error);
}

/// Runs one Stepper over \p Cur, capturing any exception into the log so
/// the mutations that preceded it still commit in order.
StepEffects Engine::computeStep(const PcfgState &Cur, unsigned TraceId) const {
  Stepper S(Graph, Opts, Loops, AssignedVars, WaitPlans);
  StepEffects Fx;
  try {
    S.step(Cur, TraceId);
    Fx = S.takeEffects();
  } catch (...) {
    Fx = S.takeEffects();
    Fx.Error = std::current_exception();
  }
  return Fx;
}

/// The classic Figure 4 drain: compute and commit one step at a time.
/// Also the only drain that replays and captures: worklist position i
/// corresponds to trace step i in both directions.
void Engine::drainSequential() {
  while (Head < Worklist.size() && !ToppedOut) {
    budgetCheckpoint();
    if (Result.StatesExplored >= Opts.MaxStates) {
      fail(BudgetKind::States, "state budget exceeded");
      break;
    }
    WorkItem W = Worklist[Head];
    std::size_t Pos = Head++;
    Configs[W.Config].Variants[W.Variant].InWorklist = false;
    CurrentConfig = Configs[W.Config].Key;
    Result.StatesExplored++;
    StepsTotal++;

    // While the replay window is open and every CFG node this step would
    // read is provably unchanged, adopt the recorded step wholesale. The
    // first doubt closes the window forever: from there the table may
    // evolve differently from the recording run, so later recorded
    // positions no longer correspond.
    if (ReplayOn &&
        (Pos >= SeedTrace->Steps.size() ||
         !adoptable(SeedTrace->Steps[Pos],
                    Configs[W.Config].Variants[W.Variant].State)))
      ReplayOn = false;
    if (ReplayOn) {
      StepsAdopted++;
      adoptStep(SeedTrace->Steps[Pos], W);
      continue;
    }

    StepsLive++;
    StepEffects Fx = computeStep(Configs[W.Config].Variants[W.Variant].State,
                                 static_cast<unsigned>(Pos) + 1);
    if (Captured) {
      Captured->Steps.emplace_back();
      Recording = &Captured->Steps.back();
      // Copy the log before commitEffects moves its payloads into the
      // result; CoW states make the copy cheap.
      Recording->Fx = Fx;
    }
    commitEffects(Fx);
    Recording = nullptr;
    // Re-index: the commit may have grown Configs/Variants (references
    // into either would dangle).
    Configs[W.Config].Variants[W.Variant].Stuck = std::move(Fx.StuckBugs);
  }
}

/// A speculative step in flight on the pool.
struct SpecSlot {
  std::mutex M;
  std::condition_variable Cv;
  bool Done = false;
  StepEffects Fx;
  /// Stamp of the stored state when the snapshot was taken.
  std::uint64_t Stamp = 0;
  /// Private copy-on-write snapshot of the stored state.
  PcfgState Snapshot;
  unsigned TraceId = 0;
};

/// The parallel drain: workers step a bounded window of upcoming worklist
/// entries speculatively; the coordinator commits strictly at Head. A
/// committed update bumps the variant's stamp, so speculation computed
/// from the superseded state is detected and re-run inline — dropped
/// without waiting, since the task only reads its private snapshot and
/// thread-safe shared structures. Commit order equals sequential order,
/// so the result is bit-identical to Threads=1 by construction.
void Engine::drainParallel() {
  ThreadPool Pool(Opts.Threads);
  std::unordered_map<std::size_t, std::shared_ptr<SpecSlot>> Specs;
  const std::size_t Window = static_cast<std::size_t>(Opts.Threads) * 2;
  std::size_t NextSpec = 0;
  AnalysisBudget *Budget = Opts.Budget;

  while (Head < Worklist.size() && !ToppedOut) {
    budgetCheckpoint();
    if (Result.StatesExplored >= Opts.MaxStates) {
      fail(BudgetKind::States, "state budget exceeded");
      break;
    }

    // Keep a bounded window of speculative steps in flight.
    if (NextSpec < Head)
      NextSpec = Head;
    for (std::size_t Hi = std::min(Worklist.size(), Head + Window);
         NextSpec < Hi; ++NextSpec) {
      WorkItem W = Worklist[NextSpec];
      const Stored &E = Configs[W.Config].Variants[W.Variant];
      auto Slot = std::make_shared<SpecSlot>();
      Slot->Stamp = E.Stamp;
      Slot->Snapshot = E.State; // CoW; shared blocks are closed.
      Slot->TraceId = static_cast<unsigned>(NextSpec) + 1;
      Specs.emplace(NextSpec, Slot);
      Pool.run([this, Slot, Budget] {
        // Thread-local context does not cross into pool threads: install
        // the run's budget and recoverable-error regime here.
        BudgetScope Budgets(Budget);
        RecoveryScope Recover;
        StepEffects Fx = computeStep(Slot->Snapshot, Slot->TraceId);
        {
          std::lock_guard<std::mutex> L(Slot->M);
          Slot->Fx = std::move(Fx);
          Slot->Done = true;
        }
        Slot->Cv.notify_all();
      });
    }

    WorkItem W = Worklist[Head];
    std::size_t Pos = Head++;
    Configs[W.Config].Variants[W.Variant].InWorklist = false;
    CurrentConfig = Configs[W.Config].Key;
    Result.StatesExplored++;
    StepsTotal++;
    StepsLive++; // Replay/capture force Threads=1; this drain is all-live.

    StepEffects Fx;
    bool UsedSpeculation = false;
    if (auto It = Specs.find(Pos); It != Specs.end()) {
      std::shared_ptr<SpecSlot> Slot = std::move(It->second);
      Specs.erase(It);
      if (Slot->Stamp == Configs[W.Config].Variants[W.Variant].Stamp) {
        std::unique_lock<std::mutex> L(Slot->M);
        Slot->Cv.wait(L, [&] { return Slot->Done; });
        Fx = std::move(Slot->Fx);
        UsedSpeculation = true;
      }
      // Stale: the stored state changed after the snapshot was taken;
      // drop the speculation (no need to wait for it) and re-step inline.
    }
    if (!UsedSpeculation)
      Fx = computeStep(Configs[W.Config].Variants[W.Variant].State,
                       static_cast<unsigned>(Pos) + 1);
    commitEffects(Fx);
    Configs[W.Config].Variants[W.Variant].Stuck = std::move(Fx.StuckBugs);
  }
  // Pool dtor joins tasks still running (their shared SpecSlots keep all
  // referenced state alive) and discards queued-but-unstarted ones.
}

/// Seeds the initial state and drains the worklist (the Figure 4 loop).
/// Throws BudgetExceeded/EngineError; run() owns recovery.
void Engine::explore() {
  PcfgState Init(Opts.Backend);
  ProcSetEntry All;
  All.Name = "p0";
  All.Range = ProcRange::all();
  All.Node = Graph.entryId();
  Init.Sets.push_back(std::move(All));
  // One intern table and one closure memo serve the whole run: every state
  // is a (copy-on-write) descendant of Init, so all constraint graphs the
  // engine ever touches share them. Batch threads mode pre-shares both
  // across runs to amortize closure work (see AnalysisOptions).
  Init.Cg = ConstraintGraph(Opts.Backend, Stats,
                            Opts.SharedSymbols ? Opts.SharedSymbols
                                               : std::make_shared<SymbolTable>(),
                            Opts.SharedMemo ? Opts.SharedMemo
                                            : std::make_shared<ClosureMemo>());
  Init.Cg.addLowerBound("np", std::max<std::int64_t>(Opts.MinProcs, 1));
  if (Opts.FixedNp > 0)
    Init.Cg.addEQ(LinearExpr("np", 0), LinearExpr(Opts.FixedNp));
  for (const auto &[Name, Value] : Opts.Params) {
    Init.Cg.addEQ(LinearExpr(Name, 0), LinearExpr(Value));
    Init.Facts.addRewrite(Name, Poly(Value));
  }
  {
    Stepper S(Graph, Opts, Loops, AssignedVars, WaitPlans);
    StepEffects Fx;
    try {
      S.seed(std::move(Init));
      Fx = S.takeEffects();
    } catch (...) {
      Fx = S.takeEffects();
      Fx.Error = std::current_exception();
    }
    commitEffects(Fx);
  }

  if (Opts.Threads > 1)
    drainParallel();
  else
    drainSequential();
}

/// Post-exploration verdicting: stuck-variant sweep, bug stamping,
/// deterministic ordering. Runs after a clean drain and after a budget
/// trip (partial results stay meaningful); skipped on internal error.
void Engine::finish() {
  // Variants still stuck at fixpoint are the Top states of Figure 4.
  // (Commit-order iteration; output-invariant because the bug list is
  // sorted and uniqued below and the fail reason carries no key.)
  for (const ConfigEntry &C : Configs) {
    for (const Stored &Entry : C.Variants) {
      if (Entry.Stuck.empty())
        continue;
      for (const AnalysisBug &Bug : Entry.Stuck)
        Result.Bugs.push_back(Bug);
      fail("all process sets blocked and no send-receive match could be "
           "proven");
    }
  }

  // Stamp each bug with its node's source location and emit in a
  // deterministic order: exploration order depends on worklist scheduling,
  // which callers (and golden tests) must not observe. Duplicate bugs from
  // several stuck variants of the same configuration collapse here too.
  for (AnalysisBug &Bug : Result.Bugs)
    Bug.Loc = Graph.node(Bug.Node).Loc;
  std::sort(Result.Bugs.begin(), Result.Bugs.end());
  Result.Bugs.erase(std::unique(Result.Bugs.begin(), Result.Bugs.end(),
                                [](const AnalysisBug &A, const AnalysisBug &B) {
                                  return !(A < B) && !(B < A);
                                }),
                    Result.Bugs.end());

  Result.Converged = !ToppedOut;
}

AnalysisResult Engine::run() {
  ScopedTimer Timer(*Stats, "pcfg.analysis.seconds");

  // Install the session budget (if any) for the numeric core, matcher, and
  // prover to poll, and make invariant violations recoverable: one
  // pathological program must degrade this result, not kill the process.
  AnalysisBudget *Budget = Opts.Budget;
  if (Budget && !Budget->started())
    Budget->begin();
  BudgetScope Budgets(Budget);
  RecoveryScope Recover;
  CrashContext Ctx("running pCFG analysis", [this] {
    return CurrentConfig.empty() ? std::string("<initial state>")
                                 : "configuration " + CurrentConfig;
  });

  try {
    try {
      explore();
    } catch (const BudgetExceeded &E) {
      fail(E.kind(), E.reason(), CurrentConfig);
    }
    finish();
  } catch (const EngineError &E) {
    // Invariant violation reached from input: report InternalError with
    // whatever context we have. Partial results are untrustworthy, so do
    // not run the verdicting epilogue over them.
    Result.Outcome.Verdict = AnalysisVerdict::InternalError;
    Result.Outcome.Budget = BudgetKind::None;
    Result.Outcome.Reason = E.what();
    Result.Outcome.Configuration = CurrentConfig;
    Result.Converged = false;
    Result.TopReason = std::string("internal error: ") + E.what();
  }
  // Deposit the captured trace only for converged runs: a degraded or
  // failed exploration is both untrustworthy and not worth replaying.
  // The trace outlives this session's (typically stack-local) budget, so
  // every contained DBM block must first be released from accounting —
  // the same escape hatch ClosureMemo uses for cross-session blocks.
  if (Captured && Result.Converged && Opts.Capture) {
    for (TraceStep &S : Captured->Steps) {
      for (StepEffects::Item &It : S.Fx.Items)
        if (It.K == StepEffects::Item::Kind::Submit)
          It.Sub.Cg.detachAccounting();
      for (CommitOutcome &O : S.Outcomes)
        if (O.K == CommitOutcome::Kind::Updated)
          O.NewState.Cg.detachAccounting();
    }
    Opts.Capture->Trace = std::move(Captured);
  }
  if (Opts.Replay) {
    Opts.Replay->TotalSteps = StepsTotal;
    Opts.Replay->AdoptedSteps = StepsAdopted;
    Opts.Replay->LiveSteps = StepsLive;
  }
  return std::move(Result);
}

} // namespace

AnalysisResult csdf::analyzeProgram(const Cfg &Graph,
                                    const AnalysisOptions &Opts,
                                    StatsRegistry *Stats) {
  Engine E(Graph, Opts, Stats);
  return E.run();
}
