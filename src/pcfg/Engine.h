//===- pcfg/Engine.h - The pCFG dataflow engine (Figure 4) --------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow driver of Section VI / Figure 4. Starting from a single
/// process set [0..np-1] at the CFG entry, the engine repeatedly:
///
///   * advances unblocked process sets along the CFG (transfer functions),
///   * splits sets at id-dependent branches,
///   * attempts send-receive matching when no set can advance
///     (matchSendsRecvs), splitting partially matched sets,
///   * merges sets that meet at the same CFG node,
///   * joins/widens states that revisit a pCFG configuration,
///
/// and gives up with Top when no exact match or split can be proven —
/// exactly the policy in the paper ("the framework gives up by passing a
/// Top state down all descendant pCFG edges").
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_PCFG_ENGINE_H
#define CSDF_PCFG_ENGINE_H

#include "cfg/Cfg.h"
#include "pcfg/AnalysisOptions.h"
#include "pcfg/AnalysisResult.h"
#include "support/Stats.h"

namespace csdf {

/// Runs the pCFG dataflow analysis over \p Graph.
AnalysisResult analyzeProgram(const Cfg &Graph, const AnalysisOptions &Opts,
                              StatsRegistry *Stats = &StatsRegistry::global());

} // namespace csdf

#endif // CSDF_PCFG_ENGINE_H
