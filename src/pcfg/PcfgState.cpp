//===- pcfg/PcfgState.cpp ----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "pcfg/PcfgState.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace csdf;

namespace {

/// All constraint-graph variables inside \p Name's namespace. Walks the
/// interned ids and resolves names through the shared table, so no name
/// strings are copied for non-matching variables.
std::vector<std::string> namespaceVars(const ConstraintGraph &Cg,
                                       const std::string &Name) {
  std::vector<std::string> Result;
  std::string Prefix = Name + ".";
  const SymbolTable &Syms = Cg.symbols();
  for (VarId Id : Cg.varIds()) {
    const std::string &Var = Syms.name(Id);
    if (Var.rfind(Prefix, 0) == 0)
      Result.push_back(Var);
  }
  return Result;
}

/// Renames every occurrence of namespace \p From to \p To inside a range.
ProcRange renameRangeNamespace(const ProcRange &R, const std::string &From,
                               const std::string &To) {
  std::string Prefix = From + ".";
  return R.withRenamedVars([&](const std::string &Var) {
    if (Var.rfind(Prefix, 0) == 0)
      return To + "." + Var.substr(Prefix.size());
    return Var;
  });
}

} // namespace

void PcfgState::renameNamespace(const std::string &FromNs,
                                const std::string &ToNs) {
  if (FromNs == ToNs)
    return;
  std::vector<std::pair<std::string, std::string>> Renames;
  std::string OldPrefix = FromNs + ".";
  for (const std::string &Var : namespaceVars(Cg, FromNs))
    Renames.emplace_back(Var, ToNs + "." + Var.substr(OldPrefix.size()));
  Cg.renameVars(Renames);
  for (ProcSetEntry &Other : Sets)
    Other.Range = renameRangeNamespace(Other.Range, FromNs, ToNs);
  for (PendingSend &P : InFlight) {
    P.Senders = renameRangeNamespace(P.Senders, FromNs, ToNs);
    P.AggRange = renameRangeNamespace(P.AggRange, FromNs, ToNs);
    auto RenameLin = [&](std::optional<LinearExpr> &L) {
      if (!L || !L->hasVar())
        return;
      if (L->var().rfind(OldPrefix, 0) == 0)
        L = LinearExpr(ToNs + "." + L->var().substr(OldPrefix.size()),
                       L->constant());
    };
    RenameLin(P.DestUniform);
    RenameLin(P.Tag);
    RenameLin(P.Value);
  }
}

void PcfgState::renameSet(size_t Idx, const std::string &NewName) {
  assert(Idx < Sets.size() && "set index out of range");
  ProcSetEntry &Set = Sets[Idx];
  if (Set.Name == NewName)
    return;
  renameNamespace(Set.Name, NewName);
  Set.Name = NewName;
}

void PcfgState::dropSetVars(const ProcSetEntry &Set) {
  for (const std::string &Var : namespaceVars(Cg, Set.Name))
    Cg.removeVar(Var);
}

void PcfgState::canonicalize() {
  // Sort sets by (node, lower-bound form) for a stable order.
  std::vector<size_t> Order(Sets.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    if (Sets[A].Node != Sets[B].Node)
      return Sets[A].Node < Sets[B].Node;
    return Sets[A].Range.lb().primary() < Sets[B].Range.lb().primary();
  });
  std::vector<ProcSetEntry> NewSets;
  NewSets.reserve(Sets.size());
  for (size_t I : Order)
    NewSets.push_back(std::move(Sets[I]));
  Sets = std::move(NewSets);

  // Renumber namespaces to p0, p1, ... via a temporary phase to avoid
  // collisions with existing names.
  for (size_t I = 0; I < Sets.size(); ++I)
    renameSet(I, "tmp$" + std::to_string(I));
  for (size_t I = 0; I < Sets.size(); ++I)
    renameSet(I, "p" + std::to_string(I));

  // Renumber pending-send freeze namespaces by FIFO position so repeat
  // visits to a configuration produce identical variable names. Pieces of
  // one partially consumed send share a namespace, so rename per distinct
  // namespace in first-appearance order.
  std::stable_sort(InFlight.begin(), InFlight.end(),
                   [](const PendingSend &A, const PendingSend &B) {
                     return A.Seq < B.Seq;
                   });
  std::vector<std::string> DistinctNs;
  for (const PendingSend &P : InFlight)
    if (std::find(DistinctNs.begin(), DistinctNs.end(), P.FreezeNs) ==
        DistinctNs.end())
      DistinctNs.push_back(P.FreezeNs);
  for (size_t I = 0; I < DistinctNs.size(); ++I) {
    std::string Tmp = "tmpq$" + std::to_string(I);
    renameNamespace(DistinctNs[I], Tmp);
    for (PendingSend &P : InFlight)
      if (P.FreezeNs == DistinctNs[I])
        P.FreezeNs = Tmp;
  }
  for (size_t I = 0; I < DistinctNs.size(); ++I) {
    std::string Tmp = "tmpq$" + std::to_string(I);
    std::string Final = "q" + std::to_string(I);
    renameNamespace(Tmp, Final);
    for (PendingSend &P : InFlight)
      if (P.FreezeNs == Tmp)
        P.FreezeNs = Final;
  }
  for (size_t I = 0; I < InFlight.size(); ++I)
    InFlight[I].Seq = static_cast<unsigned>(I);
  NextSeq = static_cast<unsigned>(InFlight.size() + DistinctNs.size());
}

std::string PcfgState::configKey() const {
  std::ostringstream OS;
  for (const ProcSetEntry &Set : Sets)
    OS << "n" << Set.Node << ";";
  OS << "|";
  for (const PendingSend &P : InFlight)
    OS << (P.IsAggregate ? "a" : "s") << P.SendNode << ";";
  return OS.str();
}

std::string PcfgState::setsStr() const {
  return joinMapped(Sets, " ", [](const ProcSetEntry &Set) {
    return Set.Name + "=" + Set.Range.str() + "@n" +
           std::to_string(Set.Node);
  });
}

std::string PcfgState::str(const Cfg &Graph) const {
  std::ostringstream OS;
  for (const ProcSetEntry &Set : Sets)
    OS << Set.Name << " = " << Set.Range.str() << " at "
       << Graph.nodeLabel(Set.Node) << "\n";
  for (const PendingSend &P : InFlight)
    OS << "in-flight: " << P.Senders.str() << " from "
       << Graph.nodeLabel(P.SendNode) << "\n";
  OS << "cg: " << Cg.str() << "\n";
  return OS.str();
}

namespace {

/// Reduces a combined bound to a single stable form (see the matching
/// helper in the engine): prefer a constant/global alias, otherwise pin
/// the representative form into the owner's anchor slot. The combined
/// ranges come from widenRange and carry every alias common to both
/// sides; storing aliases would let later assignments to the aliased
/// variables silently change the set's meaning.
SymBound reanchorBound(ConstraintGraph &Cg, const std::string &OwnerNs,
                       const char *Slot, const SymBound &Bound) {
  std::string Anchor = OwnerNs + "." + Slot;
  LinearExpr AnchorForm(Anchor, 0);
  for (const LinearExpr &Form : Bound.forms())
    if (Form.isConstant() || Form.var().find('.') == std::string::npos)
      return SymBound(Form);
  // Prefer keeping the existing anchor if it is among the aliases (its
  // constraints already describe the combined bound).
  for (const LinearExpr &Form : Bound.forms())
    if (Form == AnchorForm)
      return SymBound(AnchorForm);
  Cg.assign(Anchor, Bound.primary());
  return SymBound(AnchorForm);
}

ProcRange reanchorRange(ConstraintGraph &Cg, const std::string &OwnerNs,
                        const ProcRange &Range) {
  return ProcRange(reanchorBound(Cg, OwnerNs, "lo$", Range.lb()),
                   reanchorBound(Cg, OwnerNs, "ub$", Range.ub()));
}

/// Shared shape checks + range combination for join/widen.
bool combineStates(PcfgState &Acc, const PcfgState &New, bool Widen) {
  if (Acc.Sets.size() != New.Sets.size() ||
      Acc.InFlight.size() != New.InFlight.size())
    return false;
  for (size_t I = 0; I < Acc.Sets.size(); ++I) {
    if (Acc.Sets[I].Node != New.Sets[I].Node)
      return false;
    if (Acc.Sets[I].Name != New.Sets[I].Name)
      return false; // Both must be canonicalized.
  }
  for (size_t I = 0; I < Acc.InFlight.size(); ++I) {
    if (Acc.InFlight[I].SendNode != New.InFlight[I].SendNode)
      return false;
    if (Acc.InFlight[I].IsAggregate != New.InFlight[I].IsAggregate)
      return false;
  }

  // Ranges first (they consult both old and new graphs).
  std::vector<ProcRange> Ranges;
  for (size_t I = 0; I < Acc.Sets.size(); ++I) {
    if (auto W =
            widenRange(Acc.Sets[I].Range, Acc.Cg, New.Sets[I].Range, New.Cg))
      Ranges.push_back(*W);
    else
      return false;
  }
  std::vector<ProcRange> Pending;
  std::vector<std::optional<ProcRange>> PendingAgg;
  for (size_t I = 0; I < Acc.InFlight.size(); ++I) {
    if (auto W = widenRange(Acc.InFlight[I].Senders, Acc.Cg,
                            New.InFlight[I].Senders, New.Cg))
      Pending.push_back(*W);
    else
      return false;
    if (Acc.InFlight[I].IsAggregate) {
      auto WA = widenRange(Acc.InFlight[I].AggRange, Acc.Cg,
                           New.InFlight[I].AggRange, New.Cg);
      if (!WA)
        return false;
      PendingAgg.push_back(*WA);
    } else {
      PendingAgg.push_back(std::nullopt);
    }
  }

  if (Widen) {
    // Widening per Figure 4: join then drop bounds unstable w.r.t. the
    // accumulated state (finite ascent).
    ConstraintGraph Joined = Acc.Cg;
    Joined.joinWith(New.Cg);
    Acc.Cg.widenWith(Joined);
  } else {
    Acc.Cg.joinWith(New.Cg);
  }

  for (size_t I = 0; I < Acc.Sets.size(); ++I) {
    Acc.Sets[I].Range =
        reanchorRange(Acc.Cg, Acc.Sets[I].Name, Ranges[I]);
    Acc.Sets[I].NonUniform.insert(New.Sets[I].NonUniform.begin(),
                                  New.Sets[I].NonUniform.end());
  }
  for (size_t I = 0; I < Acc.InFlight.size(); ++I) {
    Acc.InFlight[I].Senders =
        reanchorRange(Acc.Cg, Acc.InFlight[I].FreezeNs, Pending[I]);
    if (PendingAgg[I])
      Acc.InFlight[I].AggRange = ProcRange(
          reanchorBound(Acc.Cg, Acc.InFlight[I].FreezeNs, "alo$",
                        PendingAgg[I]->lb()),
          reanchorBound(Acc.Cg, Acc.InFlight[I].FreezeNs, "ahi$",
                        PendingAgg[I]->ub()));
  }
  Acc.NextSeq = std::max(Acc.NextSeq, New.NextSeq);
  Acc.Facts.intersectWith(New.Facts);
  return true;
}

} // namespace

bool csdf::joinStates(PcfgState &Acc, const PcfgState &New) {
  return combineStates(Acc, New, /*Widen=*/false);
}

bool csdf::widenStates(PcfgState &Acc, const PcfgState &New) {
  return combineStates(Acc, New, /*Widen=*/true);
}

bool csdf::statesEqual(const PcfgState &A, const PcfgState &B) {
  if (A.Sets.size() != B.Sets.size() ||
      A.InFlight.size() != B.InFlight.size())
    return false;
  for (size_t I = 0; I < A.Sets.size(); ++I) {
    if (A.Sets[I].Node != B.Sets[I].Node)
      return false;
    if (!(A.Sets[I].Range == B.Sets[I].Range))
      return false;
  }
  for (size_t I = 0; I < A.InFlight.size(); ++I) {
    if (A.InFlight[I].SendNode != B.InFlight[I].SendNode)
      return false;
    if (!(A.InFlight[I].Senders == B.InFlight[I].Senders))
      return false;
    if (A.InFlight[I].IsAggregate != B.InFlight[I].IsAggregate)
      return false;
    if (A.InFlight[I].IsAggregate &&
        !(A.InFlight[I].AggRange == B.InFlight[I].AggRange))
      return false;
  }
  if (!(A.Facts == B.Facts))
    return false;
  return A.Cg.equals(B.Cg);
}
