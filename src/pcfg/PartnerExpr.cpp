//===- pcfg/PartnerExpr.cpp --------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "pcfg/PartnerExpr.h"

#include "lang/ExprOps.h"
#include "support/Casting.h"

using namespace csdf;

std::optional<std::int64_t> csdf::matchIdPlusC(const Expr *E) {
  if (const auto *V = dyn_cast<VarRefExpr>(E))
    return V->isProcessId() ? std::optional<std::int64_t>(0) : std::nullopt;
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return std::nullopt;
  if (B->op() == BinaryOp::Add) {
    if (const auto *V = dyn_cast<VarRefExpr>(B->lhs()); V && V->isProcessId())
      if (auto C = foldConstant(B->rhs()))
        return *C;
    if (const auto *V = dyn_cast<VarRefExpr>(B->rhs()); V && V->isProcessId())
      if (auto C = foldConstant(B->lhs()))
        return *C;
    return std::nullopt;
  }
  if (B->op() == BinaryOp::Sub) {
    if (const auto *V = dyn_cast<VarRefExpr>(B->lhs()); V && V->isProcessId())
      if (auto C = foldConstant(B->rhs()))
        return -*C;
  }
  return std::nullopt;
}

namespace {

/// Evaluates \p E to a constant using the graph's pinned variable values
/// (grid parameters fixed via AnalysisOptions::Params, loop counters at
/// known iterations). Fails on `id`, input(), or any unpinned variable.
std::optional<std::int64_t> resolveConstant(const Expr *E,
                                            const ProcSetEntry &Set,
                                            const std::set<std::string>
                                                &AssignedVars,
                                            const ConstraintGraph &Cg) {
  if (dependsOnId(E))
    return std::nullopt;
  return evalExpr(E, [&](const std::string &Name)
                         -> std::optional<std::int64_t> {
    std::string Scoped = PcfgState::scopedVar(Set, Name, AssignedVars);
    if (Set.NonUniform.count(Name) && !Set.Range.provablySingleton(Cg))
      return std::nullopt;
    return Cg.constValue(Scoped);
  });
}

} // namespace

PartnerExpr csdf::classifyPartnerExpr(const Expr *E, const ProcSetEntry &Set,
                                      const std::set<std::string>
                                          &AssignedVars,
                                      const ConstraintGraph &Cg) {
  PartnerExpr Result;
  if (auto Offset = matchIdPlusC(E)) {
    Result.TheKind = PartnerExpr::Kind::IdPlusC;
    Result.Offset = *Offset;
    return Result;
  }
  if (dependsOnId(E)) {
    // A symbolic-offset shift like `id + ncols` becomes a plain IdPlusC
    // when the offset expression is pinned to a constant (e.g. via
    // AnalysisOptions::Params).
    if (const auto *B = dyn_cast<BinaryExpr>(E)) {
      const Expr *IdSide = nullptr;
      const Expr *OffSide = nullptr;
      std::int64_t Sign = 1;
      if (const auto *V = dyn_cast<VarRefExpr>(B->lhs());
          V && V->isProcessId() && !dependsOnId(B->rhs())) {
        IdSide = B->lhs();
        OffSide = B->rhs();
        if (B->op() == BinaryOp::Sub)
          Sign = -1;
        else if (B->op() != BinaryOp::Add)
          IdSide = nullptr;
      } else if (const auto *V2 = dyn_cast<VarRefExpr>(B->rhs());
                 V2 && V2->isProcessId() && B->op() == BinaryOp::Add &&
                 !dependsOnId(B->lhs())) {
        IdSide = B->rhs();
        OffSide = B->lhs();
      }
      if (IdSide) {
        if (auto Off = resolveConstant(OffSide, Set, AssignedVars, Cg)) {
          Result.TheKind = PartnerExpr::Kind::IdPlusC;
          Result.Offset = Sign * *Off;
          return Result;
        }
      }
    }
    // Other uses of id are the HSM matcher's job; report Complex here.
    return Result;
  }
  auto Lin = LinearExpr::fromExpr(E);
  if (!Lin) {
    // Outside the `var + c` fragment, but possibly still pinned to a
    // constant (e.g. `np - ncols` with both parameters fixed).
    if (auto C = resolveConstant(E, Set, AssignedVars, Cg)) {
      Result.TheKind = PartnerExpr::Kind::Uniform;
      Result.Value = LinearExpr(*C);
    }
    return Result;
  }
  if (Lin->hasVar()) {
    // Non-uniform variables are only safe on singleton sets.
    if (Set.NonUniform.count(Lin->var()) &&
        !Set.Range.provablySingleton(Cg))
      return Result;
    Result.Value =
        LinearExpr(PcfgState::scopedVar(Set, Lin->var(), AssignedVars),
                   Lin->constant());
  } else {
    Result.Value = *Lin;
  }
  Result.TheKind = PartnerExpr::Kind::Uniform;
  return Result;
}
