//===- cfg/RequestInfo.h - Request-lifecycle dataflow -----------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward dataflow analysis over one process CFG tracking the lifecycle
/// of non-blocking request handles: which isend/irecv postings may (and
/// must) be outstanding at each node, whether a request may reach a node
/// un-posted, and whether it may already have been completed by a wait.
///
/// Two consumers share these facts:
///  - the request-lifecycle lint passes (request-leak, double-wait,
///    wait-uninit, buffer-race) in src/analysis/RequestCheck.cpp, and
///  - the pCFG engine, which uses resolveWait() to decide statically
///    whether a wait node is a no-op (completes an isend), acts as a
///    receive (completes an irecv with stable partner/tag), or is too
///    imprecise to model exactly (degrade to Top, which is sound).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_CFG_REQUESTINFO_H
#define CSDF_CFG_REQUESTINFO_H

#include "cfg/Cfg.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace csdf {

/// Dataflow facts for one request handle on entry to one node.
struct ReqState {
  /// Some path reaches here with the request never posted (or not
  /// re-posted since program entry).
  bool MayUnposted = false;
  /// Some path reaches here with the request already completed by a wait
  /// (and not re-posted since).
  bool MayWaited = false;
  /// Posting nodes (isend/irecv) that may be outstanding here.
  std::set<CfgNodeId> MayPosted;
  /// Posting nodes outstanding on every path reaching here. Always a
  /// subset of MayPosted.
  std::set<CfgNodeId> MustPosted;
};

/// How a wait/waitall node resolves statically. See resolveWait().
struct WaitResolution {
  enum class Kind {
    /// Completes only isends (or nothing): the pCFG can step straight over.
    NoOp,
    /// Completes exactly one irecv whose partner/tag are stable between
    /// post and wait: the pCFG treats the wait node as that receive.
    AsRecv,
    /// The outstanding set is ambiguous; exact matching is impossible and
    /// the analysis must degrade to Top.
    Imprecise,
  };
  Kind Result = Kind::Imprecise;
  /// For AsRecv: the unique irecv posting this wait stands in for.
  CfgNodeId Posting = 0;
  /// All postings this wait completes (NoOp/AsRecv only).
  std::vector<CfgNodeId> Completed;
  /// For Imprecise: a human-readable reason (surfaces in the Top detail).
  std::string Why;
};

/// Result of the request-lifecycle dataflow over one CFG. Compute once per
/// program; queries are cheap.
class RequestInfo {
public:
  static RequestInfo compute(const Cfg &Graph);

  /// All request handles named anywhere in the program, sorted.
  const std::vector<std::string> &requestVars() const { return ReqVars; }

  /// True if the program uses any non-blocking operation at all.
  bool hasRequests() const { return !ReqVars.empty(); }

  /// True if the dataflow reached \p Node (false only for unreachable
  /// code).
  bool reached(CfgNodeId Node) const {
    return Node < Reached.size() && Reached[Node];
  }

  /// Facts on entry to \p Node for \p Req. For unreached nodes or unknown
  /// request names, returns an empty state (all-false, no postings).
  const ReqState &in(CfgNodeId Node, const std::string &Req) const;

  /// Buffer variables of irecv postings that may be outstanding on entry
  /// to \p Node, each mapped to the posting nodes responsible.
  std::map<std::string, std::set<CfgNodeId>>
  outstandingIrecvBuffers(CfgNodeId Node) const;

  /// Variables assigned (by assign, recv, or irecv) at some node on a
  /// path strictly between \p From and \p To. Used for the partner/tag
  /// stability check in resolveWait().
  std::set<std::string> assignedBetween(CfgNodeId From, CfgNodeId To) const;

  /// Statically resolves wait/waitall node \p WaitNode. Exact handling
  /// needs a unique, unambiguous outstanding set; anything else is
  /// Imprecise (with Why saying what went wrong).
  WaitResolution resolveWait(CfgNodeId WaitNode) const;

private:
  explicit RequestInfo(const Cfg &Graph) : Graph(&Graph) {}

  int reqIndex(const std::string &Req) const;

  const Cfg *Graph;
  std::vector<std::string> ReqVars;
  /// In[node][reqIndex], parallel to ReqVars.
  std::vector<std::vector<ReqState>> In;
  std::vector<bool> Reached;
  ReqState Empty;
};

} // namespace csdf

#endif // CSDF_CFG_REQUESTINFO_H
