//===- cfg/LoopInfo.cpp -------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cfg/LoopInfo.h"

#include <vector>

using namespace csdf;

LoopInfo::LoopInfo(const Cfg &Graph) {
  enum class Color { White, Gray, Black };
  std::vector<Color> Colors(Graph.size(), Color::White);

  // Iterative DFS from the entry; an edge into a Gray node is a back edge.
  struct Frame {
    CfgNodeId Node;
    size_t NextSucc = 0;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Graph.entryId()});
  Colors[Graph.entryId()] = Color::Gray;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const CfgNode &N = Graph.node(Top.Node);
    if (Top.NextSucc >= N.Succs.size()) {
      Colors[Top.Node] = Color::Black;
      Stack.pop_back();
      continue;
    }
    CfgNodeId Succ = N.Succs[Top.NextSucc++].Target;
    switch (Colors[Succ]) {
    case Color::White:
      Colors[Succ] = Color::Gray;
      Stack.push_back({Succ});
      break;
    case Color::Gray:
      BackEdges.emplace_back(Top.Node, Succ);
      Headers.insert(Succ);
      break;
    case Color::Black:
      break;
    }
  }

  // Natural loop bodies: for each back edge (tail, header), every node
  // that reaches the tail without passing through the header, plus the
  // header itself.
  for (const auto &[Tail, Header] : BackEdges) {
    LoopNodes.insert(Header);
    std::vector<CfgNodeId> Work = {Tail};
    while (!Work.empty()) {
      CfgNodeId N = Work.back();
      Work.pop_back();
      if (N == Header || !LoopNodes.insert(N).second)
        continue;
      for (CfgNodeId Pred : Graph.node(N).Preds)
        Work.push_back(Pred);
    }
  }
}
