//===- cfg/RequestInfo.cpp -------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cfg/RequestInfo.h"

#include "lang/ExprOps.h"

#include <algorithm>
#include <deque>

using namespace csdf;

namespace {

bool isPosting(const CfgNode &N) {
  return N.Kind == CfgNodeKind::Isend || N.Kind == CfgNodeKind::Irecv;
}

/// Joins \p Src into \p Dst (may-union for flags and MayPosted,
/// must-intersection for MustPosted). Returns true if \p Dst changed.
bool joinInto(ReqState &Dst, const ReqState &Src) {
  bool Changed = false;
  if (Src.MayUnposted && !Dst.MayUnposted) {
    Dst.MayUnposted = true;
    Changed = true;
  }
  if (Src.MayWaited && !Dst.MayWaited) {
    Dst.MayWaited = true;
    Changed = true;
  }
  for (CfgNodeId P : Src.MayPosted)
    if (Dst.MayPosted.insert(P).second)
      Changed = true;
  for (auto It = Dst.MustPosted.begin(); It != Dst.MustPosted.end();) {
    if (!Src.MustPosted.count(*It)) {
      It = Dst.MustPosted.erase(It);
      Changed = true;
    } else {
      ++It;
    }
  }
  return Changed;
}

} // namespace

int RequestInfo::reqIndex(const std::string &Req) const {
  auto It = std::lower_bound(ReqVars.begin(), ReqVars.end(), Req);
  if (It == ReqVars.end() || *It != Req)
    return -1;
  return static_cast<int>(It - ReqVars.begin());
}

const ReqState &RequestInfo::in(CfgNodeId Node,
                                const std::string &Req) const {
  int Idx = reqIndex(Req);
  if (Idx < 0 || Node >= In.size() || !Reached[Node])
    return Empty;
  return In[Node][Idx];
}

RequestInfo RequestInfo::compute(const Cfg &Graph) {
  RequestInfo Info(Graph);

  std::set<std::string> Names;
  for (const CfgNode &N : Graph.nodes())
    if (!N.Req.empty())
      Names.insert(N.Req);
  Info.ReqVars.assign(Names.begin(), Names.end());
  Info.In.assign(Graph.size(), std::vector<ReqState>(Info.ReqVars.size()));
  Info.Reached.assign(Graph.size(), false);
  if (Info.ReqVars.empty())
    return Info;

  // Entry state: every request may be un-posted, nothing outstanding.
  std::vector<ReqState> EntryState(Info.ReqVars.size());
  for (ReqState &S : EntryState)
    S.MayUnposted = true;

  auto transfer = [&](CfgNodeId Id, std::vector<ReqState> State) {
    const CfgNode &N = Graph.node(Id);
    if (isPosting(N)) {
      int Idx = Info.reqIndex(N.Req);
      ReqState &S = State[static_cast<size_t>(Idx)];
      S = ReqState();
      S.MayPosted = {Id};
      S.MustPosted = {Id};
    } else if (N.Kind == CfgNodeKind::Wait) {
      int Idx = Info.reqIndex(N.Req);
      ReqState &S = State[static_cast<size_t>(Idx)];
      S.MayPosted.clear();
      S.MustPosted.clear();
      S.MayUnposted = false;
      S.MayWaited = true;
    } else if (N.Kind == CfgNodeKind::Waitall) {
      for (ReqState &S : State) {
        if (!S.MayPosted.empty())
          S.MayWaited = true;
        S.MayPosted.clear();
        S.MustPosted.clear();
      }
    }
    return State;
  };

  std::deque<CfgNodeId> Worklist;
  Info.In[Graph.entryId()] = EntryState;
  Info.Reached[Graph.entryId()] = true;
  Worklist.push_back(Graph.entryId());

  while (!Worklist.empty()) {
    CfgNodeId Id = Worklist.front();
    Worklist.pop_front();
    std::vector<ReqState> Out = transfer(Id, Info.In[Id]);
    for (const CfgEdge &E : Graph.node(Id).Succs) {
      bool Changed = false;
      if (!Info.Reached[E.Target]) {
        Info.In[E.Target] = Out;
        Info.Reached[E.Target] = true;
        Changed = true;
      } else {
        std::vector<ReqState> &Dst = Info.In[E.Target];
        for (size_t I = 0; I < Out.size(); ++I)
          Changed |= joinInto(Dst[I], Out[I]);
      }
      if (Changed &&
          std::find(Worklist.begin(), Worklist.end(), E.Target) ==
              Worklist.end())
        Worklist.push_back(E.Target);
    }
  }
  return Info;
}

std::map<std::string, std::set<CfgNodeId>>
RequestInfo::outstandingIrecvBuffers(CfgNodeId Node) const {
  std::map<std::string, std::set<CfgNodeId>> Buffers;
  if (Node >= In.size() || !Reached[Node])
    return Buffers;
  for (const ReqState &S : In[Node])
    for (CfgNodeId P : S.MayPosted)
      if (Graph->node(P).Kind == CfgNodeKind::Irecv)
        Buffers[Graph->node(P).Var].insert(P);
  return Buffers;
}

std::set<std::string> RequestInfo::assignedBetween(CfgNodeId From,
                                                   CfgNodeId To) const {
  // Nodes on some path strictly between From and To: reachable from From
  // and reaching To, excluding the endpoints themselves.
  auto bfs = [&](CfgNodeId Start, bool Forward) {
    std::vector<bool> Seen(Graph->size(), false);
    std::deque<CfgNodeId> Queue = {Start};
    while (!Queue.empty()) {
      CfgNodeId Id = Queue.front();
      Queue.pop_front();
      if (Forward) {
        for (const CfgEdge &E : Graph->node(Id).Succs)
          if (!Seen[E.Target]) {
            Seen[E.Target] = true;
            Queue.push_back(E.Target);
          }
      } else {
        for (CfgNodeId P : Graph->node(Id).Preds)
          if (!Seen[P]) {
            Seen[P] = true;
            Queue.push_back(P);
          }
      }
    }
    return Seen;
  };
  std::vector<bool> FromReach = bfs(From, /*Forward=*/true);
  std::vector<bool> ToReach = bfs(To, /*Forward=*/false);

  std::set<std::string> Assigned;
  for (const CfgNode &N : Graph->nodes()) {
    if (N.Id == From || N.Id == To || !FromReach[N.Id] || !ToReach[N.Id])
      continue;
    if (N.Kind == CfgNodeKind::Assign || N.Kind == CfgNodeKind::Recv ||
        N.Kind == CfgNodeKind::Irecv)
      Assigned.insert(N.Var);
  }
  return Assigned;
}

WaitResolution RequestInfo::resolveWait(CfgNodeId WaitNode) const {
  const CfgNode &W = Graph->node(WaitNode);
  WaitResolution R;
  R.Result = WaitResolution::Kind::Imprecise;

  // Checks that a completed irecv posting's partner/tag still evaluate to
  // the same values at the wait: no variable they read may be reassigned
  // on any path between post and wait. `id`/`np` are per-process
  // constants and always stable.
  auto stable = [&](const CfgNode &Posting) {
    std::set<std::string> Vars;
    if (Posting.Partner)
      collectVars(Posting.Partner, Vars);
    if (Posting.Tag)
      collectVars(Posting.Tag, Vars);
    Vars.erase("id");
    Vars.erase("np");
    if (Vars.empty())
      return true;
    std::set<std::string> Clobbered = assignedBetween(Posting.Id, WaitNode);
    for (const std::string &V : Vars)
      if (Clobbered.count(V))
        return false;
    return true;
  };

  if (W.Kind == CfgNodeKind::Wait) {
    const ReqState &S = in(WaitNode, W.Req);
    if (S.MayUnposted) {
      R.Why = "request '" + W.Req + "' may be un-posted at this wait";
      return R;
    }
    if (S.MayWaited) {
      R.Why = "request '" + W.Req +
              "' may already be completed by an earlier wait";
      return R;
    }
    if (S.MayPosted.size() != 1 || S.MayPosted != S.MustPosted) {
      R.Why = "no unique posting reaches this wait for request '" + W.Req +
              "'";
      return R;
    }
    CfgNodeId P = *S.MayPosted.begin();
    R.Completed = {P};
    if (Graph->node(P).Kind == CfgNodeKind::Isend) {
      R.Result = WaitResolution::Kind::NoOp;
      return R;
    }
    if (!stable(Graph->node(P))) {
      R.Completed.clear();
      R.Why = "partner/tag of the posting at " + Graph->nodeLabel(P) +
              " may change between post and wait";
      return R;
    }
    R.Result = WaitResolution::Kind::AsRecv;
    R.Posting = P;
    return R;
  }

  // Waitall: exact only when every request's outstanding set is the same
  // on all incoming paths, and at most one outstanding irecv remains.
  std::vector<CfgNodeId> Irecvs;
  if (!reached(WaitNode)) {
    R.Result = WaitResolution::Kind::NoOp;
    return R;
  }
  for (size_t I = 0; I < ReqVars.size(); ++I) {
    const ReqState &S = In[WaitNode][I];
    if (S.MayPosted != S.MustPosted) {
      R.Why = "outstanding set for request '" + ReqVars[I] +
              "' differs across paths into waitall";
      return R;
    }
    for (CfgNodeId P : S.MayPosted) {
      R.Completed.push_back(P);
      if (Graph->node(P).Kind == CfgNodeKind::Irecv)
        Irecvs.push_back(P);
    }
  }
  if (Irecvs.empty()) {
    R.Result = WaitResolution::Kind::NoOp;
    return R;
  }
  if (Irecvs.size() > 1) {
    R.Completed.clear();
    R.Why = "multiple irecvs may be outstanding at this waitall";
    return R;
  }
  if (!stable(Graph->node(Irecvs.front()))) {
    R.Completed.clear();
    R.Why = "partner/tag of the posting at " +
            Graph->nodeLabel(Irecvs.front()) +
            " may change between post and waitall";
    return R;
  }
  R.Result = WaitResolution::Kind::AsRecv;
  R.Posting = Irecvs.front();
  return R;
}
