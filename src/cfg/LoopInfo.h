//===- cfg/LoopInfo.h - Back edges and loop headers --------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies back edges and loop headers of a Cfg by depth-first search.
/// The pCFG engine widens dataflow states whenever a process set re-enters a
/// loop header, which guarantees termination for client analyses with
/// infinite lattices (Section VI of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_CFG_LOOPINFO_H
#define CSDF_CFG_LOOPINFO_H

#include "cfg/Cfg.h"

#include <set>
#include <utility>
#include <vector>

namespace csdf {

/// Loop structure summary of a Cfg.
class LoopInfo {
public:
  /// Computes loop info for \p Graph.
  explicit LoopInfo(const Cfg &Graph);

  /// True if \p Id is the target of some back edge.
  bool isLoopHeader(CfgNodeId Id) const { return Headers.count(Id) != 0; }

  /// All (tail, header) back edges found.
  const std::vector<std::pair<CfgNodeId, CfgNodeId>> &backEdges() const {
    return BackEdges;
  }

  /// All loop headers.
  const std::set<CfgNodeId> &headers() const { return Headers; }

  /// True if \p Id belongs to some natural loop body (including headers).
  bool isInLoop(CfgNodeId Id) const { return LoopNodes.count(Id) != 0; }

  /// All nodes inside some natural loop.
  const std::set<CfgNodeId> &loopNodes() const { return LoopNodes; }

private:
  std::vector<std::pair<CfgNodeId, CfgNodeId>> BackEdges;
  std::set<CfgNodeId> Headers;
  std::set<CfgNodeId> LoopNodes;
};

} // namespace csdf

#endif // CSDF_CFG_LOOPINFO_H
