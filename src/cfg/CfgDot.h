//===- cfg/CfgDot.h - Graphviz export of CFGs ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Cfg as Graphviz DOT text for debugging and documentation.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_CFG_CFGDOT_H
#define CSDF_CFG_CFGDOT_H

#include "cfg/Cfg.h"

#include <string>

namespace csdf {

/// Returns a DOT digraph of \p Graph named \p Name.
std::string cfgToDot(const Cfg &Graph, const std::string &Name = "cfg");

} // namespace csdf

#endif // CSDF_CFG_CFGDOT_H
