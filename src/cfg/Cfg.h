//===- cfg/Cfg.h - Control-flow graphs for MPL ------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow graph over which the pCFG analysis runs. One statement
/// per node (as in the paper's Figure 2): assignments, sends, receives,
/// prints, assumes and branches. `for` loops are lowered to
/// init/test/increment; `if`/`while` become Branch nodes with True/False
/// edges.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_CFG_CFG_H
#define CSDF_CFG_CFG_H

#include "lang/Ast.h"

#include <cassert>
#include <string>
#include <vector>

namespace csdf {

/// Identifies a CFG node within its Cfg. Dense, starting at 0.
using CfgNodeId = unsigned;

/// The statement classes a CFG node can carry.
enum class CfgNodeKind {
  Entry,
  Exit,
  Assign,
  Branch,
  Send,
  Recv,
  Isend,
  Irecv,
  Wait,
  Waitall,
  Print,
  Assume,
  Assert,
  Skip,
};

/// Returns a short name for \p Kind ("entry", "send", ...).
const char *cfgNodeKindName(CfgNodeKind Kind);

/// How control leaves a node.
enum class CfgEdgeKind {
  Fallthrough,
  True,
  False,
};

/// A directed CFG edge.
struct CfgEdge {
  CfgNodeId Target = 0;
  CfgEdgeKind Kind = CfgEdgeKind::Fallthrough;
};

/// A single CFG node. Which payload fields are meaningful depends on Kind:
///   Assign: Var, Value;   Branch/Assume: Cond;
///   Send: Value, Partner, Tag;   Recv: Var, Partner, Tag;
///   Isend: Value, Partner, Tag, Req;   Irecv: Var, Partner, Tag, Req;
///   Wait: Req;   Print: Value.
/// A wildcard (`any`-source) Recv/Irecv has a null Partner.
struct CfgNode {
  CfgNodeId Id = 0;
  CfgNodeKind Kind = CfgNodeKind::Skip;
  /// Originating statement, if any (null for Entry/Exit/synthesized nodes).
  const Stmt *Origin = nullptr;
  /// Source location of the originating statement (invalid for Entry/Exit).
  /// Synthesized nodes (for-loop init/test/increment) inherit the loop's
  /// location, so every diagnostic anchored at a node has a line:column.
  SourceLoc Loc;

  std::string Var;
  /// Request handle named by an isend/irecv/wait (empty otherwise).
  /// Requests live in a namespace disjoint from scalar variables.
  std::string Req;
  const Expr *Value = nullptr;
  const Expr *Cond = nullptr;
  const Expr *Partner = nullptr;
  const Expr *Tag = nullptr;

  std::vector<CfgEdge> Succs;
  std::vector<CfgNodeId> Preds;

  bool isCommOp() const {
    return Kind == CfgNodeKind::Send || Kind == CfgNodeKind::Recv ||
           Kind == CfgNodeKind::Isend || Kind == CfgNodeKind::Irecv;
  }
  /// True for the synchronization points that complete non-blocking
  /// requests (wait/waitall).
  bool isWaitOp() const {
    return Kind == CfgNodeKind::Wait || Kind == CfgNodeKind::Waitall;
  }
  /// True for a receive-class node (Recv/Irecv) whose source is the `any`
  /// wildcard.
  bool isWildcardRecv() const {
    return (Kind == CfgNodeKind::Recv || Kind == CfgNodeKind::Irecv) &&
           Partner == nullptr;
  }
  bool isBranch() const { return Kind == CfgNodeKind::Branch; }
  bool isExit() const { return Kind == CfgNodeKind::Exit; }
};

/// A whole-program CFG: nodes, dense ids, distinguished entry/exit.
class Cfg {
public:
  CfgNodeId entryId() const { return Entry; }
  CfgNodeId exitId() const { return Exit; }

  const CfgNode &node(CfgNodeId Id) const {
    assert(Id < Nodes.size() && "CFG node id out of range");
    return Nodes[Id];
  }
  CfgNode &node(CfgNodeId Id) {
    assert(Id < Nodes.size() && "CFG node id out of range");
    return Nodes[Id];
  }

  size_t size() const { return Nodes.size(); }
  const std::vector<CfgNode> &nodes() const { return Nodes; }

  /// Creates a node of kind \p Kind and returns its id.
  CfgNodeId addNode(CfgNodeKind Kind, const Stmt *Origin = nullptr);

  /// Adds an edge From -> To of kind \p Kind (updates Preds of To).
  void addEdge(CfgNodeId From, CfgNodeId To,
               CfgEdgeKind Kind = CfgEdgeKind::Fallthrough);

  /// Returns the unique fallthrough successor of \p Id; asserts if there is
  /// not exactly one successor.
  CfgNodeId soleSuccessor(CfgNodeId Id) const;

  /// Returns the successor of branch node \p Id along the \p TakeTrue edge.
  CfgNodeId branchSuccessor(CfgNodeId Id, bool TakeTrue) const;

  /// Short human-readable description of node \p Id (kind + payload).
  std::string nodeLabel(CfgNodeId Id) const;

  void setEntry(CfgNodeId Id) { Entry = Id; }
  void setExit(CfgNodeId Id) { Exit = Id; }

private:
  std::vector<CfgNode> Nodes;
  CfgNodeId Entry = 0;
  CfgNodeId Exit = 0;
};

} // namespace csdf

#endif // CSDF_CFG_CFG_H
