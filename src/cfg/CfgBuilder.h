//===- cfg/CfgBuilder.h - AST -> CFG lowering -------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an MPL AST to a Cfg. `for v = a to b` becomes
/// `v = a; branch(v <= b) { body; v = v + 1; }`; `assert` lowers to Skip
/// (a proof obligation, not a transfer), `if`/`while` become Branch nodes.
///
/// Synthesized expressions (the loop test and increment) are allocated in
/// the Program's arena, so the Program must outlive the Cfg.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_CFG_CFGBUILDER_H
#define CSDF_CFG_CFGBUILDER_H

#include "cfg/Cfg.h"
#include "lang/Ast.h"

namespace csdf {

/// Builds the CFG of \p Prog. \p Prog is mutated only by arena allocation of
/// synthesized loop expressions.
Cfg buildCfg(Program &Prog);

} // namespace csdf

#endif // CSDF_CFG_CFGBUILDER_H
