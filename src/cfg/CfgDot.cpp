//===- cfg/CfgDot.cpp ----------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgDot.h"

#include <sstream>

using namespace csdf;

namespace {

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string csdf::cfgToDot(const Cfg &Graph, const std::string &Name) {
  std::ostringstream OS;
  OS << "digraph " << Name << " {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const CfgNode &N : Graph.nodes()) {
    OS << "  n" << N.Id << " [label=\"" << escape(Graph.nodeLabel(N.Id))
       << "\"";
    if (N.Kind == CfgNodeKind::Entry || N.Kind == CfgNodeKind::Exit)
      OS << ", shape=ellipse";
    else if (N.isCommOp())
      OS << ", style=filled, fillcolor=lightblue";
    OS << "];\n";
  }
  for (const CfgNode &N : Graph.nodes()) {
    for (const CfgEdge &E : N.Succs) {
      OS << "  n" << N.Id << " -> n" << E.Target;
      if (E.Kind == CfgEdgeKind::True)
        OS << " [label=\"T\"]";
      else if (E.Kind == CfgEdgeKind::False)
        OS << " [label=\"F\"]";
      OS << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}
