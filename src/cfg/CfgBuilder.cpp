//===- cfg/CfgBuilder.cpp ----------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"

#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <set>

using namespace csdf;

namespace {

/// A dangling edge waiting for its target node.
struct PendingEdge {
  CfgNodeId From;
  CfgEdgeKind Kind;
};

class Builder {
public:
  explicit Builder(Program &Prog) : Prog(Prog) {}

  Cfg build() {
    CfgNodeId Entry = Graph.addNode(CfgNodeKind::Entry);
    Graph.setEntry(Entry);
    std::vector<PendingEdge> Frontier = {{Entry, CfgEdgeKind::Fallthrough}};
    Frontier = buildStmts(Prog.body(), std::move(Frontier));
    CfgNodeId Exit = Graph.addNode(CfgNodeKind::Exit);
    Graph.setExit(Exit);
    connect(Frontier, Exit);
    return std::move(Graph);
  }

private:
  void connect(const std::vector<PendingEdge> &Frontier, CfgNodeId Target) {
    for (const PendingEdge &E : Frontier)
      Graph.addEdge(E.From, Target, E.Kind);
  }

  std::vector<PendingEdge> buildStmts(const StmtList &Body,
                                      std::vector<PendingEdge> Frontier) {
    for (const Stmt *S : Body)
      Frontier = buildStmt(S, std::move(Frontier));
    return Frontier;
  }

  /// Appends a simple (single-successor) node and rewires the frontier.
  std::vector<PendingEdge> appendSimple(CfgNodeId Node,
                                        std::vector<PendingEdge> Frontier) {
    connect(Frontier, Node);
    return {{Node, CfgEdgeKind::Fallthrough}};
  }

  std::vector<PendingEdge> buildStmt(const Stmt *S,
                                     std::vector<PendingEdge> Frontier) {
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Assign, S);
      Graph.node(Node).Var = A->var();
      Graph.node(Node).Value = A->value();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Send: {
      const auto *Send = cast<SendStmt>(S);
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Send, S);
      Graph.node(Node).Value = Send->value();
      Graph.node(Node).Partner = Send->dest();
      Graph.node(Node).Tag = Send->tag();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Recv: {
      const auto *Recv = cast<RecvStmt>(S);
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Recv, S);
      Graph.node(Node).Var = Recv->var();
      Graph.node(Node).Partner = Recv->src();
      Graph.node(Node).Tag = Recv->tag();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Isend: {
      const auto *Send = cast<IsendStmt>(S);
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Isend, S);
      Graph.node(Node).Value = Send->value();
      Graph.node(Node).Partner = Send->dest();
      Graph.node(Node).Tag = Send->tag();
      Graph.node(Node).Req = Send->req();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Irecv: {
      const auto *Recv = cast<IrecvStmt>(S);
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Irecv, S);
      Graph.node(Node).Var = Recv->var();
      Graph.node(Node).Partner = Recv->src(); // null for `any`
      Graph.node(Node).Tag = Recv->tag();
      Graph.node(Node).Req = Recv->req();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Wait: {
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Wait, S);
      Graph.node(Node).Req = cast<WaitStmt>(S)->req();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Waitall: {
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Waitall, S);
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Print: {
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Print, S);
      Graph.node(Node).Value = cast<PrintStmt>(S)->value();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Assume: {
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Assume, S);
      Graph.node(Node).Cond = cast<AssumeStmt>(S)->cond();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Assert: {
      // Asserts are runtime proof obligations: the interpreter checks
      // them; the static analysis treats them as no-ops (they assert, not
      // assume).
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Assert, S);
      Graph.node(Node).Cond = cast<AssertStmt>(S)->cond();
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Skip: {
      CfgNodeId Node = Graph.addNode(CfgNodeKind::Skip, S);
      return appendSimple(Node, std::move(Frontier));
    }
    case Stmt::Kind::Call: {
      // Pure splicing: a call contributes no node of its own; the callee
      // body is built in place. Sema rejects unknown callees and
      // recursion; if an unchecked AST reaches us anyway, degrade the
      // call to a skip node instead of recursing forever.
      const auto *C = cast<CallStmt>(S);
      const ProcDecl *Callee = Prog.findProc(C->callee());
      if (!Callee || !InlineStack.insert(C->callee()).second) {
        CfgNodeId Node = Graph.addNode(CfgNodeKind::Skip, S);
        return appendSimple(Node, std::move(Frontier));
      }
      Frontier = buildStmts(Callee->Body, std::move(Frontier));
      InlineStack.erase(C->callee());
      return Frontier;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      CfgNodeId Branch = Graph.addNode(CfgNodeKind::Branch, S);
      Graph.node(Branch).Cond = If->cond();
      connect(Frontier, Branch);
      std::vector<PendingEdge> ThenFrontier =
          buildStmts(If->thenBody(), {{Branch, CfgEdgeKind::True}});
      std::vector<PendingEdge> ElseFrontier =
          buildStmts(If->elseBody(), {{Branch, CfgEdgeKind::False}});
      for (const PendingEdge &E : ElseFrontier)
        ThenFrontier.push_back(E);
      return ThenFrontier;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      CfgNodeId Branch = Graph.addNode(CfgNodeKind::Branch, S);
      Graph.node(Branch).Cond = W->cond();
      connect(Frontier, Branch);
      std::vector<PendingEdge> BodyFrontier =
          buildStmts(W->body(), {{Branch, CfgEdgeKind::True}});
      connect(BodyFrontier, Branch);
      return {{Branch, CfgEdgeKind::False}};
    }
    case Stmt::Kind::For: {
      // for v = a to b do BODY end
      //   v = a;
      //   branch (v <= b): true -> BODY; v = v + 1; back to branch
      //                    false -> continue
      const auto *F = cast<ForStmt>(S);
      SourceLoc Loc = F->loc();

      CfgNodeId Init = Graph.addNode(CfgNodeKind::Assign, S);
      Graph.node(Init).Var = F->var();
      Graph.node(Init).Value = F->from();
      connect(Frontier, Init);

      const Expr *VarRef = Prog.makeExpr<VarRefExpr>(F->var(), Loc);
      const Expr *Test =
          Prog.makeExpr<BinaryExpr>(BinaryOp::Le, VarRef, F->to(), Loc);
      CfgNodeId Branch = Graph.addNode(CfgNodeKind::Branch, S);
      Graph.node(Branch).Cond = Test;
      Graph.addEdge(Init, Branch);

      std::vector<PendingEdge> BodyFrontier =
          buildStmts(F->body(), {{Branch, CfgEdgeKind::True}});

      const Expr *One = Prog.makeExpr<IntLitExpr>(1, Loc);
      const Expr *VarRef2 = Prog.makeExpr<VarRefExpr>(F->var(), Loc);
      const Expr *Inc =
          Prog.makeExpr<BinaryExpr>(BinaryOp::Add, VarRef2, One, Loc);
      CfgNodeId Step = Graph.addNode(CfgNodeKind::Assign, S);
      Graph.node(Step).Var = F->var();
      Graph.node(Step).Value = Inc;
      connect(BodyFrontier, Step);
      Graph.addEdge(Step, Branch);

      return {{Branch, CfgEdgeKind::False}};
    }
    }
    csdf_unreachable("unhandled Stmt::Kind");
  }

  Program &Prog;
  Cfg Graph;
  /// Procs currently being inlined, to break cycles on unchecked ASTs.
  std::set<std::string> InlineStack;
};

} // namespace

Cfg csdf::buildCfg(Program &Prog) {
  Builder B(Prog);
  return B.build();
}
