//===- cfg/Cfg.cpp ----------------------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "lang/ExprOps.h"
#include "support/ErrorHandling.h"

using namespace csdf;

const char *csdf::cfgNodeKindName(CfgNodeKind Kind) {
  switch (Kind) {
  case CfgNodeKind::Entry:
    return "entry";
  case CfgNodeKind::Exit:
    return "exit";
  case CfgNodeKind::Assign:
    return "assign";
  case CfgNodeKind::Branch:
    return "branch";
  case CfgNodeKind::Send:
    return "send";
  case CfgNodeKind::Recv:
    return "recv";
  case CfgNodeKind::Isend:
    return "isend";
  case CfgNodeKind::Irecv:
    return "irecv";
  case CfgNodeKind::Wait:
    return "wait";
  case CfgNodeKind::Waitall:
    return "waitall";
  case CfgNodeKind::Print:
    return "print";
  case CfgNodeKind::Assume:
    return "assume";
  case CfgNodeKind::Assert:
    return "assert";
  case CfgNodeKind::Skip:
    return "skip";
  }
  csdf_unreachable("unhandled CfgNodeKind");
}

CfgNodeId Cfg::addNode(CfgNodeKind Kind, const Stmt *Origin) {
  CfgNode Node;
  Node.Id = static_cast<CfgNodeId>(Nodes.size());
  Node.Kind = Kind;
  Node.Origin = Origin;
  if (Origin)
    Node.Loc = Origin->loc();
  Nodes.push_back(std::move(Node));
  return Nodes.back().Id;
}

void Cfg::addEdge(CfgNodeId From, CfgNodeId To, CfgEdgeKind Kind) {
  assert(From < Nodes.size() && To < Nodes.size() && "edge endpoint missing");
  Nodes[From].Succs.push_back({To, Kind});
  Nodes[To].Preds.push_back(From);
}

CfgNodeId Cfg::soleSuccessor(CfgNodeId Id) const {
  const CfgNode &N = node(Id);
  assert(N.Succs.size() == 1 && "node does not have exactly one successor");
  return N.Succs.front().Target;
}

CfgNodeId Cfg::branchSuccessor(CfgNodeId Id, bool TakeTrue) const {
  const CfgNode &N = node(Id);
  assert(N.isBranch() && "branchSuccessor on non-branch node");
  CfgEdgeKind Wanted = TakeTrue ? CfgEdgeKind::True : CfgEdgeKind::False;
  for (const CfgEdge &E : N.Succs)
    if (E.Kind == Wanted)
      return E.Target;
  csdf_unreachable("branch node missing true/false edge");
}

std::string Cfg::nodeLabel(CfgNodeId Id) const {
  const CfgNode &N = node(Id);
  std::string Label = "n" + std::to_string(Id) + ":";
  switch (N.Kind) {
  case CfgNodeKind::Entry:
  case CfgNodeKind::Exit:
  case CfgNodeKind::Skip:
    return Label + cfgNodeKindName(N.Kind);
  case CfgNodeKind::Assign:
    return Label + N.Var + " = " + exprToString(N.Value);
  case CfgNodeKind::Branch:
    return Label + "branch " + exprToString(N.Cond);
  case CfgNodeKind::Send: {
    std::string S = Label + "send " + exprToString(N.Value) + " -> " +
                    exprToString(N.Partner);
    if (N.Tag)
      S += " tag " + exprToString(N.Tag);
    return S;
  }
  case CfgNodeKind::Recv: {
    std::string S = Label + "recv " + N.Var + " <- " +
                    (N.Partner ? exprToString(N.Partner) : "any");
    if (N.Tag)
      S += " tag " + exprToString(N.Tag);
    return S;
  }
  case CfgNodeKind::Isend: {
    std::string S = Label + "isend " + exprToString(N.Value) + " -> " +
                    exprToString(N.Partner);
    if (N.Tag)
      S += " tag " + exprToString(N.Tag);
    return S + " req " + N.Req;
  }
  case CfgNodeKind::Irecv: {
    std::string S = Label + "irecv " + N.Var + " <- " +
                    (N.Partner ? exprToString(N.Partner) : "any");
    if (N.Tag)
      S += " tag " + exprToString(N.Tag);
    return S + " req " + N.Req;
  }
  case CfgNodeKind::Wait:
    return Label + "wait " + N.Req;
  case CfgNodeKind::Waitall:
    return Label + "waitall";
  case CfgNodeKind::Print:
    return Label + "print " + exprToString(N.Value);
  case CfgNodeKind::Assume:
    return Label + "assume " + exprToString(N.Cond);
  case CfgNodeKind::Assert:
    return Label + "assert " + exprToString(N.Cond);
  }
  csdf_unreachable("unhandled CfgNodeKind");
}
