//===- tests/dataflow/SeqAnalysesTest.cpp - Classic dataflow tests -------------===//

#include "dataflow/SeqAnalyses.h"

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

CfgNodeId findNode(const Cfg &Graph, CfgNodeKind Kind, unsigned Skip = 0) {
  for (const CfgNode &N : Graph.nodes())
    if (N.Kind == Kind && Skip-- == 0)
      return N.Id;
  ADD_FAILURE() << "node kind not found";
  return 0;
}

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

TEST(ReachingDefsTest, StraightLineKillsPriorDef) {
  Built B = buildFrom("x = 1; x = 2; print x;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeReachingDefs(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  CfgNodeId SecondDef = findNode(B.Graph, CfgNodeKind::Assign, 1);
  EXPECT_EQ(R.In[Print],
            (std::set<Definition>{{Syms->intern("x"), SecondDef}}));
}

TEST(ReachingDefsTest, BranchMergesBothDefs) {
  Built B = buildFrom("if id == 0 then x = 1; else x = 2; end print x;");
  auto R = computeReachingDefs(B.Graph);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_EQ(R.In[Print].size(), 2u);
}

TEST(ReachingDefsTest, LoopDefReachesItself) {
  Built B = buildFrom("x = 0; while x < 3 do x = x + 1; end");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeReachingDefs(B.Graph, Syms);
  CfgNodeId BodyDef = findNode(B.Graph, CfgNodeKind::Assign, 1);
  // The body's definition reaches its own input (around the loop).
  EXPECT_TRUE(R.In[BodyDef].count({Syms->intern("x"), BodyDef}));
  EXPECT_EQ(R.In[BodyDef].size(), 2u);
}

TEST(ReachingDefsTest, RecvIsADefinition) {
  Built B = buildFrom("recv y <- 0; print y;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeReachingDefs(B.Graph, Syms);
  CfgNodeId Recv = findNode(B.Graph, CfgNodeKind::Recv);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_TRUE(R.In[Print].count({Syms->intern("y"), Recv}));
}

//===----------------------------------------------------------------------===//
// Live variables
//===----------------------------------------------------------------------===//

TEST(LiveVarsTest, DeadAfterLastUse) {
  Built B = buildFrom("x = 1; print x; x = 2;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeLiveVars(B.Graph, Syms);
  CfgNodeId FirstAssign = findNode(B.Graph, CfgNodeKind::Assign, 0);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_TRUE(R.Out[FirstAssign].count(Syms->intern("x")));
  EXPECT_FALSE(
      R.Out[Print].count(Syms->intern("x"))); // Next access redefines.
}

TEST(LiveVarsTest, SendValueAndDestAreUses) {
  Built B = buildFrom("x = 1; d = 2; send x -> d;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeLiveVars(B.Graph, Syms);
  CfgNodeId FirstAssign = findNode(B.Graph, CfgNodeKind::Assign, 0);
  CfgNodeId SecondAssign = findNode(B.Graph, CfgNodeKind::Assign, 1);
  // x is live across both assignments; d only after its own definition
  // (it is redefined before any use).
  EXPECT_TRUE(R.Out[FirstAssign].count(Syms->intern("x")));
  EXPECT_FALSE(R.Out[FirstAssign].count(Syms->intern("d")));
  EXPECT_TRUE(R.Out[SecondAssign].count(Syms->intern("x")));
  EXPECT_TRUE(R.Out[SecondAssign].count(Syms->intern("d")));
}

TEST(LiveVarsTest, BranchConditionIsAUse) {
  Built B = buildFrom("c = 1; if c == 0 then skip; end");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeLiveVars(B.Graph, Syms);
  CfgNodeId Assign = findNode(B.Graph, CfgNodeKind::Assign);
  EXPECT_TRUE(R.Out[Assign].count(Syms->intern("c")));
}

TEST(LiveVarsTest, IdAndNpAreAmbient) {
  Built B = buildFrom("print id + np;");
  auto R = computeLiveVars(B.Graph);
  EXPECT_TRUE(R.In[B.Graph.entryId()].empty());
}

TEST(LiveVarsTest, LoopKeepsCounterLive) {
  Built B = buildFrom("for i = 0 to 3 do print i; end");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeLiveVars(B.Graph, Syms);
  CfgNodeId Branch = findNode(B.Graph, CfgNodeKind::Branch);
  EXPECT_TRUE(R.In[Branch].count(Syms->intern("i")));
}

//===----------------------------------------------------------------------===//
// Sequential constant propagation — and the paper's Figure 2 contrast
//===----------------------------------------------------------------------===//

TEST(SeqConstTest, PropagatesThroughStraightLine) {
  Built B = buildFrom("x = 2; y = x + 3; print y;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_EQ(seqConstantAt(R, *Syms, Print, "y"), 5);
}

TEST(SeqConstTest, MergeOfDifferentConstantsIsNonConst) {
  Built B = buildFrom("if id == 0 then x = 1; else x = 2; end print x;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_FALSE(seqConstantAt(R, *Syms, Print, "x").has_value());
}

TEST(SeqConstTest, MergeOfEqualConstantsSurvives) {
  Built B = buildFrom("if id == 0 then x = 7; else x = 7; end print x;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_EQ(seqConstantAt(R, *Syms, Print, "x"), 7);
}

TEST(SeqConstTest, LoopIncrementIsNonConst) {
  Built B = buildFrom("x = 0; while x < 3 do x = x + 1; end print x;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_FALSE(seqConstantAt(R, *Syms, Print, "x").has_value());
}

TEST(SeqConstTest, InputIsNonConst) {
  Built B = buildFrom("x = input(); print x;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_FALSE(seqConstantAt(R, *Syms, Print, "x").has_value());
}

TEST(SeqConstTest, RecvIsNonConstSequentially) {
  Built B = buildFrom("recv y <- 0; print y;");
  auto Syms = std::make_shared<SymbolTable>();
  auto R = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_FALSE(seqConstantAt(R, *Syms, Print, "y").has_value());
}

TEST(SeqConstTest, Figure2ContrastWithPcfg) {
  // The paper's headline Figure 2 claim: the sequential analysis cannot
  // prove what either process prints (both prints read received values),
  // while the communication-sensitive pCFG analysis proves both print 5.
  Built B = buildFrom(corpus::figure2Exchange());

  auto Syms = std::make_shared<SymbolTable>();
  auto Seq = computeSeqConstants(B.Graph, Syms);
  unsigned SeqProved = 0;
  for (const CfgNode &N : B.Graph.nodes())
    if (N.Kind == CfgNodeKind::Print && seqConstantAt(Seq, *Syms, N.Id, "y"))
      ++SeqProved;
  EXPECT_EQ(SeqProved, 0u) << "sequential constprop should be blind here";

  AnalysisResult Pcfg =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(Pcfg.Converged);
  unsigned PcfgProved = 0;
  for (const PrintFact &F : Pcfg.PrintFacts)
    if (F.Value == 5)
      ++PcfgProved;
  EXPECT_GE(PcfgProved, 2u) << "pCFG analysis must prove both prints";
}

TEST(SeqConstTest, BroadcastContrastWithPcfg) {
  // Same contrast on the fan-out broadcast: receivers' y is NonConst
  // sequentially, but 42 under the pCFG analysis.
  Built B = buildFrom(R"mpl(
if id == 0 then
  x = 42;
  for i = 1 to np - 1 do
    send x -> i;
  end
else
  recv y <- 0;
  print y;
end
)mpl");
  auto Syms = std::make_shared<SymbolTable>();
  auto Seq = computeSeqConstants(B.Graph, Syms);
  CfgNodeId Print = findNode(B.Graph, CfgNodeKind::Print);
  EXPECT_FALSE(seqConstantAt(Seq, *Syms, Print, "y").has_value());

  AnalysisResult Pcfg =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(Pcfg.Converged);
  bool Proved42 = false;
  for (const PrintFact &F : Pcfg.PrintFacts)
    Proved42 |= F.Value == 42;
  EXPECT_TRUE(Proved42);
}

} // namespace
