//===- tests/baseline/MpiCfgTest.cpp - MPI-CFG baseline tests -----------------===//

#include "baseline/MpiCfg.h"

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

TEST(MpiCfgTest, NoCommProgramHasNoEdges) {
  Built B = buildFrom(corpus::noComm());
  MpiCfgResult R = buildMpiCfg(B.Graph);
  EXPECT_EQ(R.InitialEdges, 0u);
  EXPECT_TRUE(R.Edges.empty());
}

TEST(MpiCfgTest, AllPairsBeforePruning) {
  // exchange-with-root: 2 sends x 2 recvs = 4 initial edges.
  Built B = buildFrom(corpus::exchangeWithRoot());
  MpiCfgResult R = buildMpiCfg(B.Graph);
  EXPECT_EQ(R.InitialEdges, 4u);
}

TEST(MpiCfgTest, TagPruningRemovesMismatchedEdge) {
  Built B = buildFrom(corpus::tagMismatch());
  MpiCfgResult R = buildMpiCfg(B.Graph);
  EXPECT_EQ(R.InitialEdges, 1u);
  EXPECT_EQ(R.PrunedByTag, 1u);
  EXPECT_TRUE(R.Edges.empty());
}

TEST(MpiCfgTest, ShiftPruningRemovesImpossibleCompositions) {
  // send -> id+1 against recv <- id+1 can never be the identity.
  Built B = buildFrom("x = 1;\n"
                      "if id == 0 then send x -> id + 1; end\n"
                      "if id == 1 then recv y <- id + 1; end\n"
                      "if id == 2 then recv z <- id - 1; end\n");
  MpiCfgResult R = buildMpiCfg(B.Graph);
  EXPECT_EQ(R.InitialEdges, 2u);
  EXPECT_EQ(R.PrunedByShift, 1u);
  EXPECT_EQ(R.Edges.size(), 1u);
}

TEST(MpiCfgTest, SoundOnCorpus) {
  // The baseline must never miss a dynamically realized pair.
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    Built B = buildFrom(Source);
    MpiCfgResult R = buildMpiCfg(B.Graph);
    RunOptions Opts;
    Opts.NumProcs = 8;
    Opts.Params = {{"nrows", 2}, {"ncols", 4}, {"half", 4}};
    RunResult Run = runProgram(B.Graph, Opts);
    if (!Run.finished())
      continue; // Parameter mismatch for this kernel.
    for (const TraceEvent &E : Run.Trace)
      EXPECT_TRUE(R.Edges.count({E.SendNode, E.RecvNode}))
          << Name << ": missed " << E.SendNode << "->" << E.RecvNode;
  }
}

TEST(MpiCfgTest, LessPreciseThanPcfgOnExchangeWithRoot) {
  // The E8 claim: MPI-CFG keeps spurious edges the pCFG analysis rules
  // out. In exchange-with-root, MPI-CFG cannot rule out the root's send
  // matching the root's own recv path etc.
  Built B = buildFrom(corpus::exchangeWithRoot());
  MpiCfgResult Base = buildMpiCfg(B.Graph);
  AnalysisResult Pcfg =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(Pcfg.Converged);
  EXPECT_GT(Base.Edges.size(), Pcfg.matchedNodePairs().size());
  // And the pCFG result is exactly the dynamic truth.
  RunOptions Opts;
  Opts.NumProcs = 8;
  RunResult Run = runProgram(B.Graph, Opts);
  std::set<std::pair<CfgNodeId, CfgNodeId>> Dynamic;
  for (const TraceEvent &E : Run.Trace)
    Dynamic.insert({E.SendNode, E.RecvNode});
  EXPECT_EQ(Pcfg.matchedNodePairs(), Dynamic);
}

} // namespace
