//===- tests/procset/ProcSetTest.cpp - Symbolic range tests -------------------===//

#include "procset/ProcSet.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

class ProcSetTest : public ::testing::Test {
protected:
  ConstraintGraph G;

  void SetUp() override {
    // A typical analysis context: 2 <= np, i == 2.
    G.addLowerBound("np", 2);
    G.assign("i", LinearExpr(2));
  }
};

TEST_F(ProcSetTest, AllRangeIsNonEmpty) {
  EXPECT_TRUE(ProcRange::all().provablyNonEmpty(G));
  EXPECT_FALSE(ProcRange::all().provablyEmpty(G));
}

TEST_F(ProcSetTest, SingletonIsSingleton) {
  ProcRange R = ProcRange::singleton(LinearExpr(0));
  EXPECT_TRUE(R.provablySingleton(G));
  EXPECT_TRUE(R.provablyNonEmpty(G));
}

TEST_F(ProcSetTest, EmptyWhenUbBelowLb) {
  ProcRange R(LinearExpr(3), LinearExpr(2));
  EXPECT_TRUE(R.provablyEmpty(G));
  EXPECT_FALSE(R.provablyNonEmpty(G));
}

TEST_F(ProcSetTest, SymbolicEmptinessNeedsFacts) {
  // [np .. np-1] is provably empty for any np.
  ProcRange R(LinearExpr("np", 0), LinearExpr("np", -1));
  EXPECT_TRUE(R.provablyEmpty(G));
}

TEST_F(ProcSetTest, UnknownRelationIsNeither) {
  // [a .. b] with nothing known: neither empty nor non-empty provable.
  ProcRange R(LinearExpr("a", 0), LinearExpr("b", 0));
  EXPECT_FALSE(R.provablyEmpty(G));
  EXPECT_FALSE(R.provablyNonEmpty(G));
}

TEST_F(ProcSetTest, AdjacencyThroughConstraintGraph) {
  // [1 .. i-1] and [i .. i] are adjacent because i's value is irrelevant.
  ProcRange A(LinearExpr(1), LinearExpr("i", -1));
  ProcRange B = ProcRange::singleton(LinearExpr("i", 0));
  EXPECT_TRUE(provablyAdjacent(A, B, G));
  EXPECT_FALSE(provablyAdjacent(B, A, G));
}

TEST_F(ProcSetTest, AdjacencyViaConstValue) {
  // i == 2, so [1 .. 1] and [i .. np-1] are adjacent.
  ProcRange A(LinearExpr(1), LinearExpr(1));
  ProcRange B(LinearExpr("i", 0), LinearExpr("np", -1));
  EXPECT_TRUE(provablyAdjacent(A, B, G));
}

TEST_F(ProcSetTest, MergeAdjacent) {
  ProcRange A(LinearExpr(1), LinearExpr("i", -1));
  ProcRange B(LinearExpr("i", 0), LinearExpr("np", -1));
  auto M = tryMerge(A, B, G);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->lb().primary(), LinearExpr(1));
  EXPECT_EQ(M->ub().primary(), LinearExpr("np", -1));
}

TEST_F(ProcSetTest, MergeContained) {
  ProcRange A(LinearExpr(0), LinearExpr("np", -1));
  ProcRange B(LinearExpr(1), LinearExpr(1));
  auto M = tryMerge(A, B, G);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(provablyEqual(*M, A, G));
}

TEST_F(ProcSetTest, MergeFailsForGap) {
  ProcRange A(LinearExpr(0), LinearExpr(0));
  ProcRange B(LinearExpr(5), LinearExpr(9));
  EXPECT_FALSE(tryMerge(A, B, G).has_value());
}

TEST_F(ProcSetTest, ContainsAndDisjoint) {
  ProcRange All = ProcRange::all();
  ProcRange One = ProcRange::singleton(LinearExpr(0));
  ProcRange Rest(LinearExpr(1), LinearExpr("np", -1));
  EXPECT_TRUE(provablyContains(All, One, G));
  EXPECT_TRUE(provablyContains(All, Rest, G));
  EXPECT_FALSE(provablyContains(One, All, G));
  EXPECT_TRUE(provablyDisjoint(One, Rest, G));
  EXPECT_FALSE(provablyDisjoint(All, Rest, G));
}

TEST_F(ProcSetTest, DifferenceSplitsAtFront) {
  // [1..np-1] minus [1..1]: before empty, after [2..np-1]. Needs np >= 3
  // to prove the remainder non-empty; np >= 2 only proves containment, so
  // strengthen.
  G.addLowerBound("np", 3);
  ProcRange R(LinearExpr(1), LinearExpr("np", -1));
  ProcRange M(LinearExpr(1), LinearExpr(1));
  auto D = tryDifference(R, M, G);
  ASSERT_TRUE(D.has_value());
  EXPECT_FALSE(D->Before.has_value());
  ASSERT_TRUE(D->After.has_value());
  EXPECT_EQ(D->After->lb().primary(), LinearExpr(2));
  EXPECT_EQ(D->After->ub().primary(), LinearExpr("np", -1));
}

TEST_F(ProcSetTest, DifferenceKeepsPossiblyEmptyLeftovers) {
  // [0..np-1] minus [i..i] with i == 2 and np >= 2: the 'after' part
  // [3..np-1] is neither provably empty nor provably non-empty. Such
  // leftovers are kept as possibly-empty sets; their emptiness may be
  // discovered later (the paper deletes sets when they are *discovered*
  // to be empty).
  G.addLowerBound("np", 3); // Needed for provable containment of [i..i].
  ProcRange R = ProcRange::all();
  ProcRange M = ProcRange::singleton(LinearExpr("i", 0));
  auto D = tryDifference(R, M, G);
  ASSERT_TRUE(D.has_value());
  ASSERT_TRUE(D->Before.has_value());
  ASSERT_TRUE(D->After.has_value());
  EXPECT_FALSE(D->After->provablyEmpty(G));
  EXPECT_FALSE(D->After->provablyNonEmpty(G));
}

TEST_F(ProcSetTest, DifferenceMiddleWithEnoughFacts) {
  G.addLE("i", "np", -2); // i <= np - 2: after part non-empty... needs i+1 <= np-1.
  ProcRange R = ProcRange::all();
  ProcRange M = ProcRange::singleton(LinearExpr("i", 0));
  auto D = tryDifference(R, M, G);
  ASSERT_TRUE(D.has_value());
  ASSERT_TRUE(D->Before.has_value());
  ASSERT_TRUE(D->After.has_value());
  EXPECT_EQ(D->Before->ub().primary(), LinearExpr("i", -1));
  EXPECT_EQ(D->After->lb().primary(), LinearExpr("i", 1));
}

TEST_F(ProcSetTest, DifferenceNotContainedFails) {
  ProcRange R(LinearExpr(1), LinearExpr(3));
  ProcRange M(LinearExpr(2), LinearExpr(9));
  EXPECT_FALSE(tryDifference(R, M, G).has_value());
}

TEST_F(ProcSetTest, IntersectComparableBounds) {
  ProcRange A(LinearExpr(0), LinearExpr("np", -1));
  ProcRange B(LinearExpr(1), LinearExpr("np", 5));
  auto I = tryIntersect(A, B, G);
  ASSERT_TRUE(I.has_value());
  EXPECT_EQ(I->lb().primary(), LinearExpr(1));
  EXPECT_EQ(I->ub().primary(), LinearExpr("np", -1));
}

TEST_F(ProcSetTest, IntersectIncomparableFails) {
  ProcRange A(LinearExpr("a", 0), LinearExpr(10));
  ProcRange B(LinearExpr("b", 0), LinearExpr(10));
  EXPECT_FALSE(tryIntersect(A, B, G).has_value());
}

TEST_F(ProcSetTest, ShiftedRange) {
  ProcRange R(LinearExpr(1), LinearExpr("np", -1));
  ProcRange S = R.shifted(-1);
  EXPECT_EQ(S.lb().primary(), LinearExpr(0));
  EXPECT_EQ(S.ub().primary(), LinearExpr("np", -2));
}

TEST_F(ProcSetTest, EnrichAddsAliases) {
  SymBound B(LinearExpr("i", 0));
  B.enrich(G); // i == 2 is known.
  EXPECT_NE(std::find(B.forms().begin(), B.forms().end(), LinearExpr(2)),
            B.forms().end());
}

TEST_F(ProcSetTest, WideningKeepsCommonForms) {
  // Figure 5's loop invariant: first pass ub is {1, i} (i == 1 then), the
  // second pass ub is {2, i} (i == 2 now); the common form `i` survives.
  ConstraintGraph G1;
  G1.assign("i", LinearExpr(1));
  ConstraintGraph G2;
  G2.assign("i", LinearExpr(2));
  ProcRange Old(LinearExpr(1), LinearExpr(1));
  ProcRange New(LinearExpr(1), LinearExpr(2));
  // Enriching Old under G1 adds ub form i; New under G2 adds ub form i.
  auto W = widenRange(Old, G1, New, G2);
  ASSERT_TRUE(W.has_value());
  const auto &Forms = W->ub().forms();
  EXPECT_NE(std::find(Forms.begin(), Forms.end(), LinearExpr("i", 0)),
            Forms.end());
}

TEST_F(ProcSetTest, WideningFailsWithoutCommonForm) {
  ConstraintGraph G1;
  G1.assign("i", LinearExpr(1));
  ConstraintGraph G2;
  G2.assign("j", LinearExpr(2));
  ProcRange Old(LinearExpr(1), LinearExpr(1));
  ProcRange New(LinearExpr(1), LinearExpr(2));
  EXPECT_FALSE(widenRange(Old, G1, New, G2).has_value());
}

TEST_F(ProcSetTest, BoundStrFormats) {
  SymBound B(LinearExpr("i", 0));
  B.addForm(LinearExpr(2));
  EXPECT_EQ(B.str(), "{2,i}");
  EXPECT_EQ(ProcRange::all().str(), "[0..np-1]");
}

TEST_F(ProcSetTest, RenameVars) {
  ProcRange R(LinearExpr("i", 0), LinearExpr("np", -1));
  ProcRange S = R.withRenamedVars([](const std::string &V) {
    return "ps0::" + V;
  });
  EXPECT_EQ(S.lb().primary(), LinearExpr("ps0::i", 0));
  EXPECT_EQ(S.ub().primary(), LinearExpr("ps0::np", -1));
}

} // namespace
