//===- tests/diag/DiagnosticsTest.cpp - DiagnosticEngine + renderers -------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "diag/DiagRenderer.h"
#include "diag/DiagnosticEngine.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

Diagnostic diag(const char *Pass, DiagSeverity Sev, unsigned Line,
                unsigned Col, const char *Message) {
  return makeDiag(Pass, Sev, SourceLoc{Line, Col}, Message);
}

//===----------------------------------------------------------------------===//
// Engine: dedup, sort, severity policy, exit codes
//===----------------------------------------------------------------------===//

TEST(DiagnosticEngine, DeduplicatesIdenticalFindings) {
  DiagnosticEngine E;
  EXPECT_TRUE(E.report(diag("dead-store", DiagSeverity::Warning, 3, 1, "x")));
  EXPECT_FALSE(E.report(diag("dead-store", DiagSeverity::Warning, 3, 1, "x")));
  // Different message, rule or location is a distinct finding.
  EXPECT_TRUE(E.report(diag("dead-store", DiagSeverity::Warning, 3, 1, "y")));
  EXPECT_TRUE(E.report(diag("sema", DiagSeverity::Warning, 3, 1, "x")));
  EXPECT_TRUE(E.report(diag("dead-store", DiagSeverity::Warning, 4, 1, "x")));
  EXPECT_EQ(E.size(), 4u);
}

TEST(DiagnosticEngine, SortsByLocationThenRule) {
  DiagnosticEngine E;
  E.report(diag("zz", DiagSeverity::Warning, 9, 1, "late"));
  E.report(diag("bb", DiagSeverity::Warning, 2, 5, "mid"));
  E.report(diag("aa", DiagSeverity::Warning, 2, 5, "mid"));
  E.report(diag("cc", DiagSeverity::Warning, 2, 4, "early"));
  const std::vector<Diagnostic> &D = E.diagnostics();
  ASSERT_EQ(D.size(), 4u);
  EXPECT_EQ(D[0].Pass, "cc");
  EXPECT_EQ(D[1].Pass, "aa");
  EXPECT_EQ(D[2].Pass, "bb");
  EXPECT_EQ(D[3].Pass, "zz");
}

TEST(DiagnosticEngine, SeverityFilterDropsBelowMinimum) {
  DiagnosticEngine E;
  E.report(diag("a", DiagSeverity::Note, 1, 1, "n"));
  E.report(diag("b", DiagSeverity::Warning, 2, 1, "w"));
  E.report(diag("c", DiagSeverity::Error, 3, 1, "e"));
  E.filterBelow(DiagSeverity::Warning);
  EXPECT_EQ(E.size(), 2u);
  E.filterBelow(DiagSeverity::Error);
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E.diagnostics()[0].Pass, "c");
}

TEST(DiagnosticEngine, ExitCodesAndWerror) {
  DiagnosticEngine Clean;
  EXPECT_EQ(Clean.exitCode(), 0);

  // Notes alone never fail a run.
  DiagnosticEngine Notes;
  Notes.report(diag("a", DiagSeverity::Note, 1, 1, "n"));
  EXPECT_EQ(Notes.exitCode(), 0);

  // Warnings are findings (exit 1) even without Werror.
  DiagnosticEngine Warn;
  Warn.report(diag("a", DiagSeverity::Warning, 1, 1, "w"));
  EXPECT_EQ(Warn.exitCode(), 1);
  EXPECT_FALSE(Warn.hasErrors());

  // --min-severity error filters warnings out: exit 0...
  DiagnosticEngine Filtered;
  Filtered.report(diag("a", DiagSeverity::Warning, 1, 1, "w"));
  Filtered.filterBelow(DiagSeverity::Error);
  EXPECT_EQ(Filtered.exitCode(), 0);

  // ...unless --Werror promoted them to errors first.
  DiagnosticEngine Promoted;
  Promoted.report(diag("a", DiagSeverity::Warning, 1, 1, "w"));
  Promoted.promoteWarningsToErrors();
  EXPECT_TRUE(Promoted.hasErrors());
  Promoted.filterBelow(DiagSeverity::Error);
  EXPECT_EQ(Promoted.exitCode(), 1);
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

TEST(DiagRenderer, TextCaretPointsAtColumn) {
  DiagnosticEngine E;
  E.report(diag("dead-store", DiagSeverity::Warning, 2, 3, "value assigned "
                                                           "to 'x' is never "
                                                           "read"));
  std::string Out = renderDiagsText(E.diagnostics(), "t.mpl",
                                    "skip;\n  x = 1;\n");
  EXPECT_NE(Out.find("t.mpl:2:3: warning: value assigned to 'x' is never "
                     "read [dead-store]"),
            std::string::npos);
  EXPECT_NE(Out.find("  x = 1;"), std::string::npos);
  // Caret line: two leading spaces from the renderer + two columns = 4.
  EXPECT_NE(Out.find("\n    ^\n"), std::string::npos);
}

TEST(DiagRenderer, JsonEscapesAndRoundTrips) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  DiagnosticEngine E;
  E.report(diag("sema", DiagSeverity::Error, 1, 2, "bad \"name\""));
  std::string Out = renderDiagsJson(E.diagnostics(), "t.mpl");
  EXPECT_NE(Out.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(Out.find("\"rule\":\"csdf.sema\""), std::string::npos);
  EXPECT_NE(Out.find("\"message\":\"bad \\\"name\\\"\""), std::string::npos);
  EXPECT_NE(Out.find("\"line\":1,\"col\":2"), std::string::npos);
}

TEST(DiagRenderer, SarifHasRequiredShape) {
  DiagnosticEngine E;
  Diagnostic D = diag("partner-bounds", DiagSeverity::Error, 6, 3,
                      "partner out of range");
  D.Related.push_back({SourceLoc{7, 1}, "receive is here"});
  E.report(D);
  E.report(diag("dead-store", DiagSeverity::Warning, 4, 1, "dead"));

  std::string Out = renderDiagsSarif(
      E.diagnostics(), "t.mpl",
      {{"csdf.partner-bounds", "rank out of range"}});

  // SARIF 2.1.0 envelope.
  EXPECT_NE(Out.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(Out.find("sarif-2.1.0.json"), std::string::npos);
  // Driver and rule metadata.
  EXPECT_NE(Out.find("\"name\":\"csdf-lint\""), std::string::npos);
  EXPECT_NE(Out.find("{\"id\":\"csdf.partner-bounds\",\"shortDescription\":"
                     "{\"text\":\"rank out of range\"}}"),
            std::string::npos);
  // Results: ruleId, level, message, physicalLocation with line/column.
  EXPECT_NE(Out.find("\"ruleId\":\"csdf.partner-bounds\""), std::string::npos);
  EXPECT_NE(Out.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(Out.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(
      Out.find("\"physicalLocation\":{\"artifactLocation\":{\"uri\":"
               "\"t.mpl\"},\"region\":{\"startLine\":6,\"startColumn\":3}}"),
      std::string::npos);
  EXPECT_NE(Out.find("\"relatedLocations\""), std::string::npos);
}

} // namespace
