//===- tests/analysis/RequestCheckTest.cpp - Request-lifecycle checker -----===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the request-lifecycle detectors (analysis/RequestCheck):
// buffer-race, request-leak (never-waited and re-post), double-wait and
// wait-uninit, each with a buggy program and its clean twin, plus the
// per-pass --disable gating and the "no requests, no work" fast path.
//
//===----------------------------------------------------------------------===//

#include "analysis/RequestCheck.h"

#include "analysis/Lint.h"
#include "cfg/CfgBuilder.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace csdf;

namespace {

/// Runs just the request-lifecycle checkers and returns the pass names of
/// everything reported, in emission order.
std::vector<std::string> checksOn(const std::string &Source,
                                  LintOptions Opts = LintOptions()) {
  Program P = parseProgramOrDie(Source);
  Cfg Graph = buildCfg(P);
  DiagnosticEngine Diags;
  runRequestChecks(Graph, Opts, Diags);
  std::vector<std::string> Passes;
  for (const Diagnostic &D : Diags.diagnostics())
    Passes.push_back(D.Pass);
  return Passes;
}

bool reports(const std::vector<std::string> &Passes, const char *Pass) {
  for (const std::string &Got : Passes)
    if (Got == Pass)
      return true;
  return false;
}

//===--------------------------------------------------------------------===//
// buffer-race
//===--------------------------------------------------------------------===//

TEST(RequestCheck, ReadOfInFlightIrecvBufferIsARace) {
  std::vector<std::string> Passes = checksOn(R"mpl(
irecv x <- 1 req r;
print x;
wait r;
)mpl");
  EXPECT_TRUE(reports(Passes, "buffer-race"));
}

TEST(RequestCheck, WriteToInFlightIrecvBufferIsARace) {
  std::vector<std::string> Passes = checksOn(R"mpl(
irecv x <- 1 req r;
x = 5;
wait r;
)mpl");
  EXPECT_TRUE(reports(Passes, "buffer-race"));
}

TEST(RequestCheck, BufferUseAfterWaitIsClean) {
  std::vector<std::string> Passes = checksOn(R"mpl(
irecv x <- 1 req r;
wait r;
print x;
x = x + 1;
)mpl");
  EXPECT_FALSE(reports(Passes, "buffer-race"));
}

TEST(RequestCheck, UnrelatedVariableIsNotARace) {
  std::vector<std::string> Passes = checksOn(R"mpl(
irecv x <- 1 req r;
y = 5;
print y;
wait r;
)mpl");
  EXPECT_FALSE(reports(Passes, "buffer-race"));
}

//===--------------------------------------------------------------------===//
// request-leak
//===--------------------------------------------------------------------===//

TEST(RequestCheck, NeverWaitedRequestLeaks) {
  std::vector<std::string> Passes = checksOn(R"mpl(
irecv x <- 1 req r;
print id;
)mpl");
  EXPECT_TRUE(reports(Passes, "request-leak"));
}

TEST(RequestCheck, LeakOnOnePathOnlyIsStillALeak) {
  std::vector<std::string> Passes = checksOn(R"mpl(
isend 1 -> 1 req r;
if id == 0 then
  wait r;
end
)mpl");
  EXPECT_TRUE(reports(Passes, "request-leak"));
}

TEST(RequestCheck, RepostWithoutWaitLeaksTheFirstPosting) {
  std::vector<std::string> Passes = checksOn(R"mpl(
isend 1 -> 1 req r;
isend 2 -> 1 req r;
wait r;
)mpl");
  EXPECT_TRUE(reports(Passes, "request-leak"));
}

TEST(RequestCheck, WaitThenRepostIsClean) {
  std::vector<std::string> Passes = checksOn(R"mpl(
isend 1 -> 1 req r;
wait r;
isend 2 -> 1 req r;
wait r;
)mpl");
  EXPECT_FALSE(reports(Passes, "request-leak"));
}

TEST(RequestCheck, WaitallCompletesEveryRequest) {
  std::vector<std::string> Passes = checksOn(R"mpl(
isend 1 -> 1 req a;
isend 2 -> 2 req b;
waitall;
)mpl");
  EXPECT_FALSE(reports(Passes, "request-leak"));
}

//===--------------------------------------------------------------------===//
// double-wait / wait-uninit
//===--------------------------------------------------------------------===//

TEST(RequestCheck, SecondWaitOnSameRequestIsDoubleWait) {
  std::vector<std::string> Passes = checksOn(R"mpl(
isend 1 -> 1 req r;
wait r;
wait r;
)mpl");
  EXPECT_TRUE(reports(Passes, "double-wait"));
}

TEST(RequestCheck, WaitBeforeAnyPostingIsUninit) {
  std::vector<std::string> Passes = checksOn(R"mpl(
wait r;
irecv x <- 1 req r;
wait r;
)mpl");
  EXPECT_TRUE(reports(Passes, "wait-uninit"));
}

TEST(RequestCheck, WaitPostedOnOnlyOnePathIsUninit) {
  std::vector<std::string> Passes = checksOn(R"mpl(
if id == 0 then
  isend 1 -> 1 req r;
end
wait r;
)mpl");
  EXPECT_TRUE(reports(Passes, "wait-uninit"));
}

TEST(RequestCheck, StraightLinePostWaitIsClean) {
  std::vector<std::string> Passes = checksOn(R"mpl(
isend 1 -> 1 req r;
wait r;
)mpl");
  EXPECT_TRUE(Passes.empty()) << Passes.front();
}

//===--------------------------------------------------------------------===//
// Gating
//===--------------------------------------------------------------------===//

TEST(RequestCheck, DisabledPassesStaySilent) {
  const std::string Buggy = R"mpl(
irecv x <- 1 req r;
print x;
)mpl";
  LintOptions Opts;
  Opts.Disabled = {"buffer-race", "request-leak", "double-wait",
                   "wait-uninit"};
  EXPECT_TRUE(checksOn(Buggy, Opts).empty());

  // Disabling one check must not mute its neighbours.
  LintOptions OnlyRace;
  OnlyRace.Disabled = {"request-leak"};
  std::vector<std::string> Passes = checksOn(Buggy, OnlyRace);
  EXPECT_TRUE(reports(Passes, "buffer-race"));
  EXPECT_FALSE(reports(Passes, "request-leak"));
}

TEST(RequestCheck, ProgramsWithoutRequestsReportNothing) {
  EXPECT_TRUE(checksOn(R"mpl(
send 1 -> 1;
recv x <- 1;
print x;
)mpl").empty());
}

} // namespace
