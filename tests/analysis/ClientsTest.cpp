//===- tests/analysis/ClientsTest.cpp - Client application tests ---------------===//

#include "analysis/Clients.h"

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

bool suggests(const ClientReport &R, const std::string &Collective) {
  for (const CollectiveSuggestion &S : R.Suggestions)
    if (S.Collective.find(Collective) != std::string::npos)
      return true;
  return false;
}

TEST(ClientsTest, MdcaskSuggestsBcastPlusGather) {
  // The paper's introduction: exchange-with-root "can be condensed into
  // two broadcast operations and a gather".
  Built B = buildFrom(corpus::exchangeWithRoot());
  ClientReport R =
      runClients(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Analysis.Converged);
  EXPECT_TRUE(suggests(R, "MPI_Bcast + MPI_Gather"));
}

TEST(ClientsTest, BroadcastSuggestsBcast) {
  Built B = buildFrom(corpus::fanOutBroadcast());
  ClientReport R =
      runClients(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_TRUE(suggests(R, "MPI_Bcast"));
  EXPECT_FALSE(suggests(R, "MPI_Gather"));
}

TEST(ClientsTest, TransposeSuggestsPairwiseAlltoall) {
  Built B = buildFrom(corpus::transposeSquare());
  ClientReport R = runClients(B.Graph, AnalysisOptions::cartesian());
  EXPECT_TRUE(suggests(R, "Alltoall"));
}

TEST(ClientsTest, ShiftSuggestsCartShift) {
  Built B = buildFrom(corpus::neighborShift());
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 6;
  ClientReport R = runClients(B.Graph, Opts);
  EXPECT_TRUE(suggests(R, "Cart_shift"));
}

TEST(ClientsTest, BroadcastValueIsShareable) {
  // After the broadcast, every process holds x == 7: one shared copy
  // suffices (the paper's memory-footprint client).
  Built B = buildFrom(R"mpl(
if id == 0 then
  x = 7;
  for i = 1 to np - 1 do
    send x -> i;
  end
else
  recv x <- 0;
end
)mpl");
  ClientReport R = runClients(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Analysis.Converged);
  bool Found = false;
  for (const auto &[Var, Value] : R.ShareableConstants)
    Found |= Var == "x" && Value == 7;
  EXPECT_TRUE(Found) << "x should be shareable";
}

TEST(ClientsTest, PerProcessValuesAreNotShareable) {
  Built B = buildFrom("x = id * 2;");
  ClientReport R =
      runClients(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Analysis.Converged);
  EXPECT_TRUE(R.ShareableConstants.empty());
}

TEST(ClientsTest, ValueOnOnlySomeProcessesIsNotShareable) {
  // Only the root holds x; receivers hold y. Neither exists everywhere.
  Built B = buildFrom(corpus::fanOutBroadcast());
  ClientReport R =
      runClients(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Analysis.Converged);
  for (const auto &[Var, Value] : R.ShareableConstants)
    ADD_FAILURE() << Var << " wrongly reported shareable (= " << Value
                  << ")";
}

TEST(ClientsTest, NondetValueAgreeingOnAllPathsIsShareable) {
  // The root branches on nondeterministic input (a singleton set may do
  // so exactly); x is 5 in every terminal state on every process.
  Built B = buildFrom(R"mpl(
x = 5;
if id == 0 then
  c = input();
  if c > 0 then
    y = 1;
  else
    y = 2;
  end
end
)mpl");
  ClientReport R =
      runClients(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Analysis.Converged);
  EXPECT_GE(R.Analysis.FinalSnapshots.size(), 2u)
      << "both input outcomes must be terminal states";
  bool Found = false;
  for (const auto &[Var, Value] : R.ShareableConstants) {
    Found |= Var == "x" && Value == 5;
    EXPECT_NE(Var, "y") << "y exists only on the root";
  }
  EXPECT_TRUE(Found);
}

TEST(ClientsTest, DivergentNondetValueIsNotShareable) {
  // On one input path the root's x diverges from everyone else's.
  Built B = buildFrom(R"mpl(
x = 5;
if id == 0 then
  c = input();
  if c > 0 then
    x = 6;
  end
end
)mpl");
  ClientReport R =
      runClients(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Analysis.Converged);
  for (const auto &[Var, Value] : R.ShareableConstants)
    EXPECT_NE(Var, "x") << "x may be 6 on the root (= " << Value << ")";
}

TEST(ClientsTest, TopAnalysisYieldsNoSharingClaims) {
  Built B = buildFrom(corpus::ringShift());
  ClientReport R = runClients(B.Graph, AnalysisOptions::cartesian());
  EXPECT_FALSE(R.Analysis.Converged);
  EXPECT_TRUE(R.ShareableConstants.empty());
}

} // namespace
