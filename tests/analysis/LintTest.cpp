//===- tests/analysis/LintTest.cpp - Lint pass suite tests -----------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

/// Lints \p Source with defaults (minus \p Disabled) and returns the
/// surviving diagnostics.
std::vector<Diagnostic> lint(const std::string &Source,
                             std::set<std::string> Disabled = {}) {
  LintOptions Opts;
  Opts.Disabled = std::move(Disabled);
  DiagnosticEngine Diags;
  lintSource(Source, Opts, Diags);
  return Diags.diagnostics();
}

bool hasPass(const std::vector<Diagnostic> &Diags, const std::string &Pass) {
  for (const Diagnostic &D : Diags)
    if (D.Pass == Pass)
      return true;
  return false;
}

const Diagnostic *findPass(const std::vector<Diagnostic> &Diags,
                           const std::string &Pass) {
  for (const Diagnostic &D : Diags)
    if (D.Pass == Pass)
      return &D;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Individual passes fire with precise locations
//===----------------------------------------------------------------------===//

TEST(Lint, UseBeforeInitFiresOnPartialInit) {
  auto Diags = lint("if id == 0 then\n"
                    "  total = 1;\n"
                    "end\n"
                    "print total;\n");
  const Diagnostic *D = findPass(Diags, "use-before-init");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, 4u);
  EXPECT_EQ(D->Loc.Col, 7u);
  EXPECT_NE(D->Message.find("'total'"), std::string::npos);
}

TEST(Lint, UseBeforeInitQuietOnDominatingInit) {
  EXPECT_FALSE(hasPass(lint("x = 1;\nprint x;\n"), "use-before-init"));
  // A never-assigned variable is an external parameter: sema's territory.
  EXPECT_FALSE(hasPass(lint("print k;\n"), "use-before-init"));
  // A for-loop variable is initialized by the loop header.
  EXPECT_FALSE(hasPass(lint("for i = 1 to 3 do\n  print i;\nend\n"),
                       "use-before-init"));
}

TEST(Lint, DeadStoreFiresOnOverwrittenAndUnused) {
  auto Diags = lint("x = 1;\nx = 2;\nprint x;\nz = 9;\n");
  const Diagnostic *D = findPass(Diags, "dead-store");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, 1u);
  // Both the overwritten store and the never-read store are reported.
  unsigned Count = 0;
  for (const Diagnostic &Each : Diags)
    if (Each.Pass == "dead-store")
      ++Count;
  EXPECT_EQ(Count, 2u);
}

TEST(Lint, DeadStoreQuietWhenValueIsUsedLater) {
  EXPECT_FALSE(hasPass(lint("x = 1;\nsend x -> id + 1;\n"), "dead-store"));
  // The loop variable is read by the loop test: not a dead store.
  EXPECT_FALSE(hasPass(lint("for i = 1 to 3 do\n  skip;\nend\n"),
                       "dead-store"));
}

TEST(Lint, UnreachableCodeAfterInfiniteLoop) {
  auto Diags = lint("x = 0;\nwhile true do\n  x = x + 1;\nend\nprint x;\n");
  const Diagnostic *D = findPass(Diags, "unreachable-code");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, 5u);
}

TEST(Lint, UnreachableCodeInConstantFalseBranch) {
  auto Diags = lint("if false then\n  x = 1;\nend\nskip;\n");
  const Diagnostic *D = findPass(Diags, "unreachable-code");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, 2u);
  // Reachable programs stay quiet.
  EXPECT_FALSE(hasPass(lint("if id == 0 then\n  x = 1;\nend\n"),
                       "unreachable-code"));
}

TEST(Lint, SendToSelfFiresOnProvableSelfPartner) {
  auto Diags = lint("x = 1;\nsend x -> id;\nrecv y <- id + 0;\nprint y;\n");
  unsigned Count = 0;
  for (const Diagnostic &D : Diags)
    if (D.Pass == "send-to-self")
      ++Count;
  EXPECT_EQ(Count, 2u); // Both the send and the recv.
  EXPECT_FALSE(hasPass(lint("x = 1;\nsend x -> id + 1;\n"), "send-to-self"));
}

TEST(Lint, PartnerBoundsProvablyOutside) {
  // np is one past the last valid rank; a negative constant can never be
  // a rank. Both are errors, not warnings.
  auto Diags = lint("x = 1;\nsend x -> np;\nrecv y <- 0 - 1;\n");
  const Diagnostic *D = findPass(Diags, "partner-bounds");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Sev, DiagSeverity::Error);
  unsigned Count = 0;
  for (const Diagnostic &Each : Diags)
    if (Each.Pass == "partner-bounds")
      ++Count;
  EXPECT_EQ(Count, 2u);
}

TEST(Lint, PartnerBoundsQuietWhenPossiblyValid) {
  // id + 1 is out of range only for the last rank — not *provably* out.
  EXPECT_FALSE(hasPass(lint("x = 1;\nsend x -> id + 1;\n"),
                       "partner-bounds"));
  EXPECT_FALSE(hasPass(lint("x = 1;\nsend x -> np - 1;\n"),
                       "partner-bounds"));
}

TEST(Lint, PartnerBoundsUsesFixedNp) {
  // With np pinned to 4, id + 4 is provably >= np.
  LintOptions Opts;
  Opts.Analysis.FixedNp = 4;
  DiagnosticEngine Diags;
  lintSource("x = 1;\nsend x -> id + 4;\n", Opts, Diags);
  EXPECT_TRUE(hasPass(Diags.diagnostics(), "partner-bounds"));
}

TEST(Lint, ConstTagMismatchFiresOnDisjointTags) {
  auto Diags = lint("if id == 0 then\n"
                    "  x = 5;\n"
                    "  send x -> 1 tag 1;\n"
                    "elif id == 1 then\n"
                    "  recv y <- 0 tag 2;\n"
                    "end\n");
  const Diagnostic *D = findPass(Diags, "tag-mismatch-const");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, 3u);
}

TEST(Lint, ConstTagMismatchQuietOnMatchingOrSymbolicTags) {
  EXPECT_FALSE(hasPass(lint("if id == 0 then\n  x = 5;\n"
                            "  send x -> 1 tag 7;\n"
                            "elif id == 1 then\n  recv y <- 0 tag 7;\nend\n"),
                       "tag-mismatch-const"));
  // A symbolic tag on the other side may match anything.
  EXPECT_FALSE(hasPass(lint("t = id;\nif id == 0 then\n  x = 5;\n"
                            "  send x -> 1 tag 1;\n"
                            "elif id == 1 then\n  recv y <- 0 tag t;\nend\n"),
                       "tag-mismatch-const"));
}

TEST(Lint, PcfgBridgeLiftsMessageLeakWithLocation) {
  auto Diags = lint("if id == 0 then\n"
                    "  x = 1;\n"
                    "  send x -> 1;\n"
                    "  send x -> 1;\n"
                    "elif id == 1 then\n"
                    "  recv y <- 0;\n"
                    "end\n");
  const Diagnostic *D = findPass(Diags, "message-leak");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, 4u);
  EXPECT_EQ(D->Loc.Col, 3u);
}

TEST(Lint, FrontEndErrorsBecomeDiagnostics) {
  auto Diags = lint("x = ;\n");
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags[0].Pass, "parse");
  EXPECT_EQ(Diags[0].Sev, DiagSeverity::Error);

  auto SemaDiags = lint("id = 3;\n");
  EXPECT_TRUE(hasPass(SemaDiags, "sema"));
}

//===----------------------------------------------------------------------===//
// Pass control
//===----------------------------------------------------------------------===//

TEST(Lint, EveryPassIsIndividuallyDisableable) {
  const std::string Source = "d = 1;\n"        // dead store (overwritten)
                             "d = 2;\n"
                             "print d;\n"
                             "x = 1;\n"
                             "send x -> np;\n" // partner-bounds
                             "send x -> id;\n" // send-to-self
                             "while true do\n  skip;\nend\n"
                             "print x;\n";     // unreachable
  auto All = lint(Source);
  for (const char *Pass :
       {"dead-store", "partner-bounds", "send-to-self", "unreachable-code"}) {
    SCOPED_TRACE(Pass);
    EXPECT_TRUE(hasPass(All, Pass));
    EXPECT_FALSE(hasPass(lint(Source, {Pass}), Pass));
  }
}

TEST(Lint, DisablingOnePassKeepsTheOthers) {
  const std::string Source = "x = 1;\nsend x -> np;\nsend x -> id;\n";
  auto Diags = lint(Source, {"send-to-self"});
  EXPECT_FALSE(hasPass(Diags, "send-to-self"));
  EXPECT_TRUE(hasPass(Diags, "partner-bounds"));
}

TEST(Lint, RegistryKnowsEveryPass) {
  EXPECT_TRUE(isKnownLintPass("use-before-init"));
  EXPECT_TRUE(isKnownLintPass("message-leak"));
  EXPECT_FALSE(isKnownLintPass("no-such-pass"));
  // At least five lint passes beyond the three pre-existing pCFG bug kinds
  // (plus parse/sema/analysis-top) are registered.
  EXPECT_GE(lintPassRegistry().size(), 11u);
  // Rule descriptions cover every registered pass.
  auto Rules = lintRuleDescriptions();
  for (const LintPassInfo &P : lintPassRegistry())
    EXPECT_EQ(Rules.count("csdf." + P.Name), 1u) << P.Name;
}

} // namespace
