//===- tests/cfg/LoopInfoTest.cpp - Loop analysis tests ------------------------===//

#include "cfg/LoopInfo.h"

#include "cfg/CfgBuilder.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

TEST(LoopInfoTest, StraightLineHasNoLoops) {
  Built B = buildFrom("x = 1; print x;");
  LoopInfo LI(B.Graph);
  EXPECT_TRUE(LI.backEdges().empty());
  EXPECT_TRUE(LI.headers().empty());
  EXPECT_TRUE(LI.loopNodes().empty());
}

TEST(LoopInfoTest, BranchWithoutBackEdgeIsNotALoop) {
  Built B = buildFrom("if id == 0 then x = 1; else x = 2; end");
  LoopInfo LI(B.Graph);
  EXPECT_TRUE(LI.headers().empty());
}

TEST(LoopInfoTest, WhileBodyIsInLoop) {
  Built B = buildFrom("x = 0; while x < 3 do x = x + 1; end print x;");
  LoopInfo LI(B.Graph);
  ASSERT_EQ(LI.backEdges().size(), 1u);
  auto [Tail, Header] = LI.backEdges()[0];
  EXPECT_TRUE(LI.isLoopHeader(Header));
  EXPECT_TRUE(LI.isInLoop(Header));
  EXPECT_TRUE(LI.isInLoop(Tail));
  // Nodes outside: the initial assign and the print.
  for (const CfgNode &N : B.Graph.nodes()) {
    if (N.Kind == CfgNodeKind::Print) {
      EXPECT_FALSE(LI.isInLoop(N.Id));
    }
    if (N.Kind == CfgNodeKind::Entry || N.Kind == CfgNodeKind::Exit) {
      EXPECT_FALSE(LI.isInLoop(N.Id));
    }
  }
}

TEST(LoopInfoTest, ForLoopBodyMembership) {
  Built B = buildFrom("for i = 1 to np - 1 do send 1 -> i; end print 0;");
  LoopInfo LI(B.Graph);
  ASSERT_EQ(LI.headers().size(), 1u);
  for (const CfgNode &N : B.Graph.nodes()) {
    if (N.Kind == CfgNodeKind::Send) {
      EXPECT_TRUE(LI.isInLoop(N.Id)) << "send is in the loop body";
    }
    if (N.Kind == CfgNodeKind::Print) {
      EXPECT_FALSE(LI.isInLoop(N.Id));
    }
  }
}

TEST(LoopInfoTest, NestedLoopsShareOuterBody) {
  Built B = buildFrom(
      "for i = 0 to 3 do for j = 0 to 3 do skip; end end");
  LoopInfo LI(B.Graph);
  EXPECT_EQ(LI.headers().size(), 2u);
  EXPECT_EQ(LI.backEdges().size(), 2u);
  // The inner loop's nodes belong to the outer loop's body too; in
  // particular both headers are loop nodes.
  for (CfgNodeId H : LI.headers())
    EXPECT_TRUE(LI.isInLoop(H));
}

TEST(LoopInfoTest, IfInsideLoopIsInLoop) {
  Built B = buildFrom("x = 0;\n"
                      "while x < 5 do\n"
                      "  if x > 2 then x = x + 2; else x = x + 1; end\n"
                      "end");
  LoopInfo LI(B.Graph);
  unsigned AssignsInLoop = 0;
  for (const CfgNode &N : B.Graph.nodes())
    if (N.Kind == CfgNodeKind::Assign && LI.isInLoop(N.Id))
      ++AssignsInLoop;
  EXPECT_EQ(AssignsInLoop, 2u) << "both if arms are in the loop body";
}

} // namespace
