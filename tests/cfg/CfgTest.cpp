//===- tests/cfg/CfgTest.cpp - CFG construction tests ------------------------===//

#include "cfg/CfgBuilder.h"

#include "cfg/CfgDot.h"
#include "cfg/LoopInfo.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

size_t countKind(const Cfg &Graph, CfgNodeKind Kind) {
  size_t N = 0;
  for (const CfgNode &Node : Graph.nodes())
    if (Node.Kind == Kind)
      ++N;
  return N;
}

TEST(CfgTest, EmptyProgramIsEntryToExit) {
  Built B = buildFrom("");
  EXPECT_EQ(B.Graph.size(), 2u);
  EXPECT_EQ(B.Graph.soleSuccessor(B.Graph.entryId()), B.Graph.exitId());
}

TEST(CfgTest, StraightLineChains) {
  Built B = buildFrom("x = 1; print x;");
  // entry -> assign -> print -> exit
  CfgNodeId N = B.Graph.entryId();
  N = B.Graph.soleSuccessor(N);
  EXPECT_EQ(B.Graph.node(N).Kind, CfgNodeKind::Assign);
  N = B.Graph.soleSuccessor(N);
  EXPECT_EQ(B.Graph.node(N).Kind, CfgNodeKind::Print);
  N = B.Graph.soleSuccessor(N);
  EXPECT_EQ(N, B.Graph.exitId());
}

TEST(CfgTest, IfHasTrueAndFalseEdges) {
  Built B = buildFrom("if id == 0 then x = 1; else x = 2; end print x;");
  CfgNodeId Branch = B.Graph.soleSuccessor(B.Graph.entryId());
  ASSERT_TRUE(B.Graph.node(Branch).isBranch());
  CfgNodeId T = B.Graph.branchSuccessor(Branch, true);
  CfgNodeId F = B.Graph.branchSuccessor(Branch, false);
  EXPECT_NE(T, F);
  EXPECT_EQ(B.Graph.node(T).Kind, CfgNodeKind::Assign);
  EXPECT_EQ(B.Graph.node(F).Kind, CfgNodeKind::Assign);
  // Both arms converge on the print.
  EXPECT_EQ(B.Graph.soleSuccessor(T), B.Graph.soleSuccessor(F));
}

TEST(CfgTest, IfWithoutElseFallsThrough) {
  Built B = buildFrom("if id == 0 then x = 1; end print 0;");
  CfgNodeId Branch = B.Graph.soleSuccessor(B.Graph.entryId());
  CfgNodeId F = B.Graph.branchSuccessor(Branch, false);
  EXPECT_EQ(B.Graph.node(F).Kind, CfgNodeKind::Print);
}

TEST(CfgTest, WhileCreatesBackEdge) {
  Built B = buildFrom("x = 0; while x < 3 do x = x + 1; end");
  LoopInfo LI(B.Graph);
  EXPECT_EQ(LI.backEdges().size(), 1u);
  CfgNodeId Header = LI.backEdges()[0].second;
  EXPECT_TRUE(B.Graph.node(Header).isBranch());
  EXPECT_TRUE(LI.isLoopHeader(Header));
}

TEST(CfgTest, ForLowersToInitTestIncrement) {
  Built B = buildFrom("for i = 1 to np - 1 do skip; end");
  // entry -> assign(i=1) -> branch(i <= np-1) -> [skip -> assign(i=i+1) ->
  // branch] / exit
  CfgNodeId Init = B.Graph.soleSuccessor(B.Graph.entryId());
  ASSERT_EQ(B.Graph.node(Init).Kind, CfgNodeKind::Assign);
  EXPECT_EQ(B.Graph.node(Init).Var, "i");
  CfgNodeId Branch = B.Graph.soleSuccessor(Init);
  ASSERT_TRUE(B.Graph.node(Branch).isBranch());
  CfgNodeId Body = B.Graph.branchSuccessor(Branch, true);
  EXPECT_EQ(B.Graph.node(Body).Kind, CfgNodeKind::Skip);
  CfgNodeId Step = B.Graph.soleSuccessor(Body);
  ASSERT_EQ(B.Graph.node(Step).Kind, CfgNodeKind::Assign);
  EXPECT_EQ(B.Graph.node(Step).Var, "i");
  EXPECT_EQ(B.Graph.soleSuccessor(Step), Branch);
  EXPECT_EQ(B.Graph.branchSuccessor(Branch, false), B.Graph.exitId());
  LoopInfo LI(B.Graph);
  EXPECT_TRUE(LI.isLoopHeader(Branch));
}

TEST(CfgTest, SendRecvNodesCarryPayload) {
  Built B = buildFrom("send 5 -> id + 1 tag 2; recv y <- id - 1;");
  CfgNodeId Send = B.Graph.soleSuccessor(B.Graph.entryId());
  const CfgNode &SN = B.Graph.node(Send);
  ASSERT_EQ(SN.Kind, CfgNodeKind::Send);
  EXPECT_TRUE(SN.isCommOp());
  EXPECT_NE(SN.Value, nullptr);
  EXPECT_NE(SN.Partner, nullptr);
  EXPECT_NE(SN.Tag, nullptr);
  CfgNodeId Recv = B.Graph.soleSuccessor(Send);
  const CfgNode &RN = B.Graph.node(Recv);
  ASSERT_EQ(RN.Kind, CfgNodeKind::Recv);
  EXPECT_EQ(RN.Var, "y");
  EXPECT_EQ(RN.Tag, nullptr);
}

TEST(CfgTest, AssertKeepsConditionForRuntimeChecking) {
  Built B = buildFrom("assert 1 == 1;");
  CfgNodeId N = B.Graph.soleSuccessor(B.Graph.entryId());
  ASSERT_EQ(B.Graph.node(N).Kind, CfgNodeKind::Assert);
  EXPECT_NE(B.Graph.node(N).Cond, nullptr);
}

TEST(CfgTest, AssumeKeepsCondition) {
  Built B = buildFrom("assume np == nrows * nrows;");
  CfgNodeId N = B.Graph.soleSuccessor(B.Graph.entryId());
  ASSERT_EQ(B.Graph.node(N).Kind, CfgNodeKind::Assume);
  EXPECT_NE(B.Graph.node(N).Cond, nullptr);
}

TEST(CfgTest, PredsAreMaintained) {
  Built B = buildFrom("if id == 0 then x = 1; else x = 2; end print x;");
  for (const CfgNode &N : B.Graph.nodes())
    for (const CfgEdge &E : N.Succs) {
      const auto &Preds = B.Graph.node(E.Target).Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), N.Id), Preds.end());
    }
}

TEST(CfgTest, NestedLoopsHaveTwoHeaders) {
  Built B = buildFrom(
      "for i = 0 to 3 do for j = 0 to 3 do skip; end end");
  LoopInfo LI(B.Graph);
  EXPECT_EQ(LI.headers().size(), 2u);
}

TEST(CfgTest, NoCommProgramHasNoCommNodes) {
  Built B = buildFrom(corpus::noComm());
  EXPECT_EQ(countKind(B.Graph, CfgNodeKind::Send), 0u);
  EXPECT_EQ(countKind(B.Graph, CfgNodeKind::Recv), 0u);
}

TEST(CfgTest, CorpusProgramsBuildAndAreConnected) {
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    Built B = buildFrom(Source);
    // Every node except exit must have a successor; every node except
    // entry must be reachable (has preds) or be the exit of empty arms.
    for (const CfgNode &N : B.Graph.nodes()) {
      if (!N.isExit()) {
        EXPECT_FALSE(N.Succs.empty()) << Name << " node " << N.Id;
      }
      if (N.Id != B.Graph.entryId()) {
        EXPECT_FALSE(N.Preds.empty()) << Name << " node " << N.Id;
      }
    }
  }
}

TEST(CfgTest, DotExportMentionsAllNodes) {
  Built B = buildFrom(corpus::figure2Exchange());
  std::string Dot = cfgToDot(B.Graph, "fig2");
  EXPECT_NE(Dot.find("digraph fig2"), std::string::npos);
  for (const CfgNode &N : B.Graph.nodes())
    EXPECT_NE(Dot.find("n" + std::to_string(N.Id) + " "), std::string::npos);
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos);
}

TEST(CfgTest, ExchangeWithRootShape) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  EXPECT_EQ(countKind(B.Graph, CfgNodeKind::Send), 2u);
  EXPECT_EQ(countKind(B.Graph, CfgNodeKind::Recv), 2u);
  LoopInfo LI(B.Graph);
  EXPECT_EQ(LI.headers().size(), 1u);
}

} // namespace
