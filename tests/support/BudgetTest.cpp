//===- tests/support/BudgetTest.cpp - AnalysisBudget unit tests ------------===//

#include "support/Budget.h"
#include "support/ErrorHandling.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace csdf;

namespace {

TEST(BudgetTest, UnlimitedBudgetNeverThrows) {
  AnalysisBudget B;
  B.begin();
  for (int I = 0; I < 10000; ++I)
    B.checkpoint();
  for (int I = 0; I < 10000; ++I)
    B.proverStep();
  EXPECT_EQ(B.proverStepsUsed(), 10000u);
}

TEST(BudgetTest, DeadlineTripsAfterClockSample) {
  AnalysisBudget B;
  B.DeadlineMs = 1;
  B.begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is sampled once per ClockSampleInterval polls, so a single
  // checkpoint may pass; a full interval of polls must trip.
  EXPECT_THROW(
      {
        for (int I = 0; I < 1000; ++I)
          B.checkpoint();
      },
      BudgetExceeded);
  try {
    for (int I = 0; I < 1000; ++I)
      B.checkpoint();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded &E) {
    EXPECT_EQ(E.kind(), BudgetKind::Deadline);
    EXPECT_NE(E.reason().find("deadline"), std::string::npos);
  }
}

TEST(BudgetTest, NotStartedNeverTrips) {
  AnalysisBudget B;
  B.DeadlineMs = 1;
  // begin() was never called: the budget is inert.
  for (int I = 0; I < 1000; ++I)
    B.checkpoint();
  EXPECT_FALSE(B.started());
}

TEST(BudgetTest, MemoryCeilingTripsAtCheckpoint) {
  AnalysisBudget B;
  B.MaxMemoryMb = 1;
  B.begin();
  B.accountBytes(2 * 1024 * 1024);
  // accountBytes itself must not throw (destructors release through it);
  // the ceiling is enforced at the next checkpoint.
  try {
    B.checkpoint();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded &E) {
    EXPECT_EQ(E.kind(), BudgetKind::Memory);
  }
  // Releasing the bytes clears the condition; peak stays.
  B.accountBytes(-2 * 1024 * 1024);
  B.checkpoint();
  EXPECT_EQ(B.liveBytes(), 0u);
  EXPECT_EQ(B.peakBytes(), 2u * 1024 * 1024);
}

TEST(BudgetTest, OverReleaseClampsToZero) {
  AnalysisBudget B;
  B.begin();
  B.accountBytes(64);
  B.accountBytes(-1000);
  EXPECT_EQ(B.liveBytes(), 0u);
  EXPECT_EQ(B.peakBytes(), 64u);
}

TEST(BudgetTest, ProverStepBudgetTrips) {
  AnalysisBudget B;
  B.MaxProverSteps = 10;
  B.begin();
  for (int I = 0; I < 10; ++I)
    B.proverStep();
  try {
    B.proverStep();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded &E) {
    EXPECT_EQ(E.kind(), BudgetKind::ProverSteps);
  }
}

TEST(BudgetTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(currentBudget(), nullptr);
  AnalysisBudget Outer, Inner;
  {
    BudgetScope S1(&Outer);
    EXPECT_EQ(currentBudget(), &Outer);
    {
      BudgetScope S2(&Inner);
      EXPECT_EQ(currentBudget(), &Inner);
    }
    EXPECT_EQ(currentBudget(), &Outer);
  }
  EXPECT_EQ(currentBudget(), nullptr);
  // The inline helpers are no-ops with no scope installed.
  budgetCheckpoint();
  budgetProverStep();
}

TEST(BudgetTest, KindNamesAreStable) {
  EXPECT_STREQ(budgetKindName(BudgetKind::None), "none");
  EXPECT_STREQ(budgetKindName(BudgetKind::States), "states");
  EXPECT_STREQ(budgetKindName(BudgetKind::Variants), "variants");
  EXPECT_STREQ(budgetKindName(BudgetKind::InFlight), "in-flight");
  EXPECT_STREQ(budgetKindName(BudgetKind::ProcSets), "proc-sets");
  EXPECT_STREQ(budgetKindName(BudgetKind::Deadline), "deadline");
  EXPECT_STREQ(budgetKindName(BudgetKind::Memory), "memory");
  EXPECT_STREQ(budgetKindName(BudgetKind::ProverSteps), "prover-steps");
}

TEST(BudgetTest, RecoveryScopeTurnsUnreachableIntoEngineError) {
  EXPECT_FALSE(RecoveryScope::active());
  try {
    RecoveryScope Recover;
    EXPECT_TRUE(RecoveryScope::active());
    csdf_unreachable("deliberate for test");
    FAIL() << "expected EngineError";
  } catch (const EngineError &E) {
    EXPECT_NE(std::string(E.what()).find("deliberate for test"),
              std::string::npos);
    EXPECT_NE(E.line(), 0u);
  }
  EXPECT_FALSE(RecoveryScope::active());
}

} // namespace
