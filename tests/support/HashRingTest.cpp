//===- tests/support/HashRingTest.cpp -------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The consistent-hash ring: determinism, the consistency property (one
// membership change only remaps the keys the changed node owned), load
// spread across virtual replicas, and the failover identity the router
// relies on — a key's first successor is its owner after the owner is
// removed.
//
//===----------------------------------------------------------------------===//

#include "support/HashRing.h"

#include "gtest/gtest.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace csdf;

namespace {

std::vector<std::string> keys(unsigned N) {
  std::vector<std::string> Out;
  Out.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Out.push_back("analyze\nfp" + std::to_string(I) + "\npath" +
                  std::to_string(I % 7) + "\nsource body " +
                  std::to_string(I));
  return Out;
}

TEST(HashRingTest, EmptyRing) {
  HashRing Ring;
  EXPECT_TRUE(Ring.empty());
  EXPECT_EQ(Ring.owner("k"), "");
  EXPECT_TRUE(Ring.successors("k").empty());
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing Ring;
  Ring.addNode("a.sock");
  for (const std::string &K : keys(50))
    EXPECT_EQ(Ring.owner(K), "a.sock");
}

TEST(HashRingTest, AddIsIdempotent) {
  HashRing Ring;
  Ring.addNode("a.sock");
  Ring.addNode("a.sock");
  EXPECT_EQ(Ring.nodeCount(), 1u);
}

TEST(HashRingTest, OwnershipIsDeterministic) {
  HashRing A, B;
  for (const char *N : {"s0", "s1", "s2"}) {
    A.addNode(N);
    B.addNode(N);
  }
  for (const std::string &K : keys(200))
    EXPECT_EQ(A.owner(K), B.owner(K));
}

TEST(HashRingTest, SuccessorsCoverEveryNodeOnceOwnerFirst) {
  HashRing Ring;
  for (const char *N : {"s0", "s1", "s2", "s3"})
    Ring.addNode(N);
  for (const std::string &K : keys(100)) {
    std::vector<std::string> Order = Ring.successors(K);
    ASSERT_EQ(Order.size(), 4u);
    EXPECT_EQ(Order.front(), Ring.owner(K));
    std::set<std::string> Distinct(Order.begin(), Order.end());
    EXPECT_EQ(Distinct.size(), 4u);
  }
}

TEST(HashRingTest, RemovingOneNodeOnlyRemapsItsKeys) {
  HashRing Before;
  for (const char *N : {"s0", "s1", "s2", "s3", "s4"})
    Before.addNode(N);
  HashRing After = Before;
  After.removeNode("s2");

  for (const std::string &K : keys(500)) {
    std::string Old = Before.owner(K);
    std::string New = After.owner(K);
    if (Old != "s2") {
      // The consistency property: untouched nodes keep their keys.
      EXPECT_EQ(New, Old) << K;
    } else {
      // Orphaned keys land exactly on the old ring's first successor —
      // the identity the router's failover order depends on.
      EXPECT_EQ(New, Before.successors(K)[1]) << K;
    }
  }
}

TEST(HashRingTest, VirtualReplicasSpreadLoad) {
  HashRing Ring(64);
  const unsigned NNodes = 4, NKeys = 4000;
  for (unsigned N = 0; N < NNodes; ++N)
    Ring.addNode("shard" + std::to_string(N) + ".sock");
  std::map<std::string, unsigned> Load;
  for (const std::string &K : keys(NKeys))
    ++Load[Ring.owner(K)];
  ASSERT_EQ(Load.size(), NNodes);
  for (const auto &[Node, Count] : Load) {
    // Perfect balance is NKeys/NNodes = 1000; with 64 replicas the
    // imbalance is O(1/sqrt(64)) — a generous 2x band never flakes while
    // still catching a broken placement (which lands everything on one
    // node).
    EXPECT_GT(Count, NKeys / NNodes / 2) << Node;
    EXPECT_LT(Count, NKeys / NNodes * 2) << Node;
  }
}

TEST(HashRingTest, ZeroReplicasClampsToOne) {
  HashRing Ring(0);
  Ring.addNode("only");
  EXPECT_EQ(Ring.owner("k"), "only");
}

} // namespace
