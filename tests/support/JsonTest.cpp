//===- tests/support/JsonTest.cpp - serve-protocol JSON reader tests -------===//
//
// The `csdf serve` request parser: value model, round-trips through str(),
// and loud failures on everything malformed (the daemon must answer every
// bad line with an error response, never crash or mis-read).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Text, V, Error)) << Text << ": " << Error;
  return V;
}

std::string parseErr(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(parseJson(Text, V, Error)) << Text;
  EXPECT_FALSE(Error.empty()) << Text;
  return Error;
}

TEST(JsonTest, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool());
  EXPECT_EQ(parseOk("42").asInt(), 42);
  EXPECT_EQ(parseOk("-7").asInt(), -7);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
  EXPECT_DOUBLE_EQ(parseOk("2.5").asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(parseOk("1e3").asDouble(), 1000.0);
}

TEST(JsonTest, IntegralNumbersStayExact) {
  // Option fields (deadline_ms etc.) must round-trip as int64, not double.
  JsonValue V = parseOk("9007199254740993"); // 2^53 + 1: not double-exact.
  ASSERT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), 9007199254740993LL);
  // A fractional or exponent form parses as double.
  EXPECT_TRUE(parseOk("1.0").isDouble());
  EXPECT_TRUE(parseOk("1e2").isDouble());
}

TEST(JsonTest, ContainersAndAccess) {
  JsonValue V = parseOk(
      "{\"id\": 3, \"type\": \"analyze\", \"disable\": [\"a\", \"b\"], "
      "\"options\": {\"deadline_ms\": 500}}");
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.get("id")->asInt(), 3);
  EXPECT_EQ(V.get("type")->asString(), "analyze");
  ASSERT_TRUE(V.get("disable")->isArray());
  EXPECT_EQ(V.get("disable")->asArray().size(), 2u);
  EXPECT_EQ(V.get("disable")->asArray()[1].asString(), "b");
  EXPECT_EQ(V.get("options")->get("deadline_ms")->asInt(), 500);
  EXPECT_EQ(V.get("missing"), nullptr);
  EXPECT_EQ(V.get("id")->get("not-an-object"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(parseOk("\"a\\\"b\"").asString(), "a\"b");
  EXPECT_EQ(parseOk("\"a\\\\b\"").asString(), "a\\b");
  EXPECT_EQ(parseOk("\"a\\nb\\tc\"").asString(), "a\nb\tc");
  EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
  // Non-ASCII escapes come out as UTF-8.
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
  EXPECT_EQ(parseOk("\"\\u20ac\"").asString(), "\xe2\x82\xac");
}

TEST(JsonTest, StrRoundTripsStable) {
  // str() re-serializes compactly with sorted object keys, so a value
  // survives a parse -> str -> parse cycle unchanged.
  const char *Texts[] = {
      "null", "true", "-12", "\"x\\ny\"", "[1, 2, [3]]",
      "{\"a\": 1, \"b\": [true, null], \"c\": {\"d\": \"e\"}}"};
  for (const char *Text : Texts) {
    JsonValue V1 = parseOk(Text);
    JsonValue V2 = parseOk(V1.str());
    EXPECT_EQ(V1.str(), V2.str()) << Text;
  }
  // Keys sort regardless of input order.
  EXPECT_EQ(parseOk("{\"b\": 1, \"a\": 2}").str(), "{\"a\":2,\"b\":1}");
}

TEST(JsonTest, MalformedInputsFailWithPosition) {
  parseErr("");
  parseErr("{");
  parseErr("[1, 2");
  parseErr("{\"a\": }");
  parseErr("{\"a\" 1}");
  parseErr("{'a': 1}");
  parseErr("tru");
  parseErr("\"unterminated");
  parseErr("\"bad \\q escape\"");
  parseErr("nan");
  // Trailing garbage after a complete value is an error, not ignored.
  parseErr("{} {}");
  parseErr("1,");
}

TEST(JsonTest, DeepNestingIsBounded) {
  // The parser must reject pathological nesting instead of overflowing
  // the stack — serve reads attacker-shaped lines from a socket.
  std::string Deep(100000, '[');
  Deep += std::string(100000, ']');
  parseErr(Deep);
}

TEST(JsonTest, WhitespaceTolerance) {
  JsonValue V = parseOk("  { \"a\" :\t[ 1 ,\n 2 ] }  ");
  EXPECT_EQ(V.get("a")->asArray().size(), 2u);
}

} // namespace
