//===- tests/support/StatsTest.cpp - Stats registry tests ----------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>
#include <thread>

using namespace csdf;

namespace {

TEST(StatsTest, CountersStartAtZero) {
  StatsRegistry R;
  EXPECT_EQ(R.counter("nope"), 0);
  EXPECT_EQ(R.seconds("nope"), 0.0);
}

TEST(StatsTest, CountersAccumulate) {
  StatsRegistry R;
  R.addCounter("a");
  R.addCounter("a", 4);
  R.addCounter("b", -2);
  EXPECT_EQ(R.counter("a"), 5);
  EXPECT_EQ(R.counter("b"), -2);
}

TEST(StatsTest, TimersAccumulate) {
  StatsRegistry R;
  R.addSeconds("t", 0.5);
  R.addSeconds("t", 0.25);
  EXPECT_DOUBLE_EQ(R.seconds("t"), 0.75);
}

TEST(StatsTest, ClearResets) {
  StatsRegistry R;
  R.addCounter("a", 3);
  R.addSeconds("t", 1.0);
  R.clear();
  EXPECT_EQ(R.counter("a"), 0);
  EXPECT_EQ(R.seconds("t"), 0.0);
  EXPECT_TRUE(R.counters().empty());
}

TEST(StatsTest, ScopedTimerRecordsNonNegativeTime) {
  StatsRegistry R;
  {
    ScopedTimer T(R, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(R.seconds("scope"), 0.0);
}

TEST(StatsTest, GlobalRegistryIsSingleton) {
  StatsRegistry &A = StatsRegistry::global();
  StatsRegistry &B = StatsRegistry::global();
  EXPECT_EQ(&A, &B);
}

} // namespace
