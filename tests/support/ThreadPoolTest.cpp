//===- tests/support/ThreadPoolTest.cpp - Worker pool tests ----------------===//
//
// The shared worker pool under both parallel layers (the engine's
// speculative step tasks and batch threads mode). The contract under test:
// every submitted task runs exactly once, results and exceptions flow
// through futures, a slow task on one shard cannot starve the others
// (work stealing), and destruction joins running tasks.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace csdf;

namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);

  constexpr int N = 500;
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Done;
  Done.reserve(N);
  for (int I = 0; I < N; ++I)
    Done.push_back(Pool.submit([&Ran] { Ran.fetch_add(1); }));
  for (auto &F : Done)
    F.get();
  EXPECT_EQ(Ran.load(), N);
}

TEST(ThreadPoolTest, SubmitReturnsValuesThroughFutures) {
  ThreadPool Pool(3);
  std::vector<std::future<int>> Results;
  for (int I = 0; I < 64; ++I)
    Results.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Results[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool Pool(2);
  std::future<int> F =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(F.get(), std::runtime_error);

  // The pool survives a throwing task: later work still runs.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SlowTaskDoesNotStarveOtherShards) {
  // Round-robin submission puts the blocker on one shard; the fast tasks
  // behind it must be stolen by the other workers while it holds its
  // worker. Release the blocker only after every fast task finished, so
  // the test deadlocks (and times out) if stealing is broken.
  ThreadPool Pool(4);
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  std::future<void> Blocked = Pool.submit([Gate] { Gate.wait(); });

  constexpr int N = 100;
  std::atomic<int> Fast{0};
  std::vector<std::future<void>> Done;
  for (int I = 0; I < N; ++I)
    Done.push_back(Pool.submit([&Fast] { Fast.fetch_add(1); }));
  for (auto &F : Done)
    F.get();
  EXPECT_EQ(Fast.load(), N);

  Release.set_value();
  Blocked.get();
}

TEST(ThreadPoolTest, ConcurrentSubmittersAreSafe) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  constexpr int PerThread = 200;

  std::vector<std::thread> Submitters;
  std::vector<std::vector<std::future<void>>> Futures(4);
  for (int T = 0; T < 4; ++T)
    Submitters.emplace_back([&Pool, &Ran, &Futures, T] {
      for (int I = 0; I < PerThread; ++I)
        Futures[static_cast<size_t>(T)].push_back(
            Pool.submit([&Ran] { Ran.fetch_add(1); }));
    });
  for (auto &T : Submitters)
    T.join();
  for (auto &Fs : Futures)
    for (auto &F : Fs)
      F.get();
  EXPECT_EQ(Ran.load(), 4 * PerThread);
}

TEST(ThreadPoolTest, DestructorJoinsRunningTasks) {
  std::atomic<bool> Finished{false};
  {
    ThreadPool Pool(2);
    Pool.run([&Finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      Finished.store(true);
    });
    // Give the worker time to dequeue it so it counts as "running".
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ~ThreadPool waits for running tasks; the store must be visible now.
  EXPECT_TRUE(Finished.load());
}

TEST(ThreadPoolTest, SingleWorkerPoolStillDrains) {
  ThreadPool Pool(1);
  int Sum = 0;
  std::vector<std::future<void>> Done;
  for (int I = 1; I <= 10; ++I)
    Done.push_back(Pool.submit([&Sum, I] { Sum += I; }));
  for (auto &F : Done)
    F.get();
  EXPECT_EQ(Sum, 55);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

} // namespace
