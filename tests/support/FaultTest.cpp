//===- tests/support/FaultTest.cpp - fault injector tests ------------------===//
//
// Spec parsing, firing semantics (always / Nth hit / Nth-and-after), env
// configuration, and loud rejection of unknown sites. The injector is a
// process-wide singleton, so every test disarms it on the way out.
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace csdf;

namespace {

/// Disarms the global injector when a test scope ends, so fault state
/// never leaks into later tests in the same binary.
struct Disarm {
  ~Disarm() {
    std::string Error;
    FaultInjector::global().configure("", Error);
  }
};

TEST(FaultTest, UnconfiguredSitesNeverFire) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  EXPECT_FALSE(F.armed());
  EXPECT_FALSE(F.shouldFail("store-write-fail"));
  EXPECT_EQ(F.firedCount(), 0u);
}

TEST(FaultTest, BareSiteFiresEveryHit) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  std::string Error;
  ASSERT_TRUE(F.configure("store-write-fail", Error)) << Error;
  EXPECT_TRUE(F.armed());
  EXPECT_TRUE(F.shouldFail("store-write-fail"));
  EXPECT_TRUE(F.shouldFail("store-write-fail"));
  // Other sites stay dormant.
  EXPECT_FALSE(F.shouldFail("store-corrupt"));
  EXPECT_EQ(F.firedCount(), 2u);
}

TEST(FaultTest, NthHitFiresExactlyOnce) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  std::string Error;
  ASSERT_TRUE(F.configure("store-read-fail:3", Error)) << Error;
  EXPECT_FALSE(F.shouldFail("store-read-fail"));
  EXPECT_FALSE(F.shouldFail("store-read-fail"));
  EXPECT_TRUE(F.shouldFail("store-read-fail"));
  EXPECT_FALSE(F.shouldFail("store-read-fail"));
  EXPECT_EQ(F.firedCount(), 1u);
}

TEST(FaultTest, NthPlusFiresFromThereOn) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  std::string Error;
  ASSERT_TRUE(F.configure("store-write-fail:2+", Error)) << Error;
  EXPECT_FALSE(F.shouldFail("store-write-fail"));
  EXPECT_TRUE(F.shouldFail("store-write-fail"));
  EXPECT_TRUE(F.shouldFail("store-write-fail"));
}

TEST(FaultTest, MultipleSitesParseTogether) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  std::string Error;
  ASSERT_TRUE(
      F.configure("store-write-fail:1,store-corrupt,store-read-fail:2+",
                  Error))
      << Error;
  EXPECT_TRUE(F.shouldFail("store-write-fail"));
  EXPECT_FALSE(F.shouldFail("store-write-fail"));
  EXPECT_TRUE(F.shouldFail("store-corrupt"));
}

TEST(FaultTest, BadSpecsAreLoudErrors) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  std::string Error;
  EXPECT_FALSE(F.configure("no-such-site", Error));
  EXPECT_NE(Error.find("unknown fault site"), std::string::npos) << Error;
  EXPECT_FALSE(F.configure("store-write-fail:zero", Error));
  EXPECT_FALSE(F.configure("store-write-fail:0", Error));
  // A failed configure leaves the injector disarmed, never half-armed.
  EXPECT_FALSE(F.armed());
}

TEST(FaultTest, ReconfigureResetsCountersAndArms) {
  Disarm D;
  FaultInjector &F = FaultInjector::global();
  std::string Error;
  ASSERT_TRUE(F.configure("store-corrupt:1", Error));
  EXPECT_TRUE(F.shouldFail("store-corrupt"));
  ASSERT_TRUE(F.configure("store-corrupt:1", Error));
  EXPECT_EQ(F.firedCount(), 0u);
  EXPECT_TRUE(F.shouldFail("store-corrupt")); // hit counter restarted
  ASSERT_TRUE(F.configure("", Error));
  EXPECT_FALSE(F.armed());
}

TEST(FaultTest, EnvConfigurationIsHonored) {
  Disarm D;
  ::setenv("CSDF_FAULT", "store-write-fail:1", 1);
  std::string Error;
  EXPECT_TRUE(FaultInjector::global().configureFromEnv(Error)) << Error;
  EXPECT_TRUE(FaultInjector::global().shouldFail("store-write-fail"));
  ::setenv("CSDF_FAULT", "bogus-site", 1);
  EXPECT_FALSE(FaultInjector::global().configureFromEnv(Error));
  ::unsetenv("CSDF_FAULT");
  // Unset env: configureFromEnv is a no-op success.
  EXPECT_TRUE(FaultInjector::global().configureFromEnv(Error));
}

TEST(FaultTest, CatalogNamesAreUniqueAndDescribed) {
  const auto &Sites = FaultInjector::knownSites();
  ASSERT_GE(Sites.size(), 6u);
  for (size_t I = 0; I < Sites.size(); ++I) {
    EXPECT_TRUE(FaultInjector::isKnownSite(Sites[I].Name));
    EXPECT_NE(Sites[I].Description[0], '\0');
    for (size_t J = I + 1; J < Sites.size(); ++J)
      EXPECT_STRNE(Sites[I].Name, Sites[J].Name);
  }
}

} // namespace
