//===- tests/support/StoreTest.cpp - on-disk result store tests ------------===//
//
// DiskStore invariants: round-trip, atomic temp+rename writes (crash
// debris cleaned on open), torn/corrupted/short records detected by the
// framing and quarantined — never served, hash-collision safety via full
// key comparison, byte-budget eviction in LRU order, and the fault
// injection sites that make the recovery paths testable on purpose.
//
//===----------------------------------------------------------------------===//

#include "support/Store.h"

#include "support/Fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

/// A unique store directory per test, removed on scope exit, plus a
/// fault-injector disarm so no site leaks into later tests.
struct StoreDir {
  fs::path Dir;
  StoreDir() {
    Dir = fs::temp_directory_path() /
          ("csdf-store-test-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(Dir);
  }
  ~StoreDir() {
    fs::remove_all(Dir);
    std::string Error;
    FaultInjector::global().configure("", Error);
  }
  DiskStoreOptions options(std::uint64_t MaxBytes = 0) const {
    DiskStoreOptions Opts;
    Opts.Dir = Dir.string();
    Opts.MaxBytes = MaxBytes;
    Opts.Namespace = "test";
    return Opts;
  }
};

/// The single .rec file in \p Dir (asserts there is exactly one).
fs::path onlyRecord(const fs::path &Dir) {
  fs::path Found;
  int Count = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".rec") {
      Found = E.path();
      ++Count;
    }
  EXPECT_EQ(Count, 1);
  return Found;
}

TEST(StoreTest, RoundTripAndStats) {
  StoreDir T;
  DiskStore Store(T.options());
  std::string Error;
  ASSERT_TRUE(Store.open(Error)) << Error;

  EXPECT_FALSE(Store.get("missing").has_value());
  ASSERT_TRUE(Store.put("key-a", "payload-a"));
  ASSERT_TRUE(Store.put("key-b", std::string(4096, 'b')));
  EXPECT_EQ(Store.entryCount(), 2u);
  EXPECT_GT(Store.liveBytes(), 4096u);

  auto A = Store.get("key-a");
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(*A, "payload-a");
  auto B = Store.get("key-b");
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->size(), 4096u);

  EXPECT_EQ(Store.stats().Writes, 2u);
  EXPECT_EQ(Store.stats().Hits, 2u);
  EXPECT_EQ(Store.stats().Misses, 1u);
  EXPECT_EQ(Store.stats().Quarantined, 0u);

  // Overwrite replaces the payload.
  ASSERT_TRUE(Store.put("key-a", "payload-a2"));
  EXPECT_EQ(*Store.get("key-a"), "payload-a2");
}

TEST(StoreTest, SurvivesReopenWithSameBytes) {
  StoreDir T;
  std::string Error;
  {
    DiskStore Store(T.options());
    ASSERT_TRUE(Store.open(Error)) << Error;
    ASSERT_TRUE(Store.put("key", "the exact bytes\n\x01\x02"));
    Store.sync();
  }
  DiskStore Reopened(T.options());
  ASSERT_TRUE(Reopened.open(Error)) << Error;
  EXPECT_EQ(Reopened.entryCount(), 1u);
  auto V = Reopened.get("key");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, "the exact bytes\n\x01\x02");
}

TEST(StoreTest, NamespaceSaltsTheKeySpace) {
  // Records written under one namespace (tool version) never answer for
  // another: the file name hash diverges, so the lookup plain-misses.
  StoreDir T;
  std::string Error;
  DiskStoreOptions V1 = T.options();
  V1.Namespace = "1.0.0";
  {
    DiskStore Store(V1);
    ASSERT_TRUE(Store.open(Error)) << Error;
    ASSERT_TRUE(Store.put("key", "old-build-bytes"));
  }
  DiskStoreOptions V2 = T.options();
  V2.Namespace = "2.0.0";
  DiskStore Store(V2);
  ASSERT_TRUE(Store.open(Error)) << Error;
  EXPECT_FALSE(Store.get("key").has_value());
}

TEST(StoreTest, CorruptedRecordIsQuarantinedNeverServed) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(Store.put("key", "precious bytes"));

  // Flip one byte in the middle of the record on disk.
  fs::path Rec = onlyRecord(T.Dir);
  {
    std::ifstream In(Rec, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    Bytes[Bytes.size() / 2] ^= 0x20;
    std::ofstream(Rec, std::ios::binary | std::ios::trunc) << Bytes;
  }

  EXPECT_FALSE(Store.get("key").has_value());
  EXPECT_EQ(Store.stats().Quarantined, 1u);
  EXPECT_EQ(Store.entryCount(), 0u);
  // The damaged bytes moved to quarantine/ for postmortems.
  EXPECT_TRUE(fs::exists(T.Dir / "quarantine" / Rec.filename()));
  EXPECT_FALSE(fs::exists(Rec));
  // A fresh put repairs the entry.
  ASSERT_TRUE(Store.put("key", "precious bytes"));
  EXPECT_EQ(*Store.get("key"), "precious bytes");
}

TEST(StoreTest, TruncatedRecordIsQuarantined) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(Store.put("key", std::string(1000, 'x')));
  fs::path Rec = onlyRecord(T.Dir);
  fs::resize_file(Rec, fs::file_size(Rec) / 2);
  EXPECT_FALSE(Store.get("key").has_value());
  EXPECT_EQ(Store.stats().Quarantined, 1u);
}

TEST(StoreTest, WrongKeyRecordDegradesToMissNotWrongBytes) {
  // Simulate a file-name hash collision: hand-place another key's record
  // at this key's path. The full-key comparison must reject it.
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(Store.put("key-one", "bytes-one"));
  fs::path Rec = onlyRecord(T.Dir);

  DiskStoreOptions Other = T.options();
  Other.Dir = (T.Dir / "other").string();
  DiskStore OtherStore(Other);
  ASSERT_TRUE(OtherStore.open(Error)) << Error;
  ASSERT_TRUE(OtherStore.put("key-two", "bytes-two"));
  fs::copy_file(onlyRecord(Other.Dir), Rec,
                fs::copy_options::overwrite_existing);

  EXPECT_FALSE(Store.get("key-one").has_value());
  EXPECT_EQ(Store.stats().Quarantined, 1u);
}

TEST(StoreTest, StaleTempFilesAreCleanedOnOpen) {
  StoreDir T;
  std::string Error;
  fs::create_directories(T.Dir);
  std::ofstream(T.Dir / "e-0000000000000000.rec.tmp.1234")
      << "half a record from a dead writer";
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  EXPECT_EQ(Store.stats().TempsCleaned, 1u);
  EXPECT_FALSE(fs::exists(T.Dir / "e-0000000000000000.rec.tmp.1234"));
  EXPECT_EQ(Store.entryCount(), 0u);
}

TEST(StoreTest, EvictionSweepsOldestFirstUnderBudget) {
  StoreDir T;
  std::string Error;
  // Budget for roughly four of the ~1 KB records below.
  DiskStore Store(T.options(/*MaxBytes=*/4300));
  ASSERT_TRUE(Store.open(Error)) << Error;
  std::string Payload(1000, 'p');
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(Store.put("key-" + std::to_string(I), Payload));
    // mtime granularity: ensure a strict LRU order between records.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_EQ(Store.stats().Evictions, 0u);
  ASSERT_TRUE(Store.put("key-4", Payload));
  EXPECT_GT(Store.stats().Evictions, 0u);
  EXPECT_LE(Store.liveBytes(), 4300u);
  // The newest record survived; the oldest went first.
  EXPECT_TRUE(Store.get("key-4").has_value());
  EXPECT_FALSE(Store.get("key-0").has_value());
}

TEST(StoreTest, InjectedWriteFaultFailsCleanly) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(
      FaultInjector::global().configure("store-write-fail:1", Error))
      << Error;
  EXPECT_FALSE(Store.put("key", "bytes"));
  EXPECT_EQ(Store.stats().WriteFailures, 1u);
  EXPECT_EQ(Store.entryCount(), 0u);
  // The next write (fault spent) succeeds and the store is intact.
  EXPECT_TRUE(Store.put("key", "bytes"));
  EXPECT_EQ(*Store.get("key"), "bytes");
}

TEST(StoreTest, InjectedShortWriteIsCaughtOnRead) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(
      FaultInjector::global().configure("store-short-write:1", Error));
  EXPECT_TRUE(Store.put("key", std::string(500, 'y'))); // "succeeded"
  EXPECT_FALSE(Store.get("key").has_value());
  EXPECT_EQ(Store.stats().Quarantined, 1u);
}

TEST(StoreTest, InjectedTornWriteIsCaughtOnRead) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(
      FaultInjector::global().configure("store-torn-write:1", Error));
  EXPECT_TRUE(Store.put("key", std::string(500, 'z')));
  EXPECT_FALSE(Store.get("key").has_value());
  EXPECT_EQ(Store.stats().Quarantined, 1u);
}

TEST(StoreTest, InjectedCorruptionIsCaughtByChecksum) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(FaultInjector::global().configure("store-corrupt:1", Error));
  EXPECT_TRUE(Store.put("key", "bytes that will be flipped"));
  EXPECT_FALSE(Store.get("key").has_value());
  EXPECT_EQ(Store.stats().Quarantined, 1u);
}

TEST(StoreTest, InjectedReadFaultIsAMissNotAServe) {
  StoreDir T;
  std::string Error;
  DiskStore Store(T.options());
  ASSERT_TRUE(Store.open(Error)) << Error;
  ASSERT_TRUE(Store.put("key", "bytes"));
  ASSERT_TRUE(FaultInjector::global().configure("store-read-fail:1", Error));
  EXPECT_FALSE(Store.get("key").has_value());
  EXPECT_EQ(Store.stats().ReadFailures, 1u);
  // The record itself is intact; the next read serves it.
  EXPECT_EQ(*Store.get("key"), "bytes");
}

TEST(StoreTest, InjectedOpenFaultFailsLoudly) {
  StoreDir T;
  std::string Error;
  ASSERT_TRUE(FaultInjector::global().configure("store-open-fail:1", Error));
  DiskStore Store(T.options());
  EXPECT_FALSE(Store.open(Error));
  EXPECT_NE(Error.find("cannot open store"), std::string::npos) << Error;
}

TEST(StoreTest, Fnv1a64IsTheDocumentedConstant) {
  // Pin the hash so the on-disk format cannot silently change: these are
  // the published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

} // namespace
